// Ablation — one-RTT transactions (paper Section 4.1, no dedicated figure).
//
// Compares per-item completion (lock acquisition + data fetch) in the basic
// mode (grant to client, then a separate fetch to the database server)
// against one-RTT mode (the switch forwards the grant to the database
// server, which replies with item + implied grant). The paper's claim:
// one-RTT saves a round trip and, unlike DrTM/FARM/FaSST-style combined
// requests, never fails at the database server because the lock is already
// held.
#include <cstdio>
#include <memory>
#include <vector>

#include "client/client.h"
#include "common/random.h"
#include "common/stats.h"
#include "dataplane/switch_dataplane.h"
#include "harness/report.h"
#include "server/db_server.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace netlock {
namespace {

struct Result {
  double mtps;
  LatencyRecorder latency;
};

Result Run(bool one_rtt, int num_sessions, LockId num_locks,
           SimTime duration) {
  Simulator sim;
  Network net(sim, /*latency=*/2500);
  LockSwitchConfig sw_config;
  LockSwitch lock_switch(net, sw_config);
  DbServer db(net);
  net.SetLatency(lock_switch.node(), db.node(), 1500);
  const NodeId dummy_lock_server = net.AddNode([](const Packet&) {});
  for (LockId l = 0; l < num_locks; ++l) {
    lock_switch.InstallLock(l, dummy_lock_server, 4);
  }
  if (one_rtt) {
    lock_switch.SetOneRttRoute([&](LockId) { return db.node(); });
  }

  ClientMachine machine(net);
  Result result;
  std::uint64_t completed = 0;
  Rng rng(7);
  std::vector<std::unique_ptr<NetLockSession>> sessions;
  struct Loop {
    NetLockSession* session;
    TxnId next_txn;
    SimTime started = 0;
  };
  std::vector<std::unique_ptr<Loop>> loops;
  // Closed loop per session: acquire (one-RTT: data arrives with grant;
  // basic: fetch separately), then release and start the next item.
  std::function<void(Loop*)> next = [&](Loop* loop) {
    const LockId lock = static_cast<LockId>(rng.NextBounded(num_locks));
    const TxnId txn = loop->next_txn++;
    loop->started = sim.now();
    loop->session->Acquire(
        lock, LockMode::kExclusive, txn, 0, [&, loop, lock, txn](AcquireResult r) {
          if (r != AcquireResult::kGranted) return;
          if (one_rtt) {
            // Grant already includes the item.
            result.latency.Record(sim.now() - loop->started);
            ++completed;
            loop->session->Release(lock, LockMode::kExclusive, txn);
            next(loop);
            return;
          }
          // Basic mode: explicit fetch round trip.
          LockHeader fetch;
          fetch.op = LockOp::kFetch;
          fetch.lock_id = lock;
          fetch.txn_id = txn;
          fetch.client_node = loop->session->node();
          machine.Send(MakeLockPacket(loop->session->node(), db.node(),
                                      fetch));
          // Completion is observed when kData lands; the session ignores
          // kData without pending state, so poll via a timer matched to the
          // fetch RTT (client->db 4000 + service 500 + back 4000).
          sim.Schedule(2 * 4000 + 500 + 55, [&, loop, lock, txn]() {
            result.latency.Record(sim.now() - loop->started);
            ++completed;
            loop->session->Release(lock, LockMode::kExclusive, txn);
            next(loop);
          });
        });
  };
  for (int i = 0; i < num_sessions; ++i) {
    NetLockSession::Config config;
    config.switch_node = lock_switch.node();
    sessions.push_back(std::make_unique<NetLockSession>(machine, config));
    net.SetLatency(sessions.back()->node(), lock_switch.node(), 2500);
    net.SetLatency(sessions.back()->node(), db.node(), 4000);
    auto loop = std::make_unique<Loop>();
    loop->session = sessions.back().get();
    loop->next_txn = static_cast<TxnId>(i) << 32 | 1;
    loops.push_back(std::move(loop));
  }
  for (auto& loop : loops) next(loop.get());
  sim.RunUntil(duration);
  result.mtps = static_cast<double>(completed) /
                (static_cast<double>(duration) / kSecond) / 1e6;
  return result;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("ablation_one_rtt", ParseBenchOptions(argc, argv));
  const SimTime duration =
      report.quick() ? 25 * kMillisecond : 100 * kMillisecond;
  std::printf(
      "NetLock reproduction — ablation: one-RTT transactions (Section 4.1)\n"
      "Item completion = lock acquisition + data fetch, 32 sessions.\n");
  Table table({"mode", "items(MTPS)", "avg(us)", "p50(us)", "p99(us)"});
  for (const bool one_rtt : {false, true}) {
    const Result r =
        Run(one_rtt, /*num_sessions=*/32, /*num_locks=*/4096, duration);
    table.AddRow({one_rtt ? "one-RTT" : "basic (grant + fetch)",
                  Fmt(r.mtps, 3),
                  FmtUs(static_cast<SimTime>(r.latency.Mean())),
                  FmtUs(r.latency.Median()), FmtUs(r.latency.P99())});
    BenchRun& run =
        report.AddRun(one_rtt ? "one-rtt" : "basic", /*throughput_mrps=*/0.0,
                      r.latency);
    run.txn_mtps = r.mtps;
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): one-RTT completes items in a single\n"
      "combined trip (~0.6x the basic-mode latency) and therefore higher\n"
      "per-session closed-loop throughput; no fetch ever fails.\n");
  return report.Write() ? 0 : 1;
}
