// Deadlock-handling policies under deadlock-prone workloads.
//
// Two sections:
//
//  * Real-time backend (primary, wall-clock): the contended unordered
//    micro workload — deduplicated but *shuffled* lock sets, acquired in
//    workload order — run once per policy (no-wait / wait-die /
//    wound-wait) through RunMicroTimed. Each "rt/policy=<p>" run carries
//    `goodput_tps` (commits per wall second), `abort_rate`
//    (aborts / (commits + aborts)), `wounds` and `service_aborts` extras;
//    CI asserts wound-wait goodput >= no-wait goodput and that every
//    policy sees a nonzero abort rate (the workload really is
//    deadlock-prone). The wound-wait run's live telemetry feeds the
//    report's "time_series" section.
//
//  * Simulated scenario (ServerOnly system, open-loop): ScenarioWorkload's
//    drifting-Zipf hot set plus a mid-run flash crowd (the driver bumps
//    OpenLoopEngine::set_offered_tps 10x for the middle third of the
//    window). kNone rides along as the baseline: with no policy, unordered
//    acquisition wedges into real deadlock cycles that only the lease
//    breaks, and goodput collapses — the gap is the point of the policies.
//
// `--backend=sim` / `--backend=rt` restricts to one section (default:
// both). `--quick` shrinks windows for the CI smoke gate.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/server_only.h"
#include "client/client.h"
#include "client/open_loop.h"
#include "harness/backend.h"
#include "harness/report.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace netlock {
namespace {

constexpr DeadlockPolicy kPolicies[] = {
    DeadlockPolicy::kNoWait,
    DeadlockPolicy::kWaitDie,
    DeadlockPolicy::kWoundWait,
};

double AbortRate(std::uint64_t commits, std::uint64_t aborts) {
  const double total = static_cast<double>(commits + aborts);
  return total > 0 ? static_cast<double>(aborts) / total : 0.0;
}

// ---------------------------------------------------------------------------
// Section 1: real-time backend, per-policy goodput on the contended
// unordered micro workload.
// ---------------------------------------------------------------------------

void RunRt(BenchReport& report) {
  Banner("Real-time backend: unordered contended workload, per policy");
  Table table({"policy", "goodput(tps)", "commits", "aborts", "wounds",
               "abort rate", "txn p99(us)", "residual q"});
  const SimTime warmup =
      report.quick() ? 50 * kMillisecond : 300 * kMillisecond;
  const SimTime measure =
      report.quick() ? 250 * kMillisecond : 2 * kSecond;
  for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
    const DeadlockPolicy policy = kPolicies[pi];
    BackendRunConfig config;
    // High contention on purpose: few locks, multi-lock transactions,
    // unsorted acquisition order. No-wait burns its throughput on
    // retries here; wound-wait keeps the oldest transaction moving.
    config.workload.num_locks = 48;
    config.workload.locks_per_txn = 4;
    config.workload.shared_fraction = 0.2;
    config.workload.zipf_alpha = 0.9;
    config.seed = 7;
    config.sessions = report.quick() ? 8 : 16;
    config.rt_client_threads = 2;
    config.rt_cores = 2;
    config.deadlock_policy = policy;
    config.unordered_workload = true;
    const BackendRunResult result =
        RunMicroTimed(BackendKind::kRt, config, warmup, measure);
    const double goodput =
        result.wall_seconds > 0
            ? static_cast<double>(result.commits) / result.wall_seconds
            : 0.0;
    const double abort_rate = AbortRate(result.commits, result.aborts);
    table.AddRow({ToString(policy), Fmt(goodput, 0),
                  std::to_string(result.commits),
                  std::to_string(result.aborts),
                  std::to_string(result.wounds), Fmt(abort_rate, 3),
                  FmtUs(result.metrics.txn_latency.P99()),
                  std::to_string(result.residual_queue_depth)});
    BenchRun& run = report.AddRun(
        std::string("rt/policy=") + ToString(policy), result.metrics);
    run.extra.emplace_back("goodput_tps", goodput);
    run.extra.emplace_back("abort_rate", abort_rate);
    run.extra.emplace_back("aborts", static_cast<double>(result.aborts));
    run.extra.emplace_back("wounds", static_cast<double>(result.wounds));
    run.extra.emplace_back("service_aborts",
                           static_cast<double>(result.service_aborts));
    run.extra.emplace_back(
        "residual_queue_depth",
        static_cast<double>(result.residual_queue_depth));
    run.extra.emplace_back("rt_wall_ms", result.wall_seconds * 1e3);
    if (pi + 1 == std::size(kPolicies) && result.has_time_series) {
      report.AttachTimeSeries(result.time_series);
    }
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Section 2: simulated flash-crowd scenario on the ServerOnly system.
// ---------------------------------------------------------------------------

struct ScenarioResult {
  RunMetrics metrics;
  std::uint64_t aborts = 0;  ///< Policy aborts observed by the clients.
  std::uint64_t wounds = 0;
  std::uint64_t shed = 0;  ///< Arrivals dropped at max_outstanding.
  SimTime window = 0;
};

ScenarioResult RunScenario(DeadlockPolicy policy, bool quick) {
  // Sized so the hot window stays saturated through the flash crowd but
  // the whole sweep finishes in simulated milliseconds.
  const int kMachines = 4;
  const int kEnginesPerMachine = 4;
  const double base_tps = 2000.0;   // Per engine.
  const double burst_tps = 20000.0;  // Flash crowd: 10x for a third.
  const SimTime warmup = 20 * kMillisecond;
  const SimTime window = quick ? 120 * kMillisecond : 600 * kMillisecond;

  Simulator sim;
  Network net(sim, /*default_latency=*/4000);
  LockServerConfig server_config;
  server_config.deadlock_policy = policy;
  ServerOnlyManager manager(net, server_config, /*num_servers=*/2);
  // Short lease so the kNone baseline's wedges resolve a few times per
  // window instead of once; the policies never rely on it.
  manager.StartLeasePolling(20 * kMillisecond, 5 * kMillisecond);

  ScenarioConfig scenario;
  scenario.num_locks = 4096;
  scenario.hot_set_size = 16;
  scenario.hot_fraction = 0.8;
  scenario.locks_per_txn = 4;
  scenario.shared_fraction = 0.2;
  scenario.unordered = true;

  std::vector<std::unique_ptr<ClientMachine>> machines;
  std::vector<std::unique_ptr<LockSession>> sessions;
  std::vector<std::unique_ptr<OpenLoopEngine>> engines;
  for (int m = 0; m < kMachines; ++m) {
    machines.push_back(std::make_unique<ClientMachine>(net));
  }
  for (int i = 0; i < kMachines * kEnginesPerMachine; ++i) {
    sessions.push_back(manager.CreateSession(*machines[i % kMachines]));
    OpenLoopConfig oconfig;
    oconfig.offered_tps = base_tps;
    oconfig.think_time = 2 * kMicrosecond;
    oconfig.preserve_workload_order = true;  // Deadlock-prone on purpose.
    engines.push_back(std::make_unique<OpenLoopEngine>(
        sim, *sessions.back(), std::make_unique<ScenarioWorkload>(scenario),
        static_cast<std::uint32_t>(i + 1), 500 + i, oconfig));
    engines.back()->Start();
  }

  sim.RunUntil(warmup);
  for (auto& engine : engines) engine->SetRecording(true);
  // Flash crowd occupies the middle third of the measured window.
  sim.Schedule(window / 3, [&engines, burst_tps]() {
    for (auto& engine : engines) engine->set_offered_tps(burst_tps);
  });
  sim.Schedule(2 * window / 3, [&engines, base_tps]() {
    for (auto& engine : engines) engine->set_offered_tps(base_tps);
  });
  sim.RunUntil(warmup + window);

  ScenarioResult result;
  result.window = window;
  for (auto& engine : engines) {
    engine->Stop();
    result.metrics.txn_commits += engine->metrics().txn_commits;
    result.metrics.lock_grants += engine->metrics().lock_grants;
    result.metrics.lock_requests += engine->metrics().lock_requests;
    result.aborts += engine->metrics().retries;
    result.metrics.txn_latency.Merge(engine->metrics().txn_latency);
    result.wounds += engine->wounds();
    result.shed += engine->dropped_arrivals();
  }
  result.metrics.duration = window;
  return result;
}

void RunSim(BenchReport& report) {
  Banner("Sim scenario: drifting hot set + flash crowd (ServerOnly)");
  Table table({"policy", "goodput(tps)", "commits", "aborts", "wounds",
               "abort rate", "shed", "txn p99(us)"});
  // kNone leads as the no-policy baseline: real deadlocks, broken only by
  // the lease, so its goodput collapses under the crowd.
  const std::vector<DeadlockPolicy> policies = {
      DeadlockPolicy::kNone, DeadlockPolicy::kNoWait,
      DeadlockPolicy::kWaitDie, DeadlockPolicy::kWoundWait};
  for (const DeadlockPolicy policy : policies) {
    const ScenarioResult result = RunScenario(policy, report.quick());
    const double seconds =
        static_cast<double>(result.window) / static_cast<double>(kSecond);
    const double goodput =
        static_cast<double>(result.metrics.txn_commits) / seconds;
    const double abort_rate =
        AbortRate(result.metrics.txn_commits, result.aborts);
    table.AddRow({ToString(policy), Fmt(goodput, 0),
                  std::to_string(result.metrics.txn_commits),
                  std::to_string(result.aborts),
                  std::to_string(result.wounds), Fmt(abort_rate, 3),
                  std::to_string(result.shed),
                  FmtUs(result.metrics.txn_latency.P99())});
    BenchRun& run = report.AddRun(
        std::string("scenario/policy=") + ToString(policy), result.metrics);
    run.extra.emplace_back("goodput_tps", goodput);
    run.extra.emplace_back("abort_rate", abort_rate);
    run.extra.emplace_back("aborts", static_cast<double>(result.aborts));
    run.extra.emplace_back("wounds", static_cast<double>(result.wounds));
    run.extra.emplace_back("shed", static_cast<double>(result.shed));
  }
  table.Print();
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  BenchReport report("scenario_deadlock", options);
  BackendKind only = BackendKind::kSim;
  const bool restricted =
      !options.backend.empty() && ParseBackendKind(options.backend, &only);
  if (!restricted || only == BackendKind::kRt) RunRt(report);
  if (!restricted || only == BackendKind::kSim) RunSim(report);
  return report.Write() ? 0 : 1;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) { return netlock::Main(argc, argv); }
