// Shared driver for the Figure 10/11 system comparisons: run TPC-C under
// low and high contention across NetLock, DSLR, DrTM, and NetChain, and
// print the paper's four panels (lock throughput, transaction throughput,
// average latency, tail latency).
#pragma once

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock::bench {

struct TpccResult {
  SystemKind system;
  bool high_contention;
  RunMetrics metrics;
};

inline RunMetrics RunTpcc(SystemKind system, int client_machines,
                          int lock_servers, bool high_contention,
                          SimTime warmup, SimTime measure) {
  TestbedConfig config;
  config.system = system;
  config.client_machines = client_machines;
  // The paper's DPDK clients oversubscribe every system's bottleneck; with
  // closed-loop sessions the equivalent pressure needs more of them.
  config.sessions_per_machine = 16;
  config.lock_servers = lock_servers;
  // In-memory transaction execution time while holding locks.
  config.txn_config.think_time = 10 * kMicrosecond;
  config.txn_config.abort_backoff = 200 * kMicrosecond;
  const std::uint32_t warehouses =
      TpccWarehouses(client_machines, high_contention);
  config.workload_factory = TpccFactory(warehouses);
  // The decentralized baselines host the full lock table in server memory.
  config.lock_space = TpccWorkload(TpccConfig{warehouses, 0}).lock_space();
  Testbed testbed(config);
  if (system == SystemKind::kNetLock) {
    ProfileAndInstall(testbed, config.switch_config.queue_capacity,
                      /*random_strawman=*/false,
                      /*profile_duration=*/30 * kMillisecond);
  }
  RunMetrics metrics = testbed.Run(warmup, measure);
  testbed.StopEngines(kSecond);
  return metrics;
}

inline void PrintComparison(const char* figure, int client_machines,
                            int lock_servers,
                            const std::vector<TpccResult>& results) {
  std::printf(
      "\nNetLock reproduction — %s (TPC-C, %d clients + %d lock servers)\n",
      figure, client_machines, lock_servers);
  for (const bool high : {false, true}) {
    Banner(std::string(figure) + (high ? " — high contention (1 wh/node)"
                                       : " — low contention (10 wh/node)"));
    Table table({"system", "lock tput(MRPS)", "txn tput(MTPS)",
                 "avg lat(ms)", "p99 lat(ms)", "retries"});
    double netlock_txn = 0, dslr_txn = 0;
    for (const TpccResult& r : results) {
      if (r.high_contention != high) continue;
      const RunMetrics& m = r.metrics;
      table.AddRow({ToString(r.system), Fmt(m.LockThroughputMrps(), 3),
                    Fmt(m.TxnThroughputMtps(), 4),
                    FmtMs(static_cast<SimTime>(m.txn_latency.Mean())),
                    FmtMs(m.txn_latency.P99()),
                    std::to_string(m.retries)});
      if (r.system == SystemKind::kNetLock) {
        netlock_txn = m.TxnThroughputMtps();
      }
      if (r.system == SystemKind::kDslr) dslr_txn = m.TxnThroughputMtps();
    }
    table.Print();
    if (dslr_txn > 0) {
      std::printf("NetLock vs DSLR transaction throughput: %.1fx\n",
                  netlock_txn / dslr_txn);
    }
  }
  std::printf(
      "\nExpected shape (paper): NetLock > NetChain > DSLR > DrTM on\n"
      "throughput, with NetLock an order of magnitude over DSLR and larger\n"
      "gaps (and far better tails) under high contention.\n");
}

inline int RunFigure(const char* figure, const char* bench_name,
                     int client_machines, int lock_servers, SimTime warmup,
                     SimTime measure, int argc, char** argv) {
  BenchReport report(bench_name, ParseBenchOptions(argc, argv));
  if (report.quick()) {
    // CI scale: a quarter of the measurement window, same systems.
    warmup = warmup / 2;
    measure = measure / 4;
  }
  std::vector<TpccResult> results;
  for (const bool high : {false, true}) {
    for (const SystemKind system :
         {SystemKind::kDslr, SystemKind::kDrtm, SystemKind::kNetChain,
          SystemKind::kNetLock}) {
      std::fprintf(stderr, "  running %s %s...\n", ToString(system),
                   high ? "high-contention" : "low-contention");
      results.push_back(TpccResult{
          system, high,
          RunTpcc(system, client_machines, lock_servers, high, warmup,
                  measure)});
      const TpccResult& r = results.back();
      report.AddRun(std::string(high ? "high/" : "low/") +
                        ToString(r.system),
                    r.metrics);
    }
  }
  PrintComparison(figure, client_machines, lock_servers, results);
  return report.Write() ? 0 : 1;
}

}  // namespace netlock::bench
