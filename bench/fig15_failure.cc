// Figure 15 — Failure handling (paper Section 6.5).
//
// TPC-C steady state; at t=10s the lock switch stops processing packets
// (register state lost), and shortly after it is reactivated and the
// control plane reinstalls the allocation. Clients keep retrying; leases
// clear stranded grants. Throughput collapses during the outage and
// returns to the pre-failure level immediately after reactivation.
#include <cstdio>

#include "common/tracelog.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sampler.h"
#include "harness/testbed.h"
#include "testing/fault_plan.h"

namespace netlock {
namespace {

// The failure timeline is expressed as a declarative FaultPlan — the same
// vocabulary the schedule fuzzer runs and shrinks — so the bench scenario
// can be replayed through `netlock_fuzz --plan=...` verbatim.
testing::FaultPlan Fig15Plan(SimTime fail_at, SimTime recover_at) {
  testing::FaultPlan plan;
  plan.actions.push_back(
      {testing::FaultKind::kSwitchCrash, fail_at, 0, 0, 0});
  plan.actions.push_back(
      {testing::FaultKind::kSwitchRestart, recover_at, 0, 0, 0});
  return plan;
}

// Executes one plan action against the bench testbed. The bench drives the
// plan itself (rather than through the fuzzer harness) because it owns the
// sampler, recording windows, and report plumbing.
void FireAction(Testbed& testbed, const testing::FaultAction& action) {
  switch (action.kind) {
    case testing::FaultKind::kSwitchCrash:
      testbed.netlock().lock_switch().Fail();
      break;
    case testing::FaultKind::kSwitchRestart:
      testbed.netlock().control_plane().RecoverSwitch();
      break;
    default:
      break;
  }
  std::fprintf(stderr, "  fault '%s' fired at %.2fs\n",
               testing::ToString(action.kind),
               static_cast<double>(testbed.sim().now()) / kSecond);
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("fig15_failure", ParseBenchOptions(argc, argv));
  // The paper's x-axis spans 20 s; we compress to 2 s of simulated time
  // with the failure at 0.8 s and reactivation at 1.2 s — the same phases
  // at a tenth of the wall cost. --quick compresses a further 4x.
  const SimTime kFailAt =
      report.quick() ? 200 * kMillisecond : 800 * kMillisecond;
  const SimTime kRecoverAt =
      report.quick() ? 300 * kMillisecond : 1200 * kMillisecond;
  const SimTime kEnd = report.quick() ? 500 * kMillisecond : 2 * kSecond;
  const SimTime kBucket =
      report.quick() ? 25 * kMillisecond : 50 * kMillisecond;
  std::printf(
      "NetLock reproduction — Figure 15 (switch failure handling)\n"
      "Failure at %.1fs, reactivation at %.1fs.\n",
      static_cast<double>(kFailAt) / kSecond,
      static_cast<double>(kRecoverAt) / kSecond);

  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 10;
  config.sessions_per_machine = 8;
  config.lock_servers = 2;
  config.client_retry_timeout = 2 * kMillisecond;
  config.lease = 20 * kMillisecond;
  config.lease_poll_interval = 5 * kMillisecond;
  config.txn_config.think_time = 10 * kMicrosecond;
  config.workload_factory = TpccFactory(TpccWarehouses(10, false));
  Testbed testbed(config);
  ProfileAndInstall(testbed, config.switch_config.queue_capacity,
                    /*random_strawman=*/false,
                    /*profile_duration=*/40 * kMillisecond);
  // Trace the measured run, not the profiling phase: at full sampling the
  // profiling warm-up alone would eat most of the trace capacity.
  TraceLog::Global().Clear();

  // The throughput-over-time curve comes from the registry sampler: every
  // engine bumps "client.txn_commits" unconditionally, and the sampler
  // buckets the deltas at kBucket resolution. Profiling already consumed
  // some simulated time, so first advance to the next multiple of kBucket:
  // the failure/recovery instants are multiples of kBucket, and aligning
  // the window keeps each bucket entirely inside one phase.
  TimeSeriesSampler sampler(testbed.sim(), kBucket);
  sampler.Watch("client.txn_commits");
  const SimTime t0 =
      (testbed.sim().now() + kBucket - 1) / kBucket * kBucket;
  testbed.sim().RunUntil(t0);
  sampler.Start(kEnd - t0);
  testbed.StartEngines();
  // Record across all three phases so the report carries the end-to-end
  // latency distribution (retries during the outage land in the tail).
  testbed.SetRecording(true);
  const testing::FaultPlan plan = Fig15Plan(kFailAt, kRecoverAt);
  std::printf("fault plan: %s\n", plan.Serialize().c_str());
  for (const testing::FaultAction& action : plan.actions) {
    testbed.sim().RunUntil(action.at);
    FireAction(testbed, action);
  }
  testbed.sim().RunUntil(kEnd);
  const RunMetrics overall = testbed.Collect(kEnd);
  testbed.StopEngines(kSecond);
  report.AddRun("overall", overall);

  Banner("Transaction throughput over time");
  Table table({"t(s)", "tput(MTPS)", "phase"});
  // Per-phase aggregate rates for the machine-readable report.
  std::uint64_t phase_commits[3] = {0, 0, 0};
  for (std::size_t b = 0; b < sampler.num_buckets(); ++b) {
    const SimTime t = t0 + b * kBucket;
    const int phase_idx = t < kFailAt ? 0 : t < kRecoverAt ? 1 : 2;
    const char* phase = phase_idx == 0   ? "normal"
                        : phase_idx == 1 ? "FAILED"
                                         : "recovered";
    phase_commits[phase_idx] += sampler.Delta(0, b);
    table.AddRow({Fmt(sampler.BucketTimeSeconds(b), 2),
                  Fmt(sampler.Value(0, b) / 1e6, 3), phase});
  }
  table.Print();
  report.AttachTimeSeries(sampler);
  // The "normal" phase is measured from the sampler's (aligned) start, not
  // from t=0: buckets before t0 don't exist.
  const double phase_sec[3] = {
      static_cast<double>(kFailAt - t0) / kSecond,
      static_cast<double>(kRecoverAt - kFailAt) / kSecond,
      static_cast<double>(kEnd - kRecoverAt) / kSecond};
  const char* phase_names[3] = {"normal", "failed", "recovered"};
  for (int i = 0; i < 3; ++i) {
    report.AddRun(phase_names[i]).txn_mtps =
        phase_commits[i] / phase_sec[i] / 1e6;
  }
  std::printf(
      "\nExpected shape (paper): throughput drops to ~zero the moment the\n"
      "switch stops, and returns to the pre-failure level essentially\n"
      "instantly upon reactivation (leases clear stale state).\n");
  return report.Write() ? 0 : 1;
}
