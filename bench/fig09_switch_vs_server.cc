// Figure 9 — Comparison between a lock switch and a lock server with
// various numbers of cores (paper Section 6.2).
//
// Ten client machines generate three workloads — shared locks, exclusive
// locks without contention, and exclusive locks with contention (5000
// locks) — against (i) the NetLock switch and (ii) a server-only lock
// manager with 1..8 cores. The lock switch is never saturated; the server
// saturates at cores * per-core rate, giving the paper's >= 7x gap.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

constexpr SimTime kWarmup = 5 * kMillisecond;

struct Workload {
  const char* name;
  double shared_fraction;
  LockId num_locks;
};

const Workload kWorkloads[] = {
    {"shared", 1.0, 100'000},
    {"excl-nocontention", 0.0, 100'000},
    {"excl-contention(5000)", 0.0, 5'000},
};

RunMetrics RunOne(SystemKind system, const Workload& workload, int cores,
                  SimTime measure) {
  TestbedConfig config;
  config.system = system;
  config.client_machines = 10;
  config.sessions_per_machine = 48;
  config.lock_servers = 1;
  config.server_config.cores = cores;
  config.txn_config.think_time = 0;
  MicroConfig micro;
  micro.num_locks = workload.num_locks;
  micro.shared_fraction = workload.shared_fraction;
  config.switch_config.queue_capacity =
      std::max(100'000u, 2 * micro.num_locks + 4096);
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  if (system == SystemKind::kNetLock) {
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
  }
  RunMetrics m = testbed.Run(kWarmup, measure);
  testbed.StopEngines();
  return m;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("fig09_switch_vs_server", ParseBenchOptions(argc, argv));
  const SimTime measure =
      report.quick() ? 5 * kMillisecond : 20 * kMillisecond;
  // --quick samples the core sweep instead of running all eight points.
  const std::vector<int> core_sweep =
      report.quick() ? std::vector<int>{1, 4, 8}
                     : std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8};
  std::printf(
      "NetLock reproduction — Figure 9 (lock switch vs lock server)\n"
      "Ten client machines; server cores swept 1..8; switch unsaturated.\n");

  Banner("Lock switch (NetLock) throughput, MRPS");
  {
    Table table({"workload", "tput(MRPS)"});
    for (const Workload& w : kWorkloads) {
      const RunMetrics m = RunOne(SystemKind::kNetLock, w, 8, measure);
      table.AddRow({w.name, Fmt(m.LockThroughputMrps())});
      report.AddRun(std::string("switch/") + w.name, m);
    }
    table.Print();
  }

  Banner("Lock server throughput by core count, MRPS");
  {
    Table table({"workload", "1", "2", "3", "4", "5", "6", "7", "8"});
    double best_server = 0.0;
    for (const Workload& w : kWorkloads) {
      std::vector<std::string> row{w.name};
      for (const int cores : core_sweep) {
        const RunMetrics m =
            RunOne(SystemKind::kServerOnly, w, cores, measure);
        best_server = std::max(best_server, m.LockThroughputMrps());
        row.push_back(Fmt(m.LockThroughputMrps()));
        report.AddRun(std::string("server/") + w.name +
                          "/cores=" + std::to_string(cores),
                      m);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf(
        "\nExpected shape (paper): server scales with cores to ~18 MRPS at\n"
        "8 cores and saturates; the switch outperforms it by >= 7x under\n"
        "the same client load and is itself never the bottleneck.\n");
  }
  return report.Write() ? 0 : 1;
}
