// Ablation — shared queue vs statically-bound register arrays (paper §4.2,
// Figure 5; DESIGN.md ablation #1).
//
// The paper's basic design binds one fixed-size register array to each
// lock; the shared queue pools arrays and sizes each lock's region to its
// measured contention c_i at runtime. This bench quantifies the difference
// two ways:
//   1. Analytically: the guaranteed-rate objective of Algorithm 3's
//      formulation, across demand skews, for static arrays of several
//      fixed sizes vs the shared queue (knapsack).
//   2. End-to-end: a TPC-C run where the installed allocation is produced
//      by StaticAllocate vs KnapsackAllocate.
#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "core/memory_alloc.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

std::vector<LockDemand> SkewedDemands(std::size_t n, double alpha,
                                      std::uint64_t seed) {
  // Zipf-shaped rates with contention roughly tracking rate (hot locks see
  // more concurrent requests), the regime the shared queue is built for.
  std::vector<LockDemand> demands;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double rate = 1e6 / std::pow(static_cast<double>(i + 1), alpha);
    const std::uint32_t contention = static_cast<std::uint32_t>(
        std::min<double>(64.0, 1.0 + rate / 5e4 + rng.NextBounded(3)));
    demands.push_back(LockDemand{static_cast<LockId>(i), rate, contention});
  }
  return demands;
}

void AnalyticTable(BenchReport& report) {
  Banner("Guaranteed request rate (fraction of total demand), 4096 slots");
  Table table({"skew(zipf a)", "static A=2", "static A=8", "static A=32",
               "shared+knapsack"});
  for (const double alpha : {0.0, 0.6, 0.9, 1.2}) {
    const auto demands = SkewedDemands(4096, alpha, 42);
    double total = 0;
    for (const auto& d : demands) total += d.rate;
    const std::uint32_t capacity = 4096;
    auto frac = [&](const Allocation& a) {
      return AllocationObjective(demands, a) / total;
    };
    const double static8 = frac(StaticAllocate(demands, capacity, 8));
    const double knapsack = frac(KnapsackAllocate(demands, capacity));
    table.AddRow({Fmt(alpha, 1),
                  Fmt(frac(StaticAllocate(demands, capacity, 2)), 3),
                  Fmt(static8, 3),
                  Fmt(frac(StaticAllocate(demands, capacity, 32)), 3),
                  Fmt(knapsack, 3)});
    BenchRun& run = report.AddRun("analytic/alpha=" + Fmt(alpha, 1));
    run.extra.emplace_back("static8_frac", static8);
    run.extra.emplace_back("knapsack_frac", knapsack);
  }
  table.Print();
}

double RunTpcc(bool use_static, std::uint32_t fixed_slots, bool quick) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 10;
  config.sessions_per_machine = 32;
  config.lock_servers = 2;
  config.server_config.cores = 2;
  config.switch_config.queue_capacity = 3000;
  config.txn_config.think_time = 10 * kMicrosecond;
  TpccConfig tpcc;
  tpcc.warehouses = TpccWarehouses(10, false);
  tpcc.lock_items = false;
  tpcc.lock_stock = false;
  tpcc.customer_granularity = 16;
  config.workload_factory = TpccFactory(tpcc);
  Testbed testbed(config);
  const auto demands =
      testbed.ProfileDemands(quick ? 25 * kMillisecond : 50 * kMillisecond);
  const Allocation alloc =
      use_static ? StaticAllocate(demands, 3000, fixed_slots)
                 : KnapsackAllocate(demands, 3000);
  testbed.netlock().InstallAllocation(alloc);
  const RunMetrics m = testbed.Run(
      20 * kMillisecond, quick ? 25 * kMillisecond : 80 * kMillisecond);
  testbed.StopEngines(kSecond);
  return m.LockThroughputMrps();
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("ablation_shared_queue", ParseBenchOptions(argc, argv));
  std::printf(
      "NetLock reproduction — ablation: shared queue vs static arrays\n");
  AnalyticTable(report);
  Banner("End-to-end TPC-C lock throughput (MRPS), 3000 slots");
  Table table({"allocation", "tput(MRPS)"});
  const bool quick = report.quick();
  auto add = [&](const char* table_name, const char* run_label,
                 bool use_static, std::uint32_t fixed_slots) {
    const double mrps = RunTpcc(use_static, fixed_slots, quick);
    table.AddRow({table_name, Fmt(mrps, 2)});
    report.AddRun(run_label).throughput_mrps = mrps;
  };
  add("static arrays A=8", "tpcc/static8", true, 8);
  add("static arrays A=32", "tpcc/static32", true, 32);
  add("shared queue (knapsack)", "tpcc/shared-knapsack", false, 0);
  table.Print();
  std::printf(
      "\nExpected shape: small static arrays overflow hot locks, large ones\n"
      "waste memory on cold locks; the shared queue sizes each region to\n"
      "its contention and wins at every skew.\n");
  return report.Write() ? 0 : 1;
}
