// Figure 13 — Impact of memory allocation mechanisms (paper Section 6.4).
//
// TPC-C (ten warehouses per node) with ten clients and two lock servers,
// and a deliberately small switch memory, comparing Algorithm 3's knapsack
// allocation against the random strawman:
//  (a) lock-request throughput split between switch and servers;
//  (b) transaction latency CDF.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

constexpr std::uint32_t kSwitchSlots = 3000;  // Deliberately scarce.

struct AllocResult {
  RunMetrics metrics;
  std::uint64_t switch_grants;
  std::uint64_t server_grants;
  std::vector<std::pair<SimTime, double>> cdf;
};

AllocResult RunOne(bool random_strawman, bool quick) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  // The paper's testbed oversubscribes the two lock servers ~5:1 (ten DPDK
  // clients at 18 MRPS vs ~36 MRPS of server capacity). Closed-loop
  // sessions offer far less per client, so we keep the same ratio by
  // scaling the server cores down with the offered load.
  config.client_machines = 10;
  config.sessions_per_machine = 32;
  config.lock_servers = 2;
  config.server_config.cores = 2;
  config.switch_config.queue_capacity = kSwitchSlots;
  config.txn_config.think_time = 10 * kMicrosecond;
  // Memory-allocation regime (paper §6.4): the lock working set is the
  // coordination-critical warehouse/district/customer rows — the item
  // catalog is read-only and stock is validated optimistically — with
  // §4.5 coarse-graining on the near-uniform customer tail.
  TpccConfig tpcc;
  tpcc.warehouses = TpccWarehouses(10, /*high_contention=*/false);
  tpcc.lock_items = false;
  tpcc.lock_stock = false;
  tpcc.customer_granularity = 16;
  config.workload_factory = TpccFactory(tpcc);
  Testbed testbed(config);
  ProfileAndInstall(testbed, kSwitchSlots, random_strawman,
                    /*profile_duration=*/quick ? 25 * kMillisecond
                                               : 50 * kMillisecond,
                    /*random_seed=*/12345);
  AllocResult result;
  result.metrics =
      testbed.Run(/*warmup=*/20 * kMillisecond,
                  /*measure=*/quick ? 30 * kMillisecond
                                    : 100 * kMillisecond);
  result.switch_grants = result.metrics.switch_grants;
  result.server_grants = result.metrics.server_grants;
  result.cdf = result.metrics.txn_latency.Cdf(20);
  testbed.StopEngines(kSecond);
  return result;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("fig13_memory_alloc", ParseBenchOptions(argc, argv));
  std::printf(
      "NetLock reproduction — Figure 13 (memory allocation mechanisms)\n"
      "TPC-C low contention, 10 clients + 2 lock servers, %u switch slots\n",
      kSwitchSlots);
  const AllocResult random = RunOne(/*random_strawman=*/true, report.quick());
  const AllocResult knapsack =
      RunOne(/*random_strawman=*/false, report.quick());

  Banner("Figure 13(a): throughput breakdown (MRPS)");
  Table table({"allocation", "switch", "server", "total"});
  auto row = [&](const char* name, const AllocResult& r) {
    const double dur =
        static_cast<double>(r.metrics.duration) / kSecond;  // Seconds.
    table.AddRow({name, Fmt(r.switch_grants / dur / 1e6, 3),
                  Fmt(r.server_grants / dur / 1e6, 3),
                  Fmt(r.metrics.LockThroughputMrps(), 3)});
    BenchRun& run = report.AddRun(name, r.metrics);
    run.extra.emplace_back("switch_mrps", r.switch_grants / dur / 1e6);
    run.extra.emplace_back("server_mrps", r.server_grants / dur / 1e6);
  };
  row("random", random);
  row("knapsack", knapsack);
  table.Print();
  std::printf("knapsack/random total throughput: %.2fx\n",
              knapsack.metrics.LockThroughputMrps() /
                  std::max(0.001, random.metrics.LockThroughputMrps()));

  Banner("Figure 13(b): transaction latency CDF (us)");
  Table cdf({"percentile", "knapsack(us)", "random(us)"});
  for (std::size_t i = 0; i < knapsack.cdf.size(); ++i) {
    cdf.AddRow({Fmt(knapsack.cdf[i].second * 100, 0),
                FmtUs(knapsack.cdf[i].first),
                FmtUs(i < random.cdf.size() ? random.cdf[i].first : 0)});
  }
  cdf.Print();
  std::printf(
      "\nExpected shape (paper): knapsack pushes most grants to the switch\n"
      "(~3x total throughput vs random) and its latency CDF sits far left\n"
      "of random's, which serves most requests from the servers.\n");
  return report.Write() ? 0 : 1;
}
