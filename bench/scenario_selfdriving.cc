// Self-driving control plane: static one-shot allocation vs continuous
// demand-tracking reallocation (SelfDrivingController) on the NetLock
// testbed.
//
// Two sections:
//
//  * Drift: a hot window of locks that jumps to a fresh region of the
//    lock space every `drift_period`. The static run installs the
//    paper's one-shot knapsack for the *initial* window and never
//    adapts: after the first jump almost every request detours to the
//    lock servers. The self-driving run starts from the same install and
//    lets the controller chase the window (EWMA + incremental knapsack +
//    pause/drain/move migrations). Each "drift/<mode>" run carries
//    `goodput_tps` and `switch_share` extras; the self-driving run adds
//    the controller decision counters and the `goodput_vs_static` ratio
//    CI asserts >= 1.15x. The self-driving run's ctrl.* counters feed
//    the report's "time_series" section next to the commit rate.
//
//  * Stationary: the same topology under an unchanging uniform workload.
//    The controller must go quiet: `stationary_migrations` counts every
//    promotion/demotion/resize/re-home issued after a settle window and
//    CI asserts it is exactly zero (the hysteresis dampers hold).
//
// `--controller=on|off` restricts the drift section to one side
// (default: both; the ratio extra needs both). `--quick` shrinks the
// windows for the CI smoke gate.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/memory_alloc.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sampler.h"
#include "harness/testbed.h"
#include "workload/micro.h"
#include "workload/workload.h"

namespace netlock {
namespace {

constexpr LockId kLockSpace = 2048;
constexpr LockId kWindow = 32;       // Hot-window size, in locks.
constexpr double kHotFraction = 0.9;
constexpr std::uint32_t kLocksPerTxn = 2;

/// Hot-window workload whose window base the driver moves at runtime:
/// `hot_fraction` of picks land uniformly in [*base, *base + window), the
/// rest uniformly over the whole space. Sorted lock order (the testbed's
/// standard 2PL discipline) — this bench stresses placement, not
/// deadlocks.
class DriftWorkload final : public WorkloadGenerator {
 public:
  DriftWorkload(const LockId* base, LockId window)
      : base_(base), window_(window) {}

  TxnSpec Next(Rng& rng) override {
    TxnSpec txn;
    for (std::uint32_t i = 0; i < kLocksPerTxn; ++i) {
      const LockId lock =
          rng.NextBool(kHotFraction)
              ? *base_ + static_cast<LockId>(rng.NextBounded(window_))
              : static_cast<LockId>(rng.NextBounded(kLockSpace));
      txn.locks.push_back(LockRequest{lock, LockMode::kExclusive});
    }
    NormalizeTxn(txn);
    return txn;
  }
  LockId lock_space() const override { return kLockSpace; }

 private:
  const LockId* base_;
  LockId window_;
};

ControllerConfig DriftControllerConfig() {
  ControllerConfig config;
  // Fast cadence relative to the 40 ms drift period: harvest every 2 ms,
  // start migrating after 2 observation ticks, and allow a whole window
  // swap (32 demotions + 32 promotions) to finish in ~4 ticks.
  config.interval = 2 * kMillisecond;
  config.warmup_ticks = 2;
  config.ewma_alpha = 0.4;
  config.min_dwell = 6 * kMillisecond;
  config.migration_budget = 16;
  return config;
}

TestbedConfig DriftTestbedConfig() {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.seed = 11;
  config.txn_config.think_time = 5 * kMicrosecond;
  // Exactly one hot window fits: 32 locks x 8 slots.
  config.switch_config.queue_capacity = 256;
  config.controller = true;  // Constructed for both runs; started for one.
  config.controller_config = DriftControllerConfig();
  return config;
}

/// The knapsack input the static run is built from (and the self-driving
/// run starts from): the phase-0 hot window, exactly as the paper's
/// offline profile would see it.
std::vector<LockDemand> InitialDemands() {
  std::vector<LockDemand> demands;
  demands.reserve(kLockSpace);
  for (LockId lock = 0; lock < kLockSpace; ++lock) {
    const bool hot = lock < kWindow;
    demands.push_back(
        LockDemand{lock, hot ? 1000.0 : 0.1, hot ? 8u : 1u});
  }
  return demands;
}

struct DriftResult {
  RunMetrics metrics;
  std::uint64_t switch_grants = 0;  ///< Over the measured window only.
  std::uint64_t server_grants = 0;
  ControllerStats stats;
  double goodput_tps = 0.0;
  double switch_share = 0.0;
};

DriftResult RunDrift(bool controller_on, bool quick, BenchReport* report) {
  const SimTime warmup = 20 * kMillisecond;
  const SimTime drift_period = 40 * kMillisecond;
  const SimTime measure = quick ? 4 * drift_period : 16 * drift_period;

  LockId hot_base = 0;  // Outlives the testbed's engines below.
  TestbedConfig config = DriftTestbedConfig();
  config.workload_factory = [&hot_base](int) {
    return std::make_unique<DriftWorkload>(&hot_base, kWindow);
  };
  Testbed testbed(config);
  testbed.sharded().InstallKnapsack(InitialDemands());
  if (controller_on) testbed.controller().Start();

  // The window jumps to a fresh region every drift_period (wrapping well
  // inside the lock space so it never overlaps the previous window). The
  // first jump lands at the start of the measured window, so the static
  // run's phase-0 install is stale for the whole measurement.
  for (SimTime t = warmup; t < warmup + measure; t += drift_period) {
    testbed.sim().Schedule(t, [&hot_base] {
      hot_base = (hot_base + kWindow) % (kLockSpace / 2);
    });
  }

  TimeSeriesSampler sampler(testbed.sim(), 5 * kMillisecond);
  sampler.Watch("client.txn_commits");
  sampler.Watch("dataplane.acquires_granted");
  sampler.Watch("ctrl.reallocs");
  sampler.Watch("ctrl.promotions");
  sampler.Watch("ctrl.demotions");

  testbed.StartEngines();
  testbed.sim().RunUntil(warmup);
  testbed.SetRecording(true);
  if (controller_on && report != nullptr) sampler.Start(measure);
  const std::uint64_t switch0 = testbed.sharded().SwitchGrants();
  const std::uint64_t server0 = testbed.sharded().ServerGrants();
  testbed.sim().RunUntil(warmup + measure);

  DriftResult result;
  result.metrics = testbed.Collect(measure);
  result.switch_grants = testbed.sharded().SwitchGrants() - switch0;
  result.server_grants = testbed.sharded().ServerGrants() - server0;
  result.stats = testbed.controller().stats();
  result.goodput_tps = static_cast<double>(result.metrics.txn_commits) /
                       (static_cast<double>(measure) / kSecond);
  const double grants =
      static_cast<double>(result.switch_grants + result.server_grants);
  result.switch_share =
      grants > 0 ? static_cast<double>(result.switch_grants) / grants : 0.0;
  if (controller_on && report != nullptr) {
    sampler.Stop();
    report->AttachTimeSeries(sampler);
  }
  if (controller_on) testbed.controller().Stop();
  testbed.StopEngines(kSecond);
  return result;
}

void RunDriftSection(BenchReport& report) {
  Banner("Drifting hot set: static knapsack vs self-driving controller");
  const std::string& seam = report.options().controller;
  const bool run_static = seam.empty() || seam == "off";
  const bool run_selfdriving = seam.empty() || seam == "on";

  Table table({"mode", "goodput(tps)", "commits", "switch share",
               "promotions", "demotions", "txn p99(us)"});
  double static_goodput = 0.0;
  if (run_static) {
    const DriftResult result =
        RunDrift(/*controller_on=*/false, report.quick(), nullptr);
    static_goodput = result.goodput_tps;
    table.AddRow({"static", Fmt(result.goodput_tps, 0),
                  std::to_string(result.metrics.txn_commits),
                  Fmt(result.switch_share, 3), "0", "0",
                  FmtUs(result.metrics.txn_latency.P99())});
    BenchRun& run = report.AddRun("drift/static", result.metrics);
    run.extra.emplace_back("goodput_tps", result.goodput_tps);
    run.extra.emplace_back("switch_share", result.switch_share);
  }
  if (run_selfdriving) {
    const DriftResult result =
        RunDrift(/*controller_on=*/true, report.quick(), &report);
    table.AddRow({"selfdriving", Fmt(result.goodput_tps, 0),
                  std::to_string(result.metrics.txn_commits),
                  Fmt(result.switch_share, 3),
                  std::to_string(result.stats.promotions),
                  std::to_string(result.stats.demotions),
                  FmtUs(result.metrics.txn_latency.P99())});
    BenchRun& run = report.AddRun("drift/selfdriving", result.metrics);
    run.extra.emplace_back("goodput_tps", result.goodput_tps);
    run.extra.emplace_back("switch_share", result.switch_share);
    run.extra.emplace_back("reallocs",
                           static_cast<double>(result.stats.reallocs));
    run.extra.emplace_back("promotions",
                           static_cast<double>(result.stats.promotions));
    run.extra.emplace_back("demotions",
                           static_cast<double>(result.stats.demotions));
    run.extra.emplace_back("resizes",
                           static_cast<double>(result.stats.resizes));
    if (run_static && static_goodput > 0) {
      run.extra.emplace_back("goodput_vs_static",
                             result.goodput_tps / static_goodput);
    }
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Stationary control: the settled controller must stop migrating.
// ---------------------------------------------------------------------------

void RunStationarySection(BenchReport& report) {
  Banner("Stationary workload: settled controller issues zero migrations");
  const SimTime settle = 100 * kMillisecond;
  const SimTime measure =
      report.quick() ? 100 * kMillisecond : 400 * kMillisecond;

  TestbedConfig config = DriftTestbedConfig();
  config.switch_config.queue_capacity = 64;
  MicroConfig micro;
  micro.num_locks = 16;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  testbed.sharded().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  testbed.controller().Start();
  testbed.StartEngines();

  testbed.sim().RunUntil(settle);
  const ControllerStats settled = testbed.controller().stats();
  testbed.SetRecording(true);
  testbed.sim().RunUntil(settle + measure);
  const ControllerStats after = testbed.controller().stats();
  const RunMetrics metrics = testbed.Collect(measure);
  testbed.controller().Stop();
  testbed.StopEngines(kSecond);

  const std::uint64_t migrations =
      (after.promotions - settled.promotions) +
      (after.demotions - settled.demotions) +
      (after.resizes - settled.resizes) + (after.rehomes - settled.rehomes);
  const std::uint64_t ticks = after.ticks - settled.ticks;
  Table table({"ticks", "migrations", "goodput(tps)", "txn p99(us)"});
  table.AddRow({std::to_string(ticks), std::to_string(migrations),
                Fmt(static_cast<double>(metrics.txn_commits) /
                        (static_cast<double>(measure) / kSecond),
                    0),
                FmtUs(metrics.txn_latency.P99())});
  table.Print();

  BenchRun& run = report.AddRun("stationary/selfdriving", metrics);
  run.extra.emplace_back("stationary_migrations",
                         static_cast<double>(migrations));
  run.extra.emplace_back("ctrl_ticks", static_cast<double>(ticks));
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  BenchReport report("scenario_selfdriving", options);
  RunDriftSection(report);
  RunStationarySection(report);
  return report.Write() ? 0 : 1;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) { return netlock::Main(argc, argv); }
