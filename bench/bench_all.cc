// Runs every figure/ablation bench binary in sequence, forwarding the
// shared bench flags, and fails if any bench fails. CI invokes this with
// --quick --json-dir=<dir> to produce the full set of BENCH_*.json reports
// in one step; locally it reproduces every paper figure in one command.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

// Sibling binaries, in figure order. micro_components (google-benchmark)
// rides along last since it measures the simulator, not the paper.
const char* const kBenches[] = {
    "fig08_micro",
    "fig09_switch_vs_server",
    "fig10_tpcc_10c2s",
    "fig11_tpcc_6c6s",
    "fig12_policy",
    "fig13_memory_alloc",
    "fig14_memory_size",
    "fig15_failure",
    "ablation_one_rtt",
    "ablation_shared_queue",
    "micro_components",
};

std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Forward the shared flags verbatim; anything else is passed through too,
  // so e.g. --benchmark_filter reaches micro_components.
  std::string forwarded;
  for (int i = 1; i < argc; ++i) {
    forwarded += " ";
    forwarded += ShellQuote(argv[i]);
  }
  const std::string bin_dir = DirOf(argv[0]);
  int failures = 0;
  for (const char* bench : kBenches) {
    const std::string cmd = ShellQuote(bin_dir + "/" + bench) + forwarded;
    std::printf("\n===== bench_all: %s =====\n", bench);
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_all: %s FAILED (exit status %d)\n", bench,
                   rc);
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "\nbench_all: %d bench(es) failed\n", failures);
    return 1;
  }
  std::printf("\nbench_all: all %zu benches passed\n",
              sizeof(kBenches) / sizeof(kBenches[0]));
  return 0;
}
