// Runs every figure/ablation bench binary, forwarding the shared bench
// flags, and fails if any bench fails. CI invokes this with
// --quick --json-dir=<dir> to produce the full set of BENCH_*.json reports
// in one step; locally it reproduces every paper figure in one command.
//
// --jobs=N (consumed here, NOT forwarded) runs up to N bench processes
// concurrently. Children stay serial and each writes its own BENCH_*.json,
// so reports are byte-identical to a serial run (modulo wall-clock fields);
// child output is captured to temp files and replayed in bench order so the
// log reads the same regardless of scheduling.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

// Sibling binaries, in figure order. micro_components (google-benchmark)
// rides along last since it measures the simulator, not the paper.
const char* const kBenches[] = {
    "fig08_micro",
    "fig09_switch_vs_server",
    "fig10_tpcc_10c2s",
    "fig11_tpcc_6c6s",
    "fig12_policy",
    "fig13_memory_alloc",
    "fig14_memory_size",
    "fig15_failure",
    "ablation_one_rtt",
    "ablation_shared_queue",
    "scaleout_racks",
    "micro_components",
};
constexpr std::size_t kNumBenches = sizeof(kBenches) / sizeof(kBenches[0]);

std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

/// Decodes a raw status from std::system()/waitpid() into a human-readable
/// failure description. Returns true when the command exited 0. The old
/// code printed the raw wait status (e.g. "exit status 256" for exit(1),
/// or 0 for a SIGSEGV'd child on some shells) — always decode.
bool DecodeStatus(int raw, std::string& detail) {
  if (raw == -1) {
    detail = "could not launch (system() returned -1)";
    return false;
  }
  if (WIFEXITED(raw)) {
    const int code = WEXITSTATUS(raw);
    if (code == 0) return true;
    detail = "exit code " + std::to_string(code);
    return false;
  }
  if (WIFSIGNALED(raw)) {
    const int sig = WTERMSIG(raw);
    const char* name = strsignal(sig);
    detail = "killed by signal " + std::to_string(sig) +
             (name != nullptr ? std::string(" (") + name + ")" : "");
    return false;
  }
  detail = "unrecognized wait status " + std::to_string(raw);
  return false;
}

/// Prints a file's contents to stdout (used to replay captured child
/// output in bench order).
void ReplayFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    std::fwrite(buf, 1, n, stdout);
  }
  std::fclose(f);
}

struct BenchResult {
  bool ok = false;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  // Forward the shared flags verbatim — except --jobs, which is consumed
  // here (process-level parallelism). Children stay serial so their
  // reports are deterministic. Anything else is passed through too, so
  // e.g. --benchmark_filter reaches micro_components.
  std::string forwarded;
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
      continue;
    }
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      continue;
    }
    forwarded += " ";
    forwarded += ShellQuote(arg);
  }
  if (jobs < 1) jobs = 1;

  const std::string bin_dir = DirOf(argv[0]);
  std::vector<std::string> cmds;
  cmds.reserve(kNumBenches);
  for (const char* bench : kBenches) {
    cmds.push_back(ShellQuote(bin_dir + "/" + bench) + forwarded);
  }

  std::vector<BenchResult> results(kNumBenches);

  if (jobs == 1) {
    for (std::size_t i = 0; i < kNumBenches; ++i) {
      std::printf("\n===== bench_all: %s =====\n", kBenches[i]);
      std::fflush(stdout);
      results[i].ok = DecodeStatus(std::system(cmds[i].c_str()),
                                   results[i].detail);
    }
  } else {
    // Each child's stdout+stderr goes to a temp file; output is replayed
    // in bench order after all children finish so logs stay stable.
    char tmpl[] = "/tmp/bench_all.XXXXXX";
    const char* tmp_dir = mkdtemp(tmpl);
    if (tmp_dir == nullptr) {
      std::fprintf(stderr, "bench_all: mkdtemp failed\n");
      return 1;
    }
    std::vector<std::string> logs(kNumBenches);
    for (std::size_t i = 0; i < kNumBenches; ++i) {
      logs[i] = std::string(tmp_dir) + "/" + kBenches[i] + ".log";
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (std::size_t i = next.fetch_add(1); i < kNumBenches;
           i = next.fetch_add(1)) {
        const std::string cmd =
            cmds[i] + " > " + ShellQuote(logs[i]) + " 2>&1";
        results[i].ok =
            DecodeStatus(std::system(cmd.c_str()), results[i].detail);
      }
    };
    const std::size_t n =
        std::min<std::size_t>(static_cast<std::size_t>(jobs), kNumBenches);
    std::printf("bench_all: running %zu benches on %zu jobs\n", kNumBenches,
                n);
    std::fflush(stdout);
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (std::size_t t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    for (std::size_t i = 0; i < kNumBenches; ++i) {
      std::printf("\n===== bench_all: %s =====\n", kBenches[i]);
      std::fflush(stdout);
      ReplayFile(logs[i]);
      std::remove(logs[i].c_str());
    }
    rmdir(tmp_dir);
  }

  int failures = 0;
  for (std::size_t i = 0; i < kNumBenches; ++i) {
    if (!results[i].ok) {
      std::fprintf(stderr, "bench_all: %s FAILED (%s)\n", kBenches[i],
                   results[i].detail.c_str());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "\nbench_all: %d bench(es) failed\n", failures);
    return 1;
  }
  std::printf("\nbench_all: all %zu benches passed\n", kNumBenches);
  return 0;
}
