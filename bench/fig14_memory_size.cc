// Figure 14 — Impact of switch memory size (paper Section 6.4).
//
//  (a) Throughput vs switch memory slots for think times 0/5/10/100 us:
//      the think time sets the slot turnover rate, so longer holds need
//      more slots for the same throughput.
//  (b) Throughput vs slots for knapsack vs random allocation: knapsack
//      reaches peak throughput with a few thousand slots; random wastes
//      memory on unpopular locks and barely improves.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

RunMetrics RunOne(std::uint32_t slots, SimTime think_time, bool random_alloc,
                  bool quick) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  // Same server-bound regime as Figure 13 (paper-equivalent ~5:1 client
  // oversubscription of the lock servers).
  config.client_machines = 10;
  config.sessions_per_machine = 32;
  config.lock_servers = 2;
  config.server_config.cores = 2;
  config.switch_config.queue_capacity = std::max(slots, 1u);
  config.txn_config.think_time = think_time;
  // Same memory-allocation regime as Figure 13 (see fig13_memory_alloc.cc).
  TpccConfig tpcc;
  tpcc.warehouses = TpccWarehouses(10, /*high_contention=*/false);
  tpcc.lock_items = false;
  tpcc.lock_stock = false;
  tpcc.customer_granularity = 16;
  config.workload_factory = TpccFactory(tpcc);
  Testbed testbed(config);
  if (slots > 0) {
    ProfileAndInstall(testbed, slots, random_alloc,
                      /*profile_duration=*/quick ? 20 * kMillisecond
                                                 : 40 * kMillisecond,
                      /*random_seed=*/777);
  } else {
    testbed.netlock().control_plane().StartLeasePolling();
  }
  RunMetrics m =
      testbed.Run(/*warmup=*/20 * kMillisecond,
                  /*measure=*/quick ? 25 * kMillisecond : 80 * kMillisecond);
  testbed.StopEngines(kSecond);
  return m;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("fig14_memory_size", ParseBenchOptions(argc, argv));
  const bool quick = report.quick();
  std::printf(
      "NetLock reproduction — Figure 14 (impact of switch memory size)\n"
      "TPC-C low contention, 10 clients + 2 lock servers.\n");

  Banner("Figure 14(a): throughput (MRPS) vs slots, by think time");
  {
    const std::vector<std::uint32_t> slot_points =
        quick ? std::vector<std::uint32_t>{0, 1000, 4000}
              : std::vector<std::uint32_t>{0, 500, 1000, 2000, 3000, 4000};
    const std::vector<std::pair<const char*, SimTime>> thinks = {
        {"think=0us", 0},
        {"think=5us", 5 * kMicrosecond},
        {"think=10us", 10 * kMicrosecond},
        {"think=100us", 100 * kMicrosecond}};
    Table table({"slots", "think=0us", "think=5us", "think=10us",
                 "think=100us"});
    for (const std::uint32_t slots : slot_points) {
      std::fprintf(stderr, "  fig14a slots=%u...\n", slots);
      std::vector<std::string> row{std::to_string(slots)};
      for (const auto& [name, think] : thinks) {
        const RunMetrics m = RunOne(slots, think, false, quick);
        row.push_back(Fmt(m.LockThroughputMrps(), 2));
        report.AddRun("a/slots=" + std::to_string(slots) + "/" + name, m);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  Banner("Figure 14(b): throughput (MRPS) vs slots, knapsack vs random");
  {
    const std::vector<std::uint32_t> slot_points =
        quick ? std::vector<std::uint32_t>{0, 3000, 20000}
              : std::vector<std::uint32_t>{0,     1000,  3000, 5000,
                                           10000, 20000, 40000};
    Table table({"slots", "knapsack", "random"});
    for (const std::uint32_t slots : slot_points) {
      std::fprintf(stderr, "  fig14b slots=%u...\n", slots);
      const RunMetrics knapsack =
          RunOne(slots, 10 * kMicrosecond, false, quick);
      const RunMetrics random = RunOne(slots, 10 * kMicrosecond, true, quick);
      table.AddRow({std::to_string(slots),
                    Fmt(knapsack.LockThroughputMrps(), 2),
                    Fmt(random.LockThroughputMrps(), 2)});
      report.AddRun("b/slots=" + std::to_string(slots) + "/knapsack",
                    knapsack);
      report.AddRun("b/slots=" + std::to_string(slots) + "/random", random);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): (a) zero think time saturates fastest and\n"
      "highest; 100 us think time stays low regardless of memory. (b)\n"
      "knapsack reaches its peak within a few thousand slots; random\n"
      "improves only marginally with much more memory.\n");
  return report.Write() ? 0 : 1;
}
