// Figure 14 — Impact of switch memory size (paper Section 6.4).
//
//  (a) Throughput vs switch memory slots for think times 0/5/10/100 us:
//      the think time sets the slot turnover rate, so longer holds need
//      more slots for the same throughput.
//  (b) Throughput vs slots for knapsack vs random allocation: knapsack
//      reaches peak throughput with a few thousand slots; random wastes
//      memory on unpopular locks and barely improves.
//
// Each (slots, think, allocator) point is an independent simulation, so the
// sweep runs on ParallelSweep: with --jobs=N the points execute on N worker
// threads, each in its own SimContext, and metrics merge back in task order
// — the report is byte-identical to a serial run (wall-clock fields aside).
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

RunMetrics RunOne(std::uint32_t slots, SimTime think_time, bool random_alloc,
                  bool quick, SimContext& context) {
  TestbedConfig config;
  config.context = &context;
  config.system = SystemKind::kNetLock;
  // Same server-bound regime as Figure 13 (paper-equivalent ~5:1 client
  // oversubscription of the lock servers).
  config.client_machines = 10;
  config.sessions_per_machine = 32;
  config.lock_servers = 2;
  config.server_config.cores = 2;
  config.switch_config.queue_capacity = std::max(slots, 1u);
  config.txn_config.think_time = think_time;
  // Same memory-allocation regime as Figure 13 (see fig13_memory_alloc.cc).
  TpccConfig tpcc;
  tpcc.warehouses = TpccWarehouses(10, /*high_contention=*/false);
  tpcc.lock_items = false;
  tpcc.lock_stock = false;
  tpcc.customer_granularity = 16;
  config.workload_factory = TpccFactory(tpcc);
  Testbed testbed(config);
  if (slots > 0) {
    ProfileAndInstall(testbed, slots, random_alloc,
                      /*profile_duration=*/quick ? 20 * kMillisecond
                                                 : 40 * kMillisecond,
                      /*random_seed=*/777);
  } else {
    testbed.netlock().control_plane().StartLeasePolling();
  }
  RunMetrics m =
      testbed.Run(/*warmup=*/20 * kMillisecond,
                  /*measure=*/quick ? 25 * kMillisecond : 80 * kMillisecond);
  testbed.StopEngines(kSecond);
  return m;
}

struct SweepPoint {
  std::string run_name;   // Report key, e.g. "a/slots=1000/think=5us".
  std::uint32_t slots;
  SimTime think;
  bool random_alloc;
  RunMetrics metrics;     // Filled by the sweep.
};

/// Runs every point (possibly on report.options().jobs threads) and then
/// records them into the report in declaration order, keeping the JSON
/// deterministic regardless of scheduling.
void RunSweep(std::vector<SweepPoint>& points, BenchReport& report,
              bool quick) {
  ParallelSweep(static_cast<int>(points.size()), report.options().jobs,
                [&](int i, SimContext& context) {
                  SweepPoint& p = points[static_cast<std::size_t>(i)];
                  std::fprintf(stderr, "  fig14 %s...\n", p.run_name.c_str());
                  p.metrics =
                      RunOne(p.slots, p.think, p.random_alloc, quick, context);
                });
  for (const SweepPoint& p : points) report.AddRun(p.run_name, p.metrics);
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("fig14_memory_size", ParseBenchOptions(argc, argv));
  const bool quick = report.quick();
  std::printf(
      "NetLock reproduction — Figure 14 (impact of switch memory size)\n"
      "TPC-C low contention, 10 clients + 2 lock servers.\n");

  Banner("Figure 14(a): throughput (MRPS) vs slots, by think time");
  {
    const std::vector<std::uint32_t> slot_points =
        quick ? std::vector<std::uint32_t>{0, 1000, 4000}
              : std::vector<std::uint32_t>{0, 500, 1000, 2000, 3000, 4000};
    const std::vector<std::pair<const char*, SimTime>> thinks = {
        {"think=0us", 0},
        {"think=5us", 5 * kMicrosecond},
        {"think=10us", 10 * kMicrosecond},
        {"think=100us", 100 * kMicrosecond}};
    std::vector<SweepPoint> points;
    for (const std::uint32_t slots : slot_points) {
      for (const auto& [name, think] : thinks) {
        points.push_back(SweepPoint{
            "a/slots=" + std::to_string(slots) + "/" + name, slots, think,
            /*random_alloc=*/false, RunMetrics{}});
      }
    }
    RunSweep(points, report, quick);
    Table table({"slots", "think=0us", "think=5us", "think=10us",
                 "think=100us"});
    std::size_t next = 0;
    for (const std::uint32_t slots : slot_points) {
      std::vector<std::string> row{std::to_string(slots)};
      for (std::size_t t = 0; t < thinks.size(); ++t) {
        row.push_back(Fmt(points[next++].metrics.LockThroughputMrps(), 2));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  Banner("Figure 14(b): throughput (MRPS) vs slots, knapsack vs random");
  {
    const std::vector<std::uint32_t> slot_points =
        quick ? std::vector<std::uint32_t>{0, 3000, 20000}
              : std::vector<std::uint32_t>{0,     1000,  3000, 5000,
                                           10000, 20000, 40000};
    std::vector<SweepPoint> points;
    for (const std::uint32_t slots : slot_points) {
      points.push_back(SweepPoint{"b/slots=" + std::to_string(slots) +
                                      "/knapsack",
                                  slots, 10 * kMicrosecond,
                                  /*random_alloc=*/false, RunMetrics{}});
      points.push_back(SweepPoint{"b/slots=" + std::to_string(slots) +
                                      "/random",
                                  slots, 10 * kMicrosecond,
                                  /*random_alloc=*/true, RunMetrics{}});
    }
    RunSweep(points, report, quick);
    Table table({"slots", "knapsack", "random"});
    for (std::size_t i = 0; i < points.size(); i += 2) {
      table.AddRow({std::to_string(points[i].slots),
                    Fmt(points[i].metrics.LockThroughputMrps(), 2),
                    Fmt(points[i + 1].metrics.LockThroughputMrps(), 2)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): (a) zero think time saturates fastest and\n"
      "highest; 100 us think time stays low regardless of memory. (b)\n"
      "knapsack reaches its peak within a few thousand slots; random\n"
      "improves only marginally with much more memory.\n");
  return report.Write() ? 0 : 1;
}
