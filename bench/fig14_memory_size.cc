// Figure 14 — Impact of switch memory size (paper Section 6.4).
//
//  (a) Throughput vs switch memory slots for think times 0/5/10/100 us:
//      the think time sets the slot turnover rate, so longer holds need
//      more slots for the same throughput.
//  (b) Throughput vs slots for knapsack vs random allocation: knapsack
//      reaches peak throughput with a few thousand slots; random wastes
//      memory on unpopular locks and barely improves.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

double RunOne(std::uint32_t slots, SimTime think_time, bool random_alloc) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  // Same server-bound regime as Figure 13 (paper-equivalent ~5:1 client
  // oversubscription of the lock servers).
  config.client_machines = 10;
  config.sessions_per_machine = 32;
  config.lock_servers = 2;
  config.server_config.cores = 2;
  config.switch_config.queue_capacity = std::max(slots, 1u);
  config.txn_config.think_time = think_time;
  // Same memory-allocation regime as Figure 13 (see fig13_memory_alloc.cc).
  TpccConfig tpcc;
  tpcc.warehouses = TpccWarehouses(10, /*high_contention=*/false);
  tpcc.lock_items = false;
  tpcc.lock_stock = false;
  tpcc.customer_granularity = 16;
  config.workload_factory = TpccFactory(tpcc);
  Testbed testbed(config);
  if (slots > 0) {
    ProfileAndInstall(testbed, slots, random_alloc,
                      /*profile_duration=*/40 * kMillisecond,
                      /*random_seed=*/777);
  } else {
    testbed.netlock().control_plane().StartLeasePolling();
  }
  const RunMetrics m = testbed.Run(/*warmup=*/20 * kMillisecond,
                                   /*measure=*/80 * kMillisecond);
  testbed.StopEngines(kSecond);
  return m.LockThroughputMrps();
}

}  // namespace
}  // namespace netlock

int main() {
  using namespace netlock;
  std::printf(
      "NetLock reproduction — Figure 14 (impact of switch memory size)\n"
      "TPC-C low contention, 10 clients + 2 lock servers.\n");

  Banner("Figure 14(a): throughput (MRPS) vs slots, by think time");
  {
    const std::uint32_t slot_points[] = {0, 500, 1000, 2000, 3000, 4000};
    Table table({"slots", "think=0us", "think=5us", "think=10us",
                 "think=100us"});
    for (const std::uint32_t slots : slot_points) {
      std::fprintf(stderr, "  fig14a slots=%u...\n", slots);
      table.AddRow({std::to_string(slots),
                    Fmt(RunOne(slots, 0, false), 2),
                    Fmt(RunOne(slots, 5 * kMicrosecond, false), 2),
                    Fmt(RunOne(slots, 10 * kMicrosecond, false), 2),
                    Fmt(RunOne(slots, 100 * kMicrosecond, false), 2)});
    }
    table.Print();
  }

  Banner("Figure 14(b): throughput (MRPS) vs slots, knapsack vs random");
  {
    const std::uint32_t slot_points[] = {0,    1000,  3000,  5000,
                                         10000, 20000, 40000};
    Table table({"slots", "knapsack", "random"});
    for (const std::uint32_t slots : slot_points) {
      std::fprintf(stderr, "  fig14b slots=%u...\n", slots);
      table.AddRow({std::to_string(slots),
                    Fmt(RunOne(slots, 10 * kMicrosecond, false), 2),
                    Fmt(RunOne(slots, 10 * kMicrosecond, true), 2)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): (a) zero think time saturates fastest and\n"
      "highest; 100 us think time stays low regardless of memory. (b)\n"
      "knapsack reaches its peak within a few thousand slots; random\n"
      "improves only marginally with much more memory.\n");
  return 0;
}
