// Figure 11 — System comparison under TPC-C with six clients and six lock
// servers (paper Section 6.3). Lock servers are less loaded than in
// Figure 10, but NetLock still wins by an order of magnitude.
#include "tpcc_compare.h"

int main(int argc, char** argv) {
  return netlock::bench::RunFigure("Figure 11", "fig11_tpcc_6c6s",
                                   /*client_machines=*/6,
                                   /*lock_servers=*/6,
                                   /*warmup=*/20 * netlock::kMillisecond,
                                   /*measure=*/100 * netlock::kMillisecond,
                                   argc, argv);
}
