// Figure 10 — System comparison under TPC-C with ten clients and two lock
// servers (paper Section 6.3): lock throughput, transaction throughput,
// average latency, and tail latency for DSLR, DrTM, NetChain, and NetLock
// under low- and high-contention TPC-C.
#include "tpcc_compare.h"

int main(int argc, char** argv) {
  return netlock::bench::RunFigure("Figure 10", "fig10_tpcc_10c2s",
                                   /*client_machines=*/10,
                                   /*lock_servers=*/2,
                                   /*warmup=*/20 * netlock::kMillisecond,
                                   /*measure=*/100 * netlock::kMillisecond,
                                   argc, argv);
}
