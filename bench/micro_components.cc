// Component microbenchmarks (google-benchmark): wall-clock speed of the
// building blocks — header serialization, shared-queue slot access,
// Algorithm 2 acquire/release in the data-plane model, Algorithm 3
// allocation, Zipf sampling, and the event queue. These are sanity checks
// that the simulator itself is fast enough to drive the figure benches,
// not paper results.
//
// The binary also runs a short traced NetLock rack and prints the
// per-stage acquire-latency breakdown (wire / pipeline / queue wait /
// server service) computed from the recorded spans.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/tracelog.h"
#include "core/lock_engine.h"
#include "core/memory_alloc.h"
#include "dataplane/switch_dataplane.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "harness/trace_analysis.h"
#include "net/lock_wire.h"
#include "rt/rt_lock_service.h"
#include "rt/spsc_ring.h"
#include "sim/simulator.h"
#include "workload/tpcc.h"

namespace netlock {
namespace {

void BM_LockHeaderSerialize(benchmark::State& state) {
  LockHeader hdr;
  hdr.lock_id = 42;
  hdr.txn_id = 7;
  Packet pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdr.SerializeTo(pkt));
  }
}
BENCHMARK(BM_LockHeaderSerialize);

void BM_LockHeaderParse(benchmark::State& state) {
  LockHeader hdr;
  hdr.lock_id = 42;
  Packet pkt;
  hdr.SerializeTo(pkt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LockHeader::Parse(pkt));
  }
}
BENCHMARK(BM_LockHeaderParse);

// The google-benchmark loops run a wall-clock-adaptive number of
// iterations, so each gets an isolated SimContext: their telemetry must
// not leak into the report's registry dump, which stays byte-identical
// across runs (only fixed-iteration scenarios report globally).

void BM_EventQueuePushPop(benchmark::State& state) {
  SimContext context;
  Simulator sim(&context);
  std::uint64_t t = 0;
  for (auto _ : state) {
    sim.Schedule((t++ % 64), []() {});
    sim.Step();
  }
}
BENCHMARK(BM_EventQueuePushPop);

/// A callable padded to N bytes; models event closures of varying capture
/// size (tiny timer lambdas up to full packet-delivery closures).
template <std::size_t N>
struct SizedEvent {
  std::uint64_t* sink;
  unsigned char pad[N - sizeof(std::uint64_t*)] = {};
  void operator()() const { ++*sink; }
};

/// Push/pop with a round-robin mix of event sizes — the arena must stay
/// allocation-free across all of them (every size fits kInlineCapacity).
void BM_EventQueueMixedSizes(benchmark::State& state) {
  SimContext context;
  Simulator sim(&context);
  std::uint64_t sink = 0;
  std::uint64_t t = 0;
  for (auto _ : state) {
    switch (t & 3) {
      case 0: sim.Schedule(t % 64, SizedEvent<16>{&sink}); break;
      case 1: sim.Schedule(t % 64, SizedEvent<48>{&sink}); break;
      case 2: sim.Schedule(t % 64, SizedEvent<88>{&sink}); break;
      default: sim.Schedule(t % 64, SizedEvent<104>{&sink}); break;
    }
    sim.Step();
    ++t;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueMixedSizes);

/// The simulator's hottest real path: Network::Send scheduling a packet
/// delivery (80-byte Packet + pointer, stored inline in the event arena)
/// and the event loop delivering it.
void BM_EventQueuePacketDelivery(benchmark::State& state) {
  SimContext context;
  Simulator sim(&context);
  Network net(sim, /*default_one_way_latency=*/1000);
  std::uint64_t delivered = 0;
  const NodeId receiver = net.AddNode([&](const Packet&) { ++delivered; });
  const NodeId sender = net.AddNode([](const Packet&) {});
  Packet pkt;
  pkt.src = sender;
  pkt.dst = receiver;
  pkt.set_size(32);
  for (auto _ : state) {
    net.Send(pkt);
    sim.Step();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueuePacketDelivery);

void BM_SwitchAcquireRelease(benchmark::State& state) {
  SimContext context;
  Simulator sim(&context);
  Network net(sim, 1000);
  LockSwitchConfig config;
  config.queue_capacity = 1024;
  config.array_size = 256;
  config.max_locks = 64;
  LockSwitch lock_switch(net, config);
  const NodeId client = net.AddNode([](const Packet&) {});
  const NodeId server = net.AddNode([](const Packet&) {});
  lock_switch.InstallLock(1, server, 16);
  LockHeader acquire;
  acquire.op = LockOp::kAcquire;
  acquire.lock_id = 1;
  acquire.mode = LockMode::kExclusive;
  acquire.client_node = client;
  LockHeader release = acquire;
  release.op = LockOp::kRelease;
  const Packet acquire_pkt = MakeLockPacket(client, lock_switch.node(),
                                            acquire);
  const Packet release_pkt = MakeLockPacket(client, lock_switch.node(),
                                            release);
  for (auto _ : state) {
    lock_switch.HandlePacket(acquire_pkt);
    lock_switch.HandlePacket(release_pkt);
    // Drain the grant deliveries.
    while (sim.Step()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SwitchAcquireRelease);

void BM_KnapsackAllocate(benchmark::State& state) {
  Rng rng(1);
  std::vector<LockDemand> demands;
  for (int i = 0; i < state.range(0); ++i) {
    demands.push_back(LockDemand{
        static_cast<LockId>(i), static_cast<double>(rng.NextBounded(1000)),
        static_cast<std::uint32_t>(1 + rng.NextBounded(32))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KnapsackAllocate(demands, 100'000));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KnapsackAllocate)->Arg(1000)->Arg(10000)->Arg(100000);

/// Single-push/pop through the rt mailbox ring: the per-request cost the
/// non-batched submit path pays (one release-store per item on each side).
void BM_SpscRingPushSingle(benchmark::State& state) {
  rt::SpscRing<rt::RtRequest> ring(1024);
  rt::RtRequest req;
  req.lock = 42;
  rt::RtRequest out[64];
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(ring.TryPush(req));
    benchmark::DoNotOptimize(ring.PopBatch(out, 64));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpscRingPushSingle);

/// Batched push through the same ring: one release-store publishes the
/// whole batch (the submit-flush path of `--batch-submit=on`).
void BM_SpscRingPushBatch(benchmark::State& state) {
  rt::SpscRing<rt::RtRequest> ring(1024);
  rt::RtRequest batch[64];
  for (auto& r : batch) r.lock = 42;
  rt::RtRequest out[64];
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.PushBatch(batch, 64));
    benchmark::DoNotOptimize(ring.PopBatch(out, 64));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpscRingPushBatch);

/// Counts grants without delivering anywhere: isolates the engine itself.
struct NullGrantSink final : public GrantSink {
  void DeliverGrant(LockId, const QueueSlot&) override { ++grants; }
  std::uint64_t grants = 0;
};

/// Steady-state acquire/release against a fixed lock set with constant
/// queue depth 3 — every release cascades a grant to the next waiter, the
/// contended-lock hot path of both the sim server and the rt backend.
void BM_LockEngineAcquireRelease(benchmark::State& state) {
  NullGrantSink sink;
  LockEngine engine(sink);
  constexpr LockId kLocks = 256;
  constexpr int kDepth = 3;
  // Per-lock FIFO txn ids: entry seq S of lock L is (L << 32 | S).
  const auto txn_of = [](LockId lock, TxnId seq) {
    return (static_cast<TxnId>(lock) << 32) | seq;
  };
  std::vector<TxnId> head_seq(kLocks, 0);
  std::vector<TxnId> tail_seq(kLocks, 0);
  // Prime each lock with kDepth exclusive entries (head granted).
  for (LockId lock = 0; lock < kLocks; ++lock) {
    for (int d = 0; d < kDepth; ++d) {
      QueueSlot slot;
      slot.txn_id = txn_of(lock, tail_seq[lock]++);
      slot.client_node = 1;
      engine.Acquire(lock, slot, 0);
    }
  }
  LockId lock = 0;
  SimTime now = 1;
  for (auto _ : state) {
    engine.Release(lock, LockMode::kExclusive,
                   txn_of(lock, head_seq[lock]++),
                   /*lease_forced=*/false, now);
    QueueSlot slot;
    slot.txn_id = txn_of(lock, tail_seq[lock]++);
    slot.client_node = 1;
    engine.Acquire(lock, slot, now);
    lock = (lock + 1) & (kLocks - 1);
    ++now;
  }
  benchmark::DoNotOptimize(sink.grants);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_LockEngineAcquireRelease);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 0.99);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_TpccNextTxn(benchmark::State& state) {
  TpccConfig config;
  config.warehouses = 100;
  TpccWorkload workload(config);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Next(rng));
  }
}
BENCHMARK(BM_TpccNextTxn);

/// Runs a short contended NetLock rack with tracing on and decomposes the
/// client RTT into per-stage spans. Traces the measured window only (the
/// profiling phase is cleared), so means reflect steady state.
void RunLatencyBreakdown(BenchReport& report) {
  TraceLog& log = TraceLog::Global();
  const bool keep_trace = !report.options().trace_dir.empty();

  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 1;
  MicroConfig micro;
  micro.num_locks = 100;
  micro.zipf_alpha = 0.9;  // Contention: a visible queue-wait share.
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  ProfileAndInstall(testbed, config.switch_config.queue_capacity,
                    /*random_strawman=*/false,
                    /*profile_duration=*/10 * kMillisecond);

  log.Enable(keep_trace ? report.options().trace_sample : 1);
  log.Clear();
  testbed.StartEngines();
  testbed.sim().RunUntil(testbed.sim().now() + 50 * kMillisecond);
  testbed.StopEngines();
  log.Disable();

  const TraceBreakdown bd = ComputeBreakdown(log);
  PrintBreakdown("NetLock micro, 16 sessions, zipf 0.9", bd);
  BenchRun& run = report.AddRun("latency_breakdown");
  run.mean_ns = bd.rtt.MeanNs();
  run.samples = bd.rtt.count;
  run.extra.emplace_back("rtt_ns_mean", bd.rtt.MeanNs());
  run.extra.emplace_back("wire_ns_mean", bd.wire.MeanNs());
  run.extra.emplace_back("queue_wait_ns_mean", bd.queue_wait.MeanNs());
  run.extra.emplace_back("server_service_ns_mean",
                         bd.server_service.MeanNs());
  run.extra.emplace_back("pipeline_passes_mean", bd.pipeline_passes_mean);
  // Without --trace-dir nothing will consume the events; drop them.
  if (!keep_trace) log.Clear();
}

/// Measures steady-state packet-delivery throughput of the event loop with
/// a fixed iteration count and records events/sec plus the heap-fallback
/// delta in the JSON report. This is the number the acceptance gate and the
/// simulator-performance section of EXPERIMENTS.md track: the loop must be
/// allocation-free (fallback delta 0) and fast.
void RecordEventThroughput(BenchReport& report, bool quick) {
  Simulator sim;
  Network net(sim, /*default_one_way_latency=*/1000);
  std::uint64_t delivered = 0;
  const NodeId receiver = net.AddNode([&](const Packet&) { ++delivered; });
  const NodeId sender = net.AddNode([](const Packet&) {});
  Packet pkt;
  pkt.src = sender;
  pkt.dst = receiver;
  pkt.set_size(32);
  const std::uint64_t fallbacks_before = InlineEvent::heap_fallbacks();
  const std::uint64_t iters = quick ? 2'000'000 : 8'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    net.Send(pkt);
    sim.Step();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double events_per_sec =
      secs > 0.0 ? static_cast<double>(iters) / secs : 0.0;
  const double fallback_delta = static_cast<double>(
      InlineEvent::heap_fallbacks() - fallbacks_before);
  std::printf(
      "\nevent-loop packet throughput: %.0f events/sec "
      "(%llu hops, heap fallbacks %+.0f)\n",
      events_per_sec, static_cast<unsigned long long>(delivered),
      fallback_delta);
  BenchRun& run = report.AddRun("event_queue_packet_throughput");
  run.samples = iters;
  run.extra.emplace_back("events_per_sec", events_per_sec);
  run.extra.emplace_back("heap_fallbacks_delta", fallback_delta);
}

/// Fixed-iteration twins of BM_SpscRingPushSingle/PushBatch, recorded into
/// the JSON report so the batched-submit win is trackable PR over PR.
void RecordRingThroughput(BenchReport& report, bool quick) {
  constexpr std::size_t kBatch = 64;
  const std::uint64_t rounds = quick ? 200'000 : 2'000'000;
  rt::RtRequest batch[kBatch];
  for (auto& r : batch) r.lock = 42;
  rt::RtRequest out[kBatch];
  const auto run = [&](bool batched) {
    rt::SpscRing<rt::RtRequest> ring(1024);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < rounds; ++i) {
      if (batched) {
        benchmark::DoNotOptimize(ring.PushBatch(batch, kBatch));
      } else {
        for (std::size_t j = 0; j < kBatch; ++j) {
          benchmark::DoNotOptimize(ring.TryPush(batch[j]));
        }
      }
      benchmark::DoNotOptimize(ring.PopBatch(out, kBatch));
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return secs > 0.0 ? static_cast<double>(rounds * kBatch) / secs : 0.0;
  };
  const double single = run(false);
  const double batched = run(true);
  std::printf(
      "\nspsc ring: %.0f items/sec single-push, %.0f items/sec "
      "batch-push (x%.2f)\n",
      single, batched, single > 0 ? batched / single : 0.0);
  BenchRun& run_json = report.AddRun("spsc_ring_throughput");
  run_json.samples = rounds * kBatch;
  run_json.extra.emplace_back("ring_push_single_items_per_sec", single);
  run_json.extra.emplace_back("ring_push_batch_items_per_sec", batched);
}

/// Fixed-iteration twin of BM_LockEngineAcquireRelease (flat-table hot
/// path); ops/sec recorded in the JSON report. bench/README.md keeps the
/// pre-flat-table baseline for comparison.
void RecordLockEngineThroughput(BenchReport& report, bool quick) {
  NullGrantSink sink;
  LockEngine engine(sink);
  constexpr LockId kLocks = 256;
  constexpr int kDepth = 3;
  const auto txn_of = [](LockId lock, TxnId seq) {
    return (static_cast<TxnId>(lock) << 32) | seq;
  };
  std::vector<TxnId> head_seq(kLocks, 0);
  std::vector<TxnId> tail_seq(kLocks, 0);
  for (LockId lock = 0; lock < kLocks; ++lock) {
    for (int d = 0; d < kDepth; ++d) {
      QueueSlot slot;
      slot.txn_id = txn_of(lock, tail_seq[lock]++);
      slot.client_node = 1;
      engine.Acquire(lock, slot, 0);
    }
  }
  const std::uint64_t iters = quick ? 2'000'000 : 10'000'000;
  LockId lock = 0;
  SimTime now = 1;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    engine.Release(lock, LockMode::kExclusive,
                   txn_of(lock, head_seq[lock]++),
                   /*lease_forced=*/false, now);
    QueueSlot slot;
    slot.txn_id = txn_of(lock, tail_seq[lock]++);
    slot.client_node = 1;
    engine.Acquire(lock, slot, now);
    lock = (lock + 1) & (kLocks - 1);
    ++now;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  const double ops_per_sec =
      secs > 0.0 ? static_cast<double>(iters * 2) / secs : 0.0;
  std::printf("lock engine acquire/release: %.0f ops/sec (%" PRIu64
              " grants)\n",
              ops_per_sec, sink.grants);
  BenchRun& run = report.AddRun("lock_engine_throughput");
  run.samples = iters * 2;
  run.extra.emplace_back("lock_engine_ops_per_sec", ops_per_sec);
}

}  // namespace
}  // namespace netlock

// Custom main instead of BENCHMARK_MAIN: the shared bench flags (--quick,
// --json-dir, --trace-dir, --trace-sample) must be stripped before
// google-benchmark parses the command line, and the registry dump is
// written like every other bench.
int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("micro_components", ParseBenchOptions(argc, argv));
  // The google-benchmark loops below hammer components millions of times;
  // tracing them would flood the log with junk timestamps. Only the
  // breakdown scenario afterwards records.
  TraceLog::Global().Disable();
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) continue;
    if (std::strncmp(argv[i], "--json-dir=", 11) == 0) continue;
    if (std::strcmp(argv[i], "--json-dir") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--trace-dir=", 12) == 0) continue;
    if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) continue;
    // --jobs is a sweep-parallelism flag; this bench has no sweeps and
    // google-benchmark would reject the unknown flag.
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) continue;
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  std::string min_time = "--benchmark_min_time=0.01";  // 1.7.x: plain double.
  if (report.quick()) bench_argv.push_back(min_time.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RecordEventThroughput(report, report.quick());
  RecordRingThroughput(report, report.quick());
  RecordLockEngineThroughput(report, report.quick());
  RunLatencyBreakdown(report);
  return report.Write() ? 0 : 1;
}
