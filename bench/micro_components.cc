// Component microbenchmarks (google-benchmark): wall-clock speed of the
// building blocks — header serialization, shared-queue slot access,
// Algorithm 2 acquire/release in the data-plane model, Algorithm 3
// allocation, Zipf sampling, and the event queue. These are sanity checks
// that the simulator itself is fast enough to drive the figure benches,
// not paper results.
//
// The binary also runs a short traced NetLock rack and prints the
// per-stage acquire-latency breakdown (wire / pipeline / queue wait /
// server service) computed from the recorded spans.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/tracelog.h"
#include "core/memory_alloc.h"
#include "dataplane/switch_dataplane.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "harness/trace_analysis.h"
#include "net/lock_wire.h"
#include "sim/simulator.h"
#include "workload/tpcc.h"

namespace netlock {
namespace {

void BM_LockHeaderSerialize(benchmark::State& state) {
  LockHeader hdr;
  hdr.lock_id = 42;
  hdr.txn_id = 7;
  Packet pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdr.SerializeTo(pkt));
  }
}
BENCHMARK(BM_LockHeaderSerialize);

void BM_LockHeaderParse(benchmark::State& state) {
  LockHeader hdr;
  hdr.lock_id = 42;
  Packet pkt;
  hdr.SerializeTo(pkt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LockHeader::Parse(pkt));
  }
}
BENCHMARK(BM_LockHeaderParse);

void BM_EventQueuePushPop(benchmark::State& state) {
  Simulator sim;
  std::uint64_t t = 0;
  for (auto _ : state) {
    sim.Schedule((t++ % 64), []() {});
    sim.Step();
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SwitchAcquireRelease(benchmark::State& state) {
  Simulator sim;
  Network net(sim, 1000);
  LockSwitchConfig config;
  config.queue_capacity = 1024;
  config.array_size = 256;
  config.max_locks = 64;
  LockSwitch lock_switch(net, config);
  const NodeId client = net.AddNode([](const Packet&) {});
  const NodeId server = net.AddNode([](const Packet&) {});
  lock_switch.InstallLock(1, server, 16);
  LockHeader acquire;
  acquire.op = LockOp::kAcquire;
  acquire.lock_id = 1;
  acquire.mode = LockMode::kExclusive;
  acquire.client_node = client;
  LockHeader release = acquire;
  release.op = LockOp::kRelease;
  const Packet acquire_pkt = MakeLockPacket(client, lock_switch.node(),
                                            acquire);
  const Packet release_pkt = MakeLockPacket(client, lock_switch.node(),
                                            release);
  for (auto _ : state) {
    lock_switch.HandlePacket(acquire_pkt);
    lock_switch.HandlePacket(release_pkt);
    // Drain the grant deliveries.
    while (sim.Step()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SwitchAcquireRelease);

void BM_KnapsackAllocate(benchmark::State& state) {
  Rng rng(1);
  std::vector<LockDemand> demands;
  for (int i = 0; i < state.range(0); ++i) {
    demands.push_back(LockDemand{
        static_cast<LockId>(i), static_cast<double>(rng.NextBounded(1000)),
        static_cast<std::uint32_t>(1 + rng.NextBounded(32))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KnapsackAllocate(demands, 100'000));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KnapsackAllocate)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 0.99);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_TpccNextTxn(benchmark::State& state) {
  TpccConfig config;
  config.warehouses = 100;
  TpccWorkload workload(config);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Next(rng));
  }
}
BENCHMARK(BM_TpccNextTxn);

/// Runs a short contended NetLock rack with tracing on and decomposes the
/// client RTT into per-stage spans. Traces the measured window only (the
/// profiling phase is cleared), so means reflect steady state.
void RunLatencyBreakdown(BenchReport& report) {
  TraceLog& log = TraceLog::Global();
  const bool keep_trace = !report.options().trace_dir.empty();

  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 1;
  MicroConfig micro;
  micro.num_locks = 100;
  micro.zipf_alpha = 0.9;  // Contention: a visible queue-wait share.
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  ProfileAndInstall(testbed, config.switch_config.queue_capacity,
                    /*random_strawman=*/false,
                    /*profile_duration=*/10 * kMillisecond);

  log.Enable(keep_trace ? report.options().trace_sample : 1);
  log.Clear();
  testbed.StartEngines();
  testbed.sim().RunUntil(testbed.sim().now() + 50 * kMillisecond);
  testbed.StopEngines();
  log.Disable();

  const TraceBreakdown bd = ComputeBreakdown(log);
  PrintBreakdown("NetLock micro, 16 sessions, zipf 0.9", bd);
  BenchRun& run = report.AddRun("latency_breakdown");
  run.mean_ns = bd.rtt.MeanNs();
  run.samples = bd.rtt.count;
  run.extra.emplace_back("rtt_ns_mean", bd.rtt.MeanNs());
  run.extra.emplace_back("wire_ns_mean", bd.wire.MeanNs());
  run.extra.emplace_back("queue_wait_ns_mean", bd.queue_wait.MeanNs());
  run.extra.emplace_back("server_service_ns_mean",
                         bd.server_service.MeanNs());
  run.extra.emplace_back("pipeline_passes_mean", bd.pipeline_passes_mean);
  // Without --trace-dir nothing will consume the events; drop them.
  if (!keep_trace) log.Clear();
}

}  // namespace
}  // namespace netlock

// Custom main instead of BENCHMARK_MAIN: the shared bench flags (--quick,
// --json-dir, --trace-dir, --trace-sample) must be stripped before
// google-benchmark parses the command line, and the registry dump is
// written like every other bench.
int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("micro_components", ParseBenchOptions(argc, argv));
  // The google-benchmark loops below hammer components millions of times;
  // tracing them would flood the log with junk timestamps. Only the
  // breakdown scenario afterwards records.
  TraceLog::Global().Disable();
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) continue;
    if (std::strncmp(argv[i], "--json-dir=", 11) == 0) continue;
    if (std::strcmp(argv[i], "--json-dir") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--trace-dir=", 12) == 0) continue;
    if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) continue;
    bench_argv.push_back(argv[i]);
  }
  std::string min_time = "--benchmark_min_time=0.01";  // 1.7.x: plain double.
  if (report.quick()) bench_argv.push_back(min_time.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunLatencyBreakdown(report);
  return report.Write() ? 0 : 1;
}
