// Figure 12 — Policy support of NetLock (paper Section 6.3).
//
//  (a) Service differentiation with priorities: two tenants with five
//      clients each; the high-priority tenant joins mid-run. Without
//      differentiation both get similar throughput; with it, the
//      high-priority tenant is served first. Printed as a throughput time
//      series per tenant.
//  (b) Performance isolation with per-tenant quota: tenant 1 has seven
//      clients, tenant 2 three. Without isolation tenant 1 starves
//      tenant 2; with quotas both obtain their (equal) shares.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

void ServiceDifferentiation(bool differentiate) {
  Banner(std::string("Figure 12(a) service differentiation — ") +
         (differentiate ? "WITH priorities" : "WITHOUT priorities"));
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 5;  // 5 clients per tenant.
  config.lock_servers = 1;
  config.switch_config.num_priorities = differentiate ? 2 : 1;
  config.txn_config.think_time = 15 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 4;  // Heavily contended: priority decides who waits.
  config.workload_factory = MicroFactory(micro);
  // Engines 0..4 = high-priority tenant, 5..9 = low-priority tenant.
  config.priority_of = [](int i) {
    return static_cast<Priority>(i < 5 ? 0 : 1);
  };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  TimeSeries high(20 * kMillisecond), low(20 * kMillisecond);
  for (int i = 0; i < testbed.num_engines(); ++i) {
    testbed.engine(i).set_commit_series(i < 5 ? &high : &low);
  }
  // Low-priority tenant runs alone first; high-priority joins at t=100ms.
  for (int i = 5; i < 10; ++i) testbed.engine(i).Restart();
  testbed.sim().RunUntil(100 * kMillisecond);
  for (int i = 0; i < 5; ++i) testbed.engine(i).Restart();
  testbed.sim().RunUntil(300 * kMillisecond);
  testbed.StopEngines(kSecond);

  Table table({"t(s)", "high-prio (KTPS)", "low-prio (KTPS)"});
  for (std::size_t b = 0; b < 15; ++b) {
    table.AddRow({Fmt(high.BucketTimeSeconds(b), 2),
                  Fmt(high.BucketRate(b) / 1e3, 1),
                  Fmt(low.BucketRate(b) / 1e3, 1)});
  }
  table.Print();
}

void PerformanceIsolation(bool isolate) {
  Banner(std::string("Figure 12(b) performance isolation — ") +
         (isolate ? "WITH per-tenant quota" : "WITHOUT isolation"));
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 5;
  config.lock_servers = 1;
  config.txn_config.think_time = 0;
  MicroConfig micro;
  micro.num_locks = 20'000;  // Uncontended: pure rate competition.
  config.workload_factory = MicroFactory(micro);
  // Tenant 1: engines 0..6 (seven clients); tenant 2: engines 7..9.
  config.tenant_of = [](int i) { return static_cast<TenantId>(i >= 7); };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  if (isolate) {
    // Equal shares of the aggregate lock-request rate, below both tenants'
    // offered load so each is held to its share (paper Figure 12(b)).
    testbed.netlock().lock_switch().quota().Configure(0, 4e5, 64);
    testbed.netlock().lock_switch().quota().Configure(1, 4e5, 64);
  }
  testbed.Run(/*warmup=*/20 * kMillisecond, /*measure=*/200 * kMillisecond);
  std::uint64_t t1 = 0, t2 = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    (i < 7 ? t1 : t2) += testbed.engine(i).metrics().txn_commits;
  }
  testbed.StopEngines();
  Table table({"tenant", "clients", "tput(MTPS)"});
  table.AddRow({"tenant1", "7", Fmt(t1 / 0.2 / 1e6, 3)});
  table.AddRow({"tenant2", "3", Fmt(t2 / 0.2 / 1e6, 3)});
  table.Print();
}

}  // namespace
}  // namespace netlock

int main() {
  using namespace netlock;
  std::printf("NetLock reproduction — Figure 12 (policy support)\n");
  ServiceDifferentiation(false);
  ServiceDifferentiation(true);
  PerformanceIsolation(false);
  PerformanceIsolation(true);
  std::printf(
      "\nExpected shape (paper): (a) without differentiation the tenants\n"
      "converge once both are active; with it the high-priority tenant\n"
      "keeps nearly its full rate. (b) without isolation tenant1 (7\n"
      "clients) outruns tenant2 (3 clients); with quotas both are capped\n"
      "at similar throughput.\n");
  return 0;
}
