// Figure 12 — Policy support of NetLock (paper Section 6.3).
//
//  (a) Service differentiation with priorities: two tenants with five
//      clients each; the high-priority tenant joins mid-run. Without
//      differentiation both get similar throughput; with it, the
//      high-priority tenant is served first. Printed as a throughput time
//      series per tenant.
//  (b) Performance isolation with per-tenant quota: tenant 1 has seven
//      clients, tenant 2 three. Without isolation tenant 1 starves
//      tenant 2; with quotas both obtain their (equal) shares.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

void ServiceDifferentiation(bool differentiate, BenchReport& report) {
  Banner(std::string("Figure 12(a) service differentiation — ") +
         (differentiate ? "WITH priorities" : "WITHOUT priorities"));
  // --quick compresses the timeline (same phases, half the wall cost).
  const SimTime join_at =
      report.quick() ? 50 * kMillisecond : 100 * kMillisecond;
  const SimTime end_at =
      report.quick() ? 150 * kMillisecond : 300 * kMillisecond;
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 5;  // 5 clients per tenant.
  config.lock_servers = 1;
  config.switch_config.num_priorities = differentiate ? 2 : 1;
  config.txn_config.think_time = 15 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 4;  // Heavily contended: priority decides who waits.
  config.workload_factory = MicroFactory(micro);
  // Engines 0..4 = high-priority tenant, 5..9 = low-priority tenant.
  config.priority_of = [](int i) {
    return static_cast<Priority>(i < 5 ? 0 : 1);
  };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  TimeSeries high(20 * kMillisecond), low(20 * kMillisecond);
  for (int i = 0; i < testbed.num_engines(); ++i) {
    testbed.engine(i).set_commit_series(i < 5 ? &high : &low);
  }
  // Low-priority tenant runs alone first; high-priority joins mid-run.
  for (int i = 5; i < 10; ++i) testbed.engine(i).Restart();
  testbed.sim().RunUntil(join_at);
  for (int i = 0; i < 5; ++i) testbed.engine(i).Restart();
  testbed.sim().RunUntil(end_at);
  testbed.StopEngines(kSecond);

  Table table({"t(s)", "high-prio (KTPS)", "low-prio (KTPS)"});
  const std::size_t buckets = end_at / high.bucket_width();
  for (std::size_t b = 0; b < buckets; ++b) {
    table.AddRow({Fmt(high.BucketTimeSeconds(b), 2),
                  Fmt(high.BucketRate(b) / 1e3, 1),
                  Fmt(low.BucketRate(b) / 1e3, 1)});
  }
  table.Print();

  // The machine-readable run reports each tenant's rate over the contended
  // phase (after the high-priority tenant joins).
  const std::string tag =
      differentiate ? "diff/with-prio/" : "diff/without-prio/";
  const double contended_sec =
      static_cast<double>(end_at - join_at) / kSecond;
  auto rate_after_join = [&](const TimeSeries& series) {
    std::uint64_t commits = 0;
    for (std::size_t b = join_at / series.bucket_width(); b < buckets; ++b) {
      commits += series.BucketCount(b);
    }
    return commits / contended_sec / 1e6;
  };
  report.AddRun(tag + "high").txn_mtps = rate_after_join(high);
  report.AddRun(tag + "low").txn_mtps = rate_after_join(low);
}

void PerformanceIsolation(bool isolate, BenchReport& report) {
  Banner(std::string("Figure 12(b) performance isolation — ") +
         (isolate ? "WITH per-tenant quota" : "WITHOUT isolation"));
  const SimTime measure =
      report.quick() ? 50 * kMillisecond : 200 * kMillisecond;
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 5;
  config.lock_servers = 1;
  config.txn_config.think_time = 0;
  MicroConfig micro;
  micro.num_locks = 20'000;  // Uncontended: pure rate competition.
  config.workload_factory = MicroFactory(micro);
  // Tenant 1: engines 0..6 (seven clients); tenant 2: engines 7..9.
  config.tenant_of = [](int i) { return static_cast<TenantId>(i >= 7); };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  if (isolate) {
    // Equal shares of the aggregate lock-request rate, below both tenants'
    // offered load so each is held to its share (paper Figure 12(b)).
    testbed.netlock().lock_switch().quota().Configure(0, 4e5, 64);
    testbed.netlock().lock_switch().quota().Configure(1, 4e5, 64);
  }
  const RunMetrics m = testbed.Run(/*warmup=*/20 * kMillisecond, measure);
  std::uint64_t t1 = 0, t2 = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    (i < 7 ? t1 : t2) += testbed.engine(i).metrics().txn_commits;
  }
  testbed.StopEngines();
  const double sec = static_cast<double>(measure) / kSecond;
  Table table({"tenant", "clients", "tput(MTPS)"});
  table.AddRow({"tenant1", "7", Fmt(t1 / sec / 1e6, 3)});
  table.AddRow({"tenant2", "3", Fmt(t2 / sec / 1e6, 3)});
  table.Print();
  const std::string tag =
      isolate ? "isolation/with-quota/" : "isolation/without-quota/";
  report.AddRun(tag + "all", m);  // Aggregate, with latency percentiles.
  report.AddRun(tag + "tenant1").txn_mtps = t1 / sec / 1e6;
  report.AddRun(tag + "tenant2").txn_mtps = t2 / sec / 1e6;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("fig12_policy", ParseBenchOptions(argc, argv));
  std::printf("NetLock reproduction — Figure 12 (policy support)\n");
  ServiceDifferentiation(false, report);
  ServiceDifferentiation(true, report);
  PerformanceIsolation(false, report);
  PerformanceIsolation(true, report);
  std::printf(
      "\nExpected shape (paper): (a) without differentiation the tenants\n"
      "converge once both are active; with it the high-priority tenant\n"
      "keeps nearly its full rate. (b) without isolation tenant1 (7\n"
      "clients) outruns tenant2 (3 clients); with quotas both are capped\n"
      "at similar throughput.\n");
  return report.Write() ? 0 : 1;
}
