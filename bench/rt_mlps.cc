// Wall-clock lock throughput (MLPS) on the real-time backend, published
// next to the simulated-time number for the same workload.
//
// Every other bench reports simulated-time throughput; this one runs the
// identical micro workload through the same compiled LockEngine on real
// threads (RtLockService behind the execution-substrate seam) and measures
// grants per wall-clock second — the number the paper's testbed would
// print. Methodology (see EXPERIMENTS.md): closed-loop sessions, a warm-up
// window excluded from measurement, then a timed measurement window; the
// "wall_mlps" extra in BENCH_rt_mlps.json carries the wall-clock figure so
// CI can assert the backend actually grants locks at speed.
//
// `--backend=sim` / `--backend=rt` restricts the run to one substrate
// (default: both, so the report carries the pair).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/backend.h"
#include "harness/report.h"

namespace netlock {
namespace {

BackendRunConfig BaseConfig(bool quick) {
  BackendRunConfig config;
  config.workload.num_locks = 10'000;  // Low contention: throughput mode.
  config.workload.locks_per_txn = 1;
  config.workload.shared_fraction = 0.0;
  config.workload.zipf_alpha = 0.0;
  config.seed = 1;
  config.sessions = quick ? 8 : 16;
  config.rt_client_threads = quick ? 2 : 4;
  return config;
}

void RunRt(BenchReport& report) {
  Banner("Real-time backend: wall-clock MLPS vs worker cores");
  Table table({"cores", "wall MLPS", "grants", "avg(us)", "p99(us)",
               "residual q"});
  const std::vector<int> cores_sweep =
      report.quick() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const SimTime warmup =
      report.quick() ? 50 * kMillisecond : 500 * kMillisecond;
  const SimTime measure =
      report.quick() ? 200 * kMillisecond : 2 * kSecond;
  for (const int cores : cores_sweep) {
    BackendRunConfig config = BaseConfig(report.quick());
    config.rt_cores = cores;
    const BackendRunResult result =
        RunMicroTimed(BackendKind::kRt, config, warmup, measure);
    const double mlps =
        result.wall_seconds > 0
            ? static_cast<double>(result.metrics.lock_grants) /
                  result.wall_seconds / 1e6
            : 0.0;
    table.AddRow({std::to_string(cores), Fmt(mlps, 3),
                  std::to_string(result.metrics.lock_grants),
                  FmtUs(static_cast<SimTime>(
                      result.metrics.lock_latency.Mean())),
                  FmtUs(result.metrics.lock_latency.P99()),
                  std::to_string(result.residual_queue_depth)});
    BenchRun& run = report.AddRun(
        "rt/cores=" + std::to_string(cores), result.metrics);
    run.extra.emplace_back("wall_mlps", mlps);
    run.extra.emplace_back("rt_wall_ms", result.wall_seconds * 1e3);
    run.extra.emplace_back(
        "residual_queue_depth",
        static_cast<double>(result.residual_queue_depth));
  }
  table.Print();
}

void RunSim(BenchReport& report) {
  Banner("Simulated twin: same workload, simulated-time MLPS");
  BackendRunConfig config = BaseConfig(report.quick());
  const SimTime warmup = 5 * kMillisecond;
  const SimTime measure =
      report.quick() ? 10 * kMillisecond : 50 * kMillisecond;
  const BackendRunResult result =
      RunMicroTimed(BackendKind::kSim, config, warmup, measure);
  PrintRunSummary("sim (ServerOnly twin)", result.metrics);
  report.AddRun("sim", result.metrics);
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  BenchReport report("rt_mlps", options);
  BackendKind only = BackendKind::kSim;
  const bool restricted =
      !options.backend.empty() && ParseBackendKind(options.backend, &only);
  if (!restricted || only == BackendKind::kRt) RunRt(report);
  if (!restricted || only == BackendKind::kSim) RunSim(report);
  return report.Write() ? 0 : 1;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) { return netlock::Main(argc, argv); }
