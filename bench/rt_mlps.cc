// Wall-clock lock throughput (MLPS) on the real-time backend, published
// next to the simulated-time number for the same workload.
//
// Every other bench reports simulated-time throughput; this one runs the
// identical micro workload through the same compiled LockEngine on real
// threads (RtLockService behind the execution-substrate seam) and measures
// grants per wall-clock second — the number the paper's testbed would
// print. Methodology (see EXPERIMENTS.md): closed-loop sessions, a warm-up
// window excluded from measurement, then a timed measurement window; the
// "wall_mlps" extra in BENCH_rt_mlps.json carries the wall-clock figure so
// CI can assert the backend actually grants locks at speed.
//
// `--backend=sim` / `--backend=rt` restricts the run to one substrate
// (default: both, so the report carries the pair). `--telemetry=off`
// disables the rt observability plane (sharded latency histograms, flight
// recorder, live stats poller) for overhead comparison — CI asserts the
// on/off wall_mlps ratio. `--stats-socket=PATH` serves live snapshots for
// `netlock_top` during the measurement windows.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/backend.h"
#include "harness/report.h"

namespace netlock {
namespace {

struct RtMlpsOptions {
  bool telemetry = true;
  bool batch_submit = true;
  std::string stats_socket;
};

RtMlpsOptions ParseRtMlpsOptions(int argc, char** argv) {
  RtMlpsOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--telemetry=off") options.telemetry = false;
    if (arg == "--telemetry=on") options.telemetry = true;
    if (arg == "--batch-submit=off") options.batch_submit = false;
    if (arg == "--batch-submit=on") options.batch_submit = true;
    if (arg.rfind("--stats-socket=", 0) == 0) {
      options.stats_socket = arg.substr(std::strlen("--stats-socket="));
    }
  }
  return options;
}

BackendRunConfig BaseConfig(bool quick) {
  BackendRunConfig config;
  config.workload.num_locks = 10'000;  // Low contention: throughput mode.
  config.workload.locks_per_txn = 1;
  config.workload.shared_fraction = 0.0;
  config.workload.zipf_alpha = 0.0;
  config.seed = 1;
  config.sessions = quick ? 8 : 16;
  config.rt_client_threads = quick ? 2 : 4;
  return config;
}

void AddLatencyExtras(BenchRun& run, const RunMetrics& metrics) {
  if (!metrics.lock_latency.empty()) {
    run.extra.emplace_back(
        "lock_p90_ns",
        static_cast<double>(metrics.lock_latency.Percentile(0.90)));
  }
  if (!metrics.txn_latency.empty()) {
    run.extra.emplace_back(
        "txn_p50_ns", static_cast<double>(metrics.txn_latency.Median()));
    run.extra.emplace_back(
        "txn_p90_ns",
        static_cast<double>(metrics.txn_latency.Percentile(0.90)));
    // txn_p99_ns is already filled by AddRun(label, metrics).
    run.extra.emplace_back(
        "txn_p999_ns", static_cast<double>(metrics.txn_latency.P999()));
  }
}

void RunRt(BenchReport& report, const RtMlpsOptions& rt_options) {
  Banner("Real-time backend: wall-clock MLPS vs worker cores");
  Table table({"cores", "wall MLPS", "grants", "avg(us)", "p99(us)",
               "residual q"});
  const std::vector<int> cores_sweep =
      report.quick() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const SimTime warmup =
      report.quick() ? 50 * kMillisecond : 500 * kMillisecond;
  const SimTime measure =
      report.quick() ? 200 * kMillisecond : 2 * kSecond;
  for (std::size_t ci = 0; ci < cores_sweep.size(); ++ci) {
    const int cores = cores_sweep[ci];
    BackendRunConfig config = BaseConfig(report.quick());
    config.rt_cores = cores;
    config.rt_telemetry = rt_options.telemetry;
    config.rt_batch_submit = rt_options.batch_submit;
    config.rt_stats_socket = rt_options.stats_socket;
    const BackendRunResult result =
        RunMicroTimed(BackendKind::kRt, config, warmup, measure);
    const double mlps =
        result.wall_seconds > 0
            ? static_cast<double>(result.metrics.lock_grants) /
                  result.wall_seconds / 1e6
            : 0.0;
    table.AddRow({std::to_string(cores), Fmt(mlps, 3),
                  std::to_string(result.metrics.lock_grants),
                  FmtUs(static_cast<SimTime>(
                      result.metrics.lock_latency.Mean())),
                  FmtUs(result.metrics.lock_latency.P99()),
                  std::to_string(result.residual_queue_depth)});
    BenchRun& run = report.AddRun(
        "rt/cores=" + std::to_string(cores), result.metrics);
    run.extra.emplace_back("wall_mlps", mlps);
    run.extra.emplace_back("rt_wall_ms", result.wall_seconds * 1e3);
    run.extra.emplace_back(
        "residual_queue_depth",
        static_cast<double>(result.residual_queue_depth));
    AddLatencyExtras(run, result.metrics);
    // Per-core MLPS: the run-total wall rate split by each core's share of
    // grants (the service counts grants per core over the whole run).
    std::uint64_t total_grants = 0;
    for (const std::uint64_t g : result.core_grants) total_grants += g;
    for (std::size_t c = 0; c < result.core_grants.size(); ++c) {
      const double share =
          total_grants > 0
              ? static_cast<double>(result.core_grants[c]) /
                    static_cast<double>(total_grants)
              : 0.0;
      run.extra.emplace_back("core" + std::to_string(c) + "_mlps",
                             mlps * share);
    }
    // The "time_series" section carries the live poller's view of the
    // largest-cores run (one run keeps the JSON readable).
    if (ci + 1 == cores_sweep.size() && result.has_time_series) {
      report.AttachTimeSeries(result.time_series);
    }
  }
  table.Print();
}

// The batched hot path earns its keep under contention: Zipf-skewed
// multi-lock transactions queue behind each other, releases cascade
// several grants at once, and the per-request doorbell/publish overhead of
// the legacy path dominates. CI runs this twice (--batch-submit=on / off)
// and asserts the on/off wall_mlps ratio on the "rt_contended" run.
void RunRtContended(BenchReport& report, const RtMlpsOptions& rt_options) {
  Banner("Real-time backend: contended Zipf workload (--batch-submit A/B)");
  BackendRunConfig config;
  config.workload.num_locks = 512;
  config.workload.locks_per_txn = 2;
  config.workload.shared_fraction = 0.2;
  config.workload.zipf_alpha = 0.99;
  config.seed = 1;
  config.sessions = report.quick() ? 32 : 64;
  config.rt_client_threads = 1;
  config.rt_cores = 1;
  config.rt_telemetry = rt_options.telemetry;
  config.rt_batch_submit = rt_options.batch_submit;
  // Park-eager idle tuning (shared-host deployment mode): workers park as
  // soon as their mailboxes run dry instead of burning a shared CPU, so
  // every submit-side doorbell that finds the worker parked is a real
  // futex wake. This is the regime batching + doorbell coalescing target:
  // one wake per flush instead of one per request.
  config.rt_spin_rounds = 0;
  config.rt_yield_rounds = 0;
  config.rt_park_timeout_us = 2000;
  const SimTime warmup =
      report.quick() ? 50 * kMillisecond : 500 * kMillisecond;
  const SimTime measure =
      report.quick() ? 200 * kMillisecond : 2 * kSecond;
  const BackendRunResult result =
      RunMicroTimed(BackendKind::kRt, config, warmup, measure);
  const double mlps =
      result.wall_seconds > 0
          ? static_cast<double>(result.metrics.lock_grants) /
                result.wall_seconds / 1e6
          : 0.0;
  std::printf("contended zipf(%.2f) %d locks: %.3f wall MLPS "
              "(batch-submit=%s)\n",
              config.workload.zipf_alpha, config.workload.num_locks, mlps,
              rt_options.batch_submit ? "on" : "off");
  BenchRun& run = report.AddRun("rt_contended", result.metrics);
  run.extra.emplace_back("wall_mlps", mlps);
  run.extra.emplace_back("rt_wall_ms", result.wall_seconds * 1e3);
  run.extra.emplace_back("batch_submit",
                         rt_options.batch_submit ? 1.0 : 0.0);
  AddLatencyExtras(run, result.metrics);
}

void RunSim(BenchReport& report) {
  Banner("Simulated twin: same workload, simulated-time MLPS");
  BackendRunConfig config = BaseConfig(report.quick());
  const SimTime warmup = 5 * kMillisecond;
  const SimTime measure =
      report.quick() ? 10 * kMillisecond : 50 * kMillisecond;
  const BackendRunResult result =
      RunMicroTimed(BackendKind::kSim, config, warmup, measure);
  PrintRunSummary("sim (ServerOnly twin)", result.metrics);
  report.AddRun("sim", result.metrics);
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const RtMlpsOptions rt_options = ParseRtMlpsOptions(argc, argv);
  BenchReport report("rt_mlps", options);
  BackendKind only = BackendKind::kSim;
  const bool restricted =
      !options.backend.empty() && ParseBackendKind(options.backend, &only);
  if (!restricted || only == BackendKind::kRt) {
    RunRt(report, rt_options);
    RunRtContended(report, rt_options);
  }
  if (!restricted || only == BackendKind::kSim) RunSim(report);
  return report.Write() ? 0 : 1;
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) { return netlock::Main(argc, argv); }
