// Scale-out — multi-rack sharding (beyond the paper's single-rack setup).
//
// NetLock is sized per rack: one ToR switch plus a couple of lock servers.
// This bench shards one uniform lock workload across 1 / 2 / 4 racks via
// the client-side LockDirectory (core/sharding.h) and measures aggregate
// lock throughput plus per-rack balance.
//
// The regime is chosen so the racks are the bottleneck: the lock set wants
// about twice as many switch slots as one switch has, so a single rack
// serves most requests from its (much slower) lock servers, while four
// racks hold the whole working set switch-resident. Scaling racks then
// buys both switch memory and server CPU, and aggregate throughput grows
// near-linearly.
//
// Each rack count is an independent simulation: the sweep runs on
// ParallelSweep (--jobs=N), metrics merging back in task order so the JSON
// report is byte-identical to a serial run (wall-clock fields aside).
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

struct RackPoint {
  int racks = 1;
  RunMetrics metrics;
  /// Per-rack grant counts (switch + server), for the balance extras.
  std::vector<std::uint64_t> rack_grants;
  std::vector<std::uint64_t> rack_switch_grants;
};

constexpr int kLocks = 8192;

void RunOne(RackPoint& point, bool quick, SimContext& context) {
  TestbedConfig config;
  config.context = &context;
  config.system = SystemKind::kNetLock;
  config.num_racks = point.racks;
  config.client_machines = 8;
  config.sessions_per_machine = 32;
  config.lock_servers = 2;
  config.server_config.cores = 2;
  // Per-rack switch memory covers ~a quarter of the working set's slot
  // demand (uniform demand wants ~2 slots per lock): one rack is
  // server-bound, four racks are fully switch-resident.
  config.switch_config.queue_capacity = 4096;
  config.switch_config.max_locks = kLocks;
  config.txn_config.think_time = 0;

  MicroConfig micro;
  micro.num_locks = kLocks;
  config.workload_factory = MicroFactory(micro);

  Testbed testbed(config);
  testbed.sharded().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  point.metrics =
      testbed.Run(/*warmup=*/10 * kMillisecond,
                  /*measure=*/quick ? 25 * kMillisecond : 80 * kMillisecond);
  for (int r = 0; r < point.racks; ++r) {
    point.rack_switch_grants.push_back(testbed.sharded().SwitchGrants(r));
    point.rack_grants.push_back(testbed.sharded().SwitchGrants(r) +
                                testbed.sharded().ServerGrants(r));
  }
  testbed.StopEngines(kSecond);
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("scaleout_racks", ParseBenchOptions(argc, argv));
  const bool quick = report.quick();
  std::printf(
      "NetLock scale-out — sharding the lock space across racks\n"
      "%d uniform locks, 8 client machines, 2 lock servers per rack,\n"
      "4096 switch slots per rack.\n",
      kLocks);

  std::vector<RackPoint> points;
  for (const int racks : {1, 2, 4}) points.push_back(RackPoint{racks});
  ParallelSweep(static_cast<int>(points.size()), report.options().jobs,
                [&](int i, SimContext& context) {
                  RackPoint& p = points[static_cast<std::size_t>(i)];
                  std::fprintf(stderr, "  scaleout racks=%d...\n", p.racks);
                  RunOne(p, quick, context);
                });

  Banner("Aggregate lock throughput (MLPS) vs rack count");
  Table table({"racks", "MLPS", "speedup", "switch%", "balance"});
  const double base = points[0].metrics.LockThroughputMrps();
  for (const RackPoint& p : points) {
    // Balance: the least-loaded rack's share of the most-loaded rack's
    // grants (1.0 = perfectly even).
    std::uint64_t lo = p.rack_grants.empty() ? 0 : p.rack_grants[0];
    std::uint64_t hi = lo;
    std::uint64_t total_switch = 0;
    for (std::size_t r = 0; r < p.rack_grants.size(); ++r) {
      lo = std::min(lo, p.rack_grants[r]);
      hi = std::max(hi, p.rack_grants[r]);
      total_switch += p.rack_switch_grants[r];
    }
    const double balance =
        hi == 0 ? 0.0 : static_cast<double>(lo) / static_cast<double>(hi);
    const double switch_share =
        p.metrics.lock_grants == 0
            ? 0.0
            : static_cast<double>(p.metrics.switch_grants) /
                  static_cast<double>(p.metrics.lock_grants);
    table.AddRow({std::to_string(p.racks),
                  Fmt(p.metrics.LockThroughputMrps(), 2),
                  Fmt(base > 0 ? p.metrics.LockThroughputMrps() / base : 0.0,
                      2),
                  Fmt(100.0 * switch_share, 1), Fmt(balance, 2)});

    BenchRun& run =
        report.AddRun("racks=" + std::to_string(p.racks), p.metrics);
    run.extra.emplace_back("racks", static_cast<double>(p.racks));
    run.extra.emplace_back("rack_balance", balance);
    run.extra.emplace_back("switch_share", switch_share);
    for (std::size_t r = 0; r < p.rack_grants.size(); ++r) {
      run.extra.emplace_back("rack" + std::to_string(r) + "_grants",
                             static_cast<double>(p.rack_grants[r]));
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: one rack is server-bound (its switch holds only a\n"
      "quarter of the working set); four racks hold everything\n"
      "switch-resident and aggregate throughput scales near-linearly with\n"
      "balanced per-rack load.\n");
  return report.Write() ? 0 : 1;
}
