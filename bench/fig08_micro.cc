// Figure 8 — Microbenchmark results of switch performance on handling lock
// requests (paper Section 6.2).
//
//  (a) Shared locks: latency vs throughput; latency stays flat (client-side
//      dominated) because the switch processes at line rate.
//  (b) Exclusive locks w/o contention: same shape as (a).
//  (c) Exclusive locks w/ contention: throughput vs number of locks.
//  (d) Exclusive locks w/ contention: latency vs number of locks.
//
// Offered load is swept by varying closed-loop client sessions per machine
// (the testbed's 12 client machines mirror the paper's 12 servers).
#include <cstdio>

#include "client/open_loop.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

constexpr SimTime kWarmup = 5 * kMillisecond;

// --quick trims the sweeps and measurement windows to CI scale.
SimTime Measure(const BenchReport& report) {
  return report.quick() ? 5 * kMillisecond : 20 * kMillisecond;
}

TestbedConfig BaseConfig(int sessions_per_machine) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 12;
  config.sessions_per_machine = sessions_per_machine;
  config.lock_servers = 2;
  config.txn_config.think_time = 0;
  return config;
}

void LatencyVsThroughput(const char* title, double shared_fraction,
                         const char* tag, BenchReport& report) {
  Banner(title);
  Table table({"offered(sessions)", "tput(MRPS)", "avg(us)", "p50(us)",
               "p99(us)", "p99.9(us)"});
  const std::vector<int> sweep =
      report.quick() ? std::vector<int>{8, 48} : std::vector<int>{2, 8, 24, 48, 64};
  for (const int sessions : sweep) {
    TestbedConfig config = BaseConfig(sessions);
    MicroConfig micro;
    micro.num_locks = 100'000;  // No contention.
    micro.shared_fraction = shared_fraction;
    // Room for two slots per lock (the prototype's 100K slots assume a
    // smaller working set; slots are 20 B, so this is still ~4 MB SRAM).
    config.switch_config.queue_capacity = 2 * micro.num_locks + 4096;
    config.workload_factory = MicroFactory(micro);
    Testbed testbed(config);
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    const RunMetrics m = testbed.Run(kWarmup, Measure(report));
    table.AddRow({std::to_string(12 * sessions),
                  Fmt(m.LockThroughputMrps()),
                  FmtUs(static_cast<SimTime>(m.lock_latency.Mean())),
                  FmtUs(m.lock_latency.Median()), FmtUs(m.lock_latency.P99()),
                  FmtUs(m.lock_latency.Percentile(0.999))});
    report.AddRun(std::string(tag) + "/sessions=" +
                      std::to_string(12 * sessions),
                  m);
    testbed.StopEngines();
  }
  table.Print();
}

// Open-loop variant: Poisson arrivals at a swept offered rate, the way the
// paper's DPDK clients load the switch — latency stays flat until the
// clients' own capacity, independent of completions.
void OpenLoopSweep(const char* title, double shared_fraction,
                   BenchReport& report) {
  Banner(title);
  Table table({"offered(MRPS)", "achieved(MRPS)", "avg(us)", "p50(us)",
               "p99(us)", "shed"});
  const std::vector<double> sweep =
      report.quick() ? std::vector<double>{40.0, 120.0}
                     : std::vector<double>{10.0, 40.0, 80.0, 120.0, 160.0};
  const SimTime window = report.quick() ? 3 * kMillisecond : 10 * kMillisecond;
  for (const double offered_mrps : sweep) {
    Simulator sim;
    Network net(sim, 2500);
    LockSwitchConfig sw_config;
    sw_config.queue_capacity = 200'000 + 4096;
    LockSwitch lock_switch(net, sw_config);
    const NodeId server = net.AddNode([](const Packet&) {});
    MicroConfig micro;
    micro.num_locks = 100'000;
    micro.shared_fraction = shared_fraction;
    for (LockId l = 0; l < micro.num_locks; ++l) {
      lock_switch.InstallLock(l, server, 2);
    }
    std::vector<std::unique_ptr<ClientMachine>> machines;
    std::vector<std::unique_ptr<NetLockSession>> sessions;
    std::vector<std::unique_ptr<OpenLoopEngine>> engines;
    const int kMachines = 12;
    const int kEnginesPerMachine = 4;
    for (int m = 0; m < kMachines; ++m) {
      machines.push_back(std::make_unique<ClientMachine>(net));
    }
    for (int i = 0; i < kMachines * kEnginesPerMachine; ++i) {
      NetLockSession::Config sconfig;
      sconfig.switch_node = lock_switch.node();
      sessions.push_back(std::make_unique<NetLockSession>(
          *machines[i % kMachines], sconfig));
      net.SetLatency(sessions.back()->node(), lock_switch.node(), 2500);
      OpenLoopConfig oconfig;
      oconfig.offered_tps =
          offered_mrps * 1e6 / (kMachines * kEnginesPerMachine);
      oconfig.think_time = 0;
      oconfig.max_outstanding = 512;
      engines.push_back(std::make_unique<OpenLoopEngine>(
          sim, *sessions.back(), std::make_unique<MicroWorkload>(micro),
          static_cast<std::uint32_t>(i + 1), 900 + i, oconfig));
      engines.back()->Start();
    }
    sim.RunUntil(2 * kMillisecond);  // Warm up.
    for (auto& engine : engines) engine->SetRecording(true);
    sim.RunUntil(2 * kMillisecond + window);
    RunMetrics total;
    std::uint64_t shed = 0;
    for (auto& engine : engines) {
      engine->Stop();
      total.lock_grants += engine->metrics().lock_grants;
      total.lock_latency.Merge(engine->metrics().lock_latency);
      shed += engine->dropped_arrivals();
    }
    total.duration = window;
    table.AddRow({Fmt(offered_mrps, 0), Fmt(total.LockThroughputMrps()),
                  FmtUs(static_cast<SimTime>(total.lock_latency.Mean())),
                  FmtUs(total.lock_latency.Median()),
                  FmtUs(total.lock_latency.P99()), std::to_string(shed)});
    BenchRun& run = report.AddRun(
        "openloop/offered=" + Fmt(offered_mrps, 0), total);
    run.extra.emplace_back("shed", static_cast<double>(shed));
  }
  table.Print();
}

void ContentionSweep(BenchReport& report) {
  Banner("Figure 8(c)+(d): exclusive locks WITH contention — sweep #locks");
  Table table({"locks", "tput(MRPS)", "avg(us)", "p50(us)", "p99(us)",
               "p99.9(us)"});
  const std::vector<LockId> sweep =
      report.quick() ? std::vector<LockId>{2000u, 10000u}
                     : std::vector<LockId>{500u, 2000u, 4000u, 6000u, 8000u,
                                           10000u};
  for (const LockId locks : sweep) {
    TestbedConfig config = BaseConfig(/*sessions_per_machine=*/64);
    MicroConfig micro;
    micro.num_locks = locks;
    micro.shared_fraction = 0.0;
    config.workload_factory = MicroFactory(micro);
    Testbed testbed(config);
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    const RunMetrics m = testbed.Run(kWarmup, Measure(report));
    table.AddRow({std::to_string(locks), Fmt(m.LockThroughputMrps()),
                  FmtUs(static_cast<SimTime>(m.lock_latency.Mean())),
                  FmtUs(m.lock_latency.Median()), FmtUs(m.lock_latency.P99()),
                  FmtUs(m.lock_latency.Percentile(0.999))});
    report.AddRun("contention/locks=" + std::to_string(locks), m);
    testbed.StopEngines();
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): throughput rises as contention falls with\n"
      "more locks; latency falls from >100us under high contention to a few\n"
      "microseconds under low contention.\n");
}

}  // namespace
}  // namespace netlock

int main(int argc, char** argv) {
  using namespace netlock;
  BenchReport report("fig08_micro", ParseBenchOptions(argc, argv));
  std::printf("NetLock reproduction — Figure 8 (switch microbenchmark)\n");
  LatencyVsThroughput(
      "Figure 8(a): shared locks — latency vs throughput", 1.0, "shared",
      report);
  LatencyVsThroughput(
      "Figure 8(b): exclusive locks w/o contention — latency vs throughput",
      0.0, "excl", report);
  OpenLoopSweep(
      "Figure 8(a/b) open-loop variant: exclusive, Poisson offered load",
      0.0, report);
  ContentionSweep(report);
  return report.Write() ? 0 : 1;
}
