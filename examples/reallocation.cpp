// Dynamic reallocation demo (paper Section 4.3): the workload's hot set
// shifts at runtime; the control plane's demand counters notice, Algorithm 3
// recomputes the allocation, and locks migrate between the switch and the
// lock servers with the pause -> drain -> move protocol.
//
//   $ ./example_reallocation
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

using namespace netlock;

namespace {

// A workload whose hot set is switchable at runtime: phase 0 hammers locks
// [0, 64), phase 1 hammers [1000, 1064).
struct ShiftingConfig {
  int* phase;
};

class ShiftingWorkload final : public WorkloadGenerator {
 public:
  explicit ShiftingWorkload(const int* phase) : phase_(phase) {}

  TxnSpec Next(Rng& rng) override {
    TxnSpec txn;
    const LockId base = *phase_ == 0 ? 0 : 1000;
    txn.locks.push_back(
        {base + static_cast<LockId>(rng.NextBounded(64)),
         rng.NextBool(0.3) ? LockMode::kShared : LockMode::kExclusive});
    return txn;
  }
  LockId lock_space() const override { return 1064; }

 private:
  const int* phase_;
};

}  // namespace

int main() {
  std::printf("NetLock dynamic reallocation demo\n");
  static int phase = 0;

  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 4;
  config.lock_servers = 1;
  // A small switch: only one phase's hot set fits.
  config.switch_config.queue_capacity = 256;
  config.workload_factory = [&](int) {
    return std::make_unique<ShiftingWorkload>(&phase);
  };
  Testbed testbed(config);
  auto& manager = testbed.netlock();
  manager.control_plane().StartLeasePolling();

  auto report = [&](const char* label) {
    const auto locks = manager.lock_switch().table().InstalledLocks();
    LockId lo = kInvalidLock, hi = 0;
    for (const LockId l : locks) {
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    std::printf("%-28s switch locks=%zu (range %u..%u), switch grants=%llu, "
                "server grants=%llu\n",
                label, locks.size(), locks.empty() ? 0 : lo,
                locks.empty() ? 0 : hi,
                static_cast<unsigned long long>(manager.SwitchGrants()),
                static_cast<unsigned long long>(manager.ServerGrants()));
  };

  // Phase 0: profile, allocate, serve from the switch.
  ProfileAndInstall(testbed, 256, false, 30 * kMillisecond);
  report("after phase-0 allocation:");
  testbed.Run(5 * kMillisecond, 50 * kMillisecond);
  report("after phase-0 run:");

  // The workload shifts: locks 1000..1063 become hot; the old hot set is
  // now idle. The switch is serving the wrong locks.
  phase = 1;
  testbed.sim().RunUntil(testbed.sim().now() + 50 * kMillisecond);
  report("after shift (stale alloc):");

  // The control plane reallocates from its demand counters: old locks move
  // out (pause, drain, hand to server), new hot locks move in.
  bool done = false;
  manager.control_plane().Reallocate(256, [&]() { done = true; });
  testbed.sim().RunUntil(testbed.sim().now() + 100 * kMillisecond);
  std::printf("reallocation complete: %s\n", done ? "yes" : "no");
  report("after reallocation:");

  testbed.sim().RunUntil(testbed.sim().now() + 50 * kMillisecond);
  report("after phase-1 run:");
  testbed.StopEngines(kSecond);
  return 0;
}
