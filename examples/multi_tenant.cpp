// Multi-tenant policy demo: service differentiation via per-stage
// priorities and performance isolation via per-tenant quotas (paper
// Section 4.4) — the policies a decentralized lock manager cannot enforce.
//
//   $ ./example_multi_tenant
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

using namespace netlock;

namespace {

void PriorityDemo() {
  Banner("Service differentiation: premium vs batch tenant");
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 4;
  config.lock_servers = 1;
  config.switch_config.num_priorities = 2;  // One queue per stage per class.
  config.txn_config.think_time = 10 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 4;  // Contended lock set.
  config.workload_factory = MicroFactory(micro);
  // Engines 0..3 are the premium tenant (priority 0).
  config.priority_of = [](int i) { return static_cast<Priority>(i >= 4); };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  testbed.Run(10 * kMillisecond, 100 * kMillisecond);
  std::uint64_t premium = 0, batch = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    (i < 4 ? premium : batch) += testbed.engine(i).metrics().txn_commits;
  }
  testbed.StopEngines();
  std::printf("premium tenant: %llu txns, batch tenant: %llu txns "
              "(premium served first on every release)\n",
              static_cast<unsigned long long>(premium),
              static_cast<unsigned long long>(batch));
}

void QuotaDemo() {
  Banner("Performance isolation: greedy tenant capped by quota");
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 4;
  config.lock_servers = 1;
  config.txn_config.think_time = 0;
  MicroConfig micro;
  micro.num_locks = 10'000;  // Uncontended: a pure rate race.
  config.workload_factory = MicroFactory(micro);
  // Tenant 0 runs six greedy engines; tenant 1 only two.
  config.tenant_of = [](int i) { return static_cast<TenantId>(i >= 6); };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  // Cap both tenants to the same share, below each tenant's offered load.
  testbed.netlock().lock_switch().quota().Configure(0, 3e5, 64);
  testbed.netlock().lock_switch().quota().Configure(1, 3e5, 64);
  testbed.Run(10 * kMillisecond, 100 * kMillisecond);
  std::uint64_t greedy = 0, modest = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    (i < 6 ? greedy : modest) += testbed.engine(i).metrics().txn_commits;
  }
  testbed.StopEngines();
  std::printf("tenant0 (6 clients): %llu txns, tenant1 (2 clients): %llu "
              "txns — equal shares despite 3x the clients\n",
              static_cast<unsigned long long>(greedy),
              static_cast<unsigned long long>(modest));
  std::printf("quota rejections issued by the switch: %llu\n",
              static_cast<unsigned long long>(
                  testbed.netlock().lock_switch().stats().rejected_quota));
}

}  // namespace

int main() {
  std::printf("NetLock policy support demo\n");
  PriorityDemo();
  QuotaDemo();
  return 0;
}
