// Multi-rack scalability demo (paper Section 4.5): "For large-scale
// database systems that span multiple racks, each rack runs an instance of
// NetLock to handle the lock requests of its own rack."
//
// Two racks, each with its own lock switch and servers; the lock space is
// range-partitioned between them and a composite client session routes
// each request to its rack — lock throughput scales with racks.
//
//   $ ./example_multi_rack
#include <cstdio>
#include <memory>

#include "client/client.h"
#include "client/txn.h"
#include "core/netlock.h"
#include "harness/report.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/ycsb.h"

using namespace netlock;

namespace {

/// Routes each lock to the NetLock instance owning its range — the
/// client-side view of the directory service's rack partitioning.
class PartitionedSession : public LockSession {
 public:
  PartitionedSession(std::unique_ptr<LockSession> rack0,
                     std::unique_ptr<LockSession> rack1, LockId split)
      : rack0_(std::move(rack0)), rack1_(std::move(rack1)), split_(split) {}

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override {
    Route(lock).Acquire(lock, mode, txn, priority, std::move(cb));
  }
  void Release(LockId lock, LockMode mode, TxnId txn) override {
    Route(lock).Release(lock, mode, txn);
  }
  NodeId node() const override { return rack0_->node(); }

 private:
  LockSession& Route(LockId lock) {
    return lock < split_ ? *rack0_ : *rack1_;
  }

  std::unique_ptr<LockSession> rack0_;
  std::unique_ptr<LockSession> rack1_;
  LockId split_;
};

}  // namespace

int main() {
  std::printf("NetLock multi-rack scale-out demo\n");
  constexpr LockId kKeys = 40'000;
  constexpr LockId kSplit = kKeys / 2;

  auto run = [&](int racks) {
    Simulator sim;
    Network net(sim, 2500);
    std::vector<std::unique_ptr<NetLockManager>> managers;
    for (int r = 0; r < racks; ++r) {
      // Each rack has one switch with memory for half the key space and
      // one weak (single-core) lock server: one rack alone must spill half
      // its locks to the server; two racks hold everything in switches.
      NetLockOptions options;
      options.num_servers = 1;
      options.server_config.cores = 1;
      options.switch_config.queue_capacity = kSplit;
      managers.push_back(std::make_unique<NetLockManager>(net, options));
      std::vector<LockDemand> demands;
      const LockId lo = racks == 1 ? 0 : r * kSplit;
      const LockId hi = racks == 1 ? kKeys : (r + 1) * kSplit;
      for (LockId k = lo; k < hi; ++k) {
        demands.push_back(LockDemand{k, 1.0, 1});
      }
      managers[r]->InstallKnapsack(demands);
    }

    // 64 closed-loop sessions spread over 8 machines running YCSB.
    std::vector<std::unique_ptr<ClientMachine>> machines;
    for (int m = 0; m < 8; ++m) {
      machines.push_back(std::make_unique<ClientMachine>(net));
    }
    std::vector<std::unique_ptr<LockSession>> sessions;
    std::vector<std::unique_ptr<TxnEngine>> engines;
    for (int i = 0; i < 64; ++i) {
      ClientMachine& machine = *machines[i % machines.size()];
      std::unique_ptr<LockSession> session;
      if (racks == 1) {
        session = managers[0]->CreateSession(machine);
        net.SetLatency(session->node(), managers[0]->lock_switch().node(),
                       2500);
      } else {
        auto s0 = managers[0]->CreateSession(machine);
        auto s1 = managers[1]->CreateSession(machine);
        net.SetLatency(s0->node(), managers[0]->lock_switch().node(), 2500);
        net.SetLatency(s1->node(), managers[1]->lock_switch().node(), 2500);
        // Cross-rack hop costs more.
        net.SetLatency(s0->node(), managers[1]->lock_switch().node(), 6000);
        session = std::make_unique<PartitionedSession>(
            std::move(s0), std::move(s1), kSplit);
      }
      YcsbConfig ycsb;
      ycsb.num_keys = kKeys;
      ycsb.zipf_alpha = 0.5;  // Spread load: rack capacity, not one hot key, binds.
      ycsb.write_fraction = 0.2;
      TxnEngineConfig txn_config;
      txn_config.think_time = 2 * kMicrosecond;
      engines.push_back(std::make_unique<TxnEngine>(
          sim, *session, std::make_unique<YcsbWorkload>(ycsb),
          static_cast<std::uint32_t>(i + 1), 500 + i, txn_config));
      engines.back()->SetRecording(true);
      engines.back()->Restart();
      sessions.push_back(std::move(session));
    }
    sim.RunUntil(100 * kMillisecond);
    std::uint64_t grants = 0;
    for (auto& engine : engines) {
      engine->Stop();
      grants += engine->metrics().lock_grants;
    }
    sim.RunUntil(sim.now() + 10 * kMillisecond);
    return static_cast<double>(grants) / 0.1 / 1e6;
  };

  Table table({"racks", "lock tput (MRPS)"});
  const double one = run(1);
  const double two = run(2);
  table.AddRow({"1", Fmt(one, 2)});
  table.AddRow({"2 (partitioned)", Fmt(two, 2)});
  table.Print();
  std::printf("scale-out factor: %.2fx\n", two / one);
  return 0;
}
