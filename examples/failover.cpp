// Failover demo: inject a switch failure mid-run, reactivate it, and watch
// the control plane recover the allocation while leases clear stranded
// state (paper Section 4.5 / Figure 15).
//
//   $ ./example_failover
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

using namespace netlock;

int main() {
  std::printf("NetLock switch failover demo\n");
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.client_retry_timeout = 2 * kMillisecond;
  config.lease = 10 * kMillisecond;
  config.lease_poll_interval = 2 * kMillisecond;
  config.txn_config.think_time = 5 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 128;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  TimeSeries commits(25 * kMillisecond);
  for (int i = 0; i < testbed.num_engines(); ++i) {
    testbed.engine(i).set_commit_series(&commits);
  }
  testbed.StartEngines();

  testbed.sim().RunUntil(200 * kMillisecond);
  std::printf("t=0.20s: injecting switch failure (registers lost)\n");
  testbed.netlock().lock_switch().Fail();

  testbed.sim().RunUntil(300 * kMillisecond);
  std::printf("t=0.30s: reactivating switch; control plane reinstalls the "
              "allocation\n");
  testbed.netlock().control_plane().RecoverSwitch();

  testbed.sim().RunUntil(500 * kMillisecond);
  testbed.StopEngines(kSecond);

  Banner("Commit throughput over time");
  Table table({"t(s)", "tput(KTPS)", "phase"});
  for (std::size_t b = 0; b < 20; ++b) {
    const SimTime t = b * 25 * kMillisecond;
    const char* phase =
        t < 200 * kMillisecond   ? "normal"
        : t < 300 * kMillisecond ? "switch FAILED"
                                 : "recovered";
    table.AddRow({Fmt(commits.BucketTimeSeconds(b), 3),
                  Fmt(commits.BucketRate(b) / 1e3, 1), phase});
  }
  table.Print();
  std::printf("stale releases absorbed after restart: %llu\n",
              static_cast<unsigned long long>(
                  testbed.netlock().lock_switch().stats().stale_releases));
  return 0;
}
