// Quickstart: stand up a NetLock rack (one lock switch + two lock servers),
// install a memory allocation, and acquire/release shared and exclusive
// locks from a couple of client sessions.
//
//   $ ./example_quickstart
#include <cstdio>

#include "client/client.h"
#include "core/netlock.h"
#include "sim/network.h"
#include "sim/simulator.h"

using namespace netlock;

int main() {
  // The simulated rack: microsecond-scale links, as under one ToR switch.
  Simulator sim;
  Network net(sim, /*default_one_way_latency=*/2500);

  // One NetLock instance = one ToR switch + lock servers (paper Figure 2).
  NetLockOptions options;
  options.num_servers = 2;
  NetLockManager manager(net, options);

  // Declare demand for three locks and let Algorithm 3 place them. Lock 7
  // is hot (two concurrent clients); the others are cold.
  manager.InstallKnapsack({
      {/*lock=*/7, /*rate=*/200'000.0, /*contention=*/4},
      {/*lock=*/8, /*rate=*/1'000.0, /*contention=*/2},
      {/*lock=*/9, /*rate=*/500.0, /*contention=*/2},
  });
  std::printf("lock 7 in switch: %s\n",
              manager.lock_switch().IsInstalled(7) ? "yes" : "no");

  // Two client sessions on one machine.
  ClientMachine machine(net);
  auto alice = manager.CreateSession(machine);
  auto bob = manager.CreateSession(machine);
  net.SetLatency(alice->node(), manager.lock_switch().node(), 2500);
  net.SetLatency(bob->node(), manager.lock_switch().node(), 2500);

  // Alice takes lock 7 exclusive; Bob's request queues behind her and is
  // granted the moment she releases — all in the switch data plane.
  alice->Acquire(7, LockMode::kExclusive, /*txn=*/1, /*priority=*/0,
                 [&](AcquireResult r) {
                   std::printf("[%6.1f us] alice: lock 7 %s\n",
                               sim.now() / 1e3, ToString(r));
                 });
  bob->Acquire(7, LockMode::kExclusive, /*txn=*/2, 0, [&](AcquireResult r) {
    std::printf("[%6.1f us] bob:   lock 7 %s (after alice released)\n",
                sim.now() / 1e3, ToString(r));
    bob->Release(7, LockMode::kExclusive, 2);
  });
  sim.Schedule(20 * kMicrosecond, [&]() {
    std::printf("[%6.1f us] alice: releasing lock 7\n", sim.now() / 1e3);
    alice->Release(7, LockMode::kExclusive, 1);
  });

  // Shared locks coexist: both sessions read lock 8 concurrently.
  alice->Acquire(8, LockMode::kShared, 3, 0, [&](AcquireResult r) {
    std::printf("[%6.1f us] alice: lock 8 shared %s\n", sim.now() / 1e3,
                ToString(r));
  });
  bob->Acquire(8, LockMode::kShared, 4, 0, [&](AcquireResult r) {
    std::printf("[%6.1f us] bob:   lock 8 shared %s (concurrently)\n",
                sim.now() / 1e3, ToString(r));
  });

  sim.RunUntil(kMillisecond);
  std::printf("switch grants: %llu, server grants: %llu\n",
              static_cast<unsigned long long>(manager.SwitchGrants()),
              static_cast<unsigned long long>(manager.ServerGrants()));
  return 0;
}
