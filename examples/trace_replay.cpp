// Trace record/replay demo: capture a TPC-C lock trace to a file, then
// replay it through NetLock — the workflow for running your own production
// lock traces against the simulator.
//
//   $ ./example_trace_replay [trace-file]
#include <cstdio>
#include <fstream>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"
#include "workload/trace.h"

using namespace netlock;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/netlock_example_trace.txt";

  // 1. Record: capture 20K TPC-C transactions into a portable text trace.
  {
    TpccConfig tpcc;
    tpcc.warehouses = 8;
    TpccWorkload source(tpcc);
    Rng rng(2026);
    const auto txns = TraceWorkload::Record(source, rng, 20'000);
    std::ofstream out(path);
    TraceWorkload::Write(txns, out);
    std::printf("recorded %zu transactions to %s\n", txns.size(),
                path.c_str());
  }

  // 2. Replay: drive the recorded trace through a NetLock rack. Each
  //    engine replays from a different offset so the replay is concurrent,
  //    not lock-step.
  auto txns = std::make_shared<std::vector<TxnSpec>>(
      TraceWorkload::LoadFile(path));
  std::printf("loaded %zu transactions\n", txns->size());

  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.txn_config.think_time = 10 * kMicrosecond;
  config.workload_factory = [txns](int engine) {
    return std::make_unique<TraceWorkload>(
        *txns, static_cast<std::size_t>(engine) * txns->size() / 16);
  };
  Testbed testbed(config);
  ProfileAndInstall(testbed, 100'000, false, 30 * kMillisecond);
  const RunMetrics metrics =
      testbed.Run(/*warmup=*/10 * kMillisecond, /*measure=*/60 * kMillisecond);
  PrintRunSummary("trace", metrics);
  std::printf("grants via switch: %llu, via servers: %llu\n",
              static_cast<unsigned long long>(metrics.switch_grants),
              static_cast<unsigned long long>(metrics.server_grants));
  testbed.StopEngines(kSecond);
  return 0;
}
