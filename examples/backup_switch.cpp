// Backup-switch failover demo (paper Section 4.5): the primary lock switch
// dies; a backup takes over after pre-failure leases expire; the primary
// returns and locks are handed back per-lock as the backup drains — all
// without a mutual-exclusion violation.
//
//   $ ./example_backup_switch
#include <cstdio>
#include <vector>

#include "core/failover.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

using namespace netlock;

int main() {
  std::printf("NetLock backup-switch failover demo\n");
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.client_retry_timeout = kMillisecond;
  config.lease = 5 * kMillisecond;
  config.lease_poll_interval = kMillisecond;
  config.txn_config.think_time = 5 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 64;
  config.workload_factory = MicroFactory(micro);
  std::vector<NetLockSession*> sessions;
  config.session_wrapper = [&](std::unique_ptr<LockSession> inner) {
    sessions.push_back(static_cast<NetLockSession*>(inner.get()));
    return inner;
  };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  LockSwitch backup(testbed.net(), config.switch_config);
  for (NetLockSession* s : sessions) {
    testbed.net().SetLatency(s->node(), backup.node(), 2500);
  }
  for (int i = 0; i < testbed.netlock().num_servers(); ++i) {
    testbed.net().SetLatency(backup.node(),
                             testbed.netlock().server(i).node(), 1500);
  }
  FailoverManager failover(testbed.sim(), testbed.netlock().lock_switch(),
                           backup, testbed.netlock().control_plane());
  for (NetLockSession* s : sessions) failover.RegisterSession(s);

  TimeSeries commits(10 * kMillisecond);
  for (int i = 0; i < testbed.num_engines(); ++i) {
    testbed.engine(i).set_commit_series(&commits);
  }
  testbed.StartEngines();
  testbed.sim().RunUntil(60 * kMillisecond);
  std::printf("t=0.060s: primary switch fails -> backup takes over\n");
  failover.FailPrimary();
  testbed.sim().RunUntil(140 * kMillisecond);
  std::printf("t=0.140s: primary restarts -> backup drains, hands back\n");
  bool done = false;
  failover.RecoverPrimary([&]() { done = true; });
  testbed.sim().RunUntil(240 * kMillisecond);
  testbed.StopEngines(kSecond);

  Banner("Commit throughput over time");
  Table table({"t(s)", "tput(KTPS)", "phase"});
  for (std::size_t b = 0; b < 24; ++b) {
    const SimTime t = b * 10 * kMillisecond;
    const char* phase = t < 60 * kMillisecond    ? "primary"
                        : t < 65 * kMillisecond  ? "lease gate"
                        : t < 140 * kMillisecond ? "backup serving"
                                                 : "handing back";
    table.AddRow({Fmt(commits.BucketTimeSeconds(b), 2),
                  Fmt(commits.BucketRate(b) / 1e3, 1), phase});
  }
  table.Print();
  std::printf("backup drained and cold again: %s\n", done ? "yes" : "no");
  std::printf("primary grants: %llu, backup grants: %llu\n",
              static_cast<unsigned long long>(
                  testbed.netlock().lock_switch().stats().grants),
              static_cast<unsigned long long>(backup.stats().grants));
  return 0;
}
