// TPC-C demo: run the TPC-C lock workload on NetLock and on a traditional
// server-only lock manager, with the full profile -> knapsack -> install
// control-plane flow, and compare throughput and latency — a miniature of
// the paper's headline experiment.
//
//   $ ./example_tpcc_demo
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

using namespace netlock;

namespace {

RunMetrics RunSystem(SystemKind system, bool high_contention) {
  TestbedConfig config;
  config.system = system;
  config.client_machines = 4;
  config.sessions_per_machine = 8;
  config.lock_servers = 2;
  config.txn_config.think_time = 10 * kMicrosecond;
  const std::uint32_t warehouses = TpccWarehouses(4, high_contention);
  config.workload_factory = TpccFactory(warehouses);
  Testbed testbed(config);
  if (system == SystemKind::kNetLock) {
    // Profile the workload on the servers, then let Algorithm 3 pull the
    // hot locks (warehouse and district rows) into the switch.
    const auto demands = ProfileAndInstall(
        testbed, testbed.config().switch_config.queue_capacity);
    std::printf("  profiled %zu distinct locks; %zu installed in switch\n",
                demands.size(),
                testbed.netlock().lock_switch().table().num_installed());
  }
  const RunMetrics metrics =
      testbed.Run(/*warmup=*/20 * kMillisecond, /*measure=*/80 * kMillisecond);
  testbed.StopEngines(kSecond);
  return metrics;
}

}  // namespace

int main() {
  std::printf("TPC-C on NetLock vs a server-only lock manager\n");
  for (const bool high : {false, true}) {
    Banner(high ? "High contention (1 warehouse per client machine)"
                : "Low contention (10 warehouses per client machine)");
    for (const SystemKind system :
         {SystemKind::kServerOnly, SystemKind::kNetLock}) {
      std::printf("%s:\n", ToString(system));
      const RunMetrics m = RunSystem(system, high);
      PrintRunSummary(ToString(system), m);
      if (system == SystemKind::kNetLock) {
        std::printf("  grants served by switch: %llu, by servers: %llu\n",
                    static_cast<unsigned long long>(m.switch_grants),
                    static_cast<unsigned long long>(m.server_grants));
      }
    }
  }
  return 0;
}
