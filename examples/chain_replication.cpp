// Chain-replication demo (paper §6.5 closing remark): two NetLock switches
// chained head -> tail. Compare failover downtime against the
// lease-recovery path of Figure 15: the promoted tail already holds the
// complete lock state, so service continues across the failure instant.
//
//   $ ./example_chain_replication
#include <cstdio>

#include "core/chain.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

using namespace netlock;

namespace {

TimeSeries RunScenario(bool chained) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.client_retry_timeout = kMillisecond;
  // Abort fast: a lock stranded by a release lost at the failure instant
  // should trap only the transactions that touch it, not convoy everyone.
  config.client_max_retries = 2;
  config.txn_config.abort_backoff = 200 * kMicrosecond;
  config.lease = 20 * kMillisecond;
  config.lease_poll_interval = 5 * kMillisecond;
  config.txn_config.think_time = 5 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 512;
  config.workload_factory = MicroFactory(micro);
  std::vector<NetLockSession*> sessions;
  config.session_wrapper = [&](std::unique_ptr<LockSession> inner) {
    sessions.push_back(static_cast<NetLockSession*>(inner.get()));
    return inner;
  };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  LockSwitch tail(testbed.net(), config.switch_config);
  ChainManager chain(testbed.sim(), testbed.netlock().lock_switch(), tail,
                     testbed.netlock().control_plane());
  if (chained) {
    for (NetLockSession* s : sessions) {
      testbed.net().SetLatency(s->node(), tail.node(), 2500);
    }
    for (int i = 0; i < testbed.netlock().num_servers(); ++i) {
      testbed.net().SetLatency(tail.node(),
                               testbed.netlock().server(i).node(), 1500);
    }
    testbed.net().SetLatency(testbed.netlock().lock_switch().node(),
                             tail.node(), 1000);
    chain.Enable();
    for (NetLockSession* s : sessions) chain.RegisterSession(s);
  }

  TimeSeries commits(5 * kMillisecond);
  for (int i = 0; i < testbed.num_engines(); ++i) {
    testbed.engine(i).set_commit_series(&commits);
  }
  testbed.StartEngines();
  testbed.sim().RunUntil(100 * kMillisecond);
  if (chained) {
    chain.FailHead();  // Tail promoted in place: state intact.
  } else {
    // Figure 15's path: the lone switch dies, restarts empty 10 ms later,
    // and leases reclaim stranded grants.
    testbed.netlock().lock_switch().Fail();
    testbed.sim().RunUntil(110 * kMillisecond);
    testbed.netlock().control_plane().RecoverSwitch();
  }
  testbed.sim().RunUntil(200 * kMillisecond);
  testbed.StopEngines(kSecond);
  return commits;
}

}  // namespace

int main() {
  std::printf(
      "NetLock chain replication vs restart+lease recovery\n"
      "Failure at t=0.100s (restart path reactivates at 0.110s).\n");
  const TimeSeries restart = RunScenario(false);
  const TimeSeries chained = RunScenario(true);
  Banner("Commit throughput (KTPS) around the failure");
  Table table({"t(s)", "restart+leases", "chained tail"});
  for (std::size_t b = 16; b < 28; ++b) {
    table.AddRow({Fmt(restart.BucketTimeSeconds(b), 3),
                  Fmt(restart.BucketRate(b) / 1e3, 1),
                  Fmt(chained.BucketRate(b) / 1e3, 1)});
  }
  table.Print();
  std::printf(
      "\nThe chained tail serves across the failure instant (state already\n"
      "replicated); the restart path shows the outage plus retransmission\n"
      "ramp the paper's Figure 15 measures.\n");
  return 0;
}
