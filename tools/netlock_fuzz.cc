// netlock_fuzz: command-line driver for the deterministic fault-injection
// fuzzer (src/testing/fuzzer.h).
//
// Sweep mode (default): generate `--count` schedules from `--seed` and run
// each one. On the first oracle/liveness violation the failing schedule is
// delta-debugged down to a minimal repro, written to `--out`, and the
// one-line replay command is printed; the process exits 1.
//
//   netlock_fuzz --seed=1 --count=64 --quick
//
// Replay mode: run one serialized schedule (the token printed by a failed
// sweep or embedded in a bug report) and report what happens.
//
//   netlock_fuzz --seed=7 --plan='m=2;spm=2;...;plan=failsw:2000:0:0:0'
//
// Flags:
//   --seed=N     master seed (sweep) or schedule seed (replay). Default 1.
//   --count=N    number of generated schedules to sweep. Default 64.
//   --quick      cap each schedule's workload at 10 ms of sim time.
//   --plan=TOK   replay one serialized schedule instead of sweeping.
//   --shrink     in replay mode, shrink a failing schedule too.
//   --no-shrink  in sweep mode, skip shrinking (report the raw failure).
//   --out=PATH   repro file for failing schedules. Default fuzz_repro.txt.
//   --bug-mod=N  seed a deliberate oracle bug (suppress releases for txns
//                with txn %% N == 3) to exercise the failure pipeline:
//                shrink, repro file, and flight-recorder dump.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "testing/fuzzer.h"

namespace {

using netlock::testing::FuzzOptions;
using netlock::testing::RunReport;
using netlock::testing::Schedule;
using netlock::testing::ScheduleFuzzer;

struct CliOptions {
  std::uint64_t seed = 1;
  int count = 64;
  bool quick = false;
  bool shrink_replay = false;
  bool shrink_sweep = true;
  std::string plan;
  std::string out = "fuzz_repro.txt";
  std::uint64_t bug_mod = 0;
};

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string_view* value) {
  if (arg.substr(0, name.size()) != name) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  *value = arg.substr(1);
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--quick") {
      out->quick = true;
    } else if (arg == "--shrink") {
      out->shrink_replay = true;
    } else if (arg == "--no-shrink") {
      out->shrink_sweep = false;
    } else if (ParseFlag(arg, "--seed", &value)) {
      out->seed = std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--count", &value)) {
      out->count = std::atoi(std::string(value).c_str());
    } else if (ParseFlag(arg, "--plan", &value)) {
      out->plan = std::string(value);
    } else if (ParseFlag(arg, "--out", &value)) {
      out->out = std::string(value);
    } else if (ParseFlag(arg, "--bug-mod", &value)) {
      out->bug_mod = std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

void ApplyQuick(Schedule* schedule) {
  constexpr netlock::SimTime kQuickRunTime = 10 * netlock::kMillisecond;
  if (schedule->workload.run_time > kQuickRunTime) {
    schedule->workload.run_time = kQuickRunTime;
  }
}

// Writes the minimal repro to disk so CI can upload it as an artifact.
void WriteRepro(const std::string& path, const Schedule& schedule,
                const RunReport& report) {
  std::ofstream file(path);
  file << "# netlock_fuzz minimal repro\n";
  file << "schedule: " << schedule.Serialize() << "\n";
  file << "replay:   " << ScheduleFuzzer::ReplayLine(schedule) << "\n";
  file << "result:   " << report.Summary() << "\n";
  for (const std::string& problem : report.problems) {
    file << "problem:  " << problem << "\n";
  }
}

int FailWith(const CliOptions& cli, Schedule schedule, bool shrink) {
  FuzzOptions options;
  options.bug_txn_mod = cli.bug_mod;
  if (shrink) {
    std::printf("shrinking...\n");
    schedule = ScheduleFuzzer::Shrink(schedule, options);
  }
  // Re-run the (shrunk) failing schedule with a flight recorder attached
  // and dump the protocol-event autopsy next to the repro file. Shard 0
  // carries client releases, shards 1..racks the per-rack switch events,
  // the last shard a backup switch if the plan brought one up.
  netlock::FlightRecorder recorder(schedule.workload.racks + 2, 4096);
  options.flight_recorder = &recorder;
  const RunReport report = ScheduleFuzzer::RunSchedule(schedule, options);
  WriteRepro(cli.out, schedule, report);
  const std::string fr_prefix = cli.out + ".fr";
  const bool dumped = recorder.Dump(fr_prefix);
  std::printf("FAIL %s\n", report.Summary().c_str());
  for (const std::string& problem : report.problems) {
    std::printf("  %s\n", problem.c_str());
  }
  std::printf("repro written to %s\n", cli.out.c_str());
  if (dumped) {
    std::printf("flight recorder dumped to %s.txt / %s.json\n",
                fr_prefix.c_str(), fr_prefix.c_str());
  }
  std::printf("replay: %s\n", ScheduleFuzzer::ReplayLine(schedule).c_str());
  return 1;
}

int RunReplay(const CliOptions& cli) {
  Schedule schedule;
  schedule.seed = cli.seed;
  if (!Schedule::Parse(cli.plan, &schedule)) {
    std::fprintf(stderr, "unparseable --plan token\n");
    return 2;
  }
  if (cli.quick) ApplyQuick(&schedule);
  FuzzOptions options;
  options.bug_txn_mod = cli.bug_mod;
  const RunReport report = ScheduleFuzzer::RunSchedule(schedule, options);
  std::printf("%s\n", report.Summary().c_str());
  for (const std::string& problem : report.problems) {
    std::printf("  %s\n", problem.c_str());
  }
  if (report.ok) return 0;
  return FailWith(cli, schedule, cli.shrink_replay);
}

int RunSweep(const CliOptions& cli) {
  const ScheduleFuzzer fuzzer(cli.seed);
  std::uint64_t total_grants = 0;
  for (int i = 0; i < cli.count; ++i) {
    Schedule schedule = fuzzer.Generate(static_cast<std::uint64_t>(i));
    if (cli.quick) ApplyQuick(&schedule);
    FuzzOptions options;
    options.bug_txn_mod = cli.bug_mod;
    const RunReport report = ScheduleFuzzer::RunSchedule(schedule, options);
    total_grants += report.grants;
    if (!report.ok) {
      std::printf("[%d/%d] %s\n", i + 1, cli.count,
                  report.Summary().c_str());
      return FailWith(cli, schedule, cli.shrink_sweep);
    }
    if ((i + 1) % 8 == 0 || i + 1 == cli.count) {
      std::printf("[%d/%d] ok, %llu grants so far\n", i + 1, cli.count,
                  static_cast<unsigned long long>(total_grants));
    }
  }
  std::printf("PASS %d schedules, %llu grants, 0 violations\n", cli.count,
              static_cast<unsigned long long>(total_grants));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 2;
  return cli.plan.empty() ? RunSweep(cli) : RunReplay(cli);
}
