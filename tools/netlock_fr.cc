// netlock_fr: pretty-printer for flight-recorder dumps.
//
// Loads a text dump written by FlightRecorder::Dump (the `.fr.txt` file a
// violated fuzz schedule or a crashed rt run leaves behind) and prints a
// summary — event and per-op counts, time span, shards — plus the tail of
// the event stream, which is where the autopsy usually lives.
//
//   netlock_fr fuzz_repro.txt.fr.txt            # summary + last 32 events
//   netlock_fr --tail=128 crash.fr.txt          # longer tail
//   netlock_fr --lock=17 crash.fr.txt           # only events for lock 17
//   netlock_fr --txn=42 crash.fr.txt            # only events for txn 42
//
// Exits 0 on success, 1 on a malformed dump, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/flight_recorder.h"

namespace {

using netlock::FlightRecorder;

struct CliOptions {
  std::string path;
  std::size_t tail = 32;
  bool have_lock = false;
  netlock::LockId lock = 0;
  bool have_txn = false;
  netlock::TxnId txn = 0;
};

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string_view* value) {
  if (arg.substr(0, name.size()) != name) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  *value = arg.substr(1);
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (ParseFlag(arg, "--tail", &value)) {
      out->tail = static_cast<std::size_t>(
          std::strtoull(std::string(value).c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--lock", &value)) {
      out->have_lock = true;
      out->lock = static_cast<netlock::LockId>(
          std::strtoull(std::string(value).c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--txn", &value)) {
      out->have_txn = true;
      out->txn = std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    } else if (out->path.empty()) {
      out->path = std::string(arg);
    } else {
      std::fprintf(stderr, "more than one dump path given\n");
      return false;
    }
  }
  if (out->path.empty()) {
    std::fprintf(stderr,
                 "usage: netlock_fr [--tail=N] [--lock=L] [--txn=T] "
                 "<dump.fr.txt>\n");
    return false;
  }
  return true;
}

void PrintEvent(const FlightRecorder::Event& ev) {
  std::printf("  %12llu  shard=%-2u seq=%-8llu %-18s lock=%-8u mode=%c "
              "txn=%llu client=%u\n",
              static_cast<unsigned long long>(ev.ts),
              static_cast<unsigned>(ev.shard),
              static_cast<unsigned long long>(ev.seq),
              FlightRecorder::ToString(ev.op), ev.lock,
              ev.mode == netlock::LockMode::kExclusive ? 'X' : 'S',
              static_cast<unsigned long long>(ev.txn), ev.client);
}

int Run(const CliOptions& cli) {
  std::ifstream file(cli.path);
  if (!file) {
    std::fprintf(stderr, "netlock_fr: cannot open %s\n", cli.path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  std::vector<FlightRecorder::Event> events;
  if (!FlightRecorder::ParseText(text, &events)) {
    std::fprintf(stderr,
                 "netlock_fr: malformed dump %s (parsed %zu events before "
                 "the bad line)\n",
                 cli.path.c_str(), events.size());
    return 1;
  }

  std::vector<FlightRecorder::Event> selected;
  selected.reserve(events.size());
  for (const FlightRecorder::Event& ev : events) {
    if (cli.have_lock && ev.lock != cli.lock) continue;
    if (cli.have_txn && ev.txn != cli.txn) continue;
    selected.push_back(ev);
  }

  std::map<std::string, std::uint64_t> by_op;
  std::map<unsigned, std::uint64_t> by_shard;
  for (const FlightRecorder::Event& ev : selected) {
    ++by_op[FlightRecorder::ToString(ev.op)];
    ++by_shard[static_cast<unsigned>(ev.shard)];
  }

  std::printf("%s: %zu events", cli.path.c_str(), selected.size());
  if (selected.size() != events.size()) {
    std::printf(" (selected from %zu)", events.size());
  }
  std::printf("\n");
  if (!selected.empty()) {
    const std::uint64_t t0 = selected.front().ts;
    const std::uint64_t t1 = selected.back().ts;
    std::printf("  span: %llu ns .. %llu ns (%.3f ms)\n",
                static_cast<unsigned long long>(t0),
                static_cast<unsigned long long>(t1),
                static_cast<double>(t1 - t0) / 1e6);
  }
  for (const auto& [op, count] : by_op) {
    std::printf("  op %-18s %llu\n", op.c_str(),
                static_cast<unsigned long long>(count));
  }
  for (const auto& [shard, count] : by_shard) {
    std::printf("  shard %-2u %llu\n", shard,
                static_cast<unsigned long long>(count));
  }

  if (!selected.empty() && cli.tail > 0) {
    const std::size_t start =
        selected.size() > cli.tail ? selected.size() - cli.tail : 0;
    std::printf("last %zu events:\n", selected.size() - start);
    for (std::size_t i = start; i < selected.size(); ++i) {
      PrintEvent(selected[i]);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 2;
  return Run(cli);
}
