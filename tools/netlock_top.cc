// netlock_top: live per-core view of a running rt benchmark.
//
// Connects to the Unix-domain stats socket a timed rt run serves when
// started with `--stats-socket=PATH` (see bench/rt_mlps.cc) and renders
// each snapshot frame the in-process poller pushes: per-core grant and
// request rates, batch counts, mailbox depths, the executor's
// work/spin/yield/park split, and merged lock/txn latency percentiles.
//
//   bench_rt_mlps --quick --backend=rt --stats-socket=/tmp/nl.sock &
//   netlock_top --socket=/tmp/nl.sock
//
// Flags:
//   --socket=PATH  stats socket to connect to (required).
//   --once         print one frame and exit (for scripts/tests).
//
// Exits 0 when the server closes the socket (run finished), 1 when the
// socket cannot be opened, 2 on usage errors.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define NETLOCK_TOP_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

struct CliOptions {
  std::string socket_path;
  bool once = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--once") {
      out->once = true;
    } else if (arg.rfind("--socket=", 0) == 0) {
      out->socket_path = std::string(arg.substr(std::strlen("--socket=")));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  if (out->socket_path.empty()) {
    std::fprintf(stderr, "usage: netlock_top --socket=PATH [--once]\n");
    return false;
  }
  return true;
}

#if NETLOCK_TOP_HAVE_UNIX_SOCKETS

// One parsed field: "name=value" -> value, 0 when absent.
std::uint64_t Field(const std::string& line, const char* name) {
  const std::string needle = std::string(name) + "=";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

struct CoreSample {
  std::uint64_t grants = 0;
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t depth = 0;
  std::uint64_t work = 0;
  std::uint64_t spins = 0;
  std::uint64_t yields = 0;
  std::uint64_t parks = 0;
};

struct Frame {
  std::uint64_t ts = 0;
  int cores = 0;
  int clients = 0;
  std::vector<CoreSample> core;
  std::vector<std::string> lat_lines;  // Raw "lat ..." lines, pre-rendered.
};

// Parses one "snap ... end" frame out of `lines`.
Frame ParseFrame(const std::vector<std::string>& lines) {
  Frame frame;
  for (const std::string& line : lines) {
    if (line.rfind("snap ", 0) == 0) {
      frame.ts = Field(line, "ts");
      frame.cores = static_cast<int>(Field(line, "cores"));
      frame.clients = static_cast<int>(Field(line, "clients"));
      frame.core.assign(static_cast<std::size_t>(frame.cores), CoreSample{});
    } else if (line.rfind("core ", 0) == 0) {
      const int idx = std::atoi(line.c_str() + 5);
      if (idx < 0 || idx >= static_cast<int>(frame.core.size())) continue;
      CoreSample& c = frame.core[static_cast<std::size_t>(idx)];
      c.grants = Field(line, "grants");
      c.requests = Field(line, "requests");
      c.batches = Field(line, "batches");
      c.depth = Field(line, "depth");
      c.work = Field(line, "work");
      c.spins = Field(line, "spins");
      c.yields = Field(line, "yields");
      c.parks = Field(line, "parks");
    } else if (line.rfind("lat ", 0) == 0) {
      frame.lat_lines.push_back(line);
    }
  }
  return frame;
}

void Render(const Frame& frame, const Frame& prev, double dt_seconds,
            bool clear) {
  if (clear) std::printf("\x1b[H\x1b[2J");
  std::printf("netlock_top  t=%.3fs  cores=%d  clients=%d\n",
              static_cast<double>(frame.ts) / 1e9, frame.cores,
              frame.clients);
  std::printf("%-4s %10s %10s %8s %6s %22s\n", "core", "grants/s",
              "grants", "batches", "depth", "work/spin/yield/park");
  const bool have_prev =
      dt_seconds > 0 && prev.core.size() == frame.core.size();
  for (int i = 0; i < frame.cores; ++i) {
    const CoreSample& c = frame.core[static_cast<std::size_t>(i)];
    double rate = 0.0;
    if (have_prev) {
      const CoreSample& p = frame.core.size() == prev.core.size()
                                ? prev.core[static_cast<std::size_t>(i)]
                                : c;
      rate = static_cast<double>(c.grants - p.grants) / dt_seconds;
    }
    std::printf("%-4d %10.0f %10llu %8llu %6llu %llu/%llu/%llu/%llu\n", i,
                rate, static_cast<unsigned long long>(c.grants),
                static_cast<unsigned long long>(c.batches),
                static_cast<unsigned long long>(c.depth),
                static_cast<unsigned long long>(c.work),
                static_cast<unsigned long long>(c.spins),
                static_cast<unsigned long long>(c.yields),
                static_cast<unsigned long long>(c.parks));
  }
  for (const std::string& lat : frame.lat_lines) {
    const char* which = lat.rfind("lat lock", 0) == 0 ? "lock" : "txn";
    std::printf("%-5s p50=%.1fus p90=%.1fus p99=%.1fus p999=%.1fus "
                "(n=%llu)\n",
                which, static_cast<double>(Field(lat, "p50")) / 1e3,
                static_cast<double>(Field(lat, "p90")) / 1e3,
                static_cast<double>(Field(lat, "p99")) / 1e3,
                static_cast<double>(Field(lat, "p999")) / 1e3,
                static_cast<unsigned long long>(Field(lat, "n")));
  }
  std::fflush(stdout);
}

int Run(const CliOptions& cli) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("netlock_top: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cli.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "netlock_top: socket path too long\n");
    ::close(fd);
    return 1;
  }
  std::strncpy(addr.sun_path, cli.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "netlock_top: cannot connect to %s: %s\n",
                 cli.socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 1;
  }

  std::string pending;
  std::vector<std::string> frame_lines;
  Frame prev;
  std::uint64_t prev_ts = 0;
  bool in_frame = false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Server went away: the run is over.
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (line.rfind("snap ", 0) == 0) {
        frame_lines.clear();
        in_frame = true;
      }
      if (!in_frame) continue;
      if (line == "end") {
        in_frame = false;
        const Frame frame = ParseFrame(frame_lines);
        const double dt =
            prev_ts > 0 && frame.ts > prev_ts
                ? static_cast<double>(frame.ts - prev_ts) / 1e9
                : 0.0;
        Render(frame, prev, dt, /*clear=*/!cli.once);
        prev = frame;
        prev_ts = frame.ts;
        if (cli.once) {
          ::close(fd);
          return 0;
        }
      } else {
        frame_lines.push_back(line);
      }
    }
  }
  ::close(fd);
  return 0;
}

#else  // !NETLOCK_TOP_HAVE_UNIX_SOCKETS

int Run(const CliOptions&) {
  std::fprintf(stderr,
               "netlock_top: Unix-domain sockets unavailable on this "
               "platform\n");
  return 1;
}

#endif

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 2;
  return Run(cli);
}
