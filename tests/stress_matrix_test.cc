// Cross-system stress matrix: every lock-manager backend × contention
// level × lock-mode mix, each run checked by the mutual-exclusion oracle
// and for liveness. This is the broad safety net behind the per-figure
// calibration: no combination of system and workload shape may ever
// produce overlapping exclusive holders or stall outright.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/testbed.h"
#include "testing/lock_oracle.h"

namespace netlock {
namespace {

struct MatrixParams {
  SystemKind system;
  LockId num_locks;         // Small = contended, large = uncontended.
  double shared_fraction;
  std::uint32_t locks_per_txn;
};

std::string ParamName(const ::testing::TestParamInfo<MatrixParams>& info) {
  std::ostringstream name;
  name << ToString(info.param.system) << "_l" << info.param.num_locks
       << "_s" << static_cast<int>(info.param.shared_fraction * 100)
       << "_k" << info.param.locks_per_txn;
  return name.str();
}

class StressMatrixTest : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(StressMatrixTest, SafeAndLive) {
  const MatrixParams params = GetParam();
  TestbedConfig config;
  config.system = params.system;
  config.client_machines = 2;
  config.sessions_per_machine = 8;
  config.lock_servers = 2;
  config.txn_config.think_time = 5 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = params.num_locks;
  micro.shared_fraction = params.shared_fraction;
  micro.locks_per_txn = params.locks_per_txn;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<testing::LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<testing::OracleSession>(std::move(inner),
                                                    *oracle);
  };
  Testbed testbed(config);
  if (params.system == SystemKind::kNetLock) {
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    // Fault-free runs also promise per-lock FIFO order of exclusive
    // grants at the switch (Algorithm 2 + overflow, Section 4.3).
    testbed.netlock().lock_switch().set_queue_observer(
        [oracle](LockId lock, TxnId txn, LockMode mode, bool overflowed) {
          oracle->OnSwitchAccept(lock, txn, mode, overflowed);
        });
    testbed.netlock().lock_switch().set_grant_observer(
        [oracle](LockId lock, TxnId txn, LockMode mode, NodeId) {
          oracle->OnSwitchGrant(lock, txn, mode);
        });
  }
  const RunMetrics metrics =
      testbed.Run(/*warmup=*/5 * kMillisecond, /*measure=*/30 * kMillisecond);
  EXPECT_EQ(oracle->violations(), 0u);
  if (params.system == SystemKind::kNetLock) {
    EXPECT_EQ(oracle->fifo_violations(), 0u);
  }
  EXPECT_GT(metrics.txn_commits, 50u);
  testbed.StopEngines(kSecond);
}

std::vector<MatrixParams> MakeMatrix() {
  std::vector<MatrixParams> matrix;
  for (const SystemKind system :
       {SystemKind::kNetLock, SystemKind::kServerOnly, SystemKind::kDslr,
        SystemKind::kDrtm, SystemKind::kNetChain}) {
    for (const LockId locks : {8u, 4096u}) {
      for (const double shared : {0.0, 0.5, 0.9}) {
        // Single-lock txns everywhere; multi-lock only on the contended
        // grid point (the deadlock-prone shape).
        matrix.push_back(MatrixParams{system, locks, shared, 1});
      }
      matrix.push_back(MatrixParams{system, locks, 0.3, 3});
    }
  }
  return matrix;
}

INSTANTIATE_TEST_SUITE_P(Grid, StressMatrixTest,
                         ::testing::ValuesIn(MakeMatrix()), ParamName);

}  // namespace
}  // namespace netlock
