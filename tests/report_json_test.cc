// Tests for the machine-readable bench reports: option parsing, JSON
// shape (balanced, parseable-by-eye structure with the schema's required
// keys), file output, and the registry dump riding along with a real
// (tiny) testbed run — the same path every bench binary exercises.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

// Minimal structural JSON check: braces/brackets balance outside strings
// and the document is a single object. Enough to catch broken emission
// without hauling in a JSON library.
bool BalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(BenchOptionsTest, DefaultsAndFlags) {
  {
    char arg0[] = "bench";
    char* argv[] = {arg0};
    const BenchOptions opts = ParseBenchOptions(1, argv);
    EXPECT_FALSE(opts.quick);
    EXPECT_EQ(opts.json_dir, ".");
  }
  {
    char arg0[] = "bench";
    char arg1[] = "--quick";
    char arg2[] = "--json-dir=/tmp/out";
    char* argv[] = {arg0, arg1, arg2};
    const BenchOptions opts = ParseBenchOptions(3, argv);
    EXPECT_TRUE(opts.quick);
    EXPECT_EQ(opts.json_dir, "/tmp/out");
  }
  {
    char arg0[] = "bench";
    char arg1[] = "--json-dir";
    char arg2[] = "relative/dir";
    char arg3[] = "--unknown-flag";  // Must be ignored, not fatal.
    char* argv[] = {arg0, arg1, arg2, arg3};
    const BenchOptions opts = ParseBenchOptions(4, argv);
    EXPECT_FALSE(opts.quick);
    EXPECT_EQ(opts.json_dir, "relative/dir");
  }
}

TEST(BenchReportTest, JsonHasSchemaKeysAndRuns) {
  BenchOptions opts;
  opts.quick = true;
  BenchReport report("unit_test", opts);
  LatencyRecorder latency;
  for (SimTime v = 1000; v <= 2000; v += 10) latency.Record(v);
  BenchRun& run = report.AddRun("cfg=1", /*throughput_mrps=*/12.5, latency);
  run.extra.emplace_back("shed", 3.0);
  report.AddRun("cfg=2").txn_mtps = 0.25;

  const std::string json = report.ToJson();
  EXPECT_TRUE(BalancedJson(json));
  for (const char* key :
       {"\"bench\": \"unit_test\"", "\"schema_version\": 2",
        "\"quick\": true", "\"sim_wall_ms\":", "\"sim_events_per_sec\":",
        "\"runs\":", "\"label\": \"cfg=1\"",
        "\"throughput_mrps\": 12.5", "\"latency_ns\":", "\"mean\":",
        "\"p50\":", "\"p99\":", "\"p999\":", "\"samples\": 101",
        "\"shed\": 3", "\"label\": \"cfg=2\"", "\"txn_mtps\": 0.25",
        "\"metrics\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(BenchReportTest, WallClockFieldsEachOnOwnLineAndStrippable) {
  BenchReport report("unit_test", BenchOptions{});
  BenchRun& run = report.AddRun("hot_loop");
  run.extra.emplace_back("events_per_sec", 12345678.9);
  const std::string json = report.ToJson();

  // Each wall-dependent top-level field sits on its own line so text
  // diffs (and CI's sed) can normalize them without a JSON parser.
  std::istringstream lines(json);
  std::string line;
  int wall_lines = 0;
  while (std::getline(lines, line)) {
    const bool has_wall = line.find("\"sim_wall_ms\":") != std::string::npos;
    const bool has_eps =
        line.find("\"sim_events_per_sec\":") != std::string::npos;
    if (has_wall || has_eps) {
      ++wall_lines;
      EXPECT_FALSE(has_wall && has_eps) << line;
    }
  }
  EXPECT_EQ(wall_lines, 2);

  const std::string stripped = StripWallClockFields(json);
  EXPECT_TRUE(BalancedJson(stripped));
  EXPECT_NE(stripped.find("\"sim_wall_ms\": 0"), std::string::npos);
  EXPECT_NE(stripped.find("\"sim_events_per_sec\": 0"), std::string::npos);
  // Per-run events_per_sec extras are wall-dependent too and must be
  // zeroed; the non-wall fields survive untouched.
  EXPECT_NE(stripped.find("\"events_per_sec\": 0"), std::string::npos);
  EXPECT_EQ(stripped.find("12345678.9"), std::string::npos);
  EXPECT_NE(stripped.find("\"label\": \"hot_loop\""), std::string::npos);
  // Idempotent: stripping twice changes nothing.
  EXPECT_EQ(StripWallClockFields(stripped), stripped);
}

TEST(BenchReportTest, EscapesLabels) {
  BenchReport report("unit_test", BenchOptions{});
  report.AddRun("weird \"label\"\nwith\tescapes");
  const std::string json = report.ToJson();
  EXPECT_TRUE(BalancedJson(json));
  EXPECT_NE(json.find("weird \\\"label\\\"\\nwith\\tescapes"),
            std::string::npos);
}

TEST(BenchReportTest, NonFiniteDegradesToZero) {
  BenchReport report("unit_test", BenchOptions{});
  report.AddRun("nan").throughput_mrps = 0.0 / 0.0;
  const std::string json = report.ToJson();
  EXPECT_TRUE(BalancedJson(json));
  EXPECT_NE(json.find("\"throughput_mrps\": 0"), std::string::npos);
  EXPECT_EQ(json.find("nan,"), std::string::npos);
}

TEST(BenchReportTest, WriteFailsOnMissingDirectory) {
  BenchOptions opts;
  opts.json_dir = "/nonexistent-dir-for-report-test";
  BenchReport report("unit_test", opts);
  EXPECT_FALSE(report.Write());
}

// End-to-end: a real (tiny) testbed run recorded through the same
// RecordRun/Write path the benches use must produce a parseable file with
// throughput, tail latencies, and a well-populated registry dump.
TEST(BenchReportTest, EndToEndBenchStyleRun) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 2;
  config.lock_servers = 2;
  MicroConfig micro;
  micro.num_locks = 128;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(UniformMicroDemands(micro, 4));
  const RunMetrics m = testbed.Run(kMillisecond, 10 * kMillisecond);
  testbed.StopEngines();
  ASSERT_GT(m.lock_grants, 0u);

  BenchOptions opts;
  opts.json_dir = ::testing::TempDir();
  BenchReport report("report_json_test", opts);
  const BenchRun& run = report.AddRun("tiny", m);
  EXPECT_GT(run.throughput_mrps, 0.0);
  EXPECT_GT(run.p99_ns, 0u);
  EXPECT_GE(run.p999_ns, run.p99_ns);
  ASSERT_TRUE(report.Write());

  const std::string path =
      opts.json_dir + "/BENCH_report_json_test.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_TRUE(BalancedJson(json));
  EXPECT_NE(json.find("\"bench\": \"report_json_test\""),
            std::string::npos);
  EXPECT_NE(json.find("\"throughput_mrps\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);

  // The run above exercised switch, servers, network, and simulator, so
  // the registry dump must carry a healthy set of named metrics.
  const std::vector<MetricSample> snap =
      MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.size(), 10u);
  for (const char* name :
       {"sim.events_processed", "net.packets", "dataplane.acquires_granted",
        "switchsim.passes", "switchsim.register_accesses"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""),
              std::string::npos)
        << "registry dump missing " << name;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netlock
