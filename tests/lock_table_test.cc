// Tests for the region allocator and switch lock table: first-fit
// allocation, coalescing, fragmentation visibility, and install/remove.
#include <gtest/gtest.h>

#include "common/random.h"
#include "dataplane/lock_table.h"

namespace netlock {
namespace {

TEST(RegionAllocatorTest, AllocatesSequentially) {
  RegionAllocator alloc(100);
  const auto a = alloc.Allocate(30);
  const auto b = alloc.Allocate(30);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->left, 0u);
  EXPECT_EQ(a->right, 30u);
  EXPECT_EQ(b->left, 30u);
  EXPECT_EQ(alloc.free_slots(), 40u);
}

TEST(RegionAllocatorTest, RejectsWhenFull) {
  RegionAllocator alloc(10);
  EXPECT_TRUE(alloc.Allocate(10).has_value());
  EXPECT_FALSE(alloc.Allocate(1).has_value());
}

TEST(RegionAllocatorTest, ZeroSlotsRejected) {
  RegionAllocator alloc(10);
  EXPECT_FALSE(alloc.Allocate(0).has_value());
}

TEST(RegionAllocatorTest, FreeCoalescesNeighbors) {
  RegionAllocator alloc(100);
  const auto a = alloc.Allocate(30);
  const auto b = alloc.Allocate(30);
  const auto c = alloc.Allocate(40);
  ASSERT_TRUE(a && b && c);
  alloc.Free(*a);
  alloc.Free(*c);
  EXPECT_EQ(alloc.NumFreeExtents(), 2u);
  alloc.Free(*b);  // Bridges both neighbors.
  EXPECT_EQ(alloc.NumFreeExtents(), 1u);
  EXPECT_EQ(alloc.LargestFreeExtent(), 100u);
}

TEST(RegionAllocatorTest, FragmentationBlocksLargeAllocation) {
  RegionAllocator alloc(100);
  std::vector<Extent> extents;
  for (int i = 0; i < 10; ++i) {
    extents.push_back(*alloc.Allocate(10));
  }
  // Free every other region: 50 slots free but largest extent is 10.
  for (int i = 0; i < 10; i += 2) alloc.Free(extents[i]);
  EXPECT_EQ(alloc.free_slots(), 50u);
  EXPECT_EQ(alloc.LargestFreeExtent(), 10u);
  EXPECT_FALSE(alloc.Allocate(11).has_value());
  EXPECT_TRUE(alloc.Allocate(10).has_value());
}

TEST(RegionAllocatorTest, FirstFitReusesFreedHole) {
  RegionAllocator alloc(100);
  const auto a = alloc.Allocate(20);
  (void)alloc.Allocate(20);
  alloc.Free(*a);
  const auto c = alloc.Allocate(15);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->left, 0u);  // Reuses the hole at the front.
}

// Property fuzz: random allocate/free sequences preserve the allocator's
// invariants — extents never overlap, accounting is exact, and freeing
// everything restores one maximal extent.
class RegionAllocatorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RegionAllocatorFuzzTest, RandomSequencesKeepInvariants) {
  Rng rng(GetParam() * 1337 + 5);
  const std::uint32_t capacity =
      64 + static_cast<std::uint32_t>(rng.NextBounded(512));
  RegionAllocator alloc(capacity);
  std::vector<Extent> held;
  std::uint32_t held_slots = 0;
  for (int op = 0; op < 2000; ++op) {
    const bool do_alloc = held.empty() || rng.NextBool(0.55);
    if (do_alloc) {
      const std::uint32_t want =
          1 + static_cast<std::uint32_t>(rng.NextBounded(24));
      const auto extent = alloc.Allocate(want);
      if (!extent) {
        // Only legal when short on (contiguous) space.
        EXPECT_TRUE(want > alloc.free_slots() ||
                    want > alloc.LargestFreeExtent());
        continue;
      }
      EXPECT_EQ(extent->size(), want);
      EXPECT_LE(extent->right, capacity);
      // No overlap with anything held.
      for (const Extent& other : held) {
        EXPECT_TRUE(extent->right <= other.left ||
                    other.right <= extent->left)
            << "overlap at op " << op;
      }
      held.push_back(*extent);
      held_slots += want;
    } else {
      const std::size_t pick = rng.NextBounded(held.size());
      alloc.Free(held[pick]);
      held_slots -= held[pick].size();
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(alloc.free_slots(), capacity - held_slots);
  }
  for (const Extent& extent : held) alloc.Free(extent);
  EXPECT_EQ(alloc.free_slots(), capacity);
  EXPECT_EQ(alloc.LargestFreeExtent(), capacity);
  EXPECT_EQ(alloc.NumFreeExtents(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionAllocatorFuzzTest,
                         ::testing::Range(0, 10));

TEST(SwitchLockTableTest, InstallAssignsRegionAndMeta) {
  SwitchLockTable table(/*max_locks=*/4, /*queue_capacity=*/64);
  const SwitchLockEntry* entry = table.Install(7, /*home_server=*/2, {16});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->lock_id, 7u);
  EXPECT_EQ(entry->home_server, 2u);
  ASSERT_EQ(entry->regions.size(), 1u);
  EXPECT_EQ(entry->regions[0].size(), 16u);
  EXPECT_EQ(table.free_slots(), 48u);
  EXPECT_EQ(table.HomeServer(7), 2u);
}

TEST(SwitchLockTableTest, InstallFailsWhenMetaTableFull) {
  SwitchLockTable table(2, 64);
  EXPECT_NE(table.Install(1, 0, {4}), nullptr);
  EXPECT_NE(table.Install(2, 0, {4}), nullptr);
  EXPECT_EQ(table.Install(3, 0, {4}), nullptr);
}

TEST(SwitchLockTableTest, InstallFailsWhenMemoryExhausted) {
  SwitchLockTable table(8, 10);
  EXPECT_NE(table.Install(1, 0, {8}), nullptr);
  EXPECT_EQ(table.Install(2, 0, {4}), nullptr);
  // Partial multi-region installs roll back cleanly.
  EXPECT_EQ(table.free_slots(), 2u);
}

TEST(SwitchLockTableTest, MultiRegionInstallForPriorities) {
  SwitchLockTable table(4, 64);
  const SwitchLockEntry* entry = table.Install(1, 0, {8, 8, 8});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->regions.size(), 3u);
  table.Remove(1);
  EXPECT_EQ(table.free_slots(), 64u);
}

TEST(SwitchLockTableTest, RemoveFreesEverything) {
  SwitchLockTable table(4, 64);
  table.Install(1, 0, {16});
  table.Install(2, 0, {16});
  table.Remove(1);
  EXPECT_EQ(table.Find(1), nullptr);
  EXPECT_NE(table.Find(2), nullptr);
  // The freed meta index and region are reusable.
  EXPECT_NE(table.Install(3, 0, {16}), nullptr);
}

TEST(SwitchLockTableTest, ClearKeepsRouting) {
  SwitchLockTable table(4, 64);
  table.Install(1, 5, {16});
  table.SetHomeServer(9, 6);
  table.Clear();
  EXPECT_EQ(table.num_installed(), 0u);
  EXPECT_EQ(table.free_slots(), 64u);
  EXPECT_EQ(table.HomeServer(1), 5u);  // Directory mirror survives restart.
  EXPECT_EQ(table.HomeServer(9), 6u);
}

TEST(SwitchLockTableTest, InstalledLocksSorted) {
  SwitchLockTable table(8, 64);
  table.Install(5, 0, {4});
  table.Install(1, 0, {4});
  table.Install(3, 0, {4});
  EXPECT_EQ(table.InstalledLocks(), (std::vector<LockId>{1, 3, 5}));
}

}  // namespace
}  // namespace netlock
