// Tests for the discrete-event simulator: event ordering, FIFO tie-breaks,
// network latency and loss, and the rate-limited service queue.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/sim_context.h"
#include "net/lock_wire.h"
#include "sim/network.h"
#include "sim/service_queue.h"
#include "sim/simulator.h"

namespace netlock {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&]() { order.push_back(3); });
  sim.Schedule(10, [&]() { order.push_back(1); });
  sim.Schedule(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(5, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedSchedulingObservesNow) {
  Simulator sim;
  SimTime inner_time = 0;
  sim.Schedule(10, [&]() {
    sim.Schedule(5, [&]() { inner_time = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, 15u);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&]() { ++fired; });
  sim.Schedule(300, [&]() { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200u);
  sim.RunUntil(400);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.Schedule(1, []() {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventCountTracked) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, []() {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(InlineEventTest, InvokesAndMovesInlineCallable) {
  int calls = 0;
  InlineEvent ev([&calls]() { ++calls; });
  ASSERT_TRUE(static_cast<bool>(ev));
  EXPECT_FALSE(ev.uses_heap());
  ev();
  EXPECT_EQ(calls, 1);
  InlineEvent moved(std::move(ev));
  EXPECT_FALSE(static_cast<bool>(ev));  // NOLINT: testing moved-from state.
  moved();
  EXPECT_EQ(calls, 2);
  InlineEvent assigned;
  assigned = std::move(moved);
  assigned();
  EXPECT_EQ(calls, 3);
}

TEST(InlineEventTest, DestroysCapturedStateExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    InlineEvent ev([counter]() { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    InlineEvent moved(std::move(ev));
    EXPECT_EQ(counter.use_count(), 2);  // Relocate, not copy.
    moved();
  }
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_EQ(*counter, 1);
}

TEST(InlineEventTest, PacketSizedCallableStaysInline) {
  const std::uint64_t fallbacks_before = InlineEvent::heap_fallbacks();
  struct PacketLike {
    void* net;
    Packet pkt;
    void operator()() const {}
  };
  static_assert(sizeof(PacketLike) <= InlineEvent::kInlineCapacity);
  InlineEvent ev(PacketLike{nullptr, Packet{}});
  EXPECT_FALSE(ev.uses_heap());
  EXPECT_EQ(InlineEvent::heap_fallbacks(), fallbacks_before);
}

TEST(InlineEventTest, OversizedCallableFallsBackToHeapAndCounts) {
  const std::uint64_t fallbacks_before = InlineEvent::heap_fallbacks();
  struct Huge {
    unsigned char blob[InlineEvent::kInlineCapacity + 64] = {};
    int* hits;
    void operator()() const { ++*hits; }
  };
  int hits = 0;
  Huge huge;
  huge.hits = &hits;
  InlineEvent ev(huge);
  EXPECT_TRUE(ev.uses_heap());
  EXPECT_EQ(InlineEvent::heap_fallbacks(), fallbacks_before + 1);
  InlineEvent moved(std::move(ev));  // Heap relocate = pointer steal.
  moved();
  EXPECT_EQ(hits, 1);
}

TEST(SimulatorTest, ReentrantSlotReuseIsSafe) {
  // A firing event schedules more work; arena slots recycle beneath it.
  Simulator sim;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth > 0) {
      sim.Schedule(1, [&chain, depth]() { chain(depth - 1); });
      sim.Schedule(2, [&fired]() { ++fired; });
    }
  };
  sim.Schedule(1, [&chain]() { chain(50); });
  sim.Run();
  EXPECT_EQ(fired, 51 + 50);
}

TEST(SimulatorTest, DepthGaugeSampledButHighWaterExact) {
  SimContext context;
  Simulator sim(&context);
  MetricGauge& gauge = context.metrics().Gauge("sim.pending_events");
  // Far fewer pushes than the sampling interval: the gauge would read a
  // stale value without reconciliation, but the high-water mark must be
  // exact after Run().
  for (int i = 0; i < 37; ++i) sim.Schedule(i, []() {});
  EXPECT_EQ(sim.max_pending_events(), 37u);
  sim.Run();
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(gauge.high_water(), 37);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, PacketDeliveryEventsNeverTouchHeap) {
  SimContext context;
  Simulator sim(&context);
  Network net(sim, 1000);
  std::uint64_t delivered = 0;
  const NodeId a = net.AddNode([&](const Packet&) { ++delivered; });
  const NodeId b = net.AddNode(nullptr);
  Packet pkt;
  pkt.src = b;
  pkt.dst = a;
  pkt.set_size(48);
  const std::uint64_t fallbacks_before = InlineEvent::heap_fallbacks();
  for (int i = 0; i < 10000; ++i) {
    net.Send(pkt);
    sim.Step();
  }
  EXPECT_EQ(delivered, 10000u);
  EXPECT_EQ(InlineEvent::heap_fallbacks(), fallbacks_before);
}

TEST(NetworkTest, DeliversAfterLatency) {
  Simulator sim;
  Network net(sim, 2500);
  SimTime delivered_at = 0;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b =
      net.AddNode([&](const Packet&) { delivered_at = sim.now(); });
  Packet pkt;
  pkt.src = a;
  pkt.dst = b;
  net.Send(pkt);
  sim.Run();
  EXPECT_EQ(delivered_at, 2500u);
}

TEST(NetworkTest, PerPairLatencyOverridesDefault) {
  Simulator sim;
  Network net(sim, 2500);
  SimTime delivered_at = 0;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b =
      net.AddNode([&](const Packet&) { delivered_at = sim.now(); });
  net.SetLatency(a, b, 700);
  Packet pkt;
  pkt.src = a;
  pkt.dst = b;
  net.Send(pkt);
  sim.Run();
  EXPECT_EQ(delivered_at, 700u);
}

TEST(NetworkTest, FifoPerPair) {
  Simulator sim;
  Network net(sim, 1000);
  std::vector<std::size_t> sizes;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b =
      net.AddNode([&](const Packet& p) { sizes.push_back(p.size()); });
  for (std::size_t i = 1; i <= 10; ++i) {
    Packet pkt;
    pkt.src = a;
    pkt.dst = b;
    pkt.set_size(i);
    net.Send(pkt);
  }
  sim.Run();
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sizes[i], i + 1);
}

TEST(NetworkTest, LossDropsConfiguredFraction) {
  Simulator sim;
  Network net(sim, 10);
  int received = 0;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b = net.AddNode([&](const Packet&) { ++received; });
  net.SetLossProbability(0.25, /*seed=*/99);
  for (int i = 0; i < 10000; ++i) {
    Packet pkt;
    pkt.src = a;
    pkt.dst = b;
    net.Send(pkt);
  }
  sim.Run();
  EXPECT_NEAR(received, 7500, 200);
  EXPECT_EQ(net.packets_dropped(), 10000u - received);
}

TEST(ServiceQueueTest, IdleItemTakesServiceTime) {
  Simulator sim;
  ServiceQueue queue(sim, 100);
  SimTime done = 0;
  queue.Submit([&]() { done = sim.now(); });
  sim.Run();
  EXPECT_EQ(done, 100u);
}

TEST(ServiceQueueTest, BackToBackItemsQueue) {
  Simulator sim;
  ServiceQueue queue(sim, 100);
  std::vector<SimTime> done;
  for (int i = 0; i < 5; ++i) {
    queue.Submit([&]() { done.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300, 400, 500}));
}

TEST(ServiceQueueTest, SaturationThroughputMatchesRate) {
  Simulator sim;
  ServiceQueue queue(sim, 444);  // ~2.25M items/s.
  std::uint64_t completed = 0;
  // Closed loop: resubmit on completion, 4 outstanding.
  std::function<void()> resubmit = [&]() {
    ++completed;
    queue.Submit(resubmit);
  };
  for (int i = 0; i < 4; ++i) queue.Submit(resubmit);
  sim.RunUntil(kSecond);
  // Stop the self-perpetuating load by measuring now.
  EXPECT_NEAR(static_cast<double>(completed), 1e9 / 444, 1e9 / 444 * 0.01);
}

TEST(ServiceQueueTest, PerItemServiceTimes) {
  Simulator sim;
  ServiceQueue queue(sim, 100);
  std::vector<SimTime> done;
  queue.SubmitWithTime(370, [&]() { done.push_back(sim.now()); });
  queue.SubmitWithTime(100, [&]() { done.push_back(sim.now()); });
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{370, 470}));
}

TEST(ServiceQueueTest, QueueingDelayVisible) {
  Simulator sim;
  ServiceQueue queue(sim, 200);
  queue.Submit([]() {});
  queue.Submit([]() {});
  EXPECT_EQ(queue.QueueingDelay(), 400u);
  sim.Run();
  EXPECT_EQ(queue.QueueingDelay(), 0u);
}

}  // namespace
}  // namespace netlock
