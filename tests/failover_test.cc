// Tests for backup-switch failover (paper Section 4.5): suspended-mode
// queueing, lease-gated backup activation, release routing to the grantor,
// per-lock primary activation as the backup drains, and end-to-end
// continuity of service with the safety oracle attached.
#include <gtest/gtest.h>

#include "core/failover.h"
#include "core/netlock.h"
#include "harness/experiment.h"
#include "harness/testbed.h"
#include "testing/lock_oracle.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

TEST(SuspendedModeTest, QueuesWithoutGranting) {
  Simulator sim;
  Network net(sim, 1000);
  LockSwitchConfig config;
  config.queue_capacity = 64;
  config.array_size = 32;
  config.max_locks = 8;
  LockSwitch lock_switch(net, config);
  PacketCatcher client(net);
  PacketCatcher server(net);
  ASSERT_TRUE(lock_switch.InstallLock(1, server.node(), 8,
                                      /*suspended=*/true));
  EXPECT_TRUE(lock_switch.IsSuspended(1));
  lock_switch.HandlePacket(MakeLockPacket(
      client.node(), lock_switch.node(),
      MakeAcquire(1, LockMode::kExclusive, 1, client.node())));
  sim.Run();
  EXPECT_FALSE(client.HasGrantFor(1));
  EXPECT_FALSE(lock_switch.QueueEmpty(1));
  // A stale release must not dequeue the suspended waiter.
  lock_switch.HandlePacket(MakeLockPacket(
      client.node(), lock_switch.node(),
      MakeRelease(1, LockMode::kExclusive, 99, client.node())));
  sim.Run();
  EXPECT_EQ(lock_switch.stats().stale_releases, 1u);
  EXPECT_FALSE(lock_switch.QueueEmpty(1));
  // Activation grants the head.
  lock_switch.Activate(1);
  sim.Run();
  EXPECT_TRUE(client.HasGrantFor(1));
  EXPECT_FALSE(lock_switch.IsSuspended(1));
}

TEST(SuspendedModeTest, ActivationGrantsSharedBatch) {
  Simulator sim;
  Network net(sim, 1000);
  LockSwitchConfig config;
  config.queue_capacity = 64;
  config.array_size = 32;
  config.max_locks = 8;
  LockSwitch lock_switch(net, config);
  PacketCatcher client(net);
  PacketCatcher server(net);
  ASSERT_TRUE(lock_switch.InstallLock(1, server.node(), 16, true));
  for (TxnId txn = 1; txn <= 3; ++txn) {
    lock_switch.HandlePacket(MakeLockPacket(
        client.node(), lock_switch.node(),
        MakeAcquire(1, LockMode::kShared, txn, client.node())));
  }
  lock_switch.HandlePacket(MakeLockPacket(
      client.node(), lock_switch.node(),
      MakeAcquire(1, LockMode::kExclusive, 4, client.node())));
  sim.Run();
  EXPECT_TRUE(client.Grants().empty());
  lock_switch.Activate(1);
  sim.Run();
  EXPECT_TRUE(client.HasGrantFor(1));
  EXPECT_TRUE(client.HasGrantFor(2));
  EXPECT_TRUE(client.HasGrantFor(3));
  EXPECT_FALSE(client.HasGrantFor(4));  // Exclusive waits for the batch.
  // And the normal release machinery takes over.
  for (TxnId txn = 1; txn <= 3; ++txn) {
    lock_switch.HandlePacket(MakeLockPacket(
        client.node(), lock_switch.node(),
        MakeRelease(1, LockMode::kShared, txn, client.node())));
    sim.Run();
  }
  EXPECT_TRUE(client.HasGrantFor(4));
}

class FailoverEndToEndTest : public ::testing::Test {
 protected:
  FailoverEndToEndTest() {
    config_.system = SystemKind::kNetLock;
    config_.client_machines = 2;
    config_.sessions_per_machine = 4;
    config_.lock_servers = 2;
    config_.client_retry_timeout = kMillisecond;
    config_.lease = 5 * kMillisecond;
    config_.lease_poll_interval = kMillisecond;
    config_.txn_config.think_time = 5 * kMicrosecond;
    MicroConfig micro;
    micro.num_locks = 64;
    config_.workload_factory = MicroFactory(micro);
    oracle_ = std::make_shared<testing::LockOracle>();
    config_.session_wrapper =
        [this](std::unique_ptr<LockSession> inner) {
          raw_sessions_.push_back(
              static_cast<NetLockSession*>(inner.get()));
          return std::make_unique<testing::OracleSession>(std::move(inner),
                                                          *oracle_);
        };
  }

  TestbedConfig config_;
  std::shared_ptr<testing::LockOracle> oracle_;
  std::vector<NetLockSession*> raw_sessions_;
};

TEST_F(FailoverEndToEndTest, ServiceContinuesThroughFailover) {
  Testbed testbed(config_);
  MicroConfig micro;
  micro.num_locks = 64;
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  // Stand up the backup switch at the same rack position.
  LockSwitch backup(testbed.net(), config_.switch_config);
  for (NetLockSession* s : raw_sessions_) {
    testbed.net().SetLatency(s->node(), backup.node(), 2500);
  }
  for (int i = 0; i < testbed.netlock().num_servers(); ++i) {
    testbed.net().SetLatency(backup.node(),
                             testbed.netlock().server(i).node(), 1500);
  }
  FailoverManager failover(testbed.sim(), testbed.netlock().lock_switch(),
                           backup, testbed.netlock().control_plane());
  for (NetLockSession* s : raw_sessions_) failover.RegisterSession(s);

  testbed.StartEngines();
  testbed.sim().RunUntil(30 * kMillisecond);
  const std::uint64_t commits_before = [&] {
    std::uint64_t total = 0;
    for (int i = 0; i < testbed.num_engines(); ++i) {
      testbed.engine(i).SetRecording(true);
      total += testbed.engine(i).metrics().txn_commits;
    }
    return total;
  }();
  (void)commits_before;

  // Fail over to the backup.
  failover.FailPrimary();
  EXPECT_EQ(failover.active_switch(), backup.node());
  testbed.sim().RunUntil(80 * kMillisecond);
  std::uint64_t commits_backup = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    commits_backup += testbed.engine(i).metrics().txn_commits;
  }
  EXPECT_GT(commits_backup, 1000u);  // Backup is serving.
  EXPECT_GT(backup.stats().grants, 0u);

  // Recover the primary; the backup drains then goes cold.
  bool recovered = false;
  failover.RecoverPrimary([&]() { recovered = true; });
  testbed.sim().RunUntil(150 * kMillisecond);
  EXPECT_TRUE(recovered);
  EXPECT_FALSE(failover.backup_active());
  EXPECT_EQ(failover.active_switch(),
            testbed.netlock().lock_switch().node());

  std::uint64_t commits_final = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    commits_final += testbed.engine(i).metrics().txn_commits;
  }
  EXPECT_GT(commits_final, commits_backup + 1000u);  // Primary serving.
  EXPECT_EQ(oracle_->violations(), 0u);  // Safety held throughout.
  testbed.StopEngines(kSecond);
}

// Edge case: the primary recovers while the backup still holds non-empty
// queues. The backup must keep granting its queued work (releases route to
// the grantor), hand each lock back only once its queue drains, and report
// drained exactly once — all without a safety violation.
TEST_F(FailoverEndToEndTest, RecoveryWithNonEmptyBackupQueuesDrainsInOrder) {
  MicroConfig micro;
  micro.num_locks = 4;  // Heavy contention: backup queues stay populated.
  config_.workload_factory = MicroFactory(micro);
  Testbed testbed(config_);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  LockSwitch backup(testbed.net(), config_.switch_config);
  for (NetLockSession* s : raw_sessions_) {
    testbed.net().SetLatency(s->node(), backup.node(), 2500);
  }
  for (int i = 0; i < testbed.netlock().num_servers(); ++i) {
    testbed.net().SetLatency(backup.node(),
                             testbed.netlock().server(i).node(), 1500);
  }
  FailoverManager failover(testbed.sim(), testbed.netlock().lock_switch(),
                           backup, testbed.netlock().control_plane());
  for (NetLockSession* s : raw_sessions_) failover.RegisterSession(s);
  testbed.StartEngines();
  testbed.sim().RunUntil(10 * kMillisecond);
  failover.FailPrimary();
  testbed.sim().RunUntil(25 * kMillisecond);  // Past the lease: serving.
  const std::uint64_t grants_at_recovery = backup.stats().grants;
  EXPECT_GT(grants_at_recovery, 0u);
  bool drained = false;
  failover.RecoverPrimary([&]() { drained = true; });
  // New acquires go to the primary immediately, but the backup stays
  // active until its queues empty.
  EXPECT_EQ(failover.active_switch(),
            testbed.netlock().lock_switch().node());
  EXPECT_TRUE(failover.backup_active());
  testbed.sim().RunUntil(150 * kMillisecond);
  EXPECT_TRUE(drained);
  EXPECT_FALSE(failover.backup_active());
  // The backup granted queued work during the drain window.
  EXPECT_GT(backup.stats().grants, grants_at_recovery);
  EXPECT_EQ(oracle_->violations(), 0u);
  testbed.StopEngines(kSecond);
}

// Edge case: the primary fails AGAIN while the backup is still draining
// from the previous failover. The superseded recovery's callback must
// never fire, the backup keeps serving, and a later recovery completes
// normally — still with zero oracle violations.
TEST_F(FailoverEndToEndTest, SecondFailureDuringDrainSupersedesRecovery) {
  MicroConfig micro;
  micro.num_locks = 4;
  config_.workload_factory = MicroFactory(micro);
  Testbed testbed(config_);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  LockSwitch backup(testbed.net(), config_.switch_config);
  for (NetLockSession* s : raw_sessions_) {
    testbed.net().SetLatency(s->node(), backup.node(), 2500);
  }
  for (int i = 0; i < testbed.netlock().num_servers(); ++i) {
    testbed.net().SetLatency(backup.node(),
                             testbed.netlock().server(i).node(), 1500);
  }
  FailoverManager failover(testbed.sim(), testbed.netlock().lock_switch(),
                           backup, testbed.netlock().control_plane());
  for (NetLockSession* s : raw_sessions_) failover.RegisterSession(s);
  testbed.StartEngines();
  testbed.sim().RunUntil(10 * kMillisecond);
  failover.FailPrimary();
  testbed.sim().RunUntil(25 * kMillisecond);
  bool first_recovery_done = false;
  failover.RecoverPrimary([&]() { first_recovery_done = true; });
  // Let part of the drain happen: the backup serves queued work while new
  // acquires already target the restarted primary. Stay inside the first
  // drain poll (1 ms) so the recovery is still pending.
  testbed.sim().RunUntil(testbed.sim().now() + 200 * kMicrosecond);
  ASSERT_TRUE(failover.backup_active());  // Mid-drain, not after it.
  // ...then the primary dies again mid-drain.
  failover.FailPrimary();
  EXPECT_EQ(failover.active_switch(), backup.node());
  testbed.sim().RunUntil(60 * kMillisecond);
  EXPECT_FALSE(first_recovery_done);  // Superseded: must never fire.
  EXPECT_TRUE(failover.backup_active());
  // The second recovery completes normally.
  bool second_recovery_done = false;
  failover.RecoverPrimary([&]() { second_recovery_done = true; });
  testbed.sim().RunUntil(200 * kMillisecond);
  EXPECT_TRUE(second_recovery_done);
  EXPECT_FALSE(failover.backup_active());
  EXPECT_EQ(failover.active_switch(),
            testbed.netlock().lock_switch().node());
  EXPECT_EQ(oracle_->violations(), 0u);
  testbed.StopEngines(kSecond);
}

TEST_F(FailoverEndToEndTest, BackupActivationWaitsForLease) {
  Testbed testbed(config_);
  MicroConfig micro;
  micro.num_locks = 64;
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  LockSwitch backup(testbed.net(), config_.switch_config);
  for (NetLockSession* s : raw_sessions_) {
    testbed.net().SetLatency(s->node(), backup.node(), 2500);
  }
  FailoverManager failover(testbed.sim(), testbed.netlock().lock_switch(),
                           backup, testbed.netlock().control_plane());
  for (NetLockSession* s : raw_sessions_) failover.RegisterSession(s);
  testbed.StartEngines();
  testbed.sim().RunUntil(10 * kMillisecond);
  failover.FailPrimary();
  // Within the lease window the backup must not have granted anything.
  testbed.sim().RunUntil(testbed.sim().now() + 3 * kMillisecond);
  EXPECT_EQ(backup.stats().grants, 0u);
  // After the lease the backup serves.
  testbed.sim().RunUntil(testbed.sim().now() + 20 * kMillisecond);
  EXPECT_GT(backup.stats().grants, 0u);
  EXPECT_EQ(oracle_->violations(), 0u);
  testbed.StopEngines(kSecond);
}

TEST_F(FailoverEndToEndTest, EarlyRecoveryInheritsPrimaryLeaseGrace) {
  // Regression: RecoverPrimary issued before FailPrimary's one-lease grace
  // elapsed found the (never-activated) backup's queues empty and activated
  // the primary's locks immediately — overlapping grants the old primary
  // issued just before the failure, whose releases died with it. The
  // recovered primary must inherit the remainder of the grace.
  Testbed testbed(config_);
  MicroConfig micro;
  micro.num_locks = 64;
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  LockSwitch backup(testbed.net(), config_.switch_config);
  for (NetLockSession* s : raw_sessions_) {
    testbed.net().SetLatency(s->node(), backup.node(), 2500);
  }
  FailoverManager failover(testbed.sim(), testbed.netlock().lock_switch(),
                           backup, testbed.netlock().control_plane());
  for (NetLockSession* s : raw_sessions_) failover.RegisterSession(s);
  testbed.StartEngines();
  testbed.sim().RunUntil(10 * kMillisecond);
  failover.FailPrimary();
  // Fail back long before the 5 ms lease grace is up.
  testbed.sim().RunUntil(testbed.sim().now() + 500 * kMicrosecond);
  bool recovered = false;
  failover.RecoverPrimary([&]() { recovered = true; });
  const std::uint64_t grants_at_recovery =
      testbed.netlock().lock_switch().stats().grants;
  // Within the remaining grace the primary must not grant: leases of the
  // pre-failure holders are still live.
  testbed.sim().RunUntil(testbed.sim().now() + 3 * kMillisecond);
  EXPECT_EQ(testbed.netlock().lock_switch().stats().grants,
            grants_at_recovery);
  // Once the grace ends the primary serves again, safely.
  testbed.sim().RunUntil(testbed.sim().now() + 40 * kMillisecond);
  EXPECT_TRUE(recovered);
  EXPECT_GT(testbed.netlock().lock_switch().stats().grants,
            grants_at_recovery);
  EXPECT_EQ(oracle_->violations(), 0u);
  testbed.StopEngines(kSecond);
}

}  // namespace
}  // namespace netlock
