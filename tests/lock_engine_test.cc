// Unit tests for the substrate-neutral LockEngine: the wait-queue protocol
// core shared by the simulated LockServer and the real-time RtLockService.
#include <gtest/gtest.h>

#include <vector>

#include "core/lock_engine.h"

namespace netlock {
namespace {

struct CapturedGrant {
  LockId lock;
  QueueSlot slot;
};

class CapturingSink : public GrantSink {
 public:
  void DeliverGrant(LockId lock, const QueueSlot& slot) override {
    grants.push_back({lock, slot});
  }
  void OnWaitEnd(LockId lock, const QueueSlot&, SimTime) override {
    wait_ends.push_back(lock);
  }

  std::vector<CapturedGrant> grants;
  std::vector<LockId> wait_ends;
};

QueueSlot Slot(LockMode mode, TxnId txn, NodeId client = 1) {
  QueueSlot slot;
  slot.mode = mode;
  slot.txn_id = txn;
  slot.client_node = client;
  return slot;
}

TEST(LockEngineTest, FirstAcquireGrantsImmediately) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(7, Slot(LockMode::kExclusive, 1), 100);
  ASSERT_EQ(sink.grants.size(), 1u);
  EXPECT_EQ(sink.grants[0].lock, 7u);
  EXPECT_EQ(sink.grants[0].slot.txn_id, 1u);
  EXPECT_EQ(sink.grants[0].slot.timestamp, 100u);  // Stamped with now.
  EXPECT_TRUE(sink.wait_ends.empty());             // No wait happened.
  EXPECT_TRUE(engine.Owns(7));
  EXPECT_EQ(engine.QueueDepth(7), 1u);
}

TEST(LockEngineTest, SharedRequestsJoinSharedHolders) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kShared, 1), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 2), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 3), 0);
  EXPECT_EQ(sink.grants.size(), 3u);  // All-shared queue grants everyone.
  engine.Acquire(1, Slot(LockMode::kExclusive, 4), 0);
  EXPECT_EQ(sink.grants.size(), 3u);  // Exclusive waits behind them.
  EXPECT_EQ(engine.QueueDepth(1), 4u);
}

TEST(LockEngineTest, ExclusiveReleaseCascadesToNextHead) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 10);
  engine.Acquire(1, Slot(LockMode::kExclusive, 2), 20);
  ASSERT_EQ(sink.grants.size(), 1u);
  const ReleaseOutcome outcome =
      engine.Release(1, LockMode::kExclusive, 1, /*lease_forced=*/false, 30);
  EXPECT_EQ(outcome, ReleaseOutcome::kApplied);
  ASSERT_EQ(sink.grants.size(), 2u);
  EXPECT_EQ(sink.grants[1].slot.txn_id, 2u);
  EXPECT_EQ(sink.grants[1].slot.timestamp, 30u);  // Re-stamped at grant.
  ASSERT_EQ(sink.wait_ends.size(), 1u);           // Txn 2 waited.
}

TEST(LockEngineTest, ExclusiveReleaseGrantsRunOfShareds) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 2), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 3), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 4), 0);
  ASSERT_EQ(sink.grants.size(), 1u);
  engine.Release(1, LockMode::kExclusive, 1, false, 0);
  // E -> S cascade: both leading shareds granted, trailing exclusive not.
  EXPECT_EQ(sink.grants.size(), 3u);
  EXPECT_EQ(sink.grants[1].slot.txn_id, 2u);
  EXPECT_EQ(sink.grants[2].slot.txn_id, 3u);
}

TEST(LockEngineTest, ReleaseValidationRejectsStaleAndMismatched) {
  CapturingSink sink;
  LockEngine engine(sink);
  EXPECT_EQ(engine.Release(9, LockMode::kExclusive, 1, false, 0),
            ReleaseOutcome::kStale);  // Unknown lock.
  engine.Acquire(9, Slot(LockMode::kExclusive, 1), 0);
  // Wrong transaction for an exclusive hold: must not blind-pop.
  EXPECT_EQ(engine.Release(9, LockMode::kExclusive, 2, false, 0),
            ReleaseOutcome::kMismatched);
  // Wrong mode.
  EXPECT_EQ(engine.Release(9, LockMode::kShared, 1, false, 0),
            ReleaseOutcome::kMismatched);
  EXPECT_EQ(engine.QueueDepth(9), 1u);  // Holder still in place.
  EXPECT_EQ(engine.Release(9, LockMode::kExclusive, 1, false, 0),
            ReleaseOutcome::kApplied);
  EXPECT_TRUE(engine.QueueEmpty(9));
}

TEST(LockEngineTest, ClearExpiredForceReleasesOldHeads) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 0);      // Granted at 0.
  engine.Acquire(1, Slot(LockMode::kExclusive, 2), 500);    // Waits.
  engine.Acquire(2, Slot(LockMode::kExclusive, 3), 900);    // Fresh.
  const std::uint64_t forced = engine.ClearExpired(/*lease=*/1000,
                                                   /*now=*/1100);
  EXPECT_EQ(forced, 1u);  // Only lock 1's head (granted at 0) expired.
  // Txn 2 re-stamped at 1100 and granted.
  ASSERT_EQ(sink.grants.size(), 3u);
  EXPECT_EQ(sink.grants[2].slot.txn_id, 2u);
  EXPECT_EQ(sink.grants[2].slot.timestamp, 1100u);
}

TEST(LockEngineTest, PausedLockBuffersUntilResumed) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.SetPaused(5, true);
  engine.Acquire(5, Slot(LockMode::kExclusive, 1), 0);
  engine.Acquire(5, Slot(LockMode::kExclusive, 2), 0);
  EXPECT_TRUE(sink.grants.empty());
  EXPECT_TRUE(engine.IsPaused(5));
  EXPECT_EQ(engine.TotalQueueDepth(), 2u);  // Buffered entries count.
  std::deque<QueueSlot> buffered = engine.TakePausedBuffer(5);
  ASSERT_EQ(buffered.size(), 2u);
  engine.SetPaused(5, false);
  for (QueueSlot& slot : buffered) engine.Acquire(5, slot, 50);
  EXPECT_EQ(sink.grants.size(), 1u);  // Head granted, second waits.
}

TEST(LockEngineTest, AdoptQueueInstallsBacklogAndGrantsFront) {
  CapturingSink sink;
  LockEngine engine(sink);
  std::deque<QueueSlot> backlog;
  backlog.push_back(Slot(LockMode::kShared, 1));
  backlog.push_back(Slot(LockMode::kShared, 2));
  backlog.push_back(Slot(LockMode::kExclusive, 3));
  engine.AdoptQueue(4, std::move(backlog), 200);
  // Leading shared run granted, re-stamped to adoption time.
  ASSERT_EQ(sink.grants.size(), 2u);
  EXPECT_EQ(sink.grants[0].slot.timestamp, 200u);
  EXPECT_EQ(engine.QueueDepth(4), 3u);
  // Adopting an empty queue still creates the entry (ownership marker).
  engine.AdoptQueue(6, {}, 200);
  EXPECT_TRUE(engine.Owns(6));
  EXPECT_TRUE(engine.QueueEmpty(6));
}

TEST(LockEngineTest, HarvestDemandsReportsAndResetsCounters) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 2), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 3), 0);
  std::vector<LockDemand> demands;
  engine.HarvestDemands(/*window_sec=*/2.0, demands);
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_EQ(demands[0].lock, 1u);
  EXPECT_DOUBLE_EQ(demands[0].rate, 1.5);     // 3 requests / 2 s.
  EXPECT_EQ(demands[0].contention, 3u);       // Max depth seen.
  demands.clear();
  engine.HarvestDemands(2.0, demands);
  EXPECT_TRUE(demands.empty());  // Counters reset; idle locks not reported.
}

TEST(LockEngineTest, DropDrainedAssertsEmptyAndForgets) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(3, Slot(LockMode::kExclusive, 1), 0);
  engine.Release(3, LockMode::kExclusive, 1, false, 0);
  EXPECT_TRUE(engine.QueueEmpty(3));
  engine.DropDrained(3);
  EXPECT_FALSE(engine.Owns(3));
  EXPECT_EQ(engine.num_owned(), 0u);
}

}  // namespace
}  // namespace netlock
