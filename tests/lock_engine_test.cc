// Unit tests for the substrate-neutral LockEngine: the wait-queue protocol
// core shared by the simulated LockServer and the real-time RtLockService.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "core/lock_engine.h"

namespace netlock {
namespace {

struct CapturedGrant {
  LockId lock;
  QueueSlot slot;
  std::size_t seq = 0;  ///< Position in the merged grant+abort stream.
};

struct CapturedAbort {
  LockId lock;
  QueueSlot slot;
  AbortReason reason;
  std::size_t seq = 0;
};

class CapturingSink : public GrantSink {
 public:
  void DeliverGrant(LockId lock, const QueueSlot& slot) override {
    grants.push_back({lock, slot, events++});
  }
  void OnWaitEnd(LockId lock, const QueueSlot&, SimTime) override {
    wait_ends.push_back(lock);
  }
  void DeliverAbort(LockId lock, const QueueSlot& slot,
                    AbortReason reason) override {
    aborts.push_back({lock, slot, reason, events++});
  }

  std::vector<CapturedGrant> grants;
  std::vector<LockId> wait_ends;
  std::vector<CapturedAbort> aborts;
  /// Merged grant+abort delivery count (sequences ordering assertions).
  std::size_t events = 0;
};

QueueSlot Slot(LockMode mode, TxnId txn, NodeId client = 1) {
  QueueSlot slot;
  slot.mode = mode;
  slot.txn_id = txn;
  slot.client_node = client;
  return slot;
}

TEST(LockEngineTest, FirstAcquireGrantsImmediately) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(7, Slot(LockMode::kExclusive, 1), 100);
  ASSERT_EQ(sink.grants.size(), 1u);
  EXPECT_EQ(sink.grants[0].lock, 7u);
  EXPECT_EQ(sink.grants[0].slot.txn_id, 1u);
  EXPECT_EQ(sink.grants[0].slot.timestamp, 100u);  // Stamped with now.
  EXPECT_TRUE(sink.wait_ends.empty());             // No wait happened.
  EXPECT_TRUE(engine.Owns(7));
  EXPECT_EQ(engine.QueueDepth(7), 1u);
}

TEST(LockEngineTest, SharedRequestsJoinSharedHolders) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kShared, 1), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 2), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 3), 0);
  EXPECT_EQ(sink.grants.size(), 3u);  // All-shared queue grants everyone.
  engine.Acquire(1, Slot(LockMode::kExclusive, 4), 0);
  EXPECT_EQ(sink.grants.size(), 3u);  // Exclusive waits behind them.
  EXPECT_EQ(engine.QueueDepth(1), 4u);
}

TEST(LockEngineTest, ExclusiveReleaseCascadesToNextHead) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 10);
  engine.Acquire(1, Slot(LockMode::kExclusive, 2), 20);
  ASSERT_EQ(sink.grants.size(), 1u);
  const ReleaseOutcome outcome =
      engine.Release(1, LockMode::kExclusive, 1, /*lease_forced=*/false, 30);
  EXPECT_EQ(outcome, ReleaseOutcome::kApplied);
  ASSERT_EQ(sink.grants.size(), 2u);
  EXPECT_EQ(sink.grants[1].slot.txn_id, 2u);
  EXPECT_EQ(sink.grants[1].slot.timestamp, 30u);  // Re-stamped at grant.
  ASSERT_EQ(sink.wait_ends.size(), 1u);           // Txn 2 waited.
}

TEST(LockEngineTest, ExclusiveReleaseGrantsRunOfShareds) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 2), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 3), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 4), 0);
  ASSERT_EQ(sink.grants.size(), 1u);
  engine.Release(1, LockMode::kExclusive, 1, false, 0);
  // E -> S cascade: both leading shareds granted, trailing exclusive not.
  EXPECT_EQ(sink.grants.size(), 3u);
  EXPECT_EQ(sink.grants[1].slot.txn_id, 2u);
  EXPECT_EQ(sink.grants[2].slot.txn_id, 3u);
}

TEST(LockEngineTest, ReleaseValidationRejectsStaleAndMismatched) {
  CapturingSink sink;
  LockEngine engine(sink);
  EXPECT_EQ(engine.Release(9, LockMode::kExclusive, 1, false, 0),
            ReleaseOutcome::kStale);  // Unknown lock.
  engine.Acquire(9, Slot(LockMode::kExclusive, 1), 0);
  // Wrong transaction for an exclusive hold: must not blind-pop.
  EXPECT_EQ(engine.Release(9, LockMode::kExclusive, 2, false, 0),
            ReleaseOutcome::kMismatched);
  // Wrong mode.
  EXPECT_EQ(engine.Release(9, LockMode::kShared, 1, false, 0),
            ReleaseOutcome::kMismatched);
  EXPECT_EQ(engine.QueueDepth(9), 1u);  // Holder still in place.
  EXPECT_EQ(engine.Release(9, LockMode::kExclusive, 1, false, 0),
            ReleaseOutcome::kApplied);
  EXPECT_TRUE(engine.QueueEmpty(9));
}

TEST(LockEngineTest, ClearExpiredForceReleasesOldHeads) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 0);      // Granted at 0.
  engine.Acquire(1, Slot(LockMode::kExclusive, 2), 500);    // Waits.
  engine.Acquire(2, Slot(LockMode::kExclusive, 3), 900);    // Fresh.
  const std::uint64_t forced = engine.ClearExpired(/*lease=*/1000,
                                                   /*now=*/1100);
  EXPECT_EQ(forced, 1u);  // Only lock 1's head (granted at 0) expired.
  // Txn 2 re-stamped at 1100 and granted.
  ASSERT_EQ(sink.grants.size(), 3u);
  EXPECT_EQ(sink.grants[2].slot.txn_id, 2u);
  EXPECT_EQ(sink.grants[2].slot.timestamp, 1100u);
}

TEST(LockEngineTest, PausedLockBuffersUntilResumed) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.SetPaused(5, true);
  engine.Acquire(5, Slot(LockMode::kExclusive, 1), 0);
  engine.Acquire(5, Slot(LockMode::kExclusive, 2), 0);
  EXPECT_TRUE(sink.grants.empty());
  EXPECT_TRUE(engine.IsPaused(5));
  EXPECT_EQ(engine.TotalQueueDepth(), 2u);  // Buffered entries count.
  std::deque<QueueSlot> buffered = engine.TakePausedBuffer(5);
  ASSERT_EQ(buffered.size(), 2u);
  engine.SetPaused(5, false);
  for (QueueSlot& slot : buffered) engine.Acquire(5, slot, 50);
  EXPECT_EQ(sink.grants.size(), 1u);  // Head granted, second waits.
}

TEST(LockEngineTest, AdoptQueueInstallsBacklogAndGrantsFront) {
  CapturingSink sink;
  LockEngine engine(sink);
  std::deque<QueueSlot> backlog;
  backlog.push_back(Slot(LockMode::kShared, 1));
  backlog.push_back(Slot(LockMode::kShared, 2));
  backlog.push_back(Slot(LockMode::kExclusive, 3));
  engine.AdoptQueue(4, std::move(backlog), 200);
  // Leading shared run granted, re-stamped to adoption time.
  ASSERT_EQ(sink.grants.size(), 2u);
  EXPECT_EQ(sink.grants[0].slot.timestamp, 200u);
  EXPECT_EQ(engine.QueueDepth(4), 3u);
  // Adopting an empty queue still creates the entry (ownership marker).
  engine.AdoptQueue(6, {}, 200);
  EXPECT_TRUE(engine.Owns(6));
  EXPECT_TRUE(engine.QueueEmpty(6));
}

TEST(LockEngineTest, HarvestDemandsReportsAndResetsCounters) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 2), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 3), 0);
  std::vector<LockDemand> demands;
  engine.HarvestDemands(/*window_sec=*/2.0, demands);
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_EQ(demands[0].lock, 1u);
  EXPECT_DOUBLE_EQ(demands[0].rate, 1.5);     // 3 requests / 2 s.
  EXPECT_EQ(demands[0].contention, 3u);       // Max depth seen.
  demands.clear();
  engine.HarvestDemands(2.0, demands);
  EXPECT_TRUE(demands.empty());  // Counters reset; idle locks not reported.
}

TEST(LockEngineTest, DropDrainedAssertsEmptyAndForgets) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(3, Slot(LockMode::kExclusive, 1), 0);
  engine.Release(3, LockMode::kExclusive, 1, false, 0);
  EXPECT_TRUE(engine.QueueEmpty(3));
  engine.DropDrained(3);
  EXPECT_FALSE(engine.Owns(3));
  EXPECT_EQ(engine.num_owned(), 0u);
}

// --- Deadlock-handling policies ---
// Age = txn id (smaller = older). kNoWait refuses any conflicting acquire;
// kWaitDie refuses a requester younger than a conflicting queued entry;
// kWoundWait revokes every younger conflicting entry (waiting or granted)
// before queuing the requester.

TEST(LockEnginePolicyTest, NoWaitRefusesConflictingAcquire) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.set_deadlock_policy(DeadlockPolicy::kNoWait);
  engine.Acquire(1, Slot(LockMode::kShared, 10), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 11), 0);
  EXPECT_EQ(sink.grants.size(), 2u);  // Shared-shared: no conflict.
  engine.Acquire(1, Slot(LockMode::kExclusive, 12), 0);
  ASSERT_EQ(sink.aborts.size(), 1u);  // Exclusive conflicts: refused.
  EXPECT_EQ(sink.aborts[0].slot.txn_id, 12u);
  EXPECT_EQ(sink.aborts[0].reason, AbortReason::kNoWait);
  EXPECT_EQ(engine.QueueDepth(1), 2u);  // Never queued.
  // Same-txn retransmit does not self-conflict.
  engine.Acquire(2, Slot(LockMode::kExclusive, 20), 0);
  engine.Acquire(2, Slot(LockMode::kExclusive, 20), 0);
  EXPECT_EQ(sink.aborts.size(), 1u);
}

TEST(LockEnginePolicyTest, WaitDieAbortsYoungerLetsOlderWait) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.set_deadlock_policy(DeadlockPolicy::kWaitDie);
  engine.Acquire(1, Slot(LockMode::kExclusive, 10), 0);
  // Younger (larger txn id) conflicting requester dies.
  engine.Acquire(1, Slot(LockMode::kExclusive, 20), 0);
  ASSERT_EQ(sink.aborts.size(), 1u);
  EXPECT_EQ(sink.aborts[0].slot.txn_id, 20u);
  EXPECT_EQ(sink.aborts[0].reason, AbortReason::kWaitDie);
  // Older conflicting requester waits (no abort, no grant yet).
  engine.Acquire(1, Slot(LockMode::kExclusive, 5), 0);
  EXPECT_EQ(sink.aborts.size(), 1u);
  EXPECT_EQ(engine.QueueDepth(1), 2u);
  engine.Release(1, LockMode::kExclusive, 10, false, 1);
  ASSERT_EQ(sink.grants.size(), 2u);
  EXPECT_EQ(sink.grants[1].slot.txn_id, 5u);
}

TEST(LockEnginePolicyTest, WoundWaitRevokesAllYoungerThenQueues) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.set_deadlock_policy(DeadlockPolicy::kWoundWait);
  // Two granted shared holders, both younger than the wounding exclusive.
  engine.Acquire(1, Slot(LockMode::kShared, 20), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 30), 0);
  ASSERT_EQ(sink.grants.size(), 2u);
  engine.Acquire(1, Slot(LockMode::kExclusive, 10), 5);
  // Both shared holders wounded (queue order), then the exclusive granted.
  ASSERT_EQ(sink.aborts.size(), 2u);
  EXPECT_EQ(sink.aborts[0].slot.txn_id, 20u);
  EXPECT_EQ(sink.aborts[1].slot.txn_id, 30u);
  EXPECT_EQ(sink.aborts[0].reason, AbortReason::kWound);
  ASSERT_EQ(sink.grants.size(), 3u);
  EXPECT_EQ(sink.grants[2].slot.txn_id, 10u);
  // Every wound delivered before the grant it enables.
  EXPECT_LT(sink.aborts[1].seq, sink.grants[2].seq);
  EXPECT_EQ(engine.QueueDepth(1), 1u);
  // An older holder survives: younger exclusive queues behind it.
  engine.Acquire(1, Slot(LockMode::kExclusive, 40), 6);
  EXPECT_EQ(sink.aborts.size(), 2u);
  EXPECT_EQ(engine.QueueDepth(1), 2u);
}

TEST(LockEnginePolicyTest, WoundWaitRevokesMidQueueWaiterAndRegrants) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.set_deadlock_policy(DeadlockPolicy::kWoundWait);
  // [X(5 granted), X(30 waiting), S(6 waiting)]: exclusive 10 arrives.
  // Only X(30) is younger than 10; X(5) and S(6) are older and survive,
  // and the prefix re-grant promotes nothing while X(5) still holds.
  engine.Acquire(1, Slot(LockMode::kExclusive, 5), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 30), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 6), 0);
  ASSERT_EQ(sink.grants.size(), 1u);
  engine.Acquire(1, Slot(LockMode::kExclusive, 10), 2);
  ASSERT_EQ(sink.aborts.size(), 1u);
  EXPECT_EQ(sink.aborts[0].slot.txn_id, 30u);
  EXPECT_EQ(sink.grants.size(), 1u);  // Holder X(5) unaffected.
  EXPECT_EQ(engine.QueueDepth(1), 3u);  // [X5, S6, X10].
  engine.Release(1, LockMode::kExclusive, 5, false, 3);
  ASSERT_EQ(sink.grants.size(), 2u);
  EXPECT_EQ(sink.grants[1].slot.txn_id, 6u);
}

// Regression: under a policy, a shared release must remove the releaser's
// own entry, not blind-pop the front. The fuzzer caught the blind pop
// leaving an entry labeled with an already-released txn: a later wound
// then removed the wrong holder's entry and granted an exclusive over a
// live shared holder.
TEST(LockEnginePolicyTest, PolicySharedReleaseRemovesOwnEntry) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.set_deadlock_policy(DeadlockPolicy::kWoundWait);
  engine.Acquire(1, Slot(LockMode::kShared, 10), 0);
  engine.Acquire(1, Slot(LockMode::kShared, 20), 0);
  ASSERT_EQ(sink.grants.size(), 2u);
  // Txn 20 (rear of the granted run) releases; txn 10 must remain.
  EXPECT_EQ(engine.Release(1, LockMode::kShared, 20, false, 1),
            ReleaseOutcome::kApplied);
  EXPECT_EQ(engine.QueueDepth(1), 1u);
  // An exclusive older than both arrives: the wound must name txn 10 (the
  // real survivor). With the blind pop it would have named 20 — and
  // granted X while 10 still held.
  engine.Acquire(1, Slot(LockMode::kExclusive, 5), 2);
  ASSERT_EQ(sink.aborts.size(), 1u);
  EXPECT_EQ(sink.aborts[0].slot.txn_id, 10u);
  ASSERT_EQ(sink.grants.size(), 3u);
  EXPECT_EQ(sink.grants[2].slot.txn_id, 5u);
  // A shared release whose txn holds nothing (e.g. crossed a wound in
  // flight) is stale and must not pop anyone.
  engine.Acquire(2, Slot(LockMode::kShared, 40), 3);
  EXPECT_EQ(engine.Release(2, LockMode::kShared, 41, false, 4),
            ReleaseOutcome::kStale);
  EXPECT_EQ(engine.QueueDepth(2), 1u);
}

TEST(LockEnginePolicyTest, RemoveTxnClearsWaitersAndPausedEntries) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.set_deadlock_policy(DeadlockPolicy::kWoundWait);
  // Ascending ages, so wound-wait itself removes nothing on arrival.
  engine.Acquire(1, Slot(LockMode::kExclusive, 5), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 7), 0);
  engine.Acquire(1, Slot(LockMode::kExclusive, 9), 0);
  // Cancel txn 9's pending entry (e.g. wounded elsewhere, acquire in
  // flight): removed without blocking, then release cascades past it.
  const LockEngine::RemoveResult removed =
      engine.RemoveTxn(1, 9, 1, /*notify=*/false);
  EXPECT_EQ(removed.removed, 1u);
  EXPECT_EQ(removed.removed_granted, 0u);
  engine.Release(1, LockMode::kExclusive, 5, false, 2);
  ASSERT_EQ(sink.grants.size(), 2u);
  EXPECT_EQ(sink.grants[1].slot.txn_id, 7u);
  // Paused-buffer entries are removed too.
  engine.SetPaused(3, true);
  engine.Acquire(3, Slot(LockMode::kExclusive, 9), 3);
  EXPECT_EQ(engine.RemoveTxn(3, 9, 4, /*notify=*/false).removed, 1u);
  EXPECT_EQ(engine.TakePausedBuffer(3).size(), 0u);
}

// --- Flat-table / slab-queue migration coverage ---
// The wait queue stores up to 4 entries inline and spills the whole queue
// into slab chunks beyond that; the table is open-addressing with
// tombstones. These tests walk every migration edge: inline -> slab growth,
// slab -> inline shrink, cascade runs crossing the spill boundary, deep
// paused buffers, deep adopted backlogs, and table rehash/tombstone reuse.

TEST(LockEngineTest, DeepQueueSpillsToSlabAndPreservesFifo) {
  CapturingSink sink;
  LockEngine engine(sink);
  constexpr TxnId kWaiters = 20;  // Inline holds 4; forces chunk chains.
  for (TxnId t = 1; t <= kWaiters; ++t) {
    engine.Acquire(1, Slot(LockMode::kExclusive, t), t);
  }
  ASSERT_EQ(sink.grants.size(), 1u);
  EXPECT_EQ(engine.QueueDepth(1), kWaiters);
  for (TxnId t = 1; t <= kWaiters; ++t) {
    EXPECT_EQ(engine.Release(1, LockMode::kExclusive, t, false, 100 + t),
              ReleaseOutcome::kApplied);
  }
  // Strict FIFO through the spill: grant t, then t+1, ... up to kWaiters.
  ASSERT_EQ(sink.grants.size(), kWaiters);
  for (TxnId t = 1; t <= kWaiters; ++t) {
    EXPECT_EQ(sink.grants[t - 1].slot.txn_id, t);
  }
  EXPECT_TRUE(engine.QueueEmpty(1));
  EXPECT_EQ(sink.wait_ends.size(), kWaiters - 1);  // All but the first.
}

TEST(LockEngineTest, SpilledQueueRevertsToInlineAndRegrows) {
  CapturingSink sink;
  LockEngine engine(sink);
  // Grow past the inline capacity, drain to empty (queue reverts to the
  // inline fast path), then regrow — twice, to catch chunk-recycling bugs.
  for (int round = 0; round < 2; ++round) {
    const TxnId base = static_cast<TxnId>(round) * 100;
    for (TxnId t = 1; t <= 10; ++t) {
      engine.Acquire(2, Slot(LockMode::kExclusive, base + t), 0);
    }
    EXPECT_EQ(engine.QueueDepth(2), 10u);
    for (TxnId t = 1; t <= 10; ++t) {
      EXPECT_EQ(engine.Release(2, LockMode::kExclusive, base + t, false, 0),
                ReleaseOutcome::kApplied);
    }
    EXPECT_TRUE(engine.QueueEmpty(2));
  }
  ASSERT_EQ(sink.grants.size(), 20u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.grants[i].slot.txn_id, i + 1);
    EXPECT_EQ(sink.grants[10 + i].slot.txn_id, 100 + i + 1);
  }
}

TEST(LockEngineTest, SharedRunCascadeCrossesSpillBoundary) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.Acquire(1, Slot(LockMode::kExclusive, 1), 0);
  // 10 shared waiters + a trailing exclusive: the E->S cascade run spans
  // the inline ring and two slab chunks.
  for (TxnId t = 2; t <= 11; ++t) {
    engine.Acquire(1, Slot(LockMode::kShared, t), 0);
  }
  engine.Acquire(1, Slot(LockMode::kExclusive, 12), 0);
  ASSERT_EQ(sink.grants.size(), 1u);
  EXPECT_EQ(engine.Release(1, LockMode::kExclusive, 1, false, 77),
            ReleaseOutcome::kApplied);
  // All 10 shareds granted in order, re-stamped; the exclusive still waits.
  ASSERT_EQ(sink.grants.size(), 11u);
  for (TxnId t = 2; t <= 11; ++t) {
    EXPECT_EQ(sink.grants[t - 1].slot.txn_id, t);
    EXPECT_EQ(sink.grants[t - 1].slot.timestamp, 77u);
  }
  EXPECT_EQ(engine.QueueDepth(1), 11u);
}

TEST(LockEngineTest, PausedBufferSpillsBeyondInlineCapacity) {
  CapturingSink sink;
  LockEngine engine(sink);
  engine.SetPaused(5, true);
  for (TxnId t = 1; t <= 12; ++t) {
    engine.Acquire(5, Slot(LockMode::kExclusive, t), t);
  }
  EXPECT_TRUE(sink.grants.empty());
  EXPECT_EQ(engine.TotalQueueDepth(), 12u);
  const std::deque<QueueSlot> buffered = engine.TakePausedBuffer(5);
  ASSERT_EQ(buffered.size(), 12u);
  for (std::size_t i = 0; i < buffered.size(); ++i) {
    EXPECT_EQ(buffered[i].txn_id, i + 1);  // Buffer order preserved.
  }
  EXPECT_EQ(engine.TotalQueueDepth(), 0u);
}

TEST(LockEngineTest, AdoptQueueInstallsDeepBacklog) {
  CapturingSink sink;
  LockEngine engine(sink);
  std::deque<QueueSlot> backlog;
  for (TxnId t = 1; t <= 6; ++t) {
    backlog.push_back(Slot(LockMode::kShared, t));
  }
  for (TxnId t = 7; t <= 10; ++t) {
    backlog.push_back(Slot(LockMode::kExclusive, t));
  }
  engine.AdoptQueue(4, std::move(backlog), 300);
  // Leading shared run (6 entries, crossing the spill boundary) granted.
  ASSERT_EQ(sink.grants.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sink.grants[i].slot.txn_id, i + 1);
    EXPECT_EQ(sink.grants[i].slot.timestamp, 300u);
  }
  EXPECT_EQ(engine.QueueDepth(4), 10u);
  // Draining the adopted queue grants the exclusives one by one.
  for (TxnId t = 1; t <= 6; ++t) {
    EXPECT_EQ(engine.Release(4, LockMode::kShared, t, false, 301),
              ReleaseOutcome::kApplied);
  }
  ASSERT_EQ(sink.grants.size(), 7u);
  EXPECT_EQ(sink.grants[6].slot.txn_id, 7u);
}

TEST(LockEngineTest, TableGrowsDropsAndReusesManyLocks) {
  CapturingSink sink;
  LockEngine engine(sink);
  constexpr LockId kLocks = 5000;  // Forces several rehash generations.
  for (LockId l = 1; l <= kLocks; ++l) {
    engine.Acquire(l, Slot(LockMode::kExclusive, l), 0);
  }
  EXPECT_EQ(engine.num_owned(), kLocks);
  EXPECT_EQ(sink.grants.size(), kLocks);
  for (LockId l = 1; l <= kLocks; ++l) {
    ASSERT_TRUE(engine.Owns(l));
    EXPECT_EQ(engine.QueueDepth(l), 1u);
  }
  // Drop every other lock (tombstones), then verify lookups still land.
  for (LockId l = 1; l <= kLocks; l += 2) {
    engine.Release(l, LockMode::kExclusive, l, false, 0);
    engine.DropDrained(l);
  }
  EXPECT_EQ(engine.num_owned(), kLocks / 2);
  for (LockId l = 1; l <= kLocks; ++l) {
    EXPECT_EQ(engine.Owns(l), l % 2 == 0);
  }
  // Re-create the dropped half: tombstone slots and freed state indices
  // must be reused without disturbing the survivors.
  for (LockId l = 1; l <= kLocks; l += 2) {
    engine.Acquire(l, Slot(LockMode::kShared, l + kLocks), 0);
  }
  EXPECT_EQ(engine.num_owned(), kLocks);
  EXPECT_EQ(engine.TotalQueueDepth(), kLocks);
  for (LockId l = 1; l <= kLocks; ++l) EXPECT_TRUE(engine.Owns(l));
  EXPECT_EQ(engine.OwnedLocks().size(), kLocks);
}

// Differential test: the flat-table engine must be observationally
// identical to a straightforward map-of-deques reference model of
// Algorithm 2 — same grant stream, same release outcomes, same depths,
// same harvested demand counters — over a randomized workload that mixes
// valid releases, stale/mismatched releases, and queue depths well past
// the inline capacity.
class ReferenceEngine {
 public:
  struct RefLock {
    std::deque<QueueSlot> queue;
    std::uint32_t xcnt = 0;
    std::uint64_t req_count = 0;
    std::uint32_t max_depth = 1;
  };

  explicit ReferenceEngine(CapturingSink& sink) : sink_(sink) {}

  void set_deadlock_policy(DeadlockPolicy policy) { policy_ = policy; }

  static bool Conflicts(const QueueSlot& a, const QueueSlot& b) {
    if (a.txn_id == b.txn_id) return false;
    return a.mode == LockMode::kExclusive || b.mode == LockMode::kExclusive;
  }

  static std::uint32_t GrantedCount(const RefLock& st) {
    if (st.queue.empty()) return 0;
    if (st.queue.front().mode == LockMode::kExclusive) return 1;
    std::uint32_t granted = 0;
    for (const QueueSlot& e : st.queue) {
      if (e.mode == LockMode::kExclusive) break;
      ++granted;
    }
    return granted;
  }

  void Acquire(LockId lock, QueueSlot slot, SimTime now) {
    RefLock& st = locks_[lock];
    ++st.req_count;
    slot.timestamp = now;
    if (policy_ != DeadlockPolicy::kNone && !st.queue.empty()) {
      if (policy_ == DeadlockPolicy::kNoWait) {
        for (const QueueSlot& e : st.queue) {
          if (Conflicts(e, slot)) {
            sink_.DeliverAbort(lock, slot, AbortReason::kNoWait);
            return;
          }
        }
      } else if (policy_ == DeadlockPolicy::kWaitDie) {
        for (const QueueSlot& e : st.queue) {
          if (e.txn_id < slot.txn_id && Conflicts(e, slot)) {
            sink_.DeliverAbort(lock, slot, AbortReason::kWaitDie);
            return;
          }
        }
      } else if (policy_ == DeadlockPolicy::kWoundWait) {
        // Remove every younger conflicting entry front-to-back (each
        // wound delivered as it is removed), then re-grant the promoted
        // prefix — mirroring RemoveMatching's abort-before-grant order.
        std::uint32_t granted_now = GrantedCount(st);
        std::size_t pos = 0;
        for (auto it = st.queue.begin(); it != st.queue.end();) {
          if (it->txn_id > slot.txn_id && Conflicts(*it, slot)) {
            const QueueSlot victim = *it;
            it = st.queue.erase(it);
            if (victim.mode == LockMode::kExclusive) --st.xcnt;
            if (pos < granted_now) --granted_now;
            sink_.DeliverAbort(lock, victim, AbortReason::kWound);
          } else {
            ++it;
            ++pos;
          }
        }
        const std::uint32_t target = GrantedCount(st);
        for (std::uint32_t p = granted_now; p < target; ++p) {
          st.queue[p].timestamp = now;
          sink_.DeliverGrant(lock, st.queue[p]);
        }
      }
    }
    const bool was_empty = st.queue.empty();
    const bool all_shared = st.xcnt == 0;
    st.queue.push_back(slot);
    st.max_depth = std::max(
        st.max_depth, static_cast<std::uint32_t>(st.queue.size()));
    if (slot.mode == LockMode::kExclusive) ++st.xcnt;
    if (was_empty || (all_shared && slot.mode == LockMode::kShared)) {
      sink_.DeliverGrant(lock, st.queue.back());
    }
  }

  ReleaseOutcome Release(LockId lock, LockMode mode, TxnId txn,
                         SimTime now) {
    auto it = locks_.find(lock);
    if (it == locks_.end() || it->second.queue.empty()) {
      return ReleaseOutcome::kStale;
    }
    RefLock& st = it->second;
    const QueueSlot released = st.queue.front();
    if (released.mode != mode ||
        (mode == LockMode::kExclusive && released.txn_id != txn)) {
      return ReleaseOutcome::kMismatched;
    }
    std::size_t pos = 0;
    if (policy_ != DeadlockPolicy::kNone && mode == LockMode::kShared &&
        released.txn_id != txn) {
      // Txn-exact shared release (policy queues keep labels accurate).
      bool found = false;
      for (; pos < st.queue.size(); ++pos) {
        if (st.queue[pos].mode != LockMode::kShared) break;
        if (st.queue[pos].txn_id == txn) {
          found = true;
          break;
        }
      }
      if (!found) return ReleaseOutcome::kStale;
    }
    st.queue.erase(st.queue.begin() + pos);
    if (released.mode == LockMode::kExclusive) --st.xcnt;
    if (st.queue.empty()) return ReleaseOutcome::kApplied;
    if (st.queue.front().mode == LockMode::kExclusive) {
      st.queue.front().timestamp = now;
      sink_.DeliverGrant(lock, st.queue.front());
      return ReleaseOutcome::kApplied;
    }
    if (released.mode == LockMode::kShared) return ReleaseOutcome::kApplied;
    for (QueueSlot& slot : st.queue) {
      if (slot.mode == LockMode::kExclusive) break;
      slot.timestamp = now;
      sink_.DeliverGrant(lock, slot);
    }
    return ReleaseOutcome::kApplied;
  }

  std::size_t QueueDepth(LockId lock) const {
    auto it = locks_.find(lock);
    return it == locks_.end() ? 0 : it->second.queue.size();
  }

  std::size_t TotalQueueDepth() const {
    std::size_t total = 0;
    for (const auto& [lock, st] : locks_) total += st.queue.size();
    return total;
  }

  std::map<LockId, RefLock>& locks() { return locks_; }

 private:
  CapturingSink& sink_;
  DeadlockPolicy policy_ = DeadlockPolicy::kNone;
  std::map<LockId, RefLock> locks_;
};

TEST(LockEngineTest, RandomizedDifferentialMatchesReferenceModel) {
  CapturingSink engine_sink;
  CapturingSink ref_sink;
  LockEngine engine(engine_sink);
  ReferenceEngine ref(ref_sink);

  constexpr LockId kLockSpace = 24;  // Few locks -> deep queues.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  TxnId next_txn = 1;
  SimTime now = 0;
  for (int op = 0; op < 20000; ++op) {
    ++now;
    const LockId lock = 1 + next() % kLockSpace;
    const std::uint64_t roll = next() % 100;
    if (roll < 55) {
      const LockMode mode =
          next() % 10 < 3 ? LockMode::kShared : LockMode::kExclusive;
      const QueueSlot slot = Slot(mode, next_txn++);
      engine.Acquire(lock, slot, now);
      ref.Acquire(lock, slot, now);
    } else if (roll < 90) {
      // Valid release of the current head (if any) — drives the cascade.
      const auto it = ref.locks().find(lock);
      if (it == ref.locks().end() || it->second.queue.empty()) continue;
      const QueueSlot head = it->second.queue.front();
      const ReleaseOutcome got =
          engine.Release(lock, head.mode, head.txn_id, false, now);
      const ReleaseOutcome want =
          ref.Release(lock, head.mode, head.txn_id, now);
      ASSERT_EQ(got, want);
      ASSERT_EQ(got, ReleaseOutcome::kApplied);
    } else {
      // Bogus release: random mode/txn. Both sides must agree on the
      // verdict (kStale / kMismatched / occasionally kApplied).
      const LockMode mode =
          next() % 2 == 0 ? LockMode::kShared : LockMode::kExclusive;
      const TxnId txn = 1 + next() % (next_txn > 1 ? next_txn - 1 : 1);
      const ReleaseOutcome got = engine.Release(lock, mode, txn, false, now);
      const ReleaseOutcome want = ref.Release(lock, mode, txn, now);
      ASSERT_EQ(got, want);
    }
    // Grant streams must match op for op (same order, same stamps).
    ASSERT_EQ(engine_sink.grants.size(), ref_sink.grants.size())
        << "diverged at op " << op;
    if (!engine_sink.grants.empty()) {
      const CapturedGrant& a = engine_sink.grants.back();
      const CapturedGrant& b = ref_sink.grants.back();
      ASSERT_EQ(a.lock, b.lock);
      ASSERT_EQ(a.slot.txn_id, b.slot.txn_id);
      ASSERT_EQ(a.slot.mode, b.slot.mode);
      ASSERT_EQ(a.slot.timestamp, b.slot.timestamp);
    }
    ASSERT_EQ(engine.QueueDepth(lock), ref.QueueDepth(lock));
  }

  // Full-stream and aggregate-state comparison.
  ASSERT_EQ(engine_sink.grants.size(), ref_sink.grants.size());
  for (std::size_t i = 0; i < engine_sink.grants.size(); ++i) {
    ASSERT_EQ(engine_sink.grants[i].lock, ref_sink.grants[i].lock);
    ASSERT_EQ(engine_sink.grants[i].slot.txn_id,
              ref_sink.grants[i].slot.txn_id);
  }
  EXPECT_EQ(engine.TotalQueueDepth(), ref.TotalQueueDepth());

  // HarvestDemands equivalence: same per-lock request counts and max
  // depths as the reference tracked (order-insensitive).
  std::vector<LockDemand> demands;
  engine.HarvestDemands(/*window_sec=*/1.0, demands);
  std::map<LockId, std::pair<double, std::uint32_t>> harvested;
  for (const LockDemand& d : demands) {
    harvested[d.lock] = {d.rate, d.contention};
  }
  for (const auto& [lock, st] : ref.locks()) {
    if (st.req_count == 0) {
      EXPECT_EQ(harvested.count(lock), 0u);
      continue;
    }
    ASSERT_EQ(harvested.count(lock), 1u) << "lock " << lock;
    EXPECT_DOUBLE_EQ(harvested[lock].first,
                     static_cast<double>(st.req_count));
    EXPECT_EQ(harvested[lock].second, std::max(1u, st.max_depth));
  }
}

// Per-policy differential: over 20k randomized ops per policy, the engine
// and the reference must agree on the merged grant+abort stream (order,
// txns, modes, reasons, stamps), on every release verdict, and on queue
// depths. Valid releases target a *random granted entry*, not just the
// head, so the txn-exact shared-release path is exercised throughout.
TEST(LockEnginePolicyTest, RandomizedDifferentialPerPolicy) {
  for (const DeadlockPolicy policy :
       {DeadlockPolicy::kNoWait, DeadlockPolicy::kWaitDie,
        DeadlockPolicy::kWoundWait}) {
    SCOPED_TRACE(ToString(policy));
    CapturingSink engine_sink;
    CapturingSink ref_sink;
    LockEngine engine(engine_sink);
    ReferenceEngine ref(ref_sink);
    engine.set_deadlock_policy(policy);
    ref.set_deadlock_policy(policy);

    constexpr LockId kLockSpace = 16;  // Few locks -> constant conflicts.
    std::uint64_t rng =
        0x51ed270b7f4a7c15ull + static_cast<std::uint64_t>(policy);
    const auto next = [&rng]() {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };

    // Txn ids (= ages) are drawn from a window rather than monotonically:
    // age inversions are what make wait-die die and wound-wait wound. Two
    // logical txns sharing an id just act as one txn on both sides.
    constexpr TxnId kTxnSpace = 4096;
    SimTime now = 0;
    for (int op = 0; op < 20000; ++op) {
      ++now;
      const LockId lock = 1 + next() % kLockSpace;
      const std::uint64_t roll = next() % 100;
      if (roll < 55) {
        const LockMode mode =
            next() % 10 < 4 ? LockMode::kShared : LockMode::kExclusive;
        const QueueSlot slot = Slot(mode, 1 + next() % kTxnSpace);
        engine.Acquire(lock, slot, now);
        ref.Acquire(lock, slot, now);
      } else if (roll < 90) {
        // Release a random *granted* entry (head or mid shared run).
        const auto it = ref.locks().find(lock);
        if (it == ref.locks().end() || it->second.queue.empty()) continue;
        const std::uint32_t granted =
            ReferenceEngine::GrantedCount(it->second);
        if (granted == 0) continue;
        const QueueSlot holder = it->second.queue[next() % granted];
        const ReleaseOutcome got =
            engine.Release(lock, holder.mode, holder.txn_id, false, now);
        const ReleaseOutcome want =
            ref.Release(lock, holder.mode, holder.txn_id, now);
        ASSERT_EQ(got, want) << "op " << op;
        ASSERT_EQ(got, ReleaseOutcome::kApplied) << "op " << op;
      } else {
        // Bogus release: random mode/txn; verdicts must agree.
        const LockMode mode =
            next() % 2 == 0 ? LockMode::kShared : LockMode::kExclusive;
        const TxnId txn = 1 + next() % kTxnSpace;
        const ReleaseOutcome got =
            engine.Release(lock, mode, txn, false, now);
        const ReleaseOutcome want = ref.Release(lock, mode, txn, now);
        ASSERT_EQ(got, want) << "op " << op;
      }
      ASSERT_EQ(engine_sink.events, ref_sink.events) << "op " << op;
      ASSERT_EQ(engine.QueueDepth(lock), ref.QueueDepth(lock))
          << "op " << op;
    }

    ASSERT_EQ(engine_sink.grants.size(), ref_sink.grants.size());
    for (std::size_t i = 0; i < engine_sink.grants.size(); ++i) {
      const CapturedGrant& a = engine_sink.grants[i];
      const CapturedGrant& b = ref_sink.grants[i];
      ASSERT_EQ(a.lock, b.lock) << "grant " << i;
      ASSERT_EQ(a.slot.txn_id, b.slot.txn_id) << "grant " << i;
      ASSERT_EQ(a.slot.mode, b.slot.mode) << "grant " << i;
      ASSERT_EQ(a.slot.timestamp, b.slot.timestamp) << "grant " << i;
      ASSERT_EQ(a.seq, b.seq) << "grant " << i;
    }
    ASSERT_EQ(engine_sink.aborts.size(), ref_sink.aborts.size());
    for (std::size_t i = 0; i < engine_sink.aborts.size(); ++i) {
      const CapturedAbort& a = engine_sink.aborts[i];
      const CapturedAbort& b = ref_sink.aborts[i];
      ASSERT_EQ(a.lock, b.lock) << "abort " << i;
      ASSERT_EQ(a.slot.txn_id, b.slot.txn_id) << "abort " << i;
      ASSERT_EQ(a.reason, b.reason) << "abort " << i;
      ASSERT_EQ(a.seq, b.seq) << "abort " << i;
    }
    EXPECT_EQ(engine.TotalQueueDepth(), ref.TotalQueueDepth());
    // The run must actually have exercised the policy.
    EXPECT_GT(engine_sink.aborts.size(), 100u);
    EXPECT_GT(engine_sink.grants.size(), 1000u);
  }
}

}  // namespace
}  // namespace netlock
