// Shared helpers for NetLock tests.
#pragma once

#include <optional>
#include <vector>

#include "net/lock_wire.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace netlock::testing {

/// A network node that records every lock message delivered to it.
class PacketCatcher {
 public:
  explicit PacketCatcher(Network& net) {
    node_ = net.AddNode([this](const Packet& pkt) {
      if (auto hdr = LockHeader::Parse(pkt)) received_.push_back(*hdr);
    });
  }

  NodeId node() const { return node_; }
  const std::vector<LockHeader>& received() const { return received_; }
  void Clear() { received_.clear(); }

  /// Grants received, in order.
  std::vector<LockHeader> Grants() const {
    std::vector<LockHeader> grants;
    for (const LockHeader& hdr : received_) {
      if (hdr.op == LockOp::kGrant) grants.push_back(hdr);
    }
    return grants;
  }

  bool HasGrantFor(TxnId txn) const {
    for (const LockHeader& hdr : received_) {
      if (hdr.op == LockOp::kGrant && hdr.txn_id == txn) return true;
    }
    return false;
  }

 private:
  NodeId node_ = kInvalidNode;
  std::vector<LockHeader> received_;
};

inline LockHeader MakeAcquire(LockId lock, LockMode mode, TxnId txn,
                              NodeId client, Priority priority = 0,
                              TenantId tenant = 0) {
  LockHeader hdr;
  hdr.op = LockOp::kAcquire;
  hdr.lock_id = lock;
  hdr.mode = mode;
  hdr.txn_id = txn;
  hdr.client_node = client;
  hdr.priority = priority;
  hdr.tenant = tenant;
  return hdr;
}

/// Builds a release carrying a fresh nonce in aux, exactly as real client
/// sessions do: each logical release instance must be distinguishable so
/// the manager-side dedup filters only drop *retransmitted copies*. To
/// model a network-duplicated copy, resend the same header unchanged.
inline LockHeader MakeRelease(LockId lock, LockMode mode, TxnId txn,
                              NodeId client, Priority priority = 0) {
  static std::uint32_t nonce = 1;
  LockHeader hdr;
  hdr.op = LockOp::kRelease;
  hdr.lock_id = lock;
  hdr.mode = mode;
  hdr.txn_id = txn;
  hdr.client_node = client;
  hdr.priority = priority;
  hdr.aux = nonce++;
  return hdr;
}

}  // namespace netlock::testing
