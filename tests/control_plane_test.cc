// Tests for the control plane: allocation install, lock migration in both
// directions (pause -> drain -> move), demand harvesting, dynamic
// reallocation, lease polling, and switch-failure recovery.
#include <gtest/gtest.h>

#include "core/control_plane.h"
#include "core/memory_alloc.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest() : net_(sim_, /*latency=*/1000) {
    LockSwitchConfig sw;
    sw.queue_capacity = 128;
    sw.array_size = 64;
    sw.max_locks = 16;
    switch_ = std::make_unique<LockSwitch>(net_, sw);
    server_ = std::make_unique<LockServer>(net_, LockServerConfig{});
    control_ = std::make_unique<ControlPlane>(
        sim_, *switch_, std::vector<LockServer*>{server_.get()},
        ControlPlaneConfig{});
    client_ = std::make_unique<PacketCatcher>(net_);
  }

  // Bounded settle instead of Run(): the lease poller self-reschedules
  // forever, so draining the event queue would never terminate.
  void Settle() { sim_.RunUntil(sim_.now() + 500 * kMicrosecond); }

  void Acquire(LockId lock, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), switch_->node(),
                             MakeAcquire(lock, LockMode::kExclusive, txn,
                                         client_->node())));
    Settle();
  }

  void Release(LockId lock, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), switch_->node(),
                             MakeRelease(lock, LockMode::kExclusive, txn,
                                         client_->node())));
    Settle();
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<LockServer> server_;
  std::unique_ptr<ControlPlane> control_;
  std::unique_ptr<PacketCatcher> client_;
};

TEST_F(ControlPlaneTest, InstallAllocationPlacesLocks) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}, {2, 4}};
  alloc.server_only = {3};
  control_->InstallAllocation(alloc);
  EXPECT_TRUE(switch_->IsInstalled(1));
  EXPECT_TRUE(switch_->IsInstalled(2));
  EXPECT_FALSE(switch_->IsInstalled(3));
  // Server-only locks route via the default hash.
  Acquire(3, 100);
  EXPECT_TRUE(client_->HasGrantFor(100));
  EXPECT_EQ(server_->stats().grants, 1u);
}

TEST_F(ControlPlaneTest, MoveLockToServerDrainsFirst) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}};
  control_->InstallAllocation(alloc);
  Acquire(1, 1);  // Holder in the switch queue.
  bool moved = false;
  control_->MoveLockToServer(1, [&]() { moved = true; });
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_FALSE(moved);  // Still held: not drained.
  // New requests during migration are buffered at the server, not lost.
  Acquire(1, 2);
  EXPECT_FALSE(client_->HasGrantFor(2));
  Release(1, 1);
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_TRUE(moved);
  EXPECT_FALSE(switch_->IsInstalled(1));
  // The buffered request is now served by the server as owner.
  sim_.RunUntil(sim_.now() + kMillisecond);
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ControlPlaneTest, MoveLockToSwitchDrainsServerFirst) {
  // Lock 1 starts server-owned.
  Acquire(1, 1);
  EXPECT_TRUE(client_->HasGrantFor(1));
  bool moved = false;
  control_->MoveLockToSwitch(1, /*slots=*/8, [&](bool) { moved = true; });
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_FALSE(moved);  // Holder still active on the server.
  Release(1, 1);
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_TRUE(moved);
  EXPECT_TRUE(switch_->IsInstalled(1));
  // Subsequent requests are handled by the switch directly.
  const std::uint64_t server_grants = server_->stats().grants;
  Acquire(1, 2);
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_EQ(server_->stats().grants, server_grants);
  Release(1, 2);
}

TEST_F(ControlPlaneTest, MoveToSwitchPreservesBufferedOrder) {
  Acquire(1, 1);
  bool moved = false;
  control_->MoveLockToSwitch(1, 8, [&](bool) { moved = true; });
  sim_.RunUntil(sim_.now() + kMillisecond);
  // Requests arriving mid-migration buffer at the server.
  Acquire(1, 2);
  Acquire(1, 3);
  Release(1, 1);
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  ASSERT_TRUE(moved);
  // Buffered requests re-entered through the switch in order: txn 2 holds,
  // txn 3 waits.
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_FALSE(client_->HasGrantFor(3));
  Release(1, 2);
  EXPECT_TRUE(client_->HasGrantFor(3));
}

TEST_F(ControlPlaneTest, HarvestDemandsMergesSwitchAndServers) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}};
  control_->InstallAllocation(alloc);
  sim_.RunUntil(kSecond);  // A 1-second window for clean rates.
  Acquire(1, 1);
  Release(1, 1);
  Acquire(2, 2);  // Server-owned via default route.
  Release(2, 2);
  const std::vector<LockDemand> demands = control_->HarvestDemands();
  ASSERT_EQ(demands.size(), 2u);
  bool saw1 = false, saw2 = false;
  for (const LockDemand& d : demands) {
    if (d.lock == 1) saw1 = true;
    if (d.lock == 2) saw2 = true;
    EXPECT_GT(d.rate, 0.0);
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
}

TEST_F(ControlPlaneTest, ReallocateMovesHotLockIn) {
  // Generate demand on lock 5 at the server, then reallocate: the knapsack
  // should bring it into the switch.
  sim_.RunUntil(kSecond);
  for (TxnId txn = 0; txn < 20; ++txn) {
    Acquire(5, txn);
    Release(5, txn);
  }
  control_->RecordRequest(5, 4);  // Seed the fallback counter path too.
  bool done = false;
  control_->Reallocate(/*switch_capacity=*/64, [&]() { done = true; });
  sim_.RunUntil(sim_.now() + 20 * kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_TRUE(switch_->IsInstalled(5));
}

TEST_F(ControlPlaneTest, LeasePollingClearsExpired) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}};
  control_->InstallAllocation(alloc);
  control_->StartLeasePolling();
  Acquire(1, 1);  // Holder that never releases (failed client).
  Acquire(1, 2);  // Blocked.
  EXPECT_FALSE(client_->HasGrantFor(2));
  sim_.RunUntil(sim_.now() + 100 * kMillisecond);  // > default 50 ms lease.
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ControlPlaneTest, RecoverSwitchReinstallsAllocation) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}, {2, 8}};
  control_->InstallAllocation(alloc);
  Acquire(1, 1);  // Pre-crash grant: its lease outlives the switch.
  EXPECT_TRUE(client_->HasGrantFor(1));
  switch_->Fail();
  control_->RecoverSwitch();
  EXPECT_TRUE(switch_->IsInstalled(1));
  EXPECT_TRUE(switch_->IsInstalled(2));
  // One-lease grace (§4.5): txn 1's pre-crash grant is still live (its
  // release died with the switch), so the restarted switch queues new
  // requests but must not regrant until the old leases have expired.
  Acquire(1, 2);
  EXPECT_FALSE(client_->HasGrantFor(2));
  sim_.RunUntil(sim_.now() + 60 * kMillisecond);  // > default 50 ms lease.
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST(ReallocateSequencingTest, AdditionsWaitForRemovalDrains) {
  // Regression: Reallocate launched MoveLockToSwitch additions concurrently
  // with removals. With the queue fully occupied by the outgoing lock, the
  // incoming lock's InstallLock failed and it was stranded server-side even
  // though the removal freed the space moments later.
  Simulator sim;
  Network net(sim, /*latency=*/1000);
  LockSwitchConfig sw;
  sw.queue_capacity = 8;  // Exactly the outgoing lock's region.
  sw.array_size = 64;
  sw.max_locks = 16;
  LockSwitch lock_switch(net, sw);
  LockServer server(net, LockServerConfig{});
  ControlPlane control(sim, lock_switch,
                       std::vector<LockServer*>{&server});
  PacketCatcher client(net);

  auto settle = [&]() { sim.RunUntil(sim.now() + 500 * kMicrosecond); };
  auto acquire = [&](LockId lock, TxnId txn) {
    net.Send(MakeLockPacket(client.node(), lock_switch.node(),
                            MakeAcquire(lock, LockMode::kExclusive, txn,
                                        client.node())));
    settle();
  };
  auto release = [&](LockId lock, TxnId txn) {
    net.Send(MakeLockPacket(client.node(), lock_switch.node(),
                            MakeRelease(lock, LockMode::kExclusive, txn,
                                        client.node())));
    settle();
  };

  constexpr LockId kOut = 1, kIn = 2;
  Allocation alloc;
  alloc.switch_slots = {{kOut, 8}};  // Occupies the whole shared queue.
  control.InstallAllocation(alloc);
  sim.RunUntil(kSecond);
  acquire(kOut, 999);  // Long-lived holder: the removal drain must wait.
  ASSERT_TRUE(client.HasGrantFor(999));
  control.HarvestDemands();  // Reset: kOut has no demand in the new window.
  // Build demand for kIn (served server-side via the default route), fully
  // released so its server queue drains on the first migration poll.
  for (TxnId txn = 0; txn < 20; ++txn) {
    acquire(kIn, txn);
    release(kIn, txn);
  }
  bool done = false;
  control.Reallocate(/*switch_capacity=*/8, [&]() { done = true; });
  // The incoming lock's server queue is empty immediately, but the outgoing
  // lock is still held: the addition must not have been attempted yet.
  sim.RunUntil(sim.now() + 5 * kMillisecond);
  EXPECT_FALSE(done);
  release(kOut, 999);  // Now the removal drain completes.
  sim.RunUntil(sim.now() + 20 * kMillisecond);
  EXPECT_TRUE(done);
  // The point of the fix: the incoming lock made it into the freed space
  // instead of being stranded on the server. (The outgoing lock shrinks to
  // one slot — zero rate, contention 1 — rather than leaving entirely.)
  EXPECT_TRUE(lock_switch.IsInstalled(kIn));
}

TEST_F(ControlPlaneTest, ReallocateResizesLockWhoseContentionGrew) {
  // Regression: Reallocate only computed to_add for locks not yet
  // installed, so an installed lock whose target slot count changed kept
  // its old queue size forever.
  Allocation alloc;
  alloc.switch_slots = {{7, 2}};  // Installed small.
  control_->InstallAllocation(alloc);
  sim_.RunUntil(kSecond);
  // Demand with concurrency 5 observed out-of-band (the two-slot region
  // itself can never see a queue deeper than 2): the knapsack's target slot
  // count grows past the installed 2.
  Acquire(7, 1);
  Release(7, 1);
  control_->RecordRequest(7, /*concurrent=*/5);
  bool done = false;
  control_->Reallocate(/*switch_capacity=*/64, [&]() { done = true; });
  sim_.RunUntil(sim_.now() + 20 * kMillisecond);
  EXPECT_TRUE(done);
  ASSERT_TRUE(switch_->IsInstalled(7));
  const SwitchLockEntry* entry = switch_->table().Find(7);
  ASSERT_NE(entry, nullptr);
  std::uint32_t slots = 0;
  for (const LockBounds& region : entry->regions) {
    slots += region.right - region.left;
  }
  EXPECT_EQ(slots, 5u);
}

TEST_F(ControlPlaneTest, ReallocateShrinksOversizedLock) {
  // The resize path works in both directions: a lock whose contention
  // collapsed gives queue space back.
  Allocation alloc;
  alloc.switch_slots = {{9, 16}};
  control_->InstallAllocation(alloc);
  sim_.RunUntil(kSecond);
  Acquire(9, 1);  // Serial demand: contention 1.
  Release(9, 1);
  const std::uint32_t free_before = switch_->table().free_slots();
  bool done = false;
  control_->Reallocate(/*switch_capacity=*/64, [&]() { done = true; });
  sim_.RunUntil(sim_.now() + 20 * kMillisecond);
  EXPECT_TRUE(done);
  ASSERT_TRUE(switch_->IsInstalled(9));
  const SwitchLockEntry* entry = switch_->table().Find(9);
  ASSERT_NE(entry, nullptr);
  std::uint32_t slots = 0;
  for (const LockBounds& region : entry->regions) {
    slots += region.right - region.left;
  }
  EXPECT_LT(slots, 16u);
  EXPECT_GT(switch_->table().free_slots(), free_before);
}

TEST_F(ControlPlaneTest, CombinedDemandsCountsDualObservedLockOnce) {
  // Regression: Reallocate merged the software RecordRequest counters with
  // the data-plane harvest by *summing* rates, so a lock observed by both
  // paths (the common case: the client library instruments the same
  // requests the data plane serves) counted double and crowded
  // single-counted locks out of the knapsack.
  sim_.RunUntil(kSecond);
  constexpr int kRequests = 10;
  for (TxnId txn = 0; txn < kRequests; ++txn) {
    Acquire(3, txn);
    control_->RecordRequest(3, 1);  // Client library sees the same request.
    Release(3, txn);
  }
  const double window_sec =
      static_cast<double>(sim_.now()) / static_cast<double>(kSecond);
  const std::vector<LockDemand> demands = control_->CombinedDemands();
  const LockDemand* d = nullptr;
  for (const LockDemand& demand : demands) {
    if (demand.lock == 3) d = &demand;
  }
  ASSERT_NE(d, nullptr);
  const double expected = kRequests / window_sec;
  // Pre-fix the two observation paths summed to ~2x this.
  EXPECT_NEAR(d->rate, expected, 0.05 * expected);
}

TEST_F(ControlPlaneTest, OverlappingReallocateRejectedWhileDraining) {
  // Regression: two overlapping Reallocate calls shared no guard — the
  // second double-paused locks mid-drain and raced the first's sequencing
  // state. The busy reject must also leave the demand window untouched.
  Allocation alloc;
  alloc.switch_slots = {{1, 8}};
  control_->InstallAllocation(alloc);
  sim_.RunUntil(kSecond);
  Acquire(1, 1);  // Holder: any drain of lock 1 stalls until release.
  for (TxnId txn = 10; txn < 20; ++txn) {
    Acquire(2, txn);
    Release(2, txn);
  }
  bool first_done = false;
  EXPECT_TRUE(control_->Reallocate(/*switch_capacity=*/64,
                                   [&]() { first_done = true; }));
  sim_.RunUntil(sim_.now() + 2 * kMillisecond);
  EXPECT_FALSE(first_done);
  EXPECT_TRUE(control_->MigrationInFlight());
  bool second_done = false;
  EXPECT_FALSE(control_->Reallocate(/*switch_capacity=*/64,
                                    [&]() { second_done = true; }));
  Release(1, 1);
  sim_.RunUntil(sim_.now() + 40 * kMillisecond);
  EXPECT_TRUE(first_done);
  EXPECT_FALSE(second_done);  // Rejected call never fires its callback.
  EXPECT_FALSE(control_->MigrationInFlight());
  // Once the batch lands, new batches are accepted again.
  EXPECT_TRUE(control_->Reallocate(/*switch_capacity=*/64, nullptr));
}

TEST_F(ControlPlaneTest, RecoverSwitchMidReallocateKeepsServerOwnership) {
  // Regression: Reallocate committed `installed_ = target` before any
  // migration ran, so a switch crash + RecoverSwitch() mid-drain
  // reinstalled locks that were still (or again) server-owned and evicted
  // the server's holder state — the next acquire was granted by the switch
  // while the original holder still held the lock (split-brain).
  sim_.RunUntil(kSecond);
  Acquire(2, 1);  // Lock 2 server-owned, txn 1 holds it.
  EXPECT_TRUE(client_->HasGrantFor(1));
  control_->RecordRequest(2, /*concurrent=*/4);
  bool done = false;
  EXPECT_TRUE(
      control_->Reallocate(/*switch_capacity=*/64, [&]() { done = true; }));
  sim_.RunUntil(sim_.now() + 2 * kMillisecond);
  EXPECT_FALSE(done);  // Drain stalls: txn 1 still holds lock 2.
  switch_->Fail();
  control_->RecoverSwitch();
  // The migration has not landed, so recovery must not put lock 2 on the
  // switch; a new request routes to the server and waits behind txn 1.
  EXPECT_FALSE(switch_->IsInstalled(2));
  Acquire(2, 2);
  EXPECT_FALSE(client_->HasGrantFor(2));  // Granted pre-fix: split-brain.
  Release(2, 1);
  sim_.RunUntil(sim_.now() + 40 * kMillisecond);
  EXPECT_TRUE(done);  // The drain completed and the migration landed.
  EXPECT_TRUE(switch_->IsInstalled(2));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

}  // namespace
}  // namespace netlock
