// Tests for the control plane: allocation install, lock migration in both
// directions (pause -> drain -> move), demand harvesting, dynamic
// reallocation, lease polling, and switch-failure recovery.
#include <gtest/gtest.h>

#include "core/control_plane.h"
#include "core/memory_alloc.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest() : net_(sim_, /*latency=*/1000) {
    LockSwitchConfig sw;
    sw.queue_capacity = 128;
    sw.array_size = 64;
    sw.max_locks = 16;
    switch_ = std::make_unique<LockSwitch>(net_, sw);
    server_ = std::make_unique<LockServer>(net_, LockServerConfig{});
    control_ = std::make_unique<ControlPlane>(
        sim_, *switch_, std::vector<LockServer*>{server_.get()},
        ControlPlaneConfig{});
    client_ = std::make_unique<PacketCatcher>(net_);
  }

  // Bounded settle instead of Run(): the lease poller self-reschedules
  // forever, so draining the event queue would never terminate.
  void Settle() { sim_.RunUntil(sim_.now() + 500 * kMicrosecond); }

  void Acquire(LockId lock, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), switch_->node(),
                             MakeAcquire(lock, LockMode::kExclusive, txn,
                                         client_->node())));
    Settle();
  }

  void Release(LockId lock, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), switch_->node(),
                             MakeRelease(lock, LockMode::kExclusive, txn,
                                         client_->node())));
    Settle();
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<LockServer> server_;
  std::unique_ptr<ControlPlane> control_;
  std::unique_ptr<PacketCatcher> client_;
};

TEST_F(ControlPlaneTest, InstallAllocationPlacesLocks) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}, {2, 4}};
  alloc.server_only = {3};
  control_->InstallAllocation(alloc);
  EXPECT_TRUE(switch_->IsInstalled(1));
  EXPECT_TRUE(switch_->IsInstalled(2));
  EXPECT_FALSE(switch_->IsInstalled(3));
  // Server-only locks route via the default hash.
  Acquire(3, 100);
  EXPECT_TRUE(client_->HasGrantFor(100));
  EXPECT_EQ(server_->stats().grants, 1u);
}

TEST_F(ControlPlaneTest, MoveLockToServerDrainsFirst) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}};
  control_->InstallAllocation(alloc);
  Acquire(1, 1);  // Holder in the switch queue.
  bool moved = false;
  control_->MoveLockToServer(1, [&]() { moved = true; });
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_FALSE(moved);  // Still held: not drained.
  // New requests during migration are buffered at the server, not lost.
  Acquire(1, 2);
  EXPECT_FALSE(client_->HasGrantFor(2));
  Release(1, 1);
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_TRUE(moved);
  EXPECT_FALSE(switch_->IsInstalled(1));
  // The buffered request is now served by the server as owner.
  sim_.RunUntil(sim_.now() + kMillisecond);
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ControlPlaneTest, MoveLockToSwitchDrainsServerFirst) {
  // Lock 1 starts server-owned.
  Acquire(1, 1);
  EXPECT_TRUE(client_->HasGrantFor(1));
  bool moved = false;
  control_->MoveLockToSwitch(1, /*slots=*/8, [&]() { moved = true; });
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_FALSE(moved);  // Holder still active on the server.
  Release(1, 1);
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_TRUE(moved);
  EXPECT_TRUE(switch_->IsInstalled(1));
  // Subsequent requests are handled by the switch directly.
  const std::uint64_t server_grants = server_->stats().grants;
  Acquire(1, 2);
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_EQ(server_->stats().grants, server_grants);
  Release(1, 2);
}

TEST_F(ControlPlaneTest, MoveToSwitchPreservesBufferedOrder) {
  Acquire(1, 1);
  bool moved = false;
  control_->MoveLockToSwitch(1, 8, [&]() { moved = true; });
  sim_.RunUntil(sim_.now() + kMillisecond);
  // Requests arriving mid-migration buffer at the server.
  Acquire(1, 2);
  Acquire(1, 3);
  Release(1, 1);
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  ASSERT_TRUE(moved);
  // Buffered requests re-entered through the switch in order: txn 2 holds,
  // txn 3 waits.
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_FALSE(client_->HasGrantFor(3));
  Release(1, 2);
  EXPECT_TRUE(client_->HasGrantFor(3));
}

TEST_F(ControlPlaneTest, HarvestDemandsMergesSwitchAndServers) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}};
  control_->InstallAllocation(alloc);
  sim_.RunUntil(kSecond);  // A 1-second window for clean rates.
  Acquire(1, 1);
  Release(1, 1);
  Acquire(2, 2);  // Server-owned via default route.
  Release(2, 2);
  const std::vector<LockDemand> demands = control_->HarvestDemands();
  ASSERT_EQ(demands.size(), 2u);
  bool saw1 = false, saw2 = false;
  for (const LockDemand& d : demands) {
    if (d.lock == 1) saw1 = true;
    if (d.lock == 2) saw2 = true;
    EXPECT_GT(d.rate, 0.0);
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
}

TEST_F(ControlPlaneTest, ReallocateMovesHotLockIn) {
  // Generate demand on lock 5 at the server, then reallocate: the knapsack
  // should bring it into the switch.
  sim_.RunUntil(kSecond);
  for (TxnId txn = 0; txn < 20; ++txn) {
    Acquire(5, txn);
    Release(5, txn);
  }
  control_->RecordRequest(5, 4);  // Seed the fallback counter path too.
  bool done = false;
  control_->Reallocate(/*switch_capacity=*/64, [&]() { done = true; });
  sim_.RunUntil(sim_.now() + 20 * kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_TRUE(switch_->IsInstalled(5));
}

TEST_F(ControlPlaneTest, LeasePollingClearsExpired) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}};
  control_->InstallAllocation(alloc);
  control_->StartLeasePolling();
  Acquire(1, 1);  // Holder that never releases (failed client).
  Acquire(1, 2);  // Blocked.
  EXPECT_FALSE(client_->HasGrantFor(2));
  sim_.RunUntil(sim_.now() + 100 * kMillisecond);  // > default 50 ms lease.
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ControlPlaneTest, RecoverSwitchReinstallsAllocation) {
  Allocation alloc;
  alloc.switch_slots = {{1, 8}, {2, 8}};
  control_->InstallAllocation(alloc);
  switch_->Fail();
  Acquire(1, 1);  // Dropped.
  EXPECT_FALSE(client_->HasGrantFor(1));
  control_->RecoverSwitch();
  EXPECT_TRUE(switch_->IsInstalled(1));
  EXPECT_TRUE(switch_->IsInstalled(2));
  Acquire(1, 2);
  EXPECT_TRUE(client_->HasGrantFor(2));
}

}  // namespace
}  // namespace netlock
