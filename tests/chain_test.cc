// Tests for chain-replicated NetLock switches: replica lock-step,
// single-emission discipline, quota/overflow through the chain, and the
// headline property — head failover with zero lease wait because the tail
// already holds the state.
#include <gtest/gtest.h>

#include "core/chain.h"
#include "harness/experiment.h"
#include "harness/testbed.h"
#include "testing/lock_oracle.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class ChainBasicsTest : public ::testing::Test {
 protected:
  ChainBasicsTest() : net_(sim_, 1000) {
    LockSwitchConfig config;
    config.queue_capacity = 256;
    config.array_size = 64;
    config.max_locks = 16;
    head_ = std::make_unique<LockSwitch>(net_, config);
    tail_ = std::make_unique<LockSwitch>(net_, config);
    server_ = std::make_unique<LockServer>(net_, LockServerConfig{});
    client_ = std::make_unique<PacketCatcher>(net_);
    server_->set_switch_node(head_->node());
  }

  void Wire(LockId lock, std::uint32_t slots) {
    ASSERT_TRUE(head_->InstallLock(lock, server_->node(), slots));
    ASSERT_TRUE(tail_->InstallLock(lock, server_->node(), slots));
    head_->ConfigureChainHead(tail_->node());
    tail_->ConfigureChainTail(head_->node());
  }

  void Acquire(LockId lock, LockMode mode, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), head_->node(),
                             MakeAcquire(lock, mode, txn, client_->node())));
    sim_.Run();
  }

  void Release(LockId lock, LockMode mode, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), head_->node(),
                             MakeRelease(lock, mode, txn, client_->node())));
    sim_.Run();
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> head_;
  std::unique_ptr<LockSwitch> tail_;
  std::unique_ptr<LockServer> server_;
  std::unique_ptr<PacketCatcher> client_;
};

TEST_F(ChainBasicsTest, GrantsEmittedOnceByTailWithHeadSource) {
  Wire(1, 8);
  Acquire(1, LockMode::kExclusive, 7);
  const auto grants = client_->Grants();
  ASSERT_EQ(grants.size(), 1u);  // Exactly one grant, not two.
  EXPECT_EQ(grants[0].txn_id, 7u);
  EXPECT_EQ(tail_->stats().grants, 1u);
  // Head applied the same op (its counter moved) but emitted nothing.
  EXPECT_EQ(head_->stats().grants, 1u);
}

TEST_F(ChainBasicsTest, ReplicasStayInLockStep) {
  Wire(1, 8);
  for (TxnId txn = 0; txn < 5; ++txn) {
    Acquire(1, txn % 2 ? LockMode::kShared : LockMode::kExclusive, txn);
  }
  Release(1, LockMode::kExclusive, 0);
  const auto h = head_->Debug(1);
  const auto t = tail_->Debug(1);
  EXPECT_EQ(h.meta.head, t.meta.head);
  EXPECT_EQ(h.meta.tail, t.meta.tail);
  EXPECT_EQ(h.meta.count, t.meta.count);
  EXPECT_EQ(h.meta.xcnt, t.meta.xcnt);
  EXPECT_EQ(h.meta.overflow, t.meta.overflow);
}

TEST_F(ChainBasicsTest, ReleaseCascadeReplicates) {
  Wire(1, 16);
  Acquire(1, LockMode::kExclusive, 1);
  Acquire(1, LockMode::kShared, 2);
  Acquire(1, LockMode::kShared, 3);
  client_->Clear();
  Release(1, LockMode::kExclusive, 1);
  // The shared batch is granted once (by the tail).
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_TRUE(client_->HasGrantFor(3));
  EXPECT_EQ(client_->Grants().size(), 2u);
  EXPECT_EQ(head_->Debug(1).meta.count, tail_->Debug(1).meta.count);
}

TEST_F(ChainBasicsTest, QuotaRejectEmittedOnceThroughChain) {
  Wire(1, 8);
  Wire(2, 8);
  head_->quota().Configure(/*tenant=*/0, /*rate=*/10.0, /*burst=*/1);
  Acquire(1, LockMode::kExclusive, 1);
  Acquire(2, LockMode::kExclusive, 2);  // Over quota at the head.
  EXPECT_TRUE(client_->HasGrantFor(1));
  int rejects = 0;
  for (const auto& msg : client_->received()) {
    rejects += msg.op == LockOp::kReject;
  }
  EXPECT_EQ(rejects, 1);
  // Neither replica enqueued the rejected op.
  EXPECT_EQ(head_->Debug(2).meta.count, 0u);
  EXPECT_EQ(tail_->Debug(2).meta.count, 0u);
}

TEST_F(ChainBasicsTest, OverflowProtocolWorksThroughChain) {
  Wire(1, 2);
  for (TxnId txn = 1; txn <= 5; ++txn) {
    Acquire(1, LockMode::kExclusive, txn);
  }
  EXPECT_EQ(server_->OverflowDepth(1), 3u);  // One buffered copy, not two.
  std::vector<TxnId> order;
  for (int round = 0; round < 32 && order.size() < 5; ++round) {
    for (const auto& g : client_->Grants()) {
      if (std::find(order.begin(), order.end(), g.txn_id) == order.end()) {
        order.push_back(g.txn_id);
        Release(1, LockMode::kExclusive, g.txn_id);
      }
    }
  }
  EXPECT_EQ(order, (std::vector<TxnId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(head_->Debug(1).meta.count, 0u);
  EXPECT_EQ(tail_->Debug(1).meta.count, 0u);
}

// End-to-end: failover with no lease wait.
TEST(ChainFailoverTest, TailContinuesInstantlyWithHeldLocks) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.lease = 50 * kMillisecond;  // Long: failover must NOT wait for it.
  config.lease_poll_interval = 5 * kMillisecond;
  config.txn_config.think_time = 5 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 64;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<testing::LockOracle>();
  std::vector<NetLockSession*> raw_sessions;
  config.session_wrapper = [&](std::unique_ptr<LockSession> inner) {
    raw_sessions.push_back(static_cast<NetLockSession*>(inner.get()));
    return std::make_unique<testing::OracleSession>(std::move(inner),
                                                    *oracle);
  };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  LockSwitch tail(testbed.net(), config.switch_config);
  for (NetLockSession* s : raw_sessions) {
    testbed.net().SetLatency(s->node(), tail.node(), 2500);
  }
  for (int i = 0; i < testbed.netlock().num_servers(); ++i) {
    testbed.net().SetLatency(tail.node(),
                             testbed.netlock().server(i).node(), 1500);
  }
  testbed.net().SetLatency(testbed.netlock().lock_switch().node(),
                           tail.node(), 1000);
  ChainManager chain(testbed.sim(), testbed.netlock().lock_switch(), tail,
                     testbed.netlock().control_plane());
  chain.Enable();
  for (NetLockSession* s : raw_sessions) chain.RegisterSession(s);

  testbed.StartEngines();
  testbed.sim().RunUntil(30 * kMillisecond);
  testbed.SetRecording(true);
  std::uint64_t commits_before = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    commits_before += testbed.engine(i).metrics().txn_commits;
  }

  chain.FailHead();
  EXPECT_EQ(chain.active_switch(), tail.node());
  // Within a small fraction of the 50 ms lease, service is back at full
  // rate: the tail had the state, no lease expiry was needed.
  testbed.sim().RunUntil(testbed.sim().now() + 5 * kMillisecond);
  std::uint64_t commits_after = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    commits_after += testbed.engine(i).metrics().txn_commits;
  }
  // 8 engines x ~10 us/txn x 5 ms >> 1000 commits if service continued.
  EXPECT_GT(commits_after - commits_before, 1000u);
  EXPECT_EQ(oracle->violations(), 0u);
  testbed.StopEngines(kSecond);
}

}  // namespace
}  // namespace netlock
