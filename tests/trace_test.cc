// Tests for the trace-driven workload: format round-trip, parse errors,
// replay semantics, and record-from-generator.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "workload/micro.h"
#include "workload/trace.h"

namespace netlock {
namespace {

TEST(TraceParseTest, BasicFormat) {
  std::istringstream in(
      "# header comment\n"
      "17:S 42:X\n"
      "\n"
      "108\n"
      "5:s 5:x   # dup merges, exclusive wins\n");
  const auto txns = TraceWorkload::Parse(in);
  ASSERT_EQ(txns.size(), 3u);
  ASSERT_EQ(txns[0].locks.size(), 2u);
  EXPECT_EQ(txns[0].locks[0].lock, 17u);
  EXPECT_EQ(txns[0].locks[0].mode, LockMode::kShared);
  EXPECT_EQ(txns[0].locks[1].lock, 42u);
  EXPECT_EQ(txns[0].locks[1].mode, LockMode::kExclusive);
  ASSERT_EQ(txns[1].locks.size(), 1u);
  EXPECT_EQ(txns[1].locks[0].mode, LockMode::kExclusive);  // Default X.
  ASSERT_EQ(txns[2].locks.size(), 1u);
  EXPECT_EQ(txns[2].locks[0].mode, LockMode::kExclusive);
}

TEST(TraceParseTest, RejectsBadMode) {
  std::istringstream in("1:Z\n");
  EXPECT_THROW(TraceWorkload::Parse(in), std::runtime_error);
}

TEST(TraceParseTest, RejectsBadLockId) {
  std::istringstream bad_chars("abc\n");
  EXPECT_THROW(TraceWorkload::Parse(bad_chars), std::runtime_error);
  std::istringstream too_big("99999999999\n");
  EXPECT_THROW(TraceWorkload::Parse(too_big), std::runtime_error);
}

TEST(TraceParseTest, ErrorMessagesCarryLineNumbers) {
  std::istringstream in("1\n2\nbogus\n");
  try {
    TraceWorkload::Parse(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceRoundTripTest, WriteThenParseIdentical) {
  MicroConfig config;
  config.num_locks = 50;
  config.locks_per_txn = 3;
  config.shared_fraction = 0.4;
  MicroWorkload source(config);
  Rng rng(7);
  const auto original = TraceWorkload::Record(source, rng, 200);
  std::stringstream buffer;
  TraceWorkload::Write(original, buffer);
  const auto parsed = TraceWorkload::Parse(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].locks, original[i].locks) << "txn " << i;
  }
}

TEST(TraceReplayTest, LoopsInOrder) {
  std::vector<TxnSpec> txns(3);
  txns[0].locks = {{10, LockMode::kExclusive}};
  txns[1].locks = {{20, LockMode::kShared}};
  txns[2].locks = {{30, LockMode::kExclusive}};
  TraceWorkload trace(txns);
  Rng rng(1);
  EXPECT_EQ(trace.Next(rng).locks[0].lock, 10u);
  EXPECT_EQ(trace.Next(rng).locks[0].lock, 20u);
  EXPECT_EQ(trace.Next(rng).locks[0].lock, 30u);
  EXPECT_EQ(trace.Next(rng).locks[0].lock, 10u);  // Wrapped.
  EXPECT_EQ(trace.lock_space(), 31u);
  EXPECT_EQ(trace.size(), 3u);
}

TEST(TraceReplayTest, OffsetStaggersReplayers) {
  std::vector<TxnSpec> txns(4);
  for (int i = 0; i < 4; ++i) {
    txns[i].locks = {{static_cast<LockId>(i), LockMode::kExclusive}};
  }
  TraceWorkload a(txns, /*start_offset=*/0);
  TraceWorkload b(txns, /*start_offset=*/2);
  Rng rng(1);
  EXPECT_EQ(a.Next(rng).locks[0].lock, 0u);
  EXPECT_EQ(b.Next(rng).locks[0].lock, 2u);
}

TEST(TraceFileTest, LoadMissingFileThrows) {
  EXPECT_THROW(TraceWorkload::LoadFile("/nonexistent/trace.txt"),
               std::runtime_error);
}

TEST(TraceFileTest, SaveAndLoadFile) {
  std::vector<TxnSpec> txns(2);
  txns[0].locks = {{1, LockMode::kShared}, {2, LockMode::kExclusive}};
  txns[1].locks = {{3, LockMode::kExclusive}};
  const std::string path = ::testing::TempDir() + "/netlock_trace_test.txt";
  {
    std::ofstream out(path);
    TraceWorkload::Write(txns, out);
  }
  const auto loaded = TraceWorkload::LoadFile(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].locks, txns[0].locks);
  EXPECT_EQ(loaded[1].locks, txns[1].locks);
}

}  // namespace
}  // namespace netlock
