// Tests for session-level routing behaviours: grant-source release routing
// (the failover-critical rule), switch re-pointing, unsolicited-grant
// release targets, and conflict-unit ordering in the engines.
#include <gtest/gtest.h>

#include "client/client.h"
#include "client/txn.h"
#include "dataplane/switch_dataplane.h"
#include "test_util.h"
#include "workload/micro.h"

namespace netlock {
namespace {

using testing::PacketCatcher;

class SessionRoutingTest : public ::testing::Test {
 protected:
  SessionRoutingTest() : net_(sim_, 1000) {
    LockSwitchConfig config;
    config.queue_capacity = 256;
    config.array_size = 64;
    config.max_locks = 16;
    switch_a_ = std::make_unique<LockSwitch>(net_, config);
    switch_b_ = std::make_unique<LockSwitch>(net_, config);
    server_ = std::make_unique<PacketCatcher>(net_);
    machine_ = std::make_unique<ClientMachine>(net_);
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_a_;
  std::unique_ptr<LockSwitch> switch_b_;
  std::unique_ptr<PacketCatcher> server_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(SessionRoutingTest, ReleaseGoesToGrantingSwitch) {
  ASSERT_TRUE(switch_a_->InstallLock(1, server_->node(), 8));
  ASSERT_TRUE(switch_b_->InstallLock(1, server_->node(), 8));
  NetLockSession::Config config;
  config.switch_node = switch_a_->node();
  NetLockSession session(*machine_, config);
  bool granted = false;
  session.Acquire(1, LockMode::kExclusive, 1, 0,
                  [&](AcquireResult) { granted = true; });
  sim_.RunUntil(kMillisecond);
  ASSERT_TRUE(granted);
  // Re-point the session (failover) BEFORE releasing: the release must
  // still reach switch A, which granted the lock.
  session.set_switch_node(switch_b_->node());
  session.Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_EQ(switch_a_->stats().releases, 1u);
  EXPECT_EQ(switch_b_->stats().stale_releases, 0u);
  // New acquires go to switch B.
  session.Acquire(1, LockMode::kExclusive, 2, 0, [](AcquireResult) {});
  sim_.RunUntil(3 * kMillisecond);
  EXPECT_EQ(switch_b_->stats().grants, 1u);
}

TEST_F(SessionRoutingTest, UnsolicitedGrantReleasedToSender) {
  ASSERT_TRUE(switch_a_->InstallLock(1, server_->node(), 8));
  NetLockSession::Config config;
  config.switch_node = switch_b_->node();  // Session "points" elsewhere.
  NetLockSession session(*machine_, config);
  // Switch A grants something the session never asked for (stale ghost).
  LockHeader ghost;
  ghost.op = LockOp::kAcquire;
  ghost.lock_id = 1;
  ghost.mode = LockMode::kExclusive;
  ghost.txn_id = 99;
  ghost.client_node = session.node();
  net_.Send(MakeLockPacket(session.node(), switch_a_->node(), ghost));
  sim_.RunUntil(kMillisecond);
  // The grant arrived unsolicited; the auto-release must go back to switch
  // A (the sender), not the session's configured switch B.
  EXPECT_EQ(switch_a_->stats().grants, 1u);
  EXPECT_EQ(switch_a_->stats().releases, 1u);
  EXPECT_TRUE(switch_a_->QueueEmpty(1));
}

namespace {
/// A session whose conflict unit is lock/4 (models coarse cells). Grants
/// are delivered asynchronously (as real sessions do) so the closed-loop
/// engine cannot recurse unboundedly within one event.
class CoarseSession : public LockSession {
 public:
  CoarseSession(Simulator& sim, std::vector<LockId>* order)
      : sim_(sim), order_(order) {}
  void Acquire(LockId lock, LockMode, TxnId, Priority,
               AcquireCallback cb) override {
    order_->push_back(lock);
    sim_.Schedule(1, [cb = std::move(cb)]() {
      cb(AcquireResult::kGranted);
    });
  }
  void Release(LockId, LockMode, TxnId) override {}
  NodeId node() const override { return 0; }
  LockId ConflictUnit(LockId lock) const override { return lock / 4; }

 private:
  Simulator& sim_;
  std::vector<LockId>* order_;
};

class FixedWorkload : public WorkloadGenerator {
 public:
  explicit FixedWorkload(TxnSpec spec) : spec_(std::move(spec)) {}
  TxnSpec Next(Rng&) override { return spec_; }
  LockId lock_space() const override { return 100; }

 private:
  TxnSpec spec_;
};
}  // namespace

TEST(ConflictUnitOrderingTest, EngineDeduplicatesAndOrdersByUnit) {
  Simulator sim;
  std::vector<LockId> order;
  CoarseSession session(sim, &order);
  TxnSpec spec;
  // Locks 9 and 10 share unit 2; 1 is unit 0; 20 is unit 5.
  spec.locks = {{20, LockMode::kExclusive},
                {9, LockMode::kShared},
                {1, LockMode::kExclusive},
                {10, LockMode::kExclusive}};
  TxnEngineConfig config;
  config.think_time = 0;
  TxnEngine engine(sim, session, std::make_unique<FixedWorkload>(spec), 1,
                   1, config);
  engine.Start();
  sim.RunUntil(10);
  engine.Stop();
  // First transaction's acquisition order: unit-ascending, one per unit
  // (9/10 merged — exclusive wins the merge).
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 10u);  // Exclusive 10 subsumes shared 9 in unit 2.
  EXPECT_EQ(order[2], 20u);
}

}  // namespace
}  // namespace netlock
