// Tests for the deterministic network adversary: duplication, reordering,
// jitter, timed partitions, per-link overrides, and seed-derived replay
// (identical seeds must reproduce identical fault patterns byte-for-byte).
#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace netlock {
namespace {

Packet MakePacket(NodeId src, NodeId dst, std::uint8_t tag) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.mutable_payload()[0] = tag;
  pkt.set_size(1);
  return pkt;
}

struct Sink {
  std::vector<std::uint8_t> tags;
  PacketHandler Handler() {
    return [this](const Packet& pkt) { tags.push_back(pkt.payload()[0]); };
  }
};

TEST(NetworkFaultsTest, DuplicationDeliversASecondCopy) {
  Simulator sim;
  Network net(sim, 1000);
  Sink sink;
  const NodeId a = net.AddNode([](const Packet&) {});
  const NodeId b = net.AddNode(sink.Handler());
  LinkFaults faults;
  faults.duplicate = 1.0;
  net.SetLinkFaults(a, b, faults);
  net.Send(MakePacket(a, b, 7));
  sim.Run();
  ASSERT_EQ(sink.tags.size(), 2u);
  EXPECT_EQ(sink.tags[0], 7);
  EXPECT_EQ(sink.tags[1], 7);
  EXPECT_EQ(net.packets_duplicated(), 1u);
  // The duplicate trails the original: it is a retransmission artifact,
  // not a time-travel one.
  EXPECT_EQ(net.packets_sent(), 1u);
}

TEST(NetworkFaultsTest, ReorderLetsLaterPacketsOvertake) {
  Simulator sim;
  Network net(sim, 1000);
  Sink sink;
  const NodeId a = net.AddNode([](const Packet&) {});
  const NodeId b = net.AddNode(sink.Handler());
  LinkFaults faults;
  faults.reorder = 1.0;       // Every packet held back...
  faults.reorder_window = 5000;
  net.SetFaultSeed(42);
  net.SetLinkFaults(a, b, faults);
  for (std::uint8_t i = 0; i < 20; ++i) net.Send(MakePacket(a, b, i));
  sim.Run();
  ASSERT_EQ(sink.tags.size(), 20u);
  EXPECT_GT(net.packets_reordered(), 0u);
  // With every packet delayed by an independent draw, some inversion must
  // occur (deterministic for this seed).
  bool inverted = false;
  for (std::size_t i = 1; i < sink.tags.size(); ++i) {
    if (sink.tags[i] < sink.tags[i - 1]) inverted = true;
  }
  EXPECT_TRUE(inverted);
}

TEST(NetworkFaultsTest, JitterDelaysButPreservesDelivery) {
  Simulator sim;
  Network net(sim, 1000);
  Sink sink;
  SimTime delivered_at = 0;
  const NodeId a = net.AddNode([](const Packet&) {});
  const NodeId b = net.AddNode([&](const Packet&) {
    delivered_at = sim.now();
  });
  LinkFaults faults;
  faults.jitter = 500;
  net.SetDefaultFaults(faults);
  net.Send(MakePacket(a, b, 1));
  sim.Run();
  EXPECT_GE(delivered_at, 1000);
  EXPECT_LE(delivered_at, 1500);
}

TEST(NetworkFaultsTest, PartitionBlackholesBothDirectionsUntilUnblocked) {
  Simulator sim;
  Network net(sim, 1000);
  Sink at_a, at_b;
  const NodeId a = net.AddNode(at_a.Handler());
  const NodeId b = net.AddNode(at_b.Handler());
  net.BlockPair(a, b);
  net.Send(MakePacket(a, b, 1));
  net.Send(MakePacket(b, a, 2));
  sim.Run();
  EXPECT_TRUE(at_b.tags.empty());
  EXPECT_TRUE(at_a.tags.empty());
  EXPECT_EQ(net.packets_dropped(), 2u);
  net.UnblockPair(a, b);
  net.Send(MakePacket(a, b, 3));
  sim.Run();
  ASSERT_EQ(at_b.tags.size(), 1u);
  EXPECT_EQ(at_b.tags[0], 3);
}

TEST(NetworkFaultsTest, BlockNodeIsolatesEveryLink) {
  Simulator sim;
  Network net(sim, 1000);
  Sink at_b, at_c;
  const NodeId a = net.AddNode([](const Packet&) {});
  const NodeId b = net.AddNode(at_b.Handler());
  const NodeId c = net.AddNode(at_c.Handler());
  net.BlockNode(b);
  net.Send(MakePacket(a, b, 1));  // Into the blocked node: dropped.
  net.Send(MakePacket(b, c, 2));  // Out of the blocked node: dropped.
  net.Send(MakePacket(a, c, 3));  // Unrelated pair: delivered.
  sim.Run();
  EXPECT_TRUE(at_b.tags.empty());
  ASSERT_EQ(at_c.tags.size(), 1u);
  EXPECT_EQ(at_c.tags[0], 3);
  net.UnblockNode(b);
  net.Send(MakePacket(a, b, 4));
  sim.Run();
  EXPECT_EQ(at_b.tags.size(), 1u);
}

TEST(NetworkFaultsTest, PerLinkOverrideLeavesOtherLinksClean) {
  Simulator sim;
  Network net(sim, 1000);
  Sink at_b, at_c;
  const NodeId a = net.AddNode([](const Packet&) {});
  const NodeId b = net.AddNode(at_b.Handler());
  const NodeId c = net.AddNode(at_c.Handler());
  LinkFaults lossy;
  lossy.loss = 1.0;
  net.SetLinkFaults(a, b, lossy);
  for (std::uint8_t i = 0; i < 5; ++i) {
    net.Send(MakePacket(a, b, i));
    net.Send(MakePacket(a, c, i));
  }
  sim.Run();
  EXPECT_TRUE(at_b.tags.empty());
  EXPECT_EQ(at_c.tags.size(), 5u);
  net.ClearFaults();
  net.Send(MakePacket(a, b, 9));
  sim.Run();
  EXPECT_EQ(at_b.tags.size(), 1u);
}

// Replays the same loss+duplicate+reorder pattern for the same fault seed,
// and a different pattern for a different seed.
std::vector<std::uint8_t> RunAdversary(std::uint64_t fault_seed) {
  Simulator sim;
  Network net(sim, 1000);
  Sink sink;
  const NodeId a = net.AddNode([](const Packet&) {});
  const NodeId b = net.AddNode(sink.Handler());
  net.SetFaultSeed(fault_seed);
  LinkFaults faults;
  faults.loss = 0.2;
  faults.duplicate = 0.2;
  faults.reorder = 0.4;
  faults.jitter = 300;
  net.SetDefaultFaults(faults);
  for (std::uint8_t i = 0; i < 100; ++i) net.Send(MakePacket(a, b, i));
  sim.Run();
  return sink.tags;
}

TEST(NetworkFaultsTest, IdenticalFaultSeedsReplayByteIdentically) {
  const auto run1 = RunAdversary(7);
  const auto run2 = RunAdversary(7);
  EXPECT_EQ(run1, run2);
  const auto run3 = RunAdversary(8);
  EXPECT_NE(run1, run3);
}

TEST(NetworkFaultsTest, OneArgLossDerivesFromFaultSeed) {
  // The one-argument SetLossProbability draws from the SetFaultSeed
  // stream: different fault seeds give different drop patterns.
  const auto run_with = [](std::uint64_t fault_seed) {
    Simulator sim;
    Network net(sim, 1000);
    Sink sink;
    const NodeId a = net.AddNode([](const Packet&) {});
    const NodeId b = net.AddNode(sink.Handler());
    net.SetFaultSeed(fault_seed);
    net.SetLossProbability(0.5);
    for (std::uint8_t i = 0; i < 64; ++i) net.Send(MakePacket(a, b, i));
    sim.Run();
    return sink.tags;
  };
  EXPECT_EQ(run_with(3), run_with(3));
  EXPECT_NE(run_with(3), run_with(4));
}

TEST(NetworkFaultsTest, TwoArgLossPinsThePatternAcrossFaultSeeds) {
  const auto run_with = [](std::uint64_t fault_seed) {
    Simulator sim;
    Network net(sim, 1000);
    Sink sink;
    const NodeId a = net.AddNode([](const Packet&) {});
    const NodeId b = net.AddNode(sink.Handler());
    net.SetFaultSeed(fault_seed);
    net.SetLossProbability(0.5, /*seed=*/1234);
    for (std::uint8_t i = 0; i < 64; ++i) net.Send(MakePacket(a, b, i));
    sim.Run();
    return sink.tags;
  };
  // The explicit seed wins regardless of the fault seed.
  EXPECT_EQ(run_with(3), run_with(4));
}

}  // namespace
}  // namespace netlock
