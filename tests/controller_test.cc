// Self-driving controller tests: IncrementalKnapsack hysteresis
// properties, the ControllerCore EWMA model and its dampers (dwell, cost
// model, migration budget), closed-loop convergence on the testbed
// (stationary => no migrations; step change => re-converges), the rack
// balancer, and the WallClockTicker rt driver.
#include "core/controller.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "core/memory_alloc.h"
#include "harness/experiment.h"
#include "harness/testbed.h"
#include "workload/micro.h"

namespace netlock {
namespace {

std::map<LockId, std::uint32_t> SlotMap(const Allocation& a) {
  return {a.switch_slots.begin(), a.switch_slots.end()};
}

// --- IncrementalKnapsack -------------------------------------------------

TEST(IncrementalKnapsackTest, NoBoostFullSliceMatchesBatchObjective) {
  // With incumbent_boost = 1.0 and every lock in the dirty slice, the
  // incremental re-solve is the plain fractional knapsack: same objective
  // as Algorithm 3 from scratch, whatever the seed was.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<LockDemand> demands;
    const int n = 2 + static_cast<int>(rng() % 10);
    for (int i = 0; i < n; ++i) {
      demands.push_back(LockDemand{
          static_cast<LockId>(i),
          static_cast<double>(1 + rng() % 1000),
          static_cast<std::uint32_t>(1 + rng() % 8)});
    }
    const std::uint32_t capacity = 1 + static_cast<std::uint32_t>(rng() % 24);
    // Seed from a *different* (stale) demand vector: the seed must not
    // bias the boost-free result.
    std::vector<LockDemand> stale = demands;
    for (LockDemand& d : stale) d.rate = static_cast<double>(1 + rng() % 1000);
    const Allocation seed = KnapsackAllocate(stale, capacity);

    IncrementalPolicy policy;
    policy.incumbent_boost = 1.0;
    const Allocation inc =
        IncrementalKnapsack(seed, demands, capacity, policy);
    const Allocation batch = KnapsackAllocate(demands, capacity);
    EXPECT_NEAR(AllocationObjective(demands, inc),
                AllocationObjective(demands, batch), 1e-9)
        << "trial " << trial;
  }
}

TEST(IncrementalKnapsackTest, StationaryResolveReturnsSeedUnchanged) {
  const std::vector<LockDemand> demands = {
      {1, 900.0, 4}, {2, 500.0, 2}, {3, 80.0, 8}, {4, 30.0, 1}};
  const std::uint32_t capacity = 8;
  const Allocation seed = KnapsackAllocate(demands, capacity);
  IncrementalPolicy policy;
  policy.incumbent_boost = 1.3;
  const Allocation resolved =
      IncrementalKnapsack(seed, demands, capacity, policy);
  EXPECT_EQ(SlotMap(resolved), SlotMap(seed));
}

TEST(IncrementalKnapsackTest, UntouchedIncumbentsKeepSlotsVerbatim) {
  Allocation seed;
  seed.switch_slots = {{1, 4}, {2, 4}};
  // The slice mentions only lock 3; locks 1 and 2 are not re-examined.
  const std::vector<LockDemand> slice = {{3, 50.0, 4}};
  const Allocation resolved = IncrementalKnapsack(seed, slice, 12);
  const auto slots = SlotMap(resolved);
  ASSERT_EQ(slots.count(1), 1u);
  ASSERT_EQ(slots.count(2), 1u);
  EXPECT_EQ(slots.at(1), 4u);
  EXPECT_EQ(slots.at(2), 4u);
  // Lock 3 packs into the remaining 4 slots.
  ASSERT_EQ(slots.count(3), 1u);
  EXPECT_EQ(slots.at(3), 4u);
}

TEST(IncrementalKnapsackTest, ChallengerMustBeatIncumbentByBoost) {
  Allocation seed;
  seed.switch_slots = {{1, 2}};
  IncrementalPolicy policy;
  policy.incumbent_boost = 1.3;
  // Incumbent density 10; challenger density 11 < 13: hysteresis holds it.
  const Allocation held = IncrementalKnapsack(
      seed, {{1, 20.0, 2}, {2, 22.0, 2}}, /*switch_capacity=*/2, policy);
  EXPECT_EQ(SlotMap(held).count(1), 1u);
  EXPECT_EQ(SlotMap(held).count(2), 0u);
  // Challenger density 14 > 13: it displaces the incumbent.
  const Allocation displaced = IncrementalKnapsack(
      seed, {{1, 20.0, 2}, {2, 28.0, 2}}, /*switch_capacity=*/2, policy);
  EXPECT_EQ(SlotMap(displaced).count(1), 0u);
  EXPECT_EQ(SlotMap(displaced).count(2), 1u);
}

// --- ControllerCore ------------------------------------------------------

ControllerConfig CoreConfig() {
  ControllerConfig config;
  config.ewma_alpha = 0.5;
  config.rate_floor = 1.0;
  config.min_dwell = 10 * kMillisecond;
  config.migration_budget = 16;
  config.incumbent_boost = 1.3;
  config.min_resize_delta = 2;
  config.payback_horizon_sec = 0.05;
  config.fixed_migration_cost = 8.0;
  config.drain_cost_per_entry = 2.0;
  return config;
}

TEST(ControllerCoreTest, EwmaSeedsFreshAndSmoothsRepeats) {
  ControllerCore core(CoreConfig());
  const Allocation none;
  core.Observe({{1, 100.0, 4}}, none);
  ASSERT_EQ(core.SmoothedDemands().size(), 1u);
  EXPECT_DOUBLE_EQ(core.SmoothedDemands()[0].rate, 100.0);  // Fresh: seeded.
  core.Observe({{1, 50.0, 4}}, none);
  EXPECT_DOUBLE_EQ(core.SmoothedDemands()[0].rate, 75.0);  // 0.5 EWMA.
}

TEST(ControllerCoreTest, UnobservedEntriesDecayAndColdOnesDrop) {
  ControllerCore core(CoreConfig());
  const Allocation none;
  core.Observe({{1, 8.0, 2}}, none);
  // Quiet windows: rate halves each time; below rate_floor = 1.0 the
  // non-resident entry drops.
  core.Observe({}, none);  // 4.0
  core.Observe({}, none);  // 2.0
  core.Observe({}, none);  // 1.0
  ASSERT_EQ(core.SmoothedDemands().size(), 1u);
  core.Observe({}, none);  // 0.5 < floor: gone.
  EXPECT_TRUE(core.SmoothedDemands().empty());

  // A switch-resident lock survives any number of quiet windows: its
  // eviction must be a planner decision, not model amnesia.
  Allocation installed;
  installed.switch_slots = {{7, 4}};
  core.Observe({{7, 8.0, 2}}, installed);
  for (int i = 0; i < 10; ++i) core.Observe({}, installed);
  EXPECT_EQ(core.SmoothedDemands().size(), 1u);
}

TEST(ControllerCoreTest, DwellFreezesRecentlyMovedLocks) {
  ControllerConfig config = CoreConfig();
  ControllerCore core(config);
  core.MarkMoved(3, /*now=*/kMillisecond);
  EXPECT_TRUE(core.Frozen(3, kMillisecond + config.min_dwell - 1));
  EXPECT_FALSE(core.Frozen(3, kMillisecond + config.min_dwell));

  // A frozen lock is pinned: even a zero-demand incumbent stays installed
  // while its dwell clock runs (counted as skipped_dwell), and is demoted
  // once the dwell expires.
  Allocation installed;
  installed.switch_slots = {{3, 4}};
  core.Observe({{3, 0.0, 1}}, installed);
  Allocation target;
  ControllerStats stats;
  EXPECT_FALSE(core.Plan(installed, /*capacity=*/8,
                         /*now=*/2 * kMillisecond, nullptr, &target, &stats));
  EXPECT_GT(stats.skipped_dwell, 0u);
  EXPECT_TRUE(core.Plan(installed, /*capacity=*/8,
                        /*now=*/kMillisecond + config.min_dwell, nullptr,
                        &target, &stats));
  ASSERT_EQ(target.server_only.size(), 1u);
  EXPECT_EQ(target.server_only[0], 3u);
  EXPECT_EQ(stats.demotions, 1u);
}

TEST(ControllerCoreTest, CostModelBlocksLukewarmPromotions) {
  ControllerConfig config = CoreConfig();
  // gain = rate * 0.05 must beat fixed cost 8 => rate >= 160; a deep
  // server queue adds 2 per entry.
  ControllerCore core(config);
  const Allocation empty;
  core.Observe({{1, 100.0, 2}}, empty);  // gain 5.0 < 8.0.
  Allocation target;
  ControllerStats stats;
  EXPECT_FALSE(core.Plan(empty, /*capacity=*/8, /*now=*/0, nullptr, &target,
                         &stats));
  EXPECT_EQ(stats.skipped_cost, 1u);

  ControllerCore hot(config);
  hot.Observe({{1, 400.0, 2}}, empty);  // gain 20.0 > 8.0: promoted...
  EXPECT_TRUE(hot.Plan(empty, /*capacity=*/8, /*now=*/0, nullptr, &target,
                       &stats));
  EXPECT_EQ(stats.promotions, 1u);

  ControllerCore queued(config);
  queued.Observe({{1, 400.0, 2}}, empty);
  const auto deep = [](LockId) -> std::size_t { return 10; };
  // ...unless the drain would delay 10 queued requests: 8 + 20 > 20.
  EXPECT_FALSE(queued.Plan(empty, /*capacity=*/8, /*now=*/0, deep, &target,
                           &stats));
  EXPECT_EQ(stats.skipped_cost, 2u);
}

TEST(ControllerCoreTest, BudgetCapsMovesPerTick) {
  ControllerConfig config = CoreConfig();
  config.migration_budget = 1;
  ControllerCore core(config);
  const Allocation empty;
  core.Observe({{1, 500.0, 2}, {2, 400.0, 2}}, empty);
  Allocation target;
  ControllerStats stats;
  ASSERT_TRUE(
      core.Plan(empty, /*capacity=*/8, /*now=*/0, nullptr, &target, &stats));
  EXPECT_EQ(stats.promotions, 1u);  // Hottest first...
  EXPECT_EQ(target.switch_slots.size(), 1u);
  EXPECT_EQ(target.switch_slots[0].first, 1u);
  EXPECT_GT(stats.skipped_budget, 0u);  // ...the other waits its turn.
}

// --- SelfDrivingController (testbed integration) -------------------------

// Workload whose lock set the test can swap between RunUntil calls: each
// txn takes one lock drawn uniformly from *locks.
class ListWorkload final : public WorkloadGenerator {
 public:
  ListWorkload(const std::vector<LockId>* locks, LockId space)
      : locks_(locks), space_(space) {}

  TxnSpec Next(Rng& rng) override {
    TxnSpec txn;
    const std::size_t i =
        static_cast<std::size_t>(rng.NextBounded(locks_->size()));
    txn.locks.push_back(LockRequest{(*locks_)[i], LockMode::kExclusive});
    return txn;
  }
  LockId lock_space() const override { return space_; }

 private:
  const std::vector<LockId>* locks_;
  LockId space_;
};

ControllerConfig FastControllerConfig() {
  ControllerConfig config;
  config.interval = 2 * kMillisecond;
  config.warmup_ticks = 2;
  config.ewma_alpha = 0.4;
  config.min_dwell = 6 * kMillisecond;
  config.migration_budget = 8;
  return config;
}

TestbedConfig ControllerTestbedConfig(SimContext* context) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.context = context;
  config.client_machines = 2;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.seed = 99;
  config.txn_config.think_time = 5 * kMicrosecond;
  config.controller = true;
  config.controller_config = FastControllerConfig();
  return config;
}

TEST(SelfDrivingControllerTest, StationaryWorkloadStopsMigrating) {
  SimContext context;
  TestbedConfig config = ControllerTestbedConfig(&context);
  config.switch_config.queue_capacity = 64;
  MicroConfig micro;
  micro.num_locks = 8;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  testbed.sharded().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  ASSERT_TRUE(testbed.has_controller());
  testbed.controller().Start();
  testbed.StartEngines();

  // Let the EWMA settle and any initial correction land.
  testbed.sim().RunUntil(100 * kMillisecond);
  const ControllerStats settled = testbed.controller().stats();
  EXPECT_GT(settled.ticks, 40u);

  // Stationary control property: a settled controller issues zero further
  // migrations on an unchanged workload.
  testbed.sim().RunUntil(200 * kMillisecond);
  const ControllerStats after = testbed.controller().stats();
  EXPECT_EQ(after.promotions, settled.promotions);
  EXPECT_EQ(after.demotions, settled.demotions);
  EXPECT_EQ(after.resizes, settled.resizes);
  EXPECT_EQ(after.rehomes, settled.rehomes);
  EXPECT_GT(after.ticks, settled.ticks);  // It kept watching.

  // Decisions are mirrored into the metrics registry as ctrl.* counters.
  EXPECT_EQ(context.metrics().Counter("ctrl.ticks").value(), after.ticks);
  EXPECT_EQ(context.metrics().Counter("ctrl.promotions").value(),
            after.promotions);
  testbed.controller().Stop();
  testbed.StopEngines(kSecond);
}

TEST(SelfDrivingControllerTest, StepChangeConvergesWithinIntervals) {
  SimContext context;
  TestbedConfig config = ControllerTestbedConfig(&context);
  // Room for only one hot set: 4 locks x 4 slots.
  config.switch_config.queue_capacity = 16;
  std::vector<LockId> hot = {0, 1, 2, 3};
  const std::vector<LockId> next_hot = {24, 25, 26, 27};
  config.workload_factory = [&hot](int) {
    return std::make_unique<ListWorkload>(&hot, 32);
  };
  Testbed testbed(config);
  Allocation initial;
  for (const LockId lock : hot) initial.switch_slots.emplace_back(lock, 4);
  for (LockId lock = 0; lock < 32; ++lock) {
    if (!initial.InSwitch(lock)) initial.server_only.push_back(lock);
  }
  testbed.sharded().InstallAllocation(initial);
  testbed.controller().Start();
  testbed.StartEngines();
  testbed.sim().RunUntil(50 * kMillisecond);
  const ControllerStats before = testbed.controller().stats();
  NetLockManager& manager = testbed.sharded().rack(0);
  for (const LockId lock : next_hot) {
    ASSERT_FALSE(manager.lock_switch().IsInstalled(lock));
  }

  // Step change: the hot set jumps to four server-only locks. The
  // controller must demote the stale incumbents and promote the new hot
  // locks within a bounded number of intervals.
  hot = next_hot;
  testbed.sim().RunUntil(110 * kMillisecond);  // 30 intervals of slack.
  const ControllerStats after = testbed.controller().stats();
  EXPECT_GE(after.promotions, before.promotions + 4);
  EXPECT_GE(after.demotions, before.demotions + 4);
  for (const LockId lock : next_hot) {
    EXPECT_TRUE(manager.lock_switch().IsInstalled(lock)) << "lock " << lock;
  }
  for (LockId lock = 0; lock < 4; ++lock) {
    EXPECT_FALSE(manager.lock_switch().IsInstalled(lock)) << "lock " << lock;
  }
  testbed.controller().Stop();
  testbed.StopEngines(kSecond);
}

TEST(SelfDrivingControllerTest, RackImbalanceTriggersRehome) {
  SimContext context;
  TestbedConfig config = ControllerTestbedConfig(&context);
  config.num_racks = 2;
  config.switch_config.queue_capacity = 32;
  // The lock list is filled in after construction, once the directory can
  // tell us which locks live on rack 0.
  std::vector<LockId> rack0_locks;
  config.workload_factory = [&rack0_locks](int) {
    return std::make_unique<ListWorkload>(&rack0_locks, 64);
  };
  Testbed testbed(config);
  for (LockId lock = 0; lock < 64 && rack0_locks.size() < 8; ++lock) {
    if (testbed.sharded().directory().RackFor(lock) == 0) {
      rack0_locks.push_back(lock);
    }
  }
  ASSERT_EQ(rack0_locks.size(), 8u);
  Allocation all_server;
  for (LockId lock = 0; lock < 64; ++lock) {
    all_server.server_only.push_back(lock);
  }
  testbed.sharded().InstallAllocation(all_server);
  testbed.controller().Start();
  testbed.StartEngines();

  // All demand lands on rack 0: hot rate > 1.5x the two-rack mean, so the
  // balancer re-homes hot locks onto the idle rack.
  testbed.sim().RunUntil(100 * kMillisecond);
  EXPECT_GT(testbed.controller().stats().rehomes, 0u);
  EXPECT_GT(testbed.sharded().directory().num_overrides(), 0u);
  EXPECT_EQ(context.metrics().Counter("ctrl.rehomes").value(),
            testbed.controller().stats().rehomes);
  testbed.controller().Stop();
  testbed.StopEngines(kSecond);
}

// --- WallClockTicker -----------------------------------------------------

TEST(WallClockTickerTest, TicksUntilStopped) {
  std::atomic<int> fired{0};
  WallClockTicker ticker(std::chrono::milliseconds(1),
                         [&fired]() { fired.fetch_add(1); });
  ticker.Start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ticker.Stop();
  EXPECT_GE(fired.load(), 3);
  EXPECT_EQ(ticker.ticks(), static_cast<std::uint64_t>(fired.load()));
  const std::uint64_t at_stop = ticker.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(ticker.ticks(), at_stop);  // Stopped means stopped.
}

}  // namespace
}  // namespace netlock
