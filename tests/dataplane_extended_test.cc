// Extended data-plane tests: demand-counter harvesting on both paths,
// suspended-mode interaction with overflow, quota on the priority path,
// priority-class overflow, and region accounting across install cycles.
#include <gtest/gtest.h>

#include "dataplane/switch_dataplane.h"
#include "server/lock_server.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class ExtendedFixture : public ::testing::Test {
 protected:
  explicit ExtendedFixture(std::uint8_t priorities = 1)
      : net_(sim_, 1000) {
    LockSwitchConfig config;
    config.queue_capacity = 512;
    config.array_size = 128;
    config.max_locks = 32;
    config.num_priorities = priorities;
    switch_ = std::make_unique<LockSwitch>(net_, config);
    client_ = std::make_unique<PacketCatcher>(net_);
    server_ = std::make_unique<LockServer>(net_, LockServerConfig{});
    server_->set_switch_node(switch_->node());
  }

  void Send(const LockHeader& hdr) {
    net_.Send(MakeLockPacket(client_->node(), switch_->node(), hdr));
    sim_.Run();
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<PacketCatcher> client_;
  std::unique_ptr<LockServer> server_;
};

class DefaultPathExtendedTest : public ExtendedFixture {};

TEST_F(DefaultPathExtendedTest, SwitchHarvestCountsRatesAndContention) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 16));
  // 5 concurrent exclusive requests: r = 5, c = 5.
  for (TxnId txn = 0; txn < 5; ++txn) {
    Send(MakeAcquire(1, LockMode::kExclusive, txn, client_->node()));
  }
  std::vector<LockDemand> demands;
  switch_->HarvestDemands(/*window_sec=*/1.0, demands);
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_DOUBLE_EQ(demands[0].rate, 5.0);
  EXPECT_EQ(demands[0].contention, 5u);
  // Harvest resets the rate counter but contention floor follows the
  // current occupancy.
  demands.clear();
  switch_->HarvestDemands(1.0, demands);
  EXPECT_DOUBLE_EQ(demands[0].rate, 0.0);
  EXPECT_EQ(demands[0].contention, 5u);
}

TEST_F(DefaultPathExtendedTest, SuspendedLockStillOverflowsWhenFull) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 2,
                                   /*suspended=*/true));
  for (TxnId txn = 0; txn < 4; ++txn) {
    Send(MakeAcquire(1, LockMode::kExclusive, txn, client_->node()));
  }
  // Two queued (no grants), two in q2.
  EXPECT_TRUE(client_->Grants().empty());
  EXPECT_EQ(server_->OverflowDepth(1), 2u);
  // Activation grants the head; the drain then pulls q2 through normally.
  switch_->Activate(1);
  sim_.Run();
  EXPECT_TRUE(client_->HasGrantFor(0));
  std::vector<TxnId> order;
  for (int round = 0; round < 16 && order.size() < 4; ++round) {
    for (const auto& g : client_->Grants()) {
      if (std::find(order.begin(), order.end(), g.txn_id) == order.end()) {
        order.push_back(g.txn_id);
        Send(MakeRelease(1, LockMode::kExclusive, g.txn_id,
                         client_->node()));
      }
    }
  }
  EXPECT_EQ(order, (std::vector<TxnId>{0, 1, 2, 3}));
}

class PriorityExtendedTest : public ExtendedFixture {
 protected:
  PriorityExtendedTest() : ExtendedFixture(/*priorities=*/2) {}
};

// Priority path's validated release: a release from a transaction that is
// not the current exclusive holder (its hold was lease-force-released and
// the lock re-granted) must not decrement the new holder.
TEST_F(PriorityExtendedTest, MismatchedExclusiveReleaseIsDropped) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  Send(MakeRelease(1, LockMode::kExclusive, 99, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  EXPECT_EQ(switch_->stats().mismatched_releases, 1u);
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(PriorityExtendedTest, HarvestWorksOnPriorityPath) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  for (TxnId txn = 0; txn < 3; ++txn) {
    LockHeader hdr = MakeAcquire(1, LockMode::kExclusive, txn,
                                 client_->node());
    hdr.priority = static_cast<Priority>(txn % 2);
    Send(hdr);
  }
  std::vector<LockDemand> demands;
  switch_->HarvestDemands(1.0, demands);
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_DOUBLE_EQ(demands[0].rate, 3.0);
  EXPECT_GE(demands[0].contention, 3u);
}

TEST_F(PriorityExtendedTest, QuotaAppliesOnPriorityPath) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  switch_->quota().Configure(/*tenant=*/3, /*rate=*/10.0, /*burst=*/1);
  LockHeader first = MakeAcquire(1, LockMode::kExclusive, 1,
                                 client_->node());
  first.tenant = 3;
  Send(first);
  LockHeader second = MakeAcquire(2, LockMode::kExclusive, 2,
                                  client_->node());
  second.tenant = 3;
  Send(second);
  EXPECT_TRUE(client_->HasGrantFor(1));
  EXPECT_EQ(switch_->stats().rejected_quota, 1u);
  bool saw_reject = false;
  for (const auto& msg : client_->received()) {
    saw_reject |= msg.op == LockOp::kReject && msg.txn_id == 2;
  }
  EXPECT_TRUE(saw_reject);
}

TEST_F(PriorityExtendedTest, FullPriorityClassOverflowsToServer) {
  // 8 slots split across 2 classes -> 4 per class.
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  // Fill class 1 beyond its region: 1 holder + 4 waiting + overflow.
  for (TxnId txn = 0; txn < 6; ++txn) {
    LockHeader hdr = MakeAcquire(1, LockMode::kExclusive, txn,
                                 client_->node());
    hdr.priority = 1;
    Send(hdr);
  }
  EXPECT_GE(switch_->stats().forwarded_overflow, 1u);
  EXPECT_GE(server_->OverflowDepth(1), 1u);
}

TEST_F(PriorityExtendedTest, QueueEmptyReflectsHoldersAndWaiters) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  EXPECT_TRUE(switch_->QueueEmpty(1));
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_FALSE(switch_->QueueEmpty(1));  // Holder.
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_FALSE(switch_->QueueEmpty(1));  // txn 2 now holds.
  Send(MakeRelease(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_TRUE(switch_->QueueEmpty(1));
}

TEST_F(PriorityExtendedTest, LeaseClearsExpiredHolderOnPriorityPath) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  LockHeader low = MakeAcquire(1, LockMode::kExclusive, 2, client_->node());
  low.priority = 1;
  Send(low);
  EXPECT_FALSE(client_->HasGrantFor(2));
  sim_.RunUntil(sim_.now() + 20 * kMillisecond);
  switch_->ClearExpired(/*lease=*/5 * kMillisecond);
  sim_.Run();
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(DefaultPathExtendedTest, RegionsRecycleAcrossInstallCycles) {
  // Install/remove cycles must not leak shared-queue slots or meta cells.
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (LockId lock = 0; lock < 16; ++lock) {
      ASSERT_TRUE(switch_->InstallLock(100 + lock, server_->node(), 32))
          << "cycle " << cycle << " lock " << lock;
    }
    for (LockId lock = 0; lock < 16; ++lock) {
      switch_->RemoveLock(100 + lock);
    }
  }
  EXPECT_EQ(switch_->table().free_slots(), 512u);
}

}  // namespace
}  // namespace netlock
