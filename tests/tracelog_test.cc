// Tests for request-lifecycle tracing and the time-series sampler:
// exporter validity (hand-rolled JSON check, monotonic timestamps,
// balanced async begin/end), determinism (two identical runs produce
// byte-identical traces), sampling, capacity bounds, and sampler
// bucketing/rates.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/tracelog.h"
#include "harness/experiment.h"
#include "harness/sampler.h"
#include "harness/testbed.h"
#include "sim/simulator.h"
#include "workload/micro.h"

namespace netlock {
namespace {

// --- Minimal JSON validator (structure only, no value semantics) --------

class JsonParser {
 public:
  explicit JsonParser(const std::string& s)
      : p_(s.c_str()), end_(p_ + s.size()) {}

  bool Parse() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n ||
        std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }
  bool Value() {
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++p_;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (p_ >= end_ || *p_ != ':') return false;
      ++p_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ < end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++p_;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ < end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    return p_ > start;
  }

  const char* p_;
  const char* end_;
};

bool IsValidJson(const std::string& s) { return JsonParser(s).Parse(); }

// --- Trace over a real (small) NetLock rack -----------------------------

/// Runs a short contended NetLock scenario with full tracing and returns
/// the exported JSON; the global log is left cleared and disabled.
std::string RunTracedScenario() {
  TraceLog& log = TraceLog::Global();
  log.Enable(1);
  log.Clear();
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 2;
  config.lock_servers = 1;
  MicroConfig micro;
  micro.num_locks = 8;
  micro.zipf_alpha = 0.9;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  ProfileAndInstall(testbed, config.switch_config.queue_capacity,
                    /*random_strawman=*/false,
                    /*profile_duration=*/2 * kMillisecond);
  testbed.StartEngines();
  testbed.sim().RunUntil(testbed.sim().now() + 5 * kMillisecond);
  testbed.StopEngines();
  const std::string json = log.ToJson();
  log.Disable();
  log.Clear();
  return json;
}

TEST(TraceExportTest, ScenarioProducesValidJson) {
  const std::string json = RunTracedScenario();
  EXPECT_GT(json.size(), 1000u);
  EXPECT_TRUE(IsValidJson(json));
  // The request path's tracks all show up.
  EXPECT_NE(json.find("\"wire.acquire\""), std::string::npos);
  EXPECT_NE(json.find("\"client.acquire_rtt\""), std::string::npos);
  EXPECT_NE(json.find("\"lock_request\""), std::string::npos);
}

TEST(TraceExportTest, ExportedTimestampsMonotonic) {
  const std::string json = RunTracedScenario();
  double last = -1.0;
  std::size_t pos = 0;
  int seen = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const double ts = std::strtod(json.c_str() + pos, nullptr);
    EXPECT_GE(ts, last) << "timestamp regression at offset " << pos;
    last = ts;
    ++seen;
  }
  EXPECT_GT(seen, 100);
}

TEST(TraceExportTest, AsyncBeginEndBalanced) {
  TraceLog& log = TraceLog::Global();
  log.Enable(1);
  log.Clear();
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 2;
  config.lock_servers = 1;
  MicroConfig micro;
  micro.num_locks = 8;
  micro.zipf_alpha = 0.9;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  ProfileAndInstall(testbed, config.switch_config.queue_capacity,
                    /*random_strawman=*/false,
                    /*profile_duration=*/2 * kMillisecond);
  testbed.StartEngines();
  testbed.sim().RunUntil(testbed.sim().now() + 5 * kMillisecond);
  // StopEngines drains in-flight transactions, so every opened request
  // span must close (grant, reject, or timeout).
  testbed.StopEngines();
  std::map<std::pair<std::string, std::uint64_t>, int> open;
  int begins = 0;
  for (const TraceEvent& ev : log.events()) {
    if (ev.phase == 'b') {
      ++open[{ev.name, ev.id}];
      ++begins;
    } else if (ev.phase == 'e') {
      --open[{ev.name, ev.id}];
    }
  }
  EXPECT_GT(begins, 100);
  for (const auto& [key, count] : open) {
    EXPECT_EQ(count, 0) << "unbalanced async span " << key.first << " id "
                        << key.second;
  }
  log.Disable();
  log.Clear();
}

TEST(TraceExportTest, IdenticalRunsProduceByteIdenticalTraces) {
  const std::string a = RunTracedScenario();
  const std::string b = RunTracedScenario();
  EXPECT_EQ(a, b);
}

// --- TraceLog unit behavior ---------------------------------------------

TEST(TraceLogTest, DisabledRecordsNothing) {
  TraceLog log;
  log.Instant(TraceTrack::kClient, "x", 10);
  log.Complete(TraceTrack::kClient, "y", 10, 20);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLogTest, CapacityBoundsMemoryAndCountsDrops) {
  TraceLog log;
  log.Enable(1);
  log.SetCapacity(10);
  for (int i = 0; i < 15; ++i) {
    log.Instant(TraceTrack::kClient, "tick", i);
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.dropped(), 5u);
  EXPECT_TRUE(IsValidJson(log.ToJson()));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLogTest, RequestIdNeverZeroAndStable) {
  EXPECT_NE(TraceLog::RequestId(0, 0), 0u);
  EXPECT_EQ(TraceLog::RequestId(7, 9), TraceLog::RequestId(7, 9));
  EXPECT_NE(TraceLog::RequestId(7, 9), TraceLog::RequestId(9, 7));
}

TEST(TraceLogTest, ConcurrentPushesFromManyThreadsAllLand) {
  TraceLog log;
  log.Enable(1);
  log.SetCapacity(1 << 20);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Instant(TraceTrack::kClient, "mt", t * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(IsValidJson(log.ToJson()));
}

TEST(TraceLogTest, ConcurrentPushesRespectCapacityBudget) {
  TraceLog log;
  log.Enable(1);
  log.SetCapacity(1000);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Instant(TraceTrack::kClient, "cap", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The budgeted claim can round capacity down to a chunk boundary per
  // thread but never exceeds it, and every rejected push is counted.
  EXPECT_LE(log.size(), 1000u);
  EXPECT_GT(log.size(), 0u);
  EXPECT_EQ(log.size() + log.dropped(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TraceLogTest, SamplingSelectsStableSubset) {
  TraceLog log;
  log.Enable(4);
  int sampled = 0;
  const int kRequests = 4000;
  for (int i = 0; i < kRequests; ++i) {
    const LockId lock = static_cast<LockId>(i % 97);
    const TxnId txn = static_cast<TxnId>(i);
    const bool s = log.Sampled(lock, txn);
    // Deterministic: the same request samples the same way every time
    // (that is what makes end-to-end correlation work).
    EXPECT_EQ(s, log.Sampled(lock, txn));
    if (s) ++sampled;
  }
  // Roughly 1/4 (the id hash is uniform enough for a wide tolerance).
  EXPECT_GT(sampled, kRequests / 8);
  EXPECT_LT(sampled, kRequests / 2);
  log.Enable(1);
  EXPECT_TRUE(log.Sampled(123, 456));
  log.Disable();
  EXPECT_FALSE(log.Sampled(123, 456));
}

// --- TimeSeriesSampler ---------------------------------------------------

TEST(TimeSeriesSamplerTest, BucketsCounterDeltasIntoRates) {
  Simulator sim;
  MetricCounter& c =
      MetricsRegistry::Global().Counter("test.sampler.rate");
  TimeSeriesSampler sampler(sim, 1000);  // 1 us buckets.
  sampler.Watch("test.sampler.rate");
  // 3 events in bucket 0, none in bucket 1, 5 in bucket 2.
  sim.Schedule(100, [&c]() { c.Inc(3); });
  sim.Schedule(2500, [&c]() { c.Inc(5); });
  sampler.Start(3000);
  sim.Run();
  ASSERT_EQ(sampler.num_series(), 1u);
  ASSERT_EQ(sampler.num_buckets(), 3u);
  EXPECT_TRUE(sampler.series_is_rate(0));
  EXPECT_EQ(sampler.Delta(0, 0), 3u);
  EXPECT_EQ(sampler.Delta(0, 1), 0u);
  EXPECT_EQ(sampler.Delta(0, 2), 5u);
  // 3 events in 1 us = 3e6 events/s.
  EXPECT_DOUBLE_EQ(sampler.Value(0, 0), 3e6);
  EXPECT_DOUBLE_EQ(sampler.Value(0, 2), 5e6);
  EXPECT_DOUBLE_EQ(sampler.BucketTimeSeconds(0), 0.5e-6);
}

TEST(TimeSeriesSamplerTest, BaselineExcludesPreStartCounts) {
  Simulator sim;
  MetricCounter& c =
      MetricsRegistry::Global().Counter("test.sampler.baseline");
  c.Inc(1000);  // Pre-existing total must not leak into bucket 0.
  TimeSeriesSampler sampler(sim, 1000);
  sampler.Watch("test.sampler.baseline");
  sampler.Start(1000);
  sim.Schedule(500, [&c]() { c.Inc(2); });
  sim.Run();
  ASSERT_EQ(sampler.num_buckets(), 1u);
  EXPECT_EQ(sampler.Delta(0, 0), 2u);
}

TEST(TimeSeriesSamplerTest, GaugeSeriesReportsLevels) {
  Simulator sim;
  MetricGauge& g = MetricsRegistry::Global().Gauge("test.sampler.depth");
  TimeSeriesSampler sampler(sim, 1000);
  sampler.WatchGauge("test.sampler.depth");
  sim.Schedule(200, [&g]() { g.Set(7); });
  sim.Schedule(1200, [&g]() { g.Set(4); });
  sampler.Start(2000);
  sim.Run();
  ASSERT_EQ(sampler.num_buckets(), 2u);
  EXPECT_FALSE(sampler.series_is_rate(0));
  EXPECT_DOUBLE_EQ(sampler.Value(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sampler.Value(0, 1), 4.0);
}

TEST(TimeSeriesSamplerTest, HorizonBoundsTicksSoRunDrains) {
  Simulator sim;
  MetricsRegistry::Global().Counter("test.sampler.drain");
  TimeSeriesSampler sampler(sim, 100);
  sampler.Watch("test.sampler.drain");
  sampler.Start(1000);
  // Run() must terminate: the sampler schedules a bounded set of ticks
  // rather than self-rescheduling forever.
  sim.Run();
  EXPECT_EQ(sampler.num_buckets(), 10u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimeSeriesSamplerTest, StopMakesRemainingTicksNoOps) {
  Simulator sim;
  MetricCounter& c =
      MetricsRegistry::Global().Counter("test.sampler.stop");
  TimeSeriesSampler sampler(sim, 100);
  sampler.Watch("test.sampler.stop");
  sampler.Start(1000);
  sim.Schedule(250, [&sampler]() { sampler.Stop(); });
  sim.Schedule(300, [&c]() { c.Inc(); });
  sim.Run();
  EXPECT_EQ(sampler.num_buckets(), 2u);  // Ticks at 100 and 200 only.
}

}  // namespace
}  // namespace netlock
