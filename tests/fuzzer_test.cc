// Schedule fuzzer tests: serialization round-trips, clean schedules pass
// every oracle, adversarial schedules replay byte-identically, and a
// deliberately seeded bug is caught and shrunk to a minimal replayable
// schedule.
#include <gtest/gtest.h>

#include "testing/fault_plan.h"
#include "testing/fuzzer.h"

namespace netlock {
namespace {

using testing::FaultAction;
using testing::FaultKind;
using testing::FaultPlan;
using testing::FuzzOptions;
using testing::RunReport;
using testing::Schedule;
using testing::ScheduleFuzzer;

TEST(FaultPlanTest, SerializeParseRoundTrip) {
  FaultPlan plan;
  plan.actions = {
      {FaultKind::kLoss, 1000, 500, 0, 80},
      {FaultKind::kClientPartition, 2000, 3000, 1, 0},
      {FaultKind::kFailPrimary, 4000, 0, 0, 0},
      {FaultKind::kRecoverPrimary, 9000, 0, 0, 0},
      {FaultKind::kServerFail, 12000, 0, 1, 0},
  };
  FaultPlan parsed;
  ASSERT_TRUE(FaultPlan::Parse(plan.Serialize(), &parsed));
  EXPECT_EQ(parsed, plan);
  // Migration actions (appended kinds) round-trip too.
  FaultPlan migration;
  migration.actions = {
      {FaultKind::kReallocate, 5000, 0, 1, 0},
      {FaultKind::kRehome, 7000, 0, 3, 1},
  };
  ASSERT_TRUE(FaultPlan::Parse(migration.Serialize(), &parsed));
  EXPECT_EQ(parsed, migration);
  // Empty plans round-trip too.
  ASSERT_TRUE(FaultPlan::Parse("", &parsed));
  EXPECT_TRUE(parsed.actions.empty());
  // Garbage is rejected.
  EXPECT_FALSE(FaultPlan::Parse("nonsense:1:2", &parsed));
}

TEST(FaultPlanTest, Classification) {
  FaultPlan clean;
  EXPECT_TRUE(clean.Benign());
  EXPECT_FALSE(clean.PerturbsDelivery());
  EXPECT_FALSE(clean.NeedsBackup());

  FaultPlan failover;
  failover.actions = {{FaultKind::kFailPrimary, 1000, 0, 0, 0}};
  EXPECT_TRUE(failover.NeedsBackup());
  EXPECT_FALSE(failover.PerturbsDelivery());
  EXPECT_FALSE(failover.Benign());

  FaultPlan lossy;
  lossy.actions = {{FaultKind::kLoss, 0, 0, 0, 100}};
  EXPECT_TRUE(lossy.PerturbsDelivery());
  EXPECT_FALSE(lossy.Benign());

  // Migration drains shift grants server-side, so switch-side FIFO
  // checking is off even though packets are never dropped or reordered.
  FaultPlan migration;
  migration.actions = {{FaultKind::kRehome, 1000, 0, 2, 1}};
  EXPECT_FALSE(migration.Benign());
  EXPECT_FALSE(migration.PerturbsDelivery());
  EXPECT_FALSE(migration.NeedsBackup());
}

TEST(ScheduleFuzzerTest, GeneratedSchedulesRoundTripAndAreDistinct) {
  ScheduleFuzzer fuzzer(1);
  int with_faults = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const Schedule sched = fuzzer.Generate(i);
    Schedule parsed;
    ASSERT_TRUE(Schedule::Parse(sched.Serialize(), &parsed)) << i;
    EXPECT_EQ(parsed, sched) << "round-trip mismatch at index " << i;
    // Generation is a pure function of (master seed, index).
    EXPECT_EQ(fuzzer.Generate(i), sched);
    if (!sched.plan.actions.empty()) ++with_faults;
  }
  EXPECT_GT(with_faults, 8);  // The flavor mix produces real fault plans.
  // Different indices give different schedules.
  EXPECT_NE(fuzzer.Generate(0), fuzzer.Generate(1));
}

TEST(ScheduleFuzzerTest, CleanScheduleSatisfiesAllOracles) {
  Schedule sched;
  sched.seed = 11;
  sched.workload.machines = 2;
  sched.workload.sessions_per_machine = 2;
  sched.workload.num_locks = 3;
  sched.workload.queue_capacity = 8;  // Forces the overflow path.
  sched.workload.run_time = 20 * kMillisecond;
  const RunReport report = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_TRUE(report.ok) << report.Summary();
  EXPECT_GT(report.grants, 100u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.fifo_violations, 0u);
}

TEST(ScheduleFuzzerTest, AdversarialScheduleReplaysByteIdentically) {
  Schedule sched;
  sched.seed = 29;
  sched.workload.machines = 2;
  sched.workload.sessions_per_machine = 2;
  sched.workload.num_locks = 4;
  sched.workload.queue_capacity = 16;
  sched.workload.run_time = 25 * kMillisecond;
  sched.plan.actions = {
      {FaultKind::kDuplicate, kMillisecond, 0, 0, 200},
      {FaultKind::kReorder, 2 * kMillisecond, 0, 0, 300},
      {FaultKind::kLoss, 3 * kMillisecond, 10 * kMillisecond, 0, 80},
      {FaultKind::kClientPartition, 8 * kMillisecond, 4 * kMillisecond, 0,
       0},
  };
  const RunReport first = ScheduleFuzzer::RunSchedule(sched);
  const RunReport second = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.grants, second.grants);
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.problems, second.problems);
  EXPECT_EQ(first.Summary(), second.Summary());
  // Safety and liveness hold under duplication+reorder+loss+partition.
  EXPECT_TRUE(first.ok) << first.Summary();
  // A different seed takes a different trajectory.
  Schedule other = sched;
  other.seed = 31;
  EXPECT_NE(ScheduleFuzzer::RunSchedule(other).digest, first.digest);
}

TEST(ScheduleFuzzerTest, FailoverScheduleStaysSafeAndLive) {
  Schedule sched;
  sched.seed = 47;
  sched.workload.machines = 2;
  sched.workload.sessions_per_machine = 2;
  sched.workload.num_locks = 4;
  sched.workload.queue_capacity = 64;
  sched.workload.run_time = 35 * kMillisecond;
  sched.plan.actions = {
      {FaultKind::kFailPrimary, 5 * kMillisecond, 0, 0, 0},
      {FaultKind::kRecoverPrimary, 15 * kMillisecond, 0, 0, 0},
      {FaultKind::kFailPrimary, 17 * kMillisecond, 0, 0, 0},
      {FaultKind::kRecoverPrimary, 28 * kMillisecond, 0, 0, 0},
  };
  const RunReport report = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_TRUE(report.ok) << report.Summary();
  EXPECT_GT(report.grants, 0u);
  EXPECT_EQ(ScheduleFuzzer::RunSchedule(sched).digest, report.digest);
}

TEST(ScheduleFuzzerTest, MigrationScheduleStaysSafeAndReplays) {
  // Two racks; re-home hot locks mid-run (some while packets are being
  // duplicated), plus one mid-run reallocation. Mutual exclusion and
  // liveness must survive, and the run must replay byte-identically.
  Schedule sched;
  sched.seed = 61;
  sched.workload.machines = 2;
  sched.workload.sessions_per_machine = 2;
  sched.workload.num_locks = 6;
  sched.workload.queue_capacity = 16;
  sched.workload.racks = 2;
  sched.workload.run_time = 30 * kMillisecond;
  sched.plan.actions = {
      {FaultKind::kRehome, 4 * kMillisecond, 0, 1, 1},
      {FaultKind::kDuplicate, 6 * kMillisecond, 8 * kMillisecond, 0, 150},
      {FaultKind::kRehome, 9 * kMillisecond, 0, 3, 0},
      {FaultKind::kReallocate, 14 * kMillisecond, 0, 0, 0},
      {FaultKind::kRehome, 18 * kMillisecond, 0, 1, 0},  // Move it back.
  };
  // Round-trip including the racks field.
  Schedule parsed;
  ASSERT_TRUE(Schedule::Parse(sched.Serialize(), &parsed));
  EXPECT_EQ(parsed, sched);

  const RunReport first = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_TRUE(first.ok) << first.Summary();
  EXPECT_GT(first.grants, 100u);
  EXPECT_EQ(first.violations, 0u);
  const RunReport second = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.Summary(), second.Summary());
}

TEST(ScheduleFuzzerTest, SingleRackReallocateActionStaysSafe) {
  // kReallocate on a single-rack schedule drives the control plane's
  // remove-then-add migration sequencing under a tiny switch.
  Schedule sched;
  sched.seed = 17;
  sched.workload.machines = 2;
  sched.workload.sessions_per_machine = 2;
  sched.workload.num_locks = 4;
  sched.workload.queue_capacity = 8;
  sched.workload.run_time = 25 * kMillisecond;
  sched.plan.actions = {
      {FaultKind::kReallocate, 8 * kMillisecond, 0, 0, 0},
      {FaultKind::kReallocate, 16 * kMillisecond, 0, 0, 0},
  };
  const RunReport report = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_TRUE(report.ok) << report.Summary();
  EXPECT_GT(report.grants, 100u);
  EXPECT_EQ(ScheduleFuzzer::RunSchedule(sched).digest, report.digest);
}

TEST(ScheduleFuzzerTest, ControllerScheduleStaysSafeUnderSwitchCrash) {
  // The self-driving controller migrates locks continuously while the
  // plan crashes and restarts the switch — the split-brain corner the
  // per-lock install commit exists for. Safety and liveness must hold,
  // and the run must replay byte-identically (the controller rides the
  // same deterministic sim clock as everything else).
  Schedule sched;
  sched.seed = 29;
  sched.workload.machines = 2;
  sched.workload.sessions_per_machine = 2;
  sched.workload.num_locks = 8;
  sched.workload.queue_capacity = 8;
  sched.workload.controller = 1;
  sched.workload.run_time = 35 * kMillisecond;
  sched.plan.actions = {
      {FaultKind::kSwitchCrash, 9 * kMillisecond, 0, 0, 0},
      {FaultKind::kSwitchRestart, 14 * kMillisecond, 0, 0, 0},
  };
  // Round-trip including the new ctrl key.
  Schedule parsed;
  ASSERT_TRUE(Schedule::Parse(sched.Serialize(), &parsed));
  EXPECT_EQ(parsed, sched);

  const RunReport first = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_TRUE(first.ok) << first.Summary();
  EXPECT_GT(first.grants, 100u);
  EXPECT_EQ(first.violations, 0u);
  const RunReport second = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.Summary(), second.Summary());
}

TEST(ScheduleFuzzerTest, SeededBugIsCaughtAndShrunkToMinimalSchedule) {
  // The test-only hook hides every release with txn % 7 == 3 from the
  // oracle, so the next grant on the same lock is a genuine overlap as far
  // as the checker can tell. The fuzzer must (a) flag it and (b) shrink
  // the schedule while preserving the failure.
  ScheduleFuzzer fuzzer(3);
  FuzzOptions options;
  options.bug_txn_mod = 7;

  // Find a failing generated schedule (the bug fires almost immediately on
  // any schedule with lock reuse, so the first few indices suffice).
  Schedule failing;
  bool found = false;
  for (std::uint64_t i = 0; i < 8 && !found; ++i) {
    failing = fuzzer.Generate(i);
    const RunReport report = ScheduleFuzzer::RunSchedule(failing, options);
    found = !report.ok && report.violations > 0;
  }
  ASSERT_TRUE(found) << "seeded bug never fired";

  const Schedule shrunk =
      ScheduleFuzzer::Shrink(failing, options, /*max_runs=*/48);
  const RunReport report = ScheduleFuzzer::RunSchedule(shrunk, options);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(report.violations, 0u);
  // The shrinker strips the fault plan (the bug needs no faults) and
  // reduces the workload.
  EXPECT_TRUE(shrunk.plan.actions.empty())
      << "plan not minimal: " << shrunk.plan.Serialize();
  EXPECT_EQ(shrunk.workload.machines, 1);
  EXPECT_EQ(shrunk.workload.sessions_per_machine, 1);
  EXPECT_EQ(shrunk.workload.num_locks, 1);

  // The replay line round-trips to the exact same schedule.
  const std::string line = ScheduleFuzzer::ReplayLine(shrunk);
  EXPECT_NE(line.find("--seed="), std::string::npos);
  EXPECT_NE(line.find("--plan="), std::string::npos);
  Schedule replayed;
  ASSERT_TRUE(Schedule::Parse(shrunk.Serialize(), &replayed));
  EXPECT_EQ(replayed, shrunk);
  EXPECT_EQ(ScheduleFuzzer::RunSchedule(replayed, options).digest,
            report.digest);
  // Without the seeded bug the shrunk schedule is healthy: the fuzzer
  // found the planted defect, not a real one.
  EXPECT_TRUE(ScheduleFuzzer::RunSchedule(shrunk).ok);
}

TEST(ScheduleFuzzerTest, UnorderedPolicySchedulesAreCleanAndRoundTrip) {
  // The deadlock-prone flavor: unsorted lock sets over a tiny hot space,
  // resolved by each deadlock policy in turn. Safety, liveness (waits-for
  // cycle check), and FIFO must all hold, and the new unord/policy keys
  // must survive serialization.
  for (int policy = 1; policy <= 3; ++policy) {
    for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
      Schedule sched;
      sched.seed = seed;
      sched.workload.machines = 3;
      sched.workload.sessions_per_machine = 1;
      sched.workload.num_locks = 4;
      sched.workload.queue_capacity = 256;
      sched.workload.shared_permille = 300;
      sched.workload.locks_per_txn = 3;
      sched.workload.unordered = 1;
      sched.workload.policy = policy;
      sched.workload.run_time = 25 * kMillisecond;
      Schedule parsed;
      ASSERT_TRUE(Schedule::Parse(sched.Serialize(), &parsed));
      EXPECT_EQ(parsed, sched);
      const RunReport report = ScheduleFuzzer::RunSchedule(sched);
      EXPECT_TRUE(report.ok) << "policy " << policy << " seed " << seed
                             << " failed:\n"
                             << report.Summary();
      EXPECT_EQ(report.violations, 0u);
      EXPECT_EQ(report.stuck_cycles, 0u);
      EXPECT_GT(report.grants, 0u);
    }
  }
}

TEST(ScheduleFuzzerTest, SeededAlwaysWaitDeadlockIsCaughtByWaitsForOracle) {
  // bug_always_wait runs the schedule with the policy forced off and the
  // lease stretched past the horizon: three clients acquiring two of three
  // locks in shuffled order wedge almost immediately, and nothing ever
  // breaks the cycle. The waits-for oracle must report a stuck cycle —
  // proof the liveness check catches real deadlocks, not just quiet runs.
  Schedule sched;
  sched.seed = 5;
  sched.workload.machines = 3;
  sched.workload.sessions_per_machine = 1;
  sched.workload.num_locks = 3;
  sched.workload.queue_capacity = 64;
  sched.workload.shared_permille = 0;
  sched.workload.locks_per_txn = 2;
  sched.workload.unordered = 1;
  sched.workload.policy = 3;  // Applied only in the healthy control run.
  sched.workload.run_time = 20 * kMillisecond;

  FuzzOptions bug;
  bug.bug_always_wait = true;
  const RunReport buggy = ScheduleFuzzer::RunSchedule(sched, bug);
  EXPECT_FALSE(buggy.ok);
  EXPECT_GT(buggy.stuck_cycles, 0u) << buggy.Summary();

  // The identical schedule with wound-wait actually applied is healthy:
  // the planted liveness defect, not the workload, caused the failure.
  const RunReport healthy = ScheduleFuzzer::RunSchedule(sched);
  EXPECT_TRUE(healthy.ok) << healthy.Summary();
  EXPECT_EQ(healthy.stuck_cycles, 0u);
}

TEST(ScheduleFuzzerTest, GeneratedSweepIsCleanOnTheSeedTree) {
  // A miniature version of the CI fuzz-smoke job: every generated
  // schedule must satisfy safety, FIFO (when applicable), and liveness.
  ScheduleFuzzer fuzzer(2026);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Schedule sched = fuzzer.Generate(i);
    const RunReport report = ScheduleFuzzer::RunSchedule(sched);
    EXPECT_TRUE(report.ok)
        << "schedule " << i << " failed:\n"
        << report.Summary() << "\nreplay: " << ScheduleFuzzer::ReplayLine(sched);
  }
}

}  // namespace
}  // namespace netlock
