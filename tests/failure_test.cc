// Failure-handling tests (paper Section 4.5 / Figure 15): transaction
// failures recovered by leases, deadlock broken by lease expiry, and switch
// failure + reactivation with recovery to pre-failure throughput.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/testbed.h"
#include "sim/service_queue.h"
#include "testing/lock_oracle.h"
#include "test_util.h"

namespace netlock {
namespace {

TEST(FailureTest, LeaseRecoversFromClientCrash) {
  // A client acquires and "crashes" (never releases). Others blocked on the
  // same lock proceed once the lease expires.
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 1;
  config.sessions_per_machine = 1;
  config.lock_servers = 1;
  config.lease = 5 * kMillisecond;
  config.lease_poll_interval = kMillisecond;
  MicroConfig micro;
  micro.num_locks = 1;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(UniformMicroDemands(micro, 4));

  ClientMachine machine(testbed.net());
  auto crasher = testbed.netlock().CreateSession(machine, 0);
  auto survivor = testbed.netlock().CreateSession(machine, 0);
  testbed.net().SetLatency(crasher->node(),
                           testbed.netlock().lock_switch().node(), 2500);
  testbed.net().SetLatency(survivor->node(),
                           testbed.netlock().lock_switch().node(), 2500);
  bool crasher_granted = false, survivor_granted = false;
  crasher->Acquire(0, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult) { crasher_granted = true; });
  testbed.sim().RunUntil(kMillisecond);
  ASSERT_TRUE(crasher_granted);
  survivor->Acquire(0, LockMode::kExclusive, 2, 0,
                    [&](AcquireResult r) {
                      survivor_granted = r == AcquireResult::kGranted;
                    });
  testbed.sim().RunUntil(3 * kMillisecond);
  EXPECT_FALSE(survivor_granted);
  testbed.sim().RunUntil(20 * kMillisecond);  // Lease expires, poll clears.
  EXPECT_TRUE(survivor_granted);
}

TEST(FailureTest, DeadlockBrokenByLeases) {
  // Two sessions acquire locks A and B in opposite orders (bypassing the
  // generator's sorted order) — a classic deadlock, resolved by leases.
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 1;
  config.sessions_per_machine = 1;
  config.lock_servers = 1;
  config.lease = 5 * kMillisecond;
  config.lease_poll_interval = kMillisecond;
  MicroConfig micro;
  micro.num_locks = 2;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(UniformMicroDemands(micro, 4));

  ClientMachine machine(testbed.net());
  auto s1 = testbed.netlock().CreateSession(machine, 0);
  auto s2 = testbed.netlock().CreateSession(machine, 0);
  int s1_b = 0, s2_a = 0;
  s1->Acquire(0, LockMode::kExclusive, 1, 0, [](AcquireResult) {});
  s2->Acquire(1, LockMode::kExclusive, 2, 0, [](AcquireResult) {});
  testbed.sim().RunUntil(kMillisecond);
  s1->Acquire(1, LockMode::kExclusive, 1, 0,
              [&](AcquireResult r) { s1_b = static_cast<int>(r); });
  s2->Acquire(0, LockMode::kExclusive, 2, 0,
              [&](AcquireResult r) { s2_a = static_cast<int>(r); });
  // Deadlocked now; leases break it within tens of milliseconds.
  testbed.sim().RunUntil(100 * kMillisecond);
  // Both eventually complete (granted after the other's lease expired).
  EXPECT_EQ(s1_b, static_cast<int>(AcquireResult::kGranted));
  EXPECT_EQ(s2_a, static_cast<int>(AcquireResult::kGranted));
}

// Figure 15: kill the switch mid-run, reactivate, recover the allocation;
// throughput returns to the pre-failure level.
TEST(FailureTest, SwitchFailureAndReactivation) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.client_retry_timeout = 2 * kMillisecond;
  config.lease = 10 * kMillisecond;
  config.lease_poll_interval = 2 * kMillisecond;
  config.txn_config.think_time = 5 * kMicrosecond;
  MicroConfig micro;
  micro.num_locks = 256;
  config.workload_factory = MicroFactory(micro);
  testing::LockOracle oracle;
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  TimeSeries series(10 * kMillisecond);
  for (int i = 0; i < testbed.num_engines(); ++i) {
    testbed.engine(i).set_commit_series(&series);
  }
  testbed.StartEngines();
  testbed.sim().RunUntil(100 * kMillisecond);
  const std::size_t fail_bucket = 10;
  testbed.netlock().lock_switch().Fail();
  testbed.sim().RunUntil(150 * kMillisecond);
  testbed.netlock().control_plane().RecoverSwitch();
  testbed.sim().RunUntil(300 * kMillisecond);
  testbed.StopEngines(500 * kMillisecond);

  // Throughput before failure is healthy.
  const double before = series.BucketRate(fail_bucket - 2);
  EXPECT_GT(before, 0.0);
  // During failure it collapses.
  const double during = series.BucketRate(fail_bucket + 2);
  EXPECT_LT(during, before * 0.1);
  // After reactivation it recovers to at least 70% of the original.
  const double after = series.BucketRate(25);
  EXPECT_GT(after, before * 0.7);
}

TEST(FailureTest, ServerFailoverRehashesAndRecovers) {
  // §4.5: a failed lock server's locks are reassigned to another server;
  // clients resubmit; the new server waits out the lease before granting.
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 4;
  config.lock_servers = 3;
  config.client_retry_timeout = kMillisecond;
  config.lease = 5 * kMillisecond;
  config.lease_poll_interval = kMillisecond;
  MicroConfig micro;
  micro.num_locks = 200;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<testing::LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<testing::OracleSession>(std::move(inner),
                                                    *oracle);
  };
  Testbed testbed(config);
  // No switch allocation: every lock is served by the servers, so the
  // failure hits hard.
  testbed.netlock().control_plane().StartLeasePolling();
  auto& control = testbed.netlock().control_plane();

  testbed.StartEngines();
  testbed.sim().RunUntil(20 * kMillisecond);
  control.FailServer(1);
  EXPECT_FALSE(control.ServerAlive(1));
  const std::uint64_t grants_at_failure =
      testbed.netlock().server(1).stats().grants;
  // Service continues on the survivors (after the grace lease).
  testbed.SetRecording(true);
  testbed.sim().RunUntil(80 * kMillisecond);
  std::uint64_t commits_during = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    commits_during += testbed.engine(i).metrics().txn_commits;
  }
  EXPECT_GT(commits_during, 1000u);
  // The dead server granted nothing while down.
  EXPECT_EQ(testbed.netlock().server(1).stats().grants, grants_at_failure);

  control.RecoverServer(1);
  EXPECT_TRUE(control.ServerAlive(1));
  testbed.sim().RunUntil(160 * kMillisecond);
  std::uint64_t commits_after = 0;
  for (int i = 0; i < testbed.num_engines(); ++i) {
    commits_after += testbed.engine(i).metrics().txn_commits;
  }
  EXPECT_GT(commits_after, commits_during + 1000u);
  // The recovered server serves its locks again.
  EXPECT_GT(testbed.netlock().server(1).stats().grants, grants_at_failure);
  EXPECT_EQ(oracle->violations(), 0u);
  testbed.StopEngines(kSecond);
}

TEST(FailureTest, ServerGracePeriodGatesGrants) {
  Simulator sim;
  Network net(sim, 1000);
  LockServerConfig config;
  LockServer server(net, config);
  testing::PacketCatcher client(net);
  server.GracePeriodUntil(5 * kMillisecond);
  LockHeader hdr = testing::MakeAcquire(1, LockMode::kExclusive, 1,
                                        client.node());
  hdr.flags |= kFlagServerOwned;
  net.Send(MakeLockPacket(client.node(), server.node(), hdr));
  sim.RunUntil(2 * kMillisecond);
  EXPECT_FALSE(client.HasGrantFor(1));  // Gated.
  sim.RunUntil(10 * kMillisecond);
  EXPECT_TRUE(client.HasGrantFor(1));  // Granted at grace end, in order.
}

TEST(FailureTest, ServiceQueueResetCancelsInFlightCompletions) {
  // Regression: Reset() used to clear busy_until_ but leave already
  // scheduled completion events live, so a component restarted by fault
  // injection would receive completions for work the dead incarnation had
  // in flight. The generation token must void them.
  Simulator sim;
  ServiceQueue queue(sim, 100);
  int completed = 0;
  queue.Submit([&] { ++completed; });
  queue.Submit([&] { ++completed; });
  queue.Reset();  // Crash: both in-flight completions are now orphans.
  sim.RunUntil(kMillisecond);
  EXPECT_EQ(completed, 0);  // The stale events fired as no-ops.
  EXPECT_EQ(queue.busy_until(), 0u);  // Restarted idle.
  // The restarted incarnation's own work still completes normally.
  queue.Submit([&] { ++completed; });
  sim.RunUntil(2 * kMillisecond);
  EXPECT_EQ(completed, 1);
}

TEST(FailureTest, ServerLocksUnaffectedBySwitchFailureRouting) {
  // Locks owned by servers keep their routing across a switch restart (the
  // paper: "unpopular locks stored in lock servers are not affected").
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.client_machines = 1;
  config.sessions_per_machine = 2;
  config.lock_servers = 2;
  MicroConfig micro;
  micro.num_locks = 50;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  // No installation: everything is server-owned via the default route.
  testbed.netlock().control_plane().StartLeasePolling();
  const RunMetrics before = testbed.Run(5 * kMillisecond, 20 * kMillisecond);
  EXPECT_GT(before.txn_commits, 100u);
  testbed.netlock().lock_switch().Restart();
  const RunMetrics after = testbed.Run(0, 20 * kMillisecond);
  // Service continues: restart kept the default routing.
  EXPECT_GT(after.txn_commits, 100u);
  testbed.StopEngines();
}

}  // namespace
}  // namespace netlock
