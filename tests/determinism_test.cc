// Determinism guarantees the parallel-sweep machinery rests on:
//  - the same seeds produce byte-identical bench-report JSON (after
//    zeroing the two wall-clock fields) and byte-identical trace JSON;
//  - a sweep run serially and the same sweep run on a 4-thread pool merge
//    to byte-identical reports, because per-task contexts fold back in
//    task order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/sim_context.h"
#include "common/tracelog.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

RunMetrics RunTinyTestbed(SimContext& context, std::uint32_t queue_capacity) {
  TestbedConfig config;
  config.context = &context;
  config.system = SystemKind::kNetLock;
  config.client_machines = 2;
  config.sessions_per_machine = 2;
  config.lock_servers = 1;
  config.switch_config.queue_capacity = queue_capacity;
  MicroConfig micro;
  micro.num_locks = 64;
  micro.zipf_alpha = 0.9;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(UniformMicroDemands(micro, 4));
  RunMetrics m = testbed.Run(kMillisecond, 5 * kMillisecond);
  testbed.StopEngines(kSecond);
  return m;
}

/// Runs a 6-point sweep on `threads` workers and renders the bench report
/// from a fresh merge target, exactly like a figure bench with --jobs.
std::string SweepReportJson(int threads) {
  SimContext merged;
  BenchOptions opts;
  opts.quick = true;
  opts.jobs = threads;
  BenchReport report("determinism_test", opts, &merged);
  std::vector<RunMetrics> metrics(6);
  ParallelSweep(
      6, threads,
      [&metrics](int task, SimContext& context) {
        metrics[static_cast<std::size_t>(task)] = RunTinyTestbed(
            context, /*queue_capacity=*/64u + 64u * static_cast<std::uint32_t>(
                                                       task % 3));
      },
      &merged);
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    report.AddRun("point=" + std::to_string(i), metrics[i]);
  }
  return StripWallClockFields(report.ToJson());
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalReports) {
  SimContext a;
  SimContext b;
  const RunMetrics ma = RunTinyTestbed(a, 128);
  const RunMetrics mb = RunTinyTestbed(b, 128);
  EXPECT_EQ(ma.lock_grants, mb.lock_grants);
  EXPECT_EQ(ma.txn_commits, mb.txn_commits);

  BenchOptions opts;
  opts.quick = true;
  BenchReport ra("determinism_test", opts, &a);
  BenchReport rb("determinism_test", opts, &b);
  ra.AddRun("run", ma);
  rb.AddRun("run", mb);
  EXPECT_EQ(StripWallClockFields(ra.ToJson()),
            StripWallClockFields(rb.ToJson()));
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalTraces) {
  std::vector<std::string> traces;
  for (int rep = 0; rep < 2; ++rep) {
    SimContext context;
    context.trace().Enable();
    RunTinyTestbed(context, 128);
    context.trace().Disable();
    ASSERT_GT(context.trace().size(), 0u);
    traces.push_back(context.trace().ToJson());
  }
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(DeterminismTest, SerialAndParallelSweepsRenderIdenticalReports) {
  const std::string serial = SweepReportJson(/*threads=*/1);
  const std::string parallel = SweepReportJson(/*threads=*/4);
  EXPECT_EQ(serial, parallel);
  // Two parallel executions agree with each other too (scheduling noise
  // must not leak into the report).
  EXPECT_EQ(parallel, SweepReportJson(/*threads=*/4));
}

}  // namespace
}  // namespace netlock
