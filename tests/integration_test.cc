// End-to-end integration tests: full testbeds (clients + system + network)
// running microbenchmark and TPC-C workloads, checked by the LockOracle for
// mutual exclusion and by conservation invariants, across every system.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/testbed.h"
#include "testing/lock_oracle.h"

namespace netlock {
namespace {

using testing::LockOracle;
using testing::OracleSession;

TestbedConfig BaseConfig(SystemKind system) {
  TestbedConfig config;
  config.system = system;
  config.client_machines = 4;
  config.sessions_per_machine = 4;
  config.lock_servers = 2;
  config.txn_config.think_time = 5 * kMicrosecond;
  return config;
}

// Parameterized over every system: the same contended workload must be
// safe (no mutual-exclusion violation) and live (transactions commit).
class AllSystemsTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(AllSystemsTest, ContendedMicroWorkloadSafeAndLive) {
  TestbedConfig config = BaseConfig(GetParam());
  MicroConfig micro;
  micro.num_locks = 8;  // Heavy contention across 16 engines.
  micro.shared_fraction = 0.3;
  micro.locks_per_txn = 2;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<OracleSession>(std::move(inner), *oracle);
  };
  Testbed testbed(config);
  if (GetParam() == SystemKind::kNetLock) {
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    // Fault-free run: exclusive grants must come back in per-lock
    // admission order (Algorithm 2's FIFO promise).
    testbed.netlock().lock_switch().set_queue_observer(
        [oracle](LockId lock, TxnId txn, LockMode mode, bool overflowed) {
          oracle->OnSwitchAccept(lock, txn, mode, overflowed);
        });
    testbed.netlock().lock_switch().set_grant_observer(
        [oracle](LockId lock, TxnId txn, LockMode mode, NodeId) {
          oracle->OnSwitchGrant(lock, txn, mode);
        });
  }
  const RunMetrics metrics =
      testbed.Run(/*warmup=*/10 * kMillisecond, /*measure=*/50 * kMillisecond);
  EXPECT_EQ(oracle->violations(), 0u) << ToString(GetParam());
  EXPECT_EQ(oracle->fifo_violations(), 0u) << ToString(GetParam());
  EXPECT_GT(metrics.txn_commits, 100u) << ToString(GetParam());
  EXPECT_GT(oracle->grants(), 0u);
  testbed.StopEngines();
}

TEST_P(AllSystemsTest, UncontendedWorkloadScales) {
  TestbedConfig config = BaseConfig(GetParam());
  MicroConfig micro;
  micro.num_locks = 100'000;  // Essentially no contention.
  config.workload_factory = MicroFactory(micro);
  config.txn_config.think_time = 0;
  Testbed testbed(config);
  if (GetParam() == SystemKind::kNetLock) {
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
  }
  const RunMetrics metrics =
      testbed.Run(5 * kMillisecond, 20 * kMillisecond);
  EXPECT_GT(metrics.txn_commits, 1000u) << ToString(GetParam());
  EXPECT_EQ(metrics.lock_grants, metrics.lock_requests);
  testbed.StopEngines();
}

INSTANTIATE_TEST_SUITE_P(
    Systems, AllSystemsTest,
    ::testing::Values(SystemKind::kNetLock, SystemKind::kServerOnly,
                      SystemKind::kDslr, SystemKind::kDrtm,
                      SystemKind::kNetChain),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      return ToString(info.param);
    });

TEST(NetLockIntegrationTest, TpccRunsSafelyWithProfiledAllocation) {
  TestbedConfig config = BaseConfig(SystemKind::kNetLock);
  const std::uint32_t warehouses = 4;
  config.workload_factory = TpccFactory(warehouses);
  auto oracle = std::make_shared<LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<OracleSession>(std::move(inner), *oracle);
  };
  Testbed testbed(config);
  const std::vector<LockDemand> demands = ProfileAndInstall(
      testbed, config.switch_config.queue_capacity);
  EXPECT_FALSE(demands.empty());
  const RunMetrics metrics =
      testbed.Run(10 * kMillisecond, 50 * kMillisecond);
  EXPECT_EQ(oracle->violations(), 0u);
  EXPECT_GT(metrics.txn_commits, 50u);
  // With a healthy allocation most grants come from the switch.
  EXPECT_GT(metrics.switch_grants, metrics.server_grants);
  testbed.StopEngines();
}

TEST(NetLockIntegrationTest, SwitchBeatsServerOnlyOnSameWorkload) {
  MicroConfig micro;
  micro.num_locks = 50'000;
  auto run = [&](SystemKind system) {
    TestbedConfig config = BaseConfig(system);
    config.client_machines = 8;
    config.sessions_per_machine = 8;
    config.lock_servers = 1;
    config.server_config.cores = 2;  // Weak server: the bottleneck.
    config.txn_config.think_time = 0;
    config.workload_factory = MicroFactory(micro);
    Testbed testbed(config);
    if (system == SystemKind::kNetLock) {
      testbed.netlock().InstallKnapsack(
          UniformMicroDemands(micro, testbed.num_engines()));
    }
    const RunMetrics m = testbed.Run(5 * kMillisecond, 30 * kMillisecond);
    testbed.StopEngines();
    return m.LockThroughputMrps();
  };
  const double netlock_mrps = run(SystemKind::kNetLock);
  const double server_mrps = run(SystemKind::kServerOnly);
  // The paper's headline: the switch path far outruns a CPU-bound server.
  EXPECT_GT(netlock_mrps, 2.0 * server_mrps);
}

TEST(NetLockIntegrationTest, OverflowPathEngagesUnderPressure) {
  TestbedConfig config = BaseConfig(SystemKind::kNetLock);
  config.txn_config.think_time = 50 * kMicrosecond;  // Long holds.
  MicroConfig micro;
  micro.num_locks = 2;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  // Tiny regions: 2 slots per lock against 16 engines forces q2 use.
  Allocation alloc;
  alloc.switch_slots = {{0, 2}, {1, 2}};
  testbed.netlock().InstallAllocation(alloc);
  const RunMetrics metrics = testbed.Run(10 * kMillisecond,
                                         100 * kMillisecond);
  const auto& stats = testbed.netlock().lock_switch().stats();
  EXPECT_GT(stats.forwarded_overflow, 0u);
  EXPECT_GT(stats.queue_empty_notifies, 0u);
  EXPECT_GT(metrics.txn_commits, 100u);  // Still live under overflow.
  testbed.StopEngines();
}

TEST(NetLockIntegrationTest, LossyNetworkStillSafeAndLive) {
  TestbedConfig config = BaseConfig(SystemKind::kNetLock);
  config.client_retry_timeout = kMillisecond;
  config.lease = 5 * kMillisecond;
  config.lease_poll_interval = kMillisecond;
  MicroConfig micro;
  micro.num_locks = 256;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<OracleSession>(std::move(inner), *oracle);
  };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  // 0.1% loss — an order of magnitude worse than datacenter reality, but
  // not so high that lost fire-and-forget releases (each costing a lease to
  // reclaim, by design) dominate the run.
  testbed.net().SetLossProbability(0.001, /*seed=*/5);
  const RunMetrics metrics = testbed.Run(10 * kMillisecond,
                                         100 * kMillisecond);
  testbed.net().SetLossProbability(0.0);
  EXPECT_EQ(oracle->violations(), 0u);
  EXPECT_GT(metrics.txn_commits, 500u);
  testbed.StopEngines(500 * kMillisecond);
}

TEST(NetLockIntegrationTest, SharedHeavyWorkloadBatchesGrants) {
  TestbedConfig config = BaseConfig(SystemKind::kNetLock);
  MicroConfig micro;
  micro.num_locks = 4;
  micro.shared_fraction = 0.9;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<OracleSession>(std::move(inner), *oracle);
  };
  Testbed testbed(config);
  testbed.netlock().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  const RunMetrics metrics = testbed.Run(10 * kMillisecond,
                                         50 * kMillisecond);
  EXPECT_EQ(oracle->violations(), 0u);
  EXPECT_GT(metrics.txn_commits, 500u);
  // Shared-heavy traffic drives the resubmit-based batch grants.
  EXPECT_GT(testbed.netlock().lock_switch().resubmits(), 0u);
  testbed.StopEngines();
}

}  // namespace
}  // namespace netlock
