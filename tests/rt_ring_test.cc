// Tests for the real-time backend's concurrency primitives: the SPSC ring
// (mailbox fabric) and the spin-then-park executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "rt/executor.h"
#include "rt/spsc_ring.h"

namespace netlock::rt {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // Full.
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));  // Empty.
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, WrapAroundPreservesOrder) {
  SpscRing<int> ring(4);
  int v = -1;
  // Push/pop enough to wrap the indices several times.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPush(i + 1000));
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i + 1000);
  }
}

TEST(SpscRingTest, PopBatchDrainsUpToMax) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.TryPush(i));
  int buf[16];
  EXPECT_EQ(ring.PopBatch(buf, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[i], i);
  EXPECT_EQ(ring.PopBatch(buf, 16), 6u);  // The rest.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(buf[i], i + 4);
  EXPECT_EQ(ring.PopBatch(buf, 16), 0u);  // Empty.
}

TEST(SpscRingTest, PushBatchPublishesAllAndReportsPartialOnFull) {
  SpscRing<int> ring(8);
  const int first[5] = {0, 1, 2, 3, 4};
  EXPECT_EQ(ring.PushBatch(first, 5), 5u);
  // Only 3 slots left: the batch is cut short, not rejected.
  const int second[6] = {5, 6, 7, 8, 9, 10};
  EXPECT_EQ(ring.PushBatch(second, 6), 3u);
  EXPECT_EQ(ring.PushBatch(second, 6), 0u);  // Full.
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, PushBatchWrapAroundPreservesOrder) {
  SpscRing<int> ring(8);
  int buf[8];
  int value = 0;
  int expect = 0;
  // Interleave batch pushes and pops at co-prime strides so the batch
  // window straddles the index wrap on most iterations.
  for (int round = 0; round < 200; ++round) {
    int batch[5];
    for (int i = 0; i < 5; ++i) batch[i] = value++;
    ASSERT_EQ(ring.PushBatch(batch, 5), 5u);
    const std::size_t n = ring.PopBatch(buf, 3);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expect);
      ++expect;
    }
    // Drain fully every few rounds so the ring never overflows.
    if (round % 2 == 1) {
      std::size_t m;
      while ((m = ring.PopBatch(buf, 8)) > 0) {
        for (std::size_t i = 0; i < m; ++i) {
          ASSERT_EQ(buf[i], expect);
          ++expect;
        }
      }
    }
  }
  while (true) {
    const std::size_t m = ring.PopBatch(buf, 8);
    if (m == 0) break;
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_EQ(buf[i], expect);
      ++expect;
    }
  }
  EXPECT_EQ(expect, value);  // Nothing lost, nothing duplicated.
}

TEST(SpscRingTest, PushBatchTwoThreadStressTransfersEverythingInOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 200'000;
  std::thread producer([&] {
    std::uint64_t next = 0;
    std::uint64_t batch[13];
    while (next < kItems) {
      // Varying batch sizes (1..13) exercise every wrap alignment.
      std::uint64_t want = 1 + next % 13;
      if (want > kItems - next) want = kItems - next;
      for (std::uint64_t i = 0; i < want; ++i) batch[i] = next + i;
      std::uint64_t pushed = 0;
      while (pushed < want) {
        const std::size_t k =
            ring.PushBatch(batch + pushed, want - pushed);
        if (k == 0) {
          std::this_thread::yield();
          continue;
        }
        pushed += k;
      }
      next += want;
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t buf[32];
  while (expect < kItems) {
    const std::size_t n = ring.PopBatch(buf, 32);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expect);  // FIFO, no loss, no duplication.
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, TwoThreadStressTransfersEverythingInOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 200'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t buf[32];
  while (expect < kItems) {
    const std::size_t n = ring.PopBatch(buf, 32);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expect);  // FIFO, no loss, no duplication.
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
}

TEST(RtExecutorTest, WorkersProcessEnqueuedWorkAndStopDrains) {
  constexpr int kWorkers = 2;
  std::vector<std::unique_ptr<SpscRing<int>>> queues;
  for (int i = 0; i < kWorkers; ++i) {
    queues.push_back(std::make_unique<SpscRing<int>>(1024));
  }
  std::atomic<int> processed{0};
  RtExecutor::Options options;
  options.num_workers = kWorkers;
  RtExecutor executor(options, [&](int worker) {
    int v;
    bool any = false;
    while (queues[static_cast<std::size_t>(worker)]->TryPop(&v)) {
      processed.fetch_add(1, std::memory_order_relaxed);
      any = true;
    }
    return any;
  });
  executor.Start();
  EXPECT_TRUE(executor.running());
  constexpr int kPerWorker = 500;
  for (int i = 0; i < kPerWorker; ++i) {
    for (int w = 0; w < kWorkers; ++w) {
      while (!queues[static_cast<std::size_t>(w)]->TryPush(i)) {
        std::this_thread::yield();
      }
      executor.Wake();
    }
  }
  // Stop() lets each worker run until an empty round, so everything
  // enqueued before the call must be processed by the time it returns.
  executor.Stop();
  EXPECT_FALSE(executor.running());
  EXPECT_EQ(processed.load(), kWorkers * kPerWorker);
}

TEST(RtExecutorTest, ParkedWorkerWakesOnDoorbell) {
  std::atomic<bool> have_work{false};
  std::atomic<int> seen{0};
  RtExecutor::Options options;
  options.num_workers = 1;
  options.spin_rounds = 4;  // Park quickly.
  options.yield_rounds = 2;
  RtExecutor executor(options, [&](int) {
    if (have_work.exchange(false, std::memory_order_acq_rel)) {
      seen.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  });
  executor.Start();
  // Let the worker fall through spin/yield into the parked state.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  have_work.store(true, std::memory_order_release);
  executor.Wake();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (seen.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_EQ(seen.load(), 1);
  executor.Stop();
}

}  // namespace
}  // namespace netlock::rt
