// Tests for one-RTT transactions (paper Section 4.1): the switch forwards
// grants to the database server, which replies to the client with the item
// and the implied grant — lock acquisition + data fetch in one round trip.
#include <gtest/gtest.h>

#include "client/client.h"
#include "dataplane/switch_dataplane.h"
#include "server/db_server.h"
#include "test_util.h"

namespace netlock {
namespace {

class OneRttTest : public ::testing::Test {
 protected:
  OneRttTest() : net_(sim_, /*latency=*/1000) {
    LockSwitchConfig config;
    config.queue_capacity = 64;
    config.array_size = 32;
    config.max_locks = 8;
    switch_ = std::make_unique<LockSwitch>(net_, config);
    db_ = std::make_unique<DbServer>(net_);
    lock_server_ = std::make_unique<testing::PacketCatcher>(net_);
    machine_ = std::make_unique<ClientMachine>(net_);
    switch_->InstallLock(1, lock_server_->node(), 8);
    switch_->SetOneRttRoute([this](LockId) { return db_->node(); });
  }

  std::unique_ptr<NetLockSession> MakeSession() {
    NetLockSession::Config config;
    config.switch_node = switch_->node();
    return std::make_unique<NetLockSession>(*machine_, config);
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<DbServer> db_;
  std::unique_ptr<testing::PacketCatcher> lock_server_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(OneRttTest, GrantArrivesViaDatabaseServer) {
  auto session = MakeSession();
  AcquireResult result = AcquireResult::kTimeout;
  session->Acquire(1, LockMode::kExclusive, 7, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
  EXPECT_EQ(db_->stats().one_rtt_serves, 1u);  // Served by the DB path.
}

TEST_F(OneRttTest, LatencyIsOneCombinedTrip) {
  auto session = MakeSession();
  SimTime granted_at = 0;
  session->Acquire(1, LockMode::kExclusive, 7, 0,
                   [&](AcquireResult) { granted_at = sim_.now(); });
  sim_.RunUntil(kMillisecond);
  // tx 55 + client->switch 1000 + switch->db 1000 + db service 500 +
  // db->client 1000: a single combined trip, not grant + separate fetch.
  EXPECT_EQ(granted_at, 55u + 1000u + 1000u + 500u + 1000u);
}

TEST_F(OneRttTest, EveryForwardedFetchSucceeds) {
  // Under contention, forwarded grants never fail at the DB (the lock is
  // already held) — unlike fail-and-retry combined requests.
  auto s1 = MakeSession();
  auto s2 = MakeSession();
  int granted = 0;
  s1->Acquire(1, LockMode::kExclusive, 1, 0, [&](AcquireResult) {
    ++granted;
    s1->Release(1, LockMode::kExclusive, 1);
  });
  s2->Acquire(1, LockMode::kExclusive, 2, 0,
              [&](AcquireResult) { ++granted; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(db_->stats().one_rtt_serves, 2u);
}

TEST_F(OneRttTest, BasicModeFetchPath) {
  // Without the one-RTT route the client fetches separately: grant first,
  // then an explicit kFetch answered with kData — two round trips.
  switch_->SetOneRttRoute(nullptr);
  auto session = MakeSession();
  testing::PacketCatcher data_sink(net_);
  session->Acquire(1, LockMode::kExclusive, 7, 0, [&](AcquireResult r) {
    ASSERT_EQ(r, AcquireResult::kGranted);
    LockHeader fetch;
    fetch.op = LockOp::kFetch;
    fetch.lock_id = 1;
    fetch.txn_id = 7;
    fetch.client_node = data_sink.node();
    net_.Send(MakeLockPacket(data_sink.node(), db_->node(), fetch));
  });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(db_->stats().fetches, 1u);
  ASSERT_EQ(data_sink.received().size(), 1u);
  EXPECT_EQ(data_sink.received()[0].op, LockOp::kData);
  EXPECT_EQ(db_->stats().one_rtt_serves, 0u);
}

}  // namespace
}  // namespace netlock
