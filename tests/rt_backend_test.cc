// Real-time backend tests: safety of the multicore grant stream (oracle
// replay over the linearized event log) and cross-backend equivalence (the
// same workload on the simulator and the real-time backend must produce the
// same grant counts — the protocol core is compiled once, so divergence
// means a substrate bug).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/sim_context.h"
#include "harness/backend.h"
#include "rt/rt_lock_service.h"
#include "testing/lock_oracle.h"
#include "workload/micro.h"

namespace netlock {
namespace {

MicroConfig ContendedConfig() {
  MicroConfig workload;
  workload.num_locks = 64;  // Small space -> heavy cross-core contention.
  workload.locks_per_txn = 2;
  workload.zipf_alpha = 0.99;
  workload.shared_fraction = 0.2;
  return workload;
}

BackendRunConfig SmallRun() {
  BackendRunConfig config;
  config.workload = ContendedConfig();
  config.seed = 7;
  config.sessions = 8;
  config.txns_per_session = 250;
  config.rt_cores = 2;
  config.rt_client_threads = 2;
  return config;
}

/// Replays the merged per-core event log through the single-threaded
/// LockOracle. The sequence numbers impose a linearization consistent with
/// each core's processing order (accept before grant, release before the
/// grants it cascades), so any overlap or FIFO inversion the oracle finds
/// is a real protocol/sharding bug.
void ReplayThroughOracle(const std::vector<rt::RtEvent>& events,
                         testing::LockOracle& oracle) {
  for (const rt::RtEvent& ev : events) {
    switch (ev.kind) {
      case rt::RtEvent::Kind::kAccept:
        oracle.OnSwitchAccept(ev.lock, ev.txn, ev.mode, false);
        break;
      case rt::RtEvent::Kind::kGrant:
        oracle.OnGrant(ev.lock, ev.mode, ev.txn);
        oracle.OnSwitchGrant(ev.lock, ev.txn, ev.mode);
        break;
      case rt::RtEvent::Kind::kRelease:
        oracle.OnRelease(ev.lock, ev.mode, ev.txn);
        break;
    }
  }
}

TEST(RtBackendTest, ParseBackendKind) {
  BackendKind kind = BackendKind::kSim;
  EXPECT_TRUE(ParseBackendKind("rt", &kind));
  EXPECT_EQ(kind, BackendKind::kRt);
  EXPECT_TRUE(ParseBackendKind("sim", &kind));
  EXPECT_EQ(kind, BackendKind::kSim);
  kind = BackendKind::kRt;
  EXPECT_FALSE(ParseBackendKind("bogus", &kind));
  EXPECT_EQ(kind, BackendKind::kRt);  // Untouched on failure.
}

TEST(RtBackendTest, FixedCountRunCompletesAndDrains) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  const std::uint64_t expected_commits =
      static_cast<std::uint64_t>(config.sessions) * config.txns_per_session;
  EXPECT_EQ(result.commits, expected_commits);
  // Every recorded acquire was granted exactly once and nothing is left
  // queued. (Grants per txn vary between 1 and locks_per_txn because
  // NormalizeTxn dedups same-lock draws.)
  EXPECT_EQ(result.service_grants, result.metrics.lock_requests);
  EXPECT_GE(result.service_grants, expected_commits);
  EXPECT_LE(result.service_grants,
            expected_commits * config.workload.locks_per_txn);
  EXPECT_EQ(result.residual_queue_depth, 0u);
}

TEST(RtBackendTest, OracleHoldsOverMulticoreGrantStream) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.rt_cores = 4;  // More cores -> more cross-core interleaving.
  config.rt_client_threads = 4;
  config.rt_record_events = true;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  ASSERT_FALSE(result.events.empty());

  testing::LockOracle oracle;
  ReplayThroughOracle(result.events, oracle);
  EXPECT_EQ(oracle.violations(), 0u)
      << (oracle.violation_log().empty() ? "" : oracle.violation_log()[0]);
  EXPECT_EQ(oracle.fifo_violations(), 0u);
  EXPECT_EQ(oracle.grants(), result.service_grants);
  EXPECT_EQ(oracle.TotalHolders(), 0u);  // Fully drained.
}

TEST(RtBackendTest, SimAndRtBackendsAgreeOnGrantCounts) {
  BackendRunConfig config = SmallRun();
  config.txns_per_session = 150;

  SimContext sim_context;
  config.context = &sim_context;
  const BackendRunResult sim = RunMicroFixedCount(BackendKind::kSim, config);

  SimContext rt_context;
  config.context = &rt_context;
  const BackendRunResult rt = RunMicroFixedCount(BackendKind::kRt, config);

  // Same per-session request streams, same protocol core: the totals must
  // match exactly even though the rt interleaving is nondeterministic.
  EXPECT_EQ(sim.commits, rt.commits);
  EXPECT_EQ(sim.service_grants, rt.service_grants);
  EXPECT_EQ(sim.metrics.lock_requests, rt.metrics.lock_requests);
  EXPECT_EQ(sim.residual_queue_depth, 0u);
  EXPECT_EQ(rt.residual_queue_depth, 0u);
}

TEST(RtBackendTest, TimedRunReportsWallClockWindow) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.workload.num_locks = 10'000;  // Low contention: measure throughput.
  config.workload.locks_per_txn = 1;
  config.workload.zipf_alpha = 0.0;
  const BackendRunResult result = RunMicroTimed(
      BackendKind::kRt, config, /*warmup=*/5'000'000, /*measure=*/20'000'000);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.metrics.lock_requests, 0u);  // Grants observed in window.
  EXPECT_EQ(result.residual_queue_depth, 0u);
}

}  // namespace
}  // namespace netlock
