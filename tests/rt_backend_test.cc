// Real-time backend tests: safety of the multicore grant stream (oracle
// replay over the linearized event log) and cross-backend equivalence (the
// same workload on the simulator and the real-time backend must produce the
// same grant counts — the protocol core is compiled once, so divergence
// means a substrate bug).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/sim_context.h"
#include "harness/backend.h"
#include "rt/rt_lock_service.h"
#include "testing/lock_oracle.h"
#include "testing/rt_replay.h"
#include "workload/micro.h"

namespace netlock {
namespace {

MicroConfig ContendedConfig() {
  MicroConfig workload;
  workload.num_locks = 64;  // Small space -> heavy cross-core contention.
  workload.locks_per_txn = 2;
  workload.zipf_alpha = 0.99;
  workload.shared_fraction = 0.2;
  return workload;
}

BackendRunConfig SmallRun() {
  BackendRunConfig config;
  config.workload = ContendedConfig();
  config.seed = 7;
  config.sessions = 8;
  config.txns_per_session = 250;
  config.rt_cores = 2;
  config.rt_client_threads = 2;
  return config;
}

TEST(RtBackendTest, ParseBackendKind) {
  BackendKind kind = BackendKind::kSim;
  EXPECT_TRUE(ParseBackendKind("rt", &kind));
  EXPECT_EQ(kind, BackendKind::kRt);
  EXPECT_TRUE(ParseBackendKind("sim", &kind));
  EXPECT_EQ(kind, BackendKind::kSim);
  kind = BackendKind::kRt;
  EXPECT_FALSE(ParseBackendKind("bogus", &kind));
  EXPECT_EQ(kind, BackendKind::kRt);  // Untouched on failure.
}

TEST(RtBackendTest, FixedCountRunCompletesAndDrains) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  const std::uint64_t expected_commits =
      static_cast<std::uint64_t>(config.sessions) * config.txns_per_session;
  EXPECT_EQ(result.commits, expected_commits);
  // Every recorded acquire was granted exactly once and nothing is left
  // queued. (Grants per txn vary between 1 and locks_per_txn because
  // NormalizeTxn dedups same-lock draws.)
  EXPECT_EQ(result.service_grants, result.metrics.lock_requests);
  EXPECT_GE(result.service_grants, expected_commits);
  EXPECT_LE(result.service_grants,
            expected_commits * config.workload.locks_per_txn);
  EXPECT_EQ(result.residual_queue_depth, 0u);
}

TEST(RtBackendTest, OracleHoldsOverMulticoreGrantStream) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.rt_cores = 4;  // More cores -> more cross-core interleaving.
  config.rt_client_threads = 4;
  config.rt_record_events = true;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  ASSERT_FALSE(result.events.empty());

  testing::LockOracle oracle;
  testing::ReplayRtEventsThroughOracle(result.events, oracle);
  EXPECT_EQ(oracle.violations(), 0u)
      << (oracle.violation_log().empty() ? "" : oracle.violation_log()[0]);
  EXPECT_EQ(oracle.fifo_violations(), 0u);
  EXPECT_EQ(oracle.grants(), result.service_grants);
  EXPECT_EQ(oracle.TotalHolders(), 0u);  // Fully drained.
}

TEST(RtBackendTest, SimAndRtBackendsAgreeOnGrantCounts) {
  BackendRunConfig config = SmallRun();
  config.txns_per_session = 150;

  SimContext sim_context;
  config.context = &sim_context;
  const BackendRunResult sim = RunMicroFixedCount(BackendKind::kSim, config);

  SimContext rt_context;
  config.context = &rt_context;
  const BackendRunResult rt = RunMicroFixedCount(BackendKind::kRt, config);

  // Same per-session request streams, same protocol core: the totals must
  // match exactly even though the rt interleaving is nondeterministic.
  EXPECT_EQ(sim.commits, rt.commits);
  EXPECT_EQ(sim.service_grants, rt.service_grants);
  EXPECT_EQ(sim.metrics.lock_requests, rt.metrics.lock_requests);
  EXPECT_EQ(sim.residual_queue_depth, 0u);
  EXPECT_EQ(rt.residual_queue_depth, 0u);
}

// The staged/batched hot path (--batch-submit=on, the default) and the
// legacy per-request path must be observationally identical: same commits,
// same grants, same request counts, both fully drained — and both equal to
// the simulator's byte-identical run of the same seeded workload.
TEST(RtBackendTest, BatchedAndLegacySubmitPathsAgreeWithSim) {
  BackendRunConfig config = SmallRun();
  config.txns_per_session = 150;

  SimContext sim_context;
  config.context = &sim_context;
  const BackendRunResult sim = RunMicroFixedCount(BackendKind::kSim, config);

  SimContext batched_context;
  config.context = &batched_context;
  config.rt_batch_submit = true;
  const BackendRunResult batched =
      RunMicroFixedCount(BackendKind::kRt, config);

  SimContext legacy_context;
  config.context = &legacy_context;
  config.rt_batch_submit = false;
  const BackendRunResult legacy =
      RunMicroFixedCount(BackendKind::kRt, config);

  for (const BackendRunResult* rt : {&batched, &legacy}) {
    EXPECT_EQ(rt->commits, sim.commits);
    EXPECT_EQ(rt->service_grants, sim.service_grants);
    EXPECT_EQ(rt->metrics.lock_requests, sim.metrics.lock_requests);
    EXPECT_EQ(rt->residual_queue_depth, 0u);
  }
  // Staging bookkeeping: on the batched run every grant went through the
  // per-core staging buffers; on the legacy run none did.
  EXPECT_EQ(
      batched_context.metrics().Counter("rt.staged_completions").value(),
      batched.service_grants);
  EXPECT_GT(batched_context.metrics().Counter("rt.flushes").value(), 0u);
  EXPECT_EQ(
      legacy_context.metrics().Counter("rt.staged_completions").value(), 0u);
  EXPECT_EQ(legacy_context.metrics().Counter("rt.flushes").value(), 0u);
}

// Oracle replay over the legacy (non-batched) submit path: the default
// path is covered by OracleHoldsOverMulticoreGrantStream; this pins the
// A/B baseline to the same mutual-exclusion and FIFO guarantees.
TEST(RtBackendTest, OracleHoldsWithLegacySubmitPath) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.rt_cores = 4;
  config.rt_client_threads = 4;
  config.rt_record_events = true;
  config.rt_batch_submit = false;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  ASSERT_FALSE(result.events.empty());

  testing::LockOracle oracle;
  testing::ReplayRtEventsThroughOracle(result.events, oracle);
  EXPECT_EQ(oracle.violations(), 0u)
      << (oracle.violation_log().empty() ? "" : oracle.violation_log()[0]);
  EXPECT_EQ(oracle.fifo_violations(), 0u);
  EXPECT_EQ(oracle.grants(), result.service_grants);
  EXPECT_EQ(oracle.TotalHolders(), 0u);
}

TEST(RtBackendTest, TimedRunReportsWallClockWindow) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.workload.num_locks = 10'000;  // Low contention: measure throughput.
  config.workload.locks_per_txn = 1;
  config.workload.zipf_alpha = 0.0;
  const BackendRunResult result = RunMicroTimed(
      BackendKind::kRt, config, /*warmup=*/5'000'000, /*measure=*/20'000'000);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.metrics.lock_requests, 0u);  // Grants observed in window.
  EXPECT_EQ(result.residual_queue_depth, 0u);
}

TEST(RtBackendTest, TelemetryCountsMatchRunTotals) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  // Per-core grant shards sum to the run total.
  std::uint64_t summed = 0;
  for (const std::uint64_t g : result.core_grants) summed += g;
  ASSERT_EQ(result.core_grants.size(),
            static_cast<std::size_t>(config.rt_cores));
  EXPECT_EQ(summed, result.service_grants);
  // Stop() published the domain into the run's registry as deltas.
  EXPECT_EQ(context.metrics().Counter("rt.grants").value(),
            result.service_grants);
  // Fully drained fixed-count run: every acquire was granted and released.
  EXPECT_EQ(context.metrics().Counter("rt.requests").value(),
            result.service_grants);
  EXPECT_EQ(context.metrics().Counter("rt.releases").value(),
            result.service_grants);
  EXPECT_GT(context.metrics().Counter("rt.batches").value(), 0u);
  EXPECT_EQ(context.metrics().Counter("rt.commits").value(),
            result.commits);
  // Client-side latency histograms were recorded and published.
  EXPECT_GT(context.metrics().Counter("rt.lock_latency.count").value(), 0u);
  EXPECT_GT(context.metrics().Counter("rt.txn_latency.count").value(), 0u);
  EXPECT_GT(context.metrics().Gauge("rt.lock_latency.p99_ns").value(), 0u);
}

// The live poller runs over the measurement window of a timed run and the
// result carries its time series — the section BENCH_rt_mlps.json embeds.
TEST(RtBackendTest, TimedRunCarriesTimeSeries) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.workload.num_locks = 10'000;
  config.workload.locks_per_txn = 1;
  config.workload.zipf_alpha = 0.0;
  config.rt_poll_interval = 5'000'000;  // 5 ms buckets.
  const BackendRunResult result = RunMicroTimed(
      BackendKind::kRt, config, /*warmup=*/5'000'000, /*measure=*/60'000'000);
  ASSERT_TRUE(result.has_time_series);
  const TimeSeriesStore& ts = result.time_series;
  ASSERT_GT(ts.num_series(), 0u);
  ASSERT_GT(ts.num_buckets(), 0u);
  // Bucket midpoints advance monotonically.
  for (std::size_t b = 1; b < ts.num_buckets(); ++b) {
    EXPECT_GT(ts.BucketTimeSeconds(b), ts.BucketTimeSeconds(b - 1));
  }
  // The grant-rate series exists and saw traffic in some bucket.
  bool found_grants = false;
  for (std::size_t s = 0; s < ts.num_series(); ++s) {
    if (ts.series_name(s) != "rt.grants") continue;
    found_grants = true;
    EXPECT_TRUE(ts.series_is_rate(s));
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < ts.num_buckets(); ++b) {
      total += ts.Delta(s, b);
    }
    EXPECT_GT(total, 0u);
  }
  EXPECT_TRUE(found_grants);
}

TEST(RtBackendTest, TelemetryOffStillCountsAndSkipsHistograms) {
  SimContext context;
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.rt_telemetry = false;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  // The sharded counters ARE the service's stats store, so totals survive
  // with telemetry off; the client latency histograms do not.
  EXPECT_EQ(context.metrics().Counter("rt.grants").value(),
            result.service_grants);
  EXPECT_EQ(context.metrics().Counter("rt.lock_latency.count").value(), 0u);
  // The recording-window metrics still work (they are not telemetry).
  EXPECT_GT(result.metrics.lock_grants, 0u);
  EXPECT_FALSE(result.metrics.lock_latency.empty());
}

// --- Deadlock-handling policies across backends ---

constexpr DeadlockPolicy kAllPolicies[] = {DeadlockPolicy::kNoWait,
                                           DeadlockPolicy::kWaitDie,
                                           DeadlockPolicy::kWoundWait};

// Deliberately deadlock-prone shape: unordered lock sets over a small hot
// space. Without a policy this wedges; with one, every txn must still
// commit (aborted attempts retry with a fresh, younger txn id).
BackendRunConfig PolicyRun(DeadlockPolicy policy) {
  BackendRunConfig config = SmallRun();
  config.workload.num_locks = 32;
  config.workload.locks_per_txn = 3;
  config.workload.shared_fraction = 0.3;
  config.deadlock_policy = policy;
  config.unordered_workload = true;
  config.txns_per_session = 150;
  return config;
}

// Cross-backend equivalence under each policy: the same seeded sessions on
// the simulator and the real-time backend must commit every transaction,
// agree exactly on the locks granted to committed transactions, both see a
// nonzero abort stream, and both drain completely. (Abort *counts* differ
// legitimately: retry timing is substrate-dependent.)
TEST(RtBackendTest, PolicyRunsAgreeAcrossBackends) {
  for (const DeadlockPolicy policy : kAllPolicies) {
    SCOPED_TRACE(ToString(policy));
    BackendRunConfig config = PolicyRun(policy);

    SimContext sim_context;
    config.context = &sim_context;
    const BackendRunResult sim =
        RunMicroFixedCount(BackendKind::kSim, config);

    SimContext rt_context;
    config.context = &rt_context;
    const BackendRunResult rt = RunMicroFixedCount(BackendKind::kRt, config);

    const std::uint64_t expected_commits =
        static_cast<std::uint64_t>(config.sessions) *
        config.txns_per_session;
    EXPECT_EQ(sim.commits, expected_commits);
    EXPECT_EQ(rt.commits, expected_commits);
    EXPECT_EQ(sim.committed_lock_grants, rt.committed_lock_grants);
    EXPECT_GT(sim.aborts, 0u);
    EXPECT_GT(rt.aborts, 0u);
    EXPECT_GT(sim.service_aborts, 0u);
    EXPECT_GT(rt.service_aborts, 0u);
    EXPECT_EQ(sim.residual_queue_depth, 0u);
    EXPECT_EQ(rt.residual_queue_depth, 0u);
  }
}

// Oracle replay of the rt event log under each policy: the linearized
// stream now contains kAbort events (refusals, deaths, wounds, cancel
// removals); replaying them must leave mutual exclusion intact and every
// holder released.
TEST(RtBackendTest, OracleHoldsUnderPoliciesOnRt) {
  for (const DeadlockPolicy policy : kAllPolicies) {
    SCOPED_TRACE(ToString(policy));
    SimContext context;
    BackendRunConfig config = PolicyRun(policy);
    config.context = &context;
    config.rt_cores = 4;  // Locks shard across cores; wounds cross them.
    config.rt_client_threads = 4;
    config.rt_record_events = true;
    const BackendRunResult result =
        RunMicroFixedCount(BackendKind::kRt, config);
    ASSERT_FALSE(result.events.empty());

    testing::LockOracle oracle;
    testing::ReplayRtEventsThroughOracle(result.events, oracle);
    EXPECT_EQ(oracle.violations(), 0u)
        << (oracle.violation_log().empty() ? "" : oracle.violation_log()[0]);
    EXPECT_EQ(oracle.fifo_violations(), 0u);
    EXPECT_EQ(oracle.TotalHolders(), 0u);  // Fully drained.
  }
}

// Multi-shard wound regression: with locks sharded over 4 cores, a wound
// delivered by one core's engine must lead the client to cancel the txn's
// pending entries on *other* cores (kCancel), or those queues stall and
// the fixed-count run never finishes. Completion + full drain + a nonzero
// wound count is the regression signal.
TEST(RtBackendTest, WoundClearsPendingEntriesAcrossCores) {
  SimContext context;
  BackendRunConfig config = PolicyRun(DeadlockPolicy::kWoundWait);
  config.context = &context;
  config.rt_cores = 4;
  config.rt_client_threads = 4;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  EXPECT_EQ(result.commits,
            static_cast<std::uint64_t>(config.sessions) *
                config.txns_per_session);
  EXPECT_GT(result.wounds, 0u);
  EXPECT_EQ(result.residual_queue_depth, 0u);
}

// Seeds a mutual-exclusion violation by dropping some releases from the
// oracle replay, then asserts the flight recorder produces a dump that
// round-trips through ParseText — the autopsy workflow end to end.
TEST(RtBackendTest, SeededViolationDumpsFlightRecorder) {
  SimContext context;
  FlightRecorder recorder(/*shards=*/4, /*capacity_per_shard=*/4096);
  BackendRunConfig config = SmallRun();
  config.context = &context;
  config.rt_cores = 4;
  config.rt_client_threads = 4;
  config.rt_record_events = true;
  config.rt_flight_recorder = &recorder;
  const BackendRunResult result =
      RunMicroFixedCount(BackendKind::kRt, config);
  ASSERT_FALSE(result.events.empty());
  EXPECT_GT(recorder.recorded(), 0u);

  testing::LockOracle oracle;
  testing::RtReplayOptions replay;
  replay.drop = [](const rt::RtEvent& ev) {
    return ev.kind == rt::RtEvent::Kind::kRelease && ev.txn % 7 == 3;
  };
  replay.recorder = &recorder;
  const std::string prefix = ::testing::TempDir() + "/rt_seeded_violation";
  replay.dump_prefix = prefix;
  const std::uint64_t violations =
      testing::ReplayRtEventsThroughOracle(result.events, oracle, replay);
  ASSERT_GT(violations, 0u);  // The seeded bug must be caught...

  // ...and the dump must exist and parse.
  std::ifstream file(prefix + ".txt");
  ASSERT_TRUE(file.good());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::vector<FlightRecorder::Event> parsed;
  ASSERT_TRUE(FlightRecorder::ParseText(buffer.str(), &parsed));
  EXPECT_FALSE(parsed.empty());
  bool saw_grant = false;
  for (const FlightRecorder::Event& ev : parsed) {
    if (ev.op == FlightRecorder::Op::kGrant) saw_grant = true;
  }
  EXPECT_TRUE(saw_grant);
}

}  // namespace
}  // namespace netlock
