// Tests for the open-loop (Poisson) load engine: offered rate tracking,
// queueing-delay visibility under overload, overload shedding, and safety
// with multiple outstanding transactions.
#include <gtest/gtest.h>

#include "client/open_loop.h"
#include "dataplane/switch_dataplane.h"
#include "testing/lock_oracle.h"
#include "test_util.h"
#include "workload/micro.h"

namespace netlock {
namespace {

class OpenLoopTest : public ::testing::Test {
 protected:
  OpenLoopTest() : net_(sim_, 1000) {
    LockSwitchConfig config;
    config.queue_capacity = 4096;
    config.array_size = 1024;
    config.max_locks = 2048;
    switch_ = std::make_unique<LockSwitch>(net_, config);
    server_ = std::make_unique<testing::PacketCatcher>(net_);
    machine_ = std::make_unique<ClientMachine>(net_);
  }

  std::unique_ptr<NetLockSession> MakeSession() {
    NetLockSession::Config config;
    config.switch_node = switch_->node();
    return std::make_unique<NetLockSession>(*machine_, config);
  }

  void InstallLocks(LockId n, std::uint32_t slots) {
    for (LockId l = 0; l < n; ++l) {
      ASSERT_TRUE(switch_->InstallLock(l, server_->node(), slots));
    }
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<testing::PacketCatcher> server_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(OpenLoopTest, TracksOfferedRateWhenUnderloaded) {
  InstallLocks(1000, 4);
  auto session = MakeSession();
  MicroConfig micro;
  micro.num_locks = 1000;
  OpenLoopConfig config;
  config.offered_tps = 50'000.0;
  config.think_time = 0;
  OpenLoopEngine engine(sim_, *session,
                        std::make_unique<MicroWorkload>(micro), 1, 11,
                        config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(200 * kMillisecond);
  engine.Stop();
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  // Completed ~= offered (Poisson noise) and nothing dropped.
  EXPECT_NEAR(static_cast<double>(engine.metrics().txn_commits), 10000.0,
              500.0);
  EXPECT_EQ(engine.dropped_arrivals(), 0u);
  // Uncontended latency ~= one switch round trip.
  EXPECT_LT(engine.metrics().lock_latency.Median(), 10 * kMicrosecond);
}

TEST_F(OpenLoopTest, OverloadShowsQueueingAndShedding) {
  // One heavily contended lock at far more offered load than its serial
  // capacity: latency explodes and arrivals get shed — open-loop behaviour
  // a closed-loop engine cannot exhibit.
  InstallLocks(1, 64);
  auto session = MakeSession();
  MicroConfig micro;
  micro.num_locks = 1;
  OpenLoopConfig config;
  config.offered_tps = 200'000.0;  // >> 1 / (RTT + think).
  config.think_time = 10 * kMicrosecond;
  config.max_outstanding = 32;
  OpenLoopEngine engine(sim_, *session,
                        std::make_unique<MicroWorkload>(micro), 1, 12,
                        config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(100 * kMillisecond);
  engine.Stop();
  sim_.RunUntil(sim_.now() + 50 * kMillisecond);
  EXPECT_GT(engine.dropped_arrivals(), 1000u);
  EXPECT_GT(engine.metrics().lock_latency.P99(), 100 * kMicrosecond);
  // Throughput is capacity-bound, way below offered.
  EXPECT_LT(engine.metrics().txn_commits, 12000u);
}

TEST_F(OpenLoopTest, SafetyWithManyOutstanding) {
  InstallLocks(16, 64);
  auto inner = MakeSession();
  testing::LockOracle oracle;
  testing::OracleSession session(std::move(inner), oracle);
  MicroConfig micro;
  micro.num_locks = 16;
  micro.locks_per_txn = 3;
  micro.shared_fraction = 0.4;
  OpenLoopConfig config;
  config.offered_tps = 100'000.0;
  config.think_time = 5 * kMicrosecond;
  OpenLoopEngine engine(sim_, session,
                        std::make_unique<MicroWorkload>(micro), 1, 13,
                        config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(100 * kMillisecond);
  engine.Stop();
  sim_.RunUntil(sim_.now() + 50 * kMillisecond);
  EXPECT_EQ(oracle.violations(), 0u);
  EXPECT_GT(engine.metrics().txn_commits, 1000u);
  EXPECT_EQ(engine.outstanding(), 0u);  // Everything drained.
}

// Workload whose transactions sometimes carry no locks at all (e.g. a
// read-only txn fully served by a snapshot). These must commit after think
// time instead of crashing the engine.
class SometimesEmptyWorkload : public WorkloadGenerator {
 public:
  explicit SometimesEmptyWorkload(double empty_fraction)
      : empty_fraction_(empty_fraction) {}

  TxnSpec Next(Rng& rng) override {
    TxnSpec spec;
    if (!rng.NextBool(empty_fraction_)) {
      spec.locks.push_back({static_cast<LockId>(rng.NextBounded(16)),
                            LockMode::kExclusive});
    }
    return spec;
  }

  LockId lock_space() const override { return 16; }

 private:
  double empty_fraction_;
};

TEST_F(OpenLoopTest, EmptyLockSetCommitsImmediately) {
  // Regression: BeginTxn/AcquireNext indexed txn.spec.locks[0] without
  // checking for an empty lock set (out-of-bounds read; crash under ASan).
  InstallLocks(16, 8);
  auto session = MakeSession();
  OpenLoopConfig config;
  config.offered_tps = 50'000.0;
  config.think_time = 2 * kMicrosecond;
  OpenLoopEngine engine(sim_, *session,
                        std::make_unique<SometimesEmptyWorkload>(1.0), 1, 21,
                        config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(50 * kMillisecond);
  engine.Stop();
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  // Every arrival commits (after think time) without issuing any acquires.
  EXPECT_GT(engine.metrics().txn_commits, 1000u);
  EXPECT_EQ(engine.metrics().lock_requests, 0u);
  EXPECT_EQ(engine.outstanding(), 0u);
}

TEST_F(OpenLoopTest, MixedEmptyAndNonEmptyTxnsDrainCleanly) {
  InstallLocks(16, 8);
  auto session = MakeSession();
  OpenLoopConfig config;
  config.offered_tps = 50'000.0;
  config.think_time = 0;
  OpenLoopEngine engine(sim_, *session,
                        std::make_unique<SometimesEmptyWorkload>(0.5), 1, 22,
                        config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(50 * kMillisecond);
  engine.Stop();
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  EXPECT_GT(engine.metrics().txn_commits, 1000u);
  EXPECT_GT(engine.metrics().lock_requests, 0u);
  EXPECT_EQ(engine.outstanding(), 0u);
}

TEST(OpenLoopTxnIdTest, CounterStaysOutOfEngineBits) {
  const TxnId id = OpenLoopEngine::MakeTxnId(
      7, (std::uint64_t{1} << OpenLoopEngine::kCounterBits) - 1);
  EXPECT_EQ(id >> OpenLoopEngine::kCounterBits, 7u);
}

TEST(OpenLoopTxnIdDeathTest, CounterOverflowIntoEngineBitsIsChecked) {
  // Regression: (engine_id << 40) | ++counter let an overflowing counter
  // silently corrupt the engine-id bits, aliasing txn ids across engines.
  EXPECT_DEATH(OpenLoopEngine::MakeTxnId(
                   1, std::uint64_t{1} << OpenLoopEngine::kCounterBits),
               "counter");
}

}  // namespace
}  // namespace netlock
