// Tests for the simulated RDMA substrate: verb semantics, NIC serialization
// of atomics, rate modelling, and request/response matching.
#include <gtest/gtest.h>

#include "rdma/rdma.h"

namespace netlock {
namespace {

class RdmaTest : public ::testing::Test {
 protected:
  RdmaTest()
      : net_(sim_, /*latency=*/2000),
        nic_(net_, /*memory_words=*/64),
        endpoint_(net_) {}

  Simulator sim_;
  Network net_;
  RdmaNic nic_;
  RdmaEndpoint endpoint_;
};

TEST_F(RdmaTest, ReadReturnsHostValue) {
  nic_.Memory(5) = 1234;
  std::uint64_t got = 0;
  endpoint_.Read(nic_.node(), 5, [&](std::uint64_t v) { got = v; });
  sim_.Run();
  EXPECT_EQ(got, 1234u);
}

TEST_F(RdmaTest, WriteStoresValue) {
  bool done = false;
  endpoint_.Write(nic_.node(), 3, 999, [&](std::uint64_t) { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(nic_.Memory(3), 999u);
}

TEST_F(RdmaTest, CasSucceedsOnMatch) {
  nic_.Memory(0) = 10;
  std::uint64_t old = 0;
  endpoint_.CompareAndSwap(nic_.node(), 0, 10, 20,
                           [&](std::uint64_t v) { old = v; });
  sim_.Run();
  EXPECT_EQ(old, 10u);       // Pre-swap value == compare: success.
  EXPECT_EQ(nic_.Memory(0), 20u);
}

TEST_F(RdmaTest, CasFailsOnMismatch) {
  nic_.Memory(0) = 11;
  std::uint64_t old = 0;
  endpoint_.CompareAndSwap(nic_.node(), 0, 10, 20,
                           [&](std::uint64_t v) { old = v; });
  sim_.Run();
  EXPECT_EQ(old, 11u);
  EXPECT_EQ(nic_.Memory(0), 11u);  // Unchanged.
}

TEST_F(RdmaTest, FaaReturnsPreAddValue) {
  nic_.Memory(7) = 100;
  std::uint64_t old = 0;
  endpoint_.FetchAndAdd(nic_.node(), 7, 5, [&](std::uint64_t v) { old = v; });
  sim_.Run();
  EXPECT_EQ(old, 100u);
  EXPECT_EQ(nic_.Memory(7), 105u);
}

TEST_F(RdmaTest, AtomicsSerializeInArrivalOrder) {
  // Two endpoints race FAAs at the same word; the NIC engine serializes
  // them, so both tickets are distinct.
  RdmaEndpoint other(net_);
  std::vector<std::uint64_t> tickets;
  endpoint_.FetchAndAdd(nic_.node(), 0, 1,
                        [&](std::uint64_t v) { tickets.push_back(v); });
  other.FetchAndAdd(nic_.node(), 0, 1,
                    [&](std::uint64_t v) { tickets.push_back(v); });
  sim_.Run();
  ASSERT_EQ(tickets.size(), 2u);
  EXPECT_NE(tickets[0], tickets[1]);
  EXPECT_EQ(nic_.Memory(0), 2u);
}

TEST_F(RdmaTest, VerbLatencyIncludesRttAndService) {
  // One-way 2000 ns each direction + 100 ns read service.
  SimTime done_at = 0;
  endpoint_.Read(nic_.node(), 0, [&](std::uint64_t) { done_at = sim_.now(); });
  sim_.Run();
  EXPECT_EQ(done_at, 2000u + 100u + 2000u);
}

TEST_F(RdmaTest, AtomicSlowerThanRead) {
  SimTime read_done = 0, cas_done = 0;
  RdmaEndpoint other(net_);
  endpoint_.Read(nic_.node(), 0,
                 [&](std::uint64_t) { read_done = sim_.now(); });
  sim_.Run();
  other.CompareAndSwap(nic_.node(), 0, 0, 1,
                       [&](std::uint64_t) { cas_done = sim_.now(); });
  sim_.Run();
  EXPECT_GT(cas_done - read_done, 0u);
  // CAS service 370 vs read 100: the difference shows in completion time.
  EXPECT_EQ(cas_done, read_done + 4000u + 370u);
}

TEST_F(RdmaTest, NicEngineBacklogDelaysVerbs) {
  // Saturate the atomic engine: completions spaced by the atomic service
  // time, demonstrating the ConnectX-3-style bottleneck.
  std::vector<SimTime> completions;
  for (int i = 0; i < 10; ++i) {
    endpoint_.FetchAndAdd(nic_.node(), 0, 1, [&](std::uint64_t) {
      completions.push_back(sim_.now());
    });
  }
  sim_.Run();
  ASSERT_EQ(completions.size(), 10u);
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i] - completions[i - 1], 370u);
  }
}

TEST_F(RdmaTest, VerbsExecutedCounter) {
  endpoint_.Read(nic_.node(), 0, [](std::uint64_t) {});
  endpoint_.Write(nic_.node(), 0, 1, [](std::uint64_t) {});
  sim_.Run();
  EXPECT_EQ(nic_.verbs_executed(), 2u);
}

TEST_F(RdmaTest, OutOfRangeAddressAborts) {
  endpoint_.Read(nic_.node(), 64, [](std::uint64_t) {});
  EXPECT_DEATH(sim_.Run(), "CHECK");
}

}  // namespace
}  // namespace netlock
