// Tests for the client library: session grant matching, retransmission on
// loss, rejection backoff, machine TX rate limiting, and the transaction
// engine's closed-loop behaviour.
#include <gtest/gtest.h>

#include "client/client.h"
#include "client/txn.h"
#include "dataplane/switch_dataplane.h"
#include "test_util.h"
#include "workload/micro.h"

namespace netlock {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : net_(sim_, /*latency=*/1000) {
    LockSwitchConfig config;
    config.queue_capacity = 128;
    config.array_size = 64;
    config.max_locks = 16;
    switch_ = std::make_unique<LockSwitch>(net_, config);
    server_ = std::make_unique<testing::PacketCatcher>(net_);
    machine_ = std::make_unique<ClientMachine>(net_, /*tx_service=*/55);
  }

  std::unique_ptr<NetLockSession> MakeSession(
      SimTime retry_timeout = 2 * kMillisecond) {
    NetLockSession::Config config;
    config.switch_node = switch_->node();
    config.retry_timeout = retry_timeout;
    return std::make_unique<NetLockSession>(*machine_, config);
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<testing::PacketCatcher> server_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(ClientTest, AcquireGrantRoundTrip) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  auto session = MakeSession();
  AcquireResult result = AcquireResult::kTimeout;
  session->Acquire(1, LockMode::kExclusive, 42, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
}

TEST_F(ClientTest, GrantLatencyIsClientSwitchRtt) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  auto session = MakeSession();
  SimTime granted_at = 0;
  session->Acquire(1, LockMode::kExclusive, 42, 0,
                   [&](AcquireResult) { granted_at = sim_.now(); });
  sim_.RunUntil(kMillisecond);
  // TX service (55) + 1000 out + 1000 back.
  EXPECT_EQ(granted_at, 55u + 1000u + 1000u);
}

TEST_F(ClientTest, RetransmitsAfterLoss) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  net_.SetLossProbability(1.0);  // Drop everything...
  auto session = MakeSession(/*retry_timeout=*/kMillisecond);
  AcquireResult result = AcquireResult::kRejected;
  bool done = false;
  session->Acquire(1, LockMode::kExclusive, 42, 0, [&](AcquireResult r) {
    result = r;
    done = true;
  });
  sim_.RunUntil(2 * kMillisecond);
  net_.SetLossProbability(0.0);  // ...then heal the network.
  sim_.RunUntil(10 * kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(result, AcquireResult::kGranted);
  EXPECT_GE(session->retransmits(), 1u);
}

// Regression test for a fuzzer-found bug: a network-duplicated copy of an
// already-consumed grant used to take the unsolicited-grant path and
// ghost-release the holder's queue entry, granting the lock to the next
// waiter while the holder still held it. The duplicate-grant filter must
// drop the copy (same grant nonce) while still ghost-releasing genuine
// second entries created by retransmitted acquires (fresh nonce).
TEST_F(ClientTest, DuplicatedGrantDoesNotGhostReleaseHeldLock) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  auto a = MakeSession();
  auto b = MakeSession();
  LinkFaults faults;
  faults.duplicate = 1.0;  // Every packet is delivered twice.
  net_.SetDefaultFaults(faults);
  int a_granted = 0;
  int b_granted = 0;
  a->Acquire(1, LockMode::kExclusive, 1, 0, [&](AcquireResult r) {
    a_granted += r == AcquireResult::kGranted;
  });
  sim_.RunUntil(kMillisecond);
  ASSERT_EQ(a_granted, 1);
  b->Acquire(1, LockMode::kExclusive, 2, 0, [&](AcquireResult r) {
    b_granted += r == AcquireResult::kGranted;
  });
  sim_.RunUntil(2 * kMillisecond);
  // Mutual exclusion: B waits while A holds, duplicates notwithstanding.
  EXPECT_EQ(b_granted, 0);
  a->Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(4 * kMillisecond);
  // The ghost entries from duplicated acquires are reclaimed at wire speed
  // and B is granted exactly once.
  EXPECT_EQ(b_granted, 1);
}

// Lease discipline: once a grant is within the safety margin of its lease
// expiring, the manager's lease sweep may already have force-released the
// entry — sending the release would blind-pop a different waiter's slot.
// The session must drop it and let the sweep reclaim the entry.
TEST_F(ClientTest, ReleaseSuppressedNearLeaseExpiry) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  NetLockSession::Config config;
  config.switch_node = switch_->node();
  config.lease = 5 * kMillisecond;
  config.lease_release_margin = 500 * kMicrosecond;
  auto session = std::make_unique<NetLockSession>(*machine_, config);
  bool granted = false;
  session->Acquire(1, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { granted = r == AcquireResult::kGranted; });
  sim_.RunUntil(kMillisecond);
  ASSERT_TRUE(granted);
  // Hold past lease - margin; the release must be suppressed.
  sim_.RunUntil(sim_.now() + 5 * kMillisecond);
  const std::uint64_t releases_before = switch_->stats().releases;
  session->Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(sim_.now() + kMillisecond);
  EXPECT_EQ(session->releases_suppressed(), 1u);
  EXPECT_EQ(switch_->stats().releases, releases_before);
}

// A prompt release (well inside the lease) is sent normally.
TEST_F(ClientTest, PromptReleaseNotSuppressed) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  NetLockSession::Config config;
  config.switch_node = switch_->node();
  config.lease = 5 * kMillisecond;
  config.lease_release_margin = 500 * kMicrosecond;
  auto session = std::make_unique<NetLockSession>(*machine_, config);
  bool granted = false;
  session->Acquire(1, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { granted = r == AcquireResult::kGranted; });
  sim_.RunUntil(kMillisecond);
  ASSERT_TRUE(granted);
  session->Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(sim_.now() + kMillisecond);
  EXPECT_EQ(session->releases_suppressed(), 0u);
  EXPECT_EQ(switch_->stats().releases, 1u);
}

TEST_F(ClientTest, TimesOutAfterMaxRetries) {
  // No route for the lock: requests vanish at the switch.
  auto session = MakeSession(/*retry_timeout=*/100 * kMicrosecond);
  AcquireResult result = AcquireResult::kGranted;
  session->Acquire(5, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kSecond);
  EXPECT_EQ(result, AcquireResult::kTimeout);
}

TEST_F(ClientTest, RejectBacksOffAndRetries) {
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 8));
  ASSERT_TRUE(switch_->InstallLock(2, server_->node(), 8));
  // One token per 100 us, burst 1: back-to-back requests exceed the quota.
  switch_->quota().Configure(/*tenant=*/0, /*rate=*/1e4, /*burst=*/1);
  auto session = MakeSession();
  int granted = 0;
  session->Acquire(1, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { granted += r == AcquireResult::kGranted; });
  // Second acquire in the same burst window: rejected, backs off, then the
  // bucket refills and the retransmit succeeds.
  session->Acquire(2, LockMode::kExclusive, 2, 0,
                   [&](AcquireResult r) { granted += r == AcquireResult::kGranted; });
  sim_.RunUntil(10 * kMillisecond);
  EXPECT_EQ(granted, 2);
  EXPECT_GE(switch_->stats().rejected_quota, 1u);
}

TEST_F(ClientTest, MachineTxRateCapsThroughput) {
  ClientMachine slow(net_, /*tx_service=*/1000);  // 1 Mpps NIC.
  for (int i = 0; i < 100; ++i) {
    Packet pkt;
    pkt.src = 0;
    pkt.dst = server_->node();
    LockHeader hdr;
    hdr.SerializeTo(pkt);
    slow.Send(pkt);
  }
  sim_.RunUntil(50 * kMicrosecond);
  // Only ~50 packets could leave the NIC in 50 us.
  EXPECT_LE(server_->received().size(), 51u);
  EXPECT_GE(server_->received().size(), 48u);
}

class TxnEngineTest : public ClientTest {};

TEST_F(TxnEngineTest, ClosedLoopCommitsTransactions) {
  for (LockId lock = 0; lock < 4; ++lock) {
    ASSERT_TRUE(switch_->InstallLock(lock, server_->node(), 16));
  }
  auto session = MakeSession();
  MicroConfig wconfig;
  wconfig.num_locks = 4;
  wconfig.locks_per_txn = 2;
  TxnEngineConfig config;
  config.think_time = 5 * kMicrosecond;
  TxnEngine engine(sim_, *session,
                   std::make_unique<MicroWorkload>(wconfig), 1, 99, config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(10 * kMillisecond);
  engine.Stop();
  sim_.RunUntil(sim_.now() + kMillisecond);
  EXPECT_TRUE(engine.idle());
  const RunMetrics& m = engine.metrics();
  EXPECT_GT(m.txn_commits, 100u);
  EXPECT_EQ(m.lock_grants, m.lock_requests);
  // Each txn: ~2 lock acquires, each ~2 us RTT, plus 5 us think.
  EXPECT_GT(m.txn_latency.Median(), 5 * kMicrosecond);
}

TEST_F(TxnEngineTest, ThinkTimeBoundsThroughput) {
  ASSERT_TRUE(switch_->InstallLock(0, server_->node(), 16));
  auto session = MakeSession();
  MicroConfig wconfig;
  wconfig.num_locks = 1;
  TxnEngineConfig config;
  config.think_time = 100 * kMicrosecond;
  TxnEngine engine(sim_, *session,
                   std::make_unique<MicroWorkload>(wconfig), 1, 7, config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(100 * kMillisecond);
  // <= 1000 txns in 100 ms at >= 100 us each.
  EXPECT_LE(engine.metrics().txn_commits, 1000u);
  EXPECT_GE(engine.metrics().txn_commits, 800u);
}

TEST_F(TxnEngineTest, RecordingWindowExcludesWarmup) {
  ASSERT_TRUE(switch_->InstallLock(0, server_->node(), 16));
  auto session = MakeSession();
  MicroConfig wconfig;
  wconfig.num_locks = 1;
  TxnEngine engine(sim_, *session,
                   std::make_unique<MicroWorkload>(wconfig), 1, 8,
                   TxnEngineConfig{});
  engine.Start();
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(engine.metrics().txn_commits, 0u);  // Not recording yet.
  engine.SetRecording(true);
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_GT(engine.metrics().txn_commits, 0u);
}

TEST_F(TxnEngineTest, StopAndRestart) {
  ASSERT_TRUE(switch_->InstallLock(0, server_->node(), 16));
  auto session = MakeSession();
  MicroConfig wconfig;
  wconfig.num_locks = 1;
  TxnEngine engine(sim_, *session,
                   std::make_unique<MicroWorkload>(wconfig), 1, 9,
                   TxnEngineConfig{});
  engine.Start();
  sim_.RunUntil(kMillisecond);
  engine.Stop();
  sim_.RunUntil(sim_.now() + kMillisecond);
  ASSERT_TRUE(engine.idle());
  engine.SetRecording(true);
  engine.Restart();
  sim_.RunUntil(sim_.now() + kMillisecond);
  EXPECT_GT(engine.metrics().txn_commits, 0u);
}

TEST_F(TxnEngineTest, AbortReleasesAndRetries) {
  // Lock 0 routed nowhere: acquire times out, engine aborts and retries.
  ASSERT_TRUE(switch_->InstallLock(1, server_->node(), 16));
  auto session = MakeSession(/*retry_timeout=*/50 * kMicrosecond);
  MicroConfig wconfig;
  wconfig.num_locks = 2;  // Locks 0 (dead) and 1 (alive).
  wconfig.locks_per_txn = 2;
  TxnEngineConfig config;
  config.abort_backoff = 10 * kMicrosecond;
  TxnEngine engine(sim_, *session,
                   std::make_unique<MicroWorkload>(wconfig), 1, 10, config);
  engine.SetRecording(true);
  engine.Start();
  sim_.RunUntil(50 * kMillisecond);
  EXPECT_GT(engine.aborts(), 0u);
  // Lock 1 must never be left stuck: its switch queue drains on aborts.
  engine.Stop();
  sim_.RunUntil(sim_.now() + 20 * kMillisecond);
  EXPECT_TRUE(switch_->QueueEmpty(1));
}

}  // namespace
}  // namespace netlock
