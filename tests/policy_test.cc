// Tests for policy support (paper Section 4.4): FCFS starvation freedom,
// service differentiation with per-stage priorities, and performance
// isolation with per-tenant quotas — the behaviours behind Figure 12.
#include <gtest/gtest.h>

#include "dataplane/switch_dataplane.h"
#include "harness/experiment.h"
#include "harness/testbed.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class PriorityTest : public ::testing::Test {
 protected:
  PriorityTest() : net_(sim_, 1000) {
    LockSwitchConfig config;
    config.queue_capacity = 256;
    config.array_size = 64;
    config.max_locks = 16;
    config.num_priorities = 3;
    switch_ = std::make_unique<LockSwitch>(net_, config);
    client_ = std::make_unique<PacketCatcher>(net_);
    server_ = std::make_unique<PacketCatcher>(net_);
    EXPECT_TRUE(switch_->InstallLock(1, server_->node(), 30));
  }

  void Send(const LockHeader& hdr) {
    switch_->HandlePacket(
        MakeLockPacket(hdr.client_node, switch_->node(), hdr));
    sim_.Run();
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<PacketCatcher> client_;
  std::unique_ptr<PacketCatcher> server_;
};

TEST_F(PriorityTest, GrantsWhenFree) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node(), 2));
  EXPECT_TRUE(client_->HasGrantFor(1));
}

TEST_F(PriorityTest, HighPriorityGrantedFirstOnRelease) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node(), 0));
  // Low priority arrives first, then high priority.
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node(), 2));
  Send(MakeAcquire(1, LockMode::kExclusive, 3, client_->node(), 0));
  client_->Clear();
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node(), 0));
  // Despite arriving later, the priority-0 request (3) beats priority-2 (2).
  const auto grants = client_->Grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn_id, 3u);
}

TEST_F(PriorityTest, FcfsWithinSamePriority) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node(), 1));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node(), 1));
  Send(MakeAcquire(1, LockMode::kExclusive, 3, client_->node(), 1));
  std::vector<TxnId> order;
  for (TxnId expected = 1; expected <= 3; ++expected) {
    for (const auto& g : client_->Grants()) {
      if (std::find(order.begin(), order.end(), g.txn_id) == order.end()) {
        order.push_back(g.txn_id);
        Send(MakeRelease(1, LockMode::kExclusive, g.txn_id,
                         client_->node(), 1));
      }
    }
  }
  EXPECT_EQ(order, (std::vector<TxnId>{1, 2, 3}));
}

TEST_F(PriorityTest, SharedGrantRequiresNoExclusiveAtSameOrHigher) {
  Send(MakeAcquire(1, LockMode::kShared, 1, client_->node(), 1));
  EXPECT_TRUE(client_->HasGrantFor(1));
  // An exclusive waits at priority 0 (higher).
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node(), 0));
  EXPECT_FALSE(client_->HasGrantFor(2));
  // A new shared at priority 1 must NOT jump the higher-priority exclusive.
  Send(MakeAcquire(1, LockMode::kShared, 3, client_->node(), 1));
  EXPECT_FALSE(client_->HasGrantFor(3));
  // But a shared at priority 0 with no exclusive at <=0 waiting... the
  // exclusive IS at 0, so it must also wait.
  Send(MakeAcquire(1, LockMode::kShared, 4, client_->node(), 0));
  EXPECT_FALSE(client_->HasGrantFor(4));
}

TEST_F(PriorityTest, SharedJumpsLowerPriorityExclusive) {
  Send(MakeAcquire(1, LockMode::kShared, 1, client_->node(), 0));
  // Exclusive waiting at LOWER priority (2).
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node(), 2));
  // Shared at priority 0 may share: no exclusive at same-or-higher.
  Send(MakeAcquire(1, LockMode::kShared, 3, client_->node(), 0));
  EXPECT_TRUE(client_->HasGrantFor(3));
  EXPECT_FALSE(client_->HasGrantFor(2));
}

TEST_F(PriorityTest, SharedBatchAcrossPriorities) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node(), 0));
  Send(MakeAcquire(1, LockMode::kShared, 2, client_->node(), 0));
  Send(MakeAcquire(1, LockMode::kShared, 3, client_->node(), 1));
  Send(MakeAcquire(1, LockMode::kExclusive, 4, client_->node(), 1));
  client_->Clear();
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node(), 0));
  // Both leading shareds (across classes) granted; the exclusive waits.
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_TRUE(client_->HasGrantFor(3));
  EXPECT_FALSE(client_->HasGrantFor(4));
}

TEST_F(PriorityTest, PriorityBeyondRangeClamped) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node(), 250));
  EXPECT_TRUE(client_->HasGrantFor(1));
}

TEST_F(PriorityTest, PriorityCountBoundedByStages) {
  LockSwitchConfig config;
  config.num_stages = 8;
  config.num_priorities = 5;  // > 8 - 4.
  EXPECT_DEATH(LockSwitch(net_, config), "CHECK");
}

// End-to-end service differentiation: with priorities on, the
// high-priority tenant's throughput dominates (Figure 12(a) behaviour).
TEST(ServiceDifferentiationTest, HighPriorityTenantWins) {
  auto run = [&](bool differentiate) {
    TestbedConfig config;
    config.system = SystemKind::kNetLock;
    config.client_machines = 2;
    config.sessions_per_machine = 5;
    config.lock_servers = 1;
    config.switch_config.num_priorities = differentiate ? 2 : 1;
    config.txn_config.think_time = 10 * kMicrosecond;
    MicroConfig micro;
    micro.num_locks = 4;  // Contended.
    config.workload_factory = MicroFactory(micro);
    // Engines 0-4 tenant A (high priority), 5-9 tenant B (low priority).
    config.priority_of = [](int i) {
      return static_cast<Priority>(i < 5 ? 0 : 1);
    };
    Testbed testbed(config);
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    testbed.Run(10 * kMillisecond, 100 * kMillisecond);
    std::uint64_t high = 0, low = 0;
    for (int i = 0; i < testbed.num_engines(); ++i) {
      if (i < 5) {
        high += testbed.engine(i).metrics().txn_commits;
      } else {
        low += testbed.engine(i).metrics().txn_commits;
      }
    }
    testbed.StopEngines();
    return std::make_pair(high, low);
  };
  const auto [high_off, low_off] = run(false);
  const auto [high_on, low_on] = run(true);
  // Without differentiation the tenants are comparable.
  EXPECT_LT(static_cast<double>(high_off),
            1.5 * static_cast<double>(low_off));
  // With differentiation the high-priority tenant clearly dominates.
  EXPECT_GT(static_cast<double>(high_on), 1.5 * static_cast<double>(low_on));
}

// End-to-end performance isolation: the 7-client tenant cannot starve the
// 3-client tenant once quotas are on (Figure 12(b) behaviour).
TEST(PerformanceIsolationTest, QuotaEqualizesTenants) {
  auto run = [&](bool isolate) {
    TestbedConfig config;
    config.system = SystemKind::kNetLock;
    config.client_machines = 2;
    config.sessions_per_machine = 5;
    config.lock_servers = 1;
    config.txn_config.think_time = 0;
    MicroConfig micro;
    micro.num_locks = 20'000;  // Uncontended: pure rate competition.
    config.workload_factory = MicroFactory(micro);
    config.tenant_of = [](int i) { return static_cast<TenantId>(i < 7); };
    Testbed testbed(config);
    testbed.netlock().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    if (isolate) {
      // Equal shares, set below both tenants' offered load so the quota
      // binds for each (10 closed-loop engines offer ~2 MRPS total).
      testbed.netlock().lock_switch().quota().Configure(0, 4e5, 64);
      testbed.netlock().lock_switch().quota().Configure(1, 4e5, 64);
    }
    testbed.Run(10 * kMillisecond, 100 * kMillisecond);
    std::uint64_t t1 = 0, t2 = 0;
    for (int i = 0; i < testbed.num_engines(); ++i) {
      if (i < 7) {
        t1 += testbed.engine(i).metrics().txn_commits;
      } else {
        t2 += testbed.engine(i).metrics().txn_commits;
      }
    }
    testbed.StopEngines();
    return std::make_pair(t1, t2);
  };
  const auto [t1_off, t2_off] = run(false);
  EXPECT_GT(static_cast<double>(t1_off), 1.6 * static_cast<double>(t2_off));
  const auto [t1_on, t2_on] = run(true);
  const double ratio =
      static_cast<double>(t1_on) / std::max<std::uint64_t>(1, t2_on);
  EXPECT_LT(ratio, 1.5);  // Near-equal shares under isolation.
}

}  // namespace
}  // namespace netlock
