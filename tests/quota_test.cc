// Tests for per-tenant quota enforcement: meter (token bucket) and counter
// (windowed budget) modes.
#include <gtest/gtest.h>

#include "dataplane/quota.h"

namespace netlock {
namespace {

class QuotaTest : public ::testing::Test {
 protected:
  Pipeline pipeline_{12};
};

TEST_F(QuotaTest, UnlimitedTenantsAlwaysAdmit) {
  TenantQuota quota(pipeline_, 0, 8, QuotaMode::kMeter);
  for (int i = 0; i < 100; ++i) {
    PacketPass pass = pipeline_.BeginPass();
    EXPECT_TRUE(quota.Admit(pass, 3, /*now=*/0));
  }
}

TEST_F(QuotaTest, UnknownTenantIdAdmits) {
  TenantQuota quota(pipeline_, 0, 8, QuotaMode::kMeter);
  PacketPass pass = pipeline_.BeginPass();
  EXPECT_TRUE(quota.Admit(pass, 200, 0));  // Beyond the table: no limit.
}

TEST_F(QuotaTest, MeterEnforcesBurstThenRate) {
  TenantQuota quota(pipeline_, 0, 8, QuotaMode::kMeter);
  quota.Configure(1, /*rate=*/1e6, /*burst=*/10);  // 1 token per us.
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    PacketPass pass = pipeline_.BeginPass();
    if (quota.Admit(pass, 1, /*now=*/0)) ++admitted;
  }
  EXPECT_EQ(admitted, 10);  // Burst exhausted.
  // After 5 us, 5 tokens refilled.
  admitted = 0;
  for (int i = 0; i < 20; ++i) {
    PacketPass pass = pipeline_.BeginPass();
    if (quota.Admit(pass, 1, /*now=*/5 * kMicrosecond)) ++admitted;
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(quota.rejections(), 25u);
}

TEST_F(QuotaTest, MeterSustainedRateConverges) {
  TenantQuota quota(pipeline_, 0, 8, QuotaMode::kMeter);
  quota.Configure(2, /*rate=*/100'000, /*burst=*/5);  // 100K/s.
  int admitted = 0;
  // Offer 1M/s for 10 ms: expect ~1000 admitted (plus burst).
  for (int i = 0; i < 10'000; ++i) {
    PacketPass pass = pipeline_.BeginPass();
    if (quota.Admit(pass, 2, static_cast<SimTime>(i) * kMicrosecond)) {
      ++admitted;
    }
  }
  EXPECT_NEAR(admitted, 1000, 10);
}

TEST_F(QuotaTest, MeterIndependentTenants) {
  TenantQuota quota(pipeline_, 0, 8, QuotaMode::kMeter);
  quota.Configure(1, 1e6, 1);
  quota.Configure(2, 1e6, 5);
  int t1 = 0, t2 = 0;
  for (int i = 0; i < 5; ++i) {
    PacketPass p1 = pipeline_.BeginPass();
    if (quota.Admit(p1, 1, 0)) ++t1;
    PacketPass p2 = pipeline_.BeginPass();
    if (quota.Admit(p2, 2, 0)) ++t2;
  }
  EXPECT_EQ(t1, 1);
  EXPECT_EQ(t2, 5);
}

TEST_F(QuotaTest, CounterModeWindowBudget) {
  TenantQuota quota(pipeline_, 0, 8, QuotaMode::kCounter);
  quota.set_window(10 * kMillisecond);
  quota.Configure(1, /*rate=*/0.0, /*burst=*/3);  // 3 per window.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    PacketPass pass = pipeline_.BeginPass();
    if (quota.Admit(pass, 1, /*now=*/kMillisecond)) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
  // Next window: budget resets.
  PacketPass pass = pipeline_.BeginPass();
  EXPECT_TRUE(quota.Admit(pass, 1, 11 * kMillisecond));
}

TEST_F(QuotaTest, UnlimitRemovesThrottle) {
  TenantQuota quota(pipeline_, 0, 8, QuotaMode::kMeter);
  quota.Configure(1, 1.0, 1);
  PacketPass p1 = pipeline_.BeginPass();
  EXPECT_TRUE(quota.Admit(p1, 1, 0));
  PacketPass p2 = pipeline_.BeginPass();
  EXPECT_FALSE(quota.Admit(p2, 1, 0));
  quota.Unlimit(1);
  PacketPass p3 = pipeline_.BeginPass();
  EXPECT_TRUE(quota.Admit(p3, 1, 0));
}

}  // namespace
}  // namespace netlock
