// Tests for Algorithm 3 (knapsack memory allocation): optimality against
// brute force (Theorem 1, property-tested), edge cases, the random strawman,
// and the server-count guarantee.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/memory_alloc.h"

namespace netlock {
namespace {

TEST(KnapsackTest, PrefersHighDensityLocks) {
  // Figure 7's example: lock 1 has two clients at 100 req/s each (r=200,
  // c=2), lock 2 has one client at 10 req/s (r=10, c=1). With 2 slots the
  // optimal allocation gives both slots to lock 1.
  std::vector<LockDemand> demands{{1, 200.0, 2}, {2, 10.0, 1}};
  const Allocation alloc = KnapsackAllocate(demands, 2);
  ASSERT_EQ(alloc.switch_slots.size(), 1u);
  EXPECT_EQ(alloc.switch_slots[0].first, 1u);
  EXPECT_EQ(alloc.switch_slots[0].second, 2u);
  EXPECT_EQ(alloc.server_only, (std::vector<LockId>{2}));
  EXPECT_DOUBLE_EQ(alloc.guaranteed_rate, 200.0);
}

TEST(KnapsackTest, NeverAllocatesMoreThanContention) {
  std::vector<LockDemand> demands{{1, 100.0, 3}};
  const Allocation alloc = KnapsackAllocate(demands, 100);
  ASSERT_EQ(alloc.switch_slots.size(), 1u);
  EXPECT_EQ(alloc.switch_slots[0].second, 3u);  // s_i <= c_i.
}

TEST(KnapsackTest, PartialAllocationForLastLock) {
  std::vector<LockDemand> demands{{1, 100.0, 4}, {2, 10.0, 4}};
  const Allocation alloc = KnapsackAllocate(demands, 6);
  ASSERT_EQ(alloc.switch_slots.size(), 2u);
  EXPECT_EQ(alloc.switch_slots[0].second, 4u);
  EXPECT_EQ(alloc.switch_slots[1].second, 2u);  // Fractional tail.
  EXPECT_DOUBLE_EQ(alloc.guaranteed_rate, 100.0 + 10.0 * 2 / 4);
}

TEST(KnapsackTest, EmptyAndZeroCapacity) {
  EXPECT_TRUE(KnapsackAllocate({}, 100).switch_slots.empty());
  const Allocation alloc = KnapsackAllocate({{1, 5.0, 2}}, 0);
  EXPECT_TRUE(alloc.switch_slots.empty());
  EXPECT_EQ(alloc.server_only.size(), 1u);
}

TEST(KnapsackTest, DeterministicTieBreak) {
  std::vector<LockDemand> demands{{2, 10.0, 2}, {1, 10.0, 2}};
  const Allocation a = KnapsackAllocate(demands, 2);
  ASSERT_EQ(a.switch_slots.size(), 1u);
  EXPECT_EQ(a.switch_slots[0].first, 1u);  // Lower id wins ties.
}

// Theorem 1: the greedy objective matches the brute-force optimum.
TEST(KnapsackTest, PropertyOptimalVsBruteForce) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + rng.NextBounded(5);
    std::vector<LockDemand> demands;
    for (int i = 0; i < n; ++i) {
      demands.push_back(LockDemand{
          static_cast<LockId>(i),
          static_cast<double>(1 + rng.NextBounded(100)),
          static_cast<std::uint32_t>(1 + rng.NextBounded(6))});
    }
    const std::uint32_t capacity =
        static_cast<std::uint32_t>(rng.NextBounded(16));
    const Allocation greedy = KnapsackAllocate(demands, capacity);
    const double optimal = BruteForceObjective(demands, capacity);
    EXPECT_NEAR(greedy.guaranteed_rate, optimal, 1e-9)
        << "trial=" << trial << " capacity=" << capacity;
    EXPECT_NEAR(AllocationObjective(demands, greedy),
                greedy.guaranteed_rate, 1e-9);
  }
}

TEST(KnapsackTest, CapacityConstraintRespected) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<LockDemand> demands;
    for (int i = 0; i < 20; ++i) {
      demands.push_back(LockDemand{
          static_cast<LockId>(i),
          static_cast<double>(1 + rng.NextBounded(1000)),
          static_cast<std::uint32_t>(1 + rng.NextBounded(10))});
    }
    const std::uint32_t capacity =
        static_cast<std::uint32_t>(rng.NextBounded(60));
    const Allocation alloc = KnapsackAllocate(demands, capacity);
    std::uint32_t used = 0;
    for (const auto& [lock, s] : alloc.switch_slots) used += s;
    EXPECT_LE(used, capacity);
  }
}

TEST(RandomAllocateTest, RespectsCapacityAndContention) {
  std::vector<LockDemand> demands;
  for (int i = 0; i < 50; ++i) {
    demands.push_back(
        LockDemand{static_cast<LockId>(i), 10.0 * (i + 1), 4});
  }
  const Allocation alloc = RandomAllocate(demands, 40, /*seed=*/3);
  std::uint32_t used = 0;
  for (const auto& [lock, s] : alloc.switch_slots) {
    EXPECT_LE(s, 4u);
    used += s;
  }
  EXPECT_LE(used, 40u);
}

TEST(RandomAllocateTest, TypicallyWorseThanKnapsackOnSkew) {
  // Strongly skewed demand: knapsack should beat random almost always —
  // this is the Figure 13 effect.
  Rng rng(5);
  std::vector<LockDemand> demands;
  for (int i = 0; i < 100; ++i) {
    const double rate = i < 5 ? 10000.0 : 1.0;
    demands.push_back(LockDemand{static_cast<LockId>(i), rate, 4});
  }
  const Allocation knap = KnapsackAllocate(demands, 20);
  int random_wins = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Allocation rand = RandomAllocate(demands, 20, seed);
    if (rand.guaranteed_rate >= knap.guaranteed_rate) ++random_wins;
  }
  EXPECT_LE(random_wins, 1);
}

TEST(RandomAllocateTest, SeedDeterminism) {
  std::vector<LockDemand> demands;
  for (int i = 0; i < 30; ++i) {
    demands.push_back(LockDemand{static_cast<LockId>(i), 1.0 * i, 2});
  }
  const Allocation a = RandomAllocate(demands, 10, 9);
  const Allocation b = RandomAllocate(demands, 10, 9);
  EXPECT_EQ(a.switch_slots, b.switch_slots);
}

TEST(StaticAllocateTest, FixedArraysPerLock) {
  std::vector<LockDemand> demands{{1, 100.0, 8}, {2, 50.0, 2}, {3, 10.0, 4}};
  const Allocation alloc = StaticAllocate(demands, /*capacity=*/8,
                                          /*fixed_slots=*/4);
  // Two arrays of 4 fit: the two highest-rate locks get them.
  ASSERT_EQ(alloc.switch_slots.size(), 2u);
  EXPECT_EQ(alloc.switch_slots[0].first, 1u);
  EXPECT_EQ(alloc.switch_slots[0].second, 4u);
  EXPECT_EQ(alloc.switch_slots[1].first, 2u);
  // Lock 1 only half-covered (4 of c=8); lock 2 over-provisioned (c=2).
  EXPECT_DOUBLE_EQ(alloc.guaranteed_rate, 100.0 * 4 / 8 + 50.0);
  EXPECT_EQ(alloc.server_only, (std::vector<LockId>{3}));
}

TEST(StaticAllocateTest, NeverBeatsKnapsack) {
  // The shared queue dominates static binding at any skew (it can always
  // emulate the static layout and usually does better).
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<LockDemand> demands;
    for (int i = 0; i < 64; ++i) {
      demands.push_back(LockDemand{
          static_cast<LockId>(i),
          static_cast<double>(1 + rng.NextBounded(10000)),
          static_cast<std::uint32_t>(1 + rng.NextBounded(16))});
    }
    const std::uint32_t capacity = 64;
    const double knap = KnapsackAllocate(demands, capacity).guaranteed_rate;
    for (const std::uint32_t fixed : {1u, 2u, 4u, 8u}) {
      EXPECT_GE(knap + 1e-9,
                StaticAllocate(demands, capacity, fixed).guaranteed_rate)
          << "trial=" << trial << " fixed=" << fixed;
    }
  }
}

TEST(ServersNeededTest, GuaranteeComputation) {
  // Section 4.3: servers = ceil((sum r_i - sum r_i s_i / c_i) / r_e).
  std::vector<LockDemand> demands{{1, 100.0, 2}, {2, 60.0, 2}};
  Allocation alloc;
  alloc.switch_slots = {{1, 2}};  // Lock 1 fully in switch.
  EXPECT_EQ(ServersNeeded(demands, alloc, /*server_rate=*/25.0), 3u);
  alloc.switch_slots = {{1, 2}, {2, 2}};
  EXPECT_EQ(ServersNeeded(demands, alloc, 25.0), 0u);
}

TEST(AllocationTest, InSwitchLookup) {
  Allocation alloc;
  alloc.switch_slots = {{3, 2}, {7, 1}};
  EXPECT_TRUE(alloc.InSwitch(3));
  EXPECT_TRUE(alloc.InSwitch(7));
  EXPECT_FALSE(alloc.InSwitch(4));
}

}  // namespace
}  // namespace netlock
