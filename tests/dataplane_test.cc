// Tests for the NetLock switch data plane: Algorithm 2's grant/queue rules,
// the four release cases, circular-region wrap-around, shared-queue
// mapping, and lease-based cleanup.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dataplane/shared_queue.h"
#include "dataplane/switch_dataplane.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class DataplaneTest : public ::testing::Test {
 protected:
  DataplaneTest() : net_(sim_, /*latency=*/1000) {
    LockSwitchConfig config;
    config.queue_capacity = 256;
    config.array_size = 64;  // Force multi-array pooling.
    config.max_locks = 32;
    switch_ = std::make_unique<LockSwitch>(net_, config);
    client_ = std::make_unique<PacketCatcher>(net_);
    server_ = std::make_unique<PacketCatcher>(net_);
  }

  void Install(LockId lock, std::uint32_t slots) {
    ASSERT_TRUE(switch_->InstallLock(lock, server_->node(), slots));
  }

  void Send(const LockHeader& hdr) {
    switch_->HandlePacket(MakeLockPacket(hdr.client_node, switch_->node(),
                                         hdr));
    sim_.Run();  // Deliver grants.
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<PacketCatcher> client_;
  std::unique_ptr<PacketCatcher> server_;
};

TEST_F(DataplaneTest, GrantsExclusiveOnEmptyQueue) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 100, client_->node()));
  ASSERT_TRUE(client_->HasGrantFor(100));
  EXPECT_EQ(switch_->stats().grants, 1u);
}

TEST_F(DataplaneTest, QueuesSecondExclusive) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 100, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 101, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(100));
  EXPECT_FALSE(client_->HasGrantFor(101));
}

TEST_F(DataplaneTest, GrantsAllSharedImmediately) {
  Install(1, 8);
  for (TxnId txn = 0; txn < 5; ++txn) {
    Send(MakeAcquire(1, LockMode::kShared, txn, client_->node()));
  }
  EXPECT_EQ(client_->Grants().size(), 5u);
}

TEST_F(DataplaneTest, SharedBehindExclusiveWaits) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
}

// Release case Shared -> Shared: remaining shared holder already granted,
// no new grant is generated.
TEST_F(DataplaneTest, ReleaseSharedThenSharedNoNewGrant) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kShared, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 2, client_->node()));
  client_->Clear();
  Send(MakeRelease(1, LockMode::kShared, 1, client_->node()));
  EXPECT_TRUE(client_->Grants().empty());
  EXPECT_EQ(switch_->stats().releases, 1u);
}

// Release case Shared -> Exclusive: the last shared holder leaves and the
// waiting exclusive is granted.
TEST_F(DataplaneTest, ReleaseSharedGrantsWaitingExclusive) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kShared, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  Send(MakeRelease(1, LockMode::kShared, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

// Two shared holders + waiting exclusive: the exclusive is granted only
// after BOTH release (heads dequeue in order regardless of releaser).
TEST_F(DataplaneTest, ExclusiveWaitsForAllSharedHolders) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kShared, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 2, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 3, client_->node()));
  // Out-of-order shared release (txn 2 first): commutative, no grant yet.
  Send(MakeRelease(1, LockMode::kShared, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(3));
  Send(MakeRelease(1, LockMode::kShared, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(3));
}

// Release case Exclusive -> Exclusive: next exclusive granted, exactly one.
TEST_F(DataplaneTest, ReleaseExclusiveGrantsNextExclusive) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 3, client_->node()));
  client_->Clear();
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  const auto grants = client_->Grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn_id, 2u);
}

// Release case Exclusive -> Shared: the resubmit chain grants every leading
// shared request and stops at the next exclusive.
TEST_F(DataplaneTest, ReleaseExclusiveGrantsSharedBatch) {
  Install(1, 16);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  for (TxnId txn = 2; txn <= 4; ++txn) {
    Send(MakeAcquire(1, LockMode::kShared, txn, client_->node()));
  }
  Send(MakeAcquire(1, LockMode::kExclusive, 5, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 6, client_->node()));
  client_->Clear();
  const std::uint64_t resubmits_before = switch_->resubmits();
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  const auto grants = client_->Grants();
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(grants[0].txn_id, 2u);
  EXPECT_EQ(grants[1].txn_id, 3u);
  EXPECT_EQ(grants[2].txn_id, 4u);
  EXPECT_FALSE(client_->HasGrantFor(5));
  EXPECT_FALSE(client_->HasGrantFor(6));
  // One resubmit to inspect the head plus one per extra shared grant.
  EXPECT_GE(switch_->resubmits() - resubmits_before, 3u);
}

// FCFS: grants follow enqueue order across a long mixed sequence.
TEST_F(DataplaneTest, FcfsGrantOrder) {
  Install(1, 32);
  // E0, then S1..S3, then E4, then S5.
  Send(MakeAcquire(1, LockMode::kExclusive, 0, client_->node()));
  for (TxnId txn = 1; txn <= 3; ++txn) {
    Send(MakeAcquire(1, LockMode::kShared, txn, client_->node()));
  }
  Send(MakeAcquire(1, LockMode::kExclusive, 4, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 5, client_->node()));

  std::vector<TxnId> grant_order{0};
  client_->Clear();
  Send(MakeRelease(1, LockMode::kExclusive, 0, client_->node()));  // S1-3.
  for (const auto& g : client_->Grants()) grant_order.push_back(g.txn_id);
  client_->Clear();
  for (TxnId txn = 1; txn <= 3; ++txn) {
    Send(MakeRelease(1, LockMode::kShared, txn, client_->node()));
  }
  for (const auto& g : client_->Grants()) grant_order.push_back(g.txn_id);
  client_->Clear();
  Send(MakeRelease(1, LockMode::kExclusive, 4, client_->node()));
  for (const auto& g : client_->Grants()) grant_order.push_back(g.txn_id);

  EXPECT_EQ(grant_order, (std::vector<TxnId>{0, 1, 2, 3, 4, 5}));
}

// The circular region wraps: run more traffic than the region size.
TEST_F(DataplaneTest, CircularRegionWrapAround) {
  Install(1, 4);
  for (TxnId txn = 0; txn < 100; ++txn) {
    Send(MakeAcquire(1, LockMode::kExclusive, txn, client_->node()));
    ASSERT_TRUE(client_->HasGrantFor(txn)) << txn;
    Send(MakeRelease(1, LockMode::kExclusive, txn, client_->node()));
  }
  EXPECT_EQ(switch_->stats().grants, 100u);
}

// Wrap with queued waiters crossing the boundary.
TEST_F(DataplaneTest, WrapWithWaiters) {
  Install(1, 3);
  // Fill: grant 0, queue 1, 2.
  for (TxnId txn = 0; txn < 3; ++txn) {
    Send(MakeAcquire(1, LockMode::kExclusive, txn, client_->node()));
  }
  for (TxnId txn = 0; txn < 3; ++txn) {
    ASSERT_TRUE(client_->HasGrantFor(txn));
    Send(MakeRelease(1, LockMode::kExclusive, txn, client_->node()));
    // Freed slot is immediately reusable by the next acquire.
    Send(MakeAcquire(1, LockMode::kExclusive, 10 + txn, client_->node()));
  }
  for (TxnId txn = 10; txn < 13; ++txn) {
    Send(MakeRelease(1, LockMode::kExclusive, txn, client_->node()));
  }
  EXPECT_EQ(switch_->stats().grants, 6u);
}

// Requests for locks the switch does not own are forwarded to the server.
TEST_F(DataplaneTest, ForwardsUnownedLocks) {
  switch_->SetHomeServer(7, server_->node());
  Send(MakeAcquire(7, LockMode::kExclusive, 1, client_->node()));
  ASSERT_EQ(server_->received().size(), 1u);
  EXPECT_EQ(server_->received()[0].op, LockOp::kAcquire);
  EXPECT_TRUE(server_->received()[0].flags & kFlagServerOwned);
  EXPECT_EQ(switch_->stats().forwarded_unowned, 1u);
}

TEST_F(DataplaneTest, DefaultRouteUsedWithoutEntry) {
  switch_->SetDefaultRoute([this](LockId) { return server_->node(); });
  Send(MakeAcquire(99, LockMode::kShared, 1, client_->node()));
  ASSERT_EQ(server_->received().size(), 1u);
}

TEST_F(DataplaneTest, StaleReleaseIsDropped) {
  Install(1, 8);
  Send(MakeRelease(1, LockMode::kExclusive, 42, client_->node()));
  EXPECT_EQ(switch_->stats().stale_releases, 1u);
  EXPECT_EQ(switch_->stats().releases, 0u);
}

// A network-duplicated RELEASE copy (identical header, same nonce) must be
// dropped by the dedup filter: the dequeue is a blind head pop, so a second
// application would evict the next waiter's entry.
TEST_F(DataplaneTest, DuplicatedReleaseCopyIsDropped) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 3, client_->node()));
  const LockHeader release =
      MakeRelease(1, LockMode::kExclusive, 1, client_->node());
  Send(release);
  EXPECT_TRUE(client_->HasGrantFor(2));
  // The retransmitted copy must NOT blind-pop txn 2's entry.
  Send(release);
  EXPECT_FALSE(client_->HasGrantFor(3));
  EXPECT_EQ(switch_->stats().duplicate_releases, 1u);
  // A second *logical* release (fresh nonce) does pop.
  Send(MakeRelease(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(3));
}

// A release from a transaction that no longer holds the lock (its entry was
// lease-force-released and the head re-granted to someone else) must not
// blind-pop the current holder's entry. The validated dequeue compares the
// head's mode — and, for exclusive, transaction — against the release.
TEST_F(DataplaneTest, MismatchedExclusiveReleaseIsDropped) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  // Txn 99 never held the lock: its release (fresh nonce, so the dedup
  // filter passes it) must not pop txn 1's entry and grant txn 2.
  Send(MakeRelease(1, LockMode::kExclusive, 99, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  EXPECT_EQ(switch_->stats().mismatched_releases, 1u);
  EXPECT_EQ(switch_->stats().releases, 0u);
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

// Mode mismatch: an exclusive release while the head is a shared holder is
// from a reclaimed entry, not the current hold.
TEST_F(DataplaneTest, WrongModeReleaseIsDropped) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kShared, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  EXPECT_EQ(switch_->stats().mismatched_releases, 1u);
  Send(MakeRelease(1, LockMode::kShared, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

// A failed switch performs no processing at all: the control plane's lease
// polling keeps ticking during an outage, and a sweep of the dead registers
// would cascade-grant from the stale queue while a backup serves the same
// locks — double-granting the lock.
TEST_F(DataplaneTest, FailedSwitchLeaseSweepIsNoOp) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  switch_->Fail();
  sim_.RunUntil(sim_.now() + 10 * kMillisecond);
  client_->Clear();
  switch_->ClearExpired(/*lease=*/5 * kMillisecond);
  sim_.Run();
  EXPECT_TRUE(client_->Grants().empty());
  EXPECT_EQ(switch_->stats().releases, 0u);
}

// Every grant carries a fresh per-instance nonce in aux, so a client can
// tell a duplicated copy of one grant (same nonce — drop) from the grant of
// a second queue entry created by a retransmitted acquire (fresh nonce —
// ghost-release it).
TEST_F(DataplaneTest, GrantsCarryDistinctInstanceNonces) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  // Retransmitted acquire: a second queue entry for the same txn.
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  const auto grants = client_->Grants();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].txn_id, 1u);
  EXPECT_EQ(grants[1].txn_id, 1u);
  EXPECT_NE(grants[0].aux, grants[1].aux);
  EXPECT_NE(GrantFingerprint(grants[0], switch_->node()),
            GrantFingerprint(grants[1], switch_->node()));
}

TEST_F(DataplaneTest, FailedSwitchDropsPackets) {
  Install(1, 8);
  switch_->Fail();
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(1));
  EXPECT_EQ(switch_->stats().dropped_while_failed, 1u);
}

TEST_F(DataplaneTest, RestartLosesStateButServesAgain) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  switch_->Fail();
  switch_->Restart();
  EXPECT_FALSE(switch_->IsInstalled(1));
  // Reinstall (control-plane recovery) and serve.
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(DataplaneTest, LeaseExpiryForcesReleaseAndUnblocks) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  // Advance past the lease; the control plane clears the expired holder.
  sim_.RunUntil(sim_.now() + 10 * kMillisecond);
  switch_->ClearExpired(/*lease=*/5 * kMillisecond);
  sim_.Run();
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(DataplaneTest, LeaseKeepsFreshEntries) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  switch_->ClearExpired(/*lease=*/5 * kMillisecond);
  sim_.Run();
  // Holder is fresh: a second request must still wait.
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
}

TEST_F(DataplaneTest, PausedLockForwardsBufferOnly) {
  Install(1, 8);
  switch_->PauseLock(1, true);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  ASSERT_EQ(server_->received().size(), 1u);
  EXPECT_TRUE(server_->received()[0].flags & kFlagBufferOnly);
  EXPECT_TRUE(switch_->QueueEmpty(1));
}

TEST_F(DataplaneTest, RemoveLockRequiresDrain) {
  Install(1, 8);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_FALSE(switch_->QueueEmpty(1));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(switch_->QueueEmpty(1));
  switch_->RemoveLock(1);
  EXPECT_FALSE(switch_->IsInstalled(1));
}

// Grant observer fires for every grant with correct attribution.
TEST_F(DataplaneTest, GrantObserverSeesEveryGrant) {
  Install(1, 8);
  std::vector<std::pair<TxnId, LockMode>> observed;
  switch_->set_grant_observer(
      [&](LockId lock, TxnId txn, LockMode mode, NodeId) {
        EXPECT_EQ(lock, 1u);
        observed.emplace_back(txn, mode);
      });
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 2, client_->node()));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0].first, 1u);
  EXPECT_EQ(observed[1].first, 2u);
  EXPECT_EQ(observed[1].second, LockMode::kShared);
}

// Multiple independent locks do not interfere.
TEST_F(DataplaneTest, IndependentLocksIsolated) {
  Install(1, 4);
  Install(2, 4);
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(2, LockMode::kExclusive, 2, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(1));
  EXPECT_TRUE(client_->HasGrantFor(2));
  Send(MakeAcquire(2, LockMode::kExclusive, 3, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(3));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(3));  // Lock 1's release can't grant 2's.
}

// Parameterized sweep: every interleaving of 2 shared + 1 exclusive arrival
// orders preserves mutual exclusion and grants everyone exactly once.
class DataplaneOrderTest : public DataplaneTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(DataplaneOrderTest, AllArrivalOrdersDrainFully) {
  Install(1, 8);
  // The three orderings of {S,S,E} by parameter.
  const int p = GetParam();
  std::vector<std::pair<TxnId, LockMode>> arrivals;
  switch (p) {
    case 0:
      arrivals = {{1, LockMode::kShared}, {2, LockMode::kShared},
                  {3, LockMode::kExclusive}};
      break;
    case 1:
      arrivals = {{1, LockMode::kShared}, {3, LockMode::kExclusive},
                  {2, LockMode::kShared}};
      break;
    default:
      arrivals = {{3, LockMode::kExclusive}, {1, LockMode::kShared},
                  {2, LockMode::kShared}};
      break;
  }
  for (const auto& [txn, mode] : arrivals) {
    Send(MakeAcquire(1, mode, txn, client_->node()));
  }
  // Release in grant order until everyone has been granted and released.
  std::vector<TxnId> released;
  for (int rounds = 0; rounds < 10 && released.size() < 3; ++rounds) {
    for (const auto& g : client_->Grants()) {
      if (std::find(released.begin(), released.end(), g.txn_id) !=
          released.end()) {
        continue;
      }
      released.push_back(g.txn_id);
      Send(MakeRelease(1, g.mode, g.txn_id, client_->node()));
    }
  }
  EXPECT_EQ(released.size(), 3u);
  EXPECT_TRUE(switch_->QueueEmpty(1));
}

INSTANTIATE_TEST_SUITE_P(ArrivalOrders, DataplaneOrderTest,
                         ::testing::Values(0, 1, 2));

// SharedQueue mapping: indices land in the right arrays and wrap helper is
// exact at region edges.
TEST(SharedQueueTest, IndexMappingAcrossArrays) {
  Pipeline pipeline(12);
  SharedQueue queue(pipeline, /*first_stage=*/2, /*capacity=*/100,
                    /*array_size=*/32);
  EXPECT_EQ(queue.num_arrays(), 4u);  // 32+32+32+4.
  for (std::uint32_t i : {0u, 31u, 32u, 63u, 64u, 99u}) {
    QueueSlot slot;
    slot.txn_id = i;
    queue.ControlAt(i) = slot;
  }
  for (std::uint32_t i : {0u, 31u, 32u, 63u, 64u, 99u}) {
    EXPECT_EQ(queue.ControlAt(i).txn_id, i);
  }
}

TEST(SharedQueueTest, NextWrapsAtRegionBoundary) {
  const LockBounds bounds{10, 14};
  EXPECT_EQ(SharedQueue::Next(10, bounds), 11u);
  EXPECT_EQ(SharedQueue::Next(13, bounds), 10u);
}

TEST(SharedQueueTest, DataPlaneAccessCountsAgainstOwningArrayOnly) {
  Pipeline pipeline(12);
  SharedQueue queue(pipeline, 2, 64, 16);
  PacketPass pass = pipeline.BeginPass();
  QueueSlot slot;
  slot.txn_id = 7;
  queue.Write(pass, 0, slot);    // Array 0.
  queue.Read(pass, 20);          // Array 1: distinct array, same pass: OK.
  pipeline.Resubmit(pass);
  EXPECT_EQ(queue.Read(pass, 0).txn_id, 7u);  // Array 0 again after resubmit.
}

// Regression tests for the InstallLock priority split. The old split used
// base = max(1, slots / p) for every class, which dropped the remainder
// (10 slots over 4 classes installed only 8) and silently inflated the
// total when slots < p. The split must sum to max(slots, p) with class
// sizes differing by at most one, remainder to the highest priorities.
class PrioritySplitTest : public ::testing::Test {
 protected:
  PrioritySplitTest() : net_(sim_, /*latency=*/1000) {}

  std::vector<std::uint32_t> InstallAndSplit(std::uint8_t priorities,
                                             std::uint32_t slots) {
    LockSwitchConfig config;
    config.queue_capacity = 256;
    config.array_size = 64;
    config.max_locks = 8;
    config.num_priorities = priorities;
    LockSwitch sw(net_, config);
    PacketCatcher server(net_);
    EXPECT_TRUE(sw.InstallLock(/*lock=*/1, server.node(), slots));
    const SwitchLockEntry* entry = sw.table().Find(1);
    EXPECT_NE(entry, nullptr);
    std::vector<std::uint32_t> sizes;
    for (const LockBounds& region : entry->regions) {
      sizes.push_back(region.size());
    }
    return sizes;
  }

  Simulator sim_;
  Network net_;
};

TEST_F(PrioritySplitTest, RemainderGoesToHighestPriorities) {
  // 10 over 4: 3+3+2+2, not the old 2+2+2+2.
  EXPECT_EQ(InstallAndSplit(4, 10),
            (std::vector<std::uint32_t>{3, 3, 2, 2}));
}

TEST_F(PrioritySplitTest, EvenSplitUnchanged) {
  EXPECT_EQ(InstallAndSplit(3, 30),
            (std::vector<std::uint32_t>{10, 10, 10}));
}

TEST_F(PrioritySplitTest, SumsToRequestedSlots) {
  for (const std::uint32_t slots : {5u, 7u, 11u, 13u, 64u}) {
    for (const std::uint8_t p : {2, 3, 4}) {
      const auto sizes = InstallAndSplit(p, slots);
      ASSERT_EQ(sizes.size(), p);
      std::uint32_t sum = 0;
      std::uint32_t lo = sizes[0], hi = sizes[0];
      for (const std::uint32_t s : sizes) {
        sum += s;
        lo = std::min(lo, s);
        hi = std::max(hi, s);
      }
      EXPECT_EQ(sum, std::max<std::uint32_t>(slots, p))
          << "slots=" << slots << " p=" << static_cast<int>(p);
      EXPECT_LE(hi - lo, 1u) << "slots=" << slots
                             << " p=" << static_cast<int>(p);
      // Sizes are non-increasing: remainder lands on high priorities.
      for (std::size_t i = 1; i < sizes.size(); ++i) {
        EXPECT_LE(sizes[i], sizes[i - 1]);
      }
    }
  }
}

TEST_F(PrioritySplitTest, FewerSlotsThanClassesGetsOneEach) {
  EXPECT_EQ(InstallAndSplit(4, 2),
            (std::vector<std::uint32_t>{1, 1, 1, 1}));
}

TEST_F(PrioritySplitTest, DefaultPathSingleRegionExact) {
  EXPECT_EQ(InstallAndSplit(1, 10), (std::vector<std::uint32_t>{10}));
}

}  // namespace
}  // namespace netlock
