// Multi-rack scale-out tests: LockDirectory partitioning, sharded session
// routing, per-rack observability labels, cross-rack re-homing under live
// traffic (checked by the LockOracle), and determinism of the sharded
// testbed.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/sharding.h"
#include "harness/experiment.h"
#include "harness/testbed.h"
#include "testing/lock_oracle.h"

namespace netlock {
namespace {

using testing::LockOracle;
using testing::OracleSession;

// --- LockDirectory ---

TEST(LockDirectoryTest, HashPartitionIsDeterministicAndBalanced) {
  constexpr int kRacks = 4;
  constexpr LockId kLocks = 10'000;
  LockDirectory directory(kRacks);
  std::vector<int> per_rack(kRacks, 0);
  for (LockId lock = 0; lock < kLocks; ++lock) {
    const int rack = directory.RackFor(lock);
    ASSERT_GE(rack, 0);
    ASSERT_LT(rack, kRacks);
    ASSERT_EQ(rack, LockDirectory::HashRack(lock, kRacks));  // Pure.
    ASSERT_EQ(rack, directory.RackFor(lock));  // Stable across calls.
    ++per_rack[rack];
  }
  // A good hash keeps every rack within a reasonable band of the
  // 2500-lock fair share.
  for (int r = 0; r < kRacks; ++r) {
    EXPECT_GT(per_rack[r], kLocks / kRacks / 2) << "rack " << r;
    EXPECT_LT(per_rack[r], kLocks / kRacks * 2) << "rack " << r;
  }
}

TEST(LockDirectoryTest, OverridesTakePrecedenceAndClear) {
  LockDirectory directory(4);
  const LockId lock = 77;
  const int home = directory.RackFor(lock);
  const int other = (home + 1) % 4;
  EXPECT_FALSE(directory.HasOverride(lock));

  directory.SetOverride(lock, other);
  EXPECT_TRUE(directory.HasOverride(lock));
  EXPECT_EQ(directory.RackFor(lock), other);
  EXPECT_EQ(directory.num_overrides(), 1u);
  // Other locks keep their hash homes.
  EXPECT_EQ(directory.RackFor(lock + 1),
            LockDirectory::HashRack(lock + 1, 4));

  directory.ClearOverride(lock);
  EXPECT_FALSE(directory.HasOverride(lock));
  EXPECT_EQ(directory.RackFor(lock), home);
}

TEST(LockDirectoryDeathTest, OverrideRackOutOfRangeIsChecked) {
  LockDirectory directory(2);
  EXPECT_DEATH(directory.SetOverride(1, 2), "rack");
}

// --- Sharded testbed harness ---

TestbedConfig ShardedConfig(int num_racks, SimContext* context) {
  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.context = context;
  config.client_machines = 4;
  config.sessions_per_machine = 2;
  config.lock_servers = 1;
  config.num_racks = num_racks;
  config.txn_config.think_time = 5 * kMicrosecond;
  return config;
}

TEST(ShardedTestbedTest, TrafficSpreadsAcrossRacksAndStaysSafe) {
  SimContext context;
  TestbedConfig config = ShardedConfig(/*num_racks=*/2, &context);
  MicroConfig micro;
  micro.num_locks = 64;
  micro.locks_per_txn = 2;
  micro.shared_fraction = 0.2;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<OracleSession>(std::move(inner), *oracle);
  };
  Testbed testbed(config);
  testbed.sharded().InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));
  const RunMetrics metrics =
      testbed.Run(/*warmup=*/10 * kMillisecond, /*measure=*/50 * kMillisecond);
  EXPECT_EQ(oracle->violations(), 0u);
  EXPECT_GT(metrics.txn_commits, 100u);
  // Both racks took part: with 64 hashed locks neither side is empty.
  EXPECT_GT(testbed.sharded().SwitchGrants(0) +
                testbed.sharded().ServerGrants(0),
            0u);
  EXPECT_GT(testbed.sharded().SwitchGrants(1) +
                testbed.sharded().ServerGrants(1),
            0u);
  // Aggregate accounting is the sum of the per-rack counters.
  EXPECT_EQ(testbed.sharded().SwitchGrants(),
            testbed.sharded().SwitchGrants(0) +
                testbed.sharded().SwitchGrants(1));
  testbed.StopEngines();
}

TEST(ShardedTestbedTest, PerRackMetricsAndSingleRackStaysUnprefixed) {
  // Multi-rack: every rack's instruments resolve under its own prefix.
  SimContext multi;
  {
    TestbedConfig config = ShardedConfig(/*num_racks=*/2, &multi);
    MicroConfig micro;
    micro.num_locks = 64;
    config.workload_factory = MicroFactory(micro);
    Testbed testbed(config);
    testbed.sharded().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    testbed.Run(5 * kMillisecond, 20 * kMillisecond);
    testbed.StopEngines();
    EXPECT_GT(
        multi.metrics().Counter("rack0.dataplane.acquires_granted").value(),
        0u);
    EXPECT_GT(
        multi.metrics().Counter("rack1.dataplane.acquires_granted").value(),
        0u);
    EXPECT_EQ(multi.metrics().Counter("dataplane.acquires_granted").value(),
              0u);
  }
  // Single-rack: the historical unprefixed names, and no rack labels.
  SimContext single;
  {
    TestbedConfig config = ShardedConfig(/*num_racks=*/1, &single);
    MicroConfig micro;
    micro.num_locks = 64;
    config.workload_factory = MicroFactory(micro);
    Testbed testbed(config);
    testbed.sharded().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    testbed.Run(5 * kMillisecond, 20 * kMillisecond);
    testbed.StopEngines();
    EXPECT_GT(
        single.metrics().Counter("dataplane.acquires_granted").value(), 0u);
    EXPECT_EQ(
        single.metrics().Counter("rack0.dataplane.acquires_granted").value(),
        0u);
  }
}

TEST(ShardedTestbedTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    SimContext context;
    TestbedConfig config = ShardedConfig(/*num_racks=*/4, &context);
    config.seed = seed;
    MicroConfig micro;
    micro.num_locks = 256;
    config.workload_factory = MicroFactory(micro);
    Testbed testbed(config);
    testbed.sharded().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
    const RunMetrics metrics =
        testbed.Run(5 * kMillisecond, 20 * kMillisecond);
    testbed.StopEngines();
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                      std::uint64_t>(
        metrics.txn_commits, metrics.lock_grants, metrics.switch_grants,
        metrics.server_grants);
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));  // The seed actually matters.
}

// --- Re-homing under live traffic ---

TEST(RehomeTest, RehomeUnderLoadPreservesMutualExclusion) {
  SimContext context;
  TestbedConfig config = ShardedConfig(/*num_racks=*/2, &context);
  MicroConfig micro;
  micro.num_locks = 16;  // Heavy contention so the moved lock is busy.
  micro.locks_per_txn = 2;
  config.workload_factory = MicroFactory(micro);
  auto oracle = std::make_shared<LockOracle>();
  config.session_wrapper = [oracle](std::unique_ptr<LockSession> inner) {
    return std::make_unique<OracleSession>(std::move(inner), *oracle);
  };
  Testbed testbed(config);
  ShardedNetLock& sharded = testbed.sharded();
  sharded.InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  testbed.StartEngines();
  testbed.sim().RunUntil(testbed.sim().now() + 10 * kMillisecond);

  // Re-home every fourth lock to the other rack, mid-traffic.
  int done_count = 0;
  for (LockId lock = 0; lock < micro.num_locks; lock += 4) {
    const int target = 1 - sharded.directory().RackFor(lock);
    sharded.RehomeLock(lock, target, [&done_count]() { ++done_count; });
  }
  testbed.sim().RunUntil(testbed.sim().now() + 60 * kMillisecond);
  EXPECT_EQ(done_count, 4);
  EXPECT_EQ(sharded.rehomes_completed(), 4u);
  for (LockId lock = 0; lock < micro.num_locks; lock += 4) {
    EXPECT_TRUE(sharded.directory().HasOverride(lock)) << "lock " << lock;
  }

  // Traffic keeps flowing after the moves and was safe throughout.
  testbed.SetRecording(true);
  testbed.sim().RunUntil(testbed.sim().now() + 20 * kMillisecond);
  testbed.SetRecording(false);
  const RunMetrics after = testbed.Collect(20 * kMillisecond);
  EXPECT_GT(after.txn_commits, 50u);
  EXPECT_EQ(oracle->violations(), 0u);
  EXPECT_EQ(oracle->fifo_violations(), 0u);
  testbed.StopEngines();
}

TEST(RehomeTest, RehomeToSameRackOrDuplicateIsANoOp) {
  SimContext context;
  TestbedConfig config = ShardedConfig(/*num_racks=*/2, &context);
  MicroConfig micro;
  micro.num_locks = 16;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  ShardedNetLock& sharded = testbed.sharded();
  sharded.InstallKnapsack(
      UniformMicroDemands(micro, testbed.num_engines()));

  const LockId lock = 3;
  const int home = sharded.directory().RackFor(lock);
  bool same_rack_done = false;
  sharded.RehomeLock(lock, home, [&]() { same_rack_done = true; });
  EXPECT_TRUE(same_rack_done);  // Immediate: nothing to move.
  EXPECT_FALSE(sharded.directory().HasOverride(lock));

  testbed.StartEngines();
  testbed.sim().RunUntil(testbed.sim().now() + 5 * kMillisecond);
  int done_count = 0;
  sharded.RehomeLock(lock, 1 - home, [&]() { ++done_count; });
  // A second request while the first drains completes immediately
  // without starting a competing migration.
  sharded.RehomeLock(lock, 1 - home, [&]() { ++done_count; });
  EXPECT_GE(done_count, 1);
  testbed.sim().RunUntil(testbed.sim().now() + 40 * kMillisecond);
  EXPECT_EQ(done_count, 2);
  EXPECT_EQ(sharded.rehomes_completed(), 1u);
  testbed.StopEngines();
}

TEST(ShardedTestbedTest, ProfileAndInstallCoversEveryRack) {
  SimContext context;
  TestbedConfig config = ShardedConfig(/*num_racks=*/2, &context);
  MicroConfig micro;
  micro.num_locks = 128;
  config.workload_factory = MicroFactory(micro);
  Testbed testbed(config);
  const std::vector<LockDemand> demands =
      ProfileAndInstall(testbed, config.switch_config.queue_capacity);
  EXPECT_FALSE(demands.empty());
  const RunMetrics metrics = testbed.Run(5 * kMillisecond, 30 * kMillisecond);
  EXPECT_GT(metrics.txn_commits, 100u);
  // The profiled install put hot locks on both switches.
  EXPECT_GT(testbed.sharded().SwitchGrants(0), 0u);
  EXPECT_GT(testbed.sharded().SwitchGrants(1), 0u);
  testbed.StopEngines();
}

}  // namespace
}  // namespace netlock
