// Tests for the metrics registry: instrument identity, snapshot format,
// reset semantics, and the gauge high-water mark.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/metrics.h"

namespace netlock {
namespace {

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry registry;
  MetricCounter& c = registry.Counter("a.events");
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsRegistryTest, SameNameSharesInstrument) {
  // Two components resolving the same name must share one instrument so
  // snapshots report rack-wide totals.
  MetricsRegistry registry;
  MetricCounter& a = registry.Counter("server.grants");
  MetricCounter& b = registry.Counter("server.grants");
  EXPECT_EQ(&a, &b);
  a.Inc();
  b.Inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(registry.num_instruments(), 1u);
}

TEST(MetricsRegistryTest, AddressesStableAcrossInsertions) {
  MetricsRegistry registry;
  MetricCounter& first = registry.Counter("m.a");
  // Insert enough instruments to force any rehash/reallocation a
  // non-node-based container would do.
  for (int i = 0; i < 1000; ++i) {
    registry.Counter("m.bulk." + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.Counter("m.a"));
  first.Inc();
  EXPECT_EQ(registry.Counter("m.a").value(), 1u);
}

TEST(MetricsRegistryTest, GaugeTracksHighWater) {
  MetricsRegistry registry;
  MetricGauge& g = registry.Gauge("q.depth");
  g.Set(5);
  g.Set(17);
  g.Set(3);
  EXPECT_EQ(g.value(), 3u);
  EXPECT_EQ(g.high_water(), 17u);
  g.Add(-2);
  EXPECT_EQ(g.value(), 1u);
  g.Add(30);
  EXPECT_EQ(g.value(), 31u);
  EXPECT_EQ(g.high_water(), 31u);
}

TEST(MetricsRegistryTest, SnapshotSortedWithGaugeHwm) {
  MetricsRegistry registry;
  registry.Counter("z.last").Inc(9);
  registry.Counter("a.first").Inc(1);
  registry.Gauge("m.depth").Set(4);
  const std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 4u);  // 2 counters + gauge + gauge .hwm.
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const MetricSample& x, const MetricSample& y) {
        return x.name < y.name;
      }));
  auto find = [&](const std::string& name) -> std::uint64_t {
    for (const MetricSample& s : snap) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "missing sample " << name;
    return 0;
  };
  EXPECT_EQ(find("a.first"), 1u);
  EXPECT_EQ(find("z.last"), 9u);
  EXPECT_EQ(find("m.depth"), 4u);
  EXPECT_EQ(find("m.depth.hwm"), 4u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsInstruments) {
  MetricsRegistry registry;
  MetricCounter& c = registry.Counter("x.count");
  MetricGauge& g = registry.Gauge("x.depth");
  c.Inc(7);
  g.Set(9);
  registry.Reset();
  EXPECT_EQ(registry.num_instruments(), 2u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.high_water(), 0u);
  // The addresses survive reset: instruments resolved before Reset keep
  // reporting into the registry.
  c.Inc();
  EXPECT_EQ(registry.Counter("x.count").value(), 1u);
}

TEST(MetricsRegistryTest, GaugeAddClampsAtZero) {
  // Regression: a negative delta larger than the current value used to
  // wrap to a huge uint64 and poison the high-water mark; it must clamp
  // at zero instead.
  MetricsRegistry registry;
  MetricGauge& g = registry.Gauge("q.underflow");
  g.Set(3);
  g.Add(-10);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.high_water(), 3u);
  // Subsequent sets still track the high-water mark correctly.
  g.Set(5);
  EXPECT_EQ(g.high_water(), 5u);
  // The INT64_MIN edge (negation would overflow a signed 64-bit).
  g.Add(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.high_water(), 5u);
}

TEST(MetricsRegistryTest, ResetClearsHighWaterAndKeepsReferences) {
  MetricsRegistry registry;
  MetricCounter& c = registry.Counter("r.count");
  MetricGauge& g = registry.Gauge("r.depth");
  c.Inc(100);
  g.Set(50);
  g.Set(2);
  ASSERT_EQ(g.high_water(), 50u);
  registry.Reset();
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.high_water(), 0u);
  // Instruments resolved before Reset stay valid and keep reporting into
  // the same registry entries (components cache the address once).
  c.Inc(3);
  g.Set(7);
  EXPECT_EQ(&c, &registry.Counter("r.count"));
  EXPECT_EQ(&g, &registry.Gauge("r.depth"));
  EXPECT_EQ(registry.Counter("r.count").value(), 3u);
  EXPECT_EQ(registry.Gauge("r.depth").value(), 7u);
  EXPECT_EQ(registry.Gauge("r.depth").high_water(), 7u);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace netlock
