// Tests for the common substrate: PRNG determinism and distributions,
// Zipf sampling, latency statistics, and time series.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"

namespace netlock {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // Within 10% of expectation.
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(ZipfTest, UniformWhenAlphaZero) {
  ZipfSampler zipf(100, 0.0);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 100, n / 200);
}

TEST(ZipfTest, SkewConcentratesOnHead) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(2);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // With alpha=1.2 the top-10 of 1000 get well over a third of the mass.
  EXPECT_GT(head, n / 3);
}

TEST(ZipfTest, RankFrequencyRatioMatchesAlpha) {
  const double alpha = 1.0;
  ZipfSampler zipf(10000, alpha);
  Rng rng(3);
  std::vector<int> counts(10000, 0);
  const int n = 2000000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  // P(rank 1) / P(rank 8) should be ~= 8^alpha.
  const double ratio =
      static_cast<double>(counts[0]) / std::max(1, counts[7]);
  EXPECT_NEAR(ratio, std::pow(8.0, alpha), 2.0);
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.5);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

// Full-distribution check against the analytic pmf p(k) = (k+1)^-a / H_n(a)
// at alphas covering every code path in the sampler: the alpha == 0 uniform
// shortcut, the |1 - alpha| ~ 1 expm1 branch (0.99), the exact-log branch
// (1.0), and the generic power branch (1.2).
TEST(ZipfTest, EmpiricalPmfMatchesAnalyticAcrossAlphas) {
  constexpr std::uint64_t kRanks = 100;
  constexpr int kSamples = 200000;
  const double alphas[] = {0.0, 0.99, 1.0, 1.2};
  for (const double alpha : alphas) {
    double h = 0.0;
    for (std::uint64_t k = 0; k < kRanks; ++k) {
      h += std::pow(static_cast<double>(k + 1), -alpha);
    }
    ZipfSampler zipf(kRanks, alpha);
    Rng rng(42);
    std::vector<int> counts(kRanks, 0);
    for (int i = 0; i < kSamples; ++i) {
      const std::uint64_t s = zipf.Sample(rng);
      ASSERT_LT(s, kRanks) << "alpha=" << alpha;
      ++counts[s];
    }
    for (std::uint64_t k = 0; k < kRanks; ++k) {
      const double p = std::pow(static_cast<double>(k + 1), -alpha) / h;
      const double emp = static_cast<double>(counts[k]) / kSamples;
      // 5 sigma of the binomial sampling noise plus a small absolute floor
      // for the rejection-free approximation's bias on mid ranks.
      const double tol =
          5.0 * std::sqrt(p * (1.0 - p) / kSamples) + 0.005;
      EXPECT_NEAR(emp, p, tol) << "alpha=" << alpha << " rank=" << k;
    }
  }
}

// The sampler switches from the generic power form of H to a log form at
// alpha == 1; an alpha infinitesimally below 1 takes the expm1 path. The
// two must agree at the seam — a regression here produced wildly skewed
// draws in an earlier sampler.
TEST(ZipfTest, NearAlphaOneSeamIsContinuous) {
  constexpr std::uint64_t kRanks = 1000;
  constexpr int kSamples = 200000;
  ZipfSampler at_one(kRanks, 1.0);
  ZipfSampler near_one(kRanks, 1.0 - 1e-9);
  Rng rng_a(9), rng_b(9);
  int head_a = 0, head_b = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (at_one.Sample(rng_a) < 10) ++head_a;
    if (near_one.Sample(rng_b) < 10) ++head_b;
  }
  // Identical rng streams and (numerically) identical distributions: the
  // top-10 mass must agree to well under a percent.
  EXPECT_NEAR(static_cast<double>(head_a) / kSamples,
              static_cast<double>(head_b) / kSamples, 0.005);
}

TEST(LatencyRecorderTest, ExactPercentiles) {
  LatencyRecorder rec;
  for (SimTime v = 1; v <= 100; ++v) rec.Record(v);
  EXPECT_EQ(rec.Median(), 50u);
  EXPECT_EQ(rec.P99(), 99u);
  EXPECT_EQ(rec.Percentile(1.0), 100u);
  EXPECT_EQ(rec.Min(), 1u);
  EXPECT_EQ(rec.Max(), 100u);
  EXPECT_DOUBLE_EQ(rec.Mean(), 50.5);
}

TEST(LatencyRecorderTest, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Median(), 0u);
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_TRUE(rec.Cdf().empty());
}

TEST(LatencyRecorderTest, RecordAfterQueryResorts) {
  LatencyRecorder rec;
  rec.Record(10);
  EXPECT_EQ(rec.Median(), 10u);
  rec.Record(5);
  rec.Record(1);
  EXPECT_EQ(rec.Median(), 5u);
}

TEST(LatencyRecorderTest, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.Record(1);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Max(), 3u);
}

TEST(LatencyRecorderTest, CdfIsMonotone) {
  LatencyRecorder rec;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) rec.Record(rng.NextBounded(10000));
  const auto cdf = rec.Cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(TimeSeriesTest, BucketsByTime) {
  TimeSeries ts(100 * kMillisecond);
  ts.Record(50 * kMillisecond);
  ts.Record(150 * kMillisecond);
  ts.Record(199 * kMillisecond);
  EXPECT_EQ(ts.BucketCount(0), 1u);
  EXPECT_EQ(ts.BucketCount(1), 2u);
  EXPECT_EQ(ts.BucketCount(2), 0u);
}

TEST(TimeSeriesTest, RateAndMidpoint) {
  TimeSeries ts(100 * kMillisecond);
  ts.Record(10 * kMillisecond, 5000);
  EXPECT_DOUBLE_EQ(ts.BucketRate(0), 50000.0);  // 5000 / 0.1 s.
  EXPECT_DOUBLE_EQ(ts.BucketTimeSeconds(0), 0.05);
}

TEST(RunMetricsTest, ThroughputComputation) {
  RunMetrics m;
  m.lock_grants = 1'000'000;
  m.txn_commits = 100'000;
  m.duration = kSecond;
  EXPECT_DOUBLE_EQ(m.LockThroughputMrps(), 1.0);
  EXPECT_DOUBLE_EQ(m.TxnThroughputMtps(), 0.1);
}

TEST(FormatNanosTest, Units) {
  EXPECT_EQ(FormatNanos(500), "500ns");
  EXPECT_EQ(FormatNanos(1500), "1.5us");
  EXPECT_EQ(FormatNanos(2 * kMillisecond), "2.00ms");
  EXPECT_EQ(FormatNanos(3 * kSecond), "3.00s");
}

}  // namespace
}  // namespace netlock
