// Proves the real-time lock path is allocation-free in steady state, the
// rt twin of event_alloc_test: after a warmup that grows the flat lock
// table, the slab pool, and the staging buffers to working size, a
// submit -> drain -> grant -> poll -> release loop must perform ZERO global
// operator new/delete calls as long as per-lock queue depth stays within
// the wait queue's inline capacity (4). This is the acceptance gate for the
// flat-table LockEngine and the staged-completion service path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/lock_engine.h"
#include "rt/rt_lock_service.h"
#include "substrate/execution_substrate.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting replacements for the global allocation functions (same
// technique as event_alloc_test). All forms funnel through malloc/free so
// replaced and library-internal paths stay compatible; only the count
// matters.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) -
                                         1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace netlock {
namespace {

/// Counts grants without touching the heap.
struct CountingSink final : public GrantSink {
  void DeliverGrant(LockId, const QueueSlot&) override { ++grants; }
  std::uint64_t grants = 0;
};

// The engine alone: acquire/release with queue depth up to the inline
// capacity (4) across a fixed lock set must never leave the inline slots —
// no slab chunks, no table growth, no heap.
TEST(RtAllocTest, LockEngineSteadyStateDepthFourIsAllocationFree) {
  CountingSink sink;
  LockEngine engine(sink);
  constexpr LockId kLocks = 64;
  constexpr int kDepth = 4;  // == WaitQueue inline capacity.

  TxnId next_txn = 1;
  SimTime now = 0;
  const auto round = [&] {
    for (LockId lock = 1; lock <= kLocks; ++lock) {
      TxnId txns[kDepth];
      for (int d = 0; d < kDepth; ++d) {
        txns[d] = next_txn++;
        QueueSlot slot;
        slot.mode = LockMode::kExclusive;
        slot.txn_id = txns[d];
        engine.Acquire(lock, slot, ++now);
      }
      for (int d = 0; d < kDepth; ++d) {
        EXPECT_EQ(engine.Release(lock, LockMode::kExclusive, txns[d],
                                 /*lease_forced=*/false, ++now),
                  ReleaseOutcome::kApplied);
      }
    }
  };

  // Warmup: grows the flat table and state pool to working size.
  for (int r = 0; r < 4; ++r) round();

  const std::uint64_t grants_before = sink.grants;
  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int r = 0; r < 500; ++r) round();
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);

  EXPECT_EQ(news_after - news_before, 0u)
      << "depth-4 acquire/release loop allocated on the heap";
  EXPECT_EQ(sink.grants - grants_before, 500u * kLocks * kDepth);
}

// The whole service hot path — SubmitBatch into the mailbox ring, worker
// drain, engine cascade, staged-completion flush, PollCompletions — in
// steady state, with the worker thread live. Warmup covers both the
// engine's table and the staging buffers' reserved capacity.
TEST(RtAllocTest, RtServiceSteadyStateIsAllocationFree) {
  RtSubstrate substrate;
  rt::RtLockService::Options options;
  options.cores = 1;
  options.num_clients = 1;
  rt::RtLockService service(options, substrate);
  service.Start();

  constexpr int kBatch = 16;
  TxnId next_txn = 1;
  rt::RtRequest reqs[kBatch];
  rt::RtCompletion comps[kBatch];
  const auto round = [&] {
    for (int i = 0; i < kBatch; ++i) {
      reqs[i].op = rt::RtRequest::Op::kAcquire;
      reqs[i].mode = LockMode::kExclusive;
      reqs[i].lock = static_cast<LockId>(1 + i);
      reqs[i].txn = next_txn++;
      reqs[i].client = 0;
    }
    service.SubmitBatch(0, 0, reqs, kBatch);  // cores=1: all map to core 0.
    std::size_t got = 0;
    while (got < kBatch) {
      got += service.PollCompletions(0, comps + got, kBatch - got);
    }
    for (int i = 0; i < kBatch; ++i) {
      reqs[i].op = rt::RtRequest::Op::kRelease;
      reqs[i].lock = comps[i].lock;
      reqs[i].mode = comps[i].mode;
      reqs[i].txn = comps[i].txn;
    }
    service.SubmitBatch(0, 0, reqs, kBatch);
  };

  for (int r = 0; r < 64; ++r) round();
  service.WaitQuiesce();

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int r = 0; r < 500; ++r) round();
  service.WaitQuiesce();
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);

  EXPECT_EQ(news_after - news_before, 0u)
      << "rt submit->grant->poll->release loop allocated on the heap";

  service.Stop();
  const rt::RtLockService::Stats stats = service.TotalStats();
  EXPECT_EQ(stats.grants, static_cast<std::uint64_t>(564) * kBatch);
  EXPECT_EQ(stats.staged_completions, stats.grants);  // All staged path.
  EXPECT_EQ(service.TotalQueueDepth(), 0u);
}

}  // namespace
}  // namespace netlock
