// Tests for the programmable-switch substrate: the register access
// discipline (one access per array per pass, stage ordering) and resubmit
// semantics that Algorithm 2 is built on.
#include <gtest/gtest.h>

#include "switchsim/pipeline.h"

namespace netlock {
namespace {

TEST(PipelineTest, ReadWriteRoundTrip) {
  Pipeline pipeline(12);
  RegisterArray<int> array(pipeline, 0, 8, -1);
  PacketPass pass = pipeline.BeginPass();
  EXPECT_EQ(array.Read(pass, 3), -1);
  PacketPass pass2 = pipeline.BeginPass();
  array.Write(pass2, 3, 42);
  PacketPass pass3 = pipeline.BeginPass();
  EXPECT_EQ(array.Read(pass3, 3), 42);
}

TEST(PipelineTest, SecondAccessSamePassAborts) {
  Pipeline pipeline(12);
  RegisterArray<int> array(pipeline, 0, 8);
  PacketPass pass = pipeline.BeginPass();
  array.Read(pass, 0);
  EXPECT_DEATH(array.Read(pass, 1), "CHECK");
}

TEST(PipelineTest, ReadModifyWriteIsOneAccess) {
  Pipeline pipeline(12);
  RegisterArray<int> array(pipeline, 0, 8);
  PacketPass pass = pipeline.BeginPass();
  const int result =
      array.ReadModifyWrite(pass, 2, [](int& cell) { return ++cell; });
  EXPECT_EQ(result, 1);
  EXPECT_DEATH(array.Read(pass, 2), "CHECK");
}

TEST(PipelineTest, StageOrderEnforced) {
  Pipeline pipeline(12);
  RegisterArray<int> early(pipeline, 1, 4);
  RegisterArray<int> late(pipeline, 5, 4);
  PacketPass pass = pipeline.BeginPass();
  late.Read(pass, 0);
  EXPECT_DEATH(early.Read(pass, 0), "CHECK");
}

TEST(PipelineTest, SameStageDifferentArraysAllowed) {
  Pipeline pipeline(12);
  RegisterArray<int> a(pipeline, 2, 4);
  RegisterArray<int> b(pipeline, 2, 4);
  PacketPass pass = pipeline.BeginPass();
  a.Read(pass, 0);
  b.Read(pass, 0);  // Distinct array in the same stage: fine.
  SUCCEED();
}

TEST(PipelineTest, ResubmitResetsAccessAndStage) {
  Pipeline pipeline(12);
  RegisterArray<int> early(pipeline, 1, 4);
  RegisterArray<int> late(pipeline, 5, 4);
  PacketPass pass = pipeline.BeginPass();
  late.Read(pass, 0);
  pipeline.Resubmit(pass);
  early.Read(pass, 0);  // Fresh pass: earlier stage reachable again.
  late.Read(pass, 0);
  EXPECT_EQ(pass.pass_index(), 1u);
  EXPECT_EQ(pipeline.total_resubmits(), 1u);
}

TEST(PipelineTest, ResubmitBoundEnforced) {
  Pipeline pipeline(12, /*max_resubmits=*/2);
  PacketPass pass = pipeline.BeginPass();
  pipeline.Resubmit(pass);
  pipeline.Resubmit(pass);
  EXPECT_DEATH(pipeline.Resubmit(pass), "CHECK");
}

TEST(PipelineTest, DistinctPassesDoNotInterfere) {
  Pipeline pipeline(12);
  RegisterArray<int> array(pipeline, 0, 4);
  PacketPass p1 = pipeline.BeginPass();
  PacketPass p2 = pipeline.BeginPass();
  array.Read(p1, 0);
  array.Read(p2, 0);  // Different packet: its own single access.
  SUCCEED();
}

TEST(PipelineTest, ControlPlaneAccessUnrestricted) {
  Pipeline pipeline(12);
  RegisterArray<int> array(pipeline, 0, 4);
  PacketPass pass = pipeline.BeginPass();
  array.Read(pass, 0);
  array.ControlWrite(0, 9);       // Control plane bypasses the discipline.
  EXPECT_EQ(array.ControlRead(0), 9);
}

TEST(PipelineTest, OutOfBoundsIndexAborts) {
  Pipeline pipeline(12);
  RegisterArray<int> array(pipeline, 0, 4);
  PacketPass pass = pipeline.BeginPass();
  EXPECT_DEATH(array.Read(pass, 4), "CHECK");
}

TEST(PipelineTest, StageBeyondBudgetAborts) {
  Pipeline pipeline(4);
  EXPECT_DEATH(RegisterArray<int>(pipeline, 4, 8), "CHECK");
}

}  // namespace
}  // namespace netlock
