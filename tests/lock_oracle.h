// LockOracle: a runtime safety checker for lock-manager integration tests.
//
// Observes grant/release events as the *client* sees them (grant at the
// callback, release at the send). This ordering is conservative in the safe
// direction — a grant is observed no earlier than it was issued and a
// release no later than it takes effect — so any overlap the oracle reports
// is a real mutual-exclusion violation.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "client/client.h"
#include "common/check.h"
#include "common/types.h"

namespace netlock::testing {

class LockOracle {
 public:
  void OnGrant(LockId lock, LockMode mode, TxnId txn) {
    Holders& holders = held_[lock];
    if (mode == LockMode::kExclusive) {
      if (!holders.shared.empty() || holders.exclusive != kInvalidTxn) {
        ++violations_;
        return;
      }
      holders.exclusive = txn;
    } else {
      if (holders.exclusive != kInvalidTxn) {
        ++violations_;
        return;
      }
      holders.shared.insert(txn);
    }
    ++grants_;
  }

  void OnRelease(LockId lock, LockMode mode, TxnId txn) {
    const auto it = held_.find(lock);
    if (it == held_.end()) return;
    if (mode == LockMode::kExclusive) {
      if (it->second.exclusive == txn) it->second.exclusive = kInvalidTxn;
    } else {
      it->second.shared.erase(txn);
    }
  }

  std::uint64_t violations() const { return violations_; }
  std::uint64_t grants() const { return grants_; }

  std::size_t CurrentHolders(LockId lock) const {
    const auto it = held_.find(lock);
    if (it == held_.end()) return 0;
    return it->second.shared.size() +
           (it->second.exclusive != kInvalidTxn ? 1 : 0);
  }

 private:
  struct Holders {
    TxnId exclusive = kInvalidTxn;
    std::set<TxnId> shared;
  };

  std::map<LockId, Holders> held_;
  std::uint64_t violations_ = 0;
  std::uint64_t grants_ = 0;
};

/// Session decorator feeding the oracle.
class OracleSession : public LockSession {
 public:
  OracleSession(std::unique_ptr<LockSession> inner, LockOracle& oracle)
      : inner_(std::move(inner)), oracle_(oracle) {}

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override {
    inner_->Acquire(lock, mode, txn, priority,
                    [this, lock, mode, txn, cb = std::move(cb)](
                        AcquireResult result) {
                      if (result == AcquireResult::kGranted) {
                        oracle_.OnGrant(lock, mode, txn);
                      }
                      cb(result);
                    });
  }

  void Release(LockId lock, LockMode mode, TxnId txn) override {
    oracle_.OnRelease(lock, mode, txn);
    inner_->Release(lock, mode, txn);
  }

  NodeId node() const override { return inner_->node(); }

 private:
  std::unique_ptr<LockSession> inner_;
  LockOracle& oracle_;
};

}  // namespace netlock::testing
