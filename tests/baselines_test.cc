// Tests for the baseline lock managers: DSLR's bakery semantics and ticket
// reset, DrTM's CAS/fail-and-retry, NetChain's KV locking with granularity
// coarsening, and the server-only manager.
#include <gtest/gtest.h>

#include "baselines/drtm.h"
#include "baselines/dslr.h"
#include "baselines/netchain.h"
#include "baselines/server_only.h"
#include "test_util.h"

namespace netlock {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : net_(sim_, /*latency=*/2000) {}

  Simulator sim_;
  Network net_;
};

// --- DSLR ---

TEST(DslrPackTest, FieldHelpers) {
  const std::uint64_t w = DslrPack(1, 2, 3, 4);
  EXPECT_EQ(DslrMaxX(w), 1);
  EXPECT_EQ(DslrMaxS(w), 2);
  EXPECT_EQ(DslrNowX(w), 3);
  EXPECT_EQ(DslrNowS(w), 4);
}

class DslrTest : public BaselineTest {
 protected:
  DslrTest() : manager_(net_, /*num_servers=*/2, /*lock_space=*/100) {
    machine_ = std::make_unique<ClientMachine>(net_);
  }

  DslrManager manager_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(DslrTest, ExclusiveGrantsImmediatelyWhenFree) {
  auto session = manager_.CreateSession(*machine_);
  AcquireResult result = AcquireResult::kTimeout;
  session->Acquire(5, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
}

TEST_F(DslrTest, FcfsOrderingAcrossSessions) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  auto s3 = manager_.CreateSession(*machine_);
  std::vector<int> order;
  s1->Acquire(5, LockMode::kExclusive, 1, 0,
              [&](AcquireResult) { order.push_back(1); });
  sim_.RunUntil(50 * kMicrosecond);
  s2->Acquire(5, LockMode::kExclusive, 2, 0,
              [&](AcquireResult) { order.push_back(2); });
  sim_.RunUntil(100 * kMicrosecond);
  s3->Acquire(5, LockMode::kExclusive, 3, 0,
              [&](AcquireResult) { order.push_back(3); });
  sim_.RunUntil(kMillisecond);
  ASSERT_EQ(order.size(), 1u);  // Only the first is granted.
  s1->Release(5, LockMode::kExclusive, 1);
  sim_.RunUntil(2 * kMillisecond);
  s2->Release(5, LockMode::kExclusive, 2);
  sim_.RunUntil(3 * kMillisecond);
  s3->Release(5, LockMode::kExclusive, 3);
  sim_.RunUntil(4 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));  // Bakery FCFS.
}

TEST_F(DslrTest, SharedLocksCoexist) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  int granted = 0;
  s1->Acquire(5, LockMode::kShared, 1, 0,
              [&](AcquireResult) { ++granted; });
  s2->Acquire(5, LockMode::kShared, 2, 0,
              [&](AcquireResult) { ++granted; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(granted, 2);
}

TEST_F(DslrTest, ExclusiveWaitsForSharedHolders) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  bool x_granted = false;
  s1->Acquire(5, LockMode::kShared, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  s2->Acquire(5, LockMode::kExclusive, 2, 0,
              [&](AcquireResult) { x_granted = true; });
  sim_.RunUntil(kMillisecond);
  EXPECT_FALSE(x_granted);
  s1->Release(5, LockMode::kShared, 1);
  sim_.RunUntil(200 * kMillisecond);  // Proportional-wait polling.
  EXPECT_TRUE(x_granted);
}

TEST_F(DslrTest, PollingCostsExtraReads) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  s1->Acquire(5, LockMode::kExclusive, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  bool granted = false;
  s2->Acquire(5, LockMode::kExclusive, 2, 0, [&](AcquireResult r) {
    granted = r == AcquireResult::kGranted;
  });
  sim_.RunUntil(2 * kMillisecond);
  // Holder never releases: the waiter burns polling READs and is never
  // granted (it may eventually report kTimeout and go detached).
  EXPECT_FALSE(granted);
  EXPECT_GT(manager_.total_polls(), 10u);
}

TEST_F(DslrTest, DetachedTicketConsumedAfterTimeout) {
  // A waiter that times out must still consume-and-release its ticket when
  // granted, so tickets behind it make progress.
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  auto s3 = manager_.CreateSession(*machine_);
  s1->Acquire(5, LockMode::kExclusive, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  AcquireResult second = AcquireResult::kGranted;
  s2->Acquire(5, LockMode::kExclusive, 2, 0,
              [&](AcquireResult r) { second = r; });
  // Hold long enough for s2 to exhaust max_polls and detach.
  sim_.RunUntil(100 * kMillisecond);
  EXPECT_EQ(second, AcquireResult::kTimeout);
  bool third = false;
  s3->Acquire(5, LockMode::kExclusive, 3, 0,
              [&](AcquireResult r) { third = r == AcquireResult::kGranted; });
  // Now the holder releases; s2's detached ticket is consumed-and-released
  // automatically, letting s3 through.
  s1->Release(5, LockMode::kExclusive, 1);
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(third);
}

TEST_F(DslrTest, TicketResetProtocolSurvivesWraparound) {
  // Force a tiny threshold so the reset path runs quickly.
  DslrConfig config;
  config.reset_threshold = 12;
  config.base_poll = 1 * kMicrosecond;
  config.per_hold_estimate = 1 * kMicrosecond;
  config.reset_backoff = 2 * kMicrosecond;
  DslrManager manager(net_, 1, 10, RdmaNicConfig{}, config);
  auto session = manager.CreateSession(*machine_);
  int granted = 0;
  // 50 sequential acquire/release pairs cross the threshold of 12 several
  // times; every request must still eventually be granted exactly once.
  std::function<void(int)> next = [&](int i) {
    if (i >= 50) return;
    session->Acquire(3, LockMode::kExclusive, i, 0, [&, i](AcquireResult r) {
      ASSERT_EQ(r, AcquireResult::kGranted);
      ++granted;
      session->Release(3, LockMode::kExclusive, i);
      next(i + 1);
    });
  };
  next(0);
  sim_.RunUntil(kSecond);
  EXPECT_EQ(granted, 50);
  EXPECT_GE(manager.total_resets(), 3u);
}

// --- DrTM ---

class DrtmTest : public BaselineTest {
 protected:
  DrtmTest() : manager_(net_, 1, 100) {
    machine_ = std::make_unique<ClientMachine>(net_);
  }

  DrtmManager manager_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(DrtmTest, ExclusiveCasGrant) {
  auto session = manager_.CreateSession(*machine_);
  AcquireResult result = AcquireResult::kTimeout;
  session->Acquire(1, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
}

TEST_F(DrtmTest, ConflictCausesRetriesThenSucceeds) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  bool second = false;
  s1->Acquire(1, LockMode::kExclusive, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  s2->Acquire(1, LockMode::kExclusive, 2, 0,
              [&](AcquireResult) { second = true; });
  sim_.RunUntil(kMillisecond);
  EXPECT_FALSE(second);
  EXPECT_GT(manager_.total_retries(), 0u);
  s1->Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(20 * kMillisecond);  // Backoff can stretch the retry.
  EXPECT_TRUE(second);
}

TEST_F(DrtmTest, SharedReadersCoexistAndBlockWriter) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  auto s3 = manager_.CreateSession(*machine_);
  int readers = 0;
  bool writer = false;
  s1->Acquire(1, LockMode::kShared, 1, 0, [&](AcquireResult) { ++readers; });
  s2->Acquire(1, LockMode::kShared, 2, 0, [&](AcquireResult) { ++readers; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(readers, 2);
  s3->Acquire(1, LockMode::kExclusive, 3, 0,
              [&](AcquireResult) { writer = true; });
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_FALSE(writer);
  s1->Release(1, LockMode::kShared, 1);
  s2->Release(1, LockMode::kShared, 2);
  sim_.RunUntil(50 * kMillisecond);
  EXPECT_TRUE(writer);
}

TEST_F(DrtmTest, WriterBlocksReader) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  bool reader = false;
  s1->Acquire(1, LockMode::kExclusive, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  s2->Acquire(1, LockMode::kShared, 2, 0,
              [&](AcquireResult) { reader = true; });
  sim_.RunUntil(kMillisecond);
  EXPECT_FALSE(reader);
  s1->Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(50 * kMillisecond);
  EXPECT_TRUE(reader);
}

// --- NetChain ---

class NetChainTest : public BaselineTest {
 protected:
  NetChainTest() {
    NetChainConfig config;
    config.num_cells = 16;
    kv_ = std::make_unique<NetChainSwitch>(net_, config);
    machine_ = std::make_unique<ClientMachine>(net_);
  }

  std::unique_ptr<NetChainSwitch> kv_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(NetChainTest, GrantAndRelease) {
  NetChainSession session(*machine_, *kv_, 1);
  AcquireResult result = AcquireResult::kTimeout;
  session.Acquire(1, LockMode::kExclusive, 1, 0,
                  [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
  session.Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_EQ(kv_->stats().releases, 1u);
}

TEST_F(NetChainTest, ContentionRetriesUntilFree) {
  NetChainSession s1(*machine_, *kv_, 1);
  NetChainSession s2(*machine_, *kv_, 2);
  bool second = false;
  s1.Acquire(1, LockMode::kExclusive, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  s2.Acquire(1, LockMode::kExclusive, 2, 0,
             [&](AcquireResult) { second = true; });
  sim_.RunUntil(kMillisecond);
  EXPECT_FALSE(second);
  EXPECT_GT(kv_->stats().busy_replies, 0u);
  s1.Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(20 * kMillisecond);
  EXPECT_TRUE(second);
  EXPECT_GT(s2.retries(), 0u);
}

TEST_F(NetChainTest, SharedDegradedToExclusive) {
  NetChainSession s1(*machine_, *kv_, 1);
  NetChainSession s2(*machine_, *kv_, 2);
  bool second = false;
  s1.Acquire(1, LockMode::kShared, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  s2.Acquire(1, LockMode::kShared, 2, 0,
             [&](AcquireResult) { second = true; });
  sim_.RunUntil(kMillisecond);
  EXPECT_FALSE(second);  // Shared does not coexist: NetChain's limitation.
}

TEST_F(NetChainTest, GranularityCollisionCreatesFalseConflict) {
  // 16 cells: locks 1 and 1+k collide for some k; find a colliding pair.
  LockId a = 1, b = 0;
  for (LockId candidate = 2; candidate < 2000; ++candidate) {
    if (kv_->CellFor(candidate) == kv_->CellFor(a)) {
      b = candidate;
      break;
    }
  }
  ASSERT_NE(b, 0u);
  NetChainSession s1(*machine_, *kv_, 1);
  NetChainSession s2(*machine_, *kv_, 2);
  bool second = false;
  s1.Acquire(a, LockMode::kExclusive, 1, 0, [](AcquireResult) {});
  sim_.RunUntil(100 * kMicrosecond);
  s2.Acquire(b, LockMode::kExclusive, 2, 0,
             [&](AcquireResult) { second = true; });
  sim_.RunUntil(kMillisecond);
  EXPECT_FALSE(second);  // Different locks, same coarse cell.
}

TEST_F(NetChainTest, ReentrantCellForSameTxn) {
  LockId a = 1, b = 0;
  for (LockId candidate = 2; candidate < 2000; ++candidate) {
    if (kv_->CellFor(candidate) == kv_->CellFor(a)) {
      b = candidate;
      break;
    }
  }
  ASSERT_NE(b, 0u);
  NetChainSession session(*machine_, *kv_, 1);
  int granted = 0;
  session.Acquire(a, LockMode::kExclusive, 7, 0,
                  [&](AcquireResult) { ++granted; });
  sim_.RunUntil(kMillisecond);
  session.Acquire(b, LockMode::kExclusive, 7, 0,
                  [&](AcquireResult) { ++granted; });
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_EQ(granted, 2);  // Same txn is not self-blocked.
}

// --- Server-only ---

class ServerOnlyTest : public BaselineTest {
 protected:
  ServerOnlyTest() : manager_(net_, LockServerConfig{}, 2) {
    machine_ = std::make_unique<ClientMachine>(net_);
  }

  ServerOnlyManager manager_;
  std::unique_ptr<ClientMachine> machine_;
};

TEST_F(ServerOnlyTest, GrantViaServer) {
  auto session = manager_.CreateSession(*machine_);
  AcquireResult result = AcquireResult::kTimeout;
  session->Acquire(1, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
  EXPECT_EQ(manager_.Grants(), 1u);
}

TEST_F(ServerOnlyTest, FifoUnderContention) {
  auto s1 = manager_.CreateSession(*machine_);
  auto s2 = manager_.CreateSession(*machine_);
  std::vector<int> order;
  s1->Acquire(1, LockMode::kExclusive, 1, 0,
              [&](AcquireResult) { order.push_back(1); });
  sim_.RunUntil(100 * kMicrosecond);
  s2->Acquire(1, LockMode::kExclusive, 2, 0,
              [&](AcquireResult) { order.push_back(2); });
  sim_.RunUntil(kMillisecond);
  s1->Release(1, LockMode::kExclusive, 1);
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(ServerOnlyTest, LocksPartitionAcrossServers) {
  // Different locks land on different servers (hash partitioning).
  bool differs = false;
  for (LockId lock = 0; lock < 32 && !differs; ++lock) {
    if (manager_.ServerNodeFor(lock) != manager_.ServerNodeFor(0)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace netlock
