// Tests for wire serialization: buffer primitives, LockHeader and
// RdmaHeader round-trips, malformed-input rejection, and byte-order checks.
#include <gtest/gtest.h>

#include "common/random.h"
#include "net/lock_wire.h"
#include "net/wire.h"
#include "rdma/rdma.h"

namespace netlock {
namespace {

TEST(BufWriterTest, BigEndianLayout) {
  std::uint8_t buf[16] = {};
  BufWriter w(buf);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0102030405060708ull);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
  EXPECT_EQ(buf[2], 0xde);
  EXPECT_EQ(buf[5], 0xef);
  EXPECT_EQ(buf[6], 0x01);
  EXPECT_EQ(buf[13], 0x08);
}

TEST(BufWriterTest, OverflowSetsError) {
  std::uint8_t buf[3] = {};
  BufWriter w(buf);
  w.WriteU32(1);
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.written(), 0u);  // Nothing partial.
}

TEST(BufReaderTest, RoundTripsWriter) {
  std::uint8_t buf[32] = {};
  BufWriter w(buf);
  w.WriteU8(7);
  w.WriteU16(300);
  w.WriteU32(70000);
  w.WriteU64(1ull << 40);
  BufReader r({buf, w.written()});
  EXPECT_EQ(r.ReadU8(), 7);
  EXPECT_EQ(r.ReadU16(), 300);
  EXPECT_EQ(r.ReadU32(), 70000u);
  EXPECT_EQ(r.ReadU64(), 1ull << 40);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufReaderTest, TruncationSetsError) {
  std::uint8_t buf[2] = {1, 2};
  BufReader r(buf);
  r.ReadU32();
  EXPECT_FALSE(r.ok());
}

TEST(LockHeaderTest, RoundTripAllFields) {
  LockHeader hdr;
  hdr.op = LockOp::kQueueEmpty;
  hdr.mode = LockMode::kShared;
  hdr.flags = kFlagBufferOnly | kFlagPushed;
  hdr.priority = 3;
  hdr.tenant = 42;
  hdr.lock_id = 0xabcdef01;
  hdr.txn_id = 0x1122334455667788ull;
  hdr.client_node = 17;
  hdr.timestamp = 987654321;
  hdr.aux = 5;
  Packet pkt;
  ASSERT_TRUE(hdr.SerializeTo(pkt));
  EXPECT_EQ(pkt.size(), LockHeader::kWireSize);
  const auto parsed = LockHeader::Parse(pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, hdr);
}

TEST(LockHeaderTest, RejectsBadMagic) {
  LockHeader hdr;
  Packet pkt;
  ASSERT_TRUE(hdr.SerializeTo(pkt));
  pkt.mutable_payload()[0] ^= 0xff;
  EXPECT_FALSE(LockHeader::Parse(pkt).has_value());
}

TEST(LockHeaderTest, RejectsTruncated) {
  LockHeader hdr;
  Packet pkt;
  ASSERT_TRUE(hdr.SerializeTo(pkt));
  pkt.set_size(LockHeader::kWireSize - 1);
  EXPECT_FALSE(LockHeader::Parse(pkt).has_value());
}

TEST(LockHeaderTest, RejectsInvalidOpAndMode) {
  LockHeader hdr;
  Packet pkt;
  ASSERT_TRUE(hdr.SerializeTo(pkt));
  pkt.mutable_payload()[2] = 0x7f;  // op byte out of range.
  EXPECT_FALSE(LockHeader::Parse(pkt).has_value());
  ASSERT_TRUE(hdr.SerializeTo(pkt));
  pkt.mutable_payload()[3] = 9;  // mode byte out of range.
  EXPECT_FALSE(LockHeader::Parse(pkt).has_value());
}

TEST(LockHeaderTest, EmptyPacketRejected) {
  Packet pkt;
  EXPECT_FALSE(LockHeader::Parse(pkt).has_value());
}

// Property: random headers round-trip bit-exactly.
TEST(LockHeaderTest, PropertyRandomRoundTrip) {
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    LockHeader hdr;
    hdr.op = static_cast<LockOp>(rng.NextBounded(7));
    hdr.mode = static_cast<LockMode>(rng.NextBounded(2));
    hdr.flags = static_cast<std::uint8_t>(rng.NextBounded(8));
    hdr.priority = static_cast<Priority>(rng.NextBounded(16));
    hdr.tenant = static_cast<TenantId>(rng());
    hdr.lock_id = static_cast<LockId>(rng());
    hdr.txn_id = rng();
    hdr.client_node = static_cast<NodeId>(rng());
    hdr.timestamp = rng();
    hdr.aux = static_cast<std::uint32_t>(rng());
    Packet pkt;
    ASSERT_TRUE(hdr.SerializeTo(pkt));
    const auto parsed = LockHeader::Parse(pkt);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, hdr);
  }
}

// Property: random byte strings never crash the parser and are either
// rejected or parse to a header that re-serializes identically.
TEST(LockHeaderTest, PropertyFuzzedBytesSafe) {
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    Packet pkt;
    const std::size_t n = rng.NextBounded(Packet::kMaxPayload + 1);
    for (std::size_t b = 0; b < n; ++b) {
      pkt.mutable_payload()[b] = static_cast<std::uint8_t>(rng());
    }
    pkt.set_size(n);
    const auto parsed = LockHeader::Parse(pkt);
    if (parsed) {
      Packet out;
      ASSERT_TRUE(parsed->SerializeTo(out));
      EXPECT_EQ(std::vector<std::uint8_t>(pkt.payload().begin(),
                                          pkt.payload().begin() +
                                              LockHeader::kWireSize),
                std::vector<std::uint8_t>(out.payload().begin(),
                                          out.payload().end()));
    }
  }
}

TEST(RdmaHeaderTest, RoundTrip) {
  RdmaHeader hdr;
  hdr.verb = RdmaVerb::kCompareAndSwap;
  hdr.is_response = true;
  hdr.addr = 0x12345678;
  hdr.value = 0xaabbccddeeff0011ull;
  hdr.compare = 42;
  hdr.op_id = 7;
  Packet pkt;
  ASSERT_TRUE(hdr.SerializeTo(pkt));
  const auto parsed = RdmaHeader::Parse(pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->verb, hdr.verb);
  EXPECT_EQ(parsed->is_response, hdr.is_response);
  EXPECT_EQ(parsed->addr, hdr.addr);
  EXPECT_EQ(parsed->value, hdr.value);
  EXPECT_EQ(parsed->compare, hdr.compare);
  EXPECT_EQ(parsed->op_id, hdr.op_id);
}

TEST(RdmaHeaderTest, LockAndRdmaMagicsDisjoint) {
  // A lock packet must never parse as RDMA and vice versa.
  LockHeader lock;
  Packet pkt;
  ASSERT_TRUE(lock.SerializeTo(pkt));
  EXPECT_FALSE(RdmaHeader::Parse(pkt).has_value());
  RdmaHeader rdma;
  Packet pkt2;
  ASSERT_TRUE(rdma.SerializeTo(pkt2));
  EXPECT_FALSE(LockHeader::Parse(pkt2).has_value());
}

TEST(PacketTest, SizeBounds) {
  Packet pkt;
  pkt.set_size(Packet::kMaxPayload);
  EXPECT_EQ(pkt.size(), Packet::kMaxPayload);
  EXPECT_DEATH(pkt.set_size(Packet::kMaxPayload + 1), "CHECK");
}

}  // namespace
}  // namespace netlock
