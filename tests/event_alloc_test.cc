// Proves the simulator hot path is allocation-free in steady state: a
// packet send/deliver loop — after a warmup that grows the event arena and
// heap to their working size — must perform ZERO global operator new/delete
// calls and zero InlineEvent heap fallbacks. This is the acceptance gate
// for the pool-backed event representation; std::function<void()> events
// allocated once per hop here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/sim_context.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting replacements for the global allocation functions. All forms
// funnel through malloc/free so replaced and library-internal paths stay
// compatible; only the count matters.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) -
                                         1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace netlock {
namespace {

TEST(EventAllocTest, SteadyStatePacketLoopIsAllocationFree) {
  SimContext context;
  Simulator sim(&context);
  Network net(sim, /*default_one_way_latency=*/1000);
  std::uint64_t delivered = 0;
  const NodeId receiver = net.AddNode([&](const Packet&) { ++delivered; });
  const NodeId sender = net.AddNode(nullptr);
  Packet pkt;
  pkt.src = sender;
  pkt.dst = receiver;
  pkt.set_size(32);

  // Warmup: grow the event arena, the priority-queue storage, and any
  // network-internal state to working size, with the same outstanding
  // depth the measured loop uses.
  constexpr int kOutstanding = 64;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < kOutstanding; ++i) net.Send(pkt);
    while (sim.Step()) {
    }
  }

  const std::uint64_t fallbacks_before = InlineEvent::heap_fallbacks();
  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < kOutstanding; ++i) net.Send(pkt);
    while (sim.Step()) {
    }
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);

  EXPECT_EQ(news_after - news_before, 0u)
      << "packet hot loop allocated on the heap";
  EXPECT_EQ(InlineEvent::heap_fallbacks(), fallbacks_before)
      << "packet delivery fell back to a heap-allocated event";
  EXPECT_EQ(delivered, 64u * 1020u);
}

TEST(EventAllocTest, TimerLambdaLoopIsAllocationFree) {
  SimContext context;
  Simulator sim(&context);
  std::uint64_t fired = 0;
  // Warmup.
  for (int i = 0; i < 256; ++i) sim.Schedule(i, [&fired]() { ++fired; });
  sim.Run();

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 256; ++i) sim.Schedule(i, [&fired]() { ++fired; });
    sim.Run();
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed) - news_before, 0u);
  EXPECT_EQ(fired, 256u * 1001u);
}

}  // namespace
}  // namespace netlock
