// Tests for the lock server: owned-lock queue semantics (mirroring
// Algorithm 2), the CPU/core model, RSS dispatch, q2 buffering, ownership
// transfer, and lease cleanup.
#include <gtest/gtest.h>

#include "server/lock_server.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : net_(sim_, /*latency=*/1000) {
    LockServerConfig config;
    config.cores = 4;
    config.per_request_service = 444;
    server_ = std::make_unique<LockServer>(net_, config);
    client_ = std::make_unique<PacketCatcher>(net_);
    switch_ = std::make_unique<PacketCatcher>(net_);
    server_->set_switch_node(switch_->node());
  }

  void Send(LockHeader hdr) {
    hdr.flags |= kFlagServerOwned;
    net_.Send(MakeLockPacket(client_->node(), server_->node(), hdr));
    sim_.Run();
  }

  void SendRaw(const LockHeader& hdr) {
    net_.Send(MakeLockPacket(client_->node(), server_->node(), hdr));
    sim_.Run();
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockServer> server_;
  std::unique_ptr<PacketCatcher> client_;
  std::unique_ptr<PacketCatcher> switch_;
};

TEST_F(ServerTest, GrantsFirstExclusive) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(1));
  EXPECT_EQ(server_->stats().grants, 1u);
}

TEST_F(ServerTest, QueuesConflictingExclusive) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ServerTest, SharedBatchOnExclusiveRelease) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 2, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 3, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 4, client_->node()));
  client_->Clear();
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_TRUE(client_->HasGrantFor(3));
  EXPECT_FALSE(client_->HasGrantFor(4));
}

TEST_F(ServerTest, SharedGrantedConcurrently) {
  Send(MakeAcquire(1, LockMode::kShared, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kShared, 2, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(1));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ServerTest, CpuServiceDelaysResponse) {
  // Request at t=0: arrives at 1000, serviced 444, grant travels 1000.
  SimTime granted_at = 0;
  net_.SetHandler(client_->node(), [&](const Packet& pkt) {
    if (auto hdr = LockHeader::Parse(pkt); hdr && hdr->op == LockOp::kGrant) {
      granted_at = sim_.now();
    }
  });
  SendRaw(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_EQ(granted_at, 1000u + 444u + 1000u);
}

TEST_F(ServerTest, SaturationBoundsThroughput) {
  // Offer 1000 requests to distinct locks that hash across 4 cores; with
  // 444 ns per request the server clears ~2.25 MRPS per core.
  for (LockId lock = 0; lock < 1000; ++lock) {
    LockHeader hdr = MakeAcquire(lock, LockMode::kExclusive, lock,
                                 client_->node());
    hdr.flags |= kFlagServerOwned;
    net_.Send(MakeLockPacket(client_->node(), server_->node(), hdr));
  }
  sim_.Run();
  EXPECT_EQ(server_->stats().grants, 1000u);
  // Perfectly balanced would finish at 1000 + 250*444 + 1000; allow skew.
  const SimTime ideal = 1000 + 250 * 444 + 1000;
  EXPECT_GT(sim_.now(), ideal / 2);
  EXPECT_LT(sim_.now(), ideal * 3);
}

TEST_F(ServerTest, SameLockStaysFifoOnOneCore) {
  // Requests to one lock serialize on its RSS core in arrival order.
  for (TxnId txn = 0; txn < 20; ++txn) {
    Send(MakeAcquire(9, LockMode::kExclusive, txn, client_->node()));
    Send(MakeRelease(9, LockMode::kExclusive, txn, client_->node()));
  }
  const auto grants = client_->Grants();
  ASSERT_EQ(grants.size(), 20u);
  for (TxnId txn = 0; txn < 20; ++txn) EXPECT_EQ(grants[txn].txn_id, txn);
}

TEST_F(ServerTest, BufferOnlyDoesNotGrant) {
  LockHeader hdr = MakeAcquire(1, LockMode::kExclusive, 1, client_->node());
  hdr.flags = kFlagBufferOnly;
  SendRaw(hdr);
  EXPECT_FALSE(client_->HasGrantFor(1));
  EXPECT_EQ(server_->OverflowDepth(1), 1u);
  EXPECT_EQ(server_->stats().buffered, 1u);
}

TEST_F(ServerTest, QueueEmptyPushesAndReportsRemainder) {
  for (TxnId txn = 1; txn <= 5; ++txn) {
    LockHeader hdr = MakeAcquire(1, LockMode::kExclusive, txn,
                                 client_->node());
    hdr.flags = kFlagBufferOnly;
    SendRaw(hdr);
  }
  LockHeader notify;
  notify.op = LockOp::kQueueEmpty;
  notify.lock_id = 1;
  notify.aux = 3;  // Room for 3.
  SendRaw(notify);
  // 3 pushes + 1 sync with remaining 2.
  int pushes = 0;
  std::uint32_t remaining = 99;
  for (const auto& msg : switch_->received()) {
    if (msg.op == LockOp::kPush) ++pushes;
    if (msg.op == LockOp::kSyncState) remaining = msg.aux;
  }
  EXPECT_EQ(pushes, 3);
  EXPECT_EQ(remaining, 2u);
  EXPECT_EQ(server_->OverflowDepth(1), 2u);
  // Pushes preserve FIFO order.
  TxnId expected = 1;
  for (const auto& msg : switch_->received()) {
    if (msg.op == LockOp::kPush) {
      EXPECT_EQ(msg.txn_id, expected++);
    }
  }
}

TEST_F(ServerTest, TakeOwnershipActivatesBufferedQueue) {
  for (TxnId txn = 1; txn <= 3; ++txn) {
    LockHeader hdr = MakeAcquire(1, LockMode::kExclusive, txn,
                                 client_->node());
    hdr.flags = kFlagBufferOnly;
    SendRaw(hdr);
  }
  server_->TakeOwnership(1);
  sim_.Run();
  EXPECT_TRUE(client_->HasGrantFor(1));  // Head granted.
  EXPECT_FALSE(client_->HasGrantFor(2));
  EXPECT_EQ(server_->OverflowDepth(1), 0u);
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ServerTest, TakeOwnershipSharedFrontBatch) {
  for (TxnId txn = 1; txn <= 2; ++txn) {
    LockHeader hdr = MakeAcquire(1, LockMode::kShared, txn, client_->node());
    hdr.flags = kFlagBufferOnly;
    SendRaw(hdr);
  }
  LockHeader hdr = MakeAcquire(1, LockMode::kExclusive, 3, client_->node());
  hdr.flags = kFlagBufferOnly;
  SendRaw(hdr);
  server_->TakeOwnership(1);
  sim_.Run();
  EXPECT_TRUE(client_->HasGrantFor(1));
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_FALSE(client_->HasGrantFor(3));
}

TEST_F(ServerTest, PauseBuffersThenForwardsToSwitch) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  server_->PauseLock(1, true);
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  EXPECT_FALSE(server_->QueueEmpty(1));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(server_->QueueEmpty(1));
  server_->ForwardBufferedToSwitch(1);
  sim_.Run();
  // The buffered acquire went to the switch as a fresh request.
  bool saw = false;
  for (const auto& msg : switch_->received()) {
    if (msg.op == LockOp::kAcquire && msg.txn_id == 2) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST_F(ServerTest, LeaseClearsExpiredHolder) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  sim_.RunUntil(sim_.now() + 20 * kMillisecond);
  server_->ClearExpired(/*lease=*/5 * kMillisecond);
  sim_.Run();
  EXPECT_TRUE(client_->HasGrantFor(2));
}

TEST_F(ServerTest, StaleReleaseCounted) {
  Send(MakeRelease(1, LockMode::kExclusive, 9, client_->node()));
  EXPECT_EQ(server_->stats().stale_releases, 1u);
}

// Mirror of the data plane's dedup test: a retransmitted RELEASE copy is
// dropped before its blind head pop can evict the next waiter.
TEST_F(ServerTest, DuplicatedReleaseCopyIsDropped) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 3, client_->node()));
  const LockHeader release =
      MakeRelease(1, LockMode::kExclusive, 1, client_->node());
  Send(release);
  EXPECT_TRUE(client_->HasGrantFor(2));
  Send(release);
  EXPECT_FALSE(client_->HasGrantFor(3));
  EXPECT_EQ(server_->stats().duplicate_releases, 1u);
  Send(MakeRelease(1, LockMode::kExclusive, 2, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(3));
}

// Mirror of the data plane's validated dequeue: a release from a txn that
// no longer heads the queue (its entry was lease-force-released) must not
// pop the current holder's entry.
TEST_F(ServerTest, MismatchedExclusiveReleaseIsDropped) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeAcquire(1, LockMode::kExclusive, 2, client_->node()));
  Send(MakeRelease(1, LockMode::kExclusive, 99, client_->node()));
  EXPECT_FALSE(client_->HasGrantFor(2));
  EXPECT_EQ(server_->stats().mismatched_releases, 1u);
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  EXPECT_TRUE(client_->HasGrantFor(2));
}

// Server grants stamp per-instance nonces exactly like the switch, so the
// client-side duplicate-grant filter works for server-granted locks too.
TEST_F(ServerTest, GrantsCarryDistinctInstanceNonces) {
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  // Retransmission: a second queue entry for the same txn.
  Send(MakeAcquire(1, LockMode::kExclusive, 1, client_->node()));
  Send(MakeRelease(1, LockMode::kExclusive, 1, client_->node()));
  const auto grants = client_->Grants();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_NE(grants[0].aux, grants[1].aux);
}

TEST_F(ServerTest, HarvestDemandsReportsRatesAndContention) {
  for (TxnId txn = 0; txn < 10; ++txn) {
    Send(MakeAcquire(1, LockMode::kExclusive, txn, client_->node()));
  }
  Send(MakeAcquire(2, LockMode::kExclusive, 100, client_->node()));
  std::vector<LockDemand> demands;
  server_->HarvestDemands(/*window_sec=*/1.0, demands);
  ASSERT_EQ(demands.size(), 2u);
  const auto& d1 = demands[0].lock == 1 ? demands[0] : demands[1];
  const auto& d2 = demands[0].lock == 2 ? demands[0] : demands[1];
  EXPECT_DOUBLE_EQ(d1.rate, 10.0);
  EXPECT_EQ(d1.contention, 10u);  // All ten queued concurrently.
  EXPECT_DOUBLE_EQ(d2.rate, 1.0);
  EXPECT_EQ(d2.contention, 1u);
  // Counters reset after harvest.
  demands.clear();
  server_->HarvestDemands(1.0, demands);
  EXPECT_TRUE(demands.empty());  // No new requests since.
}

}  // namespace
}  // namespace netlock
