// Tests for the NetLockManager public facade: construction, allocation
// installation, session creation, grant attribution, and the quickstart
// usage pattern from the README.
#include <gtest/gtest.h>

#include "core/netlock.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace netlock {
namespace {

class FacadeTest : public ::testing::Test {
 protected:
  FacadeTest() : net_(sim_, 2500) {}

  Simulator sim_;
  Network net_;
};

TEST_F(FacadeTest, QuickstartFlow) {
  NetLockOptions options;
  options.num_servers = 2;
  NetLockManager manager(net_, options);
  manager.InstallKnapsack({{7, 2e5, 4}, {8, 1e3, 2}});
  EXPECT_TRUE(manager.lock_switch().IsInstalled(7));
  EXPECT_TRUE(manager.lock_switch().IsInstalled(8));

  ClientMachine machine(net_);
  auto session = manager.CreateSession(machine);
  net_.SetLatency(session->node(), manager.lock_switch().node(), 2500);
  AcquireResult result = AcquireResult::kTimeout;
  session->Acquire(7, LockMode::kExclusive, 1, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
  session->Release(7, LockMode::kExclusive, 1);
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_EQ(manager.SwitchGrants(), 1u);
  EXPECT_EQ(manager.ServerGrants(), 0u);
}

TEST_F(FacadeTest, ServerServesUninstalledLocks) {
  NetLockManager manager(net_, NetLockOptions{});
  manager.InstallKnapsack({{1, 100.0, 2}});
  ClientMachine machine(net_);
  auto session = manager.CreateSession(machine);
  net_.SetLatency(session->node(), manager.lock_switch().node(), 2500);
  AcquireResult result = AcquireResult::kTimeout;
  session->Acquire(999, LockMode::kShared, 5, 0,
                   [&](AcquireResult r) { result = r; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(result, AcquireResult::kGranted);
  EXPECT_EQ(manager.ServerGrants(), 1u);
  EXPECT_EQ(manager.SwitchGrants(), 0u);
}

TEST_F(FacadeTest, TenantPlumbedThroughSessions) {
  NetLockManager manager(net_, NetLockOptions{});
  manager.InstallKnapsack({{1, 100.0, 4}});
  manager.lock_switch().quota().Configure(/*tenant=*/9, /*rate=*/1.0,
                                          /*burst=*/1);
  ClientMachine machine(net_);
  auto session = manager.CreateSession(machine, /*tenant=*/9);
  net_.SetLatency(session->node(), manager.lock_switch().node(), 2500);
  int granted = 0;
  session->Acquire(1, LockMode::kShared, 1, 0,
                   [&](AcquireResult r) { granted += r == AcquireResult::kGranted; });
  sim_.RunUntil(kMillisecond);
  EXPECT_EQ(granted, 1);
  // Burst exhausted: the next request is throttled.
  session->Acquire(1, LockMode::kShared, 2, 0, [&](AcquireResult) {});
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_GE(manager.lock_switch().stats().rejected_quota, 1u);
}

TEST_F(FacadeTest, MultipleManagersCoexistOnOneNetwork) {
  NetLockManager rack0(net_, NetLockOptions{});
  NetLockManager rack1(net_, NetLockOptions{});
  rack0.InstallKnapsack({{1, 100.0, 2}});
  rack1.InstallKnapsack({{1, 100.0, 2}});  // Same id, different instance.
  ClientMachine machine(net_);
  auto s0 = rack0.CreateSession(machine);
  auto s1 = rack1.CreateSession(machine);
  net_.SetLatency(s0->node(), rack0.lock_switch().node(), 2500);
  net_.SetLatency(s1->node(), rack1.lock_switch().node(), 2500);
  int grants = 0;
  s0->Acquire(1, LockMode::kExclusive, 1, 0,
              [&](AcquireResult) { ++grants; });
  s1->Acquire(1, LockMode::kExclusive, 2, 0,
              [&](AcquireResult) { ++grants; });
  sim_.RunUntil(kMillisecond);
  // Both exclusive grants succeed: the racks are independent instances.
  EXPECT_EQ(grants, 2);
}

}  // namespace
}  // namespace netlock
