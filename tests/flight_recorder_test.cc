// Tests for the per-core flight recorder: snapshot merge order, ring
// wrap-around retention, text dump round-tripping and determinism, dump
// files on disk, and concurrent shard writers against a snapshotting
// reader (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flight_recorder.h"

namespace netlock {
namespace {

using Op = FlightRecorder::Op;

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(FlightRecorderTest, SnapshotMergesSortedByTimeThenShard) {
  FlightRecorder recorder(2, 16);
  recorder.Record(1, Op::kAccept, 7, LockMode::kExclusive, 100, /*ts=*/30);
  recorder.Record(0, Op::kAccept, 7, LockMode::kExclusive, 101, /*ts=*/10);
  recorder.Record(0, Op::kGrant, 7, LockMode::kExclusive, 101, /*ts=*/20,
                  /*client=*/3);
  recorder.Record(1, Op::kGrant, 7, LockMode::kShared, 100, /*ts=*/20);
  const std::vector<FlightRecorder::Event> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ts, 10u);
  EXPECT_EQ(events[0].txn, 101u);
  // Equal timestamps order by shard.
  EXPECT_EQ(events[1].ts, 20u);
  EXPECT_EQ(events[1].shard, 0u);
  EXPECT_EQ(events[1].client, 3u);
  EXPECT_EQ(events[2].ts, 20u);
  EXPECT_EQ(events[2].shard, 1u);
  EXPECT_EQ(events[2].mode, LockMode::kShared);
  EXPECT_EQ(events[3].ts, 30u);
  EXPECT_EQ(recorder.recorded(), 4u);
}

TEST(FlightRecorderTest, WrapAroundKeepsMostRecentWindow) {
  FlightRecorder recorder(1, 16);  // Capacity rounds to exactly 16.
  ASSERT_EQ(recorder.capacity_per_shard(), 16u);
  const std::uint64_t kTotal = 100;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    recorder.Record(0, Op::kMark, static_cast<LockId>(i),
                    LockMode::kExclusive, i, /*ts=*/1000 + i);
  }
  EXPECT_EQ(recorder.recorded(), kTotal);
  const std::vector<FlightRecorder::Event> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  // The retained window is exactly the last 16 events, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, kTotal - 16 + i);
    EXPECT_EQ(events[i].txn, kTotal - 16 + i);
  }
}

TEST(FlightRecorderTest, TextRoundTripAndDeterminism) {
  FlightRecorder recorder(2, 16);
  recorder.Record(0, Op::kAccept, 1, LockMode::kExclusive, 11, 5);
  recorder.Record(1, Op::kGrant, 1, LockMode::kExclusive, 11, 6, 2);
  recorder.Record(0, Op::kRelease, 1, LockMode::kExclusive, 11, 7);
  recorder.Record(1, Op::kStaleRelease, 2, LockMode::kShared, 12, 8);
  recorder.Record(0, Op::kMismatchedRelease, 3, LockMode::kExclusive, 13, 9);
  const std::string text = recorder.ToText();
  // Quiesced recorder: repeated dumps are byte-identical.
  EXPECT_EQ(text, recorder.ToText());
  std::vector<FlightRecorder::Event> parsed;
  ASSERT_TRUE(FlightRecorder::ParseText(text, &parsed));
  EXPECT_EQ(parsed, recorder.Snapshot());
}

TEST(FlightRecorderTest, ParseTextRejectsMalformedLines) {
  std::vector<FlightRecorder::Event> parsed;
  EXPECT_FALSE(FlightRecorder::ParseText("ev ts=banana\n", &parsed));
  parsed.clear();
  EXPECT_FALSE(FlightRecorder::ParseText(
      "ev ts=1 shard=0 seq=0 op=warp lock=1 mode=X txn=1 client=0\n",
      &parsed));
  parsed.clear();
  // Comments and blank lines are fine.
  EXPECT_TRUE(FlightRecorder::ParseText("# header\n\n", &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(FlightRecorderTest, DumpWritesTextAndJson) {
  FlightRecorder recorder(1, 16);
  recorder.Record(0, Op::kGrant, 42, LockMode::kExclusive, 9, 123, 1);
  const std::string prefix = ::testing::TempDir() + "/fr_dump_test";
  ASSERT_TRUE(recorder.Dump(prefix));
  const std::string text = ReadFile(prefix + ".txt");
  EXPECT_EQ(text, recorder.ToText());
  std::vector<FlightRecorder::Event> parsed;
  ASSERT_TRUE(FlightRecorder::ParseText(text, &parsed));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].lock, 42u);
  EXPECT_EQ(parsed[0].client, 1u);
  const std::string json = ReadFile(prefix + ".json");
  EXPECT_NE(json.find("\"op\": \"grant\""), std::string::npos);
  EXPECT_NE(json.find("\"lock\": 42"), std::string::npos);
}

// One writer per shard racing a snapshotting reader — the crash-dump
// contract. Run under TSan in CI; the final quiesced snapshot is exact.
TEST(FlightRecorderTest, ConcurrentShardWritersWithSnapshots) {
  constexpr int kShards = 4;
  constexpr std::uint64_t kPerShard = 20000;
  FlightRecorder recorder(kShards, 256);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)recorder.Snapshot();
      (void)recorder.recorded();
    }
  });
  std::vector<std::thread> writers;
  for (int s = 0; s < kShards; ++s) {
    writers.emplace_back([&, s] {
      for (std::uint64_t i = 0; i < kPerShard; ++i) {
        recorder.Record(s, Op::kMark, static_cast<LockId>(i & 0xffff),
                        LockMode::kExclusive, i, /*ts=*/i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.recorded(), kShards * kPerShard);
  const std::vector<FlightRecorder::Event> events = recorder.Snapshot();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kShards) * 256);
  for (const FlightRecorder::Event& ev : events) {
    EXPECT_GE(ev.seq, kPerShard - 256);
  }
}

}  // namespace
}  // namespace netlock
