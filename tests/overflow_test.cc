// Tests for the switch-server overflow protocol (paper Section 4.3):
// buffer-only forwarding, queue-empty notification, pushes, episode
// termination, and the single-queue FIFO equivalence property.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "dataplane/switch_dataplane.h"
#include "server/lock_server.h"
#include "test_util.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::PacketCatcher;

class OverflowTest : public ::testing::Test {
 protected:
  OverflowTest() : net_(sim_, /*latency=*/1000) {
    LockSwitchConfig sw_config;
    sw_config.queue_capacity = 64;
    sw_config.array_size = 16;
    sw_config.max_locks = 8;
    switch_ = std::make_unique<LockSwitch>(net_, sw_config);
    LockServerConfig srv_config;
    srv_config.cores = 2;
    srv_config.per_request_service = 100;
    server_ = std::make_unique<LockServer>(net_, srv_config);
    server_->set_switch_node(switch_->node());
    client_ = std::make_unique<PacketCatcher>(net_);
  }

  void Install(LockId lock, std::uint32_t slots) {
    ASSERT_TRUE(switch_->InstallLock(lock, server_->node(), slots));
  }

  void Acquire(LockId lock, LockMode mode, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), switch_->node(),
                             MakeAcquire(lock, mode, txn, client_->node())));
    sim_.Run();
  }

  void Release(LockId lock, LockMode mode, TxnId txn) {
    net_.Send(MakeLockPacket(client_->node(), switch_->node(),
                             MakeRelease(lock, mode, txn, client_->node())));
    sim_.Run();
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<LockSwitch> switch_;
  std::unique_ptr<LockServer> server_;
  std::unique_ptr<PacketCatcher> client_;
};

TEST_F(OverflowTest, FullQueueForwardsBufferOnly) {
  Install(1, 2);
  Acquire(1, LockMode::kExclusive, 1);  // Granted, occupies slot.
  Acquire(1, LockMode::kExclusive, 2);  // Queued, occupies slot.
  Acquire(1, LockMode::kExclusive, 3);  // Overflow -> q2 at server.
  EXPECT_EQ(switch_->stats().forwarded_overflow, 1u);
  EXPECT_EQ(server_->OverflowDepth(1), 1u);
  EXPECT_FALSE(client_->HasGrantFor(3));
}

TEST_F(OverflowTest, OverflowStaysActiveUntilEpisodeEnds) {
  Install(1, 2);
  Acquire(1, LockMode::kExclusive, 1);
  Acquire(1, LockMode::kExclusive, 2);
  Acquire(1, LockMode::kExclusive, 3);  // Overflow begins.
  // A release frees a slot, but while overflowing, new requests still go to
  // q2 (otherwise they would jump ahead of txn 3).
  Release(1, LockMode::kExclusive, 1);
  Acquire(1, LockMode::kExclusive, 4);
  EXPECT_EQ(server_->OverflowDepth(1), 2u);
  EXPECT_FALSE(client_->HasGrantFor(4));
}

TEST_F(OverflowTest, EmptyQueueTriggersPushAndGrant) {
  Install(1, 2);
  Acquire(1, LockMode::kExclusive, 1);
  Acquire(1, LockMode::kExclusive, 2);
  Acquire(1, LockMode::kExclusive, 3);  // q2.
  Release(1, LockMode::kExclusive, 1);  // Grants 2.
  EXPECT_TRUE(client_->HasGrantFor(2));
  Release(1, LockMode::kExclusive, 2);  // q1 empty -> notify -> push 3.
  EXPECT_TRUE(client_->HasGrantFor(3));
  EXPECT_EQ(switch_->stats().queue_empty_notifies, 1u);
  EXPECT_EQ(server_->stats().pushes_sent, 1u);
  EXPECT_EQ(server_->OverflowDepth(1), 0u);
}

TEST_F(OverflowTest, EpisodeEndsAndNormalModeResumes) {
  Install(1, 2);
  Acquire(1, LockMode::kExclusive, 1);
  Acquire(1, LockMode::kExclusive, 2);
  Acquire(1, LockMode::kExclusive, 3);
  Release(1, LockMode::kExclusive, 1);
  Release(1, LockMode::kExclusive, 2);  // Push + resume handshake.
  Release(1, LockMode::kExclusive, 3);
  // Back to normal: a new acquire is handled directly by the switch.
  Acquire(1, LockMode::kExclusive, 4);
  EXPECT_TRUE(client_->HasGrantFor(4));
  EXPECT_EQ(switch_->stats().forwarded_overflow, 1u);  // Only txn 3.
}

TEST_F(OverflowTest, GrantOrderEqualsSingleQueueUnderOverflow) {
  Install(1, 2);
  // 8 exclusive requests against a 2-slot region: 6 overflow into q2.
  for (TxnId txn = 1; txn <= 8; ++txn) {
    Acquire(1, LockMode::kExclusive, txn);
  }
  // Release each grant as it arrives; collect the global grant order.
  std::vector<TxnId> order;
  for (int round = 0; round < 64 && order.size() < 8; ++round) {
    for (const auto& g : client_->Grants()) {
      if (std::find(order.begin(), order.end(), g.txn_id) == order.end()) {
        order.push_back(g.txn_id);
        Release(1, LockMode::kExclusive, g.txn_id);
      }
    }
  }
  EXPECT_EQ(order, (std::vector<TxnId>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_TRUE(switch_->QueueEmpty(1));
  EXPECT_EQ(server_->OverflowDepth(1), 0u);
}

// Property sweep: random mixes of shared/exclusive against tiny regions
// still grant every transaction exactly once and preserve FIFO order for
// exclusive chains.
class OverflowPropertyTest : public OverflowTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(OverflowPropertyTest, RandomMixDrainsCompletely) {
  const int seed = GetParam();
  Rng rng(seed);
  const std::uint32_t region = 1 + seed % 3;  // 1..3 slots.
  Install(1, region);
  const int n = 30;
  std::vector<LockMode> modes;
  for (TxnId txn = 0; txn < n; ++txn) {
    const LockMode mode =
        rng.NextBool(0.5) ? LockMode::kShared : LockMode::kExclusive;
    modes.push_back(mode);
    Acquire(1, mode, txn);
  }
  std::vector<TxnId> granted;
  for (int round = 0; round < 10 * n && granted.size() < modes.size();
       ++round) {
    for (const auto& g : client_->Grants()) {
      if (std::find(granted.begin(), granted.end(), g.txn_id) ==
          granted.end()) {
        granted.push_back(g.txn_id);
        Release(1, g.mode, g.txn_id);
      }
    }
  }
  EXPECT_EQ(granted.size(), modes.size()) << "seed=" << seed;
  EXPECT_TRUE(switch_->QueueEmpty(1));
  EXPECT_EQ(server_->OverflowDepth(1), 0u);
  // Exclusive grants must appear in FIFO order.
  std::vector<TxnId> exclusive_order;
  for (const TxnId txn : granted) {
    if (modes[txn] == LockMode::kExclusive) exclusive_order.push_back(txn);
  }
  EXPECT_TRUE(std::is_sorted(exclusive_order.begin(), exclusive_order.end()))
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverflowPropertyTest,
                         ::testing::Range(1, 13));

TEST_F(OverflowTest, SharedBatchAcrossQ1Q2) {
  Install(1, 2);
  Acquire(1, LockMode::kExclusive, 1);
  Acquire(1, LockMode::kShared, 2);   // Queued in q1.
  Acquire(1, LockMode::kShared, 3);   // Overflow -> q2.
  Acquire(1, LockMode::kShared, 4);   // q2.
  Release(1, LockMode::kExclusive, 1);  // Grants 2 (E->S in q1).
  EXPECT_TRUE(client_->HasGrantFor(2));
  EXPECT_FALSE(client_->HasGrantFor(3));  // Still buffered.
  Release(1, LockMode::kShared, 2);  // q1 empty -> push 3,4 -> both granted.
  EXPECT_TRUE(client_->HasGrantFor(3));
  EXPECT_TRUE(client_->HasGrantFor(4));
}

}  // namespace
}  // namespace netlock
