// Model-based checking: the switch data plane (with and without the
// q1/q2 overflow path) must produce exactly the grant sequence of a
// reference single-FIFO-queue lock manager for arbitrary operation
// sequences. This is the strongest statement of the paper's correctness
// claims: Algorithm 2 == FIFO queue semantics, and overflow preserves
// single-queue equivalence (Section 4.3).
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "common/random.h"
#include "dataplane/switch_dataplane.h"
#include "server/lock_server.h"
#include "test_util.h"
#include "testing/reference_lock_manager.h"

namespace netlock {
namespace {

using testing::MakeAcquire;
using testing::MakeRelease;
using testing::ReferenceLockManager;

struct ModelCheckParams {
  std::uint64_t seed;
  std::uint32_t region_slots;  // Small => overflow path exercised.
  int num_locks;
  double shared_fraction;
};

class ModelCheckTest : public ::testing::TestWithParam<ModelCheckParams> {};

// With regions large enough that overflow never happens, the switch must
// produce *exactly* the reference model's grant sequence: grant timing and
// order are fully specified by Algorithm 2.
TEST_P(ModelCheckTest, SwitchMatchesReferenceGrantSequence) {
  const ModelCheckParams params = GetParam();
  if (params.region_slots < 64) {
    GTEST_SKIP() << "sequence equality applies to the no-overflow regime";
  }
  Simulator sim;
  Network net(sim, /*latency=*/1000);
  LockSwitchConfig config;
  config.queue_capacity = 4096;
  config.array_size = 512;
  config.max_locks = 64;
  LockSwitch lock_switch(net, config);
  LockServer server(net, LockServerConfig{});
  server.set_switch_node(lock_switch.node());
  const NodeId client = net.AddNode([](const Packet&) {});
  for (int l = 0; l < params.num_locks; ++l) {
    ASSERT_TRUE(lock_switch.InstallLock(l, server.node(),
                                        params.region_slots));
  }

  std::vector<ReferenceLockManager::Grant> switch_grants;
  lock_switch.set_grant_observer(
      [&](LockId lock, TxnId txn, LockMode mode, NodeId) {
        switch_grants.push_back({lock, txn, mode});
      });

  ReferenceLockManager reference;
  Rng rng(params.seed);
  TxnId next_txn = 1;

  // Granted-but-unreleased entries per the reference, as release targets.
  // Released in FIFO-per-lock order (the commutativity the paper relies on
  // lets any holder release; dequeues are blind head pops either way).
  const int kOps = 400;
  for (int op = 0; op < kOps; ++op) {
    const auto held = reference.GrantedNow();
    const bool do_release = !held.empty() && rng.NextBool(0.5);
    if (do_release) {
      const auto& target = held[rng.NextBounded(held.size())];
      ASSERT_TRUE(reference.Release(target.lock, target.mode));
      net.Send(MakeLockPacket(client, lock_switch.node(),
                              MakeRelease(target.lock, target.mode,
                                          target.txn, client)));
    } else {
      const LockId lock =
          static_cast<LockId>(rng.NextBounded(params.num_locks));
      const LockMode mode = rng.NextBool(params.shared_fraction)
                                ? LockMode::kShared
                                : LockMode::kExclusive;
      const TxnId txn = next_txn++;
      reference.Acquire(lock, mode, txn);
      net.Send(MakeLockPacket(client, lock_switch.node(),
                              MakeAcquire(lock, mode, txn, client)));
    }
    // Quiesce so overflow pushes and grant cascades settle between ops.
    sim.Run();
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Exact grant-sequence equality, including order.
  ASSERT_EQ(switch_grants.size(), reference.grants().size())
      << "seed=" << params.seed << " region=" << params.region_slots;
  for (std::size_t i = 0; i < switch_grants.size(); ++i) {
    EXPECT_EQ(switch_grants[i], reference.grants()[i]) << "at " << i;
  }
}

// Under overflow (tiny regions), grant *timing* may lag the reference (a
// shared request parked in q2 is granted only after q1 drains), so the
// specification is weaker: every request granted exactly once, exclusive
// grants in per-lock FIFO arrival order, and mutual exclusion throughout.
// This test drives releases from the switch's own grants (as real clients
// do) and checks those invariants.
TEST_P(ModelCheckTest, OverflowPreservesSafetyAndFifo) {
  const ModelCheckParams params = GetParam();
  Simulator sim;
  Network net(sim, /*latency=*/1000);
  LockSwitchConfig config;
  config.queue_capacity = 4096;
  config.array_size = 512;
  config.max_locks = 64;
  LockSwitch lock_switch(net, config);
  LockServer server(net, LockServerConfig{});
  server.set_switch_node(lock_switch.node());
  const NodeId client = net.AddNode([](const Packet&) {});
  for (int l = 0; l < params.num_locks; ++l) {
    ASSERT_TRUE(lock_switch.InstallLock(l, server.node(),
                                        params.region_slots));
  }

  struct GrantEv {
    LockId lock;
    TxnId txn;
    LockMode mode;
  };
  std::deque<GrantEv> held;  // Switch-granted, not yet released.
  std::map<LockId, TxnId> last_exclusive_txn;
  std::map<LockId, std::pair<int, int>> holders;  // lock -> (shared, excl).
  std::map<LockId, std::deque<TxnId>> expected_x_order;
  std::uint64_t grants_seen = 0;
  lock_switch.set_grant_observer(
      [&](LockId lock, TxnId txn, LockMode mode, NodeId) {
        ++grants_seen;
        auto& h = holders[lock];
        if (mode == LockMode::kExclusive) {
          EXPECT_EQ(h.first, 0) << "X granted while shared held";
          EXPECT_EQ(h.second, 0) << "X granted while X held";
          ++h.second;
          // FIFO: exclusive grants in arrival order per lock.
          ASSERT_FALSE(expected_x_order[lock].empty());
          EXPECT_EQ(expected_x_order[lock].front(), txn)
              << "exclusive FIFO violated on lock " << lock;
          expected_x_order[lock].pop_front();
        } else {
          EXPECT_EQ(h.second, 0) << "S granted while X held";
          ++h.first;
        }
        held.push_back({lock, txn, mode});
      });

  Rng rng(params.seed * 977 + 3);
  TxnId next_txn = 1;
  std::uint64_t acquires = 0;
  const int kOps = 400;
  for (int op = 0; op < kOps; ++op) {
    const bool do_release = !held.empty() && rng.NextBool(0.55);
    if (do_release) {
      const std::size_t pick = rng.NextBounded(held.size());
      const GrantEv target = held[pick];
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
      auto& h = holders[target.lock];
      if (target.mode == LockMode::kExclusive) {
        --h.second;
      } else {
        --h.first;
      }
      net.Send(MakeLockPacket(client, lock_switch.node(),
                              MakeRelease(target.lock, target.mode,
                                          target.txn, client)));
    } else {
      const LockId lock =
          static_cast<LockId>(rng.NextBounded(params.num_locks));
      const LockMode mode = rng.NextBool(params.shared_fraction)
                                ? LockMode::kShared
                                : LockMode::kExclusive;
      const TxnId txn = next_txn++;
      ++acquires;
      if (mode == LockMode::kExclusive) {
        expected_x_order[lock].push_back(txn);
      }
      net.Send(MakeLockPacket(client, lock_switch.node(),
                              MakeAcquire(lock, mode, txn, client)));
    }
    sim.Run();
  }
  // Drain: release everything as it gets granted until all done.
  for (int round = 0; round < 4000 && grants_seen < acquires; ++round) {
    while (!held.empty()) {
      const GrantEv target = held.front();
      held.pop_front();
      auto& h = holders[target.lock];
      if (target.mode == LockMode::kExclusive) {
        --h.second;
      } else {
        --h.first;
      }
      net.Send(MakeLockPacket(client, lock_switch.node(),
                              MakeRelease(target.lock, target.mode,
                                          target.txn, client)));
      sim.Run();
    }
    sim.Run();
  }
  EXPECT_EQ(grants_seen, acquires)
      << "every request granted exactly once; seed=" << params.seed;
  for (const auto& [lock, order] : expected_x_order) {
    EXPECT_TRUE(order.empty()) << "undrained exclusives on lock " << lock;
  }
}

std::vector<ModelCheckParams> MakeParams() {
  std::vector<ModelCheckParams> params;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Large regions: pure Algorithm 2. Tiny regions: overflow protocol.
    params.push_back({seed, 64, 3, 0.5});
    params.push_back({seed + 100, 2, 3, 0.5});
    params.push_back({seed + 200, 1, 2, 0.3});
    params.push_back({seed + 300, 3, 1, 0.7});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sequences, ModelCheckTest,
                         ::testing::ValuesIn(MakeParams()));

}  // namespace
}  // namespace netlock
