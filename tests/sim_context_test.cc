// Tests for per-simulation telemetry contexts: isolation between contexts,
// the Default() view of the process-wide globals, and merging sweep results
// back in task order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/sim_context.h"
#include "harness/experiment.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace netlock {
namespace {

TEST(SimContextTest, DefaultWrapsGlobals) {
  SimContext& def = SimContext::Default();
  EXPECT_TRUE(def.is_default());
  EXPECT_EQ(&def.metrics(), &MetricsRegistry::Global());
  EXPECT_EQ(&def.trace(), &TraceLog::Global());
  // Default() is a singleton view.
  EXPECT_EQ(&SimContext::Default(), &def);
}

TEST(SimContextTest, OwnedContextIsIsolated) {
  SimContext a;
  SimContext b;
  EXPECT_FALSE(a.is_default());
  EXPECT_NE(&a.metrics(), &b.metrics());
  EXPECT_NE(&a.metrics(), &MetricsRegistry::Global());
  a.metrics().Counter("isolated.counter").Inc(7);
  EXPECT_EQ(a.metrics().Counter("isolated.counter").value(), 7u);
  EXPECT_EQ(b.metrics().Counter("isolated.counter").value(), 0u);
}

TEST(SimContextTest, SimulatorBindsContextAndDefaultsToGlobal) {
  Simulator global_sim;
  EXPECT_TRUE(global_sim.context().is_default());

  SimContext context;
  Simulator sim(&context);
  EXPECT_EQ(&sim.context(), &context);

  const std::uint64_t global_events_before =
      MetricsRegistry::Global().Counter("sim.events_processed").value();
  for (int i = 0; i < 5; ++i) sim.Schedule(i, []() {});
  sim.Run();
  EXPECT_EQ(context.metrics().Counter("sim.events_processed").value(), 5u);
  EXPECT_EQ(
      MetricsRegistry::Global().Counter("sim.events_processed").value(),
      global_events_before);
}

TEST(SimContextTest, NetworkTelemetryFollowsSimulatorContext) {
  SimContext context;
  Simulator sim(&context);
  Network net(sim, 100);
  const NodeId a = net.AddNode(nullptr);
  const NodeId b = net.AddNode([](const Packet&) {});
  Packet pkt;
  pkt.src = a;
  pkt.dst = b;
  net.Send(pkt);
  sim.Run();
  EXPECT_EQ(context.metrics().Counter("net.packets").value(), 1u);
}

TEST(SimContextTest, MergeFromAddsCountersAndMaxesHighWater) {
  SimContext target;
  target.metrics().Counter("c").Inc(10);
  target.metrics().Gauge("g").Set(50);  // hwm 50.
  target.metrics().Gauge("g").Set(5);

  SimContext source;
  source.metrics().Counter("c").Inc(3);
  source.metrics().Gauge("g").Set(20);  // hwm 20, value 20.

  target.metrics().MergeFrom(source.metrics());
  EXPECT_EQ(target.metrics().Counter("c").value(), 13u);
  // Gauge takes the merged-in value (last writer), hwm takes the max.
  EXPECT_EQ(target.metrics().Gauge("g").value(), 20u);
  EXPECT_EQ(target.metrics().Gauge("g").high_water(), 50u);
}

TEST(ParallelSweepTest, MergesTaskMetricsInTaskOrder) {
  // Each task writes a task-identifying gauge value; merging in task order
  // means the LAST task's value wins deterministically, and counters sum.
  for (const int threads : {1, 4}) {
    SimContext merged;
    ParallelSweep(
        8, threads,
        [](int task, SimContext& context) {
          context.metrics().Counter("sweep.work").Inc(
              static_cast<std::uint64_t>(task + 1));
          context.metrics().Gauge("sweep.last_task").Set(
              static_cast<std::uint64_t>(task));
        },
        &merged);
    EXPECT_EQ(merged.metrics().Counter("sweep.work").value(), 36u)
        << "threads=" << threads;
    EXPECT_EQ(merged.metrics().Gauge("sweep.last_task").value(), 7u)
        << "threads=" << threads;
  }
}

TEST(ParallelSweepTest, RunsEveryTaskExactlyOnce) {
  std::vector<int> hits(64, 0);
  SimContext merged;
  ParallelSweep(
      64, 8,
      [&hits](int task, SimContext& context) {
        // Tasks run concurrently but each index is claimed exactly once,
        // so unsynchronized per-index writes are safe.
        hits[static_cast<std::size_t>(task)] += 1;
        context.metrics().Counter("n").Inc();
      },
      &merged);
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(merged.metrics().Counter("n").value(), 64u);
}

}  // namespace
}  // namespace netlock
