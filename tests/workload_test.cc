// Tests for the workload generators: normalization, microbenchmark
// parameters, and TPC-C structure (mix, lock-id packing, modes, contention
// settings).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace netlock {
namespace {

TEST(NormalizeTxnTest, SortsAndDedupes) {
  TxnSpec txn;
  txn.locks = {{5, LockMode::kShared},
               {2, LockMode::kExclusive},
               {5, LockMode::kExclusive},
               {2, LockMode::kExclusive}};
  NormalizeTxn(txn);
  ASSERT_EQ(txn.locks.size(), 2u);
  EXPECT_EQ(txn.locks[0].lock, 2u);
  EXPECT_EQ(txn.locks[1].lock, 5u);
  // Exclusive subsumes shared for the duplicated lock.
  EXPECT_EQ(txn.locks[1].mode, LockMode::kExclusive);
}

TEST(MicroWorkloadTest, RespectsLockRange) {
  MicroConfig config;
  config.num_locks = 10;
  config.first_lock = 100;
  MicroWorkload workload(config);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const TxnSpec txn = workload.Next(rng);
    for (const LockRequest& req : txn.locks) {
      EXPECT_GE(req.lock, 100u);
      EXPECT_LT(req.lock, 110u);
    }
  }
  EXPECT_EQ(workload.lock_space(), 110u);
}

TEST(MicroWorkloadTest, SharedFractionHonored) {
  MicroConfig config;
  config.num_locks = 1000;
  config.shared_fraction = 0.7;
  MicroWorkload workload(config);
  Rng rng(2);
  int shared = 0, total = 0;
  for (int i = 0; i < 10000; ++i) {
    for (const LockRequest& req : workload.Next(rng).locks) {
      ++total;
      if (req.mode == LockMode::kShared) ++shared;
    }
  }
  EXPECT_NEAR(static_cast<double>(shared) / total, 0.7, 0.02);
}

TEST(MicroWorkloadTest, LocksPerTxn) {
  MicroConfig config;
  config.num_locks = 10000;
  config.locks_per_txn = 8;
  MicroWorkload workload(config);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    // Normalization can merge duplicates, but with 10000 locks collisions
    // are rare: almost always exactly 8.
    EXPECT_LE(workload.Next(rng).locks.size(), 8u);
    EXPECT_GE(workload.Next(rng).locks.size(), 7u);
  }
}

TEST(MicroWorkloadTest, ZipfSkewsTraffic) {
  MicroConfig config;
  config.num_locks = 1000;
  config.zipf_alpha = 1.2;
  MicroWorkload workload(config);
  Rng rng(4);
  std::map<LockId, int> counts;
  for (int i = 0; i < 20000; ++i) {
    ++counts[workload.Next(rng).locks[0].lock];
  }
  int head = 0;
  for (LockId l = 0; l < 10; ++l) head += counts[l];
  EXPECT_GT(head, 20000 / 3);
}

class TpccTest : public ::testing::Test {
 protected:
  TpccConfig MakeConfig(std::uint32_t warehouses, std::uint32_t home) {
    TpccConfig config;
    config.warehouses = warehouses;
    config.home_warehouse = home;
    return config;
  }
};

TEST_F(TpccTest, LockIdRangesDisjoint) {
  TpccWorkload workload(MakeConfig(10, 0));
  std::set<LockId> ids;
  ids.insert(workload.WarehouseLock(9));
  ids.insert(workload.DistrictLock(9, 9));
  ids.insert(workload.CustomerLock(9, 9, 2999));
  ids.insert(workload.ItemLock(99999));
  ids.insert(workload.StockLock(9, 99999));
  EXPECT_EQ(ids.size(), 5u);
  // Ranges are ordered coldest -> hottest and within the lock space (hot
  // tables sort last so transactions lock them last).
  EXPECT_LT(workload.StockLock(9, 99999), workload.ItemLock(0));
  EXPECT_LT(workload.ItemLock(99999), workload.CustomerLock(0, 0, 0));
  EXPECT_LT(workload.CustomerLock(9, 9, 2999), workload.DistrictLock(0, 0));
  EXPECT_LT(workload.DistrictLock(9, 9), workload.WarehouseLock(0));
  EXPECT_LT(workload.WarehouseLock(9), workload.lock_space());
}

TEST_F(TpccTest, MixMatchesSpec) {
  Rng rng(5);
  std::map<TpccTxnType, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[TpccWorkload::SampleType(rng)];
  EXPECT_NEAR(counts[TpccTxnType::kNewOrder], n * 0.45, n * 0.01);
  EXPECT_NEAR(counts[TpccTxnType::kPayment], n * 0.43, n * 0.01);
  EXPECT_NEAR(counts[TpccTxnType::kOrderStatus], n * 0.04, n * 0.005);
  EXPECT_NEAR(counts[TpccTxnType::kDelivery], n * 0.04, n * 0.005);
  EXPECT_NEAR(counts[TpccTxnType::kStockLevel], n * 0.04, n * 0.005);
}

TEST_F(TpccTest, TxnsAreNormalized) {
  TpccWorkload workload(MakeConfig(4, 1));
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const TxnSpec txn = workload.Next(rng);
    ASSERT_FALSE(txn.locks.empty());
    for (std::size_t k = 1; k < txn.locks.size(); ++k) {
      EXPECT_LT(txn.locks[k - 1].lock, txn.locks[k].lock);
    }
    for (const LockRequest& req : txn.locks) {
      EXPECT_LT(req.lock, workload.lock_space());
    }
  }
}

TEST_F(TpccTest, WarehouseRowIsHotUnderPayment) {
  // Payment takes the home warehouse row exclusive; with the standard mix
  // the warehouse lock shows up in a large fraction of transactions.
  TpccWorkload workload(MakeConfig(1, 0));
  Rng rng(7);
  int touches_warehouse_exclusive = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    for (const LockRequest& req : workload.Next(rng).locks) {
      if (req.lock == workload.WarehouseLock(0) &&
          req.mode == LockMode::kExclusive) {
        ++touches_warehouse_exclusive;
      }
    }
  }
  EXPECT_NEAR(touches_warehouse_exclusive, n * 0.43, n * 0.02);
}

TEST_F(TpccTest, SingleWarehouseNeverRemote) {
  TpccWorkload workload(MakeConfig(1, 0));
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    for (const LockRequest& req : workload.Next(rng).locks) {
      // All stock locks must belong to warehouse 0.
      EXPECT_LT(req.lock, workload.lock_space());
    }
  }
}

TEST_F(TpccTest, RemotePaymentTouchesOtherWarehouses) {
  TpccWorkload workload(MakeConfig(10, 3));
  Rng rng(9);
  bool saw_remote_customer = false;
  const LockId home_customer_base = workload.CustomerLock(3, 0, 0);
  const LockId home_customer_end = workload.CustomerLock(3, 9, 2999);
  for (int i = 0; i < 20000 && !saw_remote_customer; ++i) {
    const TxnSpec txn = workload.Next(rng);
    for (const LockRequest& req : txn.locks) {
      if (req.lock >= workload.CustomerLock(0, 0, 0) &&
          req.lock < workload.DistrictLock(0, 0) &&
          (req.lock < home_customer_base || req.lock > home_customer_end)) {
        saw_remote_customer = true;
      }
    }
  }
  EXPECT_TRUE(saw_remote_customer);
}

TEST_F(TpccTest, NewOrderShape) {
  // NewOrder has 5-15 order lines: lock count 3 + 2*ol_cnt (minus rare
  // dedup collisions).
  TpccWorkload workload(MakeConfig(10, 0));
  Rng rng(10);
  for (int i = 0; i < 5000; ++i) {
    const TxnSpec txn = workload.Next(rng);
    EXPECT_GE(txn.locks.size(), 2u);
    EXPECT_LE(txn.locks.size(), 3u + 2u * 15u);
  }
}

TEST_F(TpccTest, CoarseningShrinksLockSpace) {
  TpccConfig fine = MakeConfig(4, 0);
  TpccConfig coarse = MakeConfig(4, 0);
  coarse.item_granularity = 8;
  coarse.stock_granularity = 64;
  coarse.customer_granularity = 16;
  TpccWorkload wf(fine), wc(coarse);
  EXPECT_LT(wc.lock_space(), wf.lock_space());
  // Adjacent rows map to one coarse lock; distant rows to different ones.
  EXPECT_EQ(wc.ItemLock(0), wc.ItemLock(7));
  EXPECT_NE(wc.ItemLock(0), wc.ItemLock(8));
  EXPECT_EQ(wc.StockLock(0, 0), wc.StockLock(0, 63));
  EXPECT_NE(wc.StockLock(0, 0), wc.StockLock(0, 64));
  EXPECT_EQ(wc.CustomerLock(0, 0, 0), wc.CustomerLock(0, 0, 15));
}

TEST_F(TpccTest, CoarsenedIdsStayInBounds) {
  TpccConfig config = MakeConfig(3, 1);
  config.item_granularity = 7;   // Non-power-of-two.
  config.stock_granularity = 33;
  config.customer_granularity = 100;
  TpccWorkload workload(config);
  EXPECT_LT(workload.StockLock(2, TpccWorkload::kItems - 1),
            workload.ItemLock(0));
  EXPECT_LT(workload.ItemLock(TpccWorkload::kItems - 1),
            workload.CustomerLock(0, 0, 0));
  EXPECT_LT(workload.CustomerLock(2, 9, 2999),
            workload.DistrictLock(0, 0));
  EXPECT_LT(workload.WarehouseLock(2), workload.lock_space());
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    for (const LockRequest& req : workload.Next(rng).locks) {
      EXPECT_LT(req.lock, workload.lock_space());
    }
  }
}

TEST_F(TpccTest, UnlockedCatalogAndStock) {
  TpccConfig config = MakeConfig(2, 0);
  config.lock_items = false;
  config.lock_stock = false;
  TpccWorkload workload(config);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    for (const LockRequest& req : workload.Next(rng).locks) {
      // Only warehouse / district / customer rows are ever locked (all of
      // which sit above the item range in the hot-last layout).
      EXPECT_GE(req.lock, workload.CustomerLock(0, 0, 0));
    }
  }
}

TEST_F(TpccTest, DeterministicPerSeed) {
  TpccWorkload w1(MakeConfig(5, 2));
  TpccWorkload w2(MakeConfig(5, 2));
  Rng r1(11), r2(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(w1.Next(r1).locks, w2.Next(r2).locks);
  }
}


TEST(YcsbWorkloadTest, ModeMixMatchesWriteFraction) {
  YcsbConfig config;
  config.num_keys = 10'000;
  config.write_fraction = 0.5;  // Workload A.
  YcsbWorkload workload(config);
  Rng rng(21);
  int writes = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    for (const LockRequest& req : workload.Next(rng).locks) {
      ++total;
      writes += req.mode == LockMode::kExclusive;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.5, 0.02);
}

TEST(YcsbWorkloadTest, ZipfConcentratesOnHotKeys) {
  YcsbConfig config;
  config.num_keys = 100'000;
  config.zipf_alpha = 0.99;
  YcsbWorkload workload(config);
  Rng rng(22);
  int hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (workload.Next(rng).locks[0].lock < 100) ++hot;
  }
  // YCSB 0.99 skew: top-100 of 100K get a large share.
  EXPECT_GT(hot, n / 5);
}

TEST(YcsbWorkloadTest, KeyRangeAndMultiKeyTxns) {
  YcsbConfig config;
  config.num_keys = 64;
  config.first_key = 1000;
  config.keys_per_txn = 4;
  YcsbWorkload workload(config);
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const TxnSpec txn = workload.Next(rng);
    EXPECT_LE(txn.locks.size(), 4u);
    for (const LockRequest& req : txn.locks) {
      EXPECT_GE(req.lock, 1000u);
      EXPECT_LT(req.lock, 1064u);
    }
  }
  EXPECT_EQ(workload.lock_space(), 1064u);
}

}  // namespace
}  // namespace netlock
