// Tests for the wait-free sharded telemetry plane: single-writer counter,
// gauge, and histogram semantics; delta publication into a MetricsRegistry;
// name lookup; concurrent writers vs. an aggregating reader (the contract
// the live stats poller relies on — run under TSan in CI); and the
// backend-neutral TimeSeriesStore's bucketing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/timeseries.h"

namespace netlock {
namespace {

TEST(TelemetryDomainTest, CountersSumAcrossShards) {
  TelemetryDomain domain(3);
  const TelemetryCounter c = domain.RegisterCounter("t.grants");
  domain.Inc(0, c, 5);
  domain.Inc(1, c);
  domain.Inc(2, c, 10);
  domain.Inc(1, c, 2);
  EXPECT_EQ(domain.CounterShard(0, c), 5u);
  EXPECT_EQ(domain.CounterShard(1, c), 3u);
  EXPECT_EQ(domain.CounterShard(2, c), 10u);
  EXPECT_EQ(domain.CounterTotal(c), 18u);
  EXPECT_EQ(domain.counter_name(c), "t.grants");
}

TEST(TelemetryDomainTest, GaugeAggregationSumAndMax) {
  TelemetryDomain domain(2);
  const TelemetryGauge depth =
      domain.RegisterGauge("t.depth", TelemetryDomain::GaugeAgg::kSum);
  const TelemetryGauge batch =
      domain.RegisterGauge("t.batch", TelemetryDomain::GaugeAgg::kMax);
  domain.GaugeSet(0, depth, 4);
  domain.GaugeSet(1, depth, 6);
  domain.GaugeSet(0, batch, 9);
  domain.GaugeSet(1, batch, 3);
  EXPECT_EQ(domain.GaugeTotal(depth), 10u);
  EXPECT_EQ(domain.GaugeTotal(batch), 9u);
  // Lowering a gauge keeps its high-water mark.
  domain.GaugeSet(0, depth, 1);
  domain.GaugeSet(0, batch, 2);
  EXPECT_EQ(domain.GaugeTotal(depth), 7u);
  EXPECT_EQ(domain.GaugeShardHighWater(0, depth), 4u);
  EXPECT_EQ(domain.GaugeHighWater(depth), 10u);  // Sum of shard hwms.
  EXPECT_EQ(domain.GaugeHighWater(batch), 9u);   // Max of shard hwms.
}

TEST(TelemetryDomainTest, HistogramMatchesReferenceLogHistogram) {
  TelemetryDomain domain(2);
  const TelemetryHistogram h = domain.RegisterHistogram("t.lat");
  LogHistogram reference;
  const SimTime samples[] = {10,    999,    1000,   4096,  4097,
                             65536, 100000, 123456, 7,     1};
  int shard = 0;
  for (const SimTime s : samples) {
    domain.Record(shard, h, s);
    reference.Record(s);
    shard = 1 - shard;
  }
  const LogHistogram merged = domain.HistogramMerged(h);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_EQ(merged.Min(), reference.Min());
  EXPECT_EQ(merged.Max(), reference.Max());
  EXPECT_DOUBLE_EQ(merged.Mean(), reference.Mean());
  for (const double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.Percentile(p), reference.Percentile(p)) << "p=" << p;
  }
  // Per-shard view holds only that shard's half.
  EXPECT_EQ(domain.HistogramShard(0, h).count(), 5u);
  EXPECT_EQ(domain.HistogramShard(1, h).count(), 5u);
}

TEST(TelemetryDomainTest, FindByName) {
  TelemetryDomain domain(1);
  const TelemetryCounter c = domain.RegisterCounter("t.c");
  const TelemetryGauge g = domain.RegisterGauge("t.g");
  const TelemetryHistogram h = domain.RegisterHistogram("t.h");
  TelemetryCounter fc;
  TelemetryGauge fg;
  TelemetryHistogram fh;
  ASSERT_TRUE(domain.FindCounter("t.c", &fc));
  ASSERT_TRUE(domain.FindGauge("t.g", &fg));
  ASSERT_TRUE(domain.FindHistogram("t.h", &fh));
  EXPECT_EQ(fc.slot, c.slot);
  EXPECT_EQ(fg.slot, g.slot);
  EXPECT_EQ(fh.slot, h.slot);
  EXPECT_FALSE(domain.FindCounter("t.nope", &fc));
  EXPECT_FALSE(domain.FindGauge("t.c", &fg));
  EXPECT_FALSE(domain.FindHistogram("t.g", &fh));
}

TEST(TelemetryDomainTest, PublishToFoldsDeltasIdempotently) {
  MetricsRegistry registry;
  TelemetryDomain domain(2);
  const TelemetryCounter c = domain.RegisterCounter("t.pub.grants");
  const TelemetryGauge g = domain.RegisterGauge("t.pub.depth");
  const TelemetryHistogram h = domain.RegisterHistogram("t.pub.lat");
  domain.Inc(0, c, 3);
  domain.Inc(1, c, 4);
  domain.GaugeSet(0, g, 5);
  domain.Record(0, h, 1000);
  domain.PublishTo(registry);
  EXPECT_EQ(registry.Counter("t.pub.grants").value(), 7u);
  EXPECT_EQ(registry.Gauge("t.pub.depth").value(), 5u);
  EXPECT_EQ(registry.Counter("t.pub.lat.count").value(), 1u);
  EXPECT_GT(registry.Gauge("t.pub.lat.p50_ns").value(), 0u);
  // Re-publishing with no new writes must not double-count.
  domain.PublishTo(registry);
  EXPECT_EQ(registry.Counter("t.pub.grants").value(), 7u);
  EXPECT_EQ(registry.Counter("t.pub.lat.count").value(), 1u);
  // New writes flow through as growth only.
  domain.Inc(0, c, 2);
  domain.Record(1, h, 2000);
  domain.PublishTo(registry);
  EXPECT_EQ(registry.Counter("t.pub.grants").value(), 9u);
  EXPECT_EQ(registry.Counter("t.pub.lat.count").value(), 2u);
}

// The live poller's contract: shard-owning writers keep writing while a
// reader aggregates and publishes. Run under TSan in CI — the assertions
// here are secondary to the race-freedom of the interleaving itself.
TEST(TelemetryDomainTest, ConcurrentWritersWithAggregatingReader) {
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  MetricsRegistry registry;
  TelemetryDomain domain(kWriters);
  const TelemetryCounter c = domain.RegisterCounter("t.mt.count");
  const TelemetryGauge g = domain.RegisterGauge("t.mt.depth");
  const TelemetryHistogram h = domain.RegisterHistogram("t.mt.lat");
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      domain.PublishTo(registry);
      (void)domain.CounterTotal(c);
      (void)domain.GaugeTotal(g);
      (void)domain.HistogramMerged(h).Percentile(0.99);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        domain.Inc(w, c);
        domain.GaugeSet(w, g, i & 0xff);
        domain.Record(w, h, 100 + (i & 0x3ff));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // Quiesced: the aggregate view is exact.
  EXPECT_EQ(domain.CounterTotal(c), kWriters * kPerWriter);
  EXPECT_EQ(domain.HistogramMerged(h).count(), kWriters * kPerWriter);
  domain.PublishTo(registry);
  EXPECT_EQ(registry.Counter("t.mt.count").value(), kWriters * kPerWriter);
  EXPECT_EQ(registry.Counter("t.mt.lat.count").value(),
            kWriters * kPerWriter);
}

// --- TimeSeriesStore -----------------------------------------------------

TEST(TimeSeriesStoreTest, CounterDeltasAndRates) {
  MetricsRegistry registry;
  MetricCounter& c = registry.Counter("t.ts.grants");
  TimeSeriesStore store(kMillisecond);
  store.Watch("t.ts.grants", c);
  c.Inc(100);  // Pre-start history must not leak into bucket 0.
  store.Begin(0);
  c.Inc(3);
  store.Tick();
  store.Tick();
  c.Inc(5);
  store.Tick();
  ASSERT_EQ(store.num_series(), 1u);
  ASSERT_EQ(store.num_buckets(), 3u);
  EXPECT_TRUE(store.series_is_rate(0));
  EXPECT_EQ(store.Delta(0, 0), 3u);
  EXPECT_EQ(store.Delta(0, 1), 0u);
  EXPECT_EQ(store.Delta(0, 2), 5u);
  // 3 events / 1 ms = 3000 events/s.
  EXPECT_DOUBLE_EQ(store.Value(0, 0), 3000.0);
  EXPECT_DOUBLE_EQ(store.Value(0, 2), 5000.0);
  EXPECT_DOUBLE_EQ(store.BucketTimeSeconds(0), 0.5e-3);
}

TEST(TimeSeriesStoreTest, GaugeLevels) {
  MetricsRegistry registry;
  MetricGauge& g = registry.Gauge("t.ts.depth");
  TimeSeriesStore store(kMillisecond);
  store.WatchGauge("t.ts.depth", g);
  store.Begin(0);
  g.Set(7);
  store.Tick();
  g.Set(4);
  store.Tick();
  ASSERT_EQ(store.num_buckets(), 2u);
  EXPECT_FALSE(store.series_is_rate(0));
  EXPECT_DOUBLE_EQ(store.Value(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(store.Value(0, 1), 4.0);
}

}  // namespace
}  // namespace netlock
