// Tests for the memory-bounded log-bucket histogram: bounded relative
// error against the exact recorder, range tracking, merge, and edge cases.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/random.h"
#include "common/stats.h"

namespace netlock {
namespace {

TEST(LogHistogramTest, EmptyIsZero) {
  LogHistogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist.Percentile(0.5), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Max(), 0u);
}

TEST(LogHistogramTest, SmallValuesExact) {
  LogHistogram hist;
  for (SimTime v = 0; v < 64; ++v) hist.Record(v);
  // Values below kSubBuckets land in unit buckets: exact quantiles.
  EXPECT_EQ(hist.Percentile(0.0), 0u);
  EXPECT_EQ(hist.Median(), 31u);
  EXPECT_EQ(hist.Percentile(1.0), 63u);
}

TEST(LogHistogramTest, MeanIsExact) {
  LogHistogram hist;
  hist.Record(1000);
  hist.Record(3000);
  EXPECT_DOUBLE_EQ(hist.Mean(), 2000.0);
}

TEST(LogHistogramTest, MinMaxTracked) {
  LogHistogram hist;
  hist.Record(123);
  hist.Record(4'567'890);
  EXPECT_EQ(hist.Min(), 123u);
  EXPECT_EQ(hist.Max(), 4'567'890u);
}

TEST(LogHistogramTest, QuantilesWithinRelativeErrorOfExact) {
  LogHistogram hist;
  LatencyRecorder exact;
  Rng rng(99);
  // Latency-shaped distribution: exponential around 8 us plus a heavy tail.
  for (int i = 0; i < 200'000; ++i) {
    SimTime v = static_cast<SimTime>(rng.NextExponential(8000.0));
    if (rng.NextBool(0.01)) v += rng.NextBounded(2'000'000);
    hist.Record(v);
    exact.Record(v);
  }
  for (const double p : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double approx = static_cast<double>(hist.Percentile(p));
    const double truth = static_cast<double>(exact.Percentile(p));
    EXPECT_NEAR(approx, truth, truth * 0.03 + 2.0) << "p=" << p;
  }
  EXPECT_NEAR(hist.Mean(), exact.Mean(), exact.Mean() * 0.001);
}

TEST(LogHistogramTest, MergeEquivalentToCombinedRecording) {
  LogHistogram a, b, combined;
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const SimTime v = rng.NextBounded(1'000'000);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  for (const double p : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << p;
  }
  EXPECT_EQ(a.Min(), combined.Min());
  EXPECT_EQ(a.Max(), combined.Max());
}

TEST(LogHistogramTest, ClearResets) {
  LogHistogram hist;
  hist.Record(42);
  hist.Clear();
  EXPECT_TRUE(hist.empty());
  hist.Record(7);
  EXPECT_EQ(hist.Median(), 7u);
}

TEST(LogHistogramTest, HugeOutliersClampNotCrash) {
  LogHistogram hist;
  hist.Record(~SimTime{0});  // Beyond the covered range.
  hist.Record(100);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.Max(), ~SimTime{0});
  // The quantile is clamped to the observed range.
  EXPECT_LE(hist.Percentile(1.0), ~SimTime{0});
}

TEST(LogHistogramTest, BucketForIsMonotone) {
  // Regression: outliers past kMaxExponent used to keep mantissa bits from
  // the unclamped shift, so a larger value could land in a *smaller* bucket
  // near the clamp, distorting tail percentiles. Walk a dense set of values
  // spanning the clamp boundary and require a non-decreasing bucket index.
  std::uint32_t prev = 0;
  bool first = true;
  for (int exp = 0; exp <= 63; ++exp) {
    const SimTime base = SimTime{1} << exp;
    for (SimTime off : {SimTime{0}, base / 4, base / 2, base - 1}) {
      const SimTime v = base + off;
      if (v < base) continue;  // Overflow at exp==63.
      const std::uint32_t bucket = LogHistogram::BucketFor(v);
      if (!first) {
        EXPECT_GE(bucket, prev) << "value=" << v;
      }
      prev = bucket;
      first = false;
    }
  }
  // The clamp saturates: everything past the range shares the top bucket.
  constexpr std::uint32_t kTop =
      LogHistogram::kMaxExponent * LogHistogram::kSubBuckets +
      (LogHistogram::kSubBuckets - 1);
  EXPECT_EQ(LogHistogram::BucketFor(SimTime{1} << 41), kTop);
  EXPECT_EQ(LogHistogram::BucketFor(~SimTime{0}), kTop);
}

TEST(LogHistogramTest, BucketMidpointWithinBucketBounds) {
  // Every reachable bucket's midpoint must map back to that same bucket —
  // i.e. the midpoint lies within the bucket's own bounds. (Buckets for
  // exponents 1..5 are unreachable: values below kSubBuckets use the unit
  // buckets instead, so BucketFor never produces them and Percentile never
  // visits them.)
  constexpr std::uint32_t kLast =
      (LogHistogram::kMaxExponent + 1) * LogHistogram::kSubBuckets - 1;
  for (std::uint32_t bucket = 0; bucket <= kLast; ++bucket) {
    const std::uint32_t exponent = bucket / LogHistogram::kSubBuckets;
    if (exponent >= 1 && exponent < 6) continue;  // Unreachable range.
    const SimTime mid = LogHistogram::BucketMidpoint(bucket);
    EXPECT_EQ(LogHistogram::BucketFor(mid), bucket) << "bucket=" << bucket;
  }
}

TEST(LogHistogramTest, OutlierDoesNotShrinkTailPercentile) {
  // Pre-fix, ~0ULL landed in a mid-range bucket *below* legitimate large
  // samples, dragging p100 under the true maximum region.
  LogHistogram hist;
  const SimTime big = (SimTime{1} << 40) - 1;  // In-range large sample.
  for (int i = 0; i < 100; ++i) hist.Record(1000);
  hist.Record(big);
  hist.Record(~SimTime{0});  // Outlier: must sort above `big`.
  EXPECT_GE(LogHistogram::BucketFor(~SimTime{0}),
            LogHistogram::BucketFor(big));
}

}  // namespace
}  // namespace netlock
