// Regression tests for LatencyRecorder's sort-flag discipline. The flag
// bug class: EnsureSorted caches sorted_=true, and any mutation that fails
// to clear it makes later Percentile calls read a mis-sorted vector. The
// pre-existing RecordAfterQueryResorts test in common_test.cc happened to
// pass with a stale flag (the probed value landed at the median position
// of the unsorted vector), so these tests place samples where a stale sort
// yields visibly wrong order statistics.
#include <gtest/gtest.h>

#include "common/stats.h"

namespace netlock {
namespace {

TEST(StatsRegressionTest, InterleavedRecordPercentileStaysSorted) {
  LatencyRecorder rec;
  // Sort the vector via a query, then append strictly smaller values: with
  // a stale flag, the tail of the "sorted" vector holds the new minima and
  // every upper percentile reads garbage.
  for (SimTime v = 100; v <= 200; ++v) rec.Record(v);
  EXPECT_EQ(rec.P99(), 199u);
  for (SimTime v = 1; v <= 50; ++v) rec.Record(v);
  // 151 samples in [1,50] + [100,200]. p99: rank ceil(0.99*151)=150 ->
  // index 149 -> value 199. A stale sort would report a value from [1,50].
  EXPECT_EQ(rec.P99(), 199u);
  EXPECT_EQ(rec.Max(), 200u);
  EXPECT_EQ(rec.Min(), 1u);
  // Median of the combined set: rank ceil(0.5*151)=76 -> index 75. The
  // sorted prefix [1..50] occupies indices 0..49, so index 75 is
  // 100+(75-50)=125.
  EXPECT_EQ(rec.Median(), 125u);
}

TEST(StatsRegressionTest, RepeatedInterleavingEveryQuery) {
  // The time-sliced benches interleave Record and Percentile on every
  // bucket; emulate that pattern with descending data so any stale flag
  // surfaces immediately.
  LatencyRecorder rec;
  for (SimTime v = 100; v >= 1; --v) {
    rec.Record(v);
    // Minimum so far is always the just-recorded v.
    ASSERT_EQ(rec.Min(), v);
    ASSERT_EQ(rec.Max(), 100u);
  }
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.Median(), 50u);
}

TEST(StatsRegressionTest, MergeAfterQueryResorts) {
  LatencyRecorder a, b;
  for (SimTime v = 100; v <= 110; ++v) a.Record(v);
  EXPECT_EQ(a.Max(), 110u);  // Sorts a.
  for (SimTime v = 1; v <= 5; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 16u);
  EXPECT_EQ(a.Min(), 1u);
  EXPECT_EQ(a.Max(), 110u);
  EXPECT_EQ(a.Percentile(1.0), 110u);
}

TEST(StatsRegressionTest, SelfMergeDoublesSamples) {
  LatencyRecorder rec;
  rec.Record(10);
  rec.Record(20);
  EXPECT_EQ(rec.Max(), 20u);  // Sorts; self-merge must clear the flag too.
  rec.Merge(rec);
  EXPECT_EQ(rec.count(), 4u);
  EXPECT_EQ(rec.Min(), 10u);
  EXPECT_EQ(rec.Max(), 20u);
  EXPECT_EQ(rec.Median(), 10u);  // Sorted: [10,10,20,20]; rank 2 -> 10.
}

TEST(StatsRegressionTest, CdfAfterLateRecordsIsMonotone) {
  LatencyRecorder rec;
  for (SimTime v = 1000; v <= 1100; ++v) rec.Record(v);
  (void)rec.Cdf(10);  // Sorts.
  for (SimTime v = 1; v <= 100; ++v) rec.Record(v);
  const auto cdf = rec.Cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
  }
  EXPECT_EQ(cdf.front().first >= 1u, true);
  EXPECT_EQ(cdf.back().first, 1100u);
}

TEST(StatsRegressionTest, ClearResetsFlagAndSamples) {
  LatencyRecorder rec;
  rec.Record(5);
  EXPECT_EQ(rec.Max(), 5u);
  rec.Clear();
  EXPECT_TRUE(rec.empty());
  rec.Record(9);
  rec.Record(3);
  EXPECT_EQ(rec.Min(), 3u);
  EXPECT_EQ(rec.Max(), 9u);
}

}  // namespace
}  // namespace netlock
