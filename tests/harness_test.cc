// Tests for the experiment harness: testbed wiring for every system,
// run/collect mechanics, demand helpers, profiling flow, and reporting
// utilities.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/testbed.h"

namespace netlock {
namespace {

TestbedConfig SmallConfig(SystemKind system) {
  TestbedConfig config;
  config.system = system;
  config.client_machines = 2;
  config.sessions_per_machine = 2;
  config.lock_servers = 2;
  MicroConfig micro;
  micro.num_locks = 128;
  config.workload_factory = MicroFactory(micro);
  return config;
}

class HarnessSystemsTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(HarnessSystemsTest, BuildsAndRuns) {
  Testbed testbed(SmallConfig(GetParam()));
  EXPECT_EQ(testbed.num_engines(), 4);
  if (GetParam() == SystemKind::kNetLock) {
    MicroConfig micro;
    micro.num_locks = 128;
    testbed.netlock().InstallKnapsack(UniformMicroDemands(micro, 4));
  }
  const RunMetrics m = testbed.Run(kMillisecond, 10 * kMillisecond);
  EXPECT_GT(m.txn_commits, 10u);
  EXPECT_EQ(m.duration, 10 * kMillisecond);
  testbed.StopEngines();
  for (int i = 0; i < testbed.num_engines(); ++i) {
    EXPECT_TRUE(testbed.engine(i).idle());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, HarnessSystemsTest,
    ::testing::Values(SystemKind::kNetLock, SystemKind::kServerOnly,
                      SystemKind::kDslr, SystemKind::kDrtm,
                      SystemKind::kNetChain),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      return ToString(info.param);
    });

TEST(HarnessTest, RecordingWindowOnly) {
  Testbed testbed(SmallConfig(SystemKind::kServerOnly));
  testbed.StartEngines();
  testbed.sim().RunUntil(5 * kMillisecond);
  const RunMetrics before = testbed.Collect(kMillisecond);
  EXPECT_EQ(before.txn_commits, 0u);  // Nothing recorded during warmup.
  testbed.SetRecording(true);
  testbed.sim().RunUntil(10 * kMillisecond);
  const RunMetrics after = testbed.Collect(5 * kMillisecond);
  EXPECT_GT(after.txn_commits, 0u);
  testbed.StopEngines();
}

TEST(HarnessTest, ProfileDemandsHarvestsAndDrains) {
  TestbedConfig config = SmallConfig(SystemKind::kNetLock);
  Testbed testbed(config);
  const std::vector<LockDemand> demands =
      testbed.ProfileDemands(20 * kMillisecond);
  EXPECT_FALSE(demands.empty());
  for (const LockDemand& d : demands) {
    EXPECT_GT(d.rate, 0.0);
    EXPECT_GE(d.contention, 1u);
    EXPECT_LT(d.lock, 128u);
  }
  for (int i = 0; i < testbed.num_engines(); ++i) {
    EXPECT_TRUE(testbed.engine(i).idle());
  }
}

TEST(HarnessTest, ProfileAndInstallUsesKnapsack) {
  TestbedConfig config = SmallConfig(SystemKind::kNetLock);
  Testbed testbed(config);
  const auto demands = ProfileAndInstall(testbed, /*capacity=*/1024);
  EXPECT_FALSE(demands.empty());
  EXPECT_GT(testbed.netlock().lock_switch().table().num_installed(), 0u);
}

TEST(HarnessTest, SessionWrapperApplied) {
  TestbedConfig config = SmallConfig(SystemKind::kServerOnly);
  int wrapped = 0;
  config.session_wrapper = [&](std::unique_ptr<LockSession> inner) {
    ++wrapped;
    return inner;
  };
  Testbed testbed(config);
  EXPECT_EQ(wrapped, 4);
}

TEST(ExperimentHelpersTest, UniformMicroDemands) {
  MicroConfig micro;
  micro.num_locks = 100;
  micro.first_lock = 50;
  const auto demands = UniformMicroDemands(micro, 16);
  ASSERT_EQ(demands.size(), 100u);
  EXPECT_EQ(demands.front().lock, 50u);
  EXPECT_EQ(demands.back().lock, 149u);
  for (const auto& d : demands) {
    EXPECT_GE(d.contention, 2u);
    EXPECT_LE(d.contention, 16u);
  }
}

TEST(ExperimentHelpersTest, TpccWarehousesPerContention) {
  EXPECT_EQ(TpccWarehouses(10, /*high=*/true), 10u);
  EXPECT_EQ(TpccWarehouses(10, /*high=*/false), 100u);
  EXPECT_EQ(TpccWarehouses(6, true), 6u);
}

TEST(ExperimentHelpersTest, TpccFactorySpreadsHomeWarehouses) {
  auto factory = TpccFactory(4);
  auto w0 = factory(0);
  auto w5 = factory(5);
  EXPECT_EQ(w0->lock_space(), w5->lock_space());
  // Engines map onto warehouses round-robin: engine 5 -> warehouse 1.
  auto* tpcc5 = dynamic_cast<TpccWorkload*>(w5.get());
  ASSERT_NE(tpcc5, nullptr);
  EXPECT_EQ(tpcc5->config().home_warehouse, 1u);
}

TEST(ReportTest, FormattersProduceExpectedStrings) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(FmtUs(1500), "1.50");
  EXPECT_EQ(FmtMs(2'500'000), "2.500");
}

TEST(ReportTest, TableAlignsWithoutCrashing) {
  Table table({"a", "long-header"});
  table.AddRow({"x", "1"});
  table.AddRow({"yyyyyy", "2", "extra-ignored-gracefully"});
  table.Print();  // Smoke: no crash, no assertion.
  SUCCEED();
}

TEST(HarnessTest, ToStringCoversAllSystems) {
  EXPECT_STREQ(ToString(SystemKind::kNetLock), "NetLock");
  EXPECT_STREQ(ToString(SystemKind::kServerOnly), "ServerOnly");
  EXPECT_STREQ(ToString(SystemKind::kDslr), "DSLR");
  EXPECT_STREQ(ToString(SystemKind::kDrtm), "DrTM");
  EXPECT_STREQ(ToString(SystemKind::kNetChain), "NetChain");
}

}  // namespace
}  // namespace netlock
