// Event queue for the discrete-event simulator.
//
// Events at the same timestamp must fire in the order they were scheduled
// (stable FIFO tie-breaking); otherwise packet ordering — and therefore lock
// grant ordering, which the FCFS policy depends on — would be
// nondeterministic. A sequence number provides the total order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace netlock {

/// An event: a callback scheduled to fire at a simulated time.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules fn to run at absolute time `when`. Returns the event's unique
  /// sequence id (usable for debugging; cancellation is intentionally not
  /// supported — components use epoch counters instead, which is cheaper and
  /// avoids dangling handles).
  std::uint64_t Push(SimTime when, EventFn fn);

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !Empty().
  SimTime NextTime() const;

  /// Removes and returns the earliest event. Precondition: !Empty().
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventFn fn;
  };
  Event Pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;  // Index into fns_ storage.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventFn> fns_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace netlock
