// Event queue for the discrete-event simulator.
//
// Events at the same timestamp must fire in the order they were scheduled
// (stable FIFO tie-breaking); otherwise packet ordering — and therefore lock
// grant ordering, which the FCFS policy depends on — would be
// nondeterministic. A sequence number provides the total order.
//
// The hot path is allocation-free: events are stored as InlineEvent — a
// move-only, small-buffer callable whose inline capacity (kInlineCapacity
// bytes) fits a full packet-delivery closure (an 80-byte Packet plus the
// Network pointer) — in a free-list slot arena inside the queue. In steady
// state, pushing and popping a packet-delivery event touches no allocator
// at all; callables too large for the buffer fall back to the heap and are
// counted (see heap_fallbacks()) so tests can assert the fast path stays
// fast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace netlock {

/// A move-only callable with a large inline buffer, sized so the
/// simulator's hot event — delivering a Packet — never heap-allocates.
/// Replaces std::function<void()>, whose ~16-byte small-buffer optimization
/// forced one allocation per simulated packet hop.
class InlineEvent {
 public:
  /// Inline storage in bytes. Must hold Network's packet-delivery closure
  /// (80-byte Packet + pointer); 104 leaves headroom for other captures
  /// (epochs, ids) without growing the slot past two cache lines.
  static constexpr std::size_t kInlineCapacity = 104;

  InlineEvent() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent>>>
  InlineEvent(F&& fn) {  // NOLINT: implicit, mirrors std::function.
    Emplace(std::forward<F>(fn));
  }

  InlineEvent(InlineEvent&& other) noexcept { MoveFrom(other); }
  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }
  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;
  ~InlineEvent() { Destroy(); }

  /// Clears to the empty state (safe to reassign afterwards).
  void Reset() { Destroy(); }

  /// Replaces the held callable, constructing the new one directly in the
  /// inline buffer (no intermediate InlineEvent, no relocation). This is
  /// how the queue's Push gets a packet from the wire into its slot with a
  /// single copy.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent>>>
  void Assign(F&& fn) {
    Destroy();
    Emplace(std::forward<F>(fn));
  }
  void Assign(InlineEvent&& other) { *this = std::move(other); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when this event's callable lives on the heap (too big or not
  /// nothrow-movable). The simulator's own events must never trip this.
  bool uses_heap() const { return ops_ != nullptr && ops_->heap; }

  /// Invokes the callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  /// Process-wide count of heap-fallback constructions. Monotonic; read it
  /// before/after a workload to assert the hot path stayed inline.
  static std::uint64_t heap_fallbacks();

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool heap;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* p) {
      std::launder(reinterpret_cast<Fn*>(p))->~Fn();
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, /*heap=*/false};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Slot(void* p) { return *reinterpret_cast<Fn**>(p); }
    static void Invoke(void* p) { (*Slot(p))(); }
    static void Relocate(void* dst, void* src) {
      *reinterpret_cast<Fn**>(dst) = Slot(src);
    }
    static void Destroy(void* p) { delete Slot(p); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, /*heap=*/true};
  };

  template <typename F>
  void Emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "event callable must be ()-able");
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &HeapOps<Fn>::kOps;
      CountHeapFallback();
    }
  }

  void MoveFrom(InlineEvent& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  static void CountHeapFallback();

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// An event: a callback scheduled to fire at a simulated time. Kept as an
/// alias so the many Schedule(delay, lambda) call sites read unchanged.
using EventFn = InlineEvent;

class EventQueue {
 public:
  /// Schedules fn to run at absolute time `when`, constructing the callable
  /// directly in its arena slot (one move/copy from the caller's argument;
  /// no intermediate InlineEvent hops). Returns the event's unique sequence
  /// id (usable for debugging; cancellation is intentionally not supported —
  /// components use epoch counters instead, which is cheaper and avoids
  /// dangling handles).
  template <typename F>
  std::uint64_t Push(SimTime when, F&& fn) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot].Assign(std::forward<F>(fn));
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back(std::forward<F>(fn));
    }
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, slot});
    if (heap_.size() > max_depth_) max_depth_ = heap_.size();
    return seq;
  }

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Exact maximum depth ever reached. Tracked here (one compare on data
  /// already in cache) so the simulator can report the pending-event
  /// high-water mark exactly while only sampling the gauge.
  std::size_t max_depth() const { return max_depth_; }

  /// Time of the earliest pending event. Precondition: !Empty().
  SimTime NextTime() const;

  /// The earliest event's metadata; its callable stays in the arena until
  /// InvokeAndRecycle runs it. Precondition: !Empty().
  struct Popped {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Removes the earliest entry from the heap, leaving the callable parked
  /// in its slot. Split from InvokeAndRecycle so the simulator can advance
  /// its clock (and count the event) before user code runs.
  Popped PopEntry();

  /// Runs the callable for a slot returned by PopEntry, in place, then
  /// destroys it and recycles the slot. Slots live in a deque precisely so
  /// the callable's storage stays put even when it re-enters Push and the
  /// arena grows mid-invoke; the slot is only recycled after the call
  /// returns, so re-entrant pushes can never overwrite a running event.
  void InvokeAndRecycle(std::uint32_t slot);

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;  // Index into slots_ storage.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::deque<InlineEvent> slots_;  // Free-list arena; reused, never shrunk.
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace netlock
