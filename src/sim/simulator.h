// The discrete-event simulator driving every experiment.
//
// This replaces the paper's physical testbed clock: all components (clients,
// the programmable switch model, lock servers, RDMA NICs) schedule work here
// and observe `now()`. Runs are fully deterministic given the workload seeds.
//
// Each simulator reports into a SimContext (metrics + tracing). The default
// context wraps the process-wide globals; handing each simulator its own
// context isolates runs completely, which is what lets sweeps execute on a
// thread pool (see harness/experiment.h).
#pragma once

#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/sim_context.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace netlock {

class Simulator {
 public:
  /// `context` = nullptr binds to SimContext::Default() (the globals).
  explicit Simulator(SimContext* context = nullptr)
      : context_(context != nullptr ? *context : SimContext::Default()),
        events_metric_(context_.metrics().Counter("sim.events_processed")),
        depth_metric_(context_.metrics().Gauge("sim.pending_events")) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The telemetry context every component of this simulation reports into.
  SimContext& context() const { return context_; }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules fn to run `delay` nanoseconds from now. Perfect-forwarded so
  /// the callable is constructed once, directly in its event-queue slot.
  template <typename F>
  void Schedule(SimTime delay, F&& fn) {
    queue_.Push(now_ + delay, std::forward<F>(fn));
    MaybeSampleDepth();
  }

  /// Schedules fn at an absolute time (must be >= now()).
  template <typename F>
  void ScheduleAt(SimTime when, F&& fn) {
    NETLOCK_CHECK(when >= now_);
    queue_.Push(when, std::forward<F>(fn));
    MaybeSampleDepth();
  }

  /// Runs events until the queue empties.
  void Run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline.
  void RunUntil(SimTime deadline);

  /// Runs a single event if one is pending; returns false when idle.
  bool Step();

  /// Flushes the sampled sim.pending_events gauge: sets the current depth
  /// and raises the high-water mark to the queue's exact maximum. Run and
  /// RunUntil call this on exit; call it directly before reading the gauge
  /// mid-run (e.g. from a time-series sampler).
  void ReconcileDepthMetric() {
    depth_metric_.Set(queue_.Size());
    depth_metric_.ObserveHighWater(queue_.max_depth());
  }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.Size(); }

  /// Exact maximum pending-event depth ever reached.
  std::size_t max_pending_events() const { return queue_.max_depth(); }

 private:
  /// Schedule() is the hottest line in the codebase: updating the depth
  /// gauge per push (two branches + a store through a pointer into another
  /// cache line) cost ~10% of simulator throughput. The gauge is now
  /// refreshed every kDepthSampleInterval pushes; exactness of the
  /// high-water mark is restored by ReconcileDepthMetric().
  static constexpr std::uint32_t kDepthSampleInterval = 1024;

  void MaybeSampleDepth() {
    if (++pushes_since_depth_sample_ >= kDepthSampleInterval) {
      pushes_since_depth_sample_ = 0;
      depth_metric_.Set(queue_.Size());
    }
  }

  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t events_processed_ = 0;
  std::uint32_t pushes_since_depth_sample_ = 0;
  SimContext& context_;
  MetricCounter& events_metric_;
  MetricGauge& depth_metric_;  ///< Pending-event depth (hwm = high water).
};

}  // namespace netlock
