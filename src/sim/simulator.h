// The discrete-event simulator driving every experiment.
//
// This replaces the paper's physical testbed clock: all components (clients,
// the programmable switch model, lock servers, RDMA NICs) schedule work here
// and observe `now()`. Runs are fully deterministic given the workload seeds.
#pragma once

#include <cstdint>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace netlock {

class Simulator {
 public:
  Simulator()
      : events_metric_(
            MetricsRegistry::Global().Counter("sim.events_processed")),
        depth_metric_(
            MetricsRegistry::Global().Gauge("sim.pending_events")) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules fn to run `delay` nanoseconds from now.
  void Schedule(SimTime delay, EventFn fn) {
    queue_.Push(now_ + delay, std::move(fn));
    depth_metric_.Set(queue_.Size());
  }

  /// Schedules fn at an absolute time (must be >= now()).
  void ScheduleAt(SimTime when, EventFn fn);

  /// Runs events until the queue empties.
  void Run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline.
  void RunUntil(SimTime deadline);

  /// Runs a single event if one is pending; returns false when idle.
  bool Step();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.Size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t events_processed_ = 0;
  MetricCounter& events_metric_;
  MetricGauge& depth_metric_;  ///< Pending-event depth (hwm = high water).
};

}  // namespace netlock
