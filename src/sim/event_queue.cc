#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace netlock {

std::uint64_t EventQueue::Push(SimTime when, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    fns_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(fns_.size());
    fns_.push_back(std::move(fn));
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, slot});
  return seq;
}

SimTime EventQueue::NextTime() const {
  NETLOCK_CHECK(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Event EventQueue::Pop() {
  NETLOCK_CHECK(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  Event ev{top.when, top.seq, std::move(fns_[top.slot])};
  fns_[top.slot] = nullptr;
  free_slots_.push_back(top.slot);
  return ev;
}

}  // namespace netlock
