#include "sim/event_queue.h"

#include <atomic>
#include <utility>

#include "common/check.h"

namespace netlock {

namespace {
// Heap fallbacks are cold by design; the counter is atomic only because
// parallel sweeps run independent simulators on different threads.
std::atomic<std::uint64_t> g_heap_fallbacks{0};
}  // namespace

void InlineEvent::CountHeapFallback() {
  g_heap_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t InlineEvent::heap_fallbacks() {
  return g_heap_fallbacks.load(std::memory_order_relaxed);
}

SimTime EventQueue::NextTime() const {
  NETLOCK_CHECK(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Popped EventQueue::PopEntry() {
  NETLOCK_CHECK(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  return Popped{top.when, top.seq, top.slot};
}

void EventQueue::InvokeAndRecycle(std::uint32_t slot) {
  // Invoke in place — no relocation of the (packet-sized) callable. The
  // slot is recycled only after the call returns; re-entrant pushes grow
  // the deque without moving this storage.
  slots_[slot]();
  slots_[slot].Reset();
  free_slots_.push_back(slot);
}

}  // namespace netlock
