#include "sim/network.h"

#include "common/random.h"
// A .cc-only dependency on the lock wire format: wire spans carry the
// request id (lock, txn) that correlates them with the other stages'
// events. Non-lock packets simply get no span.
#include "net/lock_wire.h"

namespace netlock {

namespace {

const char* WireSpanName(LockOp op) {
  switch (op) {
    case LockOp::kAcquire: return "wire.acquire";
    case LockOp::kRelease: return "wire.release";
    case LockOp::kGrant: return "wire.grant";
    case LockOp::kReject: return "wire.reject";
    case LockOp::kQueueEmpty: return "wire.queue_empty";
    case LockOp::kPush: return "wire.push";
    case LockOp::kSyncState: return "wire.sync_state";
    case LockOp::kFetch: return "wire.fetch";
    case LockOp::kData: return "wire.data";
  }
  return "wire.unknown";
}

}  // namespace

void Network::TracePacket(const Packet& pkt, SimTime latency,
                          bool dropped) const {
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr || !trace_->Sampled(hdr->lock_id, hdr->txn_id)) return;
  const std::uint64_t id = TraceLog::RequestId(hdr->lock_id, hdr->txn_id);
  const SimTime now = sim_.now();
  if (dropped) {
    trace_->Instant(TraceTrack::kNetwork, "wire.drop", now, id,
                    {"dst", pkt.dst});
    return;
  }
  trace_->Complete(TraceTrack::kNetwork, WireSpanName(hdr->op), now,
                   now + latency, id, {"src", pkt.src}, {"dst", pkt.dst});
}

NodeId Network::AddNode(PacketHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::SetHandler(NodeId node, PacketHandler handler) {
  NETLOCK_CHECK(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

void Network::SetLatency(NodeId a, NodeId b, SimTime one_way) {
  link_latency_[PairKey(a, b)] = one_way;
}

SimTime Network::LatencyLookup(NodeId a, NodeId b) const {
  const auto it = link_latency_.find(PairKey(a, b));
  return it == link_latency_.end() ? default_latency_ : it->second;
}

void Network::Deliver(const Packet& pkt) {
  auto& handler = handlers_[pkt.dst];
  NETLOCK_CHECK(handler != nullptr);
  handler(pkt);
}

void Network::SetLossProbability(double p, std::uint64_t seed) {
  NETLOCK_CHECK(p >= 0.0 && p <= 1.0);
  loss_probability_ = p;
  loss_state_ = seed | 1;
}

void Network::Send(Packet pkt) {
  NETLOCK_CHECK(pkt.dst < handlers_.size());
  ++packets_sent_;
  packets_metric_->Inc();
  bytes_metric_->Inc(pkt.size());
  if (loss_probability_ > 0.0) {
    const double u = static_cast<double>(SplitMix64(loss_state_) >> 11) *
                     0x1.0p-53;
    if (u < loss_probability_) {
      ++packets_dropped_;
      dropped_metric_->Inc();
      if (trace_->enabled()) TracePacket(pkt, 0, /*dropped=*/true);
      return;
    }
  }
  const SimTime latency = LatencyBetween(pkt.src, pkt.dst);
  if (trace_->enabled()) TracePacket(pkt, latency, /*dropped=*/false);
  // Typed fast path: the packet goes straight into the event slot's inline
  // buffer — no closure on the heap, zero allocations per hop once the
  // queue's slot arena has warmed up.
  sim_.Schedule(latency, PacketDelivery{this, pkt});
}

}  // namespace netlock
