#include "sim/network.h"

#include "common/random.h"

namespace netlock {

NodeId Network::AddNode(PacketHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::SetHandler(NodeId node, PacketHandler handler) {
  NETLOCK_CHECK(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

void Network::SetLatency(NodeId a, NodeId b, SimTime one_way) {
  link_latency_[PairKey(a, b)] = one_way;
}

SimTime Network::LatencyBetween(NodeId a, NodeId b) const {
  const auto it = link_latency_.find(PairKey(a, b));
  return it == link_latency_.end() ? default_latency_ : it->second;
}

void Network::SetLossProbability(double p, std::uint64_t seed) {
  NETLOCK_CHECK(p >= 0.0 && p <= 1.0);
  loss_probability_ = p;
  loss_state_ = seed | 1;
}

void Network::Send(Packet pkt) {
  NETLOCK_CHECK(pkt.dst < handlers_.size());
  ++packets_sent_;
  packets_metric_->Inc();
  bytes_metric_->Inc(pkt.size());
  if (loss_probability_ > 0.0) {
    const double u = static_cast<double>(SplitMix64(loss_state_) >> 11) *
                     0x1.0p-53;
    if (u < loss_probability_) {
      ++packets_dropped_;
      dropped_metric_->Inc();
      return;
    }
  }
  const SimTime latency = LatencyBetween(pkt.src, pkt.dst);
  sim_.Schedule(latency, [this, pkt = std::move(pkt)]() {
    auto& handler = handlers_[pkt.dst];
    NETLOCK_CHECK(handler != nullptr);
    handler(pkt);
  });
}

}  // namespace netlock
