#include "sim/network.h"

#include "common/random.h"
// A .cc-only dependency on the lock wire format: wire spans carry the
// request id (lock, txn) that correlates them with the other stages'
// events. Non-lock packets simply get no span.
#include "net/lock_wire.h"

namespace netlock {

namespace {

const char* WireSpanName(LockOp op) {
  switch (op) {
    case LockOp::kAcquire: return "wire.acquire";
    case LockOp::kRelease: return "wire.release";
    case LockOp::kGrant: return "wire.grant";
    case LockOp::kReject: return "wire.reject";
    case LockOp::kQueueEmpty: return "wire.queue_empty";
    case LockOp::kPush: return "wire.push";
    case LockOp::kSyncState: return "wire.sync_state";
    case LockOp::kFetch: return "wire.fetch";
    case LockOp::kData: return "wire.data";
  }
  return "wire.unknown";
}

}  // namespace

void Network::TracePacket(const Packet& pkt, SimTime latency,
                          bool dropped) const {
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr || !trace_->Sampled(hdr->lock_id, hdr->txn_id)) return;
  const std::uint64_t id = TraceLog::RequestId(hdr->lock_id, hdr->txn_id);
  const SimTime now = sim_.now();
  if (dropped) {
    trace_->Instant(TraceTrack::kNetwork, "wire.drop", now, id,
                    {"dst", pkt.dst});
    return;
  }
  trace_->Complete(TraceTrack::kNetwork, WireSpanName(hdr->op), now,
                   now + latency, id, {"src", pkt.src}, {"dst", pkt.dst});
}

NodeId Network::AddNode(PacketHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::SetHandler(NodeId node, PacketHandler handler) {
  NETLOCK_CHECK(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

void Network::SetLatency(NodeId a, NodeId b, SimTime one_way) {
  link_latency_[PairKey(a, b)] = one_way;
}

SimTime Network::LatencyLookup(NodeId a, NodeId b) const {
  const auto it = link_latency_.find(PairKey(a, b));
  return it == link_latency_.end() ? default_latency_ : it->second;
}

void Network::Deliver(const Packet& pkt) {
  auto& handler = handlers_[pkt.dst];
  NETLOCK_CHECK(handler != nullptr);
  handler(pkt);
}

namespace {

/// Uniform double in [0, 1) from a SplitMix64 stream.
double NextUnit(std::uint64_t& state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, n) from a SplitMix64 stream. The modulo bias is
/// irrelevant for fault timing.
std::uint64_t NextBounded(std::uint64_t& state, std::uint64_t n) {
  return SplitMix64(state) % n;
}

}  // namespace

std::uint64_t Network::StreamState(std::uint64_t tag) const {
  // Independent stream per fault type: mix the master seed with a per-type
  // tag through one SplitMix64 round. `| 1` keeps the stream state nonzero.
  std::uint64_t s = fault_seed_ ^ (tag * 0x9e3779b97f4a7c15ull);
  return SplitMix64(s) | 1;
}

void Network::SetFaultSeed(std::uint64_t seed) {
  fault_seed_ = seed;
  loss_state_ = StreamState(1);
  dup_state_ = StreamState(2);
  reorder_state_ = StreamState(3);
  jitter_state_ = StreamState(4);
}

void Network::SetLossProbability(double p) {
  NETLOCK_CHECK(p >= 0.0 && p <= 1.0);
  default_faults_.loss = p;
  // Derived from the fault seed (itself the run seed under the testbed), so
  // seeded sweeps see different drop patterns instead of silently repeating
  // the seed=1 stream.
  loss_state_ = StreamState(1);
  RecomputeFaultsActive();
}

void Network::SetLossProbability(double p, std::uint64_t seed) {
  NETLOCK_CHECK(p >= 0.0 && p <= 1.0);
  default_faults_.loss = p;
  loss_state_ = seed | 1;
  RecomputeFaultsActive();
}

void Network::SetDefaultFaults(const LinkFaults& faults) {
  default_faults_ = faults;
  RecomputeFaultsActive();
}

void Network::SetLinkFaults(NodeId a, NodeId b, const LinkFaults& faults) {
  link_faults_[PairKey(a, b)] = faults;
  RecomputeFaultsActive();
}

void Network::ClearFaults() {
  default_faults_ = LinkFaults{};
  link_faults_.clear();
  blocked_pairs_.clear();
  blocked_nodes_.assign(blocked_nodes_.size(), 0);
  num_blocked_nodes_ = 0;
  RecomputeFaultsActive();
}

void Network::BlockPair(NodeId a, NodeId b) {
  blocked_pairs_.insert(PairKey(a, b));
  RecomputeFaultsActive();
}

void Network::UnblockPair(NodeId a, NodeId b) {
  blocked_pairs_.erase(PairKey(a, b));
  RecomputeFaultsActive();
}

void Network::BlockNode(NodeId node) {
  if (node >= blocked_nodes_.size()) blocked_nodes_.resize(node + 1, 0);
  if (!blocked_nodes_[node]) {
    blocked_nodes_[node] = 1;
    ++num_blocked_nodes_;
  }
  RecomputeFaultsActive();
}

void Network::UnblockNode(NodeId node) {
  if (node < blocked_nodes_.size() && blocked_nodes_[node]) {
    blocked_nodes_[node] = 0;
    --num_blocked_nodes_;
  }
  RecomputeFaultsActive();
}

void Network::RecomputeFaultsActive() {
  faults_active_ = default_faults_.any() || !link_faults_.empty() ||
                   !blocked_pairs_.empty() || num_blocked_nodes_ > 0;
}

const LinkFaults& Network::FaultsFor(NodeId a, NodeId b) const {
  if (!link_faults_.empty()) {
    const auto it = link_faults_.find(PairKey(a, b));
    if (it != link_faults_.end()) return it->second;
  }
  return default_faults_;
}

bool Network::Blocked(NodeId a, NodeId b) const {
  if (num_blocked_nodes_ > 0) {
    if (a < blocked_nodes_.size() && blocked_nodes_[a]) return true;
    if (b < blocked_nodes_.size() && blocked_nodes_[b]) return true;
  }
  return !blocked_pairs_.empty() &&
         blocked_pairs_.count(PairKey(a, b)) != 0;
}

void Network::DropPacket(const Packet& pkt) {
  ++packets_dropped_;
  dropped_metric_->Inc();
  if (trace_->enabled()) TracePacket(pkt, 0, /*dropped=*/true);
}

void Network::SendThroughFaults(Packet pkt) {
  if (Blocked(pkt.src, pkt.dst)) {
    DropPacket(pkt);
    return;
  }
  const LinkFaults& f = FaultsFor(pkt.src, pkt.dst);
  // Draw order is fixed (loss, jitter, reorder, duplicate) and each stream
  // advances only while its knob is set, so a given fault configuration +
  // seed replays the exact same fault sequence.
  if (f.loss > 0.0 && NextUnit(loss_state_) < f.loss) {
    DropPacket(pkt);
    return;
  }
  SimTime latency = LatencyBetween(pkt.src, pkt.dst);
  if (f.jitter > 0) {
    latency += static_cast<SimTime>(
        NextBounded(jitter_state_, static_cast<std::uint64_t>(f.jitter) + 1));
  }
  if (f.reorder > 0.0 && f.reorder_window > 0 &&
      NextUnit(reorder_state_) < f.reorder) {
    latency += 1 + static_cast<SimTime>(NextBounded(
                       reorder_state_,
                       static_cast<std::uint64_t>(f.reorder_window)));
    ++packets_reordered_;
  }
  if (trace_->enabled()) TracePacket(pkt, latency, /*dropped=*/false);
  sim_.Schedule(latency, PacketDelivery{this, pkt});
  if (f.duplicate > 0.0 && NextUnit(dup_state_) < f.duplicate) {
    // The copy trails the original by a bounded extra delay, landing among
    // whatever traffic is in flight by then.
    const std::uint64_t window =
        f.reorder_window > 0 ? static_cast<std::uint64_t>(f.reorder_window)
                             : 1000;
    const SimTime extra = 1 + static_cast<SimTime>(
                                  NextBounded(dup_state_, window));
    ++packets_duplicated_;
    sim_.Schedule(latency + extra, PacketDelivery{this, pkt});
  }
}

void Network::Send(Packet pkt) {
  NETLOCK_CHECK(pkt.dst < handlers_.size());
  ++packets_sent_;
  packets_metric_->Inc();
  bytes_metric_->Inc(pkt.size());
  if (faults_active_) {
    SendThroughFaults(std::move(pkt));
    return;
  }
  const SimTime latency = LatencyBetween(pkt.src, pkt.dst);
  if (trace_->enabled()) TracePacket(pkt, latency, /*dropped=*/false);
  // Typed fast path: the packet goes straight into the event slot's inline
  // buffer — no closure on the heap, zero allocations per hop once the
  // queue's slot arena has warmed up.
  sim_.Schedule(latency, PacketDelivery{this, pkt});
}

}  // namespace netlock
