// Rate-limited FIFO service model.
//
// Models a processing resource with a fixed per-item service time: a lock
// server CPU core (the paper's 2.25 MRPS/core DPDK server), an RDMA NIC's
// verb engine, or a switch pipe. Work submitted while the resource is busy
// queues behind it, which is exactly what produces the server saturation
// knees in Figures 9-11.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/types.h"
#include "sim/simulator.h"

namespace netlock {

class ServiceQueue {
 public:
  /// `service_time` is the time one item occupies the resource.
  ServiceQueue(Simulator& sim, SimTime service_time)
      : sim_(sim), service_time_(service_time) {}

  /// Enqueues work; `on_complete` fires when the item finishes service
  /// (start-of-service is max(now, previous completion)). Forwarded so the
  /// completion callable lands in its event-queue slot in one move.
  template <typename F>
  void Submit(F&& on_complete) {
    SubmitWithTime(service_time_, std::forward<F>(on_complete));
  }

  /// Enqueues work with a per-item service time (e.g., an RDMA NIC where
  /// atomic verbs are slower than reads but share one engine). The
  /// completion is stamped with the current generation: a Reset() between
  /// submission and completion (fault-injected crash) invalidates it, so a
  /// restarted component never sees completions for work the dead
  /// incarnation had in flight.
  template <typename F>
  void SubmitWithTime(SimTime item_service_time, F&& on_complete) {
    const SimTime start = busy_until_ > sim_.now() ? busy_until_ : sim_.now();
    busy_until_ = start + item_service_time;
    ++items_served_;
    sim_.ScheduleAt(busy_until_,
                    [this, gen = generation_,
                     fn = std::forward<F>(on_complete)]() mutable {
                      if (gen == generation_) fn();
                    });
  }

  /// Time at which the resource frees up (<= now() means idle).
  SimTime busy_until() const { return busy_until_; }

  /// Current queueing delay a new item would see before starting service.
  SimTime QueueingDelay() const {
    return busy_until_ > sim_.now() ? busy_until_ - sim_.now() : 0;
  }

  SimTime service_time() const { return service_time_; }
  void set_service_time(SimTime t) { service_time_ = t; }
  std::uint64_t items_served() const { return items_served_; }

  /// Drops all memory of prior work (used for fault injection: a restarted
  /// component begins idle). Bumping the generation cancels every
  /// completion already scheduled — the events still fire, but as no-ops.
  void Reset() {
    busy_until_ = 0;
    ++generation_;
  }

 private:
  Simulator& sim_;
  SimTime service_time_;
  SimTime busy_until_ = 0;
  std::uint64_t items_served_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace netlock
