#include "sim/simulator.h"

#include "common/check.h"

namespace netlock {

void Simulator::Run() {
  while (Step()) {
  }
  ReconcileDepthMetric();
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  ReconcileDepthMetric();
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  const EventQueue::Popped ev = queue_.PopEntry();
  NETLOCK_CHECK(ev.when >= now_);
  now_ = ev.when;
  ++events_processed_;
  events_metric_.Inc();
  // The callable runs in place in its arena slot — no per-event relocation.
  queue_.InvokeAndRecycle(ev.slot);
  return true;
}

}  // namespace netlock
