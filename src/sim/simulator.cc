#include "sim/simulator.h"

#include "common/check.h"

namespace netlock {

void Simulator::ScheduleAt(SimTime when, EventFn fn) {
  NETLOCK_CHECK(when >= now_);
  queue_.Push(when, std::move(fn));
  depth_metric_.Set(queue_.Size());
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  EventQueue::Event ev = queue_.Pop();
  NETLOCK_CHECK(ev.when >= now_);
  now_ = ev.when;
  ++events_processed_;
  events_metric_.Inc();
  ev.fn();
  return true;
}

}  // namespace netlock
