// Simulated rack network: nodes connected through configurable-latency links.
//
// This substitutes for the paper's testbed fabric (clients and servers under
// one ToR). Latency is per node pair with a configurable default; bandwidth
// serialization is folded into per-component service models (ServiceQueue),
// matching how the paper reasons about performance: propagation RTT plus
// endpoint processing capacity.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/tracelog.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace netlock {

/// A network packet. Payload is an inline byte buffer: lock messages are
/// small (tens of bytes) and experiments move tens of millions of packets,
/// so avoiding per-packet heap allocation matters.
class Packet {
 public:
  static constexpr std::size_t kMaxPayload = 64;

  Packet() = default;

  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  std::span<const std::uint8_t> payload() const {
    return {payload_.data(), size_};
  }

  /// Writable buffer for serialization; call set_size() afterwards.
  std::span<std::uint8_t> mutable_payload() {
    return {payload_.data(), payload_.size()};
  }

  void set_size(std::size_t n) {
    NETLOCK_CHECK(n <= kMaxPayload);
    size_ = n;
  }
  std::size_t size() const { return size_; }

 private:
  std::array<std::uint8_t, kMaxPayload> payload_{};
  std::size_t size_ = 0;
};

/// Receives packets addressed to a node.
using PacketHandler = std::function<void(const Packet&)>;

/// The fault model of one link (or of the whole fabric, as the default):
/// independent per-packet loss and duplication, uniform latency jitter, and
/// probabilistic reordering (an extra delay in [1, reorder_window] lets a
/// later packet overtake). All draws come from seed-derived SplitMix64
/// streams (see Network::SetFaultSeed), so runs replay byte-identically.
struct LinkFaults {
  /// P(packet silently dropped).
  double loss = 0.0;
  /// P(a second copy of the packet is delivered a little later).
  double duplicate = 0.0;
  /// P(the packet is held back by an extra delay in [1, reorder_window]),
  /// which breaks per-pair FIFO delivery.
  double reorder = 0.0;
  /// Maximum extra delay for a reordered packet (and the bound on how late
  /// a duplicate trails the original).
  SimTime reorder_window = 2000;
  /// Uniform extra latency in [0, jitter] added to every packet.
  SimTime jitter = 0;

  bool any() const {
    return loss > 0.0 || duplicate > 0.0 || reorder > 0.0 || jitter > 0;
  }
};

class Network {
 public:
  /// `default_one_way_latency` applies to any pair without an explicit
  /// link. Telemetry resolves in the simulator's context, so a network on
  /// an isolated SimContext shares no state with other simulations.
  Network(Simulator& sim, SimTime default_one_way_latency)
      : sim_(sim),
        default_latency_(default_one_way_latency),
        packets_metric_(&sim.context().metrics().Counter("net.packets")),
        bytes_metric_(&sim.context().metrics().Counter("net.bytes")),
        dropped_metric_(&sim.context().metrics().Counter("net.dropped")),
        trace_(&sim.context().trace()) {
    SetFaultSeed(fault_seed_);  // Distinct default streams per fault type.
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; the returned id is this node's address.
  NodeId AddNode(PacketHandler handler);

  /// Replaces the handler for an existing node (used when a component is
  /// constructed after its address must be known).
  void SetHandler(NodeId node, PacketHandler handler);

  /// Sets the one-way latency between a and b (both directions).
  void SetLatency(NodeId a, NodeId b, SimTime one_way);

  SimTime LatencyBetween(NodeId a, NodeId b) const {
    // Short-circuit for topologies with no explicit links (micro setups,
    // unit tests): skips the hash lookup on every packet.
    if (link_latency_.empty()) return default_latency_;
    return LatencyLookup(a, b);
  }

  /// Delivers pkt to pkt.dst after the link latency. Packets between a pair
  /// of nodes are delivered in FIFO order (the event queue is stable and
  /// latency per pair is constant) — unless the fault model reorders or
  /// drops them, which exercises retry and lease-recovery paths.
  void Send(Packet pkt);

  // --- Deterministic adversary (fault injection) ---

  /// Seeds every fault stream (loss, duplication, reorder, jitter) from one
  /// master seed. The testbed passes its run seed here, so loss patterns
  /// vary across seeded sweeps while identical seeds replay byte-for-byte.
  void SetFaultSeed(std::uint64_t seed);

  /// Sets an independent per-packet loss probability (default 0). The
  /// one-argument form draws from the SetFaultSeed-derived stream; pass an
  /// explicit seed to pin the drop pattern regardless of the fault seed.
  void SetLossProbability(double p);
  void SetLossProbability(double p, std::uint64_t seed);

  /// Fault model applied to every link without an explicit override.
  void SetDefaultFaults(const LinkFaults& faults);

  /// Per-link override (both directions of the a<->b pair).
  void SetLinkFaults(NodeId a, NodeId b, const LinkFaults& faults);

  /// Removes every fault knob and partition: the network is pristine again
  /// (fault streams keep their positions; reseed with SetFaultSeed for a
  /// fresh replay).
  void ClearFaults();

  /// Timed partitions: a blocked pair (or node) black-holes every packet in
  /// both directions until unblocked. Drops count as packet losses.
  void BlockPair(NodeId a, NodeId b);
  void UnblockPair(NodeId a, NodeId b);
  void BlockNode(NodeId node);
  void UnblockNode(NodeId node);

  const LinkFaults& default_faults() const { return default_faults_; }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_duplicated() const { return packets_duplicated_; }
  std::uint64_t packets_reordered() const { return packets_reordered_; }
  std::size_t num_nodes() const { return handlers_.size(); }
  Simulator& sim() { return sim_; }

 private:
  static std::uint64_t PairKey(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  SimTime LatencyLookup(NodeId a, NodeId b) const;

  /// Slow path taken only while any fault or partition is configured; the
  /// clean-fabric hot path stays a single branch.
  void SendThroughFaults(Packet pkt);
  void DropPacket(const Packet& pkt);
  const LinkFaults& FaultsFor(NodeId a, NodeId b) const;
  bool Blocked(NodeId a, NodeId b) const;
  void RecomputeFaultsActive();
  std::uint64_t StreamState(std::uint64_t tag) const;

  /// The simulator's hottest event: delivery of one packet. A named struct
  /// (rather than a lambda) so the packet is stored directly in the event
  /// slot — it fits InlineEvent's buffer, making a hop allocation-free.
  struct PacketDelivery {
    Network* net;
    Packet pkt;
    void operator()() const { net->Deliver(pkt); }
  };
  static_assert(sizeof(PacketDelivery) <= InlineEvent::kInlineCapacity,
                "packet delivery must fit the inline event buffer");

  void Deliver(const Packet& pkt);

  /// Records a wire span (or drop) for a lock packet when tracing is on.
  void TracePacket(const Packet& pkt, SimTime latency, bool dropped) const;

  Simulator& sim_;
  SimTime default_latency_;
  std::vector<PacketHandler> handlers_;
  std::unordered_map<std::uint64_t, SimTime> link_latency_;

  // Fault model. `faults_active_` caches whether any knob or partition is
  // set so the hot path pays one branch when the fabric is clean.
  LinkFaults default_faults_;
  std::unordered_map<std::uint64_t, LinkFaults> link_faults_;
  std::unordered_set<std::uint64_t> blocked_pairs_;
  std::vector<char> blocked_nodes_;
  std::size_t num_blocked_nodes_ = 0;
  bool faults_active_ = false;
  std::uint64_t fault_seed_ = 1;
  std::uint64_t loss_state_ = 1;
  std::uint64_t dup_state_ = 1;
  std::uint64_t reorder_state_ = 1;
  std::uint64_t jitter_state_ = 1;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_duplicated_ = 0;
  std::uint64_t packets_reordered_ = 0;
  MetricCounter* packets_metric_;
  MetricCounter* bytes_metric_;
  MetricCounter* dropped_metric_;
  TraceLog* trace_;
};

}  // namespace netlock
