#include "sim/service_queue.h"

// Header-only implementation; this translation unit exists so the target has
// a stable object for the module and a place for future out-of-line growth.
