#include "net/wire.h"

// Header-only implementation; translation unit anchors the module.
