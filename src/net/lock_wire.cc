#include "net/lock_wire.h"

#include "common/check.h"
#include "net/wire.h"

namespace netlock {

bool LockHeader::SerializeTo(Packet& pkt) const {
  BufWriter w(pkt.mutable_payload());
  w.WriteU16(kMagic);
  w.WriteU8(static_cast<std::uint8_t>(op));
  w.WriteU8(static_cast<std::uint8_t>(mode));
  w.WriteU8(flags);
  w.WriteU8(priority);
  w.WriteU16(tenant);
  w.WriteU32(lock_id);
  w.WriteU64(txn_id);
  w.WriteU32(client_node);
  w.WriteU64(timestamp);
  w.WriteU32(aux);
  if (!w.ok()) return false;
  NETLOCK_DCHECK(w.written() == kWireSize);
  pkt.set_size(w.written());
  return true;
}

std::optional<LockHeader> LockHeader::Parse(const Packet& pkt) {
  BufReader r(pkt.payload());
  if (r.ReadU16() != kMagic) return std::nullopt;
  LockHeader hdr;
  hdr.op = static_cast<LockOp>(r.ReadU8());
  hdr.mode = static_cast<LockMode>(r.ReadU8());
  hdr.flags = r.ReadU8();
  hdr.priority = r.ReadU8();
  hdr.tenant = r.ReadU16();
  hdr.lock_id = r.ReadU32();
  hdr.txn_id = r.ReadU64();
  hdr.client_node = r.ReadU32();
  hdr.timestamp = r.ReadU64();
  hdr.aux = r.ReadU32();
  if (!r.ok()) return std::nullopt;
  if (static_cast<std::uint8_t>(hdr.op) >
      static_cast<std::uint8_t>(LockOp::kAbort)) {
    return std::nullopt;
  }
  if (static_cast<std::uint8_t>(hdr.mode) > 1) return std::nullopt;
  return hdr;
}

Packet MakeLockPacket(NodeId src, NodeId dst, const LockHeader& hdr) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  const bool ok = hdr.SerializeTo(pkt);
  NETLOCK_CHECK(ok);
  return pkt;
}

}  // namespace netlock
