// Byte-order-safe wire serialization primitives.
//
// All NetLock messages are serialized big-endian (network byte order) into
// packet payloads, exactly as the P4 prototype lays out its custom header
// after the reserved UDP port. Readers never trust input: every accessor is
// bounds-checked and parsing reports failure instead of reading past the
// buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace netlock {

/// Serializes integral fields big-endian into a caller-provided buffer.
class BufWriter {
 public:
  explicit BufWriter(std::span<std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  std::size_t written() const { return pos_; }

  void WriteU8(std::uint8_t v) { WriteBytes(&v, 1); }

  void WriteU16(std::uint16_t v) {
    std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v)};
    WriteBytes(b, 2);
  }

  void WriteU32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
      b[i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
    WriteBytes(b, 4);
  }

  void WriteU64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
      b[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    WriteBytes(b, 8);
  }

 private:
  void WriteBytes(const std::uint8_t* p, std::size_t n) {
    if (!ok_ || pos_ + n > buf_.size()) {
      ok_ = false;
      return;
    }
    std::memcpy(buf_.data() + pos_, p, n);
    pos_ += n;
  }

  std::span<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Parses big-endian integral fields from a read-only buffer.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return ok_ ? buf_.size() - pos_ : 0; }

  std::uint8_t ReadU8() {
    std::uint8_t v = 0;
    ReadBytes(&v, 1);
    return v;
  }

  std::uint16_t ReadU16() {
    std::uint8_t b[2] = {};
    ReadBytes(b, 2);
    return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
  }

  std::uint32_t ReadU32() {
    std::uint8_t b[4] = {};
    ReadBytes(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | b[i];
    return v;
  }

  std::uint64_t ReadU64() {
    std::uint8_t b[8] = {};
    ReadBytes(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
    return v;
  }

 private:
  void ReadBytes(std::uint8_t* p, std::size_t n) {
    if (!ok_ || pos_ + n > buf_.size()) {
      ok_ = false;
      return;
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace netlock
