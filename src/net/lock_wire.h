// The NetLock message header (paper Section 4.2).
//
// A lock request carries: action type (acquire/release), lock ID, lock mode,
// transaction ID, and client IP; we additionally carry tenant ID, priority,
// and a timestamp, which the paper notes "can also be stored together". The
// same header serves grants and the switch-server overflow protocol
// (Section 4.3), distinguished by op and flags. In the hardware prototype
// these ride a reserved UDP destination port; here a 16-bit magic plays that
// role so that non-lock traffic is recognizably foreign.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.h"
#include "sim/network.h"

namespace netlock {

/// Message type.
enum class LockOp : std::uint8_t {
  kAcquire = 0,      ///< Client requests a lock.
  kRelease = 1,      ///< Client releases a held lock.
  kGrant = 2,        ///< Lock manager grants the lock to the client.
  kReject = 3,       ///< Policy rejection (e.g., per-tenant quota exceeded).
  kQueueEmpty = 4,   ///< Switch -> server: q1[i] drained, push from q2[i].
  kPush = 5,         ///< Server -> switch: a buffered request being pushed.
  kSyncState = 6,    ///< Control: switch/server state sync after failure.
  kFetch = 7,        ///< Client -> database server: read the locked item.
  kData = 8,         ///< Database server -> client: item data (and, in
                     ///< one-RTT mode, the implied lock grant — §4.1).
  kCancel = 9,       ///< Client -> manager: remove every queue entry of
                     ///< (lock, txn) — sent when a deadlock-policy abort
                     ///< leaves an acquire in flight elsewhere. No reply;
                     ///< idempotent (a duplicated copy finds nothing).
  kAbort = 10,       ///< Manager -> client: a deadlock policy refused the
                     ///< acquire (no-wait / wait-die) or revoked a queued,
                     ///< possibly granted, entry (wound). aux carries the
                     ///< AbortReason.
};

/// Flag bits in LockHeader::flags.
enum LockFlags : std::uint8_t {
  /// The switch saw the request but its queue region was full: the server
  /// must only buffer it in q2[i], not process it (Section 4.3).
  kFlagBufferOnly = 1 << 0,
  /// The request was pushed from a server's q2[i] back into q1[i].
  kFlagPushed = 1 << 1,
  /// The switch is not responsible for this lock; the server both queues and
  /// grants it.
  kFlagServerOwned = 1 << 2,
  /// Chain replication: the op was already admitted and applied by the
  /// chain head; the tail applies it without re-running admission.
  kFlagChained = 1 << 3,
  /// Chain replication: the head's quota rejected this acquire; the tail
  /// only emits the rejection (nothing was enqueued anywhere).
  kFlagQuotaRejected = 1 << 4,
  /// Chain replication: the head decided this acquire overflows to the
  /// server; the tail follows that decision (and emits the forward) so the
  /// replicas' queue contents never diverge.
  kFlagOverflowed = 1 << 5,
};

/// Wire header for every NetLock message. 36 bytes on the wire.
struct LockHeader {
  static constexpr std::uint16_t kMagic = 0x4c4b;  // "LK"
  static constexpr std::size_t kWireSize = 36;

  LockOp op = LockOp::kAcquire;
  LockMode mode = LockMode::kExclusive;
  std::uint8_t flags = 0;
  Priority priority = 0;
  TenantId tenant = 0;
  LockId lock_id = kInvalidLock;
  TxnId txn_id = kInvalidTxn;
  /// Address of the client the grant must be sent to (stands in for the
  /// client IP field of the paper's header).
  NodeId client_node = kInvalidNode;
  /// Request issue time; used for lease accounting and latency measurement.
  SimTime timestamp = 0;
  /// Number of free slots (kQueueEmpty), AcquireResult (kReject), the
  /// client's release nonce (kRelease), or the grantor's grant nonce
  /// (kGrant/kData): a per-instance counter that distinguishes a
  /// *retransmitted copy* of a packet (same nonce — must be dropped, or a
  /// release would blind-pop another waiter's entry and a grant would fire
  /// a spurious ghost release) from a second logical instance for the same
  /// (lock, txn) (fresh nonce — e.g. the immediate release of a duplicate
  /// grant, which must pop its ghost entry, or the grant of a second queue
  /// entry created by a retransmitted acquire).
  std::uint32_t aux = 0;

  /// Serializes into pkt's payload and sets its size. Returns false if the
  /// payload buffer is too small (cannot happen with Packet::kMaxPayload).
  bool SerializeTo(Packet& pkt) const;

  /// Parses from a packet payload. Returns nullopt on truncation or magic
  /// mismatch — the switch treats such packets as regular (non-lock) traffic.
  static std::optional<LockHeader> Parse(const Packet& pkt);

  friend bool operator==(const LockHeader&, const LockHeader&) = default;
};

/// Builds a ready-to-send packet around a header.
Packet MakeLockPacket(NodeId src, NodeId dst, const LockHeader& hdr);

/// Fingerprint identifying one release *instance* — (lock, txn, mode,
/// client, nonce) mixed into a nonzero 64-bit value. Two packets carry the
/// same fingerprint iff one is a network-duplicated copy of the other, which
/// is what the switch/server release-dedup filters key on. Releases do not
/// check transaction IDs on the dequeue path (Section 4.2), so this filter
/// is the only thing standing between a duplicated RELEASE and a blind
/// head-pop of some other waiter's entry.
inline std::uint64_t ReleaseFingerprint(const LockHeader& hdr) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  };
  mix(hdr.lock_id);
  mix(hdr.txn_id);
  mix(static_cast<std::uint64_t>(hdr.mode));
  mix(hdr.client_node);
  mix(hdr.aux);
  return h | 1;  // Never zero: zero marks an empty filter slot.
}

/// Fingerprint identifying one grant *instance* — (lock, txn, grantor,
/// nonce). Grantors stamp a per-instance nonce into kGrant/kData aux, so a
/// network-duplicated copy of a grant (same nonce) is distinguishable from
/// the grant of a *second* queue entry created by a retransmitted acquire
/// (fresh nonce). The client-side grant filters key on this: the
/// unsolicited-grant ghost release must fire exactly once per queue entry —
/// re-firing on a duplicated copy would blind-pop some other waiter's entry
/// out of the switch queue and hand the lock to two holders at once.
inline std::uint64_t GrantFingerprint(const LockHeader& hdr,
                                      NodeId grantor) {
  std::uint64_t h = 0xc2b2ae3d27d4eb4full;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  };
  mix(hdr.lock_id);
  mix(hdr.txn_id);
  mix(grantor);
  mix(hdr.aux);
  return h | 1;  // Never zero: zero marks an empty filter slot.
}

}  // namespace netlock
