#include "client/client.h"

#include "common/check.h"
#include "core/lock_engine.h"  // AbortReason (carried in kAbort's aux).

namespace netlock {

NetLockSession::NetLockSession(ClientMachine& machine, Config config)
    : machine_(machine),
      config_(config),
      trace_(&machine.net().sim().context().trace()) {
  NETLOCK_CHECK(config_.switch_node != kInvalidNode);
  grant_filter_.assign(config_.grant_filter_slots, 0);
  node_ = machine_.net().AddNode(
      [this](const Packet& pkt) { OnPacket(pkt); });
}

void NetLockSession::Acquire(LockId lock, LockMode mode, TxnId txn,
                             Priority priority, AcquireCallback cb) {
  const auto key = std::make_pair(lock, txn);
  NETLOCK_CHECK(pending_.find(key) == pending_.end());
  Pending pending;
  pending.mode = mode;
  pending.priority = priority;
  pending.cb = std::move(cb);
  pending.epoch = next_epoch_++;
  pending.issued_at = machine_.net().sim().now();
  // The request's end-to-end lifetime is an async span: it opens here and
  // closes when the session resolves the request (grant, final reject, or
  // timeout), which may be several retransmissions later.
  if (trace_->Sampled(lock, txn)) {
    trace_->AsyncBegin(TraceTrack::kClient, "lock_request",
                       pending.issued_at, TraceLog::RequestId(lock, txn));
  }
  SendAcquire(lock, txn, pending);
  const std::uint64_t epoch = pending.epoch;
  pending_.emplace(key, std::move(pending));
  ArmRetry(lock, txn, epoch, config_.retry_timeout);
}

void NetLockSession::Release(LockId lock, LockMode mode, TxnId txn) {
  const SimTime now = machine_.net().sim().now();
  // Release to the switch that granted the lock — during backup-switch
  // failover the grantor may not be the switch new acquires target.
  NodeId target = config_.switch_node;
  SimTime granted_at = 0;
  bool have_grant_time = false;
  const auto src = grant_source_.find(std::make_pair(lock, txn));
  if (src != grant_source_.end()) {
    if (src->second.source != kInvalidNode) target = src->second.source;
    granted_at = src->second.granted_at;
    have_grant_time = true;
    grant_source_.erase(src);
  }
  // Lease discipline: past `lease - margin` after the grant arrived, the
  // manager's lease sweep may have force-released our entry already — our
  // release would then blind-pop a different waiter's slot (Algorithm 2
  // releases "do not check transaction IDs", §4.2). Drop it and let the
  // sweep reclaim the entry; the hold was effectively revoked anyway.
  if (config_.lease > 0 && have_grant_time &&
      now + config_.lease_release_margin >= granted_at + config_.lease) {
    ++releases_suppressed_;
    if (trace_->Sampled(lock, txn)) {
      trace_->Instant(TraceTrack::kClient, "client.release_suppressed", now,
                      TraceLog::RequestId(lock, txn));
    }
    return;
  }
  LockHeader hdr;
  hdr.op = LockOp::kRelease;
  hdr.lock_id = lock;
  hdr.mode = mode;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  hdr.timestamp = now;
  hdr.aux = release_nonce_++;  // Per-instance nonce (dedup filter key).
  machine_.Send(MakeLockPacket(node_, target, hdr));
}

void NetLockSession::Cancel(LockId lock, LockMode mode, TxnId txn) {
  const auto it = pending_.find(std::make_pair(lock, txn));
  if (it != pending_.end()) {
    if (trace_->Sampled(lock, txn)) {
      trace_->AsyncEnd(TraceTrack::kClient, "lock_request",
                       machine_.net().sim().now(),
                       TraceLog::RequestId(lock, txn));
    }
    pending_.erase(it);  // Withdrawn: the callback never fires.
  }
  Invalidate(lock, txn);
  LockHeader hdr;
  hdr.op = LockOp::kCancel;
  hdr.lock_id = lock;
  hdr.mode = mode;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  hdr.timestamp = machine_.net().sim().now();
  machine_.Send(MakeLockPacket(node_, config_.switch_node, hdr));
}

void NetLockSession::Invalidate(LockId lock, TxnId txn) {
  const auto pair = std::make_pair(lock, txn);
  if (!invalidated_.insert(pair).second) return;
  invalidated_fifo_.push_back(pair);
  // Bounded: old entries matter only while a pre-abort grant could still be
  // in flight, which is bounded by network delay, not by run length.
  while (invalidated_fifo_.size() > 1024) {
    invalidated_.erase(invalidated_fifo_.front());
    invalidated_fifo_.pop_front();
  }
}

bool NetLockSession::Invalidated(LockId lock, TxnId txn) const {
  return invalidated_.count(std::make_pair(lock, txn)) != 0;
}

void NetLockSession::SendAcquire(LockId lock, TxnId txn,
                                 const Pending& pending) {
  LockHeader hdr;
  hdr.op = LockOp::kAcquire;
  hdr.lock_id = lock;
  hdr.mode = pending.mode;
  hdr.priority = pending.priority;
  hdr.tenant = config_.tenant;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  hdr.timestamp = pending.issued_at;
  machine_.Send(MakeLockPacket(node_, config_.switch_node, hdr));
}

void NetLockSession::ArmRetry(LockId lock, TxnId txn, std::uint64_t epoch,
                              SimTime delay) {
  machine_.net().sim().Schedule(delay, [this, lock, txn, epoch]() {
    const auto it = pending_.find(std::make_pair(lock, txn));
    if (it == pending_.end() || it->second.epoch != epoch) return;
    Pending& pending = it->second;
    if (pending.attempts >= config_.max_retries) {
      AcquireCallback cb = std::move(pending.cb);
      pending_.erase(it);
      if (trace_->Sampled(lock, txn)) {
        const SimTime now = machine_.net().sim().now();
        const std::uint64_t id = TraceLog::RequestId(lock, txn);
        trace_->Instant(TraceTrack::kClient, "client.timeout", now, id);
        trace_->AsyncEnd(TraceTrack::kClient, "lock_request", now, id);
      }
      cb(AcquireResult::kTimeout);
      return;
    }
    ++pending.attempts;
    ++retransmits_;
    if (trace_->Sampled(lock, txn)) {
      trace_->Instant(TraceTrack::kClient, "client.retransmit",
                      machine_.net().sim().now(),
                      TraceLog::RequestId(lock, txn),
                      {"attempt",
                       static_cast<std::uint64_t>(pending.attempts)});
    }
    pending.epoch = next_epoch_++;
    SendAcquire(lock, txn, pending);
    ArmRetry(lock, txn, pending.epoch, config_.retry_timeout);
  });
}

void NetLockSession::OnPacket(const Packet& pkt) {
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr) return;
  if ((hdr->op == LockOp::kGrant || hdr->op == LockOp::kData) &&
      !grant_filter_.empty()) {
    // Drop network-duplicated grant copies first. The second copy of an
    // already-consumed grant would otherwise take the unsolicited-grant
    // path below and ghost-release a queue entry that was never double-
    // created — blind-popping some other waiter and handing the lock to
    // two holders at once.
    const std::uint64_t fp = GrantFingerprint(*hdr, pkt.src);
    std::uint64_t& reg = grant_filter_[static_cast<std::size_t>(
        fp % grant_filter_.size())];
    if (reg == fp) return;
    reg = fp;  // Collisions just evict: the filter is best-effort.
  }
  const auto it = pending_.find(std::make_pair(hdr->lock_id, hdr->txn_id));
  if (hdr->op == LockOp::kAbort) {
    // A deadlock policy refused (no-wait/wait-die) or revoked (wound) this
    // transaction's entry. Either way the entry is gone server-side.
    const auto reason = static_cast<AbortReason>(hdr->aux);
    if (it != pending_.end()) {
      // Still waiting: resolve the acquire as aborted. Invalidate so a
      // grant racing the abort (from a retransmit-created second entry)
      // does not ghost-release some other waiter's slot.
      Invalidate(hdr->lock_id, hdr->txn_id);
      AcquireCallback cb = std::move(it->second.cb);
      if (trace_->Sampled(hdr->lock_id, hdr->txn_id)) {
        const SimTime now = machine_.net().sim().now();
        const std::uint64_t id =
            TraceLog::RequestId(hdr->lock_id, hdr->txn_id);
        trace_->Instant(TraceTrack::kClient, "client.aborted", now, id);
        trace_->AsyncEnd(TraceTrack::kClient, "lock_request", now, id);
      }
      pending_.erase(it);
      cb(AcquireResult::kAborted);
    } else if (reason == AbortReason::kWound) {
      // The grant was already consumed: a *held* lock was wounded away.
      // The holder must treat it as lost and must not release it.
      Invalidate(hdr->lock_id, hdr->txn_id);
      grant_source_.erase(std::make_pair(hdr->lock_id, hdr->txn_id));
      if (wound_observer_) wound_observer_(hdr->lock_id, hdr->txn_id);
    }
    // Abort for an unknown, non-wound pair: stale duplicate; drop.
    return;
  }
  if (it == pending_.end()) {
    if (hdr->op == LockOp::kGrant || hdr->op == LockOp::kData) {
      if (Invalidated(hdr->lock_id, hdr->txn_id)) {
        // This grant's queue entry was already removed by a cancel/wound;
        // ghost-releasing it would pop a different waiter's entry.
        return;
      }
      // Unsolicited grant: a duplicate from a retransmitted acquire, or one
      // that arrived after this request timed out. Release it immediately
      // so the queue slot is reclaimed at wire speed; leaving it to lease
      // expiry would stall the lock for a full lease per stale entry.
      // Route the release straight back to the sender (the grantor).
      LockHeader release;
      release.op = LockOp::kRelease;
      release.lock_id = hdr->lock_id;
      release.mode = hdr->mode;
      release.txn_id = hdr->txn_id;
      release.client_node = node_;
      // Fresh nonce: this ghost release must NOT be deduplicated against
      // the transaction's real release — it pops a distinct queue entry.
      release.aux = release_nonce_++;
      machine_.Send(MakeLockPacket(node_, pkt.src, release));
    }
    return;
  }
  if (hdr->op == LockOp::kGrant || hdr->op == LockOp::kData) {
    // kData is the one-RTT combined grant+item reply (§4.1). Remember the
    // grantor so the release goes back to it (relevant across failover).
    // One-RTT grants come via the database server, but lock state lives in
    // whatever switch currently serves us: source stays kInvalidNode then
    // and the release falls back to switch_node. The arrival time is
    // recorded for both — it anchors the lease discipline in Release().
    GrantInfo info;
    if (hdr->op == LockOp::kGrant) info.source = pkt.src;
    info.granted_at = machine_.net().sim().now();
    grant_source_[std::make_pair(hdr->lock_id, hdr->txn_id)] = info;
    if (trace_->Sampled(hdr->lock_id, hdr->txn_id)) {
      const SimTime now = machine_.net().sim().now();
      const std::uint64_t id =
          TraceLog::RequestId(hdr->lock_id, hdr->txn_id);
      trace_->Complete(TraceTrack::kClient, "client.acquire_rtt",
                       it->second.issued_at, now, id,
                       {"attempts",
                        static_cast<std::uint64_t>(it->second.attempts)});
      trace_->AsyncEnd(TraceTrack::kClient, "lock_request", now, id);
    }
    AcquireCallback cb = std::move(it->second.cb);
    pending_.erase(it);
    cb(AcquireResult::kGranted);
    return;
  }
  if (hdr->op == LockOp::kReject) {
    // Quota throttling: back off and retransmit, preserving the single-
    // callback contract.
    Pending& pending = it->second;
    if (pending.attempts >= config_.max_retries) {
      AcquireCallback cb = std::move(pending.cb);
      const LockId lock = hdr->lock_id;
      const TxnId txn = hdr->txn_id;
      if (trace_->Sampled(lock, txn)) {
        const SimTime now = machine_.net().sim().now();
        const std::uint64_t id = TraceLog::RequestId(lock, txn);
        trace_->Instant(TraceTrack::kClient, "client.rejected", now, id);
        trace_->AsyncEnd(TraceTrack::kClient, "lock_request", now, id);
      }
      pending_.erase(it);
      cb(AcquireResult::kRejected);
      return;
    }
    ++pending.attempts;
    pending.epoch = next_epoch_++;
    const std::uint64_t epoch = pending.epoch;
    const LockId lock = hdr->lock_id;
    const TxnId txn = hdr->txn_id;
    machine_.net().sim().Schedule(
        config_.reject_backoff, [this, lock, txn, epoch]() {
          const auto it2 = pending_.find(std::make_pair(lock, txn));
          if (it2 == pending_.end() || it2->second.epoch != epoch) return;
          SendAcquire(lock, txn, it2->second);
          ArmRetry(lock, txn, epoch, config_.retry_timeout);
        });
  }
}

}  // namespace netlock
