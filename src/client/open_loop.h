// Open-loop load generator: transactions arrive by a Poisson process at a
// configured offered rate, independent of completions — unlike the
// closed-loop TxnEngine, queueing delay shows up as latency rather than
// reduced arrival rate. This is how the paper's DPDK clients stress the
// systems, and what a latency-vs-offered-load curve needs.
//
// Each in-flight transaction runs its own acquire→hold→release state
// machine, so one engine can have many transactions outstanding
// (bounded by `max_outstanding` to keep overload runs finite).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "client/client.h"
#include "common/check.h"
#include "common/random.h"
#include "common/stats.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace netlock {

struct OpenLoopConfig {
  /// Offered transaction arrival rate (transactions/second).
  double offered_tps = 100'000.0;
  /// Hold time once all locks are granted.
  SimTime think_time = 5 * kMicrosecond;
  /// Arrivals beyond this many in-flight transactions are dropped and
  /// counted (the overload signal).
  std::uint32_t max_outstanding = 256;
  Priority priority = 0;
  /// Acquire in workload order (no conflict-unit sort) — deadlock-prone on
  /// purpose; see TxnEngineConfig::preserve_workload_order.
  bool preserve_workload_order = false;
};

class OpenLoopEngine {
 public:
  OpenLoopEngine(Simulator& sim, LockSession& session,
                 std::unique_ptr<WorkloadGenerator> workload,
                 std::uint32_t engine_id, std::uint64_t seed,
                 OpenLoopConfig config);

  OpenLoopEngine(const OpenLoopEngine&) = delete;
  OpenLoopEngine& operator=(const OpenLoopEngine&) = delete;

  /// Starts the arrival process.
  void Start();

  /// Stops new arrivals; in-flight transactions complete.
  void Stop() { stopped_ = true; }

  void SetRecording(bool on) { recording_ = on; }

  /// Changes the offered arrival rate mid-run (takes effect from the next
  /// scheduled gap). Drives flash-crowd scenario phases.
  void set_offered_tps(double tps) {
    NETLOCK_CHECK(tps > 0.0);
    config_.offered_tps = tps;
  }

  RunMetrics& metrics() { return metrics_; }
  std::uint64_t dropped_arrivals() const { return dropped_; }
  std::uint32_t outstanding() const { return outstanding_; }
  std::uint64_t wounds() const { return wounds_; }

  /// Bits of the txn id reserved for the per-engine counter; the engine id
  /// occupies the bits above them.
  static constexpr int kCounterBits = 40;

  /// Builds the txn id `(engine_id << kCounterBits) | counter`, checking
  /// that the counter has not overflowed into the engine-id bits (which
  /// would alias txn ids across engines). Exposed for tests.
  static TxnId MakeTxnId(std::uint32_t engine_id, std::uint64_t counter);

 private:
  struct Txn {
    TxnSpec spec;
    std::size_t next_lock = 0;
    SimTime started = 0;
    SimTime lock_issued = 0;
  };

  void ScheduleNextArrival();
  void BeginTxn();
  void AcquireNext(TxnId txn_id);
  void OnResult(TxnId txn_id, AcquireResult result);
  void Commit(TxnId txn_id);
  void OnWound(LockId lock, TxnId txn_id);

  Simulator& sim_;
  LockSession& session_;
  std::unique_ptr<WorkloadGenerator> workload_;
  std::uint32_t engine_id_;
  Rng rng_;
  OpenLoopConfig config_;

  std::unordered_map<TxnId, Txn> in_flight_;
  std::uint64_t txn_counter_ = 0;
  std::uint32_t outstanding_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t wounds_ = 0;
  bool stopped_ = false;
  bool recording_ = false;
  RunMetrics metrics_;
};

}  // namespace netlock
