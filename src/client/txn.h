// Closed-loop transaction engine.
//
// Models one client thread of the paper's testbed: it repeatedly draws a
// transaction from a workload generator, acquires its locks in order
// (two-phase locking, growing phase), "executes" for a think time with the
// locks held, releases everything, and moves on. Lock-grant latency and
// transaction latency/throughput feed the evaluation figures.
#pragma once

#include <cstdint>
#include <memory>

#include "client/client.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace netlock {

struct TxnEngineConfig {
  /// Time the transaction holds all its locks ("think time" in Section 4.5:
  /// round trips plus in-memory execution).
  SimTime think_time = 5 * kMicrosecond;
  /// Pause between transactions (0 = fully closed loop).
  SimTime inter_txn_gap = 0;
  /// Backoff before retrying an aborted transaction.
  SimTime abort_backoff = 100 * kMicrosecond;
  Priority priority = 0;
  /// Committed transactions after which the engine goes idle; 0 = keep
  /// issuing until Stop(). Fixed-count runs produce identical per-engine
  /// request streams regardless of timing, which is what lets the
  /// cross-backend tests compare sim and real-time grant counts exactly.
  std::uint64_t max_txns = 0;
  /// Acquire locks in the order the workload emitted them instead of
  /// sorting by conflict unit. Deadlock-prone on purpose: used with the
  /// unordered workloads that exercise the deadlock policies. The workload
  /// must emit specs already deduplicated by conflict unit.
  bool preserve_workload_order = false;
};

class TxnEngine {
 public:
  /// `engine_id` must be unique across all engines in an experiment (it
  /// namespaces transaction ids).
  TxnEngine(Simulator& sim, LockSession& session,
            std::unique_ptr<WorkloadGenerator> workload, std::uint32_t
            engine_id, std::uint64_t seed, TxnEngineConfig config);

  TxnEngine(const TxnEngine&) = delete;
  TxnEngine& operator=(const TxnEngine&) = delete;

  /// Begins issuing transactions.
  void Start();

  /// Stops issuing new transactions; the in-flight one completes.
  void Stop() { stopped_ = true; }

  /// True once stopped and the in-flight transaction has fully completed.
  bool idle() const { return idle_; }

  /// Resumes after Stop(). Precondition: idle() — restarting with a
  /// transaction still in flight would corrupt the acquire sequencing.
  void Restart();

  /// Toggles measurement (warm-up vs measured window).
  void SetRecording(bool on) { recording_ = on; }

  /// Optional sink for per-commit time-series plots (Figures 12, 15).
  void set_commit_series(TimeSeries* series) { commit_series_ = series; }

  RunMetrics& metrics() { return metrics_; }
  const RunMetrics& metrics() const { return metrics_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t wounds() const { return wounds_; }
  std::uint64_t committed_lock_grants() const {
    return committed_lock_grants_;
  }

 private:
  void StartNextTxn();
  void AcquireNext();
  void OnAcquireResult(std::size_t index, AcquireResult result);
  void CommitAndRelease();
  void AbortAndRetry(std::size_t acquired);
  /// Wound-wait revoked a *held* lock: abort the transaction without
  /// releasing the wounded lock (its entry is already gone server-side).
  void OnWound(LockId lock, TxnId txn);
  /// Backoff, fresh (younger) txn id, re-run the same spec.
  void ScheduleRetry();

  Simulator& sim_;
  LockSession& session_;
  std::unique_ptr<WorkloadGenerator> workload_;
  std::uint32_t engine_id_;
  Rng rng_;
  TxnEngineConfig config_;

  TxnSpec current_;
  TxnId current_txn_ = kInvalidTxn;
  std::uint64_t txn_counter_ = 0;
  std::size_t next_lock_ = 0;
  SimTime txn_start_ = 0;
  SimTime lock_issue_ = 0;

  bool stopped_ = false;
  bool idle_ = true;
  /// Between an abort (die/wound/timeout) and the retry actually starting:
  /// suppresses the scheduled commit and any second wound for the same txn
  /// (current_txn_ only changes when the retry begins).
  bool aborting_ = false;
  std::uint64_t completed_txns_ = 0;
  bool recording_ = false;
  std::uint64_t aborts_ = 0;
  std::uint64_t wounds_ = 0;
  /// Sum over committed transactions of their lock-set sizes. Unlike raw
  /// grant counts this is timing-independent on a fixed-count run, so the
  /// cross-backend tests can compare it exactly.
  std::uint64_t committed_lock_grants_ = 0;
  RunMetrics metrics_;
  TimeSeries* commit_series_ = nullptr;
  /// Registry counters updated unconditionally (not gated on recording):
  /// the TimeSeriesSampler derives throughput-over-time from their deltas,
  /// which must keep counting through warm-up, failure windows, etc.
  MetricCounter* commits_metric_;
  MetricCounter* grants_metric_;
};

}  // namespace netlock
