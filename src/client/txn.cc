#include "client/txn.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

TxnEngine::TxnEngine(Simulator& sim, LockSession& session,
                     std::unique_ptr<WorkloadGenerator> workload,
                     std::uint32_t engine_id, std::uint64_t seed,
                     TxnEngineConfig config)
    : sim_(sim),
      session_(session),
      workload_(std::move(workload)),
      engine_id_(engine_id),
      rng_(seed),
      config_(config),
      commits_metric_(
          &sim.context().metrics().Counter("client.txn_commits")),
      grants_metric_(
          &sim.context().metrics().Counter("client.lock_grants")) {
  NETLOCK_CHECK(workload_ != nullptr);
  // No-op on backends without a deadlock policy (default implementation).
  session_.set_wound_observer(
      [this](LockId lock, TxnId txn) { OnWound(lock, txn); });
}

void TxnEngine::Start() { StartNextTxn(); }

void TxnEngine::Restart() {
  NETLOCK_CHECK(idle_);
  stopped_ = false;
  StartNextTxn();
}

void TxnEngine::StartNextTxn() {
  if (stopped_ ||
      (config_.max_txns != 0 && completed_txns_ >= config_.max_txns)) {
    idle_ = true;
    return;
  }
  idle_ = false;
  current_ = workload_->Next(rng_);
  NETLOCK_CHECK(!current_.locks.empty());
  if (config_.preserve_workload_order) {
    // Deadlock-prone on purpose: keep the workload's (unordered) sequence
    // so conflicting transactions can wait on each other in a cycle — the
    // scenario the deadlock policies exist to break.
    current_txn_ = (static_cast<TxnId>(engine_id_) << 40) | ++txn_counter_;
    next_lock_ = 0;
    txn_start_ = sim_.now();
    AcquireNext();
    return;
  }
  // Re-normalize at the backend's conflict granularity: coarsening
  // backends (NetChain cells) need ordering and deduplication by conflict
  // unit, or hash collisions produce unpreventable deadlock cycles and
  // double-acquisition of the same unit.
  std::sort(current_.locks.begin(), current_.locks.end(),
            [this](const LockRequest& a, const LockRequest& b) {
              const LockId ua = session_.ConflictUnit(a.lock);
              const LockId ub = session_.ConflictUnit(b.lock);
              if (ua != ub) return ua < ub;
              if (a.mode != b.mode) return a.mode == LockMode::kExclusive;
              return a.lock < b.lock;
            });
  current_.locks.erase(
      std::unique(current_.locks.begin(), current_.locks.end(),
                  [this](const LockRequest& a, const LockRequest& b) {
                    return session_.ConflictUnit(a.lock) ==
                           session_.ConflictUnit(b.lock);
                  }),
      current_.locks.end());
  current_txn_ =
      (static_cast<TxnId>(engine_id_) << 40) | ++txn_counter_;
  next_lock_ = 0;
  txn_start_ = sim_.now();
  AcquireNext();
}

void TxnEngine::AcquireNext() {
  NETLOCK_CHECK(next_lock_ < current_.locks.size());
  const LockRequest& req = current_.locks[next_lock_];
  lock_issue_ = sim_.now();
  if (recording_) ++metrics_.lock_requests;
  const std::size_t index = next_lock_;
  session_.Acquire(req.lock, req.mode, current_txn_, config_.priority,
                   [this, index](AcquireResult result) {
                     OnAcquireResult(index, result);
                   });
}

void TxnEngine::OnAcquireResult(std::size_t index, AcquireResult result) {
  NETLOCK_CHECK(index == next_lock_);
  if (result != AcquireResult::kGranted) {
    AbortAndRetry(/*acquired=*/index);
    return;
  }
  grants_metric_->Inc();
  if (recording_) {
    ++metrics_.lock_grants;
    metrics_.lock_latency.Record(sim_.now() - lock_issue_);
  }
  ++next_lock_;
  if (next_lock_ < current_.locks.size()) {
    AcquireNext();
    return;
  }
  // All locks held: execute, then commit. The commit is guarded by the
  // transaction id: a wound during think time aborts the transaction, and
  // the stale commit must not release locks the retry is re-acquiring.
  if (config_.think_time == 0) {
    CommitAndRelease();
  } else {
    sim_.Schedule(config_.think_time, [this, txn = current_txn_]() {
      if (aborting_ || txn != current_txn_) return;
      CommitAndRelease();
    });
  }
}

void TxnEngine::CommitAndRelease() {
  for (const LockRequest& req : current_.locks) {
    session_.Release(req.lock, req.mode, current_txn_);
  }
  commits_metric_->Inc();
  ++completed_txns_;
  committed_lock_grants_ += current_.locks.size();
  if (recording_) {
    ++metrics_.txn_commits;
    metrics_.txn_latency.Record(sim_.now() - txn_start_);
  }
  if (commit_series_ != nullptr) commit_series_->Record(sim_.now());
  if (config_.inter_txn_gap == 0) {
    StartNextTxn();
  } else {
    sim_.Schedule(config_.inter_txn_gap, [this]() { StartNextTxn(); });
  }
}

void TxnEngine::AbortAndRetry(std::size_t acquired) {
  ++aborts_;
  if (recording_) ++metrics_.retries;
  // Two-phase locking abort: drop everything acquired so far, back off,
  // and retry the same transaction under a fresh transaction id.
  for (std::size_t i = 0; i < acquired; ++i) {
    session_.Release(current_.locks[i].lock, current_.locks[i].mode,
                     current_txn_);
  }
  ScheduleRetry();
}

void TxnEngine::OnWound(LockId lock, TxnId txn) {
  // Stale wound (previous transaction, or one we are already aborting):
  // its locks are released or being released; nothing to do.
  if (txn != current_txn_ || idle_ || aborting_) return;
  ++wounds_;
  ++aborts_;
  if (recording_) ++metrics_.retries;
  // Release every held lock EXCEPT the wounded one — its queue entry was
  // already removed server-side, and releasing it would pop some other
  // waiter's entry instead.
  for (std::size_t i = 0; i < next_lock_; ++i) {
    const LockRequest& req = current_.locks[i];
    if (req.lock == lock) continue;
    session_.Release(req.lock, req.mode, current_txn_);
  }
  // An acquire still in flight can never be answered usefully now: cancel
  // it client-side (no callback) and tell the manager to drop any queue
  // entry it created, so a doomed entry never stalls the queue.
  if (next_lock_ < current_.locks.size()) {
    const LockRequest& req = current_.locks[next_lock_];
    session_.Cancel(req.lock, req.mode, current_txn_);
  }
  ScheduleRetry();
}

void TxnEngine::ScheduleRetry() {
  aborting_ = true;
  sim_.Schedule(config_.abort_backoff, [this]() {
    aborting_ = false;
    if (stopped_) {
      idle_ = true;
      return;
    }
    current_txn_ = (static_cast<TxnId>(engine_id_) << 40) | ++txn_counter_;
    next_lock_ = 0;
    txn_start_ = sim_.now();
    AcquireNext();
  });
}

}  // namespace netlock
