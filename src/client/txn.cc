#include "client/txn.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

TxnEngine::TxnEngine(Simulator& sim, LockSession& session,
                     std::unique_ptr<WorkloadGenerator> workload,
                     std::uint32_t engine_id, std::uint64_t seed,
                     TxnEngineConfig config)
    : sim_(sim),
      session_(session),
      workload_(std::move(workload)),
      engine_id_(engine_id),
      rng_(seed),
      config_(config),
      commits_metric_(
          &sim.context().metrics().Counter("client.txn_commits")),
      grants_metric_(
          &sim.context().metrics().Counter("client.lock_grants")) {
  NETLOCK_CHECK(workload_ != nullptr);
}

void TxnEngine::Start() { StartNextTxn(); }

void TxnEngine::Restart() {
  NETLOCK_CHECK(idle_);
  stopped_ = false;
  StartNextTxn();
}

void TxnEngine::StartNextTxn() {
  if (stopped_ ||
      (config_.max_txns != 0 && completed_txns_ >= config_.max_txns)) {
    idle_ = true;
    return;
  }
  idle_ = false;
  current_ = workload_->Next(rng_);
  NETLOCK_CHECK(!current_.locks.empty());
  // Re-normalize at the backend's conflict granularity: coarsening
  // backends (NetChain cells) need ordering and deduplication by conflict
  // unit, or hash collisions produce unpreventable deadlock cycles and
  // double-acquisition of the same unit.
  std::sort(current_.locks.begin(), current_.locks.end(),
            [this](const LockRequest& a, const LockRequest& b) {
              const LockId ua = session_.ConflictUnit(a.lock);
              const LockId ub = session_.ConflictUnit(b.lock);
              if (ua != ub) return ua < ub;
              if (a.mode != b.mode) return a.mode == LockMode::kExclusive;
              return a.lock < b.lock;
            });
  current_.locks.erase(
      std::unique(current_.locks.begin(), current_.locks.end(),
                  [this](const LockRequest& a, const LockRequest& b) {
                    return session_.ConflictUnit(a.lock) ==
                           session_.ConflictUnit(b.lock);
                  }),
      current_.locks.end());
  current_txn_ =
      (static_cast<TxnId>(engine_id_) << 40) | ++txn_counter_;
  next_lock_ = 0;
  txn_start_ = sim_.now();
  AcquireNext();
}

void TxnEngine::AcquireNext() {
  NETLOCK_CHECK(next_lock_ < current_.locks.size());
  const LockRequest& req = current_.locks[next_lock_];
  lock_issue_ = sim_.now();
  if (recording_) ++metrics_.lock_requests;
  const std::size_t index = next_lock_;
  session_.Acquire(req.lock, req.mode, current_txn_, config_.priority,
                   [this, index](AcquireResult result) {
                     OnAcquireResult(index, result);
                   });
}

void TxnEngine::OnAcquireResult(std::size_t index, AcquireResult result) {
  NETLOCK_CHECK(index == next_lock_);
  if (result != AcquireResult::kGranted) {
    AbortAndRetry(/*acquired=*/index);
    return;
  }
  grants_metric_->Inc();
  if (recording_) {
    ++metrics_.lock_grants;
    metrics_.lock_latency.Record(sim_.now() - lock_issue_);
  }
  ++next_lock_;
  if (next_lock_ < current_.locks.size()) {
    AcquireNext();
    return;
  }
  // All locks held: execute, then commit.
  if (config_.think_time == 0) {
    CommitAndRelease();
  } else {
    sim_.Schedule(config_.think_time, [this]() { CommitAndRelease(); });
  }
}

void TxnEngine::CommitAndRelease() {
  for (const LockRequest& req : current_.locks) {
    session_.Release(req.lock, req.mode, current_txn_);
  }
  commits_metric_->Inc();
  ++completed_txns_;
  if (recording_) {
    ++metrics_.txn_commits;
    metrics_.txn_latency.Record(sim_.now() - txn_start_);
  }
  if (commit_series_ != nullptr) commit_series_->Record(sim_.now());
  if (config_.inter_txn_gap == 0) {
    StartNextTxn();
  } else {
    sim_.Schedule(config_.inter_txn_gap, [this]() { StartNextTxn(); });
  }
}

void TxnEngine::AbortAndRetry(std::size_t acquired) {
  ++aborts_;
  if (recording_) ++metrics_.retries;
  // Two-phase locking abort: drop everything acquired so far, back off,
  // and retry the same transaction under a fresh transaction id.
  for (std::size_t i = 0; i < acquired; ++i) {
    session_.Release(current_.locks[i].lock, current_.locks[i].mode,
                     current_txn_);
  }
  sim_.Schedule(config_.abort_backoff, [this]() {
    if (stopped_) {
      idle_ = true;
      return;
    }
    current_txn_ = (static_cast<TxnId>(engine_id_) << 40) | ++txn_counter_;
    next_lock_ = 0;
    txn_start_ = sim_.now();
    AcquireNext();
  });
}

}  // namespace netlock
