// Client-side lock sessions.
//
// A LockSession is the narrow interface every lock-manager backend
// (NetLock, DSLR, DrTM, NetChain, server-only) exposes to the transaction
// engine: asynchronous acquire with a completion callback, and release.
// One session models one client thread with at most a handful of
// outstanding operations; a ClientMachine groups sessions that share a NIC
// and models the machine's finite request-generation rate (the prototype's
// DPDK clients generate up to 18 MRPS per machine).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/types.h"
#include "net/lock_wire.h"
#include "sim/network.h"
#include "sim/service_queue.h"

namespace netlock {

using AcquireCallback = std::function<void(AcquireResult)>;

/// Backend-agnostic client session interface.
class LockSession {
 public:
  virtual ~LockSession() = default;

  /// Requests `lock` in `mode` for transaction `txn`. Exactly one callback
  /// fires per call (possibly after internal retries).
  virtual void Acquire(LockId lock, LockMode mode, TxnId txn,
                       Priority priority, AcquireCallback cb) = 0;

  /// Releases a lock previously granted to `txn`.
  virtual void Release(LockId lock, LockMode mode, TxnId txn) = 0;

  /// Withdraws a still-pending acquire (no callback will fire) and asks the
  /// manager to drop every queue entry of (lock, txn). Used when a deadlock
  /// policy aborts the transaction while this acquire is in flight. Only
  /// meaningful on backends with a deadlock policy; default no-op.
  virtual void Cancel(LockId lock, LockMode mode, TxnId txn) {
    (void)lock;
    (void)mode;
    (void)txn;
  }

  /// Observer fired when the manager *revokes an already-granted* lock
  /// (wound-wait): the entry is gone server-side, so the holder must treat
  /// the lock as lost and must NOT release it. Default: unsupported no-op.
  virtual void set_wound_observer(std::function<void(LockId, TxnId)> obs) {
    (void)obs;
  }

  /// Network address grants are delivered to.
  virtual NodeId node() const = 0;

  /// Canonical conflict unit for a lock id. Backends that coarsen locks
  /// (NetChain's hash onto switch cells) return the coarse unit, so the
  /// transaction layer can order and deduplicate acquisitions at the
  /// granularity that actually conflicts — otherwise hash collisions
  /// create deadlock cycles no lock ordering can prevent.
  virtual LockId ConflictUnit(LockId lock) const { return lock; }
};

/// A client machine: shared NIC with a finite TX rate.
class ClientMachine {
 public:
  /// `tx_service_time` = time the NIC/driver spends per outgoing request;
  /// 55 ns ~= 18 MRPS, the prototype's per-machine generation limit.
  ClientMachine(Network& net, SimTime tx_service_time = 55)
      : net_(net), tx_(net.sim(), tx_service_time) {}

  Network& net() { return net_; }

  /// Sends through the machine NIC: the packet leaves when the NIC gets to
  /// it, which caps the machine's aggregate request rate.
  void Send(Packet pkt) {
    tx_.Submit([this, pkt = std::move(pkt)]() { net_.Send(pkt); });
  }

  std::uint64_t packets_sent() const { return tx_.items_served(); }

 private:
  Network& net_;
  ServiceQueue tx_;
};

/// NetLock client session: sends acquires/releases to the rack's lock
/// switch and waits for grants. Losses are recovered by lease-scale
/// retransmission (Section 4.5: "clients retry when the leases expire").
class NetLockSession : public LockSession {
 public:
  struct Config {
    NodeId switch_node = kInvalidNode;
    TenantId tenant = 0;
    /// Retransmit an unanswered acquire after this long. Must be on the
    /// order of the lease so duplicates are rare; queued-but-not-granted
    /// requests legitimately wait, so this also bounds queue wait.
    SimTime retry_timeout = 5 * kMillisecond;
    /// Delay before retrying a quota-rejected request.
    SimTime reject_backoff = 20 * kMicrosecond;
    /// Give up after this many retransmissions and report kTimeout.
    int max_retries = 16;
    /// Slots in the duplicate-grant filter (hash-indexed grant
    /// fingerprints). Drops network-duplicated copies of a grant before
    /// they can re-trigger the unsolicited-grant ghost release, which
    /// would blind-pop another waiter's queue entry. 0 disables.
    std::uint32_t grant_filter_slots = 1024;
    /// Lease duration the lock manager enforces (0 = no lease discipline).
    /// Once a grant is older than `lease - lease_release_margin`, the
    /// manager's lease sweep may already have force-released the entry, so
    /// sending our release would pop a *different* waiter's queue slot.
    /// The session then drops the release and lets the sweep reclaim it.
    SimTime lease = 0;
    /// Safety margin: must cover the release's one-way flight time plus
    /// the grant's (the holder timestamps from grant *arrival*, which lags
    /// the manager's grant clock by one delivery).
    SimTime lease_release_margin = 0;
  };

  NetLockSession(ClientMachine& machine, Config config);

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override;
  void Release(LockId lock, LockMode mode, TxnId txn) override;
  void Cancel(LockId lock, LockMode mode, TxnId txn) override;
  void set_wound_observer(
      std::function<void(LockId, TxnId)> obs) override {
    wound_observer_ = std::move(obs);
  }
  NodeId node() const override { return node_; }

  /// Re-points future acquires at a different lock switch (backup-switch
  /// failover, §4.5). In-flight requests keep retransmitting to the new
  /// switch; releases go to the switch that granted the lock (see below).
  void set_switch_node(NodeId node) { config_.switch_node = node; }
  NodeId switch_node() const { return config_.switch_node; }

  /// Rewrites the recorded grant source of held locks (chain-replication
  /// failover: the promoted tail holds the dead head's exact state, so
  /// releases recorded against the head must flow to the tail).
  void RedirectGrantSource(NodeId from, NodeId to) {
    for (auto& [key, info] : grant_source_) {
      if (info.source == from) info.source = to;
    }
  }

  std::uint64_t retransmits() const { return retransmits_; }

  /// Releases dropped by the lease discipline (grant too old to release
  /// safely; the manager's lease sweep reclaims the entry instead).
  std::uint64_t releases_suppressed() const { return releases_suppressed_; }

 private:
  struct Pending {
    LockMode mode;
    Priority priority;
    AcquireCallback cb;
    int attempts = 0;
    std::uint64_t epoch = 0;
    SimTime issued_at = 0;
  };

  void OnPacket(const Packet& pkt);
  void SendAcquire(LockId lock, TxnId txn, const Pending& pending);
  void ArmRetry(LockId lock, TxnId txn, std::uint64_t epoch, SimTime delay);
  void Invalidate(LockId lock, TxnId txn);
  bool Invalidated(LockId lock, TxnId txn) const;

  ClientMachine& machine_;
  Config config_;
  NodeId node_;
  TraceLog* trace_;  ///< Request-lifecycle tracing (resolved once).
  std::map<std::pair<LockId, TxnId>, Pending> pending_;
  struct GrantInfo {
    /// Grantor node; kInvalidNode for one-RTT kData grants (the reply
    /// comes via the database server — release to switch_node instead).
    NodeId source = kInvalidNode;
    /// Local arrival time of the grant, anchoring the lease discipline.
    SimTime granted_at = 0;
  };

  /// Where and when each held lock's grant arrived: releases are sent back
  /// to the granting switch, which is what keeps release routing correct
  /// while a backup switch serves during a primary outage (§4.5: "we only
  /// grant locks from the backup switch until the queue ... gets empty").
  std::map<std::pair<LockId, TxnId>, GrantInfo> grant_source_;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t retransmits_ = 0;
  std::uint64_t releases_suppressed_ = 0;
  /// Stamped into LockHeader::aux of every release this session sends. Each
  /// logical release gets a fresh nonce, so the manager-side dedup filters
  /// drop network-retransmitted copies (same nonce) without swallowing a
  /// second legitimate release of the same (lock, txn) — e.g. the ghost
  /// release of a duplicate grant (fresh nonce).
  std::uint32_t release_nonce_ = 1;
  /// Grant-dedup fingerprints (empty when the filter is disabled). Keyed by
  /// GrantFingerprint(lock, txn, grantor, grant nonce): a duplicated copy of
  /// a grant matches its original and is dropped; the grant of a distinct
  /// queue entry carries a fresh nonce and passes.
  std::vector<std::uint64_t> grant_filter_;
  /// (lock, txn) pairs whose queue entries a deadlock-policy abort (cancel
  /// or wound) removed server-side. A grant for such a pair that was in
  /// flight when the abort landed must NOT take the unsolicited-grant
  /// ghost-release path: its queue entry is already gone, so the release
  /// would blind-pop some *other* waiter's entry. FIFO-bounded.
  std::set<std::pair<LockId, TxnId>> invalidated_;
  std::deque<std::pair<LockId, TxnId>> invalidated_fifo_;
  std::function<void(LockId, TxnId)> wound_observer_;
};

}  // namespace netlock
