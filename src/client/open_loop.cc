#include "client/open_loop.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

OpenLoopEngine::OpenLoopEngine(Simulator& sim, LockSession& session,
                               std::unique_ptr<WorkloadGenerator> workload,
                               std::uint32_t engine_id, std::uint64_t seed,
                               OpenLoopConfig config)
    : sim_(sim),
      session_(session),
      workload_(std::move(workload)),
      engine_id_(engine_id),
      rng_(seed),
      config_(config) {
  NETLOCK_CHECK(workload_ != nullptr);
  NETLOCK_CHECK(config_.offered_tps > 0.0);
  session_.set_wound_observer(
      [this](LockId lock, TxnId txn) { OnWound(lock, txn); });
}

void OpenLoopEngine::Start() { ScheduleNextArrival(); }

TxnId OpenLoopEngine::MakeTxnId(std::uint32_t engine_id,
                                std::uint64_t counter) {
  NETLOCK_CHECK(counter < (std::uint64_t{1} << kCounterBits));
  return (static_cast<TxnId>(engine_id) << kCounterBits) | counter;
}

void OpenLoopEngine::ScheduleNextArrival() {
  if (stopped_) return;
  const double mean_gap_ns =
      static_cast<double>(kSecond) / config_.offered_tps;
  const SimTime gap =
      std::max<SimTime>(1, static_cast<SimTime>(
                               rng_.NextExponential(mean_gap_ns)));
  sim_.Schedule(gap, [this]() {
    if (stopped_) return;
    BeginTxn();
    ScheduleNextArrival();
  });
}

void OpenLoopEngine::BeginTxn() {
  if (outstanding_ >= config_.max_outstanding) {
    ++dropped_;  // Overloaded: shed the arrival.
    return;
  }
  const TxnId txn_id = MakeTxnId(engine_id_, ++txn_counter_);
  Txn txn;
  txn.spec = workload_->Next(rng_);
  if (!config_.preserve_workload_order) {
    // Order by the backend's conflict unit (see TxnEngine for rationale).
    std::sort(txn.spec.locks.begin(), txn.spec.locks.end(),
              [this](const LockRequest& a, const LockRequest& b) {
                return session_.ConflictUnit(a.lock) <
                       session_.ConflictUnit(b.lock);
              });
  }
  txn.started = sim_.now();
  ++outstanding_;
  const bool empty = txn.spec.locks.empty();
  in_flight_.emplace(txn_id, std::move(txn));
  if (empty) {
    // No locks to take: the transaction is pure think time, then commits.
    if (config_.think_time == 0) {
      Commit(txn_id);
    } else {
      sim_.Schedule(config_.think_time, [this, txn_id]() { Commit(txn_id); });
    }
    return;
  }
  AcquireNext(txn_id);
}

void OpenLoopEngine::AcquireNext(TxnId txn_id) {
  Txn& txn = in_flight_.at(txn_id);
  const LockRequest& req = txn.spec.locks[txn.next_lock];
  txn.lock_issued = sim_.now();
  if (recording_) ++metrics_.lock_requests;
  session_.Acquire(req.lock, req.mode, txn_id, config_.priority,
                   [this, txn_id](AcquireResult result) {
                     OnResult(txn_id, result);
                   });
}

void OpenLoopEngine::OnResult(TxnId txn_id, AcquireResult result) {
  const auto it = in_flight_.find(txn_id);
  NETLOCK_CHECK(it != in_flight_.end());
  Txn& txn = it->second;
  if (result != AcquireResult::kGranted) {
    // Abort: release what we hold and drop the transaction (open-loop
    // arrivals keep coming; there is no retry loop to preserve).
    if (recording_) ++metrics_.retries;
    for (std::size_t i = 0; i < txn.next_lock; ++i) {
      session_.Release(txn.spec.locks[i].lock, txn.spec.locks[i].mode,
                       txn_id);
    }
    in_flight_.erase(it);
    --outstanding_;
    return;
  }
  if (recording_) {
    ++metrics_.lock_grants;
    metrics_.lock_latency.Record(sim_.now() - txn.lock_issued);
  }
  ++txn.next_lock;
  if (txn.next_lock < txn.spec.locks.size()) {
    AcquireNext(txn_id);
    return;
  }
  if (config_.think_time == 0) {
    Commit(txn_id);
  } else {
    sim_.Schedule(config_.think_time, [this, txn_id]() { Commit(txn_id); });
  }
}

void OpenLoopEngine::OnWound(LockId lock, TxnId txn_id) {
  const auto it = in_flight_.find(txn_id);
  if (it == in_flight_.end()) return;  // Stale wound: already done.
  Txn& txn = it->second;
  ++wounds_;
  if (recording_) ++metrics_.retries;
  // Release held locks except the wounded one (its entry is already gone
  // server-side); cancel the acquire still in flight, if any. No retry:
  // open-loop arrivals keep coming.
  for (std::size_t i = 0; i < txn.next_lock; ++i) {
    const LockRequest& req = txn.spec.locks[i];
    if (req.lock == lock) continue;
    session_.Release(req.lock, req.mode, txn_id);
  }
  if (txn.next_lock < txn.spec.locks.size()) {
    const LockRequest& req = txn.spec.locks[txn.next_lock];
    session_.Cancel(req.lock, req.mode, txn_id);
  }
  in_flight_.erase(it);
  --outstanding_;
}

void OpenLoopEngine::Commit(TxnId txn_id) {
  const auto it = in_flight_.find(txn_id);
  // A wound during think time already tore the transaction down.
  if (it == in_flight_.end()) return;
  Txn& txn = it->second;
  for (const LockRequest& req : txn.spec.locks) {
    session_.Release(req.lock, req.mode, txn_id);
  }
  if (recording_) {
    ++metrics_.txn_commits;
    metrics_.txn_latency.Record(sim_.now() - txn.started);
  }
  in_flight_.erase(it);
  --outstanding_;
}

}  // namespace netlock
