// Execution-substrate interface: the clock the protocol code runs against.
//
// The lock protocol (LockEngine, sessions, lease discipline) needs exactly
// one thing from its runtime that differs between "simulated rack" and
// "real threads": what time it is. An ExecutionSubstrate answers that in
// nanoseconds — simulated nanoseconds advanced by the event loop, or
// monotonic wall-clock nanoseconds since the substrate was created — so
// the same compiled protocol code produces simulated-time numbers under
// the Simulator and wall-clock MLPS numbers under the rt backend.
//
// Scheduling deliberately stays out of this interface: the sim substrate
// schedules by event queue, the rt substrate by worker threads draining
// SPSC mailboxes, and the protocol core (see core/lock_engine.h) is
// written to need neither — callers drive it and pass `Now()` in.
#pragma once

#include <chrono>

#include "common/types.h"

namespace netlock {

class Simulator;

class ExecutionSubstrate {
 public:
  virtual ~ExecutionSubstrate() = default;

  /// Nanoseconds since substrate start (simulated or monotonic wall).
  virtual SimTime Now() const = 0;

  /// True when Now() advances with wall-clock time (the rt backend).
  virtual bool real_time() const = 0;

  virtual const char* name() const = 0;
};

/// Simulated time: a view over a Simulator's clock.
class SimSubstrate final : public ExecutionSubstrate {
 public:
  explicit SimSubstrate(Simulator& sim) : sim_(sim) {}

  SimTime Now() const override;
  bool real_time() const override { return false; }
  const char* name() const override { return "sim"; }

 private:
  Simulator& sim_;
};

/// Real time: monotonic nanoseconds since construction. Thread-safe (the
/// anchor is immutable after construction).
class RtSubstrate final : public ExecutionSubstrate {
 public:
  RtSubstrate() : start_(std::chrono::steady_clock::now()) {}

  SimTime Now() const override {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  bool real_time() const override { return true; }
  const char* name() const override { return "rt"; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace netlock
