#include "substrate/execution_substrate.h"

#include "sim/simulator.h"

namespace netlock {

SimTime SimSubstrate::Now() const { return sim_.now(); }

}  // namespace netlock
