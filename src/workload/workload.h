// Workload generator interface: produces transactions as lock-request sets.
//
// The lock manager under test never sees SQL — only the stream of lock
// requests each transaction issues. Generators therefore emit TxnSpecs: an
// ordered list of (lock, mode) pairs the transaction engine acquires with
// two-phase locking.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace netlock {

struct LockRequest {
  LockId lock = kInvalidLock;
  LockMode mode = LockMode::kExclusive;

  friend bool operator==(const LockRequest&, const LockRequest&) = default;
};

struct TxnSpec {
  std::vector<LockRequest> locks;
};

class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Produces the next transaction's lock set. Lock ids within a
  /// transaction are sorted and deduplicated (deadlock avoidance by global
  /// ordering — the standard discipline; the paper additionally relies on
  /// leases to break deadlocks from undisciplined clients).
  virtual TxnSpec Next(Rng& rng) = 0;

  /// Number of distinct lock ids this workload can touch (used by control
  /// planes to size directories).
  virtual LockId lock_space() const = 0;
};

/// Sorts by lock id and merges duplicates (an exclusive request subsumes a
/// shared one for the same lock).
void NormalizeTxn(TxnSpec& txn);

}  // namespace netlock
