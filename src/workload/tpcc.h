// TPC-C lock-request trace generator (paper Section 6.1).
//
// Generates the lock sets TPC-C transactions take under row-level two-phase
// locking: the five transaction types at the standard mix (NewOrder 45%,
// Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%), over the
// warehouse / district / customer / item / stock tables. Contention is
// controlled exactly as in the paper (and DSLR): a *high-contention*
// setting runs one warehouse per client node and a *low-contention* setting
// runs ten. Cross-warehouse accesses (1% of NewOrder order lines, 15% of
// Payment customers, per the TPC-C spec) create the inter-node conflicts.
//
// Lock ids pack (table, row) into the 32-bit lock space, ordered so the
// hottest tables sort HIGHEST. Transactions acquire locks in ascending id
// order (global deadlock-avoidance ordering), so hot rows are locked last
// and held only across the commit point — the standard "lock hot data
// last" 2PL discipline; putting warehouses first would make every
// transaction hold the hottest lock through its entire growing phase.
//   [0, stock)                  stock rows        (coldest)
//   [.., + items)               item rows
//   [.., + customers)           customer rows
//   [.., + 10W)                 district rows
//   [.., + W)                   warehouse rows    (hottest)
#pragma once

#include "workload/workload.h"

namespace netlock {

enum class TpccTxnType : std::uint8_t {
  kNewOrder = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
};

struct TpccConfig {
  /// Total warehouses across the cluster.
  std::uint32_t warehouses = 10;
  /// This generator's home warehouse (one engine per client thread; its
  /// transactions mostly touch the home warehouse, as TPC-C terminals do).
  std::uint32_t home_warehouse = 0;
  /// Probability a NewOrder order line is supplied by a remote warehouse.
  double remote_orderline_prob = 0.01;
  /// Probability a Payment customer belongs to a remote warehouse.
  double remote_payment_prob = 0.15;
  /// Lock coarsening (paper §4.5: "for uniform workload distributions, we
  /// combine multiple locks into one coarse-grained lock to increase the
  /// memory utilization"): rows per lock for the near-uniform tail tables.
  /// 1 = row-level locking. Coarsening trades a little false contention
  /// for a lock working set that fits switch memory.
  std::uint32_t item_granularity = 1;
  std::uint32_t stock_granularity = 1;
  std::uint32_t customer_granularity = 1;
  /// Whether reads of the item catalog take shared locks. The item table is
  /// never written in TPC-C, so implementations commonly read it without
  /// locking (versioned/immutable catalog).
  bool lock_items = true;
  /// Whether stock rows are locked. Implementations that validate stock
  /// updates optimistically (or partition them with the warehouse) keep the
  /// lock manager's working set to the coordination-critical warehouse /
  /// district / customer rows — the regime the paper's memory-allocation
  /// experiments (Figures 13-14) operate in.
  bool lock_stock = true;
};

class TpccWorkload final : public WorkloadGenerator {
 public:
  explicit TpccWorkload(TpccConfig config);

  TxnSpec Next(Rng& rng) override;
  LockId lock_space() const override { return total_locks_; }

  /// Lock id helpers (exposed for tests and allocation analysis).
  LockId WarehouseLock(std::uint32_t w) const;
  LockId DistrictLock(std::uint32_t w, std::uint32_t d) const;
  LockId CustomerLock(std::uint32_t w, std::uint32_t d,
                      std::uint32_t c) const;
  LockId ItemLock(std::uint32_t i) const;
  LockId StockLock(std::uint32_t w, std::uint32_t i) const;

  /// Samples a transaction type at the standard mix.
  static TpccTxnType SampleType(Rng& rng);

  static constexpr std::uint32_t kDistrictsPerWarehouse = 10;
  static constexpr std::uint32_t kCustomersPerDistrict = 3000;
  static constexpr std::uint32_t kItems = 100'000;

  const TpccConfig& config() const { return config_; }

 private:
  TxnSpec NewOrder(Rng& rng);
  TxnSpec Payment(Rng& rng);
  TxnSpec OrderStatus(Rng& rng);
  TxnSpec Delivery(Rng& rng);
  TxnSpec StockLevel(Rng& rng);

  /// NURand-style non-uniform row selection (hot rows within a table).
  std::uint32_t NonUniform(Rng& rng, std::uint32_t a, std::uint32_t n) const;

  TpccConfig config_;
  LockId stock_base_ = 0;
  LockId item_base_ = 0;
  LockId customer_base_ = 0;
  LockId district_base_ = 0;
  LockId warehouse_base_ = 0;
  LockId total_locks_ = 0;
};

}  // namespace netlock
