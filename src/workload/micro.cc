#include "workload/micro.h"

#include <utility>

#include "common/check.h"

namespace netlock {

MicroWorkload::MicroWorkload(MicroConfig config)
    : config_(config), zipf_(config.num_locks, config.zipf_alpha) {
  NETLOCK_CHECK(config_.num_locks >= 1);
  NETLOCK_CHECK(config_.locks_per_txn >= 1);
  NETLOCK_CHECK(config_.shared_fraction >= 0.0 &&
                config_.shared_fraction <= 1.0);
}

TxnSpec MicroWorkload::Next(Rng& rng) {
  TxnSpec txn;
  txn.locks.reserve(config_.locks_per_txn);
  for (std::uint32_t i = 0; i < config_.locks_per_txn; ++i) {
    LockRequest req;
    // ZipfSampler handles alpha == 0 as a single uniform draw itself, so
    // the stream is identical to a direct NextBounded call.
    req.lock = config_.first_lock + static_cast<LockId>(zipf_.Sample(rng));
    req.mode = rng.NextBool(config_.shared_fraction) ? LockMode::kShared
                                                     : LockMode::kExclusive;
    txn.locks.push_back(req);
  }
  NormalizeTxn(txn);
  return txn;
}

UnorderedMicroWorkload::UnorderedMicroWorkload(MicroConfig config)
    : config_(config), zipf_(config.num_locks, config.zipf_alpha) {
  NETLOCK_CHECK(config_.num_locks >= 1);
  NETLOCK_CHECK(config_.locks_per_txn >= 1);
  NETLOCK_CHECK(config_.shared_fraction >= 0.0 &&
                config_.shared_fraction <= 1.0);
}

TxnSpec UnorderedMicroWorkload::Next(Rng& rng) {
  TxnSpec txn;
  txn.locks.reserve(config_.locks_per_txn);
  for (std::uint32_t i = 0; i < config_.locks_per_txn; ++i) {
    LockRequest req;
    req.lock = config_.first_lock + static_cast<LockId>(zipf_.Sample(rng));
    req.mode = rng.NextBool(config_.shared_fraction) ? LockMode::kShared
                                                     : LockMode::kExclusive;
    txn.locks.push_back(req);
  }
  // Dedup (an engine must never queue the same lock twice within one txn)
  // but then shuffle: the acquisition order is the point of this workload.
  NormalizeTxn(txn);
  for (std::size_t i = txn.locks.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.NextBounded(i));
    std::swap(txn.locks[i - 1], txn.locks[j]);
  }
  return txn;
}

}  // namespace netlock
