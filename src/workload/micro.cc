#include "workload/micro.h"

#include "common/check.h"

namespace netlock {

MicroWorkload::MicroWorkload(MicroConfig config)
    : config_(config), zipf_(config.num_locks, config.zipf_alpha) {
  NETLOCK_CHECK(config_.num_locks >= 1);
  NETLOCK_CHECK(config_.locks_per_txn >= 1);
  NETLOCK_CHECK(config_.shared_fraction >= 0.0 &&
                config_.shared_fraction <= 1.0);
}

TxnSpec MicroWorkload::Next(Rng& rng) {
  TxnSpec txn;
  txn.locks.reserve(config_.locks_per_txn);
  for (std::uint32_t i = 0; i < config_.locks_per_txn; ++i) {
    LockRequest req;
    // ZipfSampler handles alpha == 0 as a single uniform draw itself, so
    // the stream is identical to a direct NextBounded call.
    req.lock = config_.first_lock + static_cast<LockId>(zipf_.Sample(rng));
    req.mode = rng.NextBool(config_.shared_fraction) ? LockMode::kShared
                                                     : LockMode::kExclusive;
    txn.locks.push_back(req);
  }
  NormalizeTxn(txn);
  return txn;
}

}  // namespace netlock
