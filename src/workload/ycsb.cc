#include "workload/ycsb.h"

#include "common/check.h"

namespace netlock {

YcsbWorkload::YcsbWorkload(YcsbConfig config)
    : config_(config), zipf_(config.num_keys, config.zipf_alpha) {
  NETLOCK_CHECK(config_.num_keys >= 1);
  NETLOCK_CHECK(config_.keys_per_txn >= 1);
  NETLOCK_CHECK(config_.write_fraction >= 0.0 &&
                config_.write_fraction <= 1.0);
}

TxnSpec YcsbWorkload::Next(Rng& rng) {
  TxnSpec txn;
  txn.locks.reserve(config_.keys_per_txn);
  for (std::uint32_t i = 0; i < config_.keys_per_txn; ++i) {
    LockRequest req;
    req.lock = config_.first_key + static_cast<LockId>(zipf_.Sample(rng));
    req.mode = rng.NextBool(config_.write_fraction) ? LockMode::kExclusive
                                                    : LockMode::kShared;
    txn.locks.push_back(req);
  }
  NormalizeTxn(txn);
  return txn;
}

}  // namespace netlock
