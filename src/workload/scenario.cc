#include "workload/scenario.h"

#include <utility>

#include "common/check.h"

namespace netlock {

ScenarioWorkload::ScenarioWorkload(ScenarioConfig config)
    : config_(config),
      hot_zipf_(config.hot_set_size, config.hot_zipf_alpha) {
  NETLOCK_CHECK(config_.num_locks >= 1);
  NETLOCK_CHECK(config_.hot_set_size >= 1);
  NETLOCK_CHECK(config_.hot_set_size <= config_.num_locks);
  NETLOCK_CHECK(config_.locks_per_txn >= 1);
  NETLOCK_CHECK(config_.hot_fraction >= 0.0 && config_.hot_fraction <= 1.0);
  NETLOCK_CHECK(config_.shared_fraction >= 0.0 &&
                config_.shared_fraction <= 1.0);
}

TxnSpec ScenarioWorkload::Next(Rng& rng) {
  if (config_.drift_every_txns != 0 && emitted_ != 0 &&
      emitted_ % config_.drift_every_txns == 0) {
    hot_base_ = static_cast<LockId>(
        (hot_base_ + config_.drift_step) % config_.num_locks);
  }
  ++emitted_;

  TxnSpec txn;
  txn.locks.reserve(config_.locks_per_txn);
  for (std::uint32_t i = 0; i < config_.locks_per_txn; ++i) {
    LockRequest req;
    if (rng.NextBool(config_.hot_fraction)) {
      // Hot pick: Zipf within the drifting window, wrapping at the end of
      // the lock space so the window never shrinks.
      const LockId offset = static_cast<LockId>(hot_zipf_.Sample(rng));
      req.lock = static_cast<LockId>((hot_base_ + offset) % config_.num_locks);
    } else {
      req.lock = static_cast<LockId>(rng.NextBounded(config_.num_locks));
    }
    req.mode = rng.NextBool(config_.shared_fraction) ? LockMode::kShared
                                                     : LockMode::kExclusive;
    txn.locks.push_back(req);
  }
  NormalizeTxn(txn);
  if (config_.unordered) {
    for (std::size_t i = txn.locks.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.NextBounded(i));
      std::swap(txn.locks[i - 1], txn.locks[j]);
    }
  }
  return txn;
}

}  // namespace netlock
