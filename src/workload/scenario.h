// Deadlock-prone scenario workload: a drifting-Zipf hot set layered over a
// uniform cold space, with the per-transaction lock order deliberately left
// unsorted. Models the adversarial conditions the deadlock policies exist
// for — short-lived contention storms where many clients chase the same
// small set of popular locks in different orders (an application-level
// flash crowd). The companion flash-crowd *load* bursts come from the
// driver toggling OpenLoopEngine::set_offered_tps; this class only shapes
// which locks the transactions touch.
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace netlock {

struct ScenarioConfig {
  /// Total lock space [0, num_locks).
  LockId num_locks = 10000;
  /// Size of the hot window the crowd chases.
  LockId hot_set_size = 16;
  /// Probability a lock pick lands in the hot window (Zipf within it);
  /// the rest are uniform over the whole space.
  double hot_fraction = 0.8;
  /// Zipf skew inside the hot window; 0 = uniform within the window.
  double hot_zipf_alpha = 0.99;
  /// The hot window's base rotates by `drift_step` every
  /// `drift_every_txns` transactions this generator emits (count-based so
  /// replays are deterministic; 0 = never drift).
  std::uint64_t drift_every_txns = 200;
  LockId drift_step = 16;
  /// Locks per transaction (>= 2 for lock-order cycles to exist).
  std::uint32_t locks_per_txn = 4;
  /// Fraction of shared (reader) requests.
  double shared_fraction = 0.0;
  /// Leave the deduplicated lock set shuffled (deadlock-prone). False
  /// restores the sorted global-order discipline for A/B comparison.
  bool unordered = true;
};

class ScenarioWorkload final : public WorkloadGenerator {
 public:
  explicit ScenarioWorkload(ScenarioConfig config);

  TxnSpec Next(Rng& rng) override;
  LockId lock_space() const override { return config_.num_locks; }

  const ScenarioConfig& config() const { return config_; }
  /// Current hot-window base lock id (drifts as transactions are drawn).
  LockId hot_base() const { return hot_base_; }

 private:
  ScenarioConfig config_;
  ZipfSampler hot_zipf_;
  LockId hot_base_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace netlock
