#include "workload/workload.h"

#include <algorithm>

namespace netlock {

void NormalizeTxn(TxnSpec& txn) {
  std::sort(txn.locks.begin(), txn.locks.end(),
            [](const LockRequest& a, const LockRequest& b) {
              if (a.lock != b.lock) return a.lock < b.lock;
              // Exclusive before shared so the merge below keeps it.
              return a.mode == LockMode::kExclusive &&
                     b.mode == LockMode::kShared;
            });
  txn.locks.erase(
      std::unique(txn.locks.begin(), txn.locks.end(),
                  [](const LockRequest& a, const LockRequest& b) {
                    return a.lock == b.lock;
                  }),
      txn.locks.end());
}

}  // namespace netlock
