#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace netlock {

TraceWorkload::TraceWorkload(std::vector<TxnSpec> txns,
                             std::size_t start_offset)
    : txns_(std::move(txns)) {
  NETLOCK_CHECK(!txns_.empty());
  next_ = start_offset % txns_.size();
  for (const TxnSpec& txn : txns_) {
    for (const LockRequest& req : txn.locks) {
      lock_space_ = std::max(lock_space_, req.lock + 1);
    }
  }
}

TxnSpec TraceWorkload::Next(Rng& /*rng*/) {
  const TxnSpec& txn = txns_[next_];
  next_ = (next_ + 1) % txns_.size();
  return txn;
}

std::vector<TxnSpec> TraceWorkload::Parse(std::istream& in) {
  std::vector<TxnSpec> txns;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream tokens(line);
    TxnSpec txn;
    std::string token;
    while (tokens >> token) {
      LockRequest req;
      req.mode = LockMode::kExclusive;
      const std::size_t colon = token.find(':');
      std::string id_part = token.substr(0, colon);
      if (colon != std::string::npos) {
        const std::string mode = token.substr(colon + 1);
        if (mode == "S" || mode == "s") {
          req.mode = LockMode::kShared;
        } else if (mode == "X" || mode == "x") {
          req.mode = LockMode::kExclusive;
        } else {
          throw std::runtime_error("trace line " +
                                   std::to_string(line_number) +
                                   ": bad mode '" + mode + "'");
        }
      }
      try {
        std::size_t used = 0;
        const unsigned long value = std::stoul(id_part, &used);
        if (used != id_part.size() || value > 0xffffffffull) {
          throw std::invalid_argument("range");
        }
        req.lock = static_cast<LockId>(value);
      } catch (const std::exception&) {
        throw std::runtime_error("trace line " +
                                 std::to_string(line_number) +
                                 ": bad lock id '" + id_part + "'");
      }
      txn.locks.push_back(req);
    }
    if (txn.locks.empty()) continue;  // Blank / comment-only line.
    NormalizeTxn(txn);
    txns.push_back(std::move(txn));
  }
  return txns;
}

std::vector<TxnSpec> TraceWorkload::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return Parse(in);
}

void TraceWorkload::Write(const std::vector<TxnSpec>& txns,
                          std::ostream& out) {
  for (const TxnSpec& txn : txns) {
    bool first = true;
    for (const LockRequest& req : txn.locks) {
      if (!first) out << ' ';
      first = false;
      out << req.lock;
      if (req.mode == LockMode::kShared) out << ":S";
    }
    out << '\n';
  }
}

std::vector<TxnSpec> TraceWorkload::Record(WorkloadGenerator& source,
                                           Rng& rng, std::size_t count) {
  std::vector<TxnSpec> txns;
  txns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    txns.push_back(source.Next(rng));
  }
  return txns;
}

}  // namespace netlock
