// Trace-driven workload: record a lock-request trace to a portable text
// format and replay it later.
//
// Lets downstream users run their own production lock traces through the
// simulator (or archive a generated workload for exact cross-machine
// reproduction). Format: one transaction per line, whitespace-separated
// `<lock>[:S|:X]` tokens (mode defaults to X); '#' starts a comment.
//
//   # two transactions
//   17:S 42:X
//   108
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace netlock {

/// Replays a fixed list of transactions, looping at the end. Each engine
/// can start at a different offset so concurrent replayers do not move in
/// lock-step.
class TraceWorkload final : public WorkloadGenerator {
 public:
  explicit TraceWorkload(std::vector<TxnSpec> txns,
                         std::size_t start_offset = 0);

  /// Parses the text format from a stream. Throws std::runtime_error with
  /// a line-numbered message on malformed input.
  static std::vector<TxnSpec> Parse(std::istream& in);

  /// Loads a trace file. Throws std::runtime_error if unreadable.
  static std::vector<TxnSpec> LoadFile(const std::string& path);

  /// Serializes transactions to the text format.
  static void Write(const std::vector<TxnSpec>& txns, std::ostream& out);

  /// Records `count` transactions from any generator into a trace.
  static std::vector<TxnSpec> Record(WorkloadGenerator& source, Rng& rng,
                                     std::size_t count);

  TxnSpec Next(Rng& rng) override;
  LockId lock_space() const override { return lock_space_; }

  std::size_t size() const { return txns_.size(); }

 private:
  std::vector<TxnSpec> txns_;
  std::size_t next_;
  LockId lock_space_ = 0;
};

}  // namespace netlock
