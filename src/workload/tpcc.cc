#include "workload/tpcc.h"

#include "common/check.h"

namespace netlock {

TpccWorkload::TpccWorkload(TpccConfig config) : config_(config) {
  NETLOCK_CHECK(config_.warehouses >= 1);
  NETLOCK_CHECK(config_.home_warehouse < config_.warehouses);
  NETLOCK_CHECK(config_.item_granularity >= 1);
  NETLOCK_CHECK(config_.stock_granularity >= 1);
  NETLOCK_CHECK(config_.customer_granularity >= 1);
  const LockId w = config_.warehouses;
  const LockId customers_per_wh =
      (kDistrictsPerWarehouse * kCustomersPerDistrict +
       config_.customer_granularity - 1) /
      config_.customer_granularity;
  const LockId item_locks =
      (kItems + config_.item_granularity - 1) / config_.item_granularity;
  const LockId stock_locks_total =
      (w * kItems + config_.stock_granularity - 1) /
      config_.stock_granularity;
  stock_base_ = 0;
  item_base_ = stock_base_ + stock_locks_total;
  customer_base_ = item_base_ + item_locks;
  district_base_ = customer_base_ + w * customers_per_wh;
  warehouse_base_ = district_base_ + w * kDistrictsPerWarehouse;
  total_locks_ = warehouse_base_ + w;
}

LockId TpccWorkload::WarehouseLock(std::uint32_t w) const {
  NETLOCK_DCHECK(w < config_.warehouses);
  return warehouse_base_ + w;
}

LockId TpccWorkload::DistrictLock(std::uint32_t w, std::uint32_t d) const {
  NETLOCK_DCHECK(w < config_.warehouses && d < kDistrictsPerWarehouse);
  return district_base_ + w * kDistrictsPerWarehouse + d;
}

LockId TpccWorkload::CustomerLock(std::uint32_t w, std::uint32_t d,
                                  std::uint32_t c) const {
  NETLOCK_DCHECK(w < config_.warehouses && d < kDistrictsPerWarehouse &&
                 c < kCustomersPerDistrict);
  const LockId customers_per_wh =
      (kDistrictsPerWarehouse * kCustomersPerDistrict +
       config_.customer_granularity - 1) /
      config_.customer_granularity;
  const LockId row = d * kCustomersPerDistrict + c;
  return customer_base_ + w * customers_per_wh +
         row / config_.customer_granularity;
}

LockId TpccWorkload::ItemLock(std::uint32_t i) const {
  NETLOCK_DCHECK(i < kItems);
  return item_base_ + i / config_.item_granularity;
}

LockId TpccWorkload::StockLock(std::uint32_t w, std::uint32_t i) const {
  NETLOCK_DCHECK(w < config_.warehouses && i < kItems);
  return stock_base_ +
         (static_cast<LockId>(w) * kItems + i) / config_.stock_granularity;
}

TpccTxnType TpccWorkload::SampleType(Rng& rng) {
  // Standard mix: 45 / 43 / 4 / 4 / 4.
  const std::uint64_t roll = rng.NextBounded(100);
  if (roll < 45) return TpccTxnType::kNewOrder;
  if (roll < 88) return TpccTxnType::kPayment;
  if (roll < 92) return TpccTxnType::kOrderStatus;
  if (roll < 96) return TpccTxnType::kDelivery;
  return TpccTxnType::kStockLevel;
}

std::uint32_t TpccWorkload::NonUniform(Rng& rng, std::uint32_t a,
                                       std::uint32_t n) const {
  // TPC-C NURand(A, 0, n-1) with C = 0: ((rand(0,A) | rand(0,n-1)) % n.
  const std::uint32_t x = static_cast<std::uint32_t>(rng.NextBounded(a + 1));
  const std::uint32_t y = static_cast<std::uint32_t>(rng.NextBounded(n));
  return (x | y) % n;
}

TxnSpec TpccWorkload::Next(Rng& rng) {
  TxnSpec txn;
  switch (SampleType(rng)) {
    case TpccTxnType::kNewOrder:
      txn = NewOrder(rng);
      break;
    case TpccTxnType::kPayment:
      txn = Payment(rng);
      break;
    case TpccTxnType::kOrderStatus:
      txn = OrderStatus(rng);
      break;
    case TpccTxnType::kDelivery:
      txn = Delivery(rng);
      break;
    case TpccTxnType::kStockLevel:
      txn = StockLevel(rng);
      break;
  }
  NormalizeTxn(txn);
  return txn;
}

TxnSpec TpccWorkload::NewOrder(Rng& rng) {
  // Reads warehouse tax, appends to the district's order sequence
  // (exclusive on the district row), reads the customer, and for each of
  // 5-15 order lines reads the item and updates the stock row.
  TxnSpec txn;
  const std::uint32_t w = config_.home_warehouse;
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng.NextBounded(kDistrictsPerWarehouse));
  txn.locks.push_back({WarehouseLock(w), LockMode::kShared});
  txn.locks.push_back({DistrictLock(w, d), LockMode::kExclusive});
  txn.locks.push_back(
      {CustomerLock(w, d, NonUniform(rng, 1023, kCustomersPerDistrict)),
       LockMode::kShared});
  const std::uint32_t ol_cnt =
      5 + static_cast<std::uint32_t>(rng.NextBounded(11));  // 5..15
  for (std::uint32_t ol = 0; ol < ol_cnt; ++ol) {
    const std::uint32_t item = NonUniform(rng, 8191, kItems);
    std::uint32_t supply_w = w;
    if (config_.warehouses > 1 &&
        rng.NextBool(config_.remote_orderline_prob)) {
      do {
        supply_w =
            static_cast<std::uint32_t>(rng.NextBounded(config_.warehouses));
      } while (supply_w == w);
    }
    if (config_.lock_items) {
      txn.locks.push_back({ItemLock(item), LockMode::kShared});
    }
    if (config_.lock_stock) {
      txn.locks.push_back({StockLock(supply_w, item), LockMode::kExclusive});
    }
  }
  return txn;
}

TxnSpec TpccWorkload::Payment(Rng& rng) {
  // Updates warehouse and district YTD (both exclusive — this is what makes
  // the warehouse row the hottest lock under high contention) and the
  // customer balance.
  TxnSpec txn;
  const std::uint32_t w = config_.home_warehouse;
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng.NextBounded(kDistrictsPerWarehouse));
  std::uint32_t cw = w;
  std::uint32_t cd = d;
  if (config_.warehouses > 1 && rng.NextBool(config_.remote_payment_prob)) {
    do {
      cw = static_cast<std::uint32_t>(rng.NextBounded(config_.warehouses));
    } while (cw == w);
    cd = static_cast<std::uint32_t>(rng.NextBounded(kDistrictsPerWarehouse));
  }
  txn.locks.push_back({WarehouseLock(w), LockMode::kExclusive});
  txn.locks.push_back({DistrictLock(w, d), LockMode::kExclusive});
  txn.locks.push_back(
      {CustomerLock(cw, cd, NonUniform(rng, 1023, kCustomersPerDistrict)),
       LockMode::kExclusive});
  return txn;
}

TxnSpec TpccWorkload::OrderStatus(Rng& rng) {
  // Reads a customer and their latest order (order rows are per-district
  // appends; the read rides the district row shared).
  TxnSpec txn;
  const std::uint32_t w = config_.home_warehouse;
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng.NextBounded(kDistrictsPerWarehouse));
  txn.locks.push_back(
      {CustomerLock(w, d, NonUniform(rng, 1023, kCustomersPerDistrict)),
       LockMode::kShared});
  txn.locks.push_back({DistrictLock(w, d), LockMode::kShared});
  return txn;
}

TxnSpec TpccWorkload::Delivery(Rng& rng) {
  // Delivery is deferred-executed in TPC-C (queued and processed
  // asynchronously, district by district); locking all ten districts in
  // one transaction would serialize the entire warehouse. Model the
  // deferred executor's unit of work: one district's oldest order.
  TxnSpec txn;
  const std::uint32_t w = config_.home_warehouse;
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng.NextBounded(kDistrictsPerWarehouse));
  txn.locks.push_back({DistrictLock(w, d), LockMode::kExclusive});
  txn.locks.push_back(
      {CustomerLock(w, d, NonUniform(rng, 1023, kCustomersPerDistrict)),
       LockMode::kExclusive});
  return txn;
}

TxnSpec TpccWorkload::StockLevel(Rng& rng) {
  // Examines recent order lines' stock levels: shared on the district
  // sequence and on a batch of stock rows.
  TxnSpec txn;
  const std::uint32_t w = config_.home_warehouse;
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng.NextBounded(kDistrictsPerWarehouse));
  txn.locks.push_back({DistrictLock(w, d), LockMode::kShared});
  if (config_.lock_stock) {
    for (int i = 0; i < 20; ++i) {
      txn.locks.push_back(
          {StockLock(w, NonUniform(rng, 8191, kItems)), LockMode::kShared});
    }
  }
  return txn;
}

}  // namespace netlock
