// Microbenchmark workload (paper Section 6.1): "simply generates lock
// requests to a set of locks", used for the Figure 8/9 switch and server
// capability measurements.
#pragma once

#include "workload/workload.h"

namespace netlock {

struct MicroConfig {
  /// Size of the lock set the clients contend on.
  LockId num_locks = 1000;
  /// First lock id (lets disjoint client groups target disjoint sets).
  LockId first_lock = 0;
  /// Fraction of requests that are shared (1.0 = shared-lock experiment,
  /// 0.0 = exclusive-lock experiment).
  double shared_fraction = 0.0;
  /// Locks per transaction (1 = pure lock-request stream).
  std::uint32_t locks_per_txn = 1;
  /// Zipf skew over the lock set; 0 = uniform.
  double zipf_alpha = 0.0;
};

class MicroWorkload final : public WorkloadGenerator {
 public:
  explicit MicroWorkload(MicroConfig config);

  TxnSpec Next(Rng& rng) override;
  LockId lock_space() const override {
    return config_.first_lock + config_.num_locks;
  }

  const MicroConfig& config() const { return config_; }

 private:
  MicroConfig config_;
  ZipfSampler zipf_;
};

/// Deadlock-prone variant of MicroWorkload: the same per-lock distribution,
/// but the lock set is deduplicated and then Fisher-Yates-shuffled rather
/// than sorted, so two overlapping transactions can acquire their common
/// locks in opposite orders. Pair with
/// TxnEngineConfig::preserve_workload_order and a DeadlockPolicy — under
/// kNone this workload genuinely deadlocks.
class UnorderedMicroWorkload final : public WorkloadGenerator {
 public:
  explicit UnorderedMicroWorkload(MicroConfig config);

  TxnSpec Next(Rng& rng) override;
  LockId lock_space() const override {
    return config_.first_lock + config_.num_locks;
  }

  const MicroConfig& config() const { return config_; }

 private:
  MicroConfig config_;
  ZipfSampler zipf_;
};

}  // namespace netlock
