// YCSB-style workload: zipf-popular keys with a read/write mix.
//
// The standard cloud-serving benchmark shape — reads take shared locks,
// writes exclusive — with the usual knobs: key-space size, zipf skew
// (YCSB's default 0.99), write fraction (A = 0.5, B = 0.05), and keys per
// transaction. Complements the microbenchmark (uniform, mode-split) and
// TPC-C (structured transactions).
#pragma once

#include "common/random.h"
#include "workload/workload.h"

namespace netlock {

struct YcsbConfig {
  LockId num_keys = 100'000;
  double zipf_alpha = 0.99;
  double write_fraction = 0.05;   ///< Workload B; use 0.5 for A.
  std::uint32_t keys_per_txn = 1;
  LockId first_key = 0;
};

class YcsbWorkload final : public WorkloadGenerator {
 public:
  explicit YcsbWorkload(YcsbConfig config);

  TxnSpec Next(Rng& rng) override;
  LockId lock_space() const override {
    return config_.first_key + config_.num_keys;
  }

  const YcsbConfig& config() const { return config_; }

 private:
  YcsbConfig config_;
  ZipfSampler zipf_;
};

}  // namespace netlock
