// ScheduleFuzzer: deterministic fault-injection fuzzing for the whole
// NetLock stack.
//
// A Schedule is (seed, workload shape, FaultPlan). RunSchedule stands up a
// small rack on its own SimContext, runs seeded closed-loop clients while
// the fault plan fires — network adversary knobs, partitions, lease-expiry
// bursts, switch failover, lock-server crashes — then sanitizes the fabric
// and checks:
//
//   * mutual exclusion (client-side LockOracle),
//   * per-lock FIFO order of exclusive grants (switch-side, benign plans
//     only),
//   * liveness: every engine goes idle and a drained backup goes cold once
//     faults stop,
//   * leak freedom: every observed grant is eventually released.
//
// Identical schedules replay byte-identically (RunReport::digest folds the
// full grant stream and network counters). A failing schedule shrinks via
// delta debugging to a minimal plan + workload, and ReplayLine() prints
// the one-liner that reproduces it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flight_recorder.h"
#include "sim/simulator.h"
#include "testing/fault_plan.h"

namespace netlock::testing {

struct WorkloadParams {
  int machines = 2;
  int sessions_per_machine = 2;
  int num_locks = 4;
  std::uint32_t queue_capacity = 64;
  int shared_permille = 0;
  int locks_per_txn = 1;
  /// NetLock racks the lock space shards across (1 = the classic
  /// single-rack testbed). Serialized as "racks=N"; absent in old replay
  /// tokens, which parse as 1.
  int racks = 1;
  /// Deadlock-prone flavor: engines acquire in the (shuffled) workload
  /// order instead of sorted order. Serialized as "unord=1"; absent in old
  /// replay tokens, which parse as 0.
  int unordered = 0;
  /// DeadlockPolicy as its wire value (0 none .. 3 wound_wait). Nonzero
  /// forces an all-server allocation (the switch data plane has no
  /// mid-queue removal). Serialized as "policy=N"; absent parses as 0.
  int policy = 0;
  /// Run with the self-driving controller live (fast tick, short dwell),
  /// so continuous reallocation races the fault plan. Ignored when the
  /// schedule forces an all-server allocation (unordered / policy != 0).
  /// Serialized as "ctrl=1"; absent parses as 0.
  int controller = 0;
  SimTime run_time = 30 * kMillisecond;

  friend bool operator==(const WorkloadParams&,
                         const WorkloadParams&) = default;
};

struct Schedule {
  std::uint64_t seed = 1;
  WorkloadParams workload;
  FaultPlan plan;

  /// Workload + plan, without the seed ("m=2;spm=2;...;plan=...").
  std::string SerializeParams() const;
  /// Full round-trippable form ("seed=7;" + SerializeParams()).
  std::string Serialize() const;
  /// Accepts either form; a missing seed keeps the caller's default.
  static bool Parse(std::string_view text, Schedule* out);

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

struct RunReport {
  bool ok = true;
  std::uint64_t grants = 0;
  std::uint64_t violations = 0;
  std::uint64_t fifo_violations = 0;
  /// Stuck waits-for cycles the liveness oracle observed (benign plans
  /// only; faults legitimately stall waiters past the window).
  std::uint64_t stuck_cycles = 0;
  /// Replay fingerprint: folds every switch grant event in order plus the
  /// final network counters. Identical schedules yield identical digests.
  std::uint64_t digest = 0;
  bool engines_idle = true;
  /// Deterministic descriptions of everything that went wrong (empty = ok).
  std::vector<std::string> problems;

  std::string Summary() const;
};

struct FuzzOptions {
  /// Check switch-side FIFO grant order (only applied when the plan is
  /// benign: faults legitimately reorder grants).
  bool check_fifo = true;
  /// Test-only seeded bug: suppress the oracle's view of releases for
  /// txns with txn % bug_txn_mod == 3, so the next grant on the same lock
  /// reports an overlap. Proves the fuzzer catches and shrinks real
  /// violations. 0 = off.
  std::uint64_t bug_txn_mod = 0;
  /// Test-only seeded liveness bug: run the schedule with the deadlock
  /// policy forced to kNone and the lease stretched past the horizon, so
  /// an unordered schedule that genuinely deadlocks stays deadlocked. The
  /// waits-for oracle must then report a stuck cycle (and the engines
  /// never idle). Proves the liveness check catches real deadlocks.
  bool bug_always_wait = false;
  /// How long after the workload stops the run may take to quiesce before
  /// liveness violations are reported.
  SimTime settle_budget = 400 * kMillisecond;
  /// Optional flight recorder: the run's protocol events (accepts, grants,
  /// client releases) are recorded into it, shard = rack (releases on
  /// shard 0). netlock_fuzz re-runs a shrunk failing schedule with one
  /// attached and dumps it next to the repro file.
  FlightRecorder* flight_recorder = nullptr;
};

class ScheduleFuzzer {
 public:
  explicit ScheduleFuzzer(std::uint64_t master_seed)
      : master_seed_(master_seed) {}

  /// Deterministically derives schedule `index` from the master seed:
  /// workload shape and a fault-plan flavor (clean, network chaos,
  /// partitions, failover, server crashes, or everything at once).
  Schedule Generate(std::uint64_t index) const;

  /// Runs one schedule to completion and reports.
  static RunReport RunSchedule(const Schedule& schedule,
                               const FuzzOptions& options = FuzzOptions{});

  /// Delta-debugs a failing schedule: ddmin over the fault actions, then
  /// greedy workload reduction. Each probe costs one RunSchedule; at most
  /// `max_runs` probes. Returns the smallest still-failing schedule found.
  static Schedule Shrink(Schedule failing,
                         const FuzzOptions& options = FuzzOptions{},
                         int max_runs = 128);

  /// "netlock_fuzz --seed=7 --plan='...'" — reproduces the schedule.
  static std::string ReplayLine(const Schedule& schedule);

 private:
  std::uint64_t master_seed_;
};

}  // namespace netlock::testing
