// FaultPlan: a declarative timeline of faults injected into one simulated
// run — network adversary knobs (loss, duplication, reordering, jitter),
// timed partitions, lease-expiry bursts, switch failover, and lock-server
// crash/recovery. Plans serialize to a single compact token so a failing
// fuzzer schedule can be replayed from one command-line argument.
//
// Every action is *guarded* at execution time (a RecoverPrimary with the
// primary healthy is a no-op, and so on), so any subsequence of a valid
// plan is itself valid — the property the delta-debugging shrinker relies
// on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace netlock::testing {

enum class FaultKind : std::uint8_t {
  /// Network knobs, applied to every client<->switch link. `value` is the
  /// probability in permille (loss/duplicate/reorder) or the jitter bound
  /// in sim-time units (kJitter). `duration` > 0 re-zeros the knob at
  /// `at + duration`; 0 leaves it on until end-of-run sanitization.
  kLoss = 0,
  kDuplicate,
  kReorder,
  kJitter,
  /// Zeroes all network knobs at `at`.
  kClearFaults,
  /// Black-holes every session of client machine `target % machines` for
  /// `duration` (0 = until end-of-run sanitization).
  kClientPartition,
  /// A client partition long enough that every lease the machine holds
  /// expires and is force-released by the lease sweep (`duration` is
  /// clamped up to 2.5 leases by the runner).
  kLeaseExpiryBurst,
  /// Switch failover (core/failover): fail the primary over to the backup
  /// / drain the backup back into a recovered primary.
  kFailPrimary,
  kRecoverPrimary,
  /// Lock-server crash/recovery through the control plane (§4.5 rehash +
  /// grace period). `target % num_servers` picks the server.
  kServerFail,
  kServerRecover,
  /// Primary-switch crash and in-place restart through the control plane
  /// (register state lost, clients retry into the lease-cleared switch) —
  /// the Figure 15 failure model, distinct from backup failover above.
  kSwitchCrash,
  kSwitchRestart,
  /// Control-plane reallocation on rack `target % racks`: re-runs the
  /// knapsack from live demand counters and migrates locks between switch
  /// and servers mid-schedule (skipped while that rack's switch is down or
  /// another migration is in flight).
  kReallocate,
  /// Cross-rack re-home of lock `target % num_locks` onto rack
  /// `value % racks` via ShardedNetLock::RehomeLock. A no-op on
  /// single-rack schedules or when a migration is already in flight.
  kRehome,
};

const char* ToString(FaultKind kind);

struct FaultAction {
  FaultKind kind = FaultKind::kClearFaults;
  /// Absolute sim time the action fires (0 = start of run).
  SimTime at = 0;
  /// For timed faults: how long the fault stays active (0 = indefinite).
  SimTime duration = 0;
  /// Kind-dependent index (machine or server).
  std::uint32_t target = 0;
  /// Kind-dependent magnitude (permille or sim-time units).
  std::uint32_t value = 0;

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

struct FaultPlan {
  std::vector<FaultAction> actions;

  /// True if any action perturbs packet delivery (knobs or partitions) —
  /// grant order is then no longer FIFO-comparable.
  bool PerturbsDelivery() const;

  /// True if the plan ever fails the primary switch over to a backup (the
  /// runner must stand up a backup switch + FailoverManager).
  bool NeedsBackup() const;

  /// True when no action can reorder, drop, or force-release anything:
  /// switch-side FIFO checking stays sound.
  bool Benign() const;

  /// "loss:1000:0:0:50,failsw:2000:0:0:0" — actions joined by ','; fields
  /// are kind:at:duration:target:value.
  std::string Serialize() const;
  static bool Parse(std::string_view text, FaultPlan* out);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace netlock::testing
