// Reference model: one unbounded FIFO queue per lock; entries stay until
// released; grant rules exactly as Algorithm 2 specifies. Model-check and
// fuzz tests compare the switch data plane's grant stream against this.
//
// gtest-free so it can be linked into the fuzzer CLI; Release() reports
// protocol misuse by returning false instead of asserting.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/types.h"

namespace netlock::testing {

class ReferenceLockManager {
 public:
  struct Grant {
    LockId lock;
    TxnId txn;
    LockMode mode;
    friend bool operator==(const Grant&, const Grant&) = default;
  };

  void Acquire(LockId lock, LockMode mode, TxnId txn) {
    State& s = locks_[lock];
    const bool was_empty = s.queue.empty();
    const bool all_shared = s.xcnt == 0;
    s.queue.push_back({mode, txn});
    if (mode == LockMode::kExclusive) ++s.xcnt;
    if (was_empty || (all_shared && mode == LockMode::kShared)) {
      grants_.push_back({lock, txn, mode});
    }
  }

  /// Dequeues the head (dequeues are blind head pops, as on the switch)
  /// and grants whatever becomes runnable. Returns false if the queue was
  /// empty or the head's mode does not match `mode` — a stale or
  /// out-of-protocol release.
  [[nodiscard]] bool Release(LockId lock, LockMode mode) {
    State& s = locks_[lock];
    if (s.queue.empty()) return false;
    const Entry released = s.queue.front();
    if (released.mode != mode) return false;
    s.queue.pop_front();
    if (released.mode == LockMode::kExclusive) --s.xcnt;
    if (s.queue.empty()) return true;
    const Entry& head = s.queue.front();
    if (head.mode == LockMode::kExclusive) {
      grants_.push_back({lock, head.txn, head.mode});
      return true;
    }
    if (released.mode == LockMode::kShared) return true;
    for (const Entry& e : s.queue) {
      if (e.mode == LockMode::kExclusive) break;
      grants_.push_back({lock, e.txn, e.mode});
    }
    return true;
  }

  const std::vector<Grant>& grants() const { return grants_; }

  /// Multiset of currently granted (lock, txn) pairs, per the model: the
  /// granted set is the maximal runnable prefix of each queue — every
  /// leading shared entry, or the exclusive head.
  std::vector<Grant> GrantedNow() const {
    std::vector<Grant> held;
    for (const auto& [lock, s] : locks_) {
      if (s.queue.empty()) continue;
      if (s.queue.front().mode == LockMode::kExclusive) {
        held.push_back({lock, s.queue.front().txn, LockMode::kExclusive});
        continue;
      }
      for (const Entry& e : s.queue) {
        if (e.mode == LockMode::kExclusive) break;
        held.push_back({lock, e.txn, LockMode::kShared});
      }
    }
    return held;
  }

 private:
  struct Entry {
    LockMode mode;
    TxnId txn;
  };
  struct State {
    std::deque<Entry> queue;
    std::uint32_t xcnt = 0;
  };
  std::map<LockId, State> locks_;
  std::vector<Grant> grants_;
};

}  // namespace netlock::testing
