#include "testing/fault_plan.h"

#include <array>
#include <charconv>
#include <cstring>

namespace netlock::testing {
namespace {

// Serialization names, indexed by FaultKind. Append-only: replay tokens
// embedded in CI logs and bug reports must keep parsing.
constexpr std::array<const char*, 15> kKindNames = {
    "loss",   "dup",    "reorder", "jitter", "clear",
    "part",   "burst",  "failsw",  "recsw",  "failsrv",
    "recsrv", "downsw", "upsw",    "realloc", "rehome",
};

bool ParseU64(std::string_view s, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool ParseAction(std::string_view text, FaultAction* out) {
  std::array<std::string_view, 5> fields;
  std::size_t n = 0;
  while (n < fields.size()) {
    const std::size_t colon = text.find(':');
    fields[n++] = text.substr(0, colon);
    if (colon == std::string_view::npos) break;
    text.remove_prefix(colon + 1);
  }
  if (n != fields.size()) return false;
  bool found = false;
  for (std::size_t k = 0; k < kKindNames.size(); ++k) {
    if (fields[0] == kKindNames[k]) {
      out->kind = static_cast<FaultKind>(k);
      found = true;
      break;
    }
  }
  std::uint64_t at = 0, duration = 0, target = 0, value = 0;
  if (!found || !ParseU64(fields[1], &at) || !ParseU64(fields[2], &duration) ||
      !ParseU64(fields[3], &target) || !ParseU64(fields[4], &value)) {
    return false;
  }
  out->at = static_cast<SimTime>(at);
  out->duration = static_cast<SimTime>(duration);
  out->target = static_cast<std::uint32_t>(target);
  out->value = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

const char* ToString(FaultKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindNames.size() ? kKindNames[index] : "?";
}

bool FaultPlan::PerturbsDelivery() const {
  for (const FaultAction& action : actions) {
    switch (action.kind) {
      case FaultKind::kLoss:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
      case FaultKind::kJitter:
        if (action.value > 0) return true;
        break;
      case FaultKind::kClientPartition:
      case FaultKind::kLeaseExpiryBurst:
        return true;
      default:
        break;
    }
  }
  return false;
}

bool FaultPlan::NeedsBackup() const {
  for (const FaultAction& action : actions) {
    if (action.kind == FaultKind::kFailPrimary) return true;
  }
  return false;
}

bool FaultPlan::Benign() const {
  for (const FaultAction& action : actions) {
    if (action.kind != FaultKind::kClearFaults) return false;
  }
  return true;
}

std::string FaultPlan::Serialize() const {
  std::string out;
  for (const FaultAction& action : actions) {
    if (!out.empty()) out += ',';
    out += ToString(action.kind);
    out += ':';
    out += std::to_string(action.at);
    out += ':';
    out += std::to_string(action.duration);
    out += ':';
    out += std::to_string(action.target);
    out += ':';
    out += std::to_string(action.value);
  }
  return out;
}

bool FaultPlan::Parse(std::string_view text, FaultPlan* out) {
  out->actions.clear();
  if (text.empty()) return true;
  while (true) {
    const std::size_t comma = text.find(',');
    FaultAction action;
    if (!ParseAction(text.substr(0, comma), &action)) return false;
    out->actions.push_back(action);
    if (comma == std::string_view::npos) return true;
    text.remove_prefix(comma + 1);
  }
}

}  // namespace netlock::testing
