// Oracle replay of the real-time backend's linearized event log.
//
// The rt service (record_events mode) emits a per-core protocol event
// stream merged by sequence number — a linearization consistent with each
// core's processing order (accept before grant, release before the grants
// it cascades). Replaying it through the single-threaded LockOracle turns
// any overlap or FIFO inversion in the multicore run into a counted,
// logged violation. Shared by tests/rt_backend_test and the telemetry
// violation tests (which drop selected releases to *seed* a violation and
// then assert the flight recorder dumps).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "rt/rt_lock_service.h"
#include "testing/lock_oracle.h"

namespace netlock::testing {

struct RtReplayOptions {
  /// Events for which this returns true are skipped — the hook used to
  /// seed violations (e.g. drop a release so the next grant overlaps).
  std::function<bool(const rt::RtEvent&)> drop;
  /// When the replay ends with violations and a recorder + prefix are set,
  /// the recorder is dumped to <dump_prefix>.txt/.json — the same autopsy
  /// artifact a live oracle failure produces.
  FlightRecorder* recorder = nullptr;
  std::string dump_prefix;
};

/// Replays `events` through `oracle`; returns oracle.violations() +
/// oracle.fifo_violations() after the replay.
inline std::uint64_t ReplayRtEventsThroughOracle(
    const std::vector<rt::RtEvent>& events, LockOracle& oracle,
    const RtReplayOptions& options = {}) {
  for (const rt::RtEvent& ev : events) {
    if (options.drop && options.drop(ev)) continue;
    switch (ev.kind) {
      case rt::RtEvent::Kind::kAccept:
        oracle.OnSwitchAccept(ev.lock, ev.txn, ev.mode, false);
        break;
      case rt::RtEvent::Kind::kGrant:
        oracle.OnGrant(ev.lock, ev.mode, ev.txn);
        oracle.OnSwitchGrant(ev.lock, ev.txn, ev.mode);
        break;
      case rt::RtEvent::Kind::kRelease:
        oracle.OnRelease(ev.lock, ev.mode, ev.txn);
        break;
      case rt::RtEvent::Kind::kAbort:
        // Policy abort (refusal, die, wound, or cancel removal): the pair
        // holds nothing from here on. OnWound also covers the never-granted
        // cases — it just removes queue/holder state that isn't there.
        oracle.OnWound(ev.lock, ev.txn);
        break;
    }
  }
  const std::uint64_t violations =
      oracle.violations() + oracle.fifo_violations();
  if (violations > 0 && options.recorder != nullptr &&
      !options.dump_prefix.empty()) {
    options.recorder->Dump(options.dump_prefix);
  }
  return violations;
}

}  // namespace netlock::testing
