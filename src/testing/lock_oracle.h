// LockOracle: a runtime safety checker for lock-manager integration tests
// and the schedule fuzzer.
//
// Two independent invariants are checked:
//
//  1. Mutual exclusion, observed as the *client* sees it (grant at the
//     callback, release at the send). This ordering is conservative in the
//     safe direction — a grant is observed no earlier than it was issued
//     and a release no later than it takes effect — so any overlap the
//     oracle reports is a real mutual-exclusion violation.
//
//  2. Per-lock FIFO order of exclusive grants, observed at the *switch*
//     (wire the data plane's queue/grant observers to OnSwitchAccept /
//     OnSwitchGrant). Exclusive grants must come back in admission order —
//     the property Algorithm 2 and the overflow protocol (Section 4.3)
//     both promise. Only meaningful on fault-free runs: packet loss and
//     lease expiry legitimately reorder grants, so the fuzzer enables this
//     check only for benign fault plans.
#pragma once

#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/check.h"
#include "common/types.h"

namespace netlock::testing {

class LockOracle {
 public:
  /// Lease-aware mode (used by the fuzzer): a hold older than `lease` is
  /// no longer protected — the manager may legitimately force-release it
  /// and grant the lock to someone else (Section 4.5), so it must not be
  /// reported as an overlap. Expiry is lazy (applied only when a
  /// conflicting grant arrives), which keeps TotalHolders() strict for the
  /// leak check. Callers should subtract a small slack from the real lease
  /// to absorb the delivery-delay skew between the switch's clock on the
  /// grant and the client's observation of it.
  void SetLease(SimTime lease, std::function<SimTime()> now) {
    lease_ = lease;
    now_ = std::move(now);
  }

  void OnGrant(LockId lock, LockMode mode, TxnId txn) {
    Holders& holders = held_[lock];
    if (mode == LockMode::kExclusive) {
      if (!holders.shared.empty() || holders.exclusive != kInvalidTxn) {
        ExpireStale(&holders);
      }
      if (!holders.shared.empty() || holders.exclusive != kInvalidTxn) {
        Violation("overlap", lock, txn,
                  holders.exclusive != kInvalidTxn
                      ? holders.exclusive
                      : holders.shared.begin()->first);
        return;
      }
      holders.exclusive = txn;
      holders.exclusive_since = now_ ? now_() : 0;
    } else {
      if (holders.exclusive != kInvalidTxn) ExpireStale(&holders);
      if (holders.exclusive != kInvalidTxn) {
        Violation("shared-over-exclusive", lock, txn, holders.exclusive);
        return;
      }
      holders.shared.insert_or_assign(txn, now_ ? now_() : 0);
    }
    ++grants_;
  }

  void OnRelease(LockId lock, LockMode mode, TxnId txn) {
    const auto it = held_.find(lock);
    if (it == held_.end()) return;
    if (mode == LockMode::kExclusive) {
      if (it->second.exclusive == txn) it->second.exclusive = kInvalidTxn;
    } else {
      it->second.shared.erase(txn);
    }
  }

  // --- Switch-side FIFO order (exclusive grants only) ---

  /// Feed from LockSwitch::set_queue_observer. Retransmitted acquires
  /// (same txn accepted again) are collapsed onto the first admission.
  void OnSwitchAccept(LockId lock, TxnId txn, LockMode mode,
                      bool /*overflowed*/) {
    if (mode != LockMode::kExclusive) return;
    std::deque<TxnId>& order = x_order_[lock];
    for (const TxnId t : order) {
      if (t == txn) return;  // Client retransmission: keep first position.
    }
    order.push_back(txn);
  }

  /// Feed from LockSwitch::set_grant_observer. A grant for a txn the
  /// oracle never saw admitted (a ghost grant for a retransmitted entry)
  /// is ignored; a grant that overtakes an earlier admission is a FIFO
  /// violation.
  void OnSwitchGrant(LockId lock, TxnId txn, LockMode mode) {
    if (mode != LockMode::kExclusive) return;
    const auto it = x_order_.find(lock);
    if (it == x_order_.end() || it->second.empty()) return;
    std::deque<TxnId>& order = it->second;
    if (order.front() == txn) {
      order.pop_front();
      return;
    }
    for (auto pos = order.begin(); pos != order.end(); ++pos) {
      if (*pos != txn) continue;
      ++fifo_violations_;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "fifo lock=%llu txn=%llu granted before txn=%llu",
                    static_cast<unsigned long long>(lock),
                    static_cast<unsigned long long>(txn),
                    static_cast<unsigned long long>(order.front()));
      log_.push_back(buf);
      order.erase(pos);
      return;
    }
    // Not admitted through the observer (e.g. ghost grant): ignore.
  }

  std::uint64_t violations() const { return violations_; }
  std::uint64_t fifo_violations() const { return fifo_violations_; }
  std::uint64_t grants() const { return grants_; }
  /// Holds the oracle wrote off as lease-expired when a conflicting grant
  /// arrived (lease-aware mode only). Informational, not a violation.
  std::uint64_t lease_takeovers() const { return lease_takeovers_; }

  /// Deterministic one-line descriptions of every violation, in order.
  const std::vector<std::string>& violation_log() const { return log_; }

  std::size_t CurrentHolders(LockId lock) const {
    const auto it = held_.find(lock);
    if (it == held_.end()) return 0;
    return it->second.shared.size() +
           (it->second.exclusive != kInvalidTxn ? 1 : 0);
  }

  /// Grants the oracle still considers held, across all locks. Zero once a
  /// run has fully drained (every granted lock was released).
  std::size_t TotalHolders() const {
    std::size_t total = 0;
    for (const auto& [lock, holders] : held_) {
      total += holders.shared.size() +
               (holders.exclusive != kInvalidTxn ? 1 : 0);
    }
    return total;
  }

 private:
  struct Holders {
    TxnId exclusive = kInvalidTxn;
    SimTime exclusive_since = 0;
    std::map<TxnId, SimTime> shared;  // txn -> grant observation time
  };

  /// Drops holders whose lease has lapsed (lease-aware mode only).
  void ExpireStale(Holders* holders) {
    if (!now_) return;
    const SimTime t = now_();
    if (holders->exclusive != kInvalidTxn &&
        t - holders->exclusive_since >= lease_) {
      holders->exclusive = kInvalidTxn;
      ++lease_takeovers_;
    }
    for (auto it = holders->shared.begin(); it != holders->shared.end();) {
      if (t - it->second >= lease_) {
        it = holders->shared.erase(it);
        ++lease_takeovers_;
      } else {
        ++it;
      }
    }
  }

  void Violation(const char* kind, LockId lock, TxnId txn, TxnId holder) {
    ++violations_;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s lock=%llu txn=%llu holder=%llu t=%llu", kind,
                  static_cast<unsigned long long>(lock),
                  static_cast<unsigned long long>(txn),
                  static_cast<unsigned long long>(holder),
                  static_cast<unsigned long long>(now_ ? now_() : 0));
    log_.push_back(buf);
  }

  std::map<LockId, Holders> held_;
  std::map<LockId, std::deque<TxnId>> x_order_;
  std::uint64_t violations_ = 0;
  std::uint64_t fifo_violations_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t lease_takeovers_ = 0;
  /// Lease-aware mode: unset (no expiry) until SetLease is called.
  SimTime lease_ = 0;
  std::function<SimTime()> now_;
  std::vector<std::string> log_;
};

/// Session decorator feeding the oracle.
class OracleSession : public LockSession {
 public:
  OracleSession(std::unique_ptr<LockSession> inner, LockOracle& oracle)
      : inner_(std::move(inner)), oracle_(oracle) {}

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override {
    inner_->Acquire(lock, mode, txn, priority,
                    [this, lock, mode, txn, cb = std::move(cb)](
                        AcquireResult result) {
                      if (result == AcquireResult::kGranted) {
                        oracle_.OnGrant(lock, mode, txn);
                      }
                      cb(result);
                    });
  }

  void Release(LockId lock, LockMode mode, TxnId txn) override {
    // The observer sees every real release, including the ones suppressed
    // from the oracle below — a flight recorder wired here records what the
    // client actually did, which is exactly what an autopsy needs.
    if (release_observer_) release_observer_(lock, mode, txn);
    if (!suppress_release_ || !suppress_release_(lock, txn)) {
      oracle_.OnRelease(lock, mode, txn);
    }
    inner_->Release(lock, mode, txn);
  }

  NodeId node() const override { return inner_->node(); }

  /// Test-only fault injection: when the predicate returns true the oracle
  /// is NOT told about the release (the lock manager still is). The oracle
  /// then believes the txn holds the lock forever, so the next grant is
  /// reported as an overlap — a deliberately seeded "bug" used to prove
  /// the fuzzer catches and shrinks real violations.
  void set_suppress_release(std::function<bool(LockId, TxnId)> pred) {
    suppress_release_ = std::move(pred);
  }

  /// Observes every client release (even oracle-suppressed ones); the
  /// fuzzer wires its flight recorder here.
  void set_release_observer(
      std::function<void(LockId, LockMode, TxnId)> observer) {
    release_observer_ = std::move(observer);
  }

 private:
  std::unique_ptr<LockSession> inner_;
  LockOracle& oracle_;
  std::function<bool(LockId, TxnId)> suppress_release_;
  std::function<void(LockId, LockMode, TxnId)> release_observer_;
};

}  // namespace netlock::testing
