// LockOracle: a runtime safety checker for lock-manager integration tests
// and the schedule fuzzer.
//
// Two independent invariants are checked:
//
//  1. Mutual exclusion, observed as the *client* sees it (grant at the
//     callback, release at the send). This ordering is conservative in the
//     safe direction — a grant is observed no earlier than it was issued
//     and a release no later than it takes effect — so any overlap the
//     oracle reports is a real mutual-exclusion violation.
//
//  2. Per-lock FIFO order of exclusive grants, observed at the *switch*
//     (wire the data plane's queue/grant observers to OnSwitchAccept /
//     OnSwitchGrant). Exclusive grants must come back in admission order —
//     the property Algorithm 2 and the overflow protocol (Section 4.3)
//     both promise. Only meaningful on fault-free runs: packet loss and
//     lease expiry legitimately reorder grants, so the fuzzer enables this
//     check only for benign fault plans.
#pragma once

#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/check.h"
#include "common/types.h"

namespace netlock::testing {

class LockOracle {
 public:
  /// Lease-aware mode (used by the fuzzer): a hold older than `lease` is
  /// no longer protected — the manager may legitimately force-release it
  /// and grant the lock to someone else (Section 4.5), so it must not be
  /// reported as an overlap. Expiry is lazy (applied only when a
  /// conflicting grant arrives), which keeps TotalHolders() strict for the
  /// leak check. Callers should subtract a small slack from the real lease
  /// to absorb the delivery-delay skew between the switch's clock on the
  /// grant and the client's observation of it.
  void SetLease(SimTime lease, std::function<SimTime()> now) {
    lease_ = lease;
    now_ = std::move(now);
  }

  void OnGrant(LockId lock, LockMode mode, TxnId txn) {
    // A grant that was already wounded server-side (the grant packet was in
    // flight when the wound removed the entry) never takes effect at the
    // client — the session suppresses it — so the oracle must not record a
    // holder for it.
    if (!wounded_.empty()) {
      const auto it = wounded_.find({lock, txn});
      if (it != wounded_.end()) {
        wounded_.erase(it);
        return;
      }
    }
    Holders& holders = held_[lock];
    if (mode == LockMode::kExclusive) {
      if (!holders.shared.empty() || holders.exclusive != kInvalidTxn) {
        ExpireStale(&holders);
      }
      if (!holders.shared.empty() || holders.exclusive != kInvalidTxn) {
        Violation("overlap", lock, txn,
                  holders.exclusive != kInvalidTxn
                      ? holders.exclusive
                      : holders.shared.begin()->first);
        return;
      }
      holders.exclusive = txn;
      holders.exclusive_since = now_ ? now_() : 0;
    } else {
      if (holders.exclusive != kInvalidTxn) ExpireStale(&holders);
      if (holders.exclusive != kInvalidTxn) {
        Violation("shared-over-exclusive", lock, txn, holders.exclusive);
        return;
      }
      holders.shared.insert_or_assign(txn, now_ ? now_() : 0);
    }
    ++grants_;
  }

  void OnRelease(LockId lock, LockMode mode, TxnId txn) {
    const auto it = held_.find(lock);
    if (it == held_.end()) return;
    if (mode == LockMode::kExclusive) {
      if (it->second.exclusive == txn) it->second.exclusive = kInvalidTxn;
    } else {
      it->second.shared.erase(txn);
    }
  }

  // --- Deadlock-policy events (feed from the manager's abort observer) ---

  /// A policy abort (no-wait / wait-die refusal, or any removal of a
  /// never-granted entry): the txn holds nothing for this lock, but a
  /// queued exclusive admission must be purged so the switch-side FIFO
  /// check doesn't wait on it forever.
  void OnAbort(LockId lock, TxnId txn) {
    const auto held = held_.find(lock);
    if (held != held_.end()) {
      if (held->second.exclusive == txn) {
        held->second.exclusive = kInvalidTxn;
      }
      held->second.shared.erase(txn);
    }
    const auto ord = x_order_.find(lock);
    if (ord != x_order_.end()) {
      for (auto pos = ord->second.begin(); pos != ord->second.end(); ++pos) {
        if (*pos == txn) {
          ord->second.erase(pos);
          break;
        }
      }
    }
  }

  /// Wound-wait revoked the entry; it may have been *held*. Drops any
  /// holder state and remembers the pair so an in-flight grant observed
  /// later (client-side lag) is not recorded as a fresh holder. Fire this
  /// from the server-side abort observer, which the engine invokes before
  /// the cascade grants — so the replacement grant never looks like an
  /// overlap with the wounded holder.
  void OnWound(LockId lock, TxnId txn) {
    OnAbort(lock, txn);
    wounded_.insert({lock, txn});
    wounded_fifo_.push_back({lock, txn});
    while (wounded_fifo_.size() > 4096) {
      wounded_.erase(wounded_fifo_.front());
      wounded_fifo_.pop_front();
    }
  }

  // --- Switch-side FIFO order (exclusive grants only) ---

  /// Feed from LockSwitch::set_queue_observer. Retransmitted acquires
  /// (same txn accepted again) are collapsed onto the first admission.
  void OnSwitchAccept(LockId lock, TxnId txn, LockMode mode,
                      bool /*overflowed*/) {
    if (mode != LockMode::kExclusive) return;
    std::deque<TxnId>& order = x_order_[lock];
    for (const TxnId t : order) {
      if (t == txn) return;  // Client retransmission: keep first position.
    }
    order.push_back(txn);
  }

  /// Feed from LockSwitch::set_grant_observer. A grant for a txn the
  /// oracle never saw admitted (a ghost grant for a retransmitted entry)
  /// is ignored; a grant that overtakes an earlier admission is a FIFO
  /// violation.
  void OnSwitchGrant(LockId lock, TxnId txn, LockMode mode) {
    if (mode != LockMode::kExclusive) return;
    const auto it = x_order_.find(lock);
    if (it == x_order_.end() || it->second.empty()) return;
    std::deque<TxnId>& order = it->second;
    if (order.front() == txn) {
      order.pop_front();
      return;
    }
    for (auto pos = order.begin(); pos != order.end(); ++pos) {
      if (*pos != txn) continue;
      ++fifo_violations_;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "fifo lock=%llu txn=%llu granted before txn=%llu",
                    static_cast<unsigned long long>(lock),
                    static_cast<unsigned long long>(txn),
                    static_cast<unsigned long long>(order.front()));
      log_.push_back(buf);
      order.erase(pos);
      return;
    }
    // Not admitted through the observer (e.g. ghost grant): ignore.
  }

  std::uint64_t violations() const { return violations_; }
  std::uint64_t fifo_violations() const { return fifo_violations_; }
  std::uint64_t grants() const { return grants_; }
  /// Holds the oracle wrote off as lease-expired when a conflicting grant
  /// arrived (lease-aware mode only). Informational, not a violation.
  std::uint64_t lease_takeovers() const { return lease_takeovers_; }

  /// Deterministic one-line descriptions of every violation, in order.
  const std::vector<std::string>& violation_log() const { return log_; }

  std::size_t CurrentHolders(LockId lock) const {
    const auto it = held_.find(lock);
    if (it == held_.end()) return 0;
    return it->second.shared.size() +
           (it->second.exclusive != kInvalidTxn ? 1 : 0);
  }

  /// Grants the oracle still considers held, across all locks. Zero once a
  /// run has fully drained (every granted lock was released).
  std::size_t TotalHolders() const {
    std::size_t total = 0;
    for (const auto& [lock, holders] : held_) {
      total += holders.shared.size() +
               (holders.exclusive != kInvalidTxn ? 1 : 0);
    }
    return total;
  }

 private:
  struct Holders {
    TxnId exclusive = kInvalidTxn;
    SimTime exclusive_since = 0;
    std::map<TxnId, SimTime> shared;  // txn -> grant observation time
  };

  /// Drops holders whose lease has lapsed (lease-aware mode only).
  void ExpireStale(Holders* holders) {
    if (!now_) return;
    const SimTime t = now_();
    if (holders->exclusive != kInvalidTxn &&
        t - holders->exclusive_since >= lease_) {
      holders->exclusive = kInvalidTxn;
      ++lease_takeovers_;
    }
    for (auto it = holders->shared.begin(); it != holders->shared.end();) {
      if (t - it->second >= lease_) {
        it = holders->shared.erase(it);
        ++lease_takeovers_;
      } else {
        ++it;
      }
    }
  }

  void Violation(const char* kind, LockId lock, TxnId txn, TxnId holder) {
    ++violations_;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s lock=%llu txn=%llu holder=%llu t=%llu", kind,
                  static_cast<unsigned long long>(lock),
                  static_cast<unsigned long long>(txn),
                  static_cast<unsigned long long>(holder),
                  static_cast<unsigned long long>(now_ ? now_() : 0));
    log_.push_back(buf);
  }

  std::map<LockId, Holders> held_;
  std::map<LockId, std::deque<TxnId>> x_order_;
  /// Pairs wound-wait revoked whose grant the client may still observe.
  std::set<std::pair<LockId, TxnId>> wounded_;
  std::deque<std::pair<LockId, TxnId>> wounded_fifo_;
  std::uint64_t violations_ = 0;
  std::uint64_t fifo_violations_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t lease_takeovers_ = 0;
  /// Lease-aware mode: unset (no expiry) until SetLease is called.
  SimTime lease_ = 0;
  std::function<SimTime()> now_;
  std::vector<std::string> log_;
};

/// Waits-for graph built from client-side observations: a liveness oracle
/// for the deadlock policies. An acquire opens a wait edge txn -> lock; the
/// acquire callback (grant, abort, timeout) or a Cancel closes it; a grant
/// makes the txn a holder of the lock; a release or wound ends the hold.
/// A deadlock shows up as a cycle txn -> lock -> holder-txn -> lock -> ...
/// that persists: every edge in it stays put. Transient cycles are normal
/// under wound-wait (the wound is in flight), so the check only reports
/// cycles whose *youngest* wait edge is older than a caller-chosen window
/// (comfortably above delivery + policy latency, below the lease).
class WaitsForGraph {
 public:
  void SetClock(std::function<SimTime()> now) { now_ = std::move(now); }

  void OnWaitStart(LockId lock, TxnId txn) {
    waiting_[txn] = Wait{lock, now_ ? now_() : 0};
  }

  void OnWaitEnd(LockId lock, TxnId txn) {
    const auto it = waiting_.find(txn);
    if (it != waiting_.end() && it->second.lock == lock) waiting_.erase(it);
  }

  void OnHoldStart(LockId lock, TxnId txn) { holders_[lock].insert(txn); }

  void OnHoldEnd(LockId lock, TxnId txn) {
    const auto it = holders_.find(lock);
    if (it == holders_.end()) return;
    it->second.erase(txn);
    if (it->second.empty()) holders_.erase(it);
  }

  std::size_t waiting() const { return waiting_.size(); }

  /// Returns a deterministic description of a stuck waits-for cycle —
  /// every wait edge on it at least `min_age` old — or the empty string if
  /// none exists. `now` defaults to the attached clock.
  std::string FindStuckCycle(SimTime min_age, SimTime now = 0) const {
    if (now == 0 && now_) now = now_();
    // DFS over txns; an edge txn -> holder exists when txn waits on a lock
    // the holder currently holds and the wait is old enough.
    std::map<TxnId, int> color;  // 0/absent = white, 1 = on stack, 2 = done.
    for (const auto& [txn, wait] : waiting_) {
      if (color.count(txn) != 0) continue;
      std::vector<TxnId> stack{txn};
      std::vector<TxnId> path;
      while (!stack.empty()) {
        const TxnId t = stack.back();
        if (color[t] == 0) {
          color[t] = 1;
          path.push_back(t);
          const auto wit = waiting_.find(t);
          if (wit != waiting_.end() && now - wit->second.since >= min_age) {
            const auto hit = holders_.find(wit->second.lock);
            if (hit != holders_.end()) {
              for (const TxnId holder : hit->second) {
                if (holder == t) continue;
                if (color[holder] == 1) {
                  return DescribeCycle(path, holder);
                }
                if (color[holder] == 0) stack.push_back(holder);
              }
            }
          }
        } else {
          stack.pop_back();
          if (color[t] == 1) {
            color[t] = 2;
            path.pop_back();
          }
        }
      }
    }
    return {};
  }

 private:
  struct Wait {
    LockId lock = kInvalidLock;
    SimTime since = 0;
  };

  std::string DescribeCycle(const std::vector<TxnId>& path,
                            TxnId back_to) const {
    std::string out = "waits-for cycle:";
    bool in_cycle = false;
    for (const TxnId t : path) {
      if (t == back_to) in_cycle = true;
      if (!in_cycle) continue;
      const auto wit = waiting_.find(t);
      char buf[96];
      std::snprintf(buf, sizeof(buf), " txn=%llu -(lock=%llu)->",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(
                        wit != waiting_.end() ? wit->second.lock
                                              : kInvalidLock));
      out += buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), " txn=%llu",
                  static_cast<unsigned long long>(back_to));
    out += buf;
    return out;
  }

  std::map<TxnId, Wait> waiting_;
  std::map<LockId, std::set<TxnId>> holders_;
  std::function<SimTime()> now_;
};

/// Session decorator feeding the oracle (and, when attached, the
/// waits-for graph).
class OracleSession : public LockSession {
 public:
  OracleSession(std::unique_ptr<LockSession> inner, LockOracle& oracle)
      : inner_(std::move(inner)), oracle_(oracle) {}

  /// Also maintain a waits-for graph from this session's traffic. The
  /// graph must outlive the session.
  void AttachWaitsFor(WaitsForGraph* graph) { waits_ = graph; }

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override {
    if (waits_ != nullptr) waits_->OnWaitStart(lock, txn);
    inner_->Acquire(lock, mode, txn, priority,
                    [this, lock, mode, txn, cb = std::move(cb)](
                        AcquireResult result) {
                      if (waits_ != nullptr) waits_->OnWaitEnd(lock, txn);
                      if (result == AcquireResult::kGranted) {
                        oracle_.OnGrant(lock, mode, txn);
                        if (waits_ != nullptr) waits_->OnHoldStart(lock, txn);
                      }
                      cb(result);
                    });
  }

  void Release(LockId lock, LockMode mode, TxnId txn) override {
    // The observer sees every real release, including the ones suppressed
    // from the oracle below — a flight recorder wired here records what the
    // client actually did, which is exactly what an autopsy needs.
    if (release_observer_) release_observer_(lock, mode, txn);
    if (!suppress_release_ || !suppress_release_(lock, txn)) {
      oracle_.OnRelease(lock, mode, txn);
    }
    if (waits_ != nullptr) waits_->OnHoldEnd(lock, txn);
    inner_->Release(lock, mode, txn);
  }

  void Cancel(LockId lock, LockMode mode, TxnId txn) override {
    if (waits_ != nullptr) waits_->OnWaitEnd(lock, txn);
    inner_->Cancel(lock, mode, txn);
  }

  void set_wound_observer(
      std::function<void(LockId, TxnId)> obs) override {
    inner_->set_wound_observer(
        [this, obs = std::move(obs)](LockId lock, TxnId txn) {
          if (waits_ != nullptr) waits_->OnHoldEnd(lock, txn);
          if (obs) obs(lock, txn);
        });
  }

  NodeId node() const override { return inner_->node(); }

  /// Test-only fault injection: when the predicate returns true the oracle
  /// is NOT told about the release (the lock manager still is). The oracle
  /// then believes the txn holds the lock forever, so the next grant is
  /// reported as an overlap — a deliberately seeded "bug" used to prove
  /// the fuzzer catches and shrinks real violations.
  void set_suppress_release(std::function<bool(LockId, TxnId)> pred) {
    suppress_release_ = std::move(pred);
  }

  /// Observes every client release (even oracle-suppressed ones); the
  /// fuzzer wires its flight recorder here.
  void set_release_observer(
      std::function<void(LockId, LockMode, TxnId)> observer) {
    release_observer_ = std::move(observer);
  }

 private:
  std::unique_ptr<LockSession> inner_;
  LockOracle& oracle_;
  WaitsForGraph* waits_ = nullptr;
  std::function<bool(LockId, TxnId)> suppress_release_;
  std::function<void(LockId, LockMode, TxnId)> release_observer_;
};

}  // namespace netlock::testing
