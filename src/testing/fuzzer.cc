#include "testing/fuzzer.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/random.h"
#include "common/sim_context.h"
#include "core/failover.h"
#include "core/lock_engine.h"
#include "core/memory_alloc.h"
#include "harness/experiment.h"
#include "harness/testbed.h"
#include "testing/lock_oracle.h"
#include "workload/micro.h"

namespace netlock::testing {
namespace {

/// Fuzz runs use a short lease so expiry/recovery paths fire within a few
/// tens of simulated milliseconds.
constexpr SimTime kFuzzLease = 5 * kMillisecond;

std::uint64_t Fold(std::uint64_t digest, std::uint64_t v) {
  return (digest ^ v) * 0x100000001b3ull;  // FNV-1a step.
}

bool ParseU64(std::string_view s, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// Executes fault actions against a live testbed. Every action is guarded
/// by current runtime state, so arbitrary subsequences of a plan (the
/// shrinker's probes) are always executable.
struct FaultDriver {
  Testbed& testbed;
  /// Leaf network nodes per engine session: one for a plain NetLockSession,
  /// one per rack for a ShardedSession.
  std::vector<std::vector<NodeId>>& session_nodes;
  std::vector<NodeId> switch_nodes;
  ControlPlane& control;
  FailoverManager* failover;
  int num_servers;
  int machines;
  int num_locks;
  std::uint32_t queue_capacity;
  LinkFaults current;
  bool primary_failed = false;
  bool switch_crashed = false;
  bool realloc_in_flight = false;

  void ApplyKnobs() {
    // Faults live on the client<->switch legs only: the in-rack
    // switch<->server channel stays reliable and ordered, matching the
    // overflow protocol's coordination assumption (Section 4.3).
    for (const std::vector<NodeId>& nodes : session_nodes) {
      for (const NodeId leaf : nodes) {
        for (const NodeId sw : switch_nodes) {
          testbed.net().SetLinkFaults(leaf, sw, current);
        }
      }
    }
  }

  void SetKnob(FaultKind kind, std::uint32_t value) {
    const double p = static_cast<double>(value) / 1000.0;
    switch (kind) {
      case FaultKind::kLoss: current.loss = p; break;
      case FaultKind::kDuplicate: current.duplicate = p; break;
      case FaultKind::kReorder: current.reorder = p; break;
      case FaultKind::kJitter: current.jitter = value; break;
      default: return;
    }
    ApplyKnobs();
  }

  void BlockMachine(std::uint32_t target, bool block) {
    // Session i lives on machine i % machines (testbed round-robin).
    const int m = static_cast<int>(target % static_cast<std::uint32_t>(
                                                machines));
    for (std::size_t i = 0; i < session_nodes.size(); ++i) {
      if (static_cast<int>(i) % machines != m) continue;
      for (const NodeId leaf : session_nodes[i]) {
        if (block) {
          testbed.net().BlockNode(leaf);
        } else {
          testbed.net().UnblockNode(leaf);
        }
      }
    }
  }

  int AliveServers() const {
    int alive = 0;
    for (int i = 0; i < num_servers; ++i) {
      alive += control.ServerAlive(i) ? 1 : 0;
    }
    return alive;
  }

  void Fire(const FaultAction& action, bool start) {
    switch (action.kind) {
      case FaultKind::kLoss:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
      case FaultKind::kJitter:
        SetKnob(action.kind, start ? action.value : 0);
        break;
      case FaultKind::kClearFaults:
        current = LinkFaults{};
        ApplyKnobs();
        break;
      case FaultKind::kClientPartition:
      case FaultKind::kLeaseExpiryBurst:
        BlockMachine(action.target, start);
        break;
      case FaultKind::kFailPrimary:
        if (failover != nullptr && !primary_failed && !switch_crashed) {
          failover->FailPrimary();
          primary_failed = true;
        }
        break;
      case FaultKind::kRecoverPrimary:
        if (failover != nullptr && primary_failed) {
          failover->RecoverPrimary();
          primary_failed = false;
        }
        break;
      case FaultKind::kServerFail: {
        const int idx =
            static_cast<int>(action.target) % std::max(1, num_servers);
        if (control.ServerAlive(idx) && AliveServers() > 1) {
          control.FailServer(idx);
        }
        break;
      }
      case FaultKind::kServerRecover: {
        const int idx =
            static_cast<int>(action.target) % std::max(1, num_servers);
        if (!control.ServerAlive(idx)) control.RecoverServer(idx);
        break;
      }
      // In-place crash + restart (Figure 15): only when no failover is in
      // flight — the FailoverManager owns the primary's lifecycle then.
      case FaultKind::kSwitchCrash:
        if (!primary_failed && !switch_crashed) {
          testbed.netlock().lock_switch().Fail();
          switch_crashed = true;
        }
        break;
      case FaultKind::kSwitchRestart:
        if (switch_crashed) {
          control.RecoverSwitch();
          switch_crashed = false;
        }
        break;
      // Migration actions. Each is skipped while any other migration (a
      // reallocation, a re-home, a switch outage) is in flight, so the
      // control plane never runs two competing drains on one lock.
      case FaultKind::kReallocate:
        if (!switch_crashed && !primary_failed && !realloc_in_flight &&
            testbed.sharded().rehomes_in_flight() == 0) {
          realloc_in_flight = true;
          const int rack = static_cast<int>(
              action.target %
              static_cast<std::uint32_t>(testbed.sharded().num_racks()));
          testbed.sharded().rack(rack).control_plane().Reallocate(
              queue_capacity, [this] { realloc_in_flight = false; });
        }
        break;
      case FaultKind::kRehome:
        if (testbed.sharded().num_racks() > 1 && !switch_crashed &&
            !primary_failed && !realloc_in_flight) {
          const LockId lock = static_cast<LockId>(
              action.target % static_cast<std::uint32_t>(num_locks));
          const int to = static_cast<int>(
              action.value %
              static_cast<std::uint32_t>(testbed.sharded().num_racks()));
          testbed.sharded().RehomeLock(lock, to);
        }
        break;
    }
  }
};

bool TimedFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLoss:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
    case FaultKind::kJitter:
    case FaultKind::kClientPartition:
    case FaultKind::kLeaseExpiryBurst:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string Schedule::SerializeParams() const {
  std::string out;
  out += "m=" + std::to_string(workload.machines);
  out += ";spm=" + std::to_string(workload.sessions_per_machine);
  out += ";locks=" + std::to_string(workload.num_locks);
  out += ";cap=" + std::to_string(workload.queue_capacity);
  out += ";shared=" + std::to_string(workload.shared_permille);
  out += ";lpt=" + std::to_string(workload.locks_per_txn);
  out += ";racks=" + std::to_string(workload.racks);
  out += ";unord=" + std::to_string(workload.unordered);
  out += ";policy=" + std::to_string(workload.policy);
  out += ";ctrl=" + std::to_string(workload.controller);
  out += ";run=" + std::to_string(workload.run_time);
  out += ";plan=" + plan.Serialize();
  return out;
}

std::string Schedule::Serialize() const {
  return "seed=" + std::to_string(seed) + ";" + SerializeParams();
}

bool Schedule::Parse(std::string_view text, Schedule* out) {
  const std::uint64_t caller_seed = out->seed;  // Kept if `text` has none.
  *out = Schedule{};
  out->seed = caller_seed;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    std::string_view field = text.substr(0, semi);
    if (semi == std::string_view::npos) {
      text = {};
    } else {
      text.remove_prefix(semi + 1);
    }
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "plan") {
      if (!FaultPlan::Parse(value, &out->plan)) return false;
      continue;
    }
    std::uint64_t num = 0;
    if (!ParseU64(value, &num)) return false;
    if (key == "seed") {
      out->seed = num;
    } else if (key == "m") {
      out->workload.machines = static_cast<int>(num);
    } else if (key == "spm") {
      out->workload.sessions_per_machine = static_cast<int>(num);
    } else if (key == "locks") {
      out->workload.num_locks = static_cast<int>(num);
    } else if (key == "cap") {
      out->workload.queue_capacity = static_cast<std::uint32_t>(num);
    } else if (key == "shared") {
      out->workload.shared_permille = static_cast<int>(num);
    } else if (key == "lpt") {
      out->workload.locks_per_txn = static_cast<int>(num);
    } else if (key == "racks") {
      out->workload.racks = static_cast<int>(num);
    } else if (key == "unord") {
      out->workload.unordered = static_cast<int>(num);
    } else if (key == "policy") {
      out->workload.policy = static_cast<int>(num);
    } else if (key == "ctrl") {
      out->workload.controller = static_cast<int>(num);
    } else if (key == "run") {
      out->workload.run_time = static_cast<SimTime>(num);
    } else {
      return false;
    }
  }
  return true;
}

std::string RunReport::Summary() const {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "grants=%llu violations=%llu fifo=%llu stuck=%llu digest=%016llx %s",
      static_cast<unsigned long long>(grants),
      static_cast<unsigned long long>(violations),
      static_cast<unsigned long long>(fifo_violations),
      static_cast<unsigned long long>(stuck_cycles),
      static_cast<unsigned long long>(digest), ok ? "ok" : "FAIL");
  std::string out = buf;
  for (const std::string& problem : problems) {
    out += "\n  ";
    out += problem;
  }
  return out;
}

Schedule ScheduleFuzzer::Generate(std::uint64_t index) const {
  std::uint64_t state = (master_seed_ + 0x632be59bd9b4e019ull) ^
                        (index * 0x9e3779b97f4a7c15ull);
  const auto next = [&state]() { return SplitMix64(state); };
  const auto pick = [&next](std::uint64_t n) { return next() % n; };

  Schedule sched;
  sched.seed = next() | 1;
  WorkloadParams& w = sched.workload;
  w.machines = static_cast<int>(1 + pick(3));
  w.sessions_per_machine = static_cast<int>(1 + pick(3));
  w.num_locks = static_cast<int>(1 + pick(6));
  constexpr std::uint32_t kCaps[] = {4, 8, 16, 64, 256};
  w.queue_capacity = kCaps[pick(5)];
  constexpr int kShared[] = {0, 0, 300, 700};
  w.shared_permille = kShared[pick(4)];
  w.locks_per_txn = static_cast<int>(1 + pick(2));
  w.run_time = static_cast<SimTime>(20 + pick(31)) * kMillisecond;

  const SimTime run = w.run_time;
  const auto at_in = [&](SimTime lo, SimTime hi) {
    return lo + static_cast<SimTime>(
                    pick(static_cast<std::uint64_t>(hi - lo)));
  };
  std::vector<FaultAction>& plan = sched.plan.actions;

  const auto add_net_chaos = [&] {
    const auto knob = [&](FaultKind kind, std::uint32_t lo,
                          std::uint32_t span) {
      const SimTime duration =
          pick(2) ? at_in(2 * kMillisecond, run / 2) : 0;
      plan.push_back({kind, at_in(0, run / 2), duration, 0,
                      lo + static_cast<std::uint32_t>(pick(span))});
    };
    if (pick(2) != 0) knob(FaultKind::kLoss, 10, 140);
    if (pick(2) != 0) knob(FaultKind::kDuplicate, 20, 230);
    if (pick(2) != 0) knob(FaultKind::kReorder, 50, 350);
    if (pick(2) != 0) knob(FaultKind::kJitter, 200, 2800);
    if (plan.empty()) knob(FaultKind::kLoss, 10, 140);
  };
  const auto add_partitions = [&] {
    const int count = static_cast<int>(1 + pick(2));
    for (int i = 0; i < count; ++i) {
      if (pick(3) == 0) {
        plan.push_back({FaultKind::kLeaseExpiryBurst,
                        at_in(kMillisecond, run / 2), 0,
                        static_cast<std::uint32_t>(pick(8)), 0});
      } else {
        plan.push_back({FaultKind::kClientPartition,
                        at_in(kMillisecond, (run * 3) / 4),
                        kMillisecond + at_in(0, 2 * kFuzzLease),
                        static_cast<std::uint32_t>(pick(8)), 0});
      }
    }
  };
  const auto add_failover = [&] {
    const SimTime fail_at = at_in(2 * kMillisecond, run / 2);
    plan.push_back({FaultKind::kFailPrimary, fail_at, 0, 0, 0});
    const SimTime recover_at =
        fail_at + 2 * kMillisecond + at_in(0, 2 * kFuzzLease);
    plan.push_back({FaultKind::kRecoverPrimary, recover_at, 0, 0, 0});
    if (pick(3) == 0) {
      // A second failure while the backup may still be draining — the
      // §4.5 corner the failover epoch machinery exists for.
      const SimTime again =
          recover_at + kMillisecond + at_in(0, 3 * kMillisecond);
      plan.push_back({FaultKind::kFailPrimary, again, 0, 0, 0});
      plan.push_back(
          {FaultKind::kRecoverPrimary, again + 2 * kFuzzLease, 0, 0, 0});
    }
  };
  const auto add_server_crash = [&] {
    const SimTime fail_at = at_in(2 * kMillisecond, run / 2);
    const auto target = static_cast<std::uint32_t>(pick(2));
    plan.push_back({FaultKind::kServerFail, fail_at, 0, target, 0});
    plan.push_back({FaultKind::kServerRecover,
                    fail_at + 3 * kMillisecond + at_in(0, 2 * kFuzzLease),
                    0, target, 0});
  };
  const auto add_migration = [&] {
    // Shard across racks and move locks while they are hot. Half the
    // schedules add network chaos on top so re-homing is also exercised
    // under loss/duplication/reordering.
    w.racks = pick(2) ? 2 : 4;
    const int rehomes = static_cast<int>(1 + pick(3));
    for (int i = 0; i < rehomes; ++i) {
      plan.push_back({FaultKind::kRehome,
                      at_in(2 * kMillisecond, (run * 3) / 4), 0,
                      static_cast<std::uint32_t>(pick(16)),
                      static_cast<std::uint32_t>(pick(4))});
    }
    if (pick(2) != 0) {
      plan.push_back({FaultKind::kReallocate,
                      at_in(2 * kMillisecond, run / 2), 0,
                      static_cast<std::uint32_t>(pick(4)), 0});
    }
    if (pick(2) != 0) add_net_chaos();
  };

  const auto add_controller = [&] {
    // Self-driving control plane live during the run: the controller's
    // continuous reallocations race whatever else the plan throws at the
    // rack. Enough locks that the knapsack has real promote/demote
    // choices, and a small switch so admission stays contested.
    w.controller = 1;
    w.num_locks = static_cast<int>(4 + pick(8));
    w.queue_capacity = kCaps[pick(3)];  // 4/8/16: forces server overflow.
    if (pick(2) != 0) w.racks = 2;      // Exercise the re-home balancer.
    switch (pick(4)) {
      case 0:
        break;  // Controller alone on a clean fabric.
      case 1: {
        // Switch outage mid-migration: the recovery path must not
        // resurrect locks the controller had demoted (split-brain).
        const SimTime crash_at = at_in(2 * kMillisecond, run / 2);
        plan.push_back({FaultKind::kSwitchCrash, crash_at, 0, 0, 0});
        plan.push_back({FaultKind::kSwitchRestart,
                        crash_at + kMillisecond + at_in(0, 2 * kFuzzLease),
                        0, 0, 0});
        break;
      }
      case 2:
        add_server_crash();
        break;
      default:
        add_net_chaos();
        break;
    }
  };

  const auto add_deadlock = [&] {
    // Unordered lock sets + a deadlock policy: the policy must keep the
    // run both safe (oracle) and live (waits-for check, engines idle).
    w.unordered = 1;
    w.policy = static_cast<int>(1 + pick(3));  // no_wait/wait_die/wound_wait
    w.locks_per_txn = static_cast<int>(2 + pick(3));
    w.num_locks = static_cast<int>(2 + pick(5));
    w.shared_permille = pick(2) ? 0 : 300;
    if (pick(2) != 0) add_net_chaos();  // Abort protocol under chaos too.
  };

  switch (pick(9)) {
    case 0: break;  // Clean run: FIFO + liveness still checked.
    case 1: add_net_chaos(); break;
    case 2: add_partitions(); break;
    case 3: add_failover(); break;
    case 4: add_server_crash(); break;
    case 5: add_migration(); break;
    case 6: add_deadlock(); break;
    case 7: add_controller(); break;
    default:
      add_net_chaos();
      add_partitions();
      add_failover();
      break;
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return sched;
}

RunReport ScheduleFuzzer::RunSchedule(const Schedule& schedule,
                                      const FuzzOptions& options) {
  const WorkloadParams& w = schedule.workload;
  SimContext context;
  LockOracle oracle;
  WaitsForGraph waits;
  std::vector<NetLockSession*> raw_sessions;
  std::vector<std::vector<NodeId>> session_nodes;
  const int racks = std::clamp(w.racks, 1, 8);
  const bool unordered = w.unordered != 0;
  // The controller only makes sense over a real knapsack allocation;
  // deadlock-policy schedules force everything server-resident.
  const bool controller_on =
      w.controller != 0 && !unordered && w.policy == 0;
  // The seeded liveness bug disables the policy and stretches the lease
  // past the horizon, so an unordered schedule that deadlocks *stays*
  // deadlocked — the waits-for oracle must catch it.
  const DeadlockPolicy policy =
      options.bug_always_wait
          ? DeadlockPolicy::kNone
          : static_cast<DeadlockPolicy>(std::clamp(w.policy, 0, 3));
  const SimTime lease =
      options.bug_always_wait ? 10 * kSecond : kFuzzLease;

  TestbedConfig config;
  config.system = SystemKind::kNetLock;
  config.context = &context;
  config.client_machines = std::max(1, w.machines);
  config.sessions_per_machine = std::max(1, w.sessions_per_machine);
  config.lock_servers = 2;
  config.num_racks = racks;
  config.lease = lease;
  config.lease_poll_interval = kMillisecond;
  config.client_retry_timeout = kMillisecond;
  config.client_max_retries = 16;
  config.txn_config.think_time = 5 * kMicrosecond;
  config.txn_config.preserve_workload_order = unordered;
  config.server_config.deadlock_policy = policy;
  config.seed = schedule.seed;
  config.switch_config.queue_capacity =
      std::max<std::uint32_t>(2, w.queue_capacity);
  config.switch_config.array_size = 512;
  config.switch_config.max_locks = 64;
  if (controller_on) {
    // Fuzz horizons are tens of milliseconds, so the controller runs at
    // fuzz scale: fast ticks, one observe-only window, short dwell. The
    // point is migrations racing the fault plan, not steady-state tuning.
    config.controller = true;
    config.controller_config.interval = 2 * kMillisecond;
    config.controller_config.warmup_ticks = 1;
    config.controller_config.min_dwell = 4 * kMillisecond;
    config.controller_config.migration_budget = 4;
    config.controller_config.rate_floor = 0.5;
  }

  MicroConfig micro;
  micro.num_locks = std::max(1, w.num_locks);
  micro.shared_fraction =
      static_cast<double>(std::clamp(w.shared_permille, 0, 1000)) / 1000.0;
  micro.locks_per_txn = static_cast<std::uint32_t>(
      std::max(1, w.locks_per_txn));
  if (unordered) {
    config.workload_factory = [micro](int) {
      return std::make_unique<UnorderedMicroWorkload>(micro);
    };
  } else {
    config.workload_factory = MicroFactory(micro);
  }

  const std::uint64_t bug_mod = options.bug_txn_mod;
  // Optional autopsy trail: client releases land on shard 0, each rack's
  // switch events on shard tag % shards (tags start at 1, so rack shards
  // never collide with the release shard when the recorder has >= racks+2
  // shards, as netlock_fuzz sizes it). The sim is single-threaded, so the
  // one-writer-per-shard contract holds trivially.
  FlightRecorder* const recorder = options.flight_recorder;
  Simulator* sim_ptr = nullptr;  // Set once the testbed exists.
  config.session_wrapper =
      [&](std::unique_ptr<LockSession> inner) -> std::unique_ptr<LockSession> {
    // Leaf nodes for the fault driver: a single-rack testbed hands out
    // plain NetLockSessions (also needed by the failover manager); a
    // multi-rack one hands out ShardedSessions with one node per rack.
    std::vector<NodeId> nodes;
    if (racks == 1) {
      raw_sessions.push_back(static_cast<NetLockSession*>(inner.get()));
      nodes.push_back(inner->node());
    } else {
      auto* sharded_session = static_cast<ShardedSession*>(inner.get());
      for (int r = 0; r < sharded_session->num_racks(); ++r) {
        nodes.push_back(sharded_session->rack_session(r).node());
      }
    }
    session_nodes.push_back(std::move(nodes));
    auto wrapped = std::make_unique<OracleSession>(std::move(inner), oracle);
    wrapped->AttachWaitsFor(&waits);
    if (bug_mod != 0) {
      wrapped->set_suppress_release(
          [bug_mod](LockId, TxnId txn) { return txn % bug_mod == 3; });
    }
    if (recorder != nullptr) {
      wrapped->set_release_observer(
          [recorder, &sim_ptr](LockId lock, LockMode mode, TxnId txn) {
            recorder->Record(0, FlightRecorder::Op::kRelease, lock, mode,
                             txn, sim_ptr != nullptr ? sim_ptr->now() : 0);
          });
    }
    return wrapped;
  };

  Testbed testbed(config);
  sim_ptr = &testbed.sim();
  if (unordered || w.policy != 0) {
    // Deadlock-policy runs keep every lock server-resident (the switch
    // data plane has no mid-queue removal for wounds/cancels). Condition
    // on the schedule's fields, not the effective policy, so the seeded
    // always-wait bug run differs from the healthy run only in policy and
    // lease.
    Allocation all_server;
    for (LockId lock = 0;
         lock < static_cast<LockId>(micro.num_locks); ++lock) {
      all_server.server_only.push_back(lock);
    }
    testbed.sharded().InstallAllocation(all_server);
  } else {
    testbed.sharded().InstallKnapsack(
        UniformMicroDemands(micro, testbed.num_engines()));
  }
  if (testbed.has_controller()) testbed.controller().Start();
  ControlPlane& control = testbed.netlock().control_plane();
  // Lease-aware exclusion: a partitioned holder's lease legitimately
  // expires and the switch regrants (Section 4.5) — not an overlap. The
  // slack absorbs grant-delivery skew between switch and client clocks.
  oracle.SetLease(lease - 200 * kMicrosecond,
                  [&sim = testbed.sim()] { return sim.now(); });
  waits.SetClock([&sim = testbed.sim()] { return sim.now(); });
  // The manager's abort observer keeps the exclusion oracle exact: a wound
  // drops the holder *before* the cascade grants the lock onward, so the
  // replacement grant is not an overlap. Die/no-wait aborts just purge the
  // FIFO admission.
  for (int r = 0; r < racks; ++r) {
    NetLockManager& rack = testbed.sharded().rack(r);
    const int rack_rec_shard =
        recorder != nullptr
            ? static_cast<int>((static_cast<std::uint64_t>(r) + 1) %
                               static_cast<std::uint64_t>(recorder->shards()))
            : 0;
    for (int s = 0; s < rack.num_servers(); ++s) {
      rack.server(s).set_abort_observer(
          [&oracle, recorder, rack_rec_shard, &sim = testbed.sim()](
              LockId lock, TxnId txn, AbortReason reason, NodeId) {
            if (reason == AbortReason::kWound) {
              oracle.OnWound(lock, txn);
            } else {
              oracle.OnAbort(lock, txn);
            }
            if (recorder != nullptr) {
              recorder->Record(rack_rec_shard, FlightRecorder::Op::kAbort,
                               lock, LockMode::kExclusive, txn, sim.now());
            }
          });
    }
  }

  std::unique_ptr<LockSwitch> backup;
  std::unique_ptr<FailoverManager> failover;
  std::vector<NodeId> switch_nodes;
  for (int r = 0; r < racks; ++r) {
    switch_nodes.push_back(testbed.sharded().rack(r).lock_switch().node());
  }
  // Backup-switch failover is a single-rack protocol (the FailoverManager
  // re-points NetLockSessions); multi-rack plans leave kFailPrimary as the
  // guarded no-op it already is.
  if (racks == 1 && schedule.plan.NeedsBackup()) {
    backup = std::make_unique<LockSwitch>(testbed.net(),
                                          config.switch_config);
    for (NetLockSession* session : raw_sessions) {
      testbed.net().SetLatency(session->node(), backup->node(),
                               config.client_switch_latency);
    }
    for (int i = 0; i < testbed.netlock().num_servers(); ++i) {
      testbed.net().SetLatency(backup->node(),
                               testbed.netlock().server(i).node(),
                               config.switch_server_latency);
    }
    failover = std::make_unique<FailoverManager>(
        testbed.sim(), testbed.netlock().lock_switch(), *backup, control);
    for (NetLockSession* session : raw_sessions) {
      failover->RegisterSession(session);
    }
    switch_nodes.push_back(backup->node());
  }

  // Observe every switch grant: the digest makes replays comparable
  // byte-for-byte; benign plans additionally feed the FIFO oracle.
  // Controller migrations legitimately reorder grants across the
  // pause/drain/forward boundary, so FIFO checking is off for them just
  // like for explicit migration plans.
  const bool fifo =
      options.check_fifo && schedule.plan.Benign() && !controller_on;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  const auto observe = [&](LockSwitch& sw, std::uint64_t tag) {
    const int rec_shard =
        recorder != nullptr
            ? static_cast<int>(
                  tag % static_cast<std::uint64_t>(recorder->shards()))
            : 0;
    sw.set_grant_observer([&oracle, &digest, fifo, tag, recorder, rec_shard,
                           &sim = testbed.sim()](
                              LockId lock, TxnId txn, LockMode mode,
                              NodeId node) {
      digest = Fold(digest, tag);
      digest = Fold(digest, lock);
      digest = Fold(digest, txn);
      digest = Fold(digest, static_cast<std::uint64_t>(mode));
      if (fifo) oracle.OnSwitchGrant(lock, txn, mode);
      if (recorder != nullptr) {
        recorder->Record(rec_shard, FlightRecorder::Op::kGrant, lock, mode,
                         txn, sim.now(), static_cast<std::uint32_t>(node));
      }
    });
    if (fifo || recorder != nullptr) {
      sw.set_queue_observer([&oracle, fifo, recorder, rec_shard,
                             &sim = testbed.sim()](LockId lock, TxnId txn,
                                                   LockMode mode,
                                                   bool overflow) {
        if (fifo) oracle.OnSwitchAccept(lock, txn, mode, overflow);
        if (recorder != nullptr) {
          recorder->Record(rec_shard, FlightRecorder::Op::kAccept, lock,
                           mode, txn, sim.now());
        }
      });
    }
  };
  for (int r = 0; r < racks; ++r) {
    observe(testbed.sharded().rack(r).lock_switch(),
            static_cast<std::uint64_t>(r) + 1);
  }
  if (backup) observe(*backup, racks + 1);

  FaultDriver driver{testbed,
                     session_nodes,
                     switch_nodes,
                     control,
                     failover.get(),
                     testbed.netlock().num_servers(),
                     config.client_machines,
                     static_cast<int>(micro.num_locks),
                     config.switch_config.queue_capacity,
                     LinkFaults{},
                     false};
  const SimTime horizon = std::max<SimTime>(w.run_time, 5 * kMillisecond);
  for (const FaultAction& action : schedule.plan.actions) {
    if (action.at >= horizon) continue;  // Sanitization covers the rest.
    SimTime duration = action.duration;
    if (action.kind == FaultKind::kLeaseExpiryBurst) {
      duration = std::max<SimTime>(duration, (5 * kFuzzLease) / 2);
    }
    testbed.sim().Schedule(action.at,
                           [&driver, action] { driver.Fire(action, true); });
    if (TimedFault(action.kind) && duration > 0 &&
        action.at + duration < horizon) {
      testbed.sim().Schedule(action.at + duration, [&driver, action] {
        driver.Fire(action, false);
      });
    }
  }

  // Waits-for liveness scans run *during* the run (benign plans only): a
  // deadlock is masked later — acquire timeouts eventually 2PL-abort the
  // wedged transactions and the final state looks clean — so only an
  // in-flight scan catches it. The first stuck cycle found is the
  // evidence; a final scan below covers the settle tail.
  const SimTime liveness_window = (5 * kFuzzLease) / 2;
  std::uint64_t stuck_cycles = 0;
  std::string first_cycle;
  const auto scan_cycles = [&] {
    if (stuck_cycles != 0) return;  // First hit is enough.
    const std::string cycle = waits.FindStuckCycle(liveness_window);
    if (!cycle.empty()) {
      ++stuck_cycles;
      first_cycle = cycle;
    }
  };
  if (schedule.plan.Benign()) {
    for (SimTime t = liveness_window; t < horizon + options.settle_budget;
         t += kFuzzLease) {
      testbed.sim().Schedule(t, scan_cycles);
    }
  }

  testbed.StartEngines();
  testbed.sim().RunUntil(horizon);
  for (int i = 0; i < testbed.num_engines(); ++i) {
    testbed.engine(i).Stop();
  }

  // Sanitize: pristine fabric, everything recovered — whatever liveness
  // debt the faults created must now clear within the settle budget.
  testbed.net().ClearFaults();
  driver.current = LinkFaults{};
  if (failover && driver.primary_failed) {
    failover->RecoverPrimary();
    driver.primary_failed = false;
  }
  if (driver.switch_crashed) {
    control.RecoverSwitch();
    driver.switch_crashed = false;
  }
  for (int i = 0; i < driver.num_servers; ++i) {
    if (!control.ServerAlive(i)) control.RecoverServer(i);
  }

  const auto settled = [&] {
    for (int i = 0; i < testbed.num_engines(); ++i) {
      if (!testbed.engine(i).idle()) return false;
    }
    return !(failover && failover->backup_active());
  };
  const SimTime settle_deadline = testbed.sim().now() + options.settle_budget;
  while (!settled() && testbed.sim().now() < settle_deadline) {
    testbed.sim().RunUntil(testbed.sim().now() + 2 * kMillisecond);
  }

  RunReport report;
  report.grants = oracle.grants();
  report.violations = oracle.violations();
  report.fifo_violations = oracle.fifo_violations();
  for (int i = 0; i < testbed.num_engines(); ++i) {
    if (!testbed.engine(i).idle()) {
      report.engines_idle = false;
      report.problems.push_back("liveness: engine " + std::to_string(i) +
                                " never went idle");
    }
  }
  if (failover && failover->backup_active()) {
    report.problems.push_back("liveness: backup switch never drained");
  }
  // Waits-for liveness: on a benign plan every wait should clear within a
  // couple of leases (the lease sweep breaks even policy-less deadlocks);
  // a cycle all of whose edges are older than that is a real deadlock the
  // manager failed to break. Faulty plans can strand waiters legitimately
  // (lost grants ride retry timers), so the check is benign-only.
  if (schedule.plan.Benign()) {
    scan_cycles();  // Settle tail; no-op if an in-run scan already hit.
    if (stuck_cycles != 0) {
      report.stuck_cycles = stuck_cycles;
      report.problems.push_back("deadlock: " + first_cycle);
    }
  }
  const std::vector<std::string>& log = oracle.violation_log();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (i == 8) {
      report.problems.push_back(
          "... (" + std::to_string(log.size() - 8) + " more)");
      break;
    }
    report.problems.push_back("oracle: " + log[i]);
  }
  if (report.violations == 0 && oracle.TotalHolders() != 0) {
    report.problems.push_back(
        "leak: " + std::to_string(oracle.TotalHolders()) +
        " grants never released");
  }
  if (report.grants == 0) {
    report.problems.push_back("no grants issued");
  }
  digest = Fold(digest, testbed.net().packets_sent());
  digest = Fold(digest, testbed.net().packets_dropped());
  digest = Fold(digest, testbed.net().packets_duplicated());
  digest = Fold(digest, testbed.net().packets_reordered());
  digest = Fold(digest, report.grants);
  report.digest = digest;
  report.ok = report.problems.empty();
  return report;
}

Schedule ScheduleFuzzer::Shrink(Schedule failing, const FuzzOptions& options,
                                int max_runs) {
  int budget = max_runs;
  const auto still_fails = [&](const Schedule& candidate) {
    if (budget <= 0) return false;
    --budget;
    return !RunSchedule(candidate, options).ok;
  };

  // ddmin over the fault timeline: repeatedly try dropping chunks of
  // actions, halving the chunk size when nothing can be dropped.
  std::size_t granularity = 2;
  while (!failing.plan.actions.empty() && budget > 0) {
    const std::size_t n = failing.plan.actions.size();
    const std::size_t chunk =
        std::max<std::size_t>(1, (n + granularity - 1) / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < n && budget > 0; start += chunk) {
      Schedule candidate = failing;
      const auto begin =
          candidate.plan.actions.begin() + static_cast<std::ptrdiff_t>(start);
      const auto end = candidate.plan.actions.begin() +
                       static_cast<std::ptrdiff_t>(std::min(start + chunk, n));
      candidate.plan.actions.erase(begin, end);
      if (still_fails(candidate)) {
        failing = std::move(candidate);
        reduced = true;
        break;
      }
    }
    if (reduced) {
      granularity = 2;
      continue;
    }
    if (chunk <= 1) break;
    granularity = std::min(granularity * 2, n);
  }

  // Greedy workload reduction to a fixpoint.
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    const auto attempt = [&](auto mutate) {
      Schedule candidate = failing;
      mutate(candidate.workload);
      if (candidate.workload == failing.workload) return;
      if (still_fails(candidate)) {
        failing = std::move(candidate);
        progress = true;
      }
    };
    attempt([](WorkloadParams& wp) { wp.racks = 1; });
    attempt([](WorkloadParams& wp) { wp.machines = 1; });
    attempt([](WorkloadParams& wp) { wp.sessions_per_machine = 1; });
    attempt([](WorkloadParams& wp) { wp.num_locks = 1; });
    attempt([](WorkloadParams& wp) { wp.locks_per_txn = 1; });
    attempt([](WorkloadParams& wp) { wp.shared_permille = 0; });
    attempt([](WorkloadParams& wp) { wp.controller = 0; });
    attempt([](WorkloadParams& wp) {
      if (wp.run_time > 10 * kMillisecond) wp.run_time /= 2;
    });
  }
  return failing;
}

std::string ScheduleFuzzer::ReplayLine(const Schedule& schedule) {
  return "netlock_fuzz --seed=" + std::to_string(schedule.seed) +
         " --plan='" + schedule.SerializeParams() + "'";
}

}  // namespace netlock::testing
