// Simulated RDMA substrate for the decentralized baselines (DSLR, DrTM).
//
// Models the property that makes RDMA lock managers attractive and the one
// that limits them: one-sided verbs (READ / WRITE / CAS / FAA) execute at the
// *target NIC* without involving the server CPU, but the NIC's verb engine
// has finite throughput — on the ConnectX-3 hardware DSLR was evaluated on,
// atomic verbs serialize internally at roughly 2.7 Mops while reads sustain
// roughly 10 Mops. Those two rates, plus the network round trip per verb,
// are what produce DSLR's saturation behaviour in the paper's Figures 10-11.
//
// Verbs ride the same simulated network as lock packets, with a dedicated
// wire header, so loss/latency configuration applies uniformly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/network.h"
#include "sim/service_queue.h"

namespace netlock {

enum class RdmaVerb : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kCompareAndSwap = 2,
  kFetchAndAdd = 3,
};

/// Wire header for RDMA request/response packets. 32 bytes.
struct RdmaHeader {
  static constexpr std::uint16_t kMagic = 0x5244;  // "RD"
  static constexpr std::size_t kWireSize = 32;

  RdmaVerb verb = RdmaVerb::kRead;
  bool is_response = false;
  std::uint32_t addr = 0;      ///< Word index into the target memory region.
  std::uint64_t value = 0;     ///< Write/swap/add operand; old value in resp.
  std::uint64_t compare = 0;   ///< CAS compare operand.
  std::uint64_t op_id = 0;     ///< Matches responses to pending operations.

  bool SerializeTo(Packet& pkt) const;
  static std::optional<RdmaHeader> Parse(const Packet& pkt);
};

/// Default verb service rates, modelled on ConnectX-3 measurements.
struct RdmaNicConfig {
  SimTime atomic_service_time = 370;  ///< ~2.7 Mops for CAS/FAA.
  SimTime read_service_time = 100;    ///< ~10 Mops for READ.
  SimTime write_service_time = 100;   ///< ~10 Mops for WRITE.
};

/// The target-side NIC: owns a word-addressed memory region and executes
/// verbs against it in FIFO order at the configured rates, with no server
/// CPU involvement (the defining property of one-sided RDMA).
class RdmaNic {
 public:
  RdmaNic(Network& net, std::size_t memory_words,
          RdmaNicConfig config = RdmaNicConfig{});

  NodeId node() const { return node_; }

  /// Host-side access (the lock server initializing its lock table).
  std::uint64_t& Memory(std::size_t addr);
  std::size_t memory_words() const { return memory_.size(); }

  std::uint64_t verbs_executed() const { return verbs_executed_; }

 private:
  void OnPacket(const Packet& pkt);
  std::uint64_t ExecuteVerb(const RdmaHeader& hdr);

  Network& net_;
  NodeId node_;
  RdmaNicConfig config_;
  ServiceQueue engine_;
  std::vector<std::uint64_t> memory_;
  std::uint64_t verbs_executed_ = 0;
};

/// Client-side endpoint: issues verbs to a remote NIC and dispatches
/// completions. One endpoint per client machine.
class RdmaEndpoint {
 public:
  using Completion = std::function<void(std::uint64_t old_or_read_value)>;

  explicit RdmaEndpoint(Network& net);

  NodeId node() const { return node_; }

  void Read(NodeId nic, std::uint32_t addr, Completion cb);
  void Write(NodeId nic, std::uint32_t addr, std::uint64_t value,
             Completion cb);
  /// Returns the pre-swap value to cb; the swap succeeded iff it == compare.
  void CompareAndSwap(NodeId nic, std::uint32_t addr, std::uint64_t compare,
                      std::uint64_t swap, Completion cb);
  /// Returns the pre-add value to cb.
  void FetchAndAdd(NodeId nic, std::uint32_t addr, std::uint64_t delta,
                   Completion cb);

  std::uint64_t ops_issued() const { return next_op_id_; }

 private:
  void Issue(NodeId nic, RdmaHeader hdr, Completion cb);
  void OnPacket(const Packet& pkt);

  Network& net_;
  NodeId node_;
  std::uint64_t next_op_id_ = 0;
  std::unordered_map<std::uint64_t, Completion> pending_;
};

}  // namespace netlock
