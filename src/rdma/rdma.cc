#include "rdma/rdma.h"

#include "common/check.h"
#include "net/wire.h"

namespace netlock {

bool RdmaHeader::SerializeTo(Packet& pkt) const {
  BufWriter w(pkt.mutable_payload());
  w.WriteU16(kMagic);
  w.WriteU8(static_cast<std::uint8_t>(verb));
  w.WriteU8(is_response ? 1 : 0);
  w.WriteU32(addr);
  w.WriteU64(value);
  w.WriteU64(compare);
  w.WriteU64(op_id);
  if (!w.ok()) return false;
  NETLOCK_DCHECK(w.written() == kWireSize);
  pkt.set_size(w.written());
  return true;
}

std::optional<RdmaHeader> RdmaHeader::Parse(const Packet& pkt) {
  BufReader r(pkt.payload());
  if (r.ReadU16() != kMagic) return std::nullopt;
  RdmaHeader hdr;
  const std::uint8_t verb = r.ReadU8();
  if (verb > static_cast<std::uint8_t>(RdmaVerb::kFetchAndAdd)) {
    return std::nullopt;
  }
  hdr.verb = static_cast<RdmaVerb>(verb);
  hdr.is_response = r.ReadU8() != 0;
  hdr.addr = r.ReadU32();
  hdr.value = r.ReadU64();
  hdr.compare = r.ReadU64();
  hdr.op_id = r.ReadU64();
  if (!r.ok()) return std::nullopt;
  return hdr;
}

RdmaNic::RdmaNic(Network& net, std::size_t memory_words, RdmaNicConfig config)
    : net_(net),
      config_(config),
      engine_(net.sim(), config.read_service_time),
      memory_(memory_words, 0) {
  node_ = net_.AddNode([this](const Packet& pkt) { OnPacket(pkt); });
}

std::uint64_t& RdmaNic::Memory(std::size_t addr) {
  NETLOCK_CHECK(addr < memory_.size());
  return memory_[addr];
}

void RdmaNic::OnPacket(const Packet& pkt) {
  const std::optional<RdmaHeader> hdr = RdmaHeader::Parse(pkt);
  if (!hdr || hdr->is_response) return;  // Not ours; drop silently.
  const SimTime service =
      (hdr->verb == RdmaVerb::kCompareAndSwap ||
       hdr->verb == RdmaVerb::kFetchAndAdd)
          ? config_.atomic_service_time
          : (hdr->verb == RdmaVerb::kRead ? config_.read_service_time
                                          : config_.write_service_time);
  // The verb executes when it reaches the head of the NIC engine queue;
  // execution and response generation happen at completion time so that
  // atomics from different clients serialize in arrival order.
  const RdmaHeader request = *hdr;
  const NodeId reply_to = pkt.src;
  engine_.SubmitWithTime(service, [this, request, reply_to]() {
    RdmaHeader resp = request;
    resp.is_response = true;
    resp.value = ExecuteVerb(request);
    Packet out;
    out.src = node_;
    out.dst = reply_to;
    const bool ok = resp.SerializeTo(out);
    NETLOCK_CHECK(ok);
    net_.Send(out);
  });
}

std::uint64_t RdmaNic::ExecuteVerb(const RdmaHeader& hdr) {
  NETLOCK_CHECK(hdr.addr < memory_.size());
  ++verbs_executed_;
  std::uint64_t& cell = memory_[hdr.addr];
  const std::uint64_t old = cell;
  switch (hdr.verb) {
    case RdmaVerb::kRead:
      break;
    case RdmaVerb::kWrite:
      cell = hdr.value;
      break;
    case RdmaVerb::kCompareAndSwap:
      if (cell == hdr.compare) cell = hdr.value;
      break;
    case RdmaVerb::kFetchAndAdd:
      cell += hdr.value;
      break;
  }
  return old;
}

RdmaEndpoint::RdmaEndpoint(Network& net) : net_(net) {
  node_ = net_.AddNode([this](const Packet& pkt) { OnPacket(pkt); });
}

void RdmaEndpoint::Read(NodeId nic, std::uint32_t addr, Completion cb) {
  RdmaHeader hdr;
  hdr.verb = RdmaVerb::kRead;
  hdr.addr = addr;
  Issue(nic, hdr, std::move(cb));
}

void RdmaEndpoint::Write(NodeId nic, std::uint32_t addr, std::uint64_t value,
                         Completion cb) {
  RdmaHeader hdr;
  hdr.verb = RdmaVerb::kWrite;
  hdr.addr = addr;
  hdr.value = value;
  Issue(nic, hdr, std::move(cb));
}

void RdmaEndpoint::CompareAndSwap(NodeId nic, std::uint32_t addr,
                                  std::uint64_t compare, std::uint64_t swap,
                                  Completion cb) {
  RdmaHeader hdr;
  hdr.verb = RdmaVerb::kCompareAndSwap;
  hdr.addr = addr;
  hdr.compare = compare;
  hdr.value = swap;
  Issue(nic, hdr, std::move(cb));
}

void RdmaEndpoint::FetchAndAdd(NodeId nic, std::uint32_t addr,
                               std::uint64_t delta, Completion cb) {
  RdmaHeader hdr;
  hdr.verb = RdmaVerb::kFetchAndAdd;
  hdr.addr = addr;
  hdr.value = delta;
  Issue(nic, hdr, std::move(cb));
}

void RdmaEndpoint::Issue(NodeId nic, RdmaHeader hdr, Completion cb) {
  hdr.op_id = next_op_id_++;
  pending_.emplace(hdr.op_id, std::move(cb));
  Packet pkt;
  pkt.src = node_;
  pkt.dst = nic;
  const bool ok = hdr.SerializeTo(pkt);
  NETLOCK_CHECK(ok);
  net_.Send(pkt);
}

void RdmaEndpoint::OnPacket(const Packet& pkt) {
  const std::optional<RdmaHeader> hdr = RdmaHeader::Parse(pkt);
  if (!hdr || !hdr->is_response) return;
  const auto it = pending_.find(hdr->op_id);
  if (it == pending_.end()) return;  // Late duplicate; ignore.
  Completion cb = std::move(it->second);
  pending_.erase(it);
  if (cb) cb(hdr->value);
}

}  // namespace netlock
