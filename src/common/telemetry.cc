#include "common/telemetry.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

TelemetryDomain::HistCell::HistCell()
    : buckets(new std::atomic<std::uint32_t>[LogHistogram::kNumBuckets]) {
  for (std::size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
    buckets[i].store(0, std::memory_order_relaxed);
  }
}

TelemetryDomain::TelemetryDomain(int num_shards) {
  NETLOCK_CHECK(num_shards >= 1);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TelemetryCounter TelemetryDomain::RegisterCounter(std::string name) {
  TelemetryCounter c;
  c.slot = static_cast<std::uint32_t>(counter_names_.size());
  counter_names_.push_back(std::move(name));
  published_counters_.push_back(0);
  for (auto& shard : shards_) shard->counters.emplace_back(0);
  return c;
}

TelemetryGauge TelemetryDomain::RegisterGauge(std::string name, GaugeAgg agg) {
  TelemetryGauge g;
  g.slot = static_cast<std::uint32_t>(gauge_names_.size());
  gauge_names_.push_back(std::move(name));
  gauge_aggs_.push_back(agg);
  for (auto& shard : shards_) shard->gauges.emplace_back();
  return g;
}

TelemetryHistogram TelemetryDomain::RegisterHistogram(std::string name) {
  TelemetryHistogram h;
  h.slot = static_cast<std::uint32_t>(hist_names_.size());
  hist_names_.push_back(std::move(name));
  published_hist_counts_.push_back(0);
  for (auto& shard : shards_) shard->hists.emplace_back();
  return h;
}

namespace {

bool FindSlot(const std::vector<std::string>& names, const std::string& name,
              std::uint32_t* slot) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      *slot = i;
      return true;
    }
  }
  return false;
}

}  // namespace

bool TelemetryDomain::FindCounter(const std::string& name,
                                  TelemetryCounter* out) const {
  return FindSlot(counter_names_, name, &out->slot);
}

bool TelemetryDomain::FindGauge(const std::string& name,
                                TelemetryGauge* out) const {
  return FindSlot(gauge_names_, name, &out->slot);
}

bool TelemetryDomain::FindHistogram(const std::string& name,
                                    TelemetryHistogram* out) const {
  return FindSlot(hist_names_, name, &out->slot);
}

std::uint64_t TelemetryDomain::CounterTotal(TelemetryCounter c) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->counters[c.slot].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TelemetryDomain::GaugeTotal(TelemetryGauge g) const {
  std::uint64_t agg = 0;
  const bool sum = gauge_aggs_[g.slot] == GaugeAgg::kSum;
  for (const auto& shard : shards_) {
    const std::uint64_t v =
        shard->gauges[g.slot].value.load(std::memory_order_relaxed);
    agg = sum ? agg + v : std::max(agg, v);
  }
  return agg;
}

std::uint64_t TelemetryDomain::GaugeHighWater(TelemetryGauge g) const {
  std::uint64_t agg = 0;
  const bool sum = gauge_aggs_[g.slot] == GaugeAgg::kSum;
  for (const auto& shard : shards_) {
    const std::uint64_t v =
        shard->gauges[g.slot].hwm.load(std::memory_order_relaxed);
    agg = sum ? agg + v : std::max(agg, v);
  }
  return agg;
}

void TelemetryDomain::ReadHistInto(const HistCell& cell,
                                   LogHistogram& out) const {
  // Read the bucket array once into a plain snapshot; the folded count is
  // recomputed from these reads (not cell.count) so the result is always
  // internally consistent even when a writer races the read.
  std::uint32_t counts[LogHistogram::kNumBuckets];
  for (std::size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
    counts[i] = cell.buckets[i].load(std::memory_order_relaxed);
  }
  out.MergeBucketCounts(
      counts, static_cast<double>(cell.sum.load(std::memory_order_relaxed)),
      cell.min.load(std::memory_order_relaxed),
      cell.max.load(std::memory_order_relaxed));
}

LogHistogram TelemetryDomain::HistogramShard(int shard,
                                             TelemetryHistogram h) const {
  LogHistogram out;
  ReadHistInto(shards_[static_cast<std::size_t>(shard)]->hists[h.slot], out);
  return out;
}

LogHistogram TelemetryDomain::HistogramMerged(TelemetryHistogram h) const {
  LogHistogram out;
  for (const auto& shard : shards_) ReadHistInto(shard->hists[h.slot], out);
  return out;
}

void TelemetryDomain::PublishTo(MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  for (std::uint32_t slot = 0; slot < counter_names_.size(); ++slot) {
    TelemetryCounter c{slot};
    // Per-shard cells are monotone and relaxed loads respect each cell's
    // modification order, so the summed total never goes backwards between
    // publishes — the delta is always >= 0.
    const std::uint64_t total = CounterTotal(c);
    const std::uint64_t delta = total - published_counters_[slot];
    if (delta != 0) registry.Counter(counter_names_[slot]).Inc(delta);
    published_counters_[slot] = total;
  }
  for (std::uint32_t slot = 0; slot < gauge_names_.size(); ++slot) {
    TelemetryGauge g{slot};
    MetricGauge& gauge = registry.Gauge(gauge_names_[slot]);
    gauge.Set(GaugeTotal(g));
    gauge.ObserveHighWater(GaugeHighWater(g));
  }
  for (std::uint32_t slot = 0; slot < hist_names_.size(); ++slot) {
    TelemetryHistogram h{slot};
    const LogHistogram merged = HistogramMerged(h);
    const std::uint64_t delta = merged.count() - published_hist_counts_[slot];
    if (delta != 0) {
      registry.Counter(hist_names_[slot] + ".count").Inc(delta);
    }
    published_hist_counts_[slot] = merged.count();
    if (!merged.empty()) {
      registry.Gauge(hist_names_[slot] + ".p50_ns").Set(merged.Median());
      registry.Gauge(hist_names_[slot] + ".p99_ns").Set(merged.P99());
    }
  }
}

}  // namespace netlock
