// Measurement primitives for the evaluation harness: latency distributions,
// throughput counters, and bucketed time series (for the policy and failure
// time-series figures).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace netlock {

/// Records individual latency samples (nanoseconds) and reports exact
/// order statistics. Samples are kept in full: even multi-second experiments
/// in this simulator produce at most a few million samples, and the paper's
/// figures need exact 99% / 99.9% tails.
class LatencyRecorder {
 public:
  // Resetting sorted_ here is load-bearing: the time-sliced policy and
  // failure benches interleave Record and Percentile, and a stale flag
  // would make Percentile read a mis-sorted tail.
  void Record(SimTime nanos) {
    samples_.push_back(nanos);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Arithmetic mean in nanoseconds (0 when empty).
  double Mean() const;

  /// Exact p-quantile (0 <= p <= 1) using nearest-rank; 0 when empty.
  SimTime Percentile(double p) const;

  SimTime Median() const { return Percentile(0.50); }
  SimTime P99() const { return Percentile(0.99); }
  SimTime P999() const { return Percentile(0.999); }
  SimTime Max() const;
  SimTime Min() const;

  /// Empirical CDF evaluated at evenly spaced probabilities; used for the
  /// Figure 13(b) latency CDF. Returns (latency_ns, cumulative_prob) pairs.
  std::vector<std::pair<SimTime, double>> Cdf(std::size_t points = 100) const;

  void Clear() { samples_.clear(); sorted_ = false; }

  /// Merge another recorder's samples into this one.
  void Merge(const LatencyRecorder& other);

 private:
  void EnsureSorted() const;

  mutable std::vector<SimTime> samples_;
  mutable bool sorted_ = false;
};

/// Counts events into fixed-width time buckets; used to plot throughput
/// over time (Figures 12(a) and 15).
class TimeSeries {
 public:
  explicit TimeSeries(SimTime bucket_width = 100 * kMillisecond)
      : bucket_width_(bucket_width) {}

  void Record(SimTime when, std::uint64_t count = 1);

  SimTime bucket_width() const { return bucket_width_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Event count in bucket i (0 if beyond recorded range).
  std::uint64_t BucketCount(std::size_t i) const;

  /// Rate in events/second for bucket i.
  double BucketRate(std::size_t i) const;

  /// Midpoint time of bucket i in seconds.
  double BucketTimeSeconds(std::size_t i) const;

 private:
  SimTime bucket_width_;
  std::vector<std::uint64_t> buckets_;
};

/// Throughput/latency summary for one experiment run of one system.
struct RunMetrics {
  std::uint64_t lock_grants = 0;       ///< Lock requests granted.
  std::uint64_t lock_requests = 0;     ///< Lock requests issued.
  std::uint64_t retries = 0;           ///< Client-side retries (decentralized).
  std::uint64_t txn_commits = 0;       ///< Transactions completed.
  std::uint64_t switch_grants = 0;     ///< Grants served by the switch.
  std::uint64_t server_grants = 0;     ///< Grants served by lock servers.
  SimTime duration = 0;                ///< Measured interval.
  LatencyRecorder lock_latency;        ///< Acquire -> grant latency.
  LatencyRecorder txn_latency;         ///< Transaction begin -> commit.

  double LockThroughputMrps() const;
  double TxnThroughputMtps() const;
};

/// Formats nanoseconds as a human-readable string ("8.1us", "1.2ms").
std::string FormatNanos(SimTime nanos);

}  // namespace netlock
