// Deterministic pseudo-random number generation for simulation workloads.
//
// Experiments must be reproducible run-to-run, so every stochastic component
// takes an explicit seed. We use xoshiro256** (public-domain, Blackman/Vigna)
// seeded through SplitMix64, which is both faster and of higher quality than
// std::mt19937_64 for this use, and — unlike the standard distributions —
// produces identical sequences across standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace netlock {

/// SplitMix64: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction.
  std::uint64_t NextBounded(std::uint64_t bound) {
    NETLOCK_DCHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    NETLOCK_DCHECK(lo <= hi);
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (for Poisson
  /// inter-arrival times in open-loop load generation).
  double NextExponential(double mean);

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with skew parameter alpha.
/// Uses the rejection-inversion method of Hörmann and Derflinger, which is
/// O(1) per sample and exact, so popularity-skewed lock workloads (the case
/// that motivates the knapsack allocation in the paper) can be generated at
/// simulation speed.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace netlock
