#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.h"

namespace netlock {

void LatencyRecorder::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0.0;
  const long double sum =
      std::accumulate(samples_.begin(), samples_.end(), 0.0L);
  return static_cast<double>(sum / samples_.size());
}

SimTime LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  NETLOCK_CHECK(p >= 0.0 && p <= 1.0);
  EnsureSorted();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

SimTime LatencyRecorder::Max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

SimTime LatencyRecorder::Min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

std::vector<std::pair<SimTime, double>> LatencyRecorder::Cdf(
    std::size_t points) const {
  std::vector<std::pair<SimTime, double>> cdf;
  if (samples_.empty() || points == 0) return cdf;
  EnsureSorted();
  cdf.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(points);
    cdf.emplace_back(Percentile(p), p);
  }
  return cdf;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (&other == this) {  // Self-merge would invalidate source iterators.
    const std::size_t n = samples_.size();
    samples_.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) samples_.push_back(samples_[i]);
    sorted_ = false;
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void TimeSeries::Record(SimTime when, std::uint64_t count) {
  const std::size_t bucket = static_cast<std::size_t>(when / bucket_width_);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  buckets_[bucket] += count;
}

std::uint64_t TimeSeries::BucketCount(std::size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0;
}

double TimeSeries::BucketRate(std::size_t i) const {
  return static_cast<double>(BucketCount(i)) /
         (static_cast<double>(bucket_width_) / kSecond);
}

double TimeSeries::BucketTimeSeconds(std::size_t i) const {
  return (static_cast<double>(i) + 0.5) * static_cast<double>(bucket_width_) /
         kSecond;
}

double RunMetrics::LockThroughputMrps() const {
  if (duration == 0) return 0.0;
  return static_cast<double>(lock_grants) /
         (static_cast<double>(duration) / kSecond) / 1e6;
}

double RunMetrics::TxnThroughputMtps() const {
  if (duration == 0) return 0.0;
  return static_cast<double>(txn_commits) /
         (static_cast<double>(duration) / kSecond) / 1e6;
}

std::string FormatNanos(SimTime nanos) {
  char buf[32];
  if (nanos >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(nanos) / kSecond);
  } else if (nanos >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms",
                  static_cast<double>(nanos) / kMillisecond);
  } else if (nanos >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(nanos) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(nanos));
  }
  return buf;
}

}  // namespace netlock
