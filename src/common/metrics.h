// Lightweight metrics registry: monotonic counters and gauges with
// hierarchical dotted names ("dataplane.grants", "sim.events_processed").
//
// Design goals, in order:
//   1. Near-zero cost on hot paths. Components resolve their instruments
//      once (at construction) and afterwards an update is a single integer
//      add on a stable address — no map lookup, no allocation, no branches
//      beyond the add itself.
//   2. Aggregation across instances. Two lock servers (or twelve client
//      machines) resolving the same name share one instrument, so a
//      registry snapshot reports rack-wide totals, which is what the bench
//      reports track PR over PR.
//   3. Machine readability. Snapshot() yields stable, sorted name/value
//      pairs that the JSON bench reports dump verbatim.
//
// Thread-safety: instrument updates are lock-free relaxed atomics and
// name resolution is mutex-guarded, because the real-time backend's worker
// threads (src/rt/) update shared counters concurrently. Relaxed ordering
// is sufficient — values are independent statistics, and readers that need
// exactness (snapshots after a run) synchronize externally via thread
// join. The simulator remains single-threaded; it pays one uncontended
// atomic add where it used to pay a plain add.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace netlock {

/// A monotonically increasing event count. Safe for concurrent writers.
class MetricCounter {
 public:
  void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time level (queue depth, buffered entries). Tracks the
/// current value and the high-water mark; snapshots report both. Safe for
/// concurrent writers: Add is a CAS loop (no lost updates), and the
/// high-water mark is a monotonic CAS-max.
class MetricGauge {
 public:
  void Set(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    ObserveHighWater(v);
  }
  /// Clamps at zero: a negative delta larger than the current value would
  /// otherwise wrap to a huge uint64 and poison the high-water mark.
  void Add(std::int64_t delta) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      if (delta >= 0) {
        next = cur + static_cast<std::uint64_t>(delta);
      } else {
        // |delta| without overflow when delta == INT64_MIN.
        const std::uint64_t dec = ~static_cast<std::uint64_t>(delta) + 1;
        next = cur > dec ? cur - dec : 0;
      }
    } while (!value_.compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
    if (delta >= 0) ObserveHighWater(next);
  }
  /// Raises the high-water mark without touching the current value. Used
  /// by sampled gauges (e.g. the simulator's pending-event depth) to
  /// reconcile an exactly-tracked maximum at the end of a run.
  void ObserveHighWater(std::uint64_t v) {
    std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (v > hw && !high_water_.compare_exchange_weak(
                         hw, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

/// One snapshot entry. Gauges contribute two samples: "<name>" (current)
/// and "<name>.hwm" (high-water mark).
struct MetricSample {
  std::string name;
  std::uint64_t value = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the simulator components report into.
  static MetricsRegistry& Global();

  /// Resolves (creating on first use) the counter/gauge with this name.
  /// The returned reference is stable for the registry's lifetime; resolve
  /// once and keep the pointer. A name registers as either a counter or a
  /// gauge, never both. The current prefix (see SetPrefix) is prepended at
  /// resolution time. Resolution is mutex-guarded (concurrent resolvers
  /// are safe); SetPrefix is construction-time only and is not.
  MetricCounter& Counter(const std::string& name);
  MetricGauge& Gauge(const std::string& name);

  /// Prefix prepended to every name resolved by Counter()/Gauge() — used
  /// to label instruments by the component group under construction (e.g.
  /// "rack1." while building rack 1's switch and servers, so dashboards
  /// split by rack). Construction-time only: components resolve their
  /// instruments once, so changing the prefix later does not re-label them.
  void SetPrefix(std::string prefix) { prefix_ = std::move(prefix); }
  const std::string& prefix() const { return prefix_; }

  /// All instruments (gauges as two samples), sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Zeroes every value (names and addresses survive). Benches call this
  /// between runs to attribute counts to one configuration.
  void Reset();

  /// Folds another registry into this one: counters add their totals,
  /// gauges take the other's current value and the max of both high-water
  /// marks. Merging per-simulation registries into the default one in task
  /// order reproduces, byte for byte, the snapshot a serial run over the
  /// shared registry would have produced — which is what keeps parallel
  /// sweeps' bench reports identical to serial ones. Instruments missing
  /// here are created.
  void MergeFrom(const MetricsRegistry& other);

  std::size_t num_instruments() const {
    return counters_.size() + gauges_.size();
  }

 private:
  std::string prefix_;
  /// Guards the instrument maps (resolution / snapshot / merge), not the
  /// instruments themselves — those are atomics updated lock-free.
  mutable std::mutex mu_;
  std::map<std::string, MetricCounter> counters_;
  std::map<std::string, MetricGauge> gauges_;
};

/// RAII prefix for a construction scope: restores the previous prefix on
/// destruction, so nested groups compose ("rack2." inside "" -> "rack2.").
class ScopedMetricPrefix {
 public:
  ScopedMetricPrefix(MetricsRegistry& registry, const std::string& prefix)
      : registry_(registry), saved_(registry.prefix()) {
    registry_.SetPrefix(saved_ + prefix);
  }
  ~ScopedMetricPrefix() { registry_.SetPrefix(saved_); }
  ScopedMetricPrefix(const ScopedMetricPrefix&) = delete;
  ScopedMetricPrefix& operator=(const ScopedMetricPrefix&) = delete;

 private:
  MetricsRegistry& registry_;
  std::string saved_;
};

}  // namespace netlock
