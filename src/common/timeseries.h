// Backend-neutral time-series bucket store.
//
// The bucketing core extracted from the harness TimeSeriesSampler so the
// real-time backend can produce the same "time_series" report section the
// simulated benches have — without depending on the Simulator for tick
// scheduling. The store tracks resolved registry instruments (counters as
// per-bucket deltas/rates, gauges as end-of-bucket levels); the caller
// decides when a bucket boundary happens: the sim sampler schedules ticks
// as simulation events, the rt stats poller ticks from a wall-clock thread.
//
// Thread-safety: Watch/WatchGauge/Begin/Tick and the accessors must be
// externally serialized (one owner thread). The instruments themselves are
// atomics, so reading them while worker threads update is safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace netlock {

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(SimTime interval = kMillisecond);

  /// Tracks a counter: each bucket reports the delta over the bucket
  /// (Delta) and the corresponding rate in events/second (Value).
  void Watch(std::string name, const MetricCounter& counter);

  /// Tracks a gauge: each bucket reports the level at the bucket's end.
  void WatchGauge(std::string name, const MetricGauge& gauge);

  /// Takes the baseline counter snapshot; buckets are timestamped relative
  /// to `start_time` (ns). Call after all Watch()es, before the first Tick.
  void Begin(SimTime start_time);
  bool begun() const { return begun_; }

  /// Closes one bucket: appends counter deltas and gauge levels.
  void Tick();

  SimTime interval() const { return interval_; }
  std::size_t num_series() const { return series_.size(); }
  std::size_t num_buckets() const {
    return series_.empty() ? 0 : series_.front().deltas.size();
  }

  const std::string& series_name(std::size_t s) const {
    return series_[s].name;
  }
  bool series_is_rate(std::size_t s) const { return series_[s].is_rate; }

  /// Midpoint of bucket `b` in seconds since time zero — the natural x
  /// coordinate when plotting rate buckets.
  double BucketTimeSeconds(std::size_t b) const;

  /// Rate series: events/second over the bucket. Gauge series: the level
  /// sampled at the end of the bucket.
  double Value(std::size_t s, std::size_t b) const;

  /// Raw per-bucket count delta (rate series) or end-of-bucket level
  /// (gauge series).
  std::uint64_t Delta(std::size_t s, std::size_t b) const {
    return series_[s].deltas[b];
  }

 private:
  struct Series {
    std::string name;
    bool is_rate = false;            ///< Counter (rate) vs gauge (level).
    const MetricCounter* counter = nullptr;
    const MetricGauge* gauge = nullptr;
    std::uint64_t last = 0;          ///< Counter value at last tick.
    std::vector<std::uint64_t> deltas;
  };

  SimTime interval_;
  SimTime start_time_ = 0;
  bool begun_ = false;
  std::vector<Series> series_;
};

}  // namespace netlock
