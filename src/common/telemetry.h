// Wait-free sharded telemetry domains for the real-time backend.
//
// The MetricsRegistry's instruments are shared atomics: every worker-core
// increment is an atomic RMW on a cacheline all cores contend for, which is
// exactly the cross-core traffic a shared-nothing lock service exists to
// avoid. A TelemetryDomain gives each worker its own cache-line-isolated
// shard of every instrument — counters, gauges, and log-bucketed latency
// histograms (LogHistogram's bucket layout) — written with plain
// single-writer stores (a relaxed load + relaxed store, no atomic RMW, no
// fence), so a hot-path update costs the same as incrementing a local.
//
// Aggregation happens on the reader side: CounterTotal/HistogramMerged sum
// the shards on demand, and PublishTo() folds the domain into an ordinary
// MetricsRegistry as *deltas*, so registry snapshots, bench-report JSON,
// and MergeFrom semantics are exactly what they were — the domain is a
// write-side optimization, invisible downstream.
//
// Contract:
//   * Register* calls happen at setup time, before any writer runs.
//   * Each shard index has exactly one writer thread (shard = worker core).
//   * Readers (PublishTo, CounterTotal, HistogramMerged, the live stats
//     poller) may run concurrently with writers: they see a racy-but-
//     monotone view that becomes exact once writers quiesce. TSan-clean:
//     every shared cell is a std::atomic accessed with relaxed ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/types.h"

namespace netlock {

/// Opaque instrument handles (indices into the domain's slot arrays).
/// Cheap to copy; resolve once at setup like MetricCounter pointers.
struct TelemetryCounter {
  std::uint32_t slot = 0;
};
struct TelemetryGauge {
  std::uint32_t slot = 0;
};
struct TelemetryHistogram {
  std::uint32_t slot = 0;
};

class TelemetryDomain {
 public:
  /// How a gauge aggregates across shards: kSum for additive levels
  /// (mailbox depth), kMax for per-shard extrema (largest drain batch).
  enum class GaugeAgg : std::uint8_t { kSum = 0, kMax = 1 };

  explicit TelemetryDomain(int num_shards);
  TelemetryDomain(const TelemetryDomain&) = delete;
  TelemetryDomain& operator=(const TelemetryDomain&) = delete;

  // --- Registration (setup time, before writers start) ---

  TelemetryCounter RegisterCounter(std::string name);
  TelemetryGauge RegisterGauge(std::string name, GaugeAgg agg = GaugeAgg::kSum);
  /// Histograms publish "<name>.count" (counter), "<name>.p50_ns" and
  /// "<name>.p99_ns" (gauges) into the registry.
  TelemetryHistogram RegisterHistogram(std::string name);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t num_counters() const { return counter_names_.size(); }
  std::size_t num_gauges() const { return gauge_names_.size(); }
  std::size_t num_histograms() const { return hist_names_.size(); }
  const std::string& counter_name(TelemetryCounter c) const {
    return counter_names_[c.slot];
  }
  const std::string& gauge_name(TelemetryGauge g) const {
    return gauge_names_[g.slot];
  }
  const std::string& histogram_name(TelemetryHistogram h) const {
    return hist_names_[h.slot];
  }

  /// Name -> handle lookups (linear; instrument counts are small). Return
  /// false when no instrument has that name. Used by live-view builders
  /// (the stats poller's snapshot provider) that don't own the handles.
  bool FindCounter(const std::string& name, TelemetryCounter* out) const;
  bool FindGauge(const std::string& name, TelemetryGauge* out) const;
  bool FindHistogram(const std::string& name, TelemetryHistogram* out) const;

  // --- Writer API: call only from the thread owning `shard` ---

  void Inc(int shard, TelemetryCounter c, std::uint64_t n = 1) {
    std::atomic<std::uint64_t>& cell =
        shards_[static_cast<std::size_t>(shard)]->counters[c.slot];
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }

  void GaugeSet(int shard, TelemetryGauge g, std::uint64_t v) {
    GaugeCell& cell = shards_[static_cast<std::size_t>(shard)]->gauges[g.slot];
    cell.value.store(v, std::memory_order_relaxed);
    if (v > cell.hwm.load(std::memory_order_relaxed)) {
      cell.hwm.store(v, std::memory_order_relaxed);
    }
  }

  void Record(int shard, TelemetryHistogram h, SimTime nanos) {
    HistCell& cell = shards_[static_cast<std::size_t>(shard)]->hists[h.slot];
    std::atomic<std::uint32_t>& bucket =
        cell.buckets[LogHistogram::BucketFor(nanos)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    cell.count.store(cell.count.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    cell.sum.store(cell.sum.load(std::memory_order_relaxed) + nanos,
                   std::memory_order_relaxed);
    if (nanos < cell.min.load(std::memory_order_relaxed)) {
      cell.min.store(nanos, std::memory_order_relaxed);
    }
    if (nanos > cell.max.load(std::memory_order_relaxed)) {
      cell.max.store(nanos, std::memory_order_relaxed);
    }
  }

  // --- Reader API (any thread; exact once writers quiesce) ---

  std::uint64_t CounterShard(int shard, TelemetryCounter c) const {
    return shards_[static_cast<std::size_t>(shard)]->counters[c.slot].load(
        std::memory_order_relaxed);
  }
  std::uint64_t CounterTotal(TelemetryCounter c) const;

  std::uint64_t GaugeShard(int shard, TelemetryGauge g) const {
    return shards_[static_cast<std::size_t>(shard)]->gauges[g.slot].value.load(
        std::memory_order_relaxed);
  }
  std::uint64_t GaugeShardHighWater(int shard, TelemetryGauge g) const {
    return shards_[static_cast<std::size_t>(shard)]->gauges[g.slot].hwm.load(
        std::memory_order_relaxed);
  }
  /// Aggregated per the gauge's GaugeAgg (sum or max over shards).
  std::uint64_t GaugeTotal(TelemetryGauge g) const;
  /// Aggregated high-water mark (sum of shard hwms for kSum — an upper
  /// bound on the instantaneous total — max of shard hwms for kMax).
  std::uint64_t GaugeHighWater(TelemetryGauge g) const;

  /// One shard's histogram as a LogHistogram (bucket counts read relaxed;
  /// internally consistent: count is recomputed from the bucket reads).
  LogHistogram HistogramShard(int shard, TelemetryHistogram h) const;
  /// All shards merged.
  LogHistogram HistogramMerged(TelemetryHistogram h) const;

  /// Folds the domain into `registry` as deltas since the last PublishTo:
  /// counters Inc() the growth, gauges Set() the aggregate, histograms
  /// publish "<name>.count" / "<name>.p50_ns" / "<name>.p99_ns". Repeated
  /// calls are cheap and idempotent-at-quiescence, so a live poller can
  /// publish every interval and the registry's totals stay correct.
  /// Serialized internally (safe from any thread).
  void PublishTo(MetricsRegistry& registry);

 private:
  struct GaugeCell {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> hwm{0};
  };
  struct HistCell {
    HistCell();
    std::unique_ptr<std::atomic<std::uint32_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};  ///< Sum of recorded ns.
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };
  /// One writer core's slice of every instrument. Shards are separately
  /// heap-allocated and cache-line aligned so no two cores' hot cells share
  /// a line. Deques (not vectors) because atomic cells are not movable and
  /// registration appends; deque growth never relocates existing cells.
  struct alignas(64) Shard {
    std::deque<std::atomic<std::uint64_t>> counters;
    std::deque<GaugeCell> gauges;
    std::deque<HistCell> hists;
  };

  void ReadHistInto(const HistCell& cell, LogHistogram& out) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<GaugeAgg> gauge_aggs_;
  std::vector<std::string> hist_names_;

  /// Guards the publish bookkeeping (PublishTo from poller + final flush).
  std::mutex publish_mu_;
  std::vector<std::uint64_t> published_counters_;
  std::vector<std::uint64_t> published_hist_counts_;
};

}  // namespace netlock
