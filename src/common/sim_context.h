// Per-simulation telemetry context.
//
// Historically every component reported into MetricsRegistry::Global() and
// TraceLog::Global(), which made two simulations in one process share
// mutable state — and therefore made parallel parameter sweeps impossible.
// A SimContext bundles one simulation's registry and trace log; the
// Simulator owns a pointer to its context and every component reached
// through it (Network, Pipeline, LockSwitch, LockServer, sessions, the
// harness) resolves instruments there instead of in the globals.
//
// Default() wraps the process-wide globals, and every constructor that
// takes a context defaults to it, so single-simulation code (and every
// pre-existing call signature) keeps working unchanged: the globals simply
// became "the default context".
#pragma once

#include <memory>

#include "common/metrics.h"
#include "common/tracelog.h"

namespace netlock {

class SimContext {
 public:
  /// An isolated context owning a fresh registry and trace log. Two
  /// simulations built on distinct contexts share no mutable state and can
  /// run on different threads concurrently.
  SimContext();
  ~SimContext();

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// The process-wide default: metrics() is MetricsRegistry::Global() and
  /// trace() is TraceLog::Global(). Not thread-safe — serial use only.
  static SimContext& Default();

  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }
  TraceLog& trace() { return *trace_; }
  const TraceLog& trace() const { return *trace_; }

  bool is_default() const { return owned_metrics_ == nullptr; }

 private:
  struct DefaultTag {};
  explicit SimContext(DefaultTag);  // Non-owning view of the globals.

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  std::unique_ptr<TraceLog> owned_trace_;
  MetricsRegistry* metrics_;
  TraceLog* trace_;
};

}  // namespace netlock
