// Core identifier and enum types shared by every NetLock module.
#pragma once

#include <cstdint>
#include <string>

namespace netlock {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// Convenience duration constants (nanoseconds).
inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Identifies a lock object. The paper partitions locks between the switch
/// and lock servers; lock ids are globally unique within one NetLock instance.
using LockId = std::uint32_t;

/// Identifies a transaction (unique per client request stream).
using TxnId = std::uint64_t;

/// Identifies a tenant for quota / priority policies.
using TenantId = std::uint16_t;

/// Priority class. Lower value = higher priority (granted first). The switch
/// supports at most one priority class per pipeline stage (paper Section 4.4).
using Priority = std::uint8_t;

/// Identifies a node (client machine, switch, or server) in the simulated
/// rack network.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr LockId kInvalidLock = 0xffffffffu;
inline constexpr TxnId kInvalidTxn = ~0ull;

/// Lock mode, as carried in the request header (paper Section 4.2).
enum class LockMode : std::uint8_t {
  kShared = 0,
  kExclusive = 1,
};

inline const char* ToString(LockMode m) {
  return m == LockMode::kShared ? "shared" : "exclusive";
}

/// Result of a lock acquire attempt as observed by a client session.
enum class AcquireResult : std::uint8_t {
  kGranted = 0,    ///< Lock granted (possibly after queuing).
  kTimeout = 1,    ///< Lease/retry budget exhausted.
  kRejected = 2,   ///< Policy rejected the request (e.g., quota).
  kAborted = 3,    ///< Deadlock policy refused or revoked the request.
};

/// Deadlock-handling policy applied by a lock manager when an acquire
/// conflicts with queued entries. Transaction *age* is the txn id itself
/// (smaller id = older): ids are assigned monotonically per engine and a
/// retry always gets a fresh (younger) id, so the order is total and
/// identical on the sim and rt backends.
enum class DeadlockPolicy : std::uint8_t {
  kNone = 0,       ///< Queue every conflicting request (lease breaks cycles).
  kNoWait = 1,     ///< Any conflicting acquire is refused immediately.
  kWaitDie = 2,    ///< Older waits; a requester younger than a conflicting
                   ///< queued entry is refused ("dies").
  kWoundWait = 3,  ///< Older wounds (force-aborts) younger conflicting
                   ///< entries and waits; younger waits behind older.
};

inline const char* ToString(DeadlockPolicy p) {
  switch (p) {
    case DeadlockPolicy::kNone:
      return "none";
    case DeadlockPolicy::kNoWait:
      return "no_wait";
    case DeadlockPolicy::kWaitDie:
      return "wait_die";
    case DeadlockPolicy::kWoundWait:
      return "wound_wait";
  }
  return "?";
}

inline bool ParseDeadlockPolicy(const std::string& text,
                                DeadlockPolicy* out) {
  if (text == "none") {
    *out = DeadlockPolicy::kNone;
  } else if (text == "no_wait") {
    *out = DeadlockPolicy::kNoWait;
  } else if (text == "wait_die") {
    *out = DeadlockPolicy::kWaitDie;
  } else if (text == "wound_wait") {
    *out = DeadlockPolicy::kWoundWait;
  } else {
    return false;
  }
  return true;
}

/// Measured (or declared) demand for one lock: the r_i / c_i pair of the
/// paper's memory-allocation formulation (Section 4.3). Produced by the
/// switch/server demand counters, consumed by Algorithm 3.
struct LockDemand {
  LockId lock = kInvalidLock;
  double rate = 0.0;             ///< r_i: requests per second.
  std::uint32_t contention = 1;  ///< c_i: max concurrent requests.
};

inline const char* ToString(AcquireResult r) {
  switch (r) {
    case AcquireResult::kGranted:
      return "granted";
    case AcquireResult::kTimeout:
      return "timeout";
    case AcquireResult::kRejected:
      return "rejected";
    case AcquireResult::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace netlock
