#include "common/sim_context.h"

namespace netlock {

SimContext::SimContext()
    : owned_metrics_(std::make_unique<MetricsRegistry>()),
      owned_trace_(std::make_unique<TraceLog>()),
      metrics_(owned_metrics_.get()),
      trace_(owned_trace_.get()) {}

SimContext::SimContext(DefaultTag)
    : metrics_(&MetricsRegistry::Global()), trace_(&TraceLog::Global()) {}

SimContext::~SimContext() = default;

SimContext& SimContext::Default() {
  static SimContext context{DefaultTag{}};
  return context;
}

}  // namespace netlock
