// Memory-bounded latency histogram with logarithmic buckets.
//
// LatencyRecorder stores every sample for exact order statistics, which is
// right for the paper's figures but grows with run length. LogHistogram
// gives HDR-style bounded-error quantiles in constant memory (~2 KB):
// buckets are spaced so that every recorded value is within
// `1 / kSubBuckets` relative error of its bucket midpoint — ample for
// latency reporting, where 1% resolution outclasses measurement noise.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"

namespace netlock {

class LogHistogram {
 public:
  /// Sub-buckets per power of two: relative quantile error <= 1/64 ~ 1.6%.
  static constexpr std::uint32_t kSubBuckets = 64;
  /// Covers [0, 2^40) ns ~ 18 minutes, far beyond any simulated latency.
  static constexpr std::uint32_t kMaxExponent = 40;
  /// Bucket-array length. Public so external shard storage (the sharded
  /// telemetry domains) can mirror the layout and fold back via
  /// MergeBucketCounts.
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExponent) * kSubBuckets + kSubBuckets;

  void Record(SimTime nanos);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Approximate p-quantile (0 <= p <= 1); relative error <= ~1.6%.
  SimTime Percentile(double p) const;

  SimTime Median() const { return Percentile(0.50); }
  SimTime P99() const { return Percentile(0.99); }

  /// Exact arithmetic mean (tracked separately from the buckets).
  double Mean() const;

  SimTime Min() const { return empty() ? 0 : min_; }
  SimTime Max() const { return empty() ? 0 : max_; }

  void Merge(const LogHistogram& other);

  /// Folds externally tracked bucket counts (laid out by BucketFor; exactly
  /// kNumBuckets entries) plus their separately tracked moments into this
  /// histogram — the aggregation path for sharded telemetry, whose shards
  /// keep buckets in atomic cells rather than LogHistogram instances. A
  /// zero total is a no-op (min/max are ignored).
  void MergeBucketCounts(const std::uint32_t* counts, double sum,
                         SimTime min, SimTime max);

  void Clear();

  // Exposed for tests: the bucketing must be monotone in `value`, and every
  // bucket's midpoint must lie within that bucket's bounds.
  static std::uint32_t BucketFor(SimTime value);
  static SimTime BucketMidpoint(std::uint32_t bucket);

 private:
  std::array<std::uint32_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  SimTime min_ = ~SimTime{0};
  SimTime max_ = 0;
};

}  // namespace netlock
