// Lightweight contract-checking macros.
//
// Following the C++ Core Guidelines (I.6/I.8: prefer expressing preconditions
// and postconditions), we provide CHECK-style macros that abort with a
// diagnostic on violation. NETLOCK_CHECK is always on (cheap, guards
// correctness-critical invariants such as queue accounting); NETLOCK_DCHECK
// compiles out in NDEBUG builds and guards hot-path assertions such as the
// one-register-access-per-pass discipline of the switch pipeline model.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace netlock {

/// Called (at most once) after a CHECK failure prints its diagnostic and
/// before the process aborts. Crash tooling (the flight recorder) installs
/// a dumper here so a tripped invariant still leaves an autopsy artifact.
/// Must not assume the failed invariant holds.
using CheckFailureHook = void (*)();

inline std::atomic<CheckFailureHook>& CheckFailureHookSlot() {
  static std::atomic<CheckFailureHook> hook{nullptr};
  return hook;
}

inline void SetCheckFailureHook(CheckFailureHook hook) {
  CheckFailureHookSlot().store(hook, std::memory_order_release);
}

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  // Exchange (not load) so a hook that itself CHECK-fails cannot recurse.
  if (const CheckFailureHook hook =
          CheckFailureHookSlot().exchange(nullptr, std::memory_order_acq_rel)) {
    hook();
  }
  std::abort();
}

}  // namespace netlock

#define NETLOCK_CHECK(expr)                                 \
  do {                                                      \
    if (!(expr)) {                                          \
      ::netlock::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                       \
  } while (0)

// DCHECKs stay on by default — they are cheap and they are what turns a
// data-plane discipline violation into a test failure. Define
// NETLOCK_DISABLE_DCHECK for maximum-speed benchmark builds.
#ifdef NETLOCK_DISABLE_DCHECK
#define NETLOCK_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define NETLOCK_DCHECK(expr) NETLOCK_CHECK(expr)
#endif
