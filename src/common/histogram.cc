#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace netlock {

std::uint32_t LogHistogram::BucketFor(SimTime value) {
  // Values below kSubBuckets get exact unit buckets; above, the bucket is
  // (exponent, top kSubBuckets-worth of mantissa bits).
  if (value < kSubBuckets) return static_cast<std::uint32_t>(value);
  const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(value));
  if (msb > static_cast<int>(kMaxExponent)) {
    // Outlier beyond the covered range: saturate to the top bucket. Keeping
    // mantissa bits from the unclamped shift would make the index
    // non-monotone here (a larger value could land in a smaller bucket).
    return kMaxExponent * kSubBuckets + (kSubBuckets - 1);
  }
  const int shift = msb - 6;  // log2(kSubBuckets) == 6.
  const std::uint32_t sub =
      static_cast<std::uint32_t>((value >> shift) & (kSubBuckets - 1));
  return static_cast<std::uint32_t>(msb) * kSubBuckets + sub;
}

SimTime LogHistogram::BucketMidpoint(std::uint32_t bucket) {
  if (bucket < kSubBuckets) return bucket;
  const std::uint32_t exponent = bucket / kSubBuckets;
  const std::uint32_t sub = bucket % kSubBuckets;
  const int shift = static_cast<int>(exponent) - 6;
  const SimTime base = (SimTime{1} << exponent) |
                       (static_cast<SimTime>(sub) << shift);
  return base + (SimTime{1} << shift) / 2;  // Midpoint of the bucket.
}

void LogHistogram::Record(SimTime nanos) {
  const std::uint32_t bucket = BucketFor(nanos);
  NETLOCK_DCHECK(bucket < kNumBuckets);
  ++buckets_[bucket];
  ++count_;
  sum_ += static_cast<double>(nanos);
  if (nanos < min_) min_ = nanos;
  if (nanos > max_) max_ = nanos;
}

SimTime LogHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  NETLOCK_CHECK(p >= 0.0 && p <= 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t bucket = 0; bucket < kNumBuckets; ++bucket) {
    seen += buckets_[bucket];
    if (seen > rank) {
      const SimTime mid = BucketMidpoint(static_cast<std::uint32_t>(bucket));
      // Clamp to the observed range so tails never exceed the real max.
      return std::min(std::max(mid, min_), max_);
    }
  }
  return max_;
}

double LogHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
}

void LogHistogram::MergeBucketCounts(const std::uint32_t* counts, double sum,
                                     SimTime min, SimTime max) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += counts[i];
    total += counts[i];
  }
  if (total == 0) return;
  count_ += total;
  sum_ += sum;
  min_ = std::min(min_, min);
  max_ = std::max(max_, max);
}

void LogHistogram::Clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = ~SimTime{0};
  max_ = 0;
}

}  // namespace netlock
