// Per-core flight recorder: a fixed-size binary ring of recent protocol
// events, written lock-free on the real-time hot path and dumped for
// autopsy when something goes wrong.
//
// When the LockOracle flags a violation on a real-thread run — or a CHECK
// trips, or the process takes a fatal signal — a wall of aggregate counters
// says nothing about *which* grant overlapped *which* release. The flight
// recorder keeps the last `capacity` protocol events per core (op, lock,
// mode, txn, timestamp, per-shard sequence) in a preallocated ring; a write
// is a few plain stores plus one release store of the shard's cursor, so
// keeping it always-on costs a fraction of a request's work. On dump the
// rings are merged, sorted by timestamp, and written in both a
// human-readable text form and JSON; `tools/netlock_fr` pretty-prints
// either, and ParseText() loads the text form back for tooling and tests.
//
// Concurrency contract: one writer thread per shard (shard = worker core).
// Snapshot/dump may run concurrently with writers — an in-flight slot can
// surface torn (wrong ts/op for its seq), which is acceptable for a crash
// artifact; quiesced dumps (the oracle-violation path, after Stop()) are
// exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace netlock {

class FlightRecorder {
 public:
  enum class Op : std::uint8_t {
    kAccept = 0,             ///< Acquire entered the engine.
    kGrant = 1,              ///< Grant delivered.
    kRelease = 2,            ///< Release applied.
    kStaleRelease = 3,       ///< Release for an instance already gone.
    kMismatchedRelease = 4,  ///< Release mode/txn mismatched the holder.
    kMark = 5,               ///< Free-form marker (tests, tools).
    kAbort = 6,              ///< Deadlock policy refused/revoked an entry.
    kCancel = 7,             ///< Client withdrew a txn's queue entries.
  };
  static const char* ToString(Op op);
  static bool ParseOp(std::string_view text, Op* out);

  struct Event {
    std::uint64_t ts = 0;   ///< Substrate time (ns) when recorded.
    std::uint64_t seq = 0;  ///< Per-shard sequence (monotone within shard).
    LockId lock = kInvalidLock;
    TxnId txn = kInvalidTxn;
    std::uint32_t client = 0;  ///< Client-thread index (0 when n/a).
    std::uint16_t shard = 0;   ///< Writing core.
    Op op = Op::kMark;
    LockMode mode = LockMode::kExclusive;

    friend bool operator==(const Event&, const Event&) = default;
  };

  /// `capacity_per_shard` is rounded up to a power of two (>= 16).
  explicit FlightRecorder(int shards, std::size_t capacity_per_shard = 4096);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  int shards() const { return static_cast<int>(rings_.size()); }
  std::size_t capacity_per_shard() const { return capacity_; }

  /// Hot path: records one event into `shard`'s ring. Wait-free, one
  /// release store. Call only from the thread owning `shard`.
  void Record(int shard, Op op, LockId lock, LockMode mode, TxnId txn,
              std::uint64_t ts, std::uint32_t client = 0) {
    Ring& ring = *rings_[static_cast<std::size_t>(shard)];
    const std::uint64_t seq = ring.next.load(std::memory_order_relaxed);
    Event& slot = ring.slots[seq & ring.mask];
    slot.ts = ts;
    slot.seq = seq;
    slot.lock = lock;
    slot.txn = txn;
    slot.client = client;
    slot.shard = static_cast<std::uint16_t>(shard);
    slot.op = op;
    slot.mode = mode;
    // Publish after the slot is fully written: a concurrent Snapshot that
    // acquires `next` sees complete slots for every index below it.
    ring.next.store(seq + 1, std::memory_order_release);
  }

  /// Total events ever recorded (>= events retained).
  std::uint64_t recorded() const;

  /// The retained window, merged across shards and sorted by
  /// (ts, shard, seq) — a best-effort linearization for reading.
  std::vector<Event> Snapshot() const;

  // --- Dump / load ---

  std::string ToText() const;
  std::string ToJson() const;
  bool WriteText(const std::string& path) const;
  bool WriteJson(const std::string& path) const;
  /// Writes <prefix>.txt and <prefix>.json. Returns true if both succeed.
  bool Dump(const std::string& path_prefix) const;

  /// Parses a ToText()-format dump back into events (sorted as dumped).
  /// Returns false on malformed input; `out` then holds the events parsed
  /// so far. Shared by tools/netlock_fr and the tests.
  static bool ParseText(std::string_view text, std::vector<Event>* out);

  // --- Fatal-path dumping ---

  /// Arms this recorder as the process's crash recorder: a NETLOCK_CHECK
  /// failure or a fatal signal (SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT)
  /// dumps it to <prefix>.txt/.json before the process dies. Best effort:
  /// the dump allocates, which is not async-signal-safe — acceptable for a
  /// last-gasp artifact, and the handler re-raises with default disposition
  /// either way. One recorder may be armed at a time; arming replaces the
  /// previous one.
  void ArmFatalDump(std::string path_prefix);
  /// Disarms if this recorder is armed (call before destroying an armed
  /// recorder). The destructor disarms automatically.
  void DisarmFatalDump();

  /// Dumps the armed recorder now (idempotent: the first call wins). Used
  /// by the check/signal hooks; exposed for tests.
  static void FatalDumpNow();

 private:
  struct alignas(64) Ring {
    explicit Ring(std::size_t cap) : slots(cap), mask(cap - 1) {}
    std::vector<Event> slots;
    std::size_t mask;
    std::atomic<std::uint64_t> next{0};
  };

  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = 0;
};

}  // namespace netlock
