#include "common/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/check.h"

namespace netlock {

const char* FlightRecorder::ToString(Op op) {
  switch (op) {
    case Op::kAccept: return "accept";
    case Op::kGrant: return "grant";
    case Op::kRelease: return "release";
    case Op::kStaleRelease: return "stale_release";
    case Op::kMismatchedRelease: return "mismatched_release";
    case Op::kMark: return "mark";
    case Op::kAbort: return "abort";
    case Op::kCancel: return "cancel";
  }
  return "?";
}

bool FlightRecorder::ParseOp(std::string_view text, Op* out) {
  for (const Op op : {Op::kAccept, Op::kGrant, Op::kRelease,
                      Op::kStaleRelease, Op::kMismatchedRelease, Op::kMark,
                      Op::kAbort, Op::kCancel}) {
    if (text == ToString(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

FlightRecorder::FlightRecorder(int shards, std::size_t capacity_per_shard) {
  NETLOCK_CHECK(shards >= 1);
  std::size_t cap = 16;
  while (cap < capacity_per_shard) cap <<= 1;
  capacity_ = cap;
  rings_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    rings_.push_back(std::make_unique<Ring>(cap));
  }
}

FlightRecorder::~FlightRecorder() { DisarmFatalDump(); }

std::uint64_t FlightRecorder::recorded() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->next.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  std::vector<Event> out;
  for (const auto& ring : rings_) {
    const std::uint64_t next = ring->next.load(std::memory_order_acquire);
    const std::uint64_t first =
        next > capacity_ ? next - capacity_ : 0;
    for (std::uint64_t seq = first; seq < next; ++seq) {
      out.push_back(ring->slots[seq & ring->mask]);
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  });
  return out;
}

std::string FlightRecorder::ToText() const {
  const std::vector<Event> events = Snapshot();
  std::ostringstream out;
  out << "# netlock flight recorder v1\n";
  out << "# shards=" << shards() << " capacity=" << capacity_
      << " events=" << events.size() << " recorded=" << recorded() << "\n";
  char line[192];
  for (const Event& ev : events) {
    std::snprintf(line, sizeof(line),
                  "ev ts=%" PRIu64 " shard=%u seq=%" PRIu64
                  " op=%s lock=%u mode=%c txn=%" PRIu64 " client=%u\n",
                  ev.ts, static_cast<unsigned>(ev.shard), ev.seq,
                  ToString(ev.op), ev.lock,
                  ev.mode == LockMode::kExclusive ? 'X' : 'S', ev.txn,
                  ev.client);
    out << line;
  }
  return out.str();
}

std::string FlightRecorder::ToJson() const {
  const std::vector<Event> events = Snapshot();
  std::ostringstream out;
  out << "{\n  \"flight_recorder\": {\"shards\": " << shards()
      << ", \"capacity_per_shard\": " << capacity_
      << ", \"recorded\": " << recorded() << "},\n";
  out << "  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& ev = events[i];
    out << "    {\"ts\": " << ev.ts << ", \"shard\": " << ev.shard
        << ", \"seq\": " << ev.seq << ", \"op\": \"" << ToString(ev.op)
        << "\", \"lock\": " << ev.lock << ", \"mode\": \""
        << (ev.mode == LockMode::kExclusive ? "X" : "S")
        << "\", \"txn\": " << ev.txn << ", \"client\": " << ev.client << "}"
        << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "flight_recorder: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "flight_recorder: write to %s failed\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool FlightRecorder::WriteText(const std::string& path) const {
  return WriteFile(path, ToText());
}

bool FlightRecorder::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

bool FlightRecorder::Dump(const std::string& path_prefix) const {
  const bool text_ok = WriteText(path_prefix + ".txt");
  const bool json_ok = WriteJson(path_prefix + ".json");
  return text_ok && json_ok;
}

bool FlightRecorder::ParseText(std::string_view text,
                               std::vector<Event>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string line(text.substr(pos, end - pos));
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    Event ev;
    unsigned shard = 0;
    char op_buf[32] = {0};
    char mode = 'X';
    const int n = std::sscanf(
        line.c_str(),
        "ev ts=%" SCNu64 " shard=%u seq=%" SCNu64
        " op=%31s lock=%u mode=%c txn=%" SCNu64 " client=%u",
        &ev.ts, &shard, &ev.seq, op_buf, &ev.lock, &mode, &ev.txn,
        &ev.client);
    if (n != 8) return false;
    if (!ParseOp(op_buf, &ev.op)) return false;
    if (mode != 'X' && mode != 'S') return false;
    ev.shard = static_cast<std::uint16_t>(shard);
    ev.mode = mode == 'X' ? LockMode::kExclusive : LockMode::kShared;
    out->push_back(ev);
  }
  return true;
}

// --- Fatal-path dumping --------------------------------------------------

namespace {

std::atomic<FlightRecorder*> g_armed{nullptr};
std::atomic<bool> g_fatal_dumped{false};
std::mutex g_arm_mu;
std::string g_arm_prefix;  // Guarded by g_arm_mu; read by the fatal path.

extern "C" void FlightRecorderSignalHandler(int sig) {
  FlightRecorder::FatalDumpNow();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void InstallFatalHandlers() {
  static bool installed = false;  // Guarded by g_arm_mu.
  if (installed) return;
  installed = true;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    std::signal(sig, &FlightRecorderSignalHandler);
  }
}

}  // namespace

void FlightRecorder::FatalDumpNow() {
  if (g_fatal_dumped.exchange(true)) return;
  FlightRecorder* recorder = g_armed.load(std::memory_order_acquire);
  if (recorder == nullptr) return;
  // Not async-signal-safe (allocates, does buffered I/O); best effort on
  // the way down — see the header contract.
  recorder->Dump(g_arm_prefix);
  std::fprintf(stderr, "flight_recorder: dumped %s.txt / %s.json\n",
               g_arm_prefix.c_str(), g_arm_prefix.c_str());
}

void FlightRecorder::ArmFatalDump(std::string path_prefix) {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  g_arm_prefix = std::move(path_prefix);
  g_fatal_dumped.store(false);
  g_armed.store(this, std::memory_order_release);
  SetCheckFailureHook(&FlightRecorder::FatalDumpNow);
  InstallFatalHandlers();
}

void FlightRecorder::DisarmFatalDump() {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  FlightRecorder* expected = this;
  if (g_armed.compare_exchange_strong(expected, nullptr)) {
    SetCheckFailureHook(nullptr);
  }
}

}  // namespace netlock
