#include "common/timeseries.h"

#include "common/check.h"

namespace netlock {

TimeSeriesStore::TimeSeriesStore(SimTime interval) : interval_(interval) {
  NETLOCK_CHECK(interval_ > 0);
}

void TimeSeriesStore::Watch(std::string name, const MetricCounter& counter) {
  NETLOCK_CHECK(!begun_);
  Series s;
  s.name = std::move(name);
  s.is_rate = true;
  s.counter = &counter;
  series_.push_back(std::move(s));
}

void TimeSeriesStore::WatchGauge(std::string name, const MetricGauge& gauge) {
  NETLOCK_CHECK(!begun_);
  Series s;
  s.name = std::move(name);
  s.is_rate = false;
  s.gauge = &gauge;
  series_.push_back(std::move(s));
}

void TimeSeriesStore::Begin(SimTime start_time) {
  NETLOCK_CHECK(!begun_);
  begun_ = true;
  start_time_ = start_time;
  for (Series& s : series_) {
    if (s.is_rate) s.last = s.counter->value();
  }
}

void TimeSeriesStore::Tick() {
  NETLOCK_CHECK(begun_);
  for (Series& s : series_) {
    if (s.is_rate) {
      const std::uint64_t v = s.counter->value();
      s.deltas.push_back(v - s.last);
      s.last = v;
    } else {
      s.deltas.push_back(s.gauge->value());
    }
  }
}

double TimeSeriesStore::BucketTimeSeconds(std::size_t b) const {
  const double bucket_ns = static_cast<double>(interval_);
  return (static_cast<double>(start_time_) +
          (static_cast<double>(b) + 0.5) * bucket_ns) /
         1e9;
}

double TimeSeriesStore::Value(std::size_t s, std::size_t b) const {
  const Series& series = series_[s];
  const double raw = static_cast<double>(series.deltas[b]);
  if (!series.is_rate) return raw;
  return raw / (static_cast<double>(interval_) / 1e9);
}

}  // namespace netlock
