#include "common/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricCounter& MetricsRegistry::Counter(const std::string& name) {
  const std::string full = prefix_.empty() ? name : prefix_ + name;
  std::lock_guard<std::mutex> lock(mu_);
  NETLOCK_CHECK(gauges_.find(full) == gauges_.end());
  return counters_[full];
}

MetricGauge& MetricsRegistry::Gauge(const std::string& name) {
  const std::string full = prefix_.empty() ? name : prefix_ + name;
  std::lock_guard<std::mutex> lock(mu_);
  NETLOCK_CHECK(counters_.find(full) == counters_.end());
  return gauges_[full];
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + 2 * gauges_.size());
  for (const auto& [name, counter] : counters_) {
    samples.push_back(MetricSample{name, counter.value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    samples.push_back(MetricSample{name, gauge.value()});
    samples.push_back(MetricSample{name + ".hwm", gauge.high_water()});
  }
  // Each map iterates sorted, but counters and gauges interleave in the
  // global name order only after an explicit merge.
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Lock ordering: the destination first, then the (quiescent) source.
  std::lock_guard<std::mutex> lock(mu_);
  std::lock_guard<std::mutex> other_lock(other.mu_);
  // Names in `other` are already fully resolved: bypass the prefix.
  for (const auto& [name, counter] : other.counters_) {
    NETLOCK_CHECK(gauges_.find(name) == gauges_.end());
    counters_[name].Inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    NETLOCK_CHECK(counters_.find(name) == counters_.end());
    MetricGauge& mine = gauges_[name];
    mine.value_.store(gauge.value(), std::memory_order_relaxed);
    mine.ObserveHighWater(gauge.high_water());
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge.value_.store(0, std::memory_order_relaxed);
    gauge.high_water_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace netlock
