#include "common/tracelog.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace netlock {

const char* ToString(TraceTrack track) {
  switch (track) {
    case TraceTrack::kClient: return "client";
    case TraceTrack::kNetwork: return "network";
    case TraceTrack::kPipeline: return "pipeline";
    case TraceTrack::kQueue: return "shared-queue";
    case TraceTrack::kServer: return "server";
  }
  return "unknown";
}

TraceLog& TraceLog::Global() {
  static TraceLog log;
  return log;
}

void TraceLog::Enable(std::uint32_t sample_every) {
  enabled_ = true;
  sample_every_ = sample_every == 0 ? 1 : sample_every;
}

void TraceLog::Disable() { enabled_ = false; }

namespace {

/// Thread-local pointer to the thread's buffer in one TraceLog, validated
/// by the log's instance id. Single-slot: a thread alternating between two
/// live logs re-registers (mutex lookup) on each switch, which only the
/// multi-context sweep harness does — and only at setup.
struct TlsBufferCache {
  std::uint64_t log_id = 0;
  void* buffer = nullptr;
};
thread_local TlsBufferCache t_trace_buffer;

}  // namespace

TraceLog::ThreadBuffer& TraceLog::LocalBuffer() {
  if (t_trace_buffer.log_id == id_) {
    return *static_cast<ThreadBuffer*>(t_trace_buffer.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      by_thread_.try_emplace(std::this_thread::get_id(), nullptr);
  if (inserted) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    it->second = buffers_.back().get();
  }
  t_trace_buffer.log_id = id_;
  t_trace_buffer.buffer = it->second;
  return *it->second;
}

void TraceLog::Flush() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    if (!buf->events.empty()) {
      merged_.insert(merged_.end(), buf->events.begin(), buf->events.end());
      buf->events.clear();
    }
    dropped_ += buf->dropped;
    buf->dropped = 0;
  }
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  merged_.clear();
  dropped_ = 0;
  // Unclaim every buffer's unused budget along with the stored events so
  // the full capacity is available again.
  for (const auto& buf : buffers_) {
    buf->events.clear();
    buf->dropped = 0;
    buf->budget = 0;
  }
  stored_.store(0, std::memory_order_relaxed);
}

void TraceLog::Push(TraceEvent event) {
  if (!enabled_) return;
  event.pid = current_pid_;
  ThreadBuffer& buf = LocalBuffer();
  if (buf.budget == 0) {
    // Claim another budget chunk from the shared capacity — the only
    // shared-cacheline touch on this path, once per kBudgetChunk events.
    std::size_t cur = stored_.load(std::memory_order_relaxed);
    std::size_t claim;
    do {
      if (cur >= capacity_) {
        ++buf.dropped;
        return;
      }
      claim = std::min(kBudgetChunk, capacity_ - cur);
    } while (!stored_.compare_exchange_weak(cur, cur + claim,
                                            std::memory_order_relaxed));
    buf.budget = claim;
  }
  --buf.budget;
  buf.events.push_back(event);
}

void TraceLog::SetPidName(std::uint32_t pid, const char* name) {
  for (auto& [p, n] : pid_names_) {
    if (p == pid) {
      n = name;
      return;
    }
  }
  pid_names_.emplace_back(pid, name);
  std::sort(pid_names_.begin(), pid_names_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

void TraceLog::Instant(TraceTrack track, const char* name, SimTime ts,
                       std::uint64_t id, TraceArg a0, TraceArg a1) {
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.track = track;
  event.ts = ts;
  event.id = id;
  event.arg0 = a0;
  event.arg1 = a1;
  Push(event);
}

void TraceLog::Complete(TraceTrack track, const char* name, SimTime start,
                        SimTime end, std::uint64_t id, TraceArg a0,
                        TraceArg a1) {
  TraceEvent event;
  event.name = name;
  event.phase = 'X';
  event.track = track;
  event.ts = start;
  event.dur = end >= start ? end - start : 0;
  event.id = id;
  event.arg0 = a0;
  event.arg1 = a1;
  Push(event);
}

void TraceLog::AsyncBegin(TraceTrack track, const char* name, SimTime ts,
                          std::uint64_t id) {
  TraceEvent event;
  event.name = name;
  event.phase = 'b';
  event.track = track;
  event.ts = ts;
  event.id = id;
  Push(event);
}

void TraceLog::AsyncEnd(TraceTrack track, const char* name, SimTime ts,
                        std::uint64_t id) {
  TraceEvent event;
  event.name = name;
  event.phase = 'e';
  event.track = track;
  event.ts = ts;
  event.id = id;
  Push(event);
}

namespace {

/// Nanoseconds -> the trace-event microsecond unit, with full precision
/// and no floating-point formatting variance ("12.345" for 12345 ns).
void AppendMicros(std::ostringstream& out, SimTime nanos) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, nanos / 1000,
                nanos % 1000);
  out << buf;
}

void AppendArgs(std::ostringstream& out, const TraceEvent& event) {
  if (event.id == 0 && event.arg0.key == nullptr) return;
  out << ",\"args\":{";
  bool first = true;
  if (event.id != 0) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, event.id);
    out << "\"req\":\"" << buf << "\"";
    first = false;
  }
  for (const TraceArg* arg : {&event.arg0, &event.arg1}) {
    if (arg->key == nullptr) continue;
    if (!first) out << ",";
    out << "\"" << arg->key << "\":" << arg->value;
    first = false;
  }
  out << "}";
}

}  // namespace

std::string TraceLog::ToJson() const {
  // Stable sort by timestamp: retrospective spans are recorded when they
  // end but must appear at their start time, and determinism requires a
  // reproducible order for equal timestamps (insertion order, which the
  // single-threaded simulator fixes).
  const std::vector<TraceEvent>& all = events();
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(all.size());
  for (const TraceEvent& event : all) sorted.push_back(&event);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"netlock-sim\",\"dropped_events\":"
      << dropped() << "}}";
  // Named pids (multi-rack runs) get their own process groups; pid 0 keeps
  // the default name above.
  for (const auto& [pid, name] : pid_names_) {
    if (pid == 0) continue;
    out << ",\n{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << name
        << "\"}}";
  }
  std::vector<std::uint32_t> pids{0};
  for (const auto& [pid, name] : pid_names_) {
    if (pid != 0) pids.push_back(pid);
  }
  for (const std::uint32_t pid : pids) {
    for (const TraceTrack track :
         {TraceTrack::kClient, TraceTrack::kNetwork, TraceTrack::kPipeline,
          TraceTrack::kQueue, TraceTrack::kServer}) {
      out << ",\n{\"ph\":\"M\",\"pid\":" << pid
          << ",\"tid\":" << static_cast<int>(track)
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << ToString(track) << "\"}}";
    }
  }
  for (const TraceEvent* event : sorted) {
    out << ",\n{\"ph\":\"" << event->phase << "\",\"pid\":" << event->pid
        << ",\"tid\":"
        << static_cast<int>(event->track) << ",\"name\":\"" << event->name
        << "\",\"cat\":\"" << ToString(event->track) << "\",\"ts\":";
    AppendMicros(out, event->ts);
    if (event->phase == 'X') {
      out << ",\"dur\":";
      AppendMicros(out, event->dur);
    }
    if (event->phase == 'b' || event->phase == 'e') {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, event->id);
      out << ",\"id\":\"" << buf << "\"";
    }
    AppendArgs(out, *event);
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

bool TraceLog::WriteTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "tracelog: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "tracelog: write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace netlock
