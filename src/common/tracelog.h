// Request-lifecycle tracing over the deterministic simulator.
//
// Every lock request is identified by its (lock id, transaction id) pair —
// already carried in every wire message — so spans recorded independently
// by the client, the network, the switch pipeline, the shared queue, and
// the lock server correlate into one request timeline without widening the
// wire header. The exporter writes Chrome trace-event JSON that loads
// directly in chrome://tracing and Perfetto, with one track (tid) per
// pipeline stage.
//
// Design goals, in order:
//   1. Zero cost when disabled. `enabled()` is a single branch on a plain
//      bool; components cache the Global() pointer once (like metrics.h
//      instruments) and guard every span computation behind it.
//   2. Determinism. Timestamps come from Simulator::now(), sampling is a
//      pure hash of the request id, and the exporter stable-sorts by
//      timestamp — two identical runs produce byte-identical traces.
//   3. Bounded memory. Recording stops at a capacity cap (events beyond it
//      are counted, not stored), so tracing a long bench cannot OOM.
//
// Thread-safety: recording (Push) appends to a per-thread span buffer, so
// real-thread backends (src/rt/) record without taking any lock on the hot
// path — a thread's first Push registers its buffer under a mutex, and
// afterwards a record is a thread-local cache hit plus a vector append.
// The capacity cap is enforced through a shared budget counter claimed in
// chunks, so the shared cacheline is touched once per kBudgetChunk events
// (exact cap single-threaded; within one chunk per thread concurrently).
// Buffers are merged, in registration order, when anything reads the log
// (size / events / ToJson / Clear) — collection is a teardown-time
// operation: call it with no recorders running. A single-threaded run has
// exactly one buffer, so flushing preserves insertion order and the
// exporter's byte-identical determinism. Enable / Disable / SetCapacity /
// pid labels are setup-time operations.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"

namespace netlock {

/// One track per request-path stage; exported as the event's tid with a
/// thread_name metadata record, so Perfetto groups spans by stage.
enum class TraceTrack : std::uint8_t {
  kClient = 1,    ///< Session issue/RTT/retransmit events.
  kNetwork = 2,   ///< Per-packet wire spans (send -> deliver).
  kPipeline = 3,  ///< Switch pipeline passes/resubmits.
  kQueue = 4,     ///< Shared-queue enqueue and wait-for-grant spans.
  kServer = 5,    ///< Lock-server service, overflow (q2) and grants.
};

const char* ToString(TraceTrack track);

/// Optional numeric argument attached to an event ({"args": {key: value}}).
struct TraceArg {
  const char* key = nullptr;  ///< Static string; nullptr = absent.
  std::uint64_t value = 0;
};

/// One recorded event. `name`/category strings must be static (string
/// literals): events store the pointer, never a copy.
struct TraceEvent {
  const char* name = nullptr;
  char phase = 'i';  ///< 'X' complete, 'i' instant, 'b'/'e' async pair.
  TraceTrack track = TraceTrack::kClient;
  /// Exported as the trace-event pid: groups spans by rack (process). 0 is
  /// the default group (clients + fabric in single-rack runs); multi-rack
  /// harnesses label each rack's switch/servers with pid = rack + 1.
  std::uint32_t pid = 0;
  SimTime ts = 0;   ///< Start time (ns of simulated time).
  SimTime dur = 0;  ///< Duration, 'X' events only.
  std::uint64_t id = 0;  ///< Request correlation id (0 = none).
  TraceArg arg0;
  TraceArg arg1;
};

class TraceLog {
 public:
  TraceLog() : id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {}
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// The process-wide log the simulator components record into.
  static TraceLog& Global();

  /// Starts recording. `sample_every` = N records roughly 1/N of requests
  /// (selected by request-id hash, so every component keeps or drops the
  /// same request); 1 records everything.
  void Enable(std::uint32_t sample_every = 1);
  void Disable();
  bool enabled() const { return enabled_; }
  std::uint32_t sample_every() const { return sample_every_; }

  /// Stable correlation id for one lock request. Retransmissions share it:
  /// they are the same logical request.
  static std::uint64_t RequestId(LockId lock, TxnId txn) {
    std::uint64_t h = (txn + 0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(lock) * 0xff51afd7ed558ccdull);
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 29;
    return h | 1;  // Never 0: 0 means "no id".
  }

  /// True when this request's events should be recorded (enabled and the
  /// request falls in the sample). The deciding hash is shared by every
  /// component, so a sampled request is traced end to end.
  bool Sampled(LockId lock, TxnId txn) const {
    if (!enabled_) return false;
    // The low bit of the id is forced to 1 (see RequestId), so the
    // sampling decision uses the bits above it.
    return sample_every_ <= 1 ||
           (RequestId(lock, txn) >> 1) % sample_every_ == 0;
  }

  /// Caps stored events; further records are counted in dropped().
  void SetCapacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }

  // --- Per-rack labels (multi-rack topologies) ---

  /// Every event recorded from now on is stamped with this pid. Rack-owned
  /// components read the current pid at construction and re-assert it (via
  /// PidScope) when they handle a packet, so one shared log splits cleanly
  /// by rack. Pid 0 is the default group (clients and the fabric).
  void SetCurrentPid(std::uint32_t pid) { current_pid_ = pid; }
  std::uint32_t current_pid() const { return current_pid_; }

  /// Names a pid for the exporter's process_name metadata ("rack0", ...).
  /// `name` must be a static string.
  void SetPidName(std::uint32_t pid, const char* name);

  /// RAII pid for one handler invocation: restores the previous pid on
  /// destruction, so nested handlers (switch forwarding to a server within
  /// the same event cascade) label correctly.
  class PidScope {
   public:
    PidScope(TraceLog& log, std::uint32_t pid)
        : log_(log), saved_(log.current_pid()) {
      log_.SetCurrentPid(pid);
    }
    ~PidScope() { log_.SetCurrentPid(saved_); }
    PidScope(const PidScope&) = delete;
    PidScope& operator=(const PidScope&) = delete;

   private:
    TraceLog& log_;
    std::uint32_t saved_;
  };

  // --- Recording (no-ops when disabled) ---

  void Instant(TraceTrack track, const char* name, SimTime ts,
               std::uint64_t id = 0, TraceArg a0 = {}, TraceArg a1 = {});

  /// A span with both endpoints known at record time ('X' complete event).
  /// Most spans here are retrospective: the component emits them when the
  /// span ends (e.g., queue wait is emitted at grant, stamped with the
  /// enqueue time).
  void Complete(TraceTrack track, const char* name, SimTime start,
                SimTime end, std::uint64_t id = 0, TraceArg a0 = {},
                TraceArg a1 = {});

  /// Async begin/end pair correlated by (name, id): spans whose end is not
  /// known at begin time, e.g. the whole client-observed request lifetime.
  void AsyncBegin(TraceTrack track, const char* name, SimTime ts,
                  std::uint64_t id);
  void AsyncEnd(TraceTrack track, const char* name, SimTime ts,
                std::uint64_t id);

  // --- Inspection / export (flushes per-thread buffers; call with no
  // recorders running) ---

  std::size_t size() const {
    Flush();
    return merged_.size();
  }
  std::uint64_t dropped() const {
    Flush();
    return dropped_;
  }
  const std::vector<TraceEvent>& events() const {
    Flush();
    return merged_;
  }

  /// Drops all recorded events (enable state is unchanged).
  void Clear();

  /// Chrome trace-event JSON (object form with "traceEvents"), events
  /// stable-sorted by timestamp. Timestamps are exported in microseconds
  /// (the trace-event unit) with nanosecond precision.
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false (with a message on stderr)
  /// on I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  /// Shared-capacity budget claimed per thread in chunks: the only shared
  /// write a recording thread makes, amortized to once per kBudgetChunk
  /// events.
  static constexpr std::size_t kBudgetChunk = 256;

  struct ThreadBuffer {
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::size_t budget = 0;  ///< Capacity claimed but not yet used.
  };

  void Push(TraceEvent event);
  /// The calling thread's buffer (registered under mu_ on first use, then
  /// found via a thread-local cache keyed by the log's instance id).
  ThreadBuffer& LocalBuffer();
  /// Merges every thread buffer into merged_ in registration order.
  void Flush() const;

  /// Process-unique instance ids validate the thread-local buffer cache
  /// (a destroyed log's id never matches a live one).
  static inline std::atomic<std::uint64_t> next_id_{1};
  const std::uint64_t id_;

  /// Guards buffer registration and collection — never taken by a Push
  /// that hits the thread-local cache.
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::uint32_t sample_every_ = 1;
  std::uint32_t current_pid_ = 0;
  std::size_t capacity_ = 2'000'000;
  /// Events stored across all buffers + merged_ (budget-claim counter).
  std::atomic<std::size_t> stored_{0};
  mutable std::uint64_t dropped_ = 0;
  mutable std::vector<TraceEvent> merged_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<std::thread::id, ThreadBuffer*> by_thread_;
  /// pid -> process name for the exporter (sorted for determinism).
  std::vector<std::pair<std::uint32_t, const char*>> pid_names_;
};

}  // namespace netlock
