#include "common/random.h"

#include <cmath>

namespace netlock {

double Rng::NextExponential(double mean) {
  // Inverse-CDF; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

namespace {
// Helper used by the rejection-inversion scheme: the integral of x^-alpha.
double HIntegral(double x, double alpha) {
  const double log_x = std::log(x);
  if (std::abs(1.0 - alpha) < 1e-12) return log_x;
  return std::expm1((1.0 - alpha) * log_x) / (1.0 - alpha);
}

double HIntegralInverse(double x, double alpha) {
  if (std::abs(1.0 - alpha) < 1e-12) return std::exp(x);
  double t = x * (1.0 - alpha);
  if (t < -1.0) t = -1.0;  // Numerical guard.
  return std::exp(std::log1p(t) / (1.0 - alpha));
}
}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  NETLOCK_CHECK(n >= 1);
  NETLOCK_CHECK(alpha >= 0.0);
  h_x1_ = HIntegral(1.5, alpha_) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, alpha_);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5, alpha_) - std::pow(2.0, -alpha_),
                              alpha_);
}

double ZipfSampler::H(double x) const { return HIntegral(x, alpha_); }

double ZipfSampler::HInverse(double x) const {
  return HIntegralInverse(x, alpha_);
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (alpha_ == 0.0) return rng.NextBounded(n_);
  // Hörmann & Derflinger rejection-inversion. Returns rank in [1, n], which
  // we shift to [0, n).
  for (;;) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ ||
        u >= H(kd + 0.5) - std::exp(-alpha_ * std::log(kd))) {
      return k - 1;
    }
  }
}

}  // namespace netlock
