#include "switchsim/pipeline.h"

namespace netlock {

PacketPass Pipeline::BeginPass() {
  PacketPass pass;
  pass.token_ = next_token_++;
  pass.pass_index_ = 0;
  pass.last_stage_ = -1;
  pass.pipeline_ = this;
  passes_metric_->Inc();
  return pass;
}

void Pipeline::Resubmit(PacketPass& pass) {
  NETLOCK_CHECK(pass.pipeline_ == this);
  ++total_resubmits_;
  passes_metric_->Inc();
  resubmits_metric_->Inc();
  ++pass.pass_index_;
  if (max_resubmits_ != 0) {
    NETLOCK_CHECK(pass.pass_index_ <= max_resubmits_);
  }
  pass.token_ = next_token_++;
  pass.last_stage_ = -1;
}

}  // namespace netlock
