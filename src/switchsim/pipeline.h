// Programmable-switch data plane model.
//
// This is the architectural substrate the NetLock module is written against,
// standing in for the Tofino ASIC. It enforces the two constraints that
// shaped the paper's design (Section 4.2):
//
//   1. A packet pass may access each register array at most once, and a
//      single read-modify-write counts as that one access. This is why the
//      paper needs resubmit to dequeue-then-inspect a queue head.
//   2. Arrays live in pipeline stages and a pass visits stages in order, so
//      an array in an earlier stage cannot be touched after one in a later
//      stage. This is why per-priority queues are laid out one per stage.
//
// `resubmit` sends the packet through the pipeline again (a fresh pass) with
// carried metadata, exactly like the Tofino resubmit primitive the paper
// uses to grant consecutive shared locks.
//
// Violations abort in debug builds (NETLOCK_DCHECK), turning data-plane
// programming errors into immediate test failures rather than silently
// producing designs that could not compile to hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/sim_context.h"

namespace netlock {

class Pipeline;

/// Tracks one packet's trip(s) through the pipeline: which arrays were
/// touched this pass, the current stage watermark, and the resubmit count.
class PacketPass {
 public:
  std::uint32_t pass_index() const { return pass_index_; }
  std::uint64_t token() const { return token_; }
  int last_stage() const { return last_stage_; }

 private:
  friend class Pipeline;
  template <typename T>
  friend class RegisterArray;

  std::uint64_t token_ = 0;   // Unique per pass; stamps array accesses.
  std::uint32_t pass_index_ = 0;
  int last_stage_ = -1;
  Pipeline* pipeline_ = nullptr;
};

/// Factory/registry for register arrays and packet passes.
class Pipeline {
 public:
  /// `num_stages`: hardware stage budget (Tofino-class switches have 10-20
  /// stages; the paper relies on this for priority queues).
  /// `max_resubmits`: bound on pipeline re-entries per packet. The E->S
  /// grant chain in Algorithm 2 resubmits once per granted shared lock, so
  /// this must be at least the largest shared-grant batch; 0 disables the
  /// check (logically unbounded, as recirculation is in practice).
  /// `context` = nullptr reports into SimContext::Default().
  explicit Pipeline(int num_stages = 12, std::uint32_t max_resubmits = 0,
                    SimContext* context = nullptr)
      : num_stages_(num_stages), max_resubmits_(max_resubmits) {
    MetricsRegistry& reg =
        (context != nullptr ? *context : SimContext::Default()).metrics();
    passes_metric_ = &reg.Counter("switchsim.passes");
    resubmits_metric_ = &reg.Counter("switchsim.resubmits");
    accesses_metric_ = &reg.Counter("switchsim.register_accesses");
  }

  int num_stages() const { return num_stages_; }

  /// Begins a fresh pass for a newly arrived packet.
  PacketPass BeginPass();

  /// Re-enters the pipeline: resets per-pass access state, keeps the packet
  /// identity, increments the resubmit counter.
  void Resubmit(PacketPass& pass);

  std::uint64_t total_resubmits() const { return total_resubmits_; }

 private:
  template <typename T>
  friend class RegisterArray;

  int RegisterArrayInStage(int stage) {
    NETLOCK_CHECK(stage >= 0 && stage < num_stages_);
    return next_array_id_++;
  }

  void CountRegisterAccess() { accesses_metric_->Inc(); }

  int num_stages_;
  std::uint32_t max_resubmits_;
  int next_array_id_ = 0;
  std::uint64_t next_token_ = 1;
  std::uint64_t total_resubmits_ = 0;
  // "passes" counts every pipeline traversal (BeginPass and Resubmit both).
  MetricCounter* passes_metric_;
  MetricCounter* resubmits_metric_;
  MetricCounter* accesses_metric_;
};

/// A stateful register array bound to one pipeline stage. Mirrors the P4
/// `register` extern: fixed size, index-addressed, one access per pass.
template <typename T>
class RegisterArray {
 public:
  RegisterArray(Pipeline& pipeline, int stage, std::size_t size,
                T initial = T{})
      : pipeline_(pipeline),
        stage_(stage),
        array_id_(pipeline.RegisterArrayInStage(stage)),
        cells_(size, initial) {}

  std::size_t size() const { return cells_.size(); }
  int stage() const { return stage_; }

  /// Reads cell `idx`. Counts as this pass's single access to the array.
  const T& Read(PacketPass& pass, std::size_t idx) {
    NoteAccess(pass, idx);
    return cells_[idx];
  }

  /// Writes cell `idx`. Counts as this pass's single access to the array.
  void Write(PacketPass& pass, std::size_t idx, T value) {
    NoteAccess(pass, idx);
    cells_[idx] = std::move(value);
  }

  /// Atomic read-modify-write of cell `idx` — one ALU operation in hardware,
  /// and therefore one access. `fn` receives a mutable reference and may
  /// return a value to carry out of the stage.
  template <typename Fn>
  auto ReadModifyWrite(PacketPass& pass, std::size_t idx, Fn&& fn) {
    NoteAccess(pass, idx);
    return fn(cells_[idx]);
  }

  /// Control-plane access: the switch CPU reads/writes registers out-of-band
  /// (the paper's control plane polls lease timestamps and rewrites queue
  /// boundaries this way). Not subject to per-pass constraints.
  T& ControlRead(std::size_t idx) {
    NETLOCK_CHECK(idx < cells_.size());
    return cells_[idx];
  }
  void ControlWrite(std::size_t idx, T value) {
    NETLOCK_CHECK(idx < cells_.size());
    cells_[idx] = std::move(value);
  }

 private:
  void NoteAccess(PacketPass& pass, std::size_t idx) {
    NETLOCK_CHECK(idx < cells_.size());
    NETLOCK_DCHECK(pass.pipeline_ == &pipeline_);
    // One access per array per pass.
    NETLOCK_DCHECK(last_access_token_ != pass.token_);
    // Stage ordering: cannot go backwards within a pass.
    NETLOCK_DCHECK(stage_ >= pass.last_stage_);
    last_access_token_ = pass.token_;
    pass.last_stage_ = stage_;
    pipeline_.CountRegisterAccess();
  }

  Pipeline& pipeline_;
  int stage_;
  [[maybe_unused]] int array_id_;
  std::uint64_t last_access_token_ = 0;
  std::vector<T> cells_;
};

}  // namespace netlock
