#include "server/lock_server.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

LockServer::LockServer(Network& net, LockServerConfig config)
    : net_(net),
      config_(config),
      substrate_(net.sim()),
      trace_(&net.sim().context().trace()),
      trace_pid_(net.sim().context().trace().current_pid()),
      engine_(*this) {
  NETLOCK_CHECK(config_.cores >= 1);
  engine_.set_deadlock_policy(config_.deadlock_policy);
  MetricsRegistry& reg = net_.sim().context().metrics();
  metrics_.grants = &reg.Counter("server.grants");
  metrics_.releases = &reg.Counter("server.releases");
  metrics_.buffered = &reg.Counter("server.q2_buffered");
  metrics_.pushes = &reg.Counter("server.q2_pushes");
  metrics_.requests = &reg.Counter("server.requests_processed");
  metrics_.q2_depth = &reg.Gauge("server.q2_depth");
  node_ = net_.AddNode([this](const Packet& pkt) { OnPacket(pkt); });
  release_filter_.assign(config_.release_filter_slots, 0);
  cores_.reserve(config_.cores);
  for (int i = 0; i < config_.cores; ++i) {
    cores_.push_back(std::make_unique<ServiceQueue>(
        net_.sim(), config_.per_request_service));
  }
}

int LockServer::CoreFor(LockId lock) const {
  // RSS: the NIC hashes the lock id in the header onto a receive queue, so
  // all requests for one lock land on one core (no cross-core locking).
  std::uint64_t h = lock;
  h ^= h >> 16;
  h *= 0x45d9f3b;
  h ^= h >> 16;
  return static_cast<int>(h % static_cast<std::uint64_t>(config_.cores));
}

SimTime LockServer::CoreBusyUntil(int core) const {
  NETLOCK_CHECK(core >= 0 && core < config_.cores);
  return cores_[core]->busy_until();
}

void LockServer::OnPacket(const Packet& pkt) {
  if (failed_) return;  // Crashed: everything is dropped.
  TraceLog::PidScope pid_scope(*trace_, trace_pid_);
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr) return;
  // Dispatch to the RSS core; processing happens after the CPU service time.
  const int core = CoreFor(hdr->lock_id);
  if (trace_->Sampled(hdr->lock_id, hdr->txn_id)) {
    // The service span is fully determined at submit time: the core works
    // FIFO at a fixed per-request service time (see ServiceQueue).
    const SimTime now = net_.sim().now();
    const SimTime busy = cores_[core]->busy_until();
    const SimTime start = busy > now ? busy : now;
    trace_->Complete(TraceTrack::kServer, "server.service", start,
                     start + config_.per_request_service,
                     TraceLog::RequestId(hdr->lock_id, hdr->txn_id),
                     {"core", static_cast<std::uint64_t>(core)},
                     {"core_wait", start - now});
  }
  cores_[core]->Submit([this, hdr = *hdr]() { Process(hdr); });
}

void LockServer::AdjustQ2Depth(std::int64_t delta) {
  metrics_.q2_depth->Add(delta);
}

void LockServer::Process(const LockHeader& hdr) {
  TraceLog::PidScope pid_scope(*trace_, trace_pid_);
  ++stats_.requests_processed;
  metrics_.requests->Inc();
  switch (hdr.op) {
    case LockOp::kAcquire:
      if ((hdr.flags & kFlagBufferOnly) != 0 && !engine_.Owns(hdr.lock_id)) {
        ProcessBufferOnly(hdr);
      } else {
        ProcessOwnedAcquire(hdr);
      }
      break;
    case LockOp::kRelease:
      ProcessOwnedRelease(hdr);
      break;
    case LockOp::kCancel:
      ProcessCancel(hdr);
      break;
    case LockOp::kQueueEmpty:
      ProcessQueueEmpty(hdr);
      break;
    default:
      break;
  }
}

void LockServer::ProcessOwnedAcquire(const LockHeader& hdr) {
  const SimTime now = substrate_.Now();
  if (!engine_.Owns(hdr.lock_id) && now < grace_until_) {
    // Fresh ownership inherited from a failed peer: queue without granting
    // until the dead server's leases have expired (§4.5).
    engine_.SetPaused(hdr.lock_id, true);
    graced_locks_.push_back(hdr.lock_id);
  }
  QueueSlot slot;
  slot.mode = hdr.mode;
  slot.txn_id = hdr.txn_id;
  slot.client_node = hdr.client_node;
  slot.tenant = hdr.tenant;
  engine_.Acquire(hdr.lock_id, slot, now);
}

void LockServer::ProcessOwnedRelease(const LockHeader& hdr) {
  // Retransmission dedup: the engine's queue pop does not check transaction
  // IDs for shared entries, so a duplicated RELEASE would dequeue some
  // other waiter's entry.
  if (!release_filter_.empty()) {
    const std::uint64_t fp = ReleaseFingerprint(hdr);
    std::uint64_t& reg =
        release_filter_[static_cast<std::size_t>(fp %
                                                 release_filter_.size())];
    if (reg == fp) {
      ++stats_.duplicate_releases;
      return;
    }
    reg = fp;  // Collisions just evict: the filter is best-effort.
  }
  switch (engine_.Release(hdr.lock_id, hdr.mode, hdr.txn_id,
                          /*lease_forced=*/false, substrate_.Now())) {
    case ReleaseOutcome::kApplied:
      ++stats_.releases;
      metrics_.releases->Inc();
      break;
    case ReleaseOutcome::kStale:
      ++stats_.stale_releases;
      break;
    case ReleaseOutcome::kMismatched:
      ++stats_.mismatched_releases;
      break;
  }
}

void LockServer::ProcessBufferOnly(const LockHeader& hdr) {
  QueueSlot slot;
  slot.mode = hdr.mode;
  slot.txn_id = hdr.txn_id;
  slot.client_node = hdr.client_node;
  slot.tenant = hdr.tenant;
  slot.timestamp = hdr.timestamp;  // Preserve the client's issue time.
  q2_[hdr.lock_id].push_back(slot);
  ++stats_.buffered;
  metrics_.buffered->Inc();
  AdjustQ2Depth(+1);
  if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
    trace_->Instant(TraceTrack::kServer, "server.q2_buffer",
                    net_.sim().now(),
                    TraceLog::RequestId(hdr.lock_id, hdr.txn_id),
                    {"depth", q2_[hdr.lock_id].size()});
  }
}

void LockServer::ProcessQueueEmpty(const LockHeader& hdr) {
  NETLOCK_CHECK(switch_node_ != kInvalidNode);
  // A duplicated (or reordered, older) notify must not push again: the
  // switch sized the first batch to its free slots, and a second batch
  // would overrun q1. The switch re-arms with a fresh timestamp if the
  // handshake wedges, so dropping here never strands q2.
  const auto [notify_it, first_notify] =
      last_push_notify_.try_emplace(hdr.lock_id, hdr.timestamp);
  if (!first_notify) {
    if (hdr.timestamp <= notify_it->second) {
      ++stats_.duplicate_notifies;
      return;
    }
    notify_it->second = hdr.timestamp;
  }
  std::deque<QueueSlot>& q2 = q2_[hdr.lock_id];
  const std::uint32_t free_slots = hdr.aux;
  const std::size_t to_push =
      std::min<std::size_t>(free_slots, q2.size());
  for (std::size_t i = 0; i < to_push; ++i) {
    const QueueSlot& slot = q2.front();
    LockHeader push;
    push.op = LockOp::kPush;
    push.flags = kFlagPushed;
    push.lock_id = hdr.lock_id;
    push.mode = slot.mode;
    push.txn_id = slot.txn_id;
    push.client_node = slot.client_node;
    push.tenant = slot.tenant;
    push.timestamp = slot.timestamp;
    if (trace_->Sampled(hdr.lock_id, slot.txn_id)) {
      trace_->Instant(TraceTrack::kServer, "server.q2_push",
                      net_.sim().now(),
                      TraceLog::RequestId(hdr.lock_id, slot.txn_id));
    }
    net_.Send(MakeLockPacket(node_, switch_node_, push));
    q2.pop_front();
    ++stats_.pushes_sent;
    metrics_.pushes->Inc();
    AdjustQ2Depth(-1);
  }
  // Report remaining q2 depth; the switch decides whether the overflow
  // episode can end (see switch_dataplane.cc protocol walkthrough).
  LockHeader sync;
  sync.op = LockOp::kSyncState;
  sync.lock_id = hdr.lock_id;
  sync.aux = static_cast<std::uint32_t>(q2.size());
  net_.Send(MakeLockPacket(node_, switch_node_, sync));
  if (q2.empty()) q2_.erase(hdr.lock_id);
}

void LockServer::ProcessCancel(const LockHeader& hdr) {
  // Remove every queue entry of (lock, txn), granted or not, without
  // notifying the (already aborted) owner. Survivors newly at the granted
  // prefix are granted by the engine as usual. Idempotent: a duplicated
  // copy finds nothing.
  const LockEngine::RemoveResult removed = engine_.RemoveTxn(
      hdr.lock_id, hdr.txn_id, substrate_.Now(), /*notify=*/false);
  stats_.cancels_removed += removed.removed;
}

void LockServer::DeliverAbort(LockId lock, const QueueSlot& slot,
                              AbortReason reason) {
  if (reason == AbortReason::kWound) {
    ++stats_.wounds;
  } else {
    ++stats_.aborts_refused;
  }
  if (abort_observer_) {
    abort_observer_(lock, slot.txn_id, reason, slot.client_node);
  }
  LockHeader abort;
  abort.op = LockOp::kAbort;
  abort.lock_id = lock;
  abort.mode = slot.mode;
  abort.txn_id = slot.txn_id;
  abort.client_node = slot.client_node;
  abort.tenant = slot.tenant;
  abort.timestamp = slot.timestamp;
  abort.aux = static_cast<std::uint32_t>(reason);
  net_.Send(MakeLockPacket(node_, slot.client_node, abort));
}

void LockServer::DeliverGrant(LockId lock, const QueueSlot& slot) {
  ++stats_.grants;
  metrics_.grants->Inc();
  if (grant_observer_) {
    grant_observer_(lock, slot.txn_id, slot.mode, slot.client_node);
  }
  LockHeader grant;
  grant.op = LockOp::kGrant;
  grant.lock_id = lock;
  grant.mode = slot.mode;
  grant.txn_id = slot.txn_id;
  grant.client_node = slot.client_node;
  grant.tenant = slot.tenant;
  grant.timestamp = slot.timestamp;
  grant.aux = grant_nonce_++;  // Per-instance nonce (dedup filter key).
  net_.Send(MakeLockPacket(node_, slot.client_node, grant));
}

void LockServer::OnWaitEnd(LockId lock, const QueueSlot& slot, SimTime now) {
  if (!trace_->Sampled(lock, slot.txn_id)) return;
  trace_->Complete(TraceTrack::kServer, "server.queue_wait", slot.timestamp,
                   now, TraceLog::RequestId(lock, slot.txn_id));
}

void LockServer::TakeOwnership(LockId lock) {
  std::deque<QueueSlot> backlog;
  const auto it = q2_.find(lock);
  if (it != q2_.end()) {
    // q2 becomes the active queue, in order; the engine grants the new
    // front per the usual rules (first entry, plus following shareds if it
    // is shared).
    AdjustQ2Depth(-static_cast<std::int64_t>(it->second.size()));
    backlog = std::move(it->second);
    q2_.erase(it);
  }
  engine_.AdoptQueue(lock, std::move(backlog), substrate_.Now());
}

void LockServer::DropOwnership(LockId lock) { engine_.DropDrained(lock); }

void LockServer::EvictOwnership(LockId lock) { engine_.Drop(lock); }

void LockServer::Fail() {
  failed_ = true;
  engine_.Clear();
  for (const auto& [lock, q2] : q2_) {
    AdjustQ2Depth(-static_cast<std::int64_t>(q2.size()));
  }
  q2_.clear();
  graced_locks_.clear();
  release_filter_.assign(release_filter_.size(), 0);
  last_push_notify_.clear();
  for (auto& core : cores_) core->Reset();
}

void LockServer::Restart() { failed_ = false; }

void LockServer::GracePeriodUntil(SimTime until) {
  NETLOCK_CHECK(until >= net_.sim().now());
  grace_until_ = until;
  net_.sim().ScheduleAt(until, [this]() { ActivateGraced(); });
}

void LockServer::ActivateGraced() {
  if (net_.sim().now() < grace_until_) return;  // Superseded by a new grace.
  std::vector<LockId> locks;
  locks.swap(graced_locks_);
  const SimTime now = substrate_.Now();
  for (const LockId lock : locks) {
    if (!engine_.Owns(lock) || !engine_.IsPaused(lock)) continue;
    engine_.SetPaused(lock, false);
    // Move the buffered requests through the normal owned path, in order.
    for (const QueueSlot& slot : engine_.TakePausedBuffer(lock)) {
      engine_.Acquire(lock, slot, now);
    }
  }
}

void LockServer::PauseLock(LockId lock, bool paused) {
  engine_.SetPaused(lock, paused);
}

bool LockServer::QueueEmpty(LockId lock) const {
  return engine_.QueueEmpty(lock);
}

std::size_t LockServer::QueueDepth(LockId lock) const {
  return engine_.QueueDepth(lock) + OverflowDepth(lock);
}

void LockServer::ForwardBufferedToSwitch(LockId lock) {
  NETLOCK_CHECK(switch_node_ != kInvalidNode);
  if (!engine_.Owns(lock)) return;
  for (const QueueSlot& slot : engine_.TakePausedBuffer(lock)) {
    LockHeader req;
    req.op = LockOp::kAcquire;
    req.lock_id = lock;
    req.mode = slot.mode;
    req.txn_id = slot.txn_id;
    req.client_node = slot.client_node;
    req.tenant = slot.tenant;
    req.timestamp = slot.timestamp;
    net_.Send(MakeLockPacket(node_, switch_node_, req));
  }
}

void LockServer::ClearExpired(SimTime lease) {
  TraceLog::PidScope pid_scope(*trace_, trace_pid_);
  const std::uint64_t forced =
      engine_.ClearExpired(lease, substrate_.Now());
  stats_.releases += forced;
  metrics_.releases->Inc(forced);
}

std::size_t LockServer::OverflowDepth(LockId lock) const {
  const auto it = q2_.find(lock);
  return it == q2_.end() ? 0 : it->second.size();
}

std::vector<LockId> LockServer::OwnedLocks() const {
  return engine_.OwnedLocks();
}

void LockServer::DropState(LockId lock) {
  engine_.Drop(lock);
  const auto it = q2_.find(lock);
  if (it != q2_.end()) {
    AdjustQ2Depth(-static_cast<std::int64_t>(it->second.size()));
    q2_.erase(it);
  }
}

void LockServer::HarvestDemands(double window_sec,
                                std::vector<LockDemand>& out) {
  engine_.HarvestDemands(window_sec, out);
}

}  // namespace netlock
