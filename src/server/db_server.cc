#include "server/db_server.h"

#include "common/check.h"

namespace netlock {

DbServer::DbServer(Network& net, DbServerConfig config)
    : net_(net), config_(config) {
  NETLOCK_CHECK(config_.cores >= 1);
  node_ = net_.AddNode([this](const Packet& pkt) { OnPacket(pkt); });
  for (int i = 0; i < config_.cores; ++i) {
    cores_.push_back(std::make_unique<ServiceQueue>(
        net_.sim(), config_.per_request_service));
  }
}

void DbServer::OnPacket(const Packet& pkt) {
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr) return;
  const bool one_rtt = hdr->op == LockOp::kGrant;
  if (hdr->op != LockOp::kFetch && !one_rtt) return;
  std::uint64_t h = hdr->lock_id;
  h ^= h >> 13;
  h *= 0x9e3779b9ull;
  const int core = static_cast<int>(h % cores_.size());
  const LockHeader request = *hdr;
  cores_[core]->Submit([this, request, one_rtt]() {
    if (one_rtt) {
      ++stats_.one_rtt_serves;
    } else {
      ++stats_.fetches;
    }
    LockHeader reply = request;
    reply.op = LockOp::kData;
    // aux is kept from the request: in one-RTT mode it carries the
    // grantor's per-instance grant nonce, which the client's duplicate-
    // grant filter keys on.
    net_.Send(MakeLockPacket(node_, request.client_node, reply));
  });
}

}  // namespace netlock
