// Database server model for one-RTT transactions (paper Section 4.1).
//
// In the basic mode a client first obtains a grant from NetLock and then
// issues a separate fetch to the database server — 1.5-2 RTTs per item. In
// one-RTT mode the switch, "instead of replying to the client, forwards the
// request to the corresponding database server to fetch the item", so lock
// acquisition and data fetching complete in a single round trip. Unlike
// DrTM/FARM/FaSST-style combined requests, every forwarded request succeeds
// — the lock was already granted by the switch — so there is no
// fail-and-retry at the database server.
//
// This model serves the items: a kFetch (basic mode) or a forwarded kGrant
// (one-RTT mode) is answered with kData to the client after a per-request
// CPU service time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "net/lock_wire.h"
#include "sim/network.h"
#include "sim/service_queue.h"

namespace netlock {

struct DbServerConfig {
  int cores = 8;
  SimTime per_request_service = 500;  ///< In-memory row fetch.
};

class DbServer {
 public:
  DbServer(Network& net, DbServerConfig config = DbServerConfig{});

  NodeId node() const { return node_; }

  struct Stats {
    std::uint64_t fetches = 0;        ///< Basic-mode kFetch requests.
    std::uint64_t one_rtt_serves = 0; ///< Forwarded grants served.
  };
  const Stats& stats() const { return stats_; }

 private:
  void OnPacket(const Packet& pkt);

  Network& net_;
  DbServerConfig config_;
  NodeId node_;
  std::vector<std::unique_ptr<ServiceQueue>> cores_;
  Stats stats_;
};

}  // namespace netlock
