// The NetLock lock server (paper Sections 3.2, 4.3, 5).
//
// Plays two roles:
//   1. Owner of unpopular locks: requests the switch is not responsible for
//      are forwarded here and both queued and granted by the server, with
//      the same queue semantics as the switch path (entries live in the
//      queue until released; grants follow Algorithm 2's rules).
//   2. Overflow buffer for switch-resident locks: buffer-only requests are
//      appended to q2[i] and never granted here; on a queue-empty
//      notification the server pushes up to the free-slot count back to the
//      switch and reports the remaining q2 depth.
//
// The CPU model mirrors the prototype's DPDK server: RSS hashes each lock
// onto one of `cores` receive queues, and each core processes requests FIFO
// at a fixed per-request service time (defaults give 18 MRPS at 8 cores,
// the rate reported in Section 5). This is what makes servers — never the
// switch — the bottleneck, reproducing Figures 9-11.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "core/lock_engine.h"
#include "dataplane/slot.h"
#include "net/lock_wire.h"
#include "sim/network.h"
#include "sim/service_queue.h"
#include "substrate/execution_substrate.h"

namespace netlock {

struct LockServerConfig {
  int cores = 8;
  /// Per-request CPU service time; 444 ns ~= 2.25 MRPS per core.
  SimTime per_request_service = 444;
  /// Slots in the release-dedup filter (hash-indexed fingerprints of the
  /// releases already applied). Drops network-retransmitted RELEASE copies
  /// before they blind-pop another waiter's entry. 0 disables.
  std::uint32_t release_filter_slots = 4096;
  /// Deadlock-handling policy applied by the lock engine (conflicting
  /// acquires are refused / wound per the policy instead of queueing).
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kNone;
};

/// The per-lock queue/grant protocol itself lives in core/lock_engine.h —
/// compiled once and shared with the real-time backend (rt/rt_lock_service)
/// — while this class supplies everything simulation-specific: the RSS-core
/// CPU model, the wire protocol (parse/build packets), the q2 overflow
/// buffer handshake with the switch, dedup filters, and failure injection.
class LockServer : private GrantSink {
 public:
  LockServer(Network& net, LockServerConfig config = LockServerConfig{});

  NodeId node() const { return node_; }
  const LockServerConfig& config() const { return config_; }

  /// Switch node used for pushes/acks in the overflow protocol. Must be set
  /// before any buffer-only traffic arrives.
  void set_switch_node(NodeId node) { switch_node_ = node; }

  // --- Control plane (invoked directly by the NetLock control plane; in a
  // deployment these are RPCs on the server daemon) ---

  /// Converts a lock's q2 buffer into an owned, active queue and processes
  /// it (used when a lock is migrated from the switch to this server).
  void TakeOwnership(LockId lock);

  /// Marks that the switch now owns this lock. Precondition: drained here.
  void DropOwnership(LockId lock);

  /// Unconditionally discards owned state for a lock the switch is taking
  /// over after quiescence (e.g., when an allocation is installed following
  /// a profiling phase). Any entries still queued are ghosts — grants whose
  /// clients already moved on (duplicate retransmissions) — and their
  /// eventual releases will be absorbed as stale by the new owner.
  void EvictOwnership(LockId lock);

  /// Pauses an owned lock for migration to the switch: new requests are
  /// buffered, grants stop, existing holders drain via releases.
  void PauseLock(LockId lock, bool paused);

  /// True when an owned lock has no queued entries (drained).
  bool QueueEmpty(LockId lock) const;

  /// Entries waiting on `lock` server-side (owned queue plus q2 overflow
  /// buffer) — the self-driving controller's migration-cost input: each is
  /// a request a pause-drain-move would delay.
  std::size_t QueueDepth(LockId lock) const;

  /// Re-sends requests buffered while paused to the switch as fresh
  /// acquires (order-preserving); used to complete server->switch moves.
  void ForwardBufferedToSwitch(LockId lock);

  /// Forced-releases expired queue heads (lease handling, Section 4.5).
  void ClearExpired(SimTime lease);

  // --- Failure handling (Section 4.5) ---

  /// Crashes the server: all packets are dropped and all lock state is
  /// lost. A failed server's locks are reassigned by the control plane.
  void Fail();

  /// Restarts the server empty.
  void Restart();

  bool failed() const { return failed_; }

  /// Grace period after taking over a failed peer's locks: owned locks
  /// *created* before `until` queue requests without granting, and are
  /// activated together at `until` — "the server waits for the leases to
  /// expire before granting the locks" (Section 4.5), so no grant can
  /// overlap one issued by the dead server.
  void GracePeriodUntil(SimTime until);

  /// Number of requests currently buffered in q2 for a lock.
  std::size_t OverflowDepth(LockId lock) const;

  /// Harvests per-lock demand counters for owned locks (rates normalized by
  /// `window_sec`), appending to `out`, and resets them (§4.3).
  void HarvestDemands(double window_sec, std::vector<LockDemand>& out);

  /// Locks this server currently owns state for (failover bookkeeping).
  std::vector<LockId> OwnedLocks() const;

  /// Drops all state (owned queue + q2 buffer) for one lock. Used when a
  /// recovered peer takes its locks back: waiters here recover via client
  /// retransmission, and in-flight releases become stale at the new owner.
  void DropState(LockId lock);

  void set_grant_observer(
      std::function<void(LockId, TxnId, LockMode, NodeId)> observer) {
    grant_observer_ = std::move(observer);
  }

  /// Fires synchronously when the deadlock policy refuses or wounds an
  /// entry — for wounds this is *before* the resulting cascade grants, so a
  /// feed built from this observer plus the grant observer linearizes.
  void set_abort_observer(
      std::function<void(LockId, TxnId, AbortReason, NodeId)> observer) {
    abort_observer_ = std::move(observer);
  }

  // --- Statistics ---
  struct Stats {
    std::uint64_t grants = 0;
    std::uint64_t releases = 0;
    std::uint64_t buffered = 0;       ///< Requests appended to q2.
    std::uint64_t pushes_sent = 0;    ///< q2 entries pushed to the switch.
    std::uint64_t requests_processed = 0;
    std::uint64_t stale_releases = 0;
    std::uint64_t duplicate_releases = 0;  ///< Dropped by the dedup filter.
    /// Releases whose mode (or, for exclusive, transaction) did not match
    /// the queue head — from an entry the lease sweep already reclaimed.
    /// Dropped instead of popping another waiter's entry.
    std::uint64_t mismatched_releases = 0;
    std::uint64_t duplicate_notifies = 0;  ///< Stale/dup kQueueEmpty dropped.
    std::uint64_t aborts_refused = 0;   ///< no-wait / wait-die refusals.
    std::uint64_t wounds = 0;           ///< Entries revoked by wound-wait.
    std::uint64_t cancels_removed = 0;  ///< Entries removed by kCancel.
  };
  const Stats& stats() const { return stats_; }

  /// Aggregate busy time fraction would require integration; expose the
  /// per-core completion horizon instead for saturation diagnostics.
  SimTime CoreBusyUntil(int core) const;

 private:
  void OnPacket(const Packet& pkt);
  void Process(const LockHeader& hdr);
  void ProcessOwnedAcquire(const LockHeader& hdr);
  void ProcessOwnedRelease(const LockHeader& hdr);
  void ProcessCancel(const LockHeader& hdr);
  void ProcessBufferOnly(const LockHeader& hdr);
  void ProcessQueueEmpty(const LockHeader& hdr);

  // GrantSink: the engine decided to grant; build and send the packet.
  void DeliverGrant(LockId lock, const QueueSlot& slot) override;
  void OnWaitEnd(LockId lock, const QueueSlot& slot, SimTime now) override;
  // GrantSink: the deadlock policy refused/revoked an entry; notify client.
  void DeliverAbort(LockId lock, const QueueSlot& slot,
                    AbortReason reason) override;

  int CoreFor(LockId lock) const;

  void ActivateGraced();

  Network& net_;
  LockServerConfig config_;
  NodeId node_;
  SimSubstrate substrate_;  ///< Protocol clock (simulated time here).
  TraceLog* trace_;  ///< Request-lifecycle tracing (resolved once).
  /// Rack label captured at construction (TraceLog::current_pid); asserted
  /// while this server processes requests so shared-log spans split by rack.
  std::uint32_t trace_pid_ = 0;
  NodeId switch_node_ = kInvalidNode;
  std::vector<std::unique_ptr<ServiceQueue>> cores_;
  /// The shared wait-queue protocol (also driven by the rt backend).
  LockEngine engine_;
  std::unordered_map<LockId, std::deque<QueueSlot>> q2_;
  /// Release-dedup fingerprints (empty when the filter is disabled).
  std::vector<std::uint64_t> release_filter_;
  /// Per-instance nonce stamped into each grant's aux (see the switch's
  /// grant_nonce_): lets clients drop network-duplicated grant copies
  /// without swallowing the grant of a second, retransmission-created queue
  /// entry. Not reset across failures for the same collision-avoidance
  /// reason.
  std::uint32_t grant_nonce_ = 1;
  /// Timestamp of the newest kQueueEmpty notify seen per lock: a duplicated
  /// (or reordered, older) notify must not trigger a second push batch —
  /// the switch sized the first batch to its free slots.
  std::unordered_map<LockId, SimTime> last_push_notify_;
  bool failed_ = false;
  SimTime grace_until_ = 0;
  std::vector<LockId> graced_locks_;
  Stats stats_;

  /// Registry instruments (resolved once; shared across server instances).
  struct Metrics {
    MetricCounter* grants;
    MetricCounter* releases;
    MetricCounter* buffered;
    MetricCounter* pushes;
    MetricCounter* requests;
    MetricGauge* q2_depth;  ///< Total q2 entries buffered (hwm tracked).
  };
  Metrics metrics_;
  /// Keeps metrics_.q2_depth consistent across every q2 mutation path.
  void AdjustQ2Depth(std::int64_t delta);

  std::function<void(LockId, TxnId, LockMode, NodeId)> grant_observer_;
  std::function<void(LockId, TxnId, AbortReason, NodeId)> abort_observer_;
};

}  // namespace netlock
