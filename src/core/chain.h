// Chain replication of NetLock switches (paper §6.5, closing remark of the
// failure-handling evaluation: "NetChain can be applied to chain several
// NetLock switches to further reduce the temporary downtime").
//
// Two switches run the same deterministic lock state machine over the same
// FIFO-ordered op stream:
//
//   clients/servers ──ops──> HEAD ──replicates──> TAIL ──grants──> clients
//
// The head applies every state-changing op and forwards it down the chain
// with its admission/overflow decisions attached (so the replicas' queues
// never diverge); the tail applies the same op and is the sole emitter —
// its grants carry the head's source address, so releases keep entering the
// chain at the head.
//
// On head failure, the tail already holds the complete lock state: failover
// is a routing update (promote the tail, re-point clients and servers,
// redirect recorded grant sources), with none of the lease-expiry wait the
// state-losing recovery paths need. Compare `core/failover.h`, the
// backup-switch protocol for a *cold* standby.
//
// Scope: a chain of two, default (single-priority) path. Ops applied by the
// head but lost before reaching the tail at the failure instant are
// recovered by the standard client retransmission / lease machinery.
#pragma once

#include <vector>

#include "client/client.h"
#include "core/control_plane.h"
#include "dataplane/switch_dataplane.h"
#include "sim/simulator.h"

namespace netlock {

class ChainManager {
 public:
  /// `control` is the head's control plane (it owns the installed
  /// allocation, servers, and lease sweeps).
  ChainManager(Simulator& sim, LockSwitch& head, LockSwitch& tail,
               ControlPlane& control);

  /// Replicates the installed allocation onto the tail and wires the
  /// chain. Call after ControlPlane::InstallAllocation.
  void Enable();

  /// Sessions registered here are re-pointed and have their grant sources
  /// redirected on failover.
  void RegisterSession(NetLockSession* session);

  /// Fails the head and promotes the tail in place: state is already
  /// there, so service continues immediately.
  void FailHead();

  bool head_failed() const { return head_failed_; }
  NodeId active_switch() const {
    return head_failed_ ? tail_.node() : head_.node();
  }

 private:
  Simulator& sim_;
  LockSwitch& head_;
  LockSwitch& tail_;
  ControlPlane& control_;
  std::vector<NetLockSession*> sessions_;
  bool enabled_ = false;
  bool head_failed_ = false;
};

}  // namespace netlock
