#include "core/failover.h"

#include "common/check.h"

namespace netlock {

FailoverManager::FailoverManager(Simulator& sim, LockSwitch& primary,
                                 LockSwitch& backup, ControlPlane& control,
                                 FailoverConfig config)
    : sim_(sim),
      primary_(primary),
      backup_(backup),
      control_(control),
      config_(config) {}

void FailoverManager::RegisterSession(NetLockSession* session) {
  NETLOCK_CHECK(session != nullptr);
  sessions_.push_back(session);
}

NodeId FailoverManager::active_switch() const {
  return primary_failed_ ? backup_.node() : primary_.node();
}

void FailoverManager::RepointSessions(NodeId node) {
  for (NetLockSession* session : sessions_) {
    session->set_switch_node(node);
  }
}

void FailoverManager::FailPrimary() {
  NETLOCK_CHECK(!primary_failed_);
  ++epoch_;
  primary_failed_ = true;
  backup_active_ = true;
  primary_.Fail();

  // Replicate the allocation onto the backup, suspended: requests queue
  // immediately but no grant can overlap a pre-failure holder.
  backup_.SetDefaultRoute(
      [this](LockId lock) { return control_.ServerFor(lock); });
  for (const auto& [lock, slots] : control_.installed().switch_slots) {
    const bool ok = backup_.InstallLock(lock, control_.ServerFor(lock),
                                        slots, /*suspended=*/true);
    NETLOCK_CHECK(ok);  // The backup is empty; capacity matches.
  }
  // Overflow (q2) traffic from the servers must reach the live switch.
  for (LockServer* server : control_.servers()) {
    server->set_switch_node(backup_.node());
  }
  RepointSessions(backup_.node());

  // Activate after one lease: every grant issued by the dead primary has
  // expired by then ("the server waits for the leases to expire before
  // granting the locks" — the same rule, applied to the backup switch).
  const std::uint64_t epoch = epoch_;
  sim_.Schedule(control_.config().lease, [this, epoch]() {
    if (epoch != epoch_) return;
    ActivateBackupLocks();
  });
  SweepBackupLeases();
}

void FailoverManager::ActivateBackupLocks() {
  for (const LockId lock : backup_.table().InstalledLocks()) {
    backup_.Activate(lock);
  }
}

void FailoverManager::SweepBackupLeases() {
  if (!backup_active_) return;
  sim_.Schedule(control_.config().lease_poll_interval, [this]() {
    if (!backup_active_) return;
    backup_.ClearExpired(control_.config().lease);
    SweepBackupLeases();
  });
}

void FailoverManager::RecoverPrimary(std::function<void()> done) {
  NETLOCK_CHECK(primary_failed_);
  ++epoch_;
  primary_failed_ = false;

  // Restart the primary with every lock installed suspended: new requests
  // queue behind whatever the backup still has to serve.
  primary_.Restart();
  for (const auto& [lock, slots] : control_.installed().switch_slots) {
    if (!primary_.InstallLock(lock, control_.ServerFor(lock), slots,
                              /*suspended=*/true)) {
      // Fragmentation cannot occur on a freshly wiped switch.
      NETLOCK_CHECK(false);
    }
  }
  for (LockServer* server : control_.servers()) {
    server->set_switch_node(primary_.node());
  }
  RepointSessions(primary_.node());
  PollRecovery(std::move(done));
}

void FailoverManager::PollRecovery(std::function<void()> done) {
  sim_.Schedule(config_.poll_interval, [this, done = std::move(done)]() {
    bool all_drained = true;
    for (const LockId lock : primary_.table().InstalledLocks()) {
      if (!primary_.IsSuspended(lock)) continue;
      // "Only grant from the backup until its queue gets empty": activate
      // each primary lock the moment the backup's queue for it drains.
      if (!backup_.IsInstalled(lock) || backup_.QueueEmpty(lock)) {
        primary_.Activate(lock);
      } else {
        all_drained = false;
      }
    }
    if (!all_drained) {
      PollRecovery(done);
      return;
    }
    // Backup fully drained: wipe it back to cold standby.
    backup_active_ = false;
    backup_.Restart();
    if (done) done();
  });
}

}  // namespace netlock
