#include "core/failover.h"

#include "common/check.h"

namespace netlock {

FailoverManager::FailoverManager(Simulator& sim, LockSwitch& primary,
                                 LockSwitch& backup, ControlPlane& control,
                                 FailoverConfig config)
    : sim_(sim),
      primary_(primary),
      backup_(backup),
      control_(control),
      config_(config) {}

void FailoverManager::RegisterSession(NetLockSession* session) {
  NETLOCK_CHECK(session != nullptr);
  sessions_.push_back(session);
}

NodeId FailoverManager::active_switch() const {
  return primary_failed_ ? backup_.node() : primary_.node();
}

void FailoverManager::RepointSessions(NodeId node) {
  for (NetLockSession* session : sessions_) {
    session->set_switch_node(node);
  }
}

void FailoverManager::FailPrimary() {
  NETLOCK_CHECK(!primary_failed_);
  ++epoch_;
  ++fail_epoch_;
  primary_failed_ = true;
  backup_active_ = true;
  primary_.Fail();

  // Replicate the allocation onto the backup, suspended: requests queue
  // immediately but no grant can overlap a pre-failure holder. On a second
  // failure during a drain the backup still holds the locks: skip the
  // install, and re-suspend exactly those whose grant stream had moved
  // back to the primary (fresh primary grants must expire before the
  // backup may grant them again). Locks still draining keep granting.
  backup_.SetDefaultRoute(
      [this](LockId lock) { return control_.ServerFor(lock); });
  for (const auto& [lock, slots] : control_.installed().switch_slots) {
    if (backup_.IsInstalled(lock)) {
      if (returned_to_primary_.count(lock) != 0) backup_.Suspend(lock);
      continue;
    }
    const bool ok = backup_.InstallLock(lock, control_.ServerFor(lock),
                                        slots, /*suspended=*/true);
    NETLOCK_CHECK(ok);  // The backup is empty; capacity matches.
  }
  returned_to_primary_.clear();
  // Overflow (q2) traffic from the servers must reach the live switch.
  for (LockServer* server : control_.servers()) {
    server->set_switch_node(backup_.node());
  }
  RepointSessions(backup_.node());

  // Activate after one lease: every grant issued by the dead primary has
  // expired by then ("the server waits for the leases to expire before
  // granting the locks" — the same rule, applied to the backup switch).
  // Guarded by fail_epoch_, NOT epoch_: an early RecoverPrimary bumps
  // epoch_ but must not cancel this activation, or the backup's suspended
  // queues would never grant (and so never drain) — a livelock.
  const std::uint64_t fail_epoch = fail_epoch_;
  grace_until_ = sim_.now() + control_.config().lease;
  sim_.Schedule(control_.config().lease, [this, fail_epoch]() {
    if (fail_epoch != fail_epoch_) return;
    ActivateBackupLocks();
  });
  SweepBackupLeases();
}

void FailoverManager::ActivateBackupLocks() {
  for (const LockId lock : backup_.table().InstalledLocks()) {
    backup_.Activate(lock);
  }
}

void FailoverManager::SweepBackupLeases() {
  if (!backup_active_) return;
  // fail_epoch_ guard: a second FailPrimary starts a fresh chain; the old
  // one must die here or two chains would sweep concurrently forever.
  const std::uint64_t fail_epoch = fail_epoch_;
  sim_.Schedule(control_.config().lease_poll_interval,
                [this, fail_epoch]() {
    if (!backup_active_ || fail_epoch != fail_epoch_) return;
    backup_.ClearExpired(control_.config().lease);
    SweepBackupLeases();
  });
}

void FailoverManager::RecoverPrimary(std::function<void()> done) {
  NETLOCK_CHECK(primary_failed_);
  ++epoch_;
  primary_failed_ = false;

  // Restart the primary with every lock installed suspended: new requests
  // queue behind whatever the backup still has to serve.
  primary_.Restart();
  for (const auto& [lock, slots] : control_.installed().switch_slots) {
    if (!primary_.InstallLock(lock, control_.ServerFor(lock), slots,
                              /*suspended=*/true)) {
      // Fragmentation cannot occur on a freshly wiped switch.
      NETLOCK_CHECK(false);
    }
  }
  for (LockServer* server : control_.servers()) {
    server->set_switch_node(primary_.node());
  }
  RepointSessions(primary_.node());
  PollRecovery(epoch_, std::move(done));
}

void FailoverManager::PollRecovery(std::uint64_t epoch,
                                   std::function<void()> done) {
  sim_.Schedule(config_.poll_interval,
                [this, epoch, done = std::move(done)]() {
    // A second FailPrimary supersedes this recovery: without this guard
    // the stale poll would keep activating primary locks on a switch that
    // has failed again (and fight the new failover's bookkeeping).
    if (epoch != epoch_) return;
    bool all_drained = true;
    // The primary inherits the backup's one-lease grace: if recovery runs
    // before FailPrimary's grace has elapsed, grants issued by the old
    // primary are still live, and activating here would overlap them —
    // the backup never granted these locks (its own activation timer is
    // still pending), so an empty backup queue proves nothing yet.
    const bool grace_over = sim_.now() >= grace_until_;
    for (const LockId lock : primary_.table().InstalledLocks()) {
      if (!primary_.IsSuspended(lock)) continue;
      // "Only grant from the backup until its queue gets empty": activate
      // each primary lock the moment the backup's queue for it drains.
      if (grace_over &&
          (!backup_.IsInstalled(lock) || backup_.QueueEmpty(lock))) {
        primary_.Activate(lock);
        returned_to_primary_.insert(lock);
      } else {
        all_drained = false;
      }
    }
    if (!all_drained) {
      PollRecovery(epoch, done);
      return;
    }
    // Backup fully drained: wipe it back to cold standby.
    backup_active_ = false;
    backup_.Restart();
    returned_to_primary_.clear();
    if (done) done();
  });
}

}  // namespace netlock
